// Benchmarks regenerating the paper's evaluation, one per table/figure
// (DESIGN.md §4), plus the ablations. Run with:
//
//	go test -bench=. -benchmem .
//
// The absolute numbers are laptop numbers; the experiment harness
// (cmd/tbon-bench) prints the full tables with the paper-shape checks in
// internal/experiments's tests.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// BenchmarkFig4 regenerates Figure 4 points: the mean-shift scaling study
// comparing single-node, flat (1-deep) and deep (2-deep) organizations.
func BenchmarkFig4(b *testing.B) {
	for _, scale := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("scale%d", scale), func(b *testing.B) {
			cfg := experiments.DefaultFig4Config()
			cfg.Scales = []int{scale}
			cfg.PointsPerCluster = 60
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFig4(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Single.Seconds(), "single-s")
				b.ReportMetric(rows[0].Flat.Seconds(), "flat-s")
				b.ReportMetric(rows[0].Deep.Seconds(), "deep-s")
			}
		})
	}
}

// BenchmarkStartup regenerates T-STARTUP (512-daemon tool startup).
func BenchmarkStartup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStartup(experiments.DefaultStartupConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlatTotal.Seconds(), "flat-startup-s")
		b.ReportMetric(res.TreeTotal.Seconds(), "tree-startup-s")
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkThroughput regenerates T-THROUGHPUT points (front-end record
// rate, flat vs tree) on the real overlay.
func BenchmarkThroughput(b *testing.B) {
	for _, daemons := range []int{32, 128} {
		b.Run(fmt.Sprintf("daemons%d", daemons), func(b *testing.B) {
			cfg := experiments.ThroughputConfig{
				DaemonCounts: []int{daemons},
				Rounds:       10,
				Functions:    32,
				FanOut:       8,
			}
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunThroughput(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].FlatRate, "flat-rec/s")
				b.ReportMetric(rows[0].TreeRate, "tree-rec/s")
			}
		})
	}
}

// BenchmarkOverhead regenerates T-OVERHEAD (pure topology arithmetic).
func BenchmarkOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunOverhead()
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Internal != 16 || rows[1].Internal != 272 {
			b.Fatal("overhead table wrong")
		}
	}
}

// BenchmarkSGFA regenerates T-SGFA (sub-graph folding) on the real overlay.
func BenchmarkSGFA(b *testing.B) {
	cfg := experiments.SGFAConfig{Leaves: 128, FanOut: 8, Shapes: 4, Depth: 3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSGFA(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.FoldCorrect {
			b.Fatal("fold incorrect")
		}
		b.ReportMetric(res.Reduction, "payload-reduction-x")
	}
}

// BenchmarkFanOutSweep runs the deep-tree ablation (the paper's §3.2 open
// question) at 64 back-ends.
func BenchmarkFanOutSweep(b *testing.B) {
	cfg := experiments.FanOutSweepConfig{
		Leaves:  64,
		FanOuts: []int{2, 8, 64},
		Fig4:    experiments.DefaultFig4Config(),
	}
	cfg.Fig4.PointsPerCluster = 40
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFanOutSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncPolicies runs the synchronization-policy ablation with a
// short straggler delay.
func BenchmarkSyncPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSyncPolicyAblation(8, 60*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransports compares the chan and TCP substrates end to end.
func BenchmarkTransports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTransportAblation(16, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatching measures upstream small-packet throughput with egress
// batching off vs on (ABLATE-BATCHING): every back-end blasts single-int
// packets through a waitforall+sum pipeline on the chan transport. The
// batched configuration should sustain well over 1.5x the baseline
// packets/sec.
func BenchmarkBatching(b *testing.B) {
	const leaves, fanOut, rounds = 256, 16, 600
	for _, cfg := range []struct {
		name   string
		window int
	}{{"off", 0}, {"on-w64", 64}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rate, err := experiments.BatchingPoint(leaves, fanOut, cfg.window, rounds)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rate, "pkts/s")
			}
		})
	}
}

// BenchmarkRecovery regenerates T-RECOVERY points: end-to-end live
// failure recovery (heartbeat detection + grandparent adoption) on a
// running overlay, per tree shape and link fabric.
func BenchmarkRecovery(b *testing.B) {
	for _, shape := range []string{"kary:2^3", "kary:8^2"} {
		for _, tr := range []core.TransportKind{core.ChanTransport, core.TCPTransport} {
			name := shape + "/chan"
			if tr == core.TCPTransport {
				name = shape + "/tcp"
			}
			b.Run(name, func(b *testing.B) {
				cfg := experiments.DefaultRecoveryConfig()
				cfg.Shapes = []string{shape}
				cfg.Transports = []core.TransportKind{tr}
				for i := 0; i < b.N; i++ {
					rows, err := experiments.RunRecovery(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if !rows[0].Correct {
						b.Fatal("post-recovery reduction incorrect")
					}
					b.ReportMetric(rows[0].Detection.Seconds()*1e3, "detect-ms")
					b.ReportMetric(float64(rows[0].Rewire.Microseconds()), "rewire-µs")
				}
			})
		}
	}
}
