// Package linttest is the test driver for internal/lint analyzers, a
// dependency-free analogue of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<name>/, and every line that
// should produce a diagnostic carries a trailing comment of the form
//
//	// want `regexp`            (or // want "regexp")
//	// want `re1` `re2`         (two diagnostics on one line)
//
// Run fails the test for every expected diagnostic that did not fire, and
// for every diagnostic that fired without a matching want.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the quoted regexps from one want comment body.
func parseWants(t *testing.T, file string, line int, body string) []*regexp.Regexp {
	var wants []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		q := rest[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s:%d: malformed want clause %q", file, line, rest)
		}
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern %q", file, line, rest)
		}
		raw := rest[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, raw, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %s: %v", file, line, pat, err)
		}
		wants = append(wants, re)
		rest = strings.TrimSpace(rest[end+2:])
	}
	return wants
}

// Run lints testdata/src/<pkg> under dir with the analyzer and checks the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, analyzer *lint.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	fset := token.NewFileSet()
	files, err := lint.ParseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], parseWants(t, pos.Filename, pos.Line, m[1])...)
			}
		}
	}

	diags, err := lint.RunAnalyzers(fset, files, dir, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s on %s: %v", analyzer.Name, dir, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil // consume
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
