// Package suite assembles the repo's invariant analyzers in their
// canonical order. cmd/tbon-lint drives it from the command line and CI;
// the selfcheck test in this package runs it over the whole module so
// `go test ./...` enforces the clean-lint bar even where CI is not wired.
package suite

import (
	"repro/internal/lint"
	"repro/internal/lint/batchalias"
	"repro/internal/lint/creditpair"
	"repro/internal/lint/ctrlfifo"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/mutationquiesce"
	"repro/internal/lint/poolrelease"
	"repro/internal/lint/seqstamp"
)

// All returns every analyzer in the tbon-lint suite.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		batchalias.Analyzer,
		creditpair.Analyzer,
		lockorder.Analyzer,
		seqstamp.Analyzer,
		ctrlfifo.Analyzer,
		poolrelease.Analyzer,
		mutationquiesce.Analyzer,
	}
}
