package suite

import (
	"go/token"
	"testing"

	"repro/internal/lint"
)

// TestSuiteCleanOnModule runs every analyzer over the whole module — the
// same sweep `go run ./cmd/tbon-lint ./...` and the CI lint job perform —
// so the clean-lint bar is enforced by plain `go test ./...` too. Any
// finding here is either a real contract violation to fix or a deliberate
// exception to annotate with //tbon:allow <analyzer> <reason>.
func TestSuiteCleanOnModule(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	dirs, err := lint.ExpandPatterns(root, nil)
	if err != nil {
		t.Fatalf("expand ./...: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("no packages found under module root")
	}
	fset := token.NewFileSet()
	diags, err := lint.LintDirs(fset, dirs, All())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String(fset))
	}
}
