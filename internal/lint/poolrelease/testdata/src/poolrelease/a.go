// Fixture for the poolrelease analyzer: pooled buffers must be released
// or handed off exactly once on every path and never touched afterwards;
// encoded-body references must not be released twice.
package poolrelease

import (
	"errors"
	"sync/atomic"
)

type Buf struct {
	Data []byte
}

func GetBuf(size int) *Buf { return &Buf{Data: make([]byte, 0, size)} }
func PutBuf(b *Buf)        {}

type Packet struct {
	wire atomic.Pointer[Buf]
}

func (p *Packet) RetainEncoded(n int32)        {}
func (p *Packet) ReleaseEncoded() bool         { return false }
func (p *Packet) appendEncode(b []byte) []byte { return b }

var errBad = errors.New("bad")

func work() error  { return nil }
func use(b *Buf)   {}
func tooBig() bool { return false }

// leakOnEarlyReturn acquires, then returns on the error check without
// releasing: the buffer silently falls back to the GC.
func leakOnEarlyReturn(n int) error {
	b := GetBuf(n) // want `pooled buffer acquired by GetBuf may leak`
	if err := work(); err != nil {
		return err
	}
	use(b)
	PutBuf(b)
	return nil
}

// leakOnFall acquires inside a branch and never settles on the branch
// that skips the send.
func leakOnFall(n int) {
	if tooBig() {
		b := GetBuf(n) // want `pooled buffer acquired by GetBuf may leak`
		use(b)
	}
}

// releasedEverywhere settles every path: handoff on success, PutBuf on
// the error arm.
func releasedEverywhere(p *Packet, n int) error {
	b := GetBuf(n)
	if err := work(); err != nil {
		PutBuf(b)
		return err
	}
	b.Data = p.appendEncode(b.Data[:0])
	p.wire.Store(b)
	return nil
}

// deferredRelease covers every exit with one deferred PutBuf.
func deferredRelease(n int) error {
	b := GetBuf(n)
	defer PutBuf(b)
	if err := work(); err != nil {
		return err
	}
	use(b)
	return nil
}

// returnedToCaller transfers ownership out: the caller releases.
func returnedToCaller(n int) *Buf {
	b := GetBuf(n)
	b.Data = append(b.Data, 1)
	return b
}

// useAfterRelease reconstructs the use-after-free: the arena may already
// have re-handed b's bytes to another goroutine when the read runs.
func useAfterRelease(n int) byte {
	b := GetBuf(n)
	b.Data = append(b.Data, 7)
	PutBuf(b)
	return b.Data[0] // want `use of pooled buffer b after PutBuf`
}

// doubleRelease reconstructs the double-free: the second PutBuf donates
// a buffer some other holder may be writing through.
func doubleRelease(n int) {
	b := GetBuf(n)
	use(b)
	PutBuf(b)
	PutBuf(b) // want `pooled buffer b released twice`
}

// reacquireResets is legal: the name is rebound to a fresh buffer.
func reacquireResets(n int) {
	b := GetBuf(n)
	PutBuf(b)
	b = GetBuf(n)
	use(b)
	PutBuf(b)
}

// doubleReleaseEncoded reconstructs the multicast custody bug: the second
// release gives up a reference this code path no longer owns, destroying
// a sibling egress queue's hold mid-read.
func doubleReleaseEncoded(p *Packet) {
	p.RetainEncoded(1)
	p.ReleaseEncoded()
	p.ReleaseEncoded() // want `ReleaseEncoded called twice on p`
}

// retainBetween is the legal retry shape: every release is paired with
// its own retain.
func retainBetween(p *Packet) {
	p.RetainEncoded(1)
	p.ReleaseEncoded()
	p.RetainEncoded(1)
	p.ReleaseEncoded()
}

// allowedTransfer shows the audited escape hatch for deliberate custody
// games the syntactic walk cannot see.
func allowedTransfer(sink chan *Buf, n int) {
	b := GetBuf(n) //tbon:allow poolrelease ownership transfers through the channel; the receiver releases
	sink <- b
}
