// Package poolrelease checks the packet-arena ownership discipline
// (DESIGN.md §12): a pooled buffer obtained from GetBuf must, on every
// control-flow path, either return to the arena (PutBuf), be handed to its
// next owner (stored into the encode-once cache or another structure,
// or returned to the caller), and must never be touched again after the
// release — the arena may already have re-handed its bytes to another
// goroutine. It also polices the encoded-body reference count: two
// sequential ReleaseEncoded calls on the same packet with no intervening
// RetainEncoded give up a reference the caller no longer owns, destroying
// a sibling queue's hold mid-read (the multicast double-release bug).
//
// Three checks, all syntactic:
//
//	leak          b := GetBuf(n) followed by a path to return that neither
//	              releases nor hands off b (creditpair-style walk);
//	use-after     a statement mentioning b after PutBuf(b) in the same
//	              statement list;
//	double        PutBuf(b) twice, or p.ReleaseEncoded() twice, with no
//	              reacquisition in between.
//
// Intentional ownership games (a cache that re-publishes a released
// buffer, say) are annotated //tbon:allow poolrelease <reason>.
package poolrelease

import (
	"go/ast"

	"repro/internal/lint"
)

// Analyzer is the pooled-buffer ownership checker.
var Analyzer = &lint.Analyzer{
	Name: "poolrelease",
	Doc:  "pooled buffers must be released or handed off exactly once on every path, and never used after release",
	Run:  run,
}

// settleCalls hand a pooled buffer to its next owner or back to the arena.
var settleCalls = map[string]bool{
	"PutBuf": true,
	"Store":  true, // the encode-once cache handoff: p.wire.Store(buf)
}

func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		switch fd.Name.Name {
		case "GetBuf", "PutBuf", "RetainEncoded", "ReleaseEncoded":
			return // the primitives themselves define the discipline
		}
		checkLeaks(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				scanList(pass, b.List)
			case *ast.CaseClause:
				scanList(pass, b.Body)
			case *ast.CommClause:
				scanList(pass, b.Body)
			}
			return true
		})
	})
	return nil
}

// mentions reports whether any identifier named v occurs under n.
func mentions(n ast.Node, v string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && id.Name == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdent returns the leftmost identifier of an lvalue chain (b, b.Data,
// b.Data[0], (*b).x ...), or "".
func rootIdent(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// settlerFor builds the settle predicate for buffer variable v: true when
// n contains a release (PutBuf), a handoff (a settle call mentioning v, an
// assignment that stores v somewhere other than v itself, or a return
// mentioning v).
func settlerFor(v string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if n == nil {
			return false
		}
		ok := false
		ast.Inspect(n, func(m ast.Node) bool {
			if ok {
				return false
			}
			switch x := m.(type) {
			case *ast.CallExpr:
				if settleCalls[lint.CalleeName(x)] && mentions(x, v) {
					ok = true
					return false
				}
			case *ast.ReturnStmt:
				if mentions(x, v) {
					ok = true
					return false
				}
			case *ast.AssignStmt:
				rhs := false
				for _, r := range x.Rhs {
					if mentions(r, v) {
						rhs = true
					}
				}
				if rhs {
					handoff := true
					for _, l := range x.Lhs {
						if rootIdent(l) == v {
							handoff = false // growing/reslicing v is not a handoff
						}
					}
					if handoff {
						ok = true
						return false
					}
				}
			}
			return true
		})
		return ok
	}
}

// checkLeaks runs the creditpair-style reachability walk for every
// `v := GetBuf(...)` in fd: a path from the acquisition to a return that
// never settles v leaks a pooled buffer (it still recycles via the GC, but
// silently gives up the zero-allocation property the arena exists for).
func checkLeaks(pass *lint.Pass, fd *ast.FuncDecl) {
	type acq struct {
		stmt ast.Stmt
		v    string
		pos  ast.Node
	}
	var acquires []acq
	hasDeferPut := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != 1 || len(m.Rhs) != 1 {
				return true
			}
			id, ok := m.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := m.Rhs[0].(*ast.CallExpr)
			if !ok || lint.CalleeName(call) != "GetBuf" {
				return true
			}
			acquires = append(acquires, acq{stmt: m, v: id.Name, pos: call})
		case *ast.DeferStmt:
			if lint.ContainsCall(m, settleCalls) {
				hasDeferPut = true // a deferred release covers every exit
			}
		case *ast.FuncLit:
			return false // closures get their own semantics; skip
		}
		return true
	})
	if len(acquires) == 0 || hasDeferPut {
		return
	}

	for _, a := range acquires {
		frames := findFrames(fd.Body, a.pos)
		if len(frames) == 0 {
			continue
		}
		inner := frames[len(frames)-1]
		w := &walker{settle: settlerFor(a.v)}
		acc := w.stmts(inner.list, inner.idx+1)

		// Propagate fall/break/continue up through the enclosing frames.
		for fi := len(frames) - 2; fi >= 0; fi-- {
			if w.bail {
				break
			}
			f := frames[fi]
			escaped := acc.fall
			switch f.encl.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				escaped = acc.fall || acc.brk || acc.cont
				acc.brk, acc.cont = false, false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				escaped = acc.fall || acc.brk
				acc.brk = false
			}
			acc.fall = false
			if escaped {
				acc = acc.or(w.stmts(f.list, f.idx+1))
			}
		}
		if w.bail {
			continue
		}
		if acc.ret || acc.fall {
			pass.Reportf(a.pos.Pos(), "pooled buffer acquired by GetBuf may leak: a control-flow path reaches return without PutBuf or a handoff (annotate intentional transfer with //tbon:allow poolrelease)")
		}
	}
}

// scanList enforces the sequential half of the contract within one
// statement list: no use of a buffer after its PutBuf, no second PutBuf,
// and no second ReleaseEncoded without a RetainEncoded in between.
func scanList(pass *lint.Pass, list []ast.Stmt) {
	released := map[string]bool{} // PutBuf'd buffer idents
	relEnc := map[string]bool{}   // ReleaseEncoded'd receiver roots
	for _, s := range list {
		for v := range released {
			if assignsFreshTo(s, v) {
				delete(released, v) // reacquired: tracking restarts
				continue
			}
			if !mentions(s, v) {
				continue
			}
			if put := findRelease(s, "PutBuf", v); put != nil {
				pass.Reportf(put.Pos(), "pooled buffer %s released twice: PutBuf after an earlier PutBuf with no reacquisition", v)
			} else {
				pass.Reportf(s.Pos(), "use of pooled buffer %s after PutBuf: the arena may already have re-handed its bytes", v)
			}
			delete(released, v)
		}
		// A retain anywhere in the statement (even a nested branch) clears
		// the release flag — conservative in the no-false-positive direction.
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && lint.CalleeName(call) == "RetainEncoded" {
				if r := receiverRoot(call); r != "" {
					delete(relEnc, r)
				}
			}
			return true
		})
		// Releases are recorded only at this list's own level: one nested in
		// a sub-block does not dominate the statements after it (the nested
		// list gets its own scan), and a deferred release is not sequential.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BlockStmt, *ast.DeferStmt, *ast.FuncLit:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch lint.CalleeName(call) {
			case "PutBuf":
				if len(call.Args) == 1 {
					if v := rootIdent(call.Args[0]); v != "" {
						released[v] = true
					}
				}
			case "ReleaseEncoded":
				r := receiverRoot(call)
				if r == "" {
					return true
				}
				if relEnc[r] {
					pass.Reportf(call.Pos(), "ReleaseEncoded called twice on %s with no intervening RetainEncoded: the second call gives up a reference this code no longer owns", r)
				}
				relEnc[r] = true
			}
			return true
		})
	}
}

// receiverRoot returns the leftmost identifier of a method call's receiver
// chain (p for p.ReleaseEncoded(), e for e.p.ReleaseEncoded()), or "".
func receiverRoot(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return rootIdent(sel.X)
}

// assignsFreshTo reports whether s assigns a new value to v without
// reading v: the tracked (released) buffer is replaced, not used.
func assignsFreshTo(s ast.Stmt, v string) bool {
	asg, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	hit := false
	for _, l := range asg.Lhs {
		if id, isIdent := l.(*ast.Ident); isIdent && id.Name == v {
			hit = true
		}
	}
	if !hit {
		return false
	}
	for _, r := range asg.Rhs {
		if mentions(r, v) {
			return false
		}
	}
	return true
}

// findRelease returns the call name(arg-rooted-at-v) under s, or nil.
func findRelease(s ast.Stmt, name, v string) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(s, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || lint.CalleeName(call) != name || len(call.Args) != 1 {
			return true
		}
		if rootIdent(call.Args[0]) == v {
			found = call
			return false
		}
		return true
	})
	return found
}
