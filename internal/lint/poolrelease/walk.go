package poolrelease

import "go/ast"

// This file is the reachability-without-settling walk shared in shape with
// the creditpair analyzer, parametrized by a settle predicate: it computes
// where control can go from a statement sequence while the tracked pooled
// buffer is still unsettled. goto/labels and a deferred settle bail out
// (analyzed conservatively as safe).

// outcome describes where control can go from a statement sequence while
// the buffer is still unsettled.
type outcome struct {
	fall bool // falls off the end of the sequence
	ret  bool // reaches a return
	brk  bool // reaches a break out of the enclosing loop/switch
	cont bool // reaches a continue of the enclosing loop
}

func (o outcome) or(p outcome) outcome {
	return outcome{o.fall || p.fall, o.ret || p.ret, o.brk || p.brk, o.cont || p.cont}
}

// none means every path settled the buffer.
var none = outcome{}

// walker evaluates reachability-without-settling over a function body.
type walker struct {
	settle func(ast.Node) bool
	bail   bool // goto/labels/deferred settle: analyze as safe
}

func (w *walker) stmts(list []ast.Stmt, from int) outcome {
	acc := none
	for i := from; i < len(list); i++ {
		r := w.stmt(list[i])
		acc.ret = acc.ret || r.ret
		acc.brk = acc.brk || r.brk
		acc.cont = acc.cont || r.cont
		if !r.fall {
			return acc // no unsettled path continues past this statement
		}
	}
	acc.fall = true
	return acc
}

func (w *walker) stmt(s ast.Stmt) outcome {
	if w.bail {
		return none
	}
	switch st := s.(type) {
	case nil:
		return outcome{fall: true}
	case *ast.ReturnStmt:
		if w.settle(st) {
			return none
		}
		return outcome{ret: true}
	case *ast.BranchStmt:
		if st.Label != nil {
			w.bail = true
			return none
		}
		switch st.Tok.String() {
		case "break":
			return outcome{brk: true}
		case "continue":
			return outcome{cont: true}
		default: // goto, fallthrough
			w.bail = true
			return none
		}
	case *ast.LabeledStmt:
		w.bail = true
		return none
	case *ast.DeferStmt:
		if w.settle(st) {
			w.bail = true // a deferred settle covers every exit
		}
		return outcome{fall: true}
	case *ast.BlockStmt:
		return w.stmts(st.List, 0)
	case *ast.IfStmt:
		if w.settle(st.Init) || w.settle(st.Cond) {
			return none
		}
		r := w.stmt(st.Body)
		if st.Else != nil {
			r = r.or(w.stmt(st.Else))
		} else {
			r.fall = true
		}
		return r
	case *ast.ForStmt:
		if w.settle(st.Init) || w.settle(st.Cond) || w.settle(st.Post) {
			return none
		}
		body := w.stmt(st.Body)
		out := outcome{ret: body.ret}
		out.fall = st.Cond != nil || body.brk
		return out
	case *ast.RangeStmt:
		if w.settle(st.X) {
			return none
		}
		body := w.stmt(st.Body)
		return outcome{fall: true, ret: body.ret} // empty range skips the body
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init, tag ast.Node
		var body *ast.BlockStmt
		hasDefault := false
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, tag, body = sw.Init, sw.Tag, sw.Body
		} else {
			ts := st.(*ast.TypeSwitchStmt)
			init, tag, body = ts.Init, ts.Assign, ts.Body
		}
		if w.settle(init) || w.settle(tag) {
			return none
		}
		out := none
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			r := w.stmts(cc.Body, 0)
			out.ret = out.ret || r.ret
			out.cont = out.cont || r.cont
			out.fall = out.fall || r.fall || r.brk
		}
		if !hasDefault {
			out.fall = true
		}
		return out
	case *ast.SelectStmt:
		out := none
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if w.settle(cc.Comm) {
				continue
			}
			r := w.stmts(cc.Body, 0)
			out.ret = out.ret || r.ret
			out.cont = out.cont || r.cont
			out.fall = out.fall || r.fall || r.brk
		}
		return out
	default:
		if w.settle(s) {
			return none
		}
		return outcome{fall: true}
	}
}

// frame is one step of the path from the function body down to the
// statement holding the acquisition.
type frame struct {
	list []ast.Stmt
	idx  int
	encl ast.Stmt // the statement the next-inner frame lives in
}

// findFrames locates the statement containing target and returns the chain
// of enclosing statement lists, outermost first.
func findFrames(body *ast.BlockStmt, target ast.Node) []frame {
	var path []frame
	var search func(list []ast.Stmt) bool
	contains := func(s ast.Stmt) bool {
		return s.Pos() <= target.Pos() && target.End() <= s.End()
	}
	search = func(list []ast.Stmt) bool {
		for i, s := range list {
			if !contains(s) {
				continue
			}
			path = append(path, frame{list: list, idx: i, encl: s})
			ast.Inspect(s, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok && n.Pos() <= target.Pos() && target.End() <= n.End() {
					for _, inner := range b.List {
						if contains(inner) {
							search(b.List)
							return false
						}
					}
				}
				return true
			})
			return true
		}
		return false
	}
	search(body.List)
	return path
}
