package poolrelease

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestPoolRelease(t *testing.T) {
	linttest.Run(t, Analyzer, "poolrelease")
}
