package creditpair

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestCreditPair(t *testing.T) {
	linttest.Run(t, Analyzer, "creditpair")
}
