// Package creditpair is a lostcancel-style checker for the credit
// protocol: every FlowLink.Acquire / TryAcquire / AcquireBudgeted (and
// Budget.Acquire) must, on every control-flow path from the acquisition to
// the function's exit, either spend the credit on a send or give it back —
// Refund, RefundBudgeted, Release, or Abort. A path that returns without
// doing either leaks a send credit: the link's window shrinks permanently
// and eventually wedges every sender sharing the link (DESIGN.md §8).
//
// Recognized acquisition shapes:
//
//	fl.AcquireBudgeted(b, stopA, stopB)       // statement: held afterwards
//	ok := fl.Acquire(a, b)                    // held afterwards (both arms)
//	if !fl.TryAcquire() { ... }               // failure arm exempt, held after
//	if cond || !fl.Acquire(a, b) { ... }      // same, inside a ||/&& chain
//	if fl.TryAcquire() { ... }                // held inside the then arm
//
// Functions that DEFINE the primitives (named Acquire/TryAcquire/
// AcquireBudgeted) are skipped, as are functions using goto/labels or a
// deferred release (analyzed conservatively as safe). Ownership transfer —
// returning still-spendable credits to the caller, as the egress
// scheduler's take does — is a deliberate exception: annotate it with
// //tbon:allow creditpair <reason>.
package creditpair

import (
	"go/ast"

	"repro/internal/lint"
)

// Analyzer is the creditpair invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "creditpair",
	Doc:  "every credit acquisition must be sent, refunded, or aborted on all control-flow paths",
	Run:  run,
}

var acquireNames = map[string]bool{
	"Acquire":         true,
	"TryAcquire":      true,
	"AcquireBudgeted": true,
}

// releases give a credit (or its budget stamp) back without sending.
var releases = map[string]bool{
	"Refund":         true,
	"RefundBudgeted": true,
	"Release":        true,
	"Abort":          true,
}

// consumes spend the credit on the wire (directly or by enqueueing into an
// egress queue that owns the accounting from then on).
var consumes = map[string]bool{
	"Send":       true,
	"SendBatch":  true,
	"SendPacket": true,
	"send":       true,
	"sendCtx":    true,
	"sendNow":    true,
	"sendAck":    true,
	"enqueue":    true,
	"Multicast":  true,
}

func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		if acquireNames[fd.Name.Name] {
			return // the primitive itself constructs credits for its caller
		}
		checkFunc(pass, fd)
	})
	return nil
}

// settles reports whether n contains any call that settles a held credit.
func settles(n ast.Node) bool {
	if n == nil {
		return false
	}
	ok := false
	ast.Inspect(n, func(m ast.Node) bool {
		if ok {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			name := lint.CalleeName(call)
			if releases[name] || consumes[name] {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// outcome describes where control can go from a statement sequence while
// the credit is still unsettled.
type outcome struct {
	fall bool // falls off the end of the sequence
	ret  bool // reaches a return
	brk  bool // reaches a break out of the enclosing loop/switch
	cont bool // reaches a continue of the enclosing loop
}

func (o outcome) or(p outcome) outcome {
	return outcome{o.fall || p.fall, o.ret || p.ret, o.brk || p.brk, o.cont || p.cont}
}

// none means every path settled the credit.
var none = outcome{}

// walker evaluates reachability-without-settling over a function body.
type walker struct {
	bail bool // goto/labels/deferred release: analyze as safe
}

func (w *walker) stmts(list []ast.Stmt, from int) outcome {
	acc := none
	for i := from; i < len(list); i++ {
		r := w.stmt(list[i])
		acc.ret = acc.ret || r.ret
		acc.brk = acc.brk || r.brk
		acc.cont = acc.cont || r.cont
		if !r.fall {
			return acc // no unsettled path continues past this statement
		}
	}
	acc.fall = true
	return acc
}

func (w *walker) stmt(s ast.Stmt) outcome {
	if w.bail {
		return none
	}
	switch st := s.(type) {
	case nil:
		return outcome{fall: true}
	case *ast.ReturnStmt:
		if settles(st) {
			return none
		}
		return outcome{ret: true}
	case *ast.BranchStmt:
		if st.Label != nil {
			w.bail = true
			return none
		}
		switch st.Tok.String() {
		case "break":
			return outcome{brk: true}
		case "continue":
			return outcome{cont: true}
		default: // goto, fallthrough
			w.bail = true
			return none
		}
	case *ast.LabeledStmt:
		w.bail = true
		return none
	case *ast.DeferStmt:
		if settles(st) {
			w.bail = true // a deferred settle covers every exit
		}
		return outcome{fall: true}
	case *ast.BlockStmt:
		return w.stmts(st.List, 0)
	case *ast.IfStmt:
		if settles(st.Init) || settles(st.Cond) {
			return none
		}
		r := w.stmt(st.Body)
		if st.Else != nil {
			r = r.or(w.stmt(st.Else))
		} else {
			r.fall = true
		}
		return r
	case *ast.ForStmt:
		if settles(st.Init) || settles(st.Cond) || settles(st.Post) {
			return none
		}
		body := w.stmt(st.Body)
		out := outcome{ret: body.ret}
		// The loop exits when the condition fails (possible iff there is a
		// condition) or via break; continue/fall re-enter the loop, which
		// can only repeat the same exits.
		out.fall = st.Cond != nil || body.brk
		return out
	case *ast.RangeStmt:
		if settles(st.X) {
			return none
		}
		body := w.stmt(st.Body)
		return outcome{fall: true, ret: body.ret} // empty range skips the body
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init, tag ast.Node
		var body *ast.BlockStmt
		hasDefault := false
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, tag, body = sw.Init, sw.Tag, sw.Body
		} else {
			ts := st.(*ast.TypeSwitchStmt)
			init, tag, body = ts.Init, ts.Assign, ts.Body
		}
		if settles(init) || settles(tag) {
			return none
		}
		out := none
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			r := w.stmts(cc.Body, 0)
			out.ret = out.ret || r.ret
			out.cont = out.cont || r.cont
			// break (explicit or implicit fall) exits the switch.
			out.fall = out.fall || r.fall || r.brk
		}
		if !hasDefault {
			out.fall = true
		}
		return out
	case *ast.SelectStmt:
		out := none
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if settles(cc.Comm) {
				continue
			}
			r := w.stmts(cc.Body, 0)
			out.ret = out.ret || r.ret
			out.cont = out.cont || r.cont
			out.fall = out.fall || r.fall || r.brk
		}
		return out
	default:
		if settles(s) {
			return none
		}
		return outcome{fall: true}
	}
}

// frame is one step of the path from the function body down to the
// statement holding the acquire call.
type frame struct {
	list []ast.Stmt
	idx  int
	encl ast.Stmt // the statement the next-inner frame lives in
}

// findFrames locates the statement containing pos and returns the chain of
// enclosing statement lists, outermost first.
func findFrames(body *ast.BlockStmt, target ast.Node) []frame {
	var path []frame
	var search func(list []ast.Stmt) bool
	contains := func(s ast.Stmt) bool {
		return s.Pos() <= target.Pos() && target.End() <= s.End()
	}
	search = func(list []ast.Stmt) bool {
		for i, s := range list {
			if !contains(s) {
				continue
			}
			path = append(path, frame{list: list, idx: i, encl: s})
			ast.Inspect(s, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok && n.Pos() <= target.Pos() && target.End() <= n.End() {
					// Recurse into the innermost block containing target.
					for j, inner := range b.List {
						if contains(inner) {
							_ = j
							search(b.List)
							return false
						}
					}
				}
				return true
			})
			return true
		}
		return false
	}
	search(body.List)
	return path
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	var acquires []*ast.CallExpr
	hasDefer := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.CallExpr:
			if acquireNames[lint.CalleeName(m)] {
				acquires = append(acquires, m)
			}
		case *ast.DeferStmt:
			if settles(m) {
				hasDefer = true
			}
		case *ast.FuncLit:
			return false // closures get their own semantics; skip
		}
		return true
	})
	if len(acquires) == 0 || hasDefer {
		return
	}

	for _, acq := range acquires {
		frames := findFrames(fd.Body, acq)
		if len(frames) == 0 {
			continue
		}
		inner := frames[len(frames)-1]

		w := &walker{}
		acc := none
		// If the acquire sits in an if-condition, the failure arm holds no
		// credit: start past the if when the call is negated, inside the
		// then-arm when it is positive.
		startIdx := inner.idx + 1
		if ifs, ok := inner.encl.(*ast.IfStmt); ok && ifs.Cond != nil && containsNode(ifs.Cond, acq) {
			if negated(ifs.Cond, acq) {
				// held only after the if; the then-arm is the failure arm
				// (it may also fall through to the same continuation, which
				// the walk below covers).
				acc = acc.or(w.stmts(inner.list, inner.idx+1))
				startIdx = len(inner.list) // consumed
			} else {
				r := w.stmt(ifs.Body)
				acc.ret = acc.ret || r.ret
				acc.brk = acc.brk || r.brk
				acc.cont = acc.cont || r.cont
				if r.fall {
					acc = acc.or(w.stmts(inner.list, inner.idx+1))
				}
				startIdx = len(inner.list)
			}
		}
		if startIdx <= inner.idx+1 {
			acc = acc.or(w.stmts(inner.list, inner.idx+1))
		}

		// Propagate fall/break/continue up through the enclosing frames.
		for fi := len(frames) - 2; fi >= 0; fi-- {
			if w.bail {
				break
			}
			f := frames[fi]
			escaped := acc.fall
			switch f.encl.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				escaped = acc.fall || acc.brk || acc.cont
				acc.brk, acc.cont = false, false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				escaped = acc.fall || acc.brk
				acc.brk = false
			}
			acc.fall = false
			if escaped {
				r := w.stmts(f.list, f.idx+1)
				acc = acc.or(r)
			}
		}

		if w.bail {
			continue
		}
		if acc.ret || acc.fall {
			pass.Reportf(acq.Pos(), "credit acquired by %s may leak: a control-flow path reaches return without a send or Refund/RefundBudgeted/Release/Abort (annotate intentional ownership transfer with //tbon:allow creditpair)", lint.CalleeName(acq))
		}
	}
}

// containsNode reports whether target lies within n.
func containsNode(n ast.Node, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}

// negated reports whether the acquire call appears under a ! operator
// inside cond (searching through parens and &&/|| chains).
func negated(cond ast.Expr, acq *ast.CallExpr) bool {
	neg := false
	var walk func(e ast.Expr, underNot bool)
	walk = func(e ast.Expr, underNot bool) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			walk(x.X, underNot)
		case *ast.UnaryExpr:
			if x.Op.String() == "!" {
				walk(x.X, !underNot)
			}
		case *ast.BinaryExpr:
			walk(x.X, underNot)
			walk(x.Y, underNot)
		case *ast.CallExpr:
			if x == acq && underNot {
				neg = true
			}
		}
	}
	walk(cond, false)
	return neg
}
