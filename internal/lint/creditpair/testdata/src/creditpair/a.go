// Fixture for the creditpair analyzer: every acquired send credit must be
// spent on a send or given back on every control-flow path.
package creditpair

import "errors"

type FlowLink struct{}

func (f *FlowLink) Acquire(a, b <-chan struct{}) bool { return true }
func (f *FlowLink) TryAcquire() bool                  { return true }
func (f *FlowLink) AcquireBudgeted(b *Budget, a, c <-chan struct{}) bool {
	return true
}
func (f *FlowLink) Refund(n int)         {}
func (f *FlowLink) RefundBudgeted(n int) {}
func (f *FlowLink) Abort()               {}
func (f *FlowLink) Send(p any) error     { return nil }

type Budget struct{}

func (b *Budget) Release(n int) {}

var errStalled = errors.New("stalled")
var errTooBig = errors.New("too big")

func tooBig() bool { return false }

func work() error { return nil }

// leakOnEarlyReturn acquires, then returns on the size check without
// refunding: the classic leak.
func leakOnEarlyReturn(f *FlowLink, stop <-chan struct{}) error {
	if !f.Acquire(stop, nil) { // want `credit acquired by Acquire may leak`
		return errStalled
	}
	if tooBig() {
		return errTooBig
	}
	return f.Send(struct{}{})
}

// leakStatementForm acquires in statement position and falls into an
// unguarded error return.
func leakStatementForm(f *FlowLink, b *Budget, stop <-chan struct{}) error {
	f.AcquireBudgeted(b, stop, nil) // want `credit acquired by AcquireBudgeted may leak`
	if err := work(); err != nil {
		return err
	}
	return f.Send(struct{}{})
}

// refundOnError settles every path: send on success, refund on the error
// arm, refund before the early return.
func refundOnError(f *FlowLink, stop <-chan struct{}) error {
	if !f.Acquire(stop, nil) {
		return errStalled
	}
	if tooBig() {
		f.Refund(1)
		return errTooBig
	}
	if err := f.Send(struct{}{}); err != nil {
		return err
	}
	return nil
}

// probe is the TryAcquire→Refund window-liveness probe (grantLandedLocked).
func probe(f *FlowLink) bool {
	if f == nil || !f.TryAcquire() {
		return false
	}
	f.Refund(1)
	return true
}

// abortOnShutdown settles via Abort.
func abortOnShutdown(f *FlowLink, stop <-chan struct{}, dying bool) error {
	if !f.Acquire(stop, nil) {
		return errStalled
	}
	if dying {
		f.Abort()
		return errStalled
	}
	return f.Send(struct{}{})
}

// drainLoop acquires and sends once per iteration; no credit survives an
// iteration boundary.
func drainLoop(f *FlowLink, ps []any, stop <-chan struct{}) {
	for _, p := range ps {
		if !f.Acquire(stop, nil) {
			return
		}
		_ = f.Send(p)
	}
}

// deferredRefund is covered by the deferred release on every exit.
func deferredRefund(f *FlowLink, stop <-chan struct{}) error {
	if !f.Acquire(stop, nil) {
		return errStalled
	}
	defer f.Refund(1)
	return work()
}

// take transfers credit ownership to the returned batch, which the caller
// is contractually bound to send or refund — the sanctioned exception,
// recorded with an auditable directive.
//
//tbon:allow creditpair credits transfer to the returned batch; the caller sends it or restores and refunds
func take(f *FlowLink, ps []any) ([]any, bool) {
	for range ps {
		if !f.TryAcquire() {
			return ps, true
		}
	}
	return ps, false
}
