// Fixture for the seqstamp analyzer: fresh upward data packets must carry
// an origin sequence stamp before egress enqueue.
package seqstamp

type Packet struct{ Seq uint64 }

func (p *Packet) WithSeq(s uint64) *Packet { return p }

func MakeSeq(rank int, ctr uint64) uint64 { return 0 }

type filter struct{}

func (f *filter) Transform(in []*Packet) ([]*Packet, error) { return in, nil }

type egress struct{}

func (e *egress) sendCtx(p *Packet, prio int, block bool) error { return nil }
func (e *egress) sendAck(p *Packet) error                       { return nil }
func (e *egress) send(p *Packet) error                          { return nil }

type link struct{}

func (l *link) Send(p *Packet) error { return nil }

type node struct {
	parentOut *egress
	childOut  []*egress
	tf        *filter
	rank      int
	ctr       uint64
}

// flushBad transforms and forwards upward without stamping: after a
// recovery the replayed copies are indistinguishable from fresh packets
// and get delivered twice.
func (n *node) flushBad(batch []*Packet) {
	out, _ := n.tf.Transform(batch)
	for _, p := range out {
		_ = n.parentOut.sendCtx(p, 0, true) // want `transforms packets and emits them upward without a Seq stamp`
	}
}

// flushGood stamps fresh outputs and preserves non-zero origin stamps.
func (n *node) flushGood(batch []*Packet) {
	out, _ := n.tf.Transform(batch)
	for _, p := range out {
		if p.Seq == 0 {
			n.ctr++
			p = p.WithSeq(MakeSeq(n.rank, n.ctr))
		}
		_ = n.parentOut.sendCtx(p, 0, true)
	}
}

// forward is an identity relay: no Transform, the origin Seq rides along.
func (n *node) forward(p *Packet) {
	_ = n.parentOut.sendCtx(p, 0, true)
}

// fanDown transforms for the downstream direction: downstream traffic has
// no replay ring, so no stamp is required.
func (n *node) fanDown(batch []*Packet) {
	out, _ := n.tf.Transform(batch)
	for _, p := range out {
		for _, q := range n.childOut {
			_ = q.send(p)
		}
	}
}

type BackEnd struct {
	rank int
	ctr  uint64
	out  *link
	eg   *egress
}

func (be *BackEnd) parentLink() *link { return be.out }

// SendPacket is the stamping chokepoint: every packet leaves with a Seq.
func (be *BackEnd) SendPacket(p *Packet) error {
	if p.Seq == 0 {
		be.ctr++
		p = p.WithSeq(MakeSeq(be.rank, be.ctr))
	}
	if be.eg != nil {
		return be.eg.send(p)
	}
	return be.parentLink().Send(p)
}

// Emit delegates to the chokepoint: fine.
func (be *BackEnd) Emit(p *Packet) error { return be.SendPacket(p) }

// FlushRaw bypasses the chokepoint without stamping.
func (be *BackEnd) FlushRaw(p *Packet) error {
	return be.parentLink().Send(p) // want `BackEnd.FlushRaw emits upward without stamping`
}
