package seqstamp

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSeqStamp(t *testing.T) {
	linttest.Run(t, Analyzer, "seqstamp")
}
