// Package seqstamp enforces the exactly-once sequencing contract
// (DESIGN.md §§7, 11): every data packet CREATED inside the overlay that
// flows toward the front-end must carry an origin sequence stamp before it
// reaches egress enqueue. Concretely:
//
//   - an intermediary that runs a Transform and forwards the outputs upward
//     (node.flushBatchesAck) must stamp fresh outputs with
//     packet.MakeSeq(rank, ctr) — forwarded packets keep their origin Seq;
//   - every BackEnd method that emits upward must stamp via MakeSeq/WithSeq
//     itself or delegate to SendPacket, the single stamping chokepoint.
//
// Unstamped fresh packets are invisible to the replay-suppression machinery:
// after a recovery they are re-delivered as duplicates, breaking the
// delivery invariant the chaos harness checks dynamically. This analyzer
// catches the omission at compile time instead of at soak time.
//
// The check is per-function and syntactic: a function that both constructs
// (calls Transform) and emits upward (sendAck, or send/sendCtx/sendNow
// through parentOut, or send through eg, or Send through parentLink) must
// mention MakeSeq or WithSeq. Downstream fan-out (sendDownstream, childOut)
// and front-end local delivery (st.deliver — the ack base case) are not
// sinks: downstream traffic carries no replay ring.
package seqstamp

import (
	"go/ast"

	"repro/internal/lint"
)

// Analyzer is the seqstamp invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "seqstamp",
	Doc:  "fresh upward data packets must be Seq-stamped (MakeSeq/WithSeq) before egress enqueue",
	Run:  run,
}

// constructors mark a function as producing fresh packets.
var constructors = map[string]bool{
	"Transform": true,
}

// stampNames are the identifiers whose presence satisfies the contract.
var stampNames = map[string]bool{
	"MakeSeq": true,
	"WithSeq": true,
}

// funMentions reports whether the callee expression of call mentions any of
// the names (as an identifier or selector component) — this sees through
// chains like be.parentLink().Send where the receiver is itself a call.
func funMentions(call *ast.CallExpr, names map[string]bool) bool {
	found := false
	ast.Inspect(call.Fun, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return true
	})
	return found
}

var upwardOwners = map[string]bool{"parentOut": true, "parentLink": true, "eg": true}

// upwardSink reports whether call emits toward the front-end.
func upwardSink(call *ast.CallExpr) bool {
	switch lint.CalleeName(call) {
	case "sendAck":
		return true
	case "send", "sendCtx", "sendNow", "Send":
		return funMentions(call, upwardOwners)
	}
	return false
}

// mentionsStamp reports whether the function body references MakeSeq or
// WithSeq anywhere.
func mentionsStamp(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && stampNames[id.Name] {
			found = true
		}
		return true
	})
	return found
}

func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		var sinks []*ast.CallExpr
		constructs := false
		delegates := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := lint.CalleeName(call)
			if constructors[name] {
				constructs = true
			}
			if name == "SendPacket" {
				delegates = true
			}
			if upwardSink(call) {
				sinks = append(sinks, call)
			}
			return true
		})
		if len(sinks) == 0 || mentionsStamp(fd.Body) {
			return
		}
		isBackEnd := lint.RecvTypeName(fd) == "BackEnd"
		switch {
		case constructs:
			pass.Reportf(sinks[0].Pos(), "%s transforms packets and emits them upward without a Seq stamp: fresh outputs need packet.MakeSeq (forwarded packets keep their origin Seq) or replay suppression will re-deliver them as duplicates", fd.Name.Name)
		case isBackEnd && !delegates:
			pass.Reportf(sinks[0].Pos(), "BackEnd.%s emits upward without stamping: stamp via packet.MakeSeq/WithSeq or delegate to SendPacket, the stamping chokepoint", fd.Name.Name)
		}
	})
	return nil
}
