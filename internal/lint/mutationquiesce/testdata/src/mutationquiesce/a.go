// Fixture for the mutationquiesce analyzer: topology-mutation primitives
// must run under the quiesce barrier.
package mutationquiesce

type link struct{}

type node struct{}

func (n *node) quiesceShards(f func()) { f() }
func (n *node) quiesce(f func())       { f() }
func (n *node) installChild(l *link)   {}
func (n *node) setLink(l *link)        {}
func (n *node) applyAdoption()         {}
func (n *node) rebuildSlots(k int)     {}

func cond() bool { return false }

// wrapped mutates inside the barrier's func literal: the compliant shape.
func wrapped(n *node, l *link) {
	n.quiesceShards(func() {
		n.installChild(l)
		n.setLink(l)
	})
}

// wrappedNested reaches the primitive through a closure nested inside the
// barrier literal; span containment still covers it.
func wrappedNested(n *node, l *link) {
	n.quiesce(func() {
		fix := func() { n.applyAdoption() }
		fix()
	})
}

// bare mutates with the data plane still running.
func bare(n *node, l *link) {
	n.installChild(l) // want `installChild mutates routing state outside the quiesce barrier`
}

// dominated parks the plane with an empty barrier first (the shutdown
// shape): every path to the mutation passes the quiesce.
func dominated(n *node, l *link) {
	n.quiesceShards(func() {})
	n.setLink(l)
}

// dominatedInBranch quiesces unconditionally before branching; the
// mutation inside the branch is still dominated.
func dominatedInBranch(n *node, l *link) {
	n.quiesceShards(func() {})
	if cond() {
		n.installChild(l)
	}
}

// conditionalBarrier only quiesces on one arm, so the mutation after the
// if is reachable with the plane live.
func conditionalBarrier(n *node, l *link) {
	if cond() {
		n.quiesceShards(func() {})
	}
	n.setLink(l) // want `setLink mutates routing state outside the quiesce barrier`
}

// barrierTooLate quiesces after the mutation; first execution races.
func barrierTooLate(n *node, l *link) {
	n.installChild(l) // want `installChild mutates routing state outside the quiesce barrier`
	n.quiesceShards(func() {})
}

// escapedClosure hands the primitive to a goroutine outside any barrier.
func escapedClosure(n *node, l *link) {
	go func() {
		n.setLink(l) // want `setLink mutates routing state outside the quiesce barrier`
	}()
}

// waived is deliberate pre-publication setup, suppressed by annotation.
func waived(n *node, l *link) {
	n.rebuildSlots(0) //tbon:allow mutationquiesce state not yet published to any shard
}
