// Package mutationquiesce enforces the topology-mutation barrier: the
// primitives that rewire a live routing process — installChild, setLink,
// applyAdoption, repairStreams, rebuildSlots, redispatchStash — mutate
// state the shard pipelines read without locks, so every call must happen
// with the data plane parked. A call site is compliant when it sits
// inside the func-literal argument of quiesce/quiesceShards (the barrier
// runs it with every shard drained and stopped), or when an unconditional
// quiesce call precedes it on every control-flow path from the function's
// entry (the adopt/reparent orchestration shape). Anything else is a
// data race with the routers by construction (DESIGN.md §9, §13).
//
// Setup code that mutates state no pipeline can see yet — a stream being
// constructed, a back-end whose sole goroutine owns the egress, a flat
// front-end installing a link no stream routes to — is a deliberate
// exception: annotate it with //tbon:allow mutationquiesce <reason>.
package mutationquiesce

import (
	"go/ast"
	"go/token"

	"repro/internal/lint"
)

// Analyzer is the mutation-barrier checker.
var Analyzer = &lint.Analyzer{
	Name: "mutationquiesce",
	Doc:  "routing-state mutation primitives must run under the quiesce barrier",
	Run:  run,
}

// primitives mutate routing state the shard pipelines read lock-free.
var primitives = map[string]bool{
	"installChild":    true,
	"setLink":         true,
	"applyAdoption":   true,
	"repairStreams":   true,
	"rebuildSlots":    true,
	"redispatchStash": true,
}

// quiesces park the data plane and run their func-literal argument with
// every shard drained.
var quiesces = map[string]bool{
	"quiesce":       true,
	"quiesceShards": true,
}

func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		if primitives[fd.Name.Name] || quiesces[fd.Name.Name] {
			return // the primitives and the barrier itself compose freely
		}
		checkFunc(pass, fd)
	})
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Spans of func-literal arguments to quiesce calls: any primitive
	// call inside one runs with the plane parked.
	type span struct{ lo, hi token.Pos }
	var parked []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !quiesces[lint.CalleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				parked = append(parked, span{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	inParked := func(pos token.Pos) bool {
		for _, s := range parked {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !primitives[lint.CalleeName(call)] {
			return true
		}
		if inParked(call.Pos()) {
			return true
		}
		if dominatedByQuiesce(fd.Body, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s mutates routing state outside the quiesce barrier: wrap it in quiesceShards/quiesce or precede it with one on all paths (annotate pre-publication setup with //tbon:allow mutationquiesce)",
			lint.CalleeName(call))
		return true
	})
}

// dominatedByQuiesce reports whether every control-flow path from the
// function entry to target passes an unconditional quiesce call first:
// walking the chain of enclosing statement lists, some sibling statement
// before the one holding target must quiesce at its own top level (not
// under a branch, loop, or closure — those may not execute).
func dominatedByQuiesce(body *ast.BlockStmt, target ast.Node) bool {
	contains := func(s ast.Stmt) bool {
		return s.Pos() <= target.Pos() && target.End() <= s.End()
	}
	var walkList func(list []ast.Stmt) bool
	walkList = func(list []ast.Stmt) bool {
		for i, s := range list {
			if !contains(s) {
				continue
			}
			for j := 0; j < i; j++ {
				if unconditionalQuiesce(list[j]) {
					return true
				}
			}
			// Descend into the innermost statement list still containing
			// the target; the enclosing statement's own structure (if
			// arms, loop bodies) contributes no preceding siblings.
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if b, ok := n.(*ast.BlockStmt); ok && b != nil && b.Pos() <= target.Pos() && target.End() <= b.End() {
					if walkList(b.List) {
						found = true
					}
					return !found
				}
				return true
			})
			return found
		}
		return false
	}
	return walkList(body.List)
}

// unconditionalQuiesce reports whether s always executes a quiesce call
// when s itself executes: the call may not hide under a branch, loop,
// select, or function literal within s.
func unconditionalQuiesce(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false // conditional or deferred: does not dominate
		case *ast.CallExpr:
			if quiesces[lint.CalleeName(m)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
