package mutationquiesce

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestMutationQuiesce(t *testing.T) {
	linttest.Run(t, Analyzer, "mutationquiesce")
}
