// Package ctrlfifo guards the two-lane ingress/egress contract (DESIGN.md
// §§6, 11): control packets are FIFO with the data they configure —
// a stream-open must not overtake the close of its predecessor, an epoch
// barrier must not overtake the data it fences. The ONLY control op allowed
// to leave the ordered lane is the heartbeat beacon (opHeartbeat): it is
// periodic, lossy-safe, and carries no data-plane ordering semantics, so it
// rides the order-free control lane to stay live under data backpressure.
//
// This analyzer finds the order-free fast paths — sends into a ctrl/
// ctrlLane channel and appends onto an egress scheduler's .ctrl lane — and
// requires each to be dominated by a guard that checks for the allowlisted
// op: a call to orderFreeControl(...) or a comparison against opHeartbeat
// in an enclosing if/case condition. Routing any other control op through
// these paths would let it overtake the data lane, which is exactly the
// reordering the FIFO contract forbids.
//
// Extending the allowlist is an API decision, not a lint tweak: add the new
// op to orderFreeControl (one chokepoint, every guard inherits it) and to
// the allowlist here, with a DESIGN.md §11 note on why reordering is safe.
package ctrlfifo

import (
	"go/ast"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the ctrlfifo invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "ctrlfifo",
	Doc:  "only allowlisted order-free control (opHeartbeat) may bypass the FIFO lanes",
	Run:  run,
}

// allowlist names the idents whose presence in a guard condition authorizes
// the order-free path. orderFreeControl is the chokepoint predicate;
// opHeartbeat is the one allowlisted op for direct comparisons.
var allowlist = map[string]bool{
	"orderFreeControl": true,
	"opHeartbeat":      true,
}

// ctrlChan reports whether e names an order-free control channel (ctrl,
// ctrlLane, or a selector ending in one).
func ctrlChan(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name == "ctrl" || x.Name == "ctrlLane"
	case *ast.SelectorExpr:
		return x.Sel.Name == "ctrl" || x.Sel.Name == "ctrlLane"
	}
	return false
}

// mentionsAllowed reports whether n references an allowlisted ident.
func mentionsAllowed(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && allowlist[id.Name] {
			found = true
		}
		return true
	})
	return found
}

// guardStack walks a function body tracking the conditions dominating each
// node: if-conditions (with init), case clauses, and the function's own
// name (a helper named for the allowlisted op — e.g. handleOrderFree,
// relayHeartbeat — is itself the guard, checked at its call sites).
func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		// A function whose name marks it as the order-free handler is
		// trusted wholesale: its single caller sits behind the real guard.
		lname := strings.ToLower(fd.Name.Name)
		if strings.Contains(lname, "orderfree") || strings.Contains(lname, "heartbeat") {
			return
		}
		check(pass, fd.Body, false)
	})
	return nil
}

// check recursively walks stmts; guarded is true once an enclosing
// condition mentioned the allowlist.
func check(pass *lint.Pass, n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	switch st := n.(type) {
	case *ast.IfStmt:
		check(pass, st.Init, guarded)
		g := guarded || mentionsAllowed(st.Init) || mentionsAllowed(st.Cond)
		check(pass, st.Body, g)
		// The else arm is NOT covered by the then-guard.
		check(pass, st.Else, guarded)
	case *ast.SwitchStmt:
		check(pass, st.Init, guarded)
		tagAllowed := mentionsAllowed(st.Tag)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			g := guarded || (tagAllowed && cc.List != nil) || mentionsAllowed2(cc.List)
			for _, s := range cc.Body {
				check(pass, s, g)
			}
		}
	case *ast.SendStmt:
		if ctrlChan(st.Chan) && !guarded {
			pass.Reportf(st.Pos(), "send into the order-free control lane without an opHeartbeat/orderFreeControl guard: non-allowlisted control must stay FIFO with the data lane")
		}
		walkChildren(pass, st, guarded)
	case *ast.AssignStmt:
		// s.ctrl = append(s.ctrl, p) — the scheduler's order-free lane.
		for i, lhs := range st.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "ctrl" || i >= len(st.Rhs) {
				continue
			}
			if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok &&
				lint.CalleeName(call) == "append" && len(call.Args) > 1 && !guarded {
				pass.Reportf(st.Pos(), "append onto the order-free ctrl lane without an opHeartbeat/orderFreeControl guard: non-allowlisted control must stay FIFO with the data lane")
			}
		}
		walkChildren(pass, st, guarded)
	case *ast.FuncLit:
		check(pass, st.Body, guarded)
	default:
		walkChildren(pass, n, guarded)
	}
}

// walkChildren recurses into direct children preserving the guard state,
// without re-dispatching on n itself.
func walkChildren(pass *lint.Pass, n ast.Node, guarded bool) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m == nil {
			return false
		}
		check(pass, m, guarded)
		return false
	})
}

// mentionsAllowed2 checks a list of expressions.
func mentionsAllowed2(list []ast.Expr) bool {
	for _, e := range list {
		if mentionsAllowed(e) {
			return true
		}
	}
	return false
}
