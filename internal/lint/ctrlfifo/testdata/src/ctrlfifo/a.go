// Fixture for the ctrlfifo analyzer: only allowlisted order-free control
// (opHeartbeat) may leave the FIFO lanes.
package ctrlfifo

type Packet struct{ Tag int32 }

const tagControl = 0

var opHeartbeat int64 = 4

func ctrlOp(p *Packet) (int64, error) { return opHeartbeat, nil }

func orderFreeControl(p *Packet) bool {
	op, err := ctrlOp(p)
	return err == nil && op == opHeartbeat
}

// splitGood diverts only the allowlisted op, behind the chokepoint
// predicate.
func splitGood(ps []*Packet, ctrl chan<- *Packet) []*Packet {
	var kept []*Packet
	for _, p := range ps {
		if orderFreeControl(p) {
			select {
			case ctrl <- p:
			default:
			}
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// splitBad routes EVERY control packet order-free: a stream-close would
// overtake the data it fences.
func splitBad(ps []*Packet, ctrl chan<- *Packet) []*Packet {
	var kept []*Packet
	for _, p := range ps {
		if p.Tag == tagControl {
			ctrl <- p // want `send into the order-free control lane without an opHeartbeat/orderFreeControl guard`
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

type sched struct {
	ctrl []*Packet
	data int
}

// addGood gates the order-free lane on the allowlisted op.
func (s *sched) addGood(p *Packet, op int64) {
	if op == opHeartbeat {
		s.ctrl = append(s.ctrl, p)
		return
	}
	s.data++
}

// addGoodSwitch shows the case-clause guard form.
func (s *sched) addGoodSwitch(p *Packet, op int64) {
	switch op {
	case opHeartbeat:
		s.ctrl = append(s.ctrl, p)
	default:
		s.data++
	}
}

// addBad puts every control packet on the order-free lane.
func (s *sched) addBad(p *Packet) {
	if p.Tag == tagControl {
		s.ctrl = append(s.ctrl, p) // want `append onto the order-free ctrl lane without an opHeartbeat/orderFreeControl guard`
		return
	}
	s.data++
}

// elseBad: the guard's ELSE arm is exactly the non-allowlisted traffic.
func elseBad(p *Packet, ctrl chan<- *Packet, data chan<- *Packet) {
	if orderFreeControl(p) {
		ctrl <- p
	} else {
		ctrl <- p // want `send into the order-free control lane without an opHeartbeat/orderFreeControl guard`
	}
}

// dataLane sends on non-control channels freely.
func dataLane(p *Packet, inbox chan<- *Packet) {
	inbox <- p
}
