package ctrlfifo

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestCtrlFifo(t *testing.T) {
	linttest.Run(t, Analyzer, "ctrlfifo")
}
