package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks up from start to the directory containing go.mod.
func ModuleRoot(start string) (string, error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above %s", start)
		}
		dir = parent
	}
}

// skipDir reports whether a directory never contributes lintable packages:
// testdata trees (analyzer fixtures), VCS metadata, and hidden/underscore
// directories, mirroring the go tool's rules.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// GoDirs returns every directory under root (inclusive) that contains at
// least one non-test .go file, sorted.
func GoDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ExpandPatterns resolves go-tool-style package patterns relative to cwd:
// "./..." and "dir/..." expand recursively, anything else is a single
// directory. An empty pattern list means "./...".
func ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(dirs ...string) {
		for _, d := range dirs {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(cwd, strings.TrimSuffix(rest, "/"))
			if rest == "" || rest == "./" {
				base = cwd
			}
			dirs, err := GoDirs(base)
			if err != nil {
				return nil, err
			}
			add(dirs...)
			continue
		}
		add(filepath.Join(cwd, pat))
	}
	sort.Strings(out)
	return out, nil
}

// ParseDir parses a directory's non-test .go files with comments.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LintDirs parses each directory as one package and runs the analyzers,
// returning all surviving diagnostics in deterministic order.
func LintDirs(fset *token.FileSet, dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, dir := range dirs {
		files, err := ParseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		ds, err := RunAnalyzers(fset, files, dir, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}
