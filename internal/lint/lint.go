// Package lint is a dependency-free reimplementation of the golang.org/x/
// tools go/analysis contract, sized for this repository: an Analyzer is a
// named Run function over the parsed files of one package, reporting
// Diagnostics at token positions. The module deliberately has no external
// dependencies, so the suite of repo-specific invariant checkers under
// internal/lint/* (batchalias, creditpair, lockorder, seqstamp, ctrlfifo)
// is written against this API instead; an analyzer written here ports to
// x/tools/go/analysis by renaming the imports.
//
// The framework is purely syntactic (go/ast, no go/types): every analyzer
// encodes a repo contract in terms of the repo's own naming conventions
// (mutex field names, Recv/RecvBatch, MakeSeq, opHeartbeat, ...), which is
// exactly the level the DESIGN.md invariants are stated at.
//
// Suppression: a comment of the form
//
//	//tbon:allow <analyzer> <reason>
//
// on the same line as a diagnostic, or in the doc comment of the enclosing
// function, suppresses that analyzer's diagnostics there. Every allow is an
// auditable exception; the reason is mandatory by convention.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //tbon:allow
	// directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed files through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files (comments retained; _test.go
	// files are excluded by the loader).
	Files []*ast.File
	// Dir is the package directory, for diagnostics and logs.
	Dir string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// String formats the diagnostic like a compiler error, with the analyzer
// name bracketed so the failing check is greppable.
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// allowDirective is the suppression comment prefix.
const allowDirective = "//tbon:allow "

// allowSpec records where one //tbon:allow directive applies.
type allowSpec struct {
	analyzer string
	file     string
	// line is the directive's own line (same-line suppression).
	line int
	// funcStart/funcEnd cover the enclosing function when the directive
	// sits in a function's doc comment; zero otherwise.
	funcStart, funcEnd token.Pos
}

// collectAllows gathers every //tbon:allow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowSpec {
	var specs []allowSpec
	for _, f := range files {
		// Map each function's doc comment to its body range.
		type span struct{ start, end token.Pos }
		docSpans := map[*ast.CommentGroup]span{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docSpans[fd.Doc] = span{fd.Pos(), fd.End()}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					// A reasonless allow is itself a finding; leave the
					// directive inert so the suppressed diagnostic fires.
					continue
				}
				spec := allowSpec{
					analyzer: name,
					file:     fset.Position(c.Pos()).Filename,
					line:     fset.Position(c.Pos()).Line,
				}
				if sp, ok := docSpans[cg]; ok {
					spec.funcStart, spec.funcEnd = sp.start, sp.end
				}
				specs = append(specs, spec)
			}
		}
	}
	return specs
}

// suppressed reports whether d is covered by any allow directive.
func suppressed(fset *token.FileSet, d Diagnostic, allows []allowSpec) bool {
	pos := fset.Position(d.Pos)
	for _, a := range allows {
		if a.analyzer != d.Analyzer && a.analyzer != "all" {
			continue
		}
		if a.funcStart != 0 {
			if d.Pos >= a.funcStart && d.Pos < a.funcEnd {
				return true
			}
			continue
		}
		if a.file == pos.Filename && a.line == pos.Line {
			return true
		}
	}
	return false
}

// RunAnalyzers runs each analyzer over the parsed package, applying
// //tbon:allow suppression, and returns the surviving diagnostics in
// position order.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Dir: dir}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", dir, a.Name, err)
		}
		for _, d := range pass.diags {
			if !suppressed(fset, d, allows) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// --- shared AST helpers used by several analyzers ---

// CalleeName returns the bare name a call invokes: Sel for x.Sel(...),
// the identifier for f(...), "" otherwise.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// ChainContains reports whether the selector chain of a call's receiver
// mentions name (e.g. ChainContains(`n.parentOut.sendAck(...)`, "parentOut")).
func ChainContains(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for x := sel.X; x != nil; {
		switch e := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == name {
				return true
			}
			x = e.X
		case *ast.Ident:
			return e.Name == name
		default:
			return false
		}
	}
	return false
}

// ContainsCall reports whether any call under n invokes one of names
// (matched against CalleeName).
func ContainsCall(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && names[CalleeName(call)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// FuncsOf yields every function declaration with a body in the files.
func FuncsOf(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// RecvTypeName returns the bare name of a method's receiver type, or "".
func RecvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// RecvVarName returns the name of a method's receiver variable, or "".
func RecvVarName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
