// Package lockorder builds a static lock graph over the repo's mutexes and
// reports two contract violations (DESIGN.md §11):
//
//  1. Order inversions. Every observed acquisition "B locked while A held"
//     adds the edge A→B; any cycle in the resulting graph is a potential
//     deadlock. The repo's sanctioned orders are flushMu→mu on egressQueue
//     and pipeMu→(egress locks) on the shard pipeline; this analyzer derives
//     them from the code rather than hard-coding them, so a new inversion is
//     caught no matter which half of it is new.
//
//  2. Blocking while holding a queue mutex. egressQueue.mu guards O(1)
//     bookkeeping and must never be held across a channel send, a link
//     send, a credit Acquire, or a hook-running Refill (Refund is
//     hook-free and explicitly safe). Other mutexes (recvMu, lane.mu,
//     pipeMu) are allowed to be held across blocking calls by design.
//
// Lock identity is syntactic: the mutex field name, with the generic name
// "mu" qualified by the owning type (the method receiver's type, or the
// last selector component otherwise — "nw.mu" and "fe.nw.mu" both key as
// "nw.mu"). Functions whose name ends in "Locked" are analyzed with their
// receiver's mu pre-held, matching the repo's calling convention. Calls are
// resolved by bare name to per-function acquisition summaries computed to a
// fixed point, so "holds A, calls f, f locks B" also contributes A→B.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the lockorder invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "detect mutex order inversions and blocking operations under a queue mutex",
	Run:  run,
}

// queueMutex marks the keys subject to the no-blocking rule.
func queueMutex(key string) bool {
	return key == "egressQueue.mu" || key == "mu"
}

// blockingCalls may block indefinitely (on a peer, a window, or a hook)
// and therefore must not run under a queue mutex.
var blockingCalls = map[string]bool{
	"Send":            true,
	"SendBatch":       true,
	"send":            true,
	"sendCtx":         true,
	"sendNow":         true,
	"sendAck":         true,
	"Acquire":         true,
	"AcquireBudgeted": true,
	"Refill":          true,
}

// lockKey derives the lock identity for a call like x.f.Lock(): the field
// name, qualified by the receiver's type (or the selector base) when the
// field is the generic "mu". Returns "" for non-mutex-shaped calls.
func lockKey(call *ast.CallExpr, recvVar, recvType string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		field := base.Sel.Name
		if field != "mu" {
			return field
		}
		// Qualify: x.mu where x is the method receiver → Type.mu, else the
		// nearest selector component → comp.mu.
		switch owner := ast.Unparen(base.X).(type) {
		case *ast.Ident:
			if owner.Name == recvVar && recvType != "" {
				return recvType + ".mu"
			}
			return owner.Name + ".mu"
		case *ast.SelectorExpr:
			return owner.Sel.Name + ".mu"
		}
		return "mu"
	case *ast.Ident:
		// mu.Lock() on a package-level or local mutex.
		if strings.HasSuffix(base.Name, "mu") || strings.HasSuffix(base.Name, "Mu") {
			return base.Name
		}
	}
	return ""
}

// edge is one observed "to acquired while from held" fact.
type edge struct {
	from, to string
	pos      token.Pos
}

// state threads the per-function walk.
type state struct {
	pass      *lint.Pass
	recvVar   string
	recvType  string
	held      map[string]bool
	summaries map[string]map[string]bool
	imports   map[string]bool
	edges     *[]edge
	reported  map[token.Pos]bool
}

// isPackageCall reports whether call's receiver is an imported package name.
func (st *state) isPackageCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && st.imports[id.Name]
}

func (st *state) heldKeys() []string {
	keys := make([]string, 0, len(st.held))
	for k, v := range st.held {
		if v {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// event processes one call expression for lock/unlock/edge/blocking effects.
func (st *state) event(call *ast.CallExpr, inDefer bool) {
	name := lint.CalleeName(call)
	switch name {
	case "Lock", "RLock", "TryLock":
		if key := lockKey(call, st.recvVar, st.recvType); key != "" {
			for _, h := range st.heldKeys() {
				if h != key {
					*st.edges = append(*st.edges, edge{from: h, to: key, pos: call.Pos()})
				}
			}
			st.held[key] = true
		}
		return
	case "Unlock", "RUnlock":
		if inDefer {
			return // deferred release: held to function end
		}
		if key := lockKey(call, st.recvVar, st.recvType); key != "" {
			st.held[key] = false
		}
		return
	}

	// Blocking call under a queue mutex?
	if blockingCalls[name] {
		for _, h := range st.heldKeys() {
			if queueMutex(h) && !st.reported[call.Pos()] {
				st.reported[call.Pos()] = true
				st.pass.Reportf(call.Pos(), "%s may block while holding %s: the queue mutex guards O(1) bookkeeping only — release it before sending or acquiring credit", name, h)
			}
		}
	}

	// Cross-function edges via the callee's acquisition summary. Two
	// summaries are knowably wrong and skipped: *Locked callees (they run
	// under the caller's mu by convention and may legitimately drop and
	// retake it — their true edges come from their own seeded walk), and
	// package-qualified calls (pkg.Recover is not this package's Recover).
	if strings.HasSuffix(name, "Locked") || st.isPackageCall(call) {
		return
	}
	if sum := st.summaries[name]; sum != nil {
		for _, h := range st.heldKeys() {
			for k := range sum {
				if k != h {
					*st.edges = append(*st.edges, edge{from: h, to: k, pos: call.Pos()})
				}
			}
		}
	}
}

// scanExpr walks an expression (or simple statement) in source order,
// firing event for each call; nested FuncLits are skipped.
func (st *state) scanExpr(n ast.Node, inDefer bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch c := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Visit arguments first (inner calls evaluate first), then the
			// call itself. ast.Inspect is pre-order, so recurse manually.
			for _, a := range c.Args {
				st.scanExpr(a, inDefer)
			}
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
				st.scanExpr(sel.X, inDefer)
			}
			st.event(c, inDefer)
			return false
		}
		return true
	})
}

func clone(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// walkStmts processes statements sequentially, mutating st.held; branch
// bodies run on cloned held-sets (their lock effects do not escape).
func (st *state) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		st.walkStmt(s)
	}
}

func (st *state) walkStmt(s ast.Stmt) {
	switch n := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.walkStmts(n.List)
	case *ast.DeferStmt:
		st.scanExpr(n.Call, true)
	case *ast.GoStmt:
		// Runs concurrently; its lock behavior is its own function's problem
		// (FuncLit bodies are analyzed separately with an empty held set).
		if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
			st.scanExpr(n.Call.Fun, false)
		}
	case *ast.IfStmt:
		st.walkStmt(n.Init)
		st.scanExpr(n.Cond, false)
		saved := st.held
		st.held = clone(saved)
		st.walkStmt(n.Body)
		st.held = clone(saved)
		st.walkStmt(n.Else)
		st.held = saved
	case *ast.ForStmt:
		st.walkStmt(n.Init)
		st.scanExpr(n.Cond, false)
		saved := st.held
		st.held = clone(saved)
		st.walkStmt(n.Body)
		st.walkStmt(n.Post)
		st.held = saved
	case *ast.RangeStmt:
		st.scanExpr(n.X, false)
		saved := st.held
		st.held = clone(saved)
		st.walkStmt(n.Body)
		st.held = saved
	case *ast.SwitchStmt:
		st.walkStmt(n.Init)
		st.scanExpr(n.Tag, false)
		saved := st.held
		for _, c := range n.Body.List {
			st.held = clone(saved)
			st.walkStmts(c.(*ast.CaseClause).Body)
		}
		st.held = saved
	case *ast.TypeSwitchStmt:
		st.walkStmt(n.Init)
		saved := st.held
		for _, c := range n.Body.List {
			st.held = clone(saved)
			st.walkStmts(c.(*ast.CaseClause).Body)
		}
		st.held = saved
	case *ast.SelectStmt:
		// A select with a default clause never blocks: its comm sends are
		// exempt from the queue-mutex rule (egress uses this for best-effort
		// slot reacquisition under mu).
		hasDefault := false
		for _, c := range n.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		saved := st.held
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			st.held = clone(saved)
			if cc.Comm != nil {
				if snd, ok := cc.Comm.(*ast.SendStmt); ok && hasDefault {
					st.scanExpr(snd.Chan, false)
					st.scanExpr(snd.Value, false)
				} else {
					st.walkStmt(cc.Comm)
				}
			}
			st.walkStmts(cc.Body)
		}
		st.held = saved
	case *ast.SendStmt:
		for _, h := range st.heldKeys() {
			if queueMutex(h) && !st.reported[n.Pos()] {
				st.reported[n.Pos()] = true
				st.pass.Reportf(n.Pos(), "channel send while holding %s: the queue mutex guards O(1) bookkeeping only — release it before communicating", h)
			}
		}
		st.scanExpr(n.Chan, false)
		st.scanExpr(n.Value, false)
	case *ast.LabeledStmt:
		st.walkStmt(n.Stmt)
	default:
		st.scanExpr(s, false)
	}
}

// directAcquires returns the lock keys a function body may acquire,
// ignoring FuncLits (they run on other goroutines or later).
func directAcquires(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	recvVar, recvType := lint.RecvVarName(fd), lint.RecvTypeName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch lint.CalleeName(call) {
		case "Lock", "RLock", "TryLock":
			if key := lockKey(call, recvVar, recvType); key != "" {
				out[key] = true
			}
		}
		return true
	})
	return out
}

// importNames collects the package names a file's calls may be qualified
// with (the local alias, or the import path's last element).
func importNames(f *ast.File) map[string]bool {
	out := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Name != nil {
			out[imp.Name.Name] = true
			continue
		}
		path := strings.Trim(imp.Path.Value, `"`)
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			path = path[i+1:]
		}
		out[path] = true
	}
	return out
}

func run(pass *lint.Pass) error {
	// Pass 1: per-function direct acquisition summaries, then transitive
	// closure over bare-name call resolution. Package-qualified calls do
	// not resolve to this package's functions.
	summaries := map[string]map[string]bool{}
	calls := map[string]map[string]bool{} // caller name -> callee names
	fileImports := map[*ast.File]map[string]bool{}
	for _, f := range pass.Files {
		fileImports[f] = importNames(f)
		imports := fileImports[f]
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if summaries[name] == nil {
				summaries[name] = map[string]bool{}
			}
			for k := range directAcquires(fd) {
				summaries[name][k] = true
			}
			if calls[name] == nil {
				calls[name] = map[string]bool{}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				c, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && imports[id.Name] {
						return true
					}
				}
				calls[name][lint.CalleeName(c)] = true
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			for callee := range callees {
				for k := range summaries[callee] {
					if !summaries[caller][k] {
						summaries[caller][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk each function (and each FuncLit as its own root) with
	// sequential held-set tracking, collecting edges and blocking reports.
	var edges []edge
	reported := map[token.Pos]bool{}
	walkRoot := func(body *ast.BlockStmt, recvVar, recvType string, imports, seed map[string]bool) {
		st := &state{
			pass: pass, recvVar: recvVar, recvType: recvType,
			held: seed, summaries: summaries, imports: imports,
			edges: &edges, reported: reported,
		}
		st.walkStmts(body.List)
	}
	for _, f := range pass.Files {
		imports := fileImports[f]
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvVar, recvType := lint.RecvVarName(fd), lint.RecvTypeName(fd)
			seed := map[string]bool{}
			if strings.HasSuffix(fd.Name.Name, "Locked") && recvType != "" {
				seed[recvType+".mu"] = true
			}
			walkRoot(fd.Body, recvVar, recvType, imports, seed)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkRoot(fl.Body, recvVar, recvType, imports, map[string]bool{})
					return false
				}
				return true
			})
		}
	}

	reportInversions(pass, edges)
	return nil
}

// reportInversions finds edges that participate in a cycle (the reverse
// order is also reachable) and reports each once.
func reportInversions(pass *lint.Pass, edges []edge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	// reaches reports whether from can reach to in the edge graph.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for m := range adj[n] {
				if m == to {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	seenPair := map[string]bool{}
	for _, e := range edges {
		pair := e.from + "->" + e.to
		if seenPair[pair] {
			continue
		}
		if reaches(e.to, e.from) {
			seenPair[pair] = true
			pass.Reportf(e.pos, "lock order inversion: %s acquired while holding %s, but the opposite order also occurs — pick one order (repo convention: %s)", e.to, e.from, conventionHint(e.from, e.to))
		}
	}
}

// conventionHint names the sanctioned order for the repo's known pairs.
func conventionHint(a, b string) string {
	known := map[string]bool{"flushMu": true, "egressQueue.mu": true}
	if known[a] && known[b] {
		return "flushMu before mu"
	}
	return fmt.Sprintf("document and keep a single %s/%s order", a, b)
}
