// Fixture for the lockorder analyzer: order inversions (direct and through
// a callee's acquisition summary) and blocking operations under the
// egressQueue bookkeeping mutex.
package lockorder

import "sync"

type FlowLink struct{}

func (f *FlowLink) Send(p int) error { return nil }
func (f *FlowLink) Refund(n int)     {}
func (f *FlowLink) Acquire(a, b <-chan struct{}) bool {
	return true
}

// --- order inversion, direct ---

type queue struct {
	mu      sync.Mutex
	flushMu sync.Mutex
	buf     []int
}

// flushGood follows the repo convention: flushMu first, then mu.
func (q *queue) flushGood() {
	q.flushMu.Lock()
	defer q.flushMu.Unlock()
	q.mu.Lock() // want `lock order inversion`
	q.buf = nil
	q.mu.Unlock()
}

// addBad takes the opposite order; together with flushGood this is a
// potential deadlock, so BOTH acquisition sites are reported.
func (q *queue) addBad() {
	q.mu.Lock()
	q.flushMu.Lock() // want `lock order inversion`
	q.flushMu.Unlock()
	q.mu.Unlock()
}

// --- order inversion, via a callee's summary ---

type shard struct {
	pipeMu  sync.Mutex
	stateMu sync.Mutex
	n       int
}

func (s *shard) takeState() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.n++
}

// pollGood acquires stateMu through takeState while holding pipeMu.
func (s *shard) pollGood() {
	s.pipeMu.Lock()
	defer s.pipeMu.Unlock()
	s.takeState() // want `lock order inversion`
}

// invBad closes the cycle in the other direction.
func (s *shard) invBad() {
	s.stateMu.Lock()
	s.pipeMu.Lock() // want `lock order inversion`
	s.pipeMu.Unlock()
	s.stateMu.Unlock()
}

// --- blocking under the queue mutex ---

type egressQueue struct {
	mu   sync.Mutex
	ch   chan int
	buf  []int
	link *FlowLink
}

// badChanSend blocks on a channel while holding the bookkeeping mutex.
func (q *egressQueue) badChanSend() {
	q.mu.Lock()
	q.ch <- 1 // want `channel send while holding egressQueue.mu`
	q.mu.Unlock()
}

// badLinkSend holds mu across a wire send.
func (q *egressQueue) badLinkSend(p int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	_ = q.link.Send(p) // want `Send may block while holding egressQueue.mu`
}

// badAcquire holds mu across a credit acquisition.
func (q *egressQueue) badAcquire(stop <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.link.Acquire(stop, nil) { // want `Acquire may block while holding egressQueue.mu`
		q.buf = append(q.buf, 0)
	}
}

// flushLocked runs under the caller's mu by the *Locked convention, so the
// send inside it is just as illegal.
func (q *egressQueue) flushLocked(p int) {
	_ = q.link.Send(p) // want `Send may block while holding egressQueue.mu`
}

// goodSend releases mu before touching the wire.
func (q *egressQueue) goodSend(p int) {
	q.mu.Lock()
	q.buf = append(q.buf, p)
	q.mu.Unlock()
	_ = q.link.Send(p)
}

// goodNonBlocking: a select with a default clause never blocks.
func (q *egressQueue) goodNonBlocking() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- 1:
	default:
	}
}

// refundLocked: Refund runs no hooks and is explicitly safe under mu.
func (q *egressQueue) refundLocked() {
	q.link.Refund(1)
}

// relockGood drops mu around the blocking drain, bufAddLocked-style.
func (q *egressQueue) relockGood(p int) {
	q.mu.Lock()
	if len(q.buf) > 0 {
		q.mu.Unlock()
		_ = q.link.Send(p)
		q.mu.Lock()
	}
	q.buf = append(q.buf, p)
	q.mu.Unlock()
}
