package lockorder

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, Analyzer, "lockorder")
}
