// Fixture for the batchalias analyzer. The two "Racy" functions are
// faithful reconstructions of the PR 7 receive-path races: FlowLink.absorb
// compacting the received batch through ps[:0], and streamState.dropDups
// writing elements back into the run. Both backing arrays are shared with
// the sender's SendBatch slice on the in-process fabric, which the
// exactly-once sender re-reads after the send to build its replay ring.
package batchalias

import "sort"

type Packet struct {
	Tag int32
	Seq uint64
}

type link struct{ ch chan []*Packet }

func RecvBatch(l *link) ([]*Packet, error) { return <-l.ch, nil }

func DecodeFrame(b []byte) ([]*Packet, error) { return nil, nil }

const tagControl = 0

// absorbRacy is the PR 7 FlowLink.absorb bug: ps[:0] reuses the received
// batch's backing array, so every append overwrites a packet the sender
// may still read.
func absorbRacy(ps []*Packet) []*Packet {
	kept := ps[:0]
	for _, p := range ps {
		if p.Tag == tagControl {
			continue
		}
		kept = append(kept, p) // want `append onto received batch "kept" compacts it in place`
	}
	return kept
}

// dropDupsRacy is the PR 7 streamState.dropDups bug: compacting the run by
// writing survivors back into the shared array.
func dropDupsRacy(run []*Packet) []*Packet {
	j := 0
	for _, p := range run {
		if p.Seq != 0 {
			run[j] = p // want `in-place mutation of received batch "run"`
			j++
		}
	}
	return run[:j]
}

// sortRacy hands a received batch to an in-place mutator.
func sortRacy(l *link) {
	ps, _ := RecvBatch(l)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Seq < ps[j].Seq }) // want `Slice mutates received batch "ps" in place`
}

// resliceRacy shows taint propagating through a reslice.
func resliceRacy(l *link) {
	ps, _ := RecvBatch(l)
	head := ps[:2]
	head[0] = nil // want `in-place mutation of received batch "head"`
}

// decodeRacy shows the frame-decode source.
func decodeRacy(b []byte) {
	ps, _ := DecodeFrame(b)
	ps[0] = nil // want `in-place mutation of received batch "ps"`
}

// absorbFixed is the shipped fix: survivors go into a fresh allocation.
func absorbFixed(ps []*Packet) []*Packet {
	kept := make([]*Packet, 0, len(ps))
	for _, p := range ps {
		if p.Tag == tagControl {
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// dropDupsFixed clones lazily on the first drop, like the shipped code.
func dropDupsFixed(run []*Packet) []*Packet {
	kept := run
	alloc := false
	for i, p := range run {
		if p.Seq == 0 {
			if !alloc {
				kept = append(make([]*Packet, 0, len(run)-1), run[:i]...)
				alloc = true
			}
			continue
		}
		if alloc {
			kept = append(kept, p)
		}
	}
	return kept
}

// cloneThenCompact owns its copy and may mutate it freely.
func cloneThenCompact(ps []*Packet) []*Packet {
	own := append([]*Packet(nil), ps...)
	j := 0
	for _, p := range own {
		if p.Tag != tagControl {
			own[j] = p
			j++
		}
	}
	return own[:j]
}

// forward only reads: reslicing and indexing without writes is fine.
func forward(ps []*Packet) (*Packet, []*Packet) {
	return ps[0], ps[1:]
}

// ownBuffer mutates a slice it allocated itself.
func ownBuffer(n int) []*Packet {
	buf := make([]*Packet, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, &Packet{})
	}
	buf[0] = nil
	return buf
}

// otherParam is not named ps/run and not packet-typed from the wire.
func otherParam(backlog []*Packet, extra []*Packet) []*Packet {
	return append(backlog, extra...)
}
