package batchalias

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestBatchAlias(t *testing.T) {
	linttest.Run(t, Analyzer, "batchalias")
}
