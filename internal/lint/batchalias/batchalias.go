// Package batchalias flags in-place mutation or compaction of packet
// batches obtained from the receive path — the exact bug class behind the
// two PR 7 receive-path races (FlowLink.absorb and streamState.dropDups
// compacting slices whose backing arrays they shared with the sender).
//
// The contract (DESIGN.md §11): a []*packet.Packet received from
// Recv/RecvBatch/DecodeFrame, or handed to a receive-path helper, may share
// its backing array with the slice the SENDER passed to SendBatch — on the
// in-process fabric it is literally the same slice, and an exactly-once
// sender still reads it after the send to append the sent prefix to its
// replay ring. The receiver therefore must never write through it: filter
// by allocating a fresh slice (returning the original as-is when nothing
// is dropped keeps the common case zero-copy).
//
// A batch is considered received when it is:
//   - the result of a call to RecvBatch or DecodeFrame, or
//   - a parameter of type []*packet.Packet (or []*Packet) named ps or run —
//     the repo's naming convention for wire-order inbound batches.
//
// Flagged writes: element assignment through the batch, append whose base
// aliases the batch (s, s[:0], s[:i] — the compaction idiom), and handing
// the batch to a known in-place mutator (sort.Slice, slices.Sort, ...).
// Reassigning a variable from make/clone untaints it; plain reslicing
// propagates the taint.
package batchalias

import (
	"go/ast"

	"repro/internal/lint"
)

// Analyzer is the batchalias invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "batchalias",
	Doc:  "forbid in-place mutation/compaction of packet batches obtained from the receive path",
	Run:  run,
}

// sourceCalls yield received batches.
var sourceCalls = map[string]bool{
	"RecvBatch":   true,
	"DecodeFrame": true,
}

// sourceParams are the conventional names of received-batch parameters.
var sourceParams = map[string]bool{
	"ps":  true,
	"run": true,
}

// mutators take a slice and write through it.
var mutators = map[string]bool{
	"Slice":          true, // sort.Slice
	"SliceStable":    true, // sort.SliceStable
	"Sort":           true, // slices.Sort
	"SortFunc":       true, // slices.SortFunc
	"SortStableFunc": true, // slices.SortStableFunc
	"Reverse":        true, // slices.Reverse
	"Delete":         true, // slices.Delete
	"Insert":         true, // slices.Insert
	"Compact":        true, // slices.Compact
	"CompactFunc":    true, // slices.CompactFunc
}

func run(pass *lint.Pass) error {
	lint.FuncsOf(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

// isPacketSlice matches the type expressions []*packet.Packet and []*Packet.
func isPacketSlice(t ast.Expr) bool {
	arr, ok := t.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	star, ok := arr.Elt.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch e := star.X.(type) {
	case *ast.Ident:
		return e.Name == "Packet"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Packet"
	}
	return false
}

// checkFunc runs the flow-insensitive-across-branches, source-order taint
// walk over one function body.
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	tainted := map[string]bool{}
	for _, field := range fd.Type.Params.List {
		if !isPacketSlice(field.Type) {
			continue
		}
		for _, name := range field.Names {
			if sourceParams[name.Name] {
				tainted[name.Name] = true
			}
		}
	}

	// taintedExpr reports whether e aliases a received batch right now.
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[x.Name]
		case *ast.SliceExpr:
			return taintedExpr(x.X)
		case *ast.CallExpr:
			return sourceCalls[lint.CalleeName(x)]
		}
		return false
	}

	// freshExpr reports whether e is a freshly allocated slice (make, a
	// clone via append onto a nil/fresh base, or a composite literal).
	freshBase := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
				return true
			}
		case *ast.CompositeLit:
			return true
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Sinks first: writes through a tainted slice element.
			for _, lhs := range st.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && taintedExpr(ix.X) {
					pass.Reportf(ix.Pos(), "in-place mutation of received batch %q: its backing array may be shared with the sender's SendBatch slice", exprName(ix.X))
				}
			}
			// Then update taint for simple ident targets.
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					rhs := ast.Unparen(st.Rhs[i])
					switch {
					case taintedExpr(rhs):
						tainted[id.Name] = true
					case isCloneAppend(rhs, freshBase):
						tainted[id.Name] = false
					default:
						if call, ok := rhs.(*ast.CallExpr); ok && lint.CalleeName(call) == "append" && len(call.Args) > 0 && taintedExpr(call.Args[0]) {
							// handled below as a sink; keep taint flowing
							tainted[id.Name] = true
						} else {
							tainted[id.Name] = false
						}
					}
				}
			} else if len(st.Rhs) == 1 {
				// x, err := RecvBatch(...) — taint the first value.
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && sourceCalls[lint.CalleeName(call)] {
					if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
						tainted[id.Name] = true
					}
				}
			}
		case *ast.CallExpr:
			name := lint.CalleeName(st)
			if name == "append" && len(st.Args) > 0 && taintedExpr(st.Args[0]) {
				pass.Reportf(st.Pos(), "append onto received batch %q compacts it in place: the backing array may be shared with the sender's SendBatch slice; allocate a fresh slice instead", exprName(st.Args[0]))
			}
			if mutators[name] && len(st.Args) > 0 && taintedExpr(st.Args[0]) {
				pass.Reportf(st.Pos(), "%s mutates received batch %q in place: the backing array may be shared with the sender", name, exprName(st.Args[0]))
			}
		}
		return true
	})
}

// isCloneAppend matches append(FRESH, ...) and append([]T(nil), ...) —
// the clone idioms that produce an owned slice.
func isCloneAppend(e ast.Expr, freshBase func(ast.Expr) bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name := lint.CalleeName(call)
	if name == "make" {
		return true
	}
	if name != "append" || len(call.Args) == 0 {
		return false
	}
	base := ast.Unparen(call.Args[0])
	if freshBase(base) {
		return true
	}
	// append([]*packet.Packet(nil), src...) — conversion of nil.
	if conv, ok := base.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if id, ok := ast.Unparen(conv.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
	}
	// Nested clone: append(append([]T(nil), a...), b...)
	if isCloneAppend(base, freshBase) {
		return true
	}
	return false
}

// exprName renders a short name for diagnostics.
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SliceExpr:
		return exprName(x.X)
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "batch"
}
