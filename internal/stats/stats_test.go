package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestMomentsBasics(t *testing.T) {
	m := New()
	if m.Mean() != 0 || m.Variance() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Error("empty moments should read as zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N != 8 || m.Mean() != 5 {
		t.Errorf("N=%d mean=%g", m.N, m.Mean())
	}
	// Population variance of the classic set is 4.
	if math.Abs(m.Variance()-4) > 1e-12 {
		t.Errorf("variance = %g, want 4", m.Variance())
	}
	if m.Std() != 2 {
		t.Errorf("std = %g, want 2", m.Std())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %g/%g", m.Min(), m.Max())
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(), New(), New()
	for i := 0; i < 10; i++ {
		x := float64(i * i)
		a.Add(x)
		u.Add(x)
	}
	for i := 10; i < 25; i++ {
		x := -float64(i)
		b.Add(x)
		u.Add(x)
	}
	a.Merge(b)
	if a.N != u.N || a.Sum != u.Sum || a.SumSq != u.SumSq || a.MinV != u.MinV || a.MaxV != u.MaxV {
		t.Errorf("merged %+v != union %+v", a, u)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	m := New()
	m.Add(1)
	m.Add(-3)
	p, err := m.ToPacket(100, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || g.Min() != -3 || g.Max() != 1 {
		t.Errorf("round trip: %+v", g)
	}
	if _, err := FromPacket(packet.MustNew(100, 1, 0, "%d", int64(1))); err == nil {
		t.Error("wrong format: want error")
	}
	neg := packet.MustNew(100, 1, 0, PacketFormat, int64(-1), 0.0, 0.0, 0.0, 0.0)
	if _, err := FromPacket(neg); err == nil {
		t.Error("negative count: want error")
	}
}

func TestFilterMerges(t *testing.T) {
	mk := func(xs ...float64) *packet.Packet {
		m := New()
		for _, x := range xs {
			m.Add(x)
		}
		p, _ := m.ToPacket(100, 1, 0)
		return p
	}
	out, err := (Filter{}).Transform([]*packet.Packet{mk(1, 2, 3), mk(10), mk(-5, 5)})
	if err != nil || len(out) != 1 {
		t.Fatalf("transform: %v %v", out, err)
	}
	g, err := FromPacket(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 6 || g.Min() != -5 || g.Max() != 10 {
		t.Errorf("merged: %+v", g)
	}
	if o, err := (Filter{}).Transform(nil); err != nil || o != nil {
		t.Errorf("empty batch: %v %v", o, err)
	}
}

// Property: any split of a sample set into per-leaf chunks, merged in any
// tree shape, yields the same moments as the flat computation.
func TestQuickTreeShapeInvariance(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) < 2 {
			return true
		}
		flat := New()
		for _, x := range xs {
			flat.Add(x)
		}
		k := int(split)%(len(xs)-1) + 1
		left, right := New(), New()
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N == flat.N &&
			math.Abs(left.Sum-flat.Sum) <= 1e-9*(1+math.Abs(flat.Sum)) &&
			math.Abs(left.SumSq-flat.SumSq) <= 1e-9*(1+math.Abs(flat.SumSq)) &&
			left.MinV == flat.MinV && left.MaxV == flat.MaxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOverlayMoments computes exact global statistics over a 3-level
// overlay and compares them to the direct computation.
func TestOverlayMoments(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2")
	if err != nil {
		t.Fatal(err)
	}
	reg := filter.NewRegistry()
	Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				m := New()
				for i := 0; i < 100; i++ {
					m.Add(float64(be.Rank()) + float64(i)/100)
				}
				out, err := m.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				if err := be.SendPacket(out); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	want := New()
	for _, l := range tree.Leaves() {
		for i := 0; i < 100; i++ {
			want.Add(float64(l) + float64(i)/100)
		}
	}
	if got.N != want.N || math.Abs(got.Mean()-want.Mean()) > 1e-9 ||
		math.Abs(got.Std()-want.Std()) > 1e-9 ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Errorf("overlay moments %+v, want %+v", got, want)
	}
}
