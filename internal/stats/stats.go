// Package stats implements a composable summary-statistics reduction:
// count, mean, variance, min and max computed exactly across a tree by
// merging sufficient statistics (n, Σx, Σx², min, max) instead of raw
// samples. It is the canonical example of the paper's data-reduction
// property — constant-size output summarizing arbitrarily many inputs —
// one notch richer than the built-in avg filter.
package stats

import (
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/packet"
)

// Moments holds the sufficient statistics of a sample set.
type Moments struct {
	N          int64
	Sum, SumSq float64
	MinV, MaxV float64
}

// New returns empty moments.
func New() *Moments {
	return &Moments{MinV: math.Inf(1), MaxV: math.Inf(-1)}
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	m.N++
	m.Sum += x
	m.SumSq += x * x
	if x < m.MinV {
		m.MinV = x
	}
	if x > m.MaxV {
		m.MaxV = x
	}
}

// Merge folds another summary in; the result is exactly the summary of the
// union of the underlying samples (associative and commutative, so the
// reduction is tree-shape invariant).
func (m *Moments) Merge(o *Moments) {
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
	if o.MinV < m.MinV {
		m.MinV = o.MinV
	}
	if o.MaxV > m.MaxV {
		m.MaxV = o.MaxV
	}
}

// Mean returns the arithmetic mean (0 when empty).
func (m *Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Variance returns the population variance (0 when empty). Negative
// rounding residue is clamped to 0.
func (m *Moments) Variance() float64 {
	if m.N == 0 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq/float64(m.N) - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 when empty).
func (m *Moments) Min() float64 {
	if m.N == 0 {
		return 0
	}
	return m.MinV
}

// Max returns the largest observation (0 when empty).
func (m *Moments) Max() float64 {
	if m.N == 0 {
		return 0
	}
	return m.MaxV
}

// PacketFormat is the payload layout: n, sum, sum of squares, min, max.
const PacketFormat = "%d %f %f %f %f"

// FilterName is the registry name of the moments merge filter.
const FilterName = "stats"

// ToPacket encodes the summary.
func (m *Moments) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	return packet.New(tag, streamID, src, PacketFormat, m.N, m.Sum, m.SumSq, m.MinV, m.MaxV)
}

// FromPacket decodes a summary packet.
func FromPacket(p *packet.Packet) (*Moments, error) {
	if p.Format != PacketFormat {
		return nil, fmt.Errorf("stats: unexpected packet format %q", p.Format)
	}
	n, err := p.Int(0)
	if err != nil {
		return nil, err
	}
	sum, err := p.Float(1)
	if err != nil {
		return nil, err
	}
	sumsq, err := p.Float(2)
	if err != nil {
		return nil, err
	}
	minv, err := p.Float(3)
	if err != nil {
		return nil, err
	}
	maxv, err := p.Float(4)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("stats: negative count %d", n)
	}
	return &Moments{N: n, Sum: sum, SumSq: sumsq, MinV: minv, MaxV: maxv}, nil
}

// Filter merges child summaries.
type Filter struct{}

// Transform merges the batch into a single summary packet.
func (Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	acc := New()
	for _, p := range in {
		m, err := FromPacket(p)
		if err != nil {
			return nil, err
		}
		acc.Merge(m)
	}
	out, err := acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the moments filter under FilterName.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterName, func() filter.Transformation { return Filter{} })
}
