// Package clockskew implements the tree-based clock-skew detection the
// paper cites as one of MRNet's complex filter computations. Each parent
// measures the clock offset to each child with NTP-style probe exchanges;
// offsets then compose along tree paths, so every node's skew relative to
// the front-end is known after one parallel wave of per-level probes —
// instead of the front-end serially probing every daemon, which is what
// made flat-tool startup linear in the daemon count.
package clockskew

import (
	"math/rand"
	"time"

	"repro/internal/topology"
)

// Sample is one NTP-style probe exchange. All values are readings of the
// respective local clocks:
//
//	T0  parent sends the probe           (parent clock)
//	T1  child receives the probe         (child clock)
//	T2  child sends the response         (child clock)
//	T3  parent receives the response     (parent clock)
type Sample struct {
	T0, T1, T2, T3 time.Duration
}

// Offset estimates the child clock minus the parent clock for this sample,
// assuming symmetric network delay: ((T1-T0) + (T2-T3)) / 2.
func (s Sample) Offset() time.Duration {
	return ((s.T1 - s.T0) + (s.T2 - s.T3)) / 2
}

// RTT returns the probe's round-trip time excluding child processing.
func (s Sample) RTT() time.Duration {
	return (s.T3 - s.T0) - (s.T2 - s.T1)
}

// EstimateOffset combines several samples into one offset estimate by
// taking the sample with the smallest RTT (the standard estimator: minimal
// queueing means minimal asymmetry error). It returns 0 for no samples.
func EstimateOffset(samples []Sample) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	best := samples[0]
	for _, s := range samples[1:] {
		if s.RTT() < best.RTT() {
			best = s
		}
	}
	return best.Offset()
}

// TreeSkews composes per-edge offsets into per-node skews relative to the
// root: skew(root) = 0 and skew(child) = skew(parent) + edge(child), where
// edge(child) is the measured child-minus-parent offset.
func TreeSkews(tree *topology.Tree, edge map[topology.Rank]time.Duration) map[topology.Rank]time.Duration {
	out := make(map[topology.Rank]time.Duration, tree.Len())
	out[0] = 0
	// Ranks are not necessarily level-ordered (k-nomial trees); walk BFS.
	queue := []topology.Rank{0}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, c := range tree.Children(r) {
			out[c] = out[r] + edge[c]
			queue = append(queue, c)
		}
	}
	return out
}

// Oracle assigns every node a true clock offset (relative to the root) and
// simulates probe exchanges with configurable network delay and jitter.
// It stands in for the paper's physical cluster, whose machines had real,
// unknown skews.
type Oracle struct {
	True   map[topology.Rank]time.Duration
	rtt    time.Duration
	jitter time.Duration
	rng    *rand.Rand
}

// NewOracle draws a true offset in ±maxSkew for every non-root node.
// Probes experience one-way delay rtt/2 plus uniform jitter in [0, jitter).
func NewOracle(tree *topology.Tree, maxSkew, rtt, jitter time.Duration, seed int64) *Oracle {
	rng := rand.New(rand.NewSource(seed))
	o := &Oracle{
		True:   map[topology.Rank]time.Duration{0: 0},
		rtt:    rtt,
		jitter: jitter,
		rng:    rng,
	}
	for r := 1; r < tree.Len(); r++ {
		o.True[topology.Rank(r)] = time.Duration(rng.Int63n(int64(2*maxSkew))) - maxSkew
	}
	return o
}

// Probe simulates one probe exchange from parent to child starting at the
// given true (global) time.
func (o *Oracle) Probe(parent, child topology.Rank, at time.Duration) Sample {
	up := o.rtt/2 + o.delayJitter()
	down := o.rtt/2 + o.delayJitter()
	procTime := time.Microsecond
	po, co := o.True[parent], o.True[child]
	t0 := at + po      // parent clock at send
	t1 := at + up + co // child clock at receive
	t2 := at + up + procTime + co
	t3 := at + up + procTime + down + po
	return Sample{T0: t0, T1: t1, T2: t2, T3: t3}
}

func (o *Oracle) delayJitter() time.Duration {
	if o.jitter <= 0 {
		return 0
	}
	return time.Duration(o.rng.Int63n(int64(o.jitter)))
}

// DetectTree runs the tree-based algorithm against the oracle: every
// parent probes each child n times (conceptually in parallel across the
// tree), offsets are estimated per edge, and TreeSkews composes them.
// It returns the estimated skews and the critical-path probe time — the
// simulated wall time of the detection, which is what the startup
// experiment measures. Probing a node's children is sequential on the
// parent (one NIC) but concurrent across parents; the critical path is
// therefore the max over root-to-parent paths of the per-node probe costs.
func (o *Oracle) DetectTree(tree *topology.Tree, n int) (map[topology.Rank]time.Duration, time.Duration) {
	edge := make(map[topology.Rank]time.Duration, tree.Len())
	// Per-node serial probe cost, then critical path over the tree.
	cost := make(map[topology.Rank]time.Duration, tree.Len())
	for r := 0; r < tree.Len(); r++ {
		rank := topology.Rank(r)
		var at time.Duration
		for _, c := range tree.Children(rank) {
			var samples []Sample
			for i := 0; i < n; i++ {
				s := o.Probe(rank, c, at)
				at += s.T3 - s.T0 // serial probes on this parent
				samples = append(samples, s)
			}
			edge[c] = EstimateOffset(samples)
		}
		cost[rank] = at
	}
	var critical func(r topology.Rank) time.Duration
	critical = func(r topology.Rank) time.Duration {
		var worst time.Duration
		for _, c := range tree.Children(r) {
			if d := critical(c); d > worst {
				worst = d
			}
		}
		return cost[r] + worst
	}
	return TreeSkews(tree, edge), critical(0)
}

// DetectFlat simulates the pre-MRNet approach: the front-end itself probes
// every node serially, so the detection time is the sum of all probe costs.
func (o *Oracle) DetectFlat(nodes []topology.Rank, n int) (map[topology.Rank]time.Duration, time.Duration) {
	out := map[topology.Rank]time.Duration{0: 0}
	var at time.Duration
	for _, r := range nodes {
		var samples []Sample
		for i := 0; i < n; i++ {
			s := o.Probe(0, r, at)
			at += s.T3 - s.T0
			samples = append(samples, s)
		}
		out[r] = EstimateOffset(samples)
	}
	return out, at
}
