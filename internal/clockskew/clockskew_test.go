package clockskew

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"
)

func TestSampleOffsetAndRTT(t *testing.T) {
	// Symmetric 1ms each way, child 5ms ahead, no processing delay.
	s := Sample{
		T0: 0,
		T1: 1*time.Millisecond + 5*time.Millisecond,
		T2: 1*time.Millisecond + 5*time.Millisecond,
		T3: 2 * time.Millisecond,
	}
	if got := s.Offset(); got != 5*time.Millisecond {
		t.Errorf("Offset = %v, want 5ms", got)
	}
	if got := s.RTT(); got != 2*time.Millisecond {
		t.Errorf("RTT = %v, want 2ms", got)
	}
}

func TestEstimateOffsetPicksMinRTT(t *testing.T) {
	// The low-RTT sample has the accurate offset; the high-RTT one is
	// polluted by asymmetric queueing.
	good := Sample{T0: 0, T1: 6 * time.Millisecond, T2: 6 * time.Millisecond, T3: 2 * time.Millisecond}
	bad := Sample{T0: 0, T1: 25 * time.Millisecond, T2: 25 * time.Millisecond, T3: 30 * time.Millisecond}
	got := EstimateOffset([]Sample{bad, good, bad})
	if got != good.Offset() {
		t.Errorf("EstimateOffset = %v, want %v", got, good.Offset())
	}
	if EstimateOffset(nil) != 0 {
		t.Error("empty estimate should be 0")
	}
}

func TestTreeSkewsComposition(t *testing.T) {
	tree, err := topology.ParseSpec("0:1,2;1:3")
	if err != nil {
		t.Fatal(err)
	}
	edge := map[topology.Rank]time.Duration{
		1: 10 * time.Millisecond,
		2: -4 * time.Millisecond,
		3: 7 * time.Millisecond,
	}
	skews := TreeSkews(tree, edge)
	if skews[0] != 0 {
		t.Errorf("root skew = %v", skews[0])
	}
	if skews[3] != 17*time.Millisecond {
		t.Errorf("skew(3) = %v, want 17ms (10+7)", skews[3])
	}
	if skews[2] != -4*time.Millisecond {
		t.Errorf("skew(2) = %v", skews[2])
	}
}

func TestOracleDetectionAccuracy(t *testing.T) {
	tree, err := topology.ParseSpec("kary:4^2")
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(tree, 50*time.Millisecond, time.Millisecond, 100*time.Microsecond, 42)
	est, _ := o.DetectTree(tree, 8)
	for r := 1; r < tree.Len(); r++ {
		rank := topology.Rank(r)
		errd := est[rank] - o.True[rank]
		if errd < 0 {
			errd = -errd
		}
		// Per-hop error is bounded by half the jitter; two hops compound.
		if errd > 2*100*time.Microsecond {
			t.Errorf("rank %d: estimated %v, true %v (error %v)", r, est[rank], o.True[rank], errd)
		}
	}
}

func TestFlatDetectionAccuracy(t *testing.T) {
	tree, _ := topology.ParseSpec("flat:16")
	o := NewOracle(tree, 50*time.Millisecond, time.Millisecond, 50*time.Microsecond, 7)
	est, _ := o.DetectFlat(tree.Leaves(), 8)
	for _, l := range tree.Leaves() {
		errd := est[l] - o.True[l]
		if errd < 0 {
			errd = -errd
		}
		if errd > 100*time.Microsecond {
			t.Errorf("leaf %d: estimated %v, true %v", l, est[l], o.True[l])
		}
	}
}

// TestTreeBeatsFlatAtScale is the startup-experiment kernel: the tree's
// critical-path probe time must be far below the flat version's serial sum
// at 512 daemons, in the ballpark of the paper's 3.4x startup speedup
// (the probe phase itself parallelizes even better than 3.4x; process
// launch overheads dilute it in the full startup measurement).
func TestTreeBeatsFlatAtScale(t *testing.T) {
	tree, err := topology.ParseSpec("kary:8^3") // 512 leaves
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(tree, 100*time.Millisecond, time.Millisecond, 100*time.Microsecond, 1)
	_, flatTime := o.DetectFlat(tree.Leaves(), 4)
	_, treeTime := o.DetectTree(tree, 4)
	if treeTime >= flatTime {
		t.Fatalf("tree %v not faster than flat %v", treeTime, flatTime)
	}
	speedup := float64(flatTime) / float64(treeTime)
	if speedup < 3 {
		t.Errorf("speedup = %.1fx, want >= 3x at 512 daemons", speedup)
	}
}

// Property: with zero jitter the estimator is exact regardless of skew.
func TestQuickExactWithoutJitter(t *testing.T) {
	f := func(seed int64, skewMs uint16) bool {
		tree, err := topology.ParseSpec("kary:3^2")
		if err != nil {
			return false
		}
		maxSkew := time.Duration(int64(skewMs)+1) * time.Millisecond
		o := NewOracle(tree, maxSkew, time.Millisecond, 0, seed)
		est, _ := o.DetectTree(tree, 1)
		for r := 1; r < tree.Len(); r++ {
			rank := topology.Rank(r)
			// Allow the integer division's rounding error.
			d := est[rank] - o.True[rank]
			if d < -time.Microsecond || d > time.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDetectTree512(b *testing.B) {
	tree, _ := topology.ParseSpec("kary:8^3")
	o := NewOracle(tree, 100*time.Millisecond, time.Millisecond, 100*time.Microsecond, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.DetectTree(tree, 4)
	}
}
