// Package recovery turns the offline reliability planner into live,
// in-engine fault tolerance for a running core.Network. It provides the
// missing half of the zero-cost reliability model (Arnold & Miller, cited
// by internal/reliability): internal/reliability plans a recovery;
// this package detects failures and applies the plan to the running
// overlay.
//
// The Manager watches the heartbeat beacons every non-root process relays
// to the front-end (core.Config.HeartbeatPeriod). When a process falls
// silent past the configured timeout it is declared failed: the manager
// asks reliability.Recover for the reconfiguration plan, drives
// core.Network.Adopt to apply it live (grandparent adoption, stream
// re-announcement, synchronizer rebuild), and reconstructs the lost
// node's composable filter state with reliability.ComposeStates from the
// orphans' snapshots.
//
// When an ancestor fails, every descendant's beacon goes quiet at once
// (their only path to the front-end ran through the dead process). The
// detector therefore always recovers the shallowest silent process first
// and then grants the whole overlay a fresh grace period, letting the
// re-attached subtree's beacons resume before any further verdicts.
//
// Recovery is fabric-agnostic: replacement links are minted through the
// network's transport.Rewirer (the adopter listens, each orphan redials),
// so the same manager drives live reconfiguration on the in-process chan
// fabric and on real TCP. Overlapping failures — a second process dying
// while an adoption is in flight — converge too: an orphan that dies
// mid-handshake is fenced off (its slot stays empty until its own
// recovery), and an adopter that dies mid-adoption rolls the adoption
// back for the detector to redo shallowest-first.
//
//	nw, _ := core.NewNetwork(core.Config{
//	    Topology:        tree,
//	    Recoverable:     true,
//	    HeartbeatPeriod: 50 * time.Millisecond,
//	    ...
//	})
//	mgr, _ := recovery.New(nw, recovery.Config{Timeout: 250 * time.Millisecond})
//	mgr.Start()
//	defer mgr.Stop()
package recovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/reliability"
	"repro/internal/topology"
)

// Config parameterizes the failure detector.
type Config struct {
	// Timeout is the silence after which a communication process is
	// declared failed. It should be several heartbeat periods; New
	// rejects anything under two periods.
	Timeout time.Duration
	// LeafTimeout is the (longer) silence required to declare a back-end
	// failed; default 3×Timeout. Fencing an internal process by mistake
	// is recoverable — its subtrees are re-adopted — but fencing a
	// healthy back-end silently removes a data source forever, so leaves
	// get extra patience against scheduling stalls.
	LeafTimeout time.Duration
	// Poll is the detector's check interval; default Timeout/4.
	Poll time.Duration
	// CheckpointPeriod, when positive, makes the manager periodically ask
	// every internal node to checkpoint its composable filter state toward
	// its potential adopters (core.Network.CheckpointNow). An adoption then
	// folds the failed node's own last checkpoint into the composition,
	// recovering state that was in flight above the orphans when it died.
	CheckpointPeriod time.Duration
	// OnRecovery, if non-nil, is invoked (from the detector goroutine)
	// after each completed recovery.
	OnRecovery func(Report)
}

// Report describes one completed recovery.
type Report struct {
	// Failed, NewParent and Orphans are original-numbering ranks, as used
	// by the live network.
	Failed    core.Rank
	NewParent core.Rank
	Orphans   []core.Rank
	// Plan is the offline reconfiguration plan (compacted numbering) the
	// recovery applied.
	Plan *reliability.Plan
	// StreamsComposed counts streams whose lost filter state was
	// reconstructed from the orphans' snapshots.
	StreamsComposed int
	// Detection is the observed silence when the failure was declared
	// (zero for manually triggered recoveries), Rewire the time spent
	// reconfiguring the running overlay, Total their sum.
	Detection time.Duration
	Rewire    time.Duration
	Total     time.Duration
	// At is when the recovery completed.
	At time.Time
}

// Manager couples the heartbeat failure detector to the live
// reconfiguration engine. Create with New; one manager per network.
type Manager struct {
	nw  *core.Network
	cfg Config

	mu sync.Mutex
	// planTree mirrors the overlay in the planner's compacted numbering;
	// origOf / curOf translate between planning ranks and the live
	// network's original ranks.
	planTree *topology.Tree
	origOf   []core.Rank
	curOf    map[core.Rank]core.Rank
	// baseline is the per-rank floor for silence judgments: ranks are
	// only judged against max(baseline, last beacon), giving fresh starts
	// after recoveries and at detector startup.
	baseline map[core.Rank]time.Time
	reports  []Report

	// runMu serializes whole recoveries (plan → adopt → fold), so a
	// manual Recover racing the detector cannot fold two plans computed
	// against the same pre-recovery tree.
	runMu sync.Mutex

	stop    chan struct{}
	done    chan struct{}
	started bool
}

// New creates a manager for the network. The network must have been
// built Recoverable; automatic detection (Start) additionally requires
// heartbeats.
func New(nw *core.Network, cfg Config) (*Manager, error) {
	if !nw.Recoverable() {
		return nil, errors.New("recovery: network not built with core.Config.Recoverable")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * nw.HeartbeatPeriod()
	}
	if hb := nw.HeartbeatPeriod(); hb > 0 && cfg.Timeout < 2*hb {
		return nil, fmt.Errorf("recovery: timeout %v under two heartbeat periods (%v)", cfg.Timeout, hb)
	}
	if cfg.LeafTimeout <= 0 {
		cfg.LeafTimeout = 3 * cfg.Timeout
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Timeout / 4
		if cfg.Poll <= 0 {
			cfg.Poll = time.Millisecond
		}
	}
	tree := nw.Tree()
	m := &Manager{
		nw:       nw,
		cfg:      cfg,
		planTree: tree,
		origOf:   make([]core.Rank, tree.Len()),
		curOf:    make(map[core.Rank]core.Rank, tree.Len()),
		baseline: map[core.Rank]time.Time{},
	}
	for r := 0; r < tree.Len(); r++ {
		m.origOf[r] = core.Rank(r)
		m.curOf[core.Rank(r)] = core.Rank(r)
	}
	return m, nil
}

// Start launches the failure detector. It requires heartbeats. A stopped
// manager may be started again.
func (m *Manager) Start() error {
	if m.nw.HeartbeatPeriod() <= 0 {
		return errors.New("recovery: network has no heartbeats (core.Config.HeartbeatPeriod)")
	}
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return errors.New("recovery: already started")
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	now := time.Now()
	for orig := range m.curOf {
		m.baseline[orig] = now
	}
	m.mu.Unlock()
	go m.watch(stop, done)
	if m.cfg.CheckpointPeriod > 0 {
		go m.checkpointLoop(stop)
	}
	return nil
}

// checkpointLoop periodically drives adopter checkpoints until the
// detector is stopped. Checkpoints are serialized against recoveries so a
// node is never asked to snapshot mid-adoption.
func (m *Manager) checkpointLoop(stop <-chan struct{}) {
	t := time.NewTicker(m.cfg.CheckpointPeriod)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.runMu.Lock()
			m.nw.CheckpointNow()
			m.runMu.Unlock()
		}
	}
}

// Stop halts the detector (manual Recover keeps working).
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

// Reports returns the recoveries completed so far, oldest first.
func (m *Manager) Reports() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.reports...)
}

// watch is the detector loop: poll beacon freshness, declare the
// shallowest silent process failed, recover it, repeat.
func (m *Manager) watch(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(m.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if victim, silence, ok := m.detect(); ok {
				if _, err := m.recover(victim, silence); err != nil {
					// Unrecoverable (e.g. torn down): back off to the
					// next tick; transient races resolve themselves.
					continue
				}
			}
		}
	}
}

// detect returns the shallowest process whose beacon has been silent past
// the timeout, if any.
func (m *Manager) detect() (core.Rank, time.Duration, bool) {
	hb := m.nw.Heartbeats()
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var victim core.Rank
	var silence time.Duration
	level := -1
	for orig, cur := range m.curOf {
		if cur == 0 {
			continue // the front-end does not beacon
		}
		last := m.baseline[orig]
		if t, ok := hb[orig]; ok && t.After(last) {
			last = t
		}
		if last.IsZero() {
			continue // detector not started for this rank yet
		}
		node := m.planTree.Node(cur)
		limit := m.cfg.Timeout
		if node.IsLeaf() {
			limit = m.cfg.LeafTimeout
		}
		s := now.Sub(last)
		if s <= limit {
			continue
		}
		if lv := node.Level; level == -1 || lv < level || (lv == level && s > silence) {
			victim, silence, level = orig, s, lv
		}
	}
	return victim, silence, level != -1
}

// Recover manually triggers recovery of the process at the given
// (original-numbering) rank, for callers that detected the failure by
// other means (e.g. fault-injection harnesses).
func (m *Manager) Recover(failed core.Rank) (Report, error) {
	return m.recover(failed, 0)
}

func (m *Manager) recover(failed core.Rank, silence time.Duration) (Report, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	m.mu.Lock()
	cur, ok := m.curOf[failed]
	if !ok {
		m.mu.Unlock()
		return Report{}, fmt.Errorf("recovery: rank %d unknown or already recovered", failed)
	}
	plan, err := reliability.Recover(m.planTree, cur)
	m.mu.Unlock()
	if err != nil {
		return Report{}, err
	}

	adoption, err := m.nw.Adopt(failed, m.compose)
	if err != nil {
		return Report{}, err
	}

	m.mu.Lock()
	// Fold the plan into the rank translation: planning ranks compact
	// around the hole while original ranks are stable.
	origOf := make([]core.Rank, plan.Tree.Len())
	curOf := make(map[core.Rank]core.Rank, plan.Tree.Len())
	for old, orig := range m.origOf {
		if nu, ok := plan.Remap[core.Rank(old)]; ok && nu != topology.NoRank {
			origOf[nu] = orig
			curOf[orig] = nu
		}
	}
	m.planTree = plan.Tree
	m.origOf = origOf
	m.curOf = curOf
	// Fresh grace for everyone: the re-attached subtree's beacons need a
	// moment to resume flowing through the new links.
	now := time.Now()
	for orig := range m.curOf {
		m.baseline[orig] = now
	}
	rep := Report{
		Failed:          failed,
		NewParent:       adoption.NewParent,
		Orphans:         adoption.Orphans,
		Plan:            plan,
		StreamsComposed: adoption.StreamsComposed,
		Detection:       silence,
		Rewire:          adoption.Rewire,
		Total:           silence + adoption.Rewire,
		At:              now,
	}
	m.reports = append(m.reports, rep)
	cb := m.cfg.OnRecovery
	m.mu.Unlock()
	if cb != nil {
		cb(rep)
	}
	return rep, nil
}

// compose reconstructs a lost node's per-stream filter state from its
// children's snapshots via reliability.ComposeStates. Stateless filters
// (sum, histogram merges) have nothing to restore; stateful filters must
// be merge-composable (reliability.Merger), like the eqclass filter.
func (m *Manager) compose(streamID uint32, transformation string, children [][]byte) ([]byte, error) {
	reg := m.nw.Registry()
	probe, err := reg.NewTransformation(transformation)
	if err != nil {
		return nil, nil
	}
	if _, ok := probe.(filter.StatefulTransformation); !ok {
		return nil, nil
	}
	if _, ok := probe.(reliability.Merger); !ok {
		return nil, nil
	}
	return reliability.ComposeStates(func() filter.StatefulTransformation {
		t, err := reg.NewTransformation(transformation)
		if err != nil {
			return nil
		}
		st, _ := t.(filter.StatefulTransformation)
		return st
	}, children)
}
