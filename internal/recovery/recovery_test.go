package recovery

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eqclass"
	"repro/internal/filter"
	"repro/internal/topology"
)

const tagQuery = 100

func mustTree(t *testing.T, spec string) *topology.Tree {
	t.Helper()
	tr, err := topology.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// fabrics names both link substrates for table-driven tests.
var fabrics = map[string]core.TransportKind{
	"chan": core.ChanTransport,
	"tcp":  core.TCPTransport,
}

// sumEcho builds a recoverable, heartbeating chan-fabric network whose
// back-ends answer every multicast with their rank.
func sumEcho(t *testing.T, spec string, hb time.Duration) *core.Network {
	t.Helper()
	return sumEchoOn(t, spec, hb, core.ChanTransport)
}

// sumEchoOn is sumEcho on an explicit link fabric.
func sumEchoOn(t *testing.T, spec string, hb time.Duration, kind core.TransportKind) *core.Network {
	t.Helper()
	nw, err := core.NewNetwork(core.Config{
		Topology:        mustTree(t, spec),
		Transport:       kind,
		Recoverable:     true,
		HeartbeatPeriod: hb,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				// Transient failures are expected while orphaned.
				_ = be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank()))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestManagerAutoRecoversInternalFailure(t *testing.T) {
	nw := sumEcho(t, "kary:2^2", 10*time.Millisecond)
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	round := func(want float64) {
		t.Helper()
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("sum = %g, want %g", v, want)
		}
	}
	round(18)

	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(mgr.Reports()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never recovered the killed node")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep := mgr.Reports()[0]
	if rep.Failed != 1 || rep.NewParent != 0 || len(rep.Orphans) != 2 {
		t.Errorf("report = failed %d, parent %d, orphans %v", rep.Failed, rep.NewParent, rep.Orphans)
	}
	if rep.Detection <= 0 || rep.Total < rep.Rewire {
		t.Errorf("latencies: detection %v, rewire %v, total %v", rep.Detection, rep.Rewire, rep.Total)
	}
	if rep.Plan == nil || rep.Plan.Tree.Len() != 6 {
		t.Error("report carries no usable plan")
	}

	// The same stream keeps serving the full membership.
	for i := 0; i < 3; i++ {
		round(18)
	}
	if nw.Metrics().RecoveriesCompleted.Load() != 1 {
		t.Errorf("RecoveriesCompleted = %d", nw.Metrics().RecoveriesCompleted.Load())
	}
}

func TestManagerRecoversLeafFailure(t *testing.T) {
	nw := sumEcho(t, "kary:2^2", 10*time.Millisecond)
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	if err := nw.Kill(6); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(mgr.Reports()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never noticed the dead back-end")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep := mgr.Reports()[0]; rep.Failed != 6 || len(rep.Orphans) != 0 {
		t.Errorf("report = %+v", rep)
	}
	// New full-membership streams exclude the dead leaf.
	st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Float(0); v != 12 { // 3+4+5
		t.Errorf("sum after leaf failure = %g, want 12", v)
	}
}

func TestManagerSequentialFailures(t *testing.T) {
	nw := sumEcho(t, "kary:2^3", 10*time.Millisecond)
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	st, err := nw.NewStream(core.StreamSpec{Transformation: "count", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	for i, victim := range []core.Rank{3, 1} { // child first, then its (former) parent
		if err := nw.Kill(victim); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for len(mgr.Reports()) <= i {
			if time.Now().After(deadline) {
				t.Fatalf("failure %d of rank %d never recovered", i, victim)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("after failure %d: %v", i, err)
		}
		if v, _ := p.Int(0); v != 8 {
			t.Errorf("after failure %d: count = %d, want 8 (no back-end lost)", i, v)
		}
	}
}

func TestManagerValidation(t *testing.T) {
	plain, err := core.NewNetwork(core.Config{Topology: mustTree(t, "flat:2")})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Shutdown()
	if _, err := New(plain, Config{}); err == nil {
		t.Error("non-recoverable network: want error")
	}

	noHB, err := core.NewNetwork(core.Config{Topology: mustTree(t, "flat:2"), Recoverable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer noHB.Shutdown()
	m, err := New(noHB, Config{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Error("start without heartbeats: want error")
	}

	hb := sumEcho(t, "flat:2", 50*time.Millisecond)
	defer hb.Shutdown()
	if _, err := New(hb, Config{Timeout: 60 * time.Millisecond}); err == nil {
		t.Error("timeout under two heartbeat periods: want error")
	}

	// Live rewiring is fabric-agnostic: a TCP network is a valid manager
	// target (it used to be rejected as chan-only).
	tcp, err := core.NewNetwork(core.Config{Topology: mustTree(t, "flat:2"), Recoverable: true, Transport: core.TCPTransport})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Shutdown()
	if _, err := New(tcp, Config{Timeout: time.Second}); err != nil {
		t.Errorf("TCP transport: %v, want manager creation to succeed", err)
	}
}

// TestManagerAutoRecoversOnTCP: the heartbeat detector and live
// reconfiguration drive recovery end-to-end over real TCP links.
func TestManagerAutoRecoversOnTCP(t *testing.T) {
	nw := sumEchoOn(t, "kary:2^2", 10*time.Millisecond, core.TCPTransport)
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	round := func(want float64) {
		t.Helper()
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("sum = %g, want %g", v, want)
		}
	}
	round(18)
	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(mgr.Reports()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never recovered the killed node on TCP")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep := mgr.Reports()[0]
	if rep.Failed != 1 || rep.NewParent != 0 || len(rep.Orphans) != 2 {
		t.Errorf("report = failed %d, parent %d, orphans %v", rep.Failed, rep.NewParent, rep.Orphans)
	}
	for i := 0; i < 3; i++ {
		round(18)
	}
	if nw.Metrics().RewiredLinks.Load() == 0 {
		t.Error("no replacement links counted on the TCP fabric")
	}
}

// TestManagerOverlappingFailures: a child and its parent are killed
// nearly simultaneously, so the second death lands while the first
// failure's detection/adoption is in flight. The detector must converge
// shallowest-first on both fabrics with no back-end lost.
func TestManagerOverlappingFailures(t *testing.T) {
	for name, kind := range fabrics {
		t.Run(name, func(t *testing.T) {
			nw := sumEchoOn(t, "kary:2^3", 10*time.Millisecond, kind) // 0; 1,2; 3..6; leaves 7..14
			defer nw.Shutdown()
			mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := mgr.Start(); err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()
			st, err := nw.NewStream(core.StreamSpec{Transformation: "count", Synchronization: "waitforall"})
			if err != nil {
				t.Fatal(err)
			}

			// Deep node first, then its parent a beat later: both are
			// silent when the detector wakes, and the parent's death
			// overlaps whatever recovery the child's silence triggered.
			if err := nw.Kill(3); err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			if err := nw.Kill(1); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for len(mgr.Reports()) < 2 {
				if time.Now().After(deadline) {
					t.Fatalf("only %d of 2 overlapping failures recovered", len(mgr.Reports()))
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err := st.Multicast(tagQuery, ""); err != nil {
				t.Fatal(err)
			}
			p, err := st.RecvTimeout(10 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := p.Int(0); v != 8 {
				t.Errorf("post-overlap count = %d, want 8 (no back-end lost)", v)
			}
		})
	}
}

// leafPairs is the deterministic (class, member) report of the i'th leaf,
// large enough that it takes several query rounds to stream out.
func leafPairs(i int) [][2]any {
	oses := []string{"os/linux", "os/aix", "os/sunos"}
	pairs := [][2]any{
		{oses[i%len(oses)], int64(i)},
		{"cpu", int64(i % 4)},
	}
	for j := 0; j < 4; j++ {
		pairs = append(pairs, [2]any{fmt.Sprintf("mod/%d", j), int64(i)})
	}
	return pairs
}

// setFingerprint renders a class set canonically for comparison.
func setFingerprint(s *eqclass.Set) string {
	var parts []string
	for _, k := range s.Keys() {
		for _, m := range s.Members(k) {
			parts = append(parts, fmt.Sprintf("%s=%d", k, m))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// runEqclassWorkload drives the paper's equivalence-class computation on
// the given tree: back-ends (re-)send their full report on every query,
// the overlay suppresses duplicates level by level, and the front-end
// accumulates deltas. If kill is non-negative, that rank is crashed
// mid-stream and the manager must recover it live. Returns the
// front-end's final accumulated set and the recovery reports.
func runEqclassWorkload(t *testing.T, spec string, kind core.TransportKind, kill core.Rank) (string, []Report) {
	t.Helper()
	reg := filter.NewRegistry()
	eqclass.Register(reg)
	tree := mustTree(t, spec)
	leaves := tree.Leaves()
	leafIdx := map[core.Rank]int{}
	for i, l := range leaves {
		leafIdx[l] = i
	}
	want := eqclass.NewSet()
	for i := range leaves {
		for _, pr := range leafPairs(i) {
			want.Add(pr[0].(string), pr[1].(int64))
		}
	}

	nw, err := core.NewNetwork(core.Config{
		Topology:        tree,
		Registry:        reg,
		Transport:       kind,
		Recoverable:     true,
		HeartbeatPeriod: 10 * time.Millisecond,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				// Each query round reveals one pair of the report, so the
				// data is still streaming when the fault lands; resending
				// cycles through the report, which is safe because the
				// equivalence-class reduction is idempotent.
				round, err := p.Int(0)
				if err != nil {
					continue
				}
				pairs := leafPairs(leafIdx[be.Rank()])
				pr := pairs[int(round)%len(pairs)]
				s := eqclass.NewSet()
				s.Add(pr[0].(string), pr[1].(int64))
				rp, err := s.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				_ = be.SendPacket(rp) // orphaned sends fail; resent next cycle
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  eqclass.FilterName,
		Synchronization: "nullsync",
	})
	if err != nil {
		t.Fatal(err)
	}

	acc := eqclass.NewSet()
	deadline := time.Now().Add(30 * time.Second)
	killed := false
	for round := 0; ; round++ {
		if kill >= 0 && round == 3 && !killed {
			if err := nw.Kill(kill); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
		if err := st.Multicast(tagQuery, "%d", int64(round)); err != nil {
			t.Fatal(err)
		}
		// Drain whatever deltas (including recovery state replays) are in.
	drain:
		for {
			p, err := st.RecvTimeout(20 * time.Millisecond)
			if err != nil {
				break drain
			}
			s, err := eqclass.FromPacket(p)
			if err != nil {
				continue
			}
			acc.Merge(s)
		}
		converged := acc.Len() == want.Len() && setFingerprint(acc) == setFingerprint(want)
		recovered := kill < 0 || (killed && len(mgr.Reports()) > 0)
		if converged && recovered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front-end never converged: have %q, want %q (recovered: %v)",
				setFingerprint(acc), setFingerprint(want), recovered)
		}
	}
	return setFingerprint(acc), mgr.Reports()
}

// TestChaosKillMidStreamMatchesUnfailedRun is the acceptance check, on
// BOTH fabrics: killing a random internal communication process on a
// running network with an active composable reduction yields the same
// final reduced result as a run that never failed. The TCP rows skip
// under -short; CI runs them full in the soak step under -race.
func TestChaosKillMidStreamMatchesUnfailedRun(t *testing.T) {
	for name, kind := range fabrics {
		for _, spec := range []string{"kary:3^2", "kary:2^3"} {
			t.Run(name+"/"+spec, func(t *testing.T) {
				if kind == core.TCPTransport && testing.Short() {
					t.Skip("TCP chaos runs in the CI soak step")
				}
				tree := mustTree(t, spec)
				internals := tree.InternalNodes()
				victim := internals[rand.Intn(len(internals))]

				clean, cleanReps := runEqclassWorkload(t, spec, kind, -1)
				if len(cleanReps) != 0 {
					t.Errorf("unfailed run recovered something: %v", cleanReps)
				}
				failed, reps := runEqclassWorkload(t, spec, kind, victim)
				if failed != clean {
					t.Errorf("victim %d: failed-run result %q != unfailed %q", victim, failed, clean)
				}
				if len(reps) != 1 || reps[0].Failed != victim {
					t.Fatalf("victim %d: reports = %+v", victim, reps)
				}
				// When the orphans are internal processes they carry eqclass
				// state, and the lost level's state must have been rebuilt by
				// composition.
				if len(tree.Children(victim)) > 0 && !tree.Node(tree.Children(victim)[0]).IsLeaf() {
					if reps[0].StreamsComposed == 0 {
						t.Error("internal orphans but no stream state composed")
					}
				}
			})
		}
	}
}

// TestManagerRestart: a stopped manager can be started again (regression:
// the stop/done channels used to be single-use).
func TestManagerRestart(t *testing.T) {
	nw := sumEcho(t, "kary:2^2", 10*time.Millisecond)
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := mgr.Start(); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		mgr.Stop()
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(mgr.Reports()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted manager never recovered the failure")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestManagerSimultaneousCascade: every root child (and one deeper node)
// dies at once. The front-end must stay up with zero live children, adopt
// the orphans shallowest-first as the detector declares them, and end up
// serving all back-ends again.
func TestManagerSimultaneousCascade(t *testing.T) {
	nw := sumEcho(t, "kary:2^2", 10*time.Millisecond) // 0; 1,2; leaves 3..6
	defer nw.Shutdown()
	mgr, err := New(nw, Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Kill(2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for len(mgr.Reports()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 failures recovered", len(mgr.Reports()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Float(0); v != 18 { // all four back-ends survived
		t.Errorf("post-cascade sum = %g, want 18", v)
	}
}
