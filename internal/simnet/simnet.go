// Package simnet models the cluster interconnect the paper's experiments ran
// on (Gigabit Ethernet between ~3 GHz Pentium 4 workstations). Because this
// reproduction runs all overlay processes as goroutines in one address
// space, raw channel transfers are effectively free; simnet reintroduces the
// communication cost term so that tree-shape effects that depend on transfer
// time (front-end fan-in congestion, per-hop latency) appear at realistic
// relative magnitudes.
//
// Two modes are provided and can be combined:
//
//   - Accounting: every Send adds the modeled transfer time to a per-node
//     virtual clock, letting the harness report simulated wall times without
//     actually sleeping.
//   - Injection: every Send sleeps the modeled transfer time scaled by
//     TimeScale, physically serializing link usage the way a NIC does.
package simnet

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// Model describes one link's cost parameters.
type Model struct {
	// Latency is the fixed per-message cost (propagation + protocol).
	Latency time.Duration
	// Bandwidth is the link speed in bytes/second; zero means infinite.
	Bandwidth float64
}

// GigE approximates the paper's interconnect: Gigabit Ethernet with
// ~100 microsecond one-way message latency.
var GigE = Model{Latency: 100 * time.Microsecond, Bandwidth: 125e6}

// TransferTime returns the modeled time to move a message of the given
// encoded size across the link.
func (m Model) TransferTime(bytes int) time.Duration {
	d := m.Latency
	if m.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
	}
	return d
}

// Clock accumulates simulated time, safe for concurrent use.
type Clock struct {
	mu sync.Mutex
	t  time.Duration
}

// Advance adds d to the clock.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated simulated time.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.t = 0
	c.mu.Unlock()
}

// Link wraps a transport.Link with the cost model. If Clock is non-nil the
// modeled transfer time of every Send is accumulated there; if TimeScale is
// positive the sender additionally sleeps TransferTime*TimeScale, physically
// serializing the link.
type Link struct {
	transport.Link
	Model Model
	// Clock, if non-nil, accumulates modeled transfer time.
	Clock *Clock
	// TimeScale scales injected real delay; zero disables injection.
	TimeScale float64

	mu sync.Mutex // serializes injected delays, modeling a single NIC queue
}

// Send applies the cost model and forwards to the wrapped link.
func (l *Link) Send(p *packet.Packet) error {
	l.charge(l.Model.TransferTime(p.EncodedSize()))
	return l.Link.Send(p)
}

// SendBatch charges the frame cost — the fixed per-message latency once
// per frame plus the bandwidth term for every payload byte — and forwards
// the batch to the wrapped link. This is what makes the modeled benefit of
// egress batching visible: a frame of 32 small packets costs one latency
// plus 32 payloads, not 32 latencies.
func (l *Link) SendBatch(ps []*packet.Packet) error {
	bytes := 0
	for _, p := range ps {
		bytes += p.EncodedSize()
	}
	l.charge(l.Model.TransferTime(bytes))
	return transport.SendBatch(l.Link, ps)
}

// RecvBatch forwards to the wrapped link's batch path, so frames survive
// the cost-model decoration on the receive side.
func (l *Link) RecvBatch() ([]*packet.Packet, error) {
	return transport.RecvBatch(l.Link)
}

// BatchCopies delegates the send-side ownership question to the wrapped
// link: the cost model charges time but never buffers batches.
func (l *Link) BatchCopies() bool { return transport.BatchCopies(l.Link) }

func (l *Link) charge(d time.Duration) {
	if l.Clock != nil {
		l.Clock.Advance(d)
	}
	if l.TimeScale > 0 {
		l.mu.Lock()
		time.Sleep(time.Duration(float64(d) * l.TimeScale))
		l.mu.Unlock()
	}
}

// Drop severs the wrapped link abruptly (crash modeling); the cost model
// does not apply to a failure.
func (l *Link) Drop() { transport.DropLink(l.Link) }

// Wrap decorates every link of every endpoint with the cost model. All
// wrapped links share the provided clock (which may be nil).
func Wrap(eps []*transport.Endpoint, m Model, clock *Clock, timeScale float64) {
	for _, ep := range eps {
		if ep.Parent != nil {
			ep.Parent = &Link{Link: ep.Parent, Model: m, Clock: clock, TimeScale: timeScale}
		}
		for i, c := range ep.Children {
			ep.Children[i] = &Link{Link: c, Model: m, Clock: clock, TimeScale: timeScale}
		}
	}
}
