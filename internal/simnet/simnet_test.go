package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/transport"
)

func TestTransferTime(t *testing.T) {
	m := Model{Latency: time.Millisecond, Bandwidth: 1000} // 1000 B/s
	if got := m.TransferTime(0); got != time.Millisecond {
		t.Errorf("TransferTime(0) = %v, want 1ms", got)
	}
	// 500 bytes at 1000 B/s = 500ms + 1ms latency.
	if got := m.TransferTime(500); got != 501*time.Millisecond {
		t.Errorf("TransferTime(500) = %v, want 501ms", got)
	}
	// Infinite bandwidth.
	m2 := Model{Latency: time.Microsecond}
	if got := m2.TransferTime(1 << 30); got != time.Microsecond {
		t.Errorf("infinite bandwidth: %v", got)
	}
}

func TestGigEIsPlausible(t *testing.T) {
	// A 1 MB transfer on GigE should take ~8ms plus latency.
	d := GigE.TransferTime(1 << 20)
	if d < 8*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("GigE 1MB transfer = %v, want ~8.4ms", d)
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Elapsed(); got != 8*time.Millisecond {
		t.Errorf("Elapsed = %v, want 8ms", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestWrapAccountsTransfers(t *testing.T) {
	tr, _ := topology.Flat(2)
	eps := transport.NewChanFabric(tr, 0)
	var clock Clock
	m := Model{Latency: time.Millisecond} // no bandwidth term
	Wrap(eps, m, &clock, 0)

	p := packet.MustNew(100, 1, 1, "%d", int64(5))
	if err := eps[1].Parent.Send(p); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Children[0].Recv(); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != time.Millisecond {
		t.Errorf("clock = %v, want 1ms", got)
	}
	// Downstream send accounts too.
	if err := eps[0].Children[1].Send(p); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != 2*time.Millisecond {
		t.Errorf("clock = %v, want 2ms", got)
	}
}

func TestWrapInjectionDelays(t *testing.T) {
	tr, _ := topology.Flat(1)
	eps := transport.NewChanFabric(tr, 0)
	m := Model{Latency: 20 * time.Millisecond}
	Wrap(eps, m, nil, 1.0)
	start := time.Now()
	if err := eps[1].Parent.Send(packet.MustNew(100, 1, 1, "%d", int64(1))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("injected delay too small: %v", elapsed)
	}
}

// Property: transfer time is monotone in message size and never below latency.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		m := Model{Latency: time.Millisecond, Bandwidth: 1e6}
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		tx, ty := m.TransferTime(x), m.TransferTime(y)
		return tx >= m.Latency && tx <= ty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
