// Package elastic drives load-driven topology mutation: it turns the
// overlay's per-process load reports (core.LoadSample) into per-subtree
// heat scores and elastically reshapes the tree — splitting saturated
// internal processes and merging cold ones — so sustained throughput
// tracks the offered load even when it is badly skewed across subtrees.
//
// Heat is rate-normalized and relative: a process's score is its upstream
// packet rate divided by the mean rate over all live internal processes.
// Uniform load therefore scores everyone near 1.0 and mutates nothing;
// a 4:1 skew scores the hot subtree near the split threshold. Hysteresis
// comes from three guards: separated split/merge thresholds, a per-node
// mutation cooldown, and at most one mutation per control tick — so the
// mutation count plateaus once the shape matches the load.
//
// The controller backs off while a failure is being recovered (mutating a
// tree whose shape is mid-repair would race the recovery manager's
// bookkeeping), resuming once recoveries catch up with failures.
package elastic

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Config parameterizes a Controller. Network is required; everything else
// has working defaults.
type Config struct {
	// Network is the overlay to watch and mutate. Its Config must set
	// LoadReportPeriod (no reports, no heat) and Recoverable (splits
	// migrate children over the reparent protocol).
	Network *core.Network

	// Period is the control-loop tick. Heat is computed from report
	// deltas between ticks. Default 100ms.
	Period time.Duration

	// SplitAbove is the heat score at or above which a process is a split
	// candidate. Default 2.0 (twice the mean rate).
	SplitAbove float64

	// MergeBelow is the heat score at or below which a process is a merge
	// candidate. Default 0.25. Must stay well under SplitAbove: the gap
	// is the hysteresis band that keeps the shape from oscillating.
	// Negative disables merging entirely (a split-only controller, e.g.
	// for a drain-to-empty workload whose subtrees all go idle at the
	// end).
	MergeBelow float64

	// Cooldown is the minimum time between mutations touching the same
	// rank (both the donor and the new sibling of a split are stamped).
	// Default 10 periods.
	Cooldown time.Duration

	// MinMeanRate is the mean upstream packet rate (pkts/s across live
	// internal processes) below which the controller considers the
	// overlay idle and mutates nothing. Default 50.
	MinMeanRate float64

	// MinQueued is the parent-egress backlog a split candidate must show
	// when it has no credit stalls — corroborating evidence that the heat
	// is pressure, not just relative imbalance on an underloaded tree.
	// Default 1; negative disables the pressure check (heat alone
	// decides, e.g. on overlays without flow control).
	MinQueued int64

	// Compose reconstructs filter state when a merge folds a subtree; may
	// be nil (checkpoint-based recovery still applies).
	Compose core.StateComposer

	// Merge overrides how a merge is executed (e.g. routed through a
	// recovery manager so its bookkeeping tracks the fold). Nil uses
	// Network.MergeNode directly.
	Merge func(cold core.Rank) error

	// OnMutation, when non-nil, observes every mutation as it commits.
	OnMutation func(Mutation)
}

// Mutation records one committed topology change.
type Mutation struct {
	// Kind is "split" or "merge".
	Kind string
	// Target is the process that was split or merged away.
	Target core.Rank
	// Sibling is the process a split spawned (NoRank-free: only set for
	// splits; zero for merges).
	Sibling core.Rank
	// Heat is the target's score when the decision fired.
	Heat float64
	// At is when the mutation committed.
	At time.Time
}

// mergeWarmup is how many load reports a rank must have contributed
// before its measured rate can justify merging it away.
const mergeWarmup = 4

// sample is one rank's previous cumulative counters, for delta rates.
// n counts how many reports the controller has folded in — a rank's rate
// is trusted for merges only after a short warm-up, so a freshly split
// sibling is not judged cold while traffic is still cutting over to it.
type sample struct {
	upPkts int64
	stalls int64
	at     time.Time
	n      int
}

// Controller runs the elastic control loop over one Network.
type Controller struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	prev     map[core.Rank]sample
	scores   map[core.Rank]float64
	scoresAt time.Time
	lastMut  map[core.Rank]time.Time
	muts     []Mutation
}

// New builds a Controller; call Start to begin mutating.
func New(cfg Config) *Controller {
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.SplitAbove <= 0 {
		cfg.SplitAbove = 2.0
	}
	if cfg.MergeBelow == 0 {
		cfg.MergeBelow = 0.25
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * cfg.Period
	}
	if cfg.MinMeanRate <= 0 {
		cfg.MinMeanRate = 50
	}
	if cfg.MinQueued == 0 {
		cfg.MinQueued = 1
	}
	return &Controller{
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		prev:    map[core.Rank]sample{},
		scores:  map[core.Rank]float64{},
		lastMut: map[core.Rank]time.Time{},
	}
}

// Start launches the control loop. Stop it before shutting the network
// down.
func (c *Controller) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Period)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.tick()
			}
		}
	}()
}

// Stop halts the control loop and waits for any in-flight tick.
func (c *Controller) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// Mutations returns the committed mutations in commit order.
func (c *Controller) Mutations() []Mutation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Mutation(nil), c.muts...)
}

// Scores returns the latest heat scores and when they were computed.
func (c *Controller) Scores() (map[core.Rank]float64, time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[core.Rank]float64, len(c.scores))
	for r, s := range c.scores {
		out[r] = s
	}
	return out, c.scoresAt
}

// Placement packages the latest scores for core.PlaceBackEnd: fresh for
// up to four periods, with the given fan-out cap.
func (c *Controller) Placement(maxFanOut int) core.Placement {
	scores, at := c.Scores()
	return core.Placement{
		Scores:    scores,
		ScoresAt:  at,
		Staleness: 4 * c.cfg.Period,
		MaxFanOut: maxFanOut,
	}
}

// tick samples load, refreshes heat scores, and commits at most one
// mutation.
func (c *Controller) tick() {
	nw := c.cfg.Network
	m := nw.Metrics()

	// Back off while recovery is behind: a crashed process is being (or
	// waiting to be) adopted, and mutating around it would fight the
	// repair. Merges themselves keep the two counters balanced.
	if m.NodesFailed.Load() > m.RecoveriesCompleted.Load() {
		return
	}

	live := nw.LiveInternal()
	reports := nw.LoadReports()
	now := time.Now()

	type rated struct {
		rank   core.Rank
		rate   float64
		stalls int64
		queued int64
		n      int
	}
	var rates []rated
	c.mu.Lock()
	for _, r := range live {
		rep, ok := reports[r]
		if !ok {
			continue
		}
		p, seen := c.prev[r]
		cur := sample{upPkts: rep.UpPackets, stalls: rep.Stalls, at: rep.At, n: p.n}
		if !seen || rep.At.After(p.at) {
			cur.n++
		}
		c.prev[r] = cur
		if !seen || !rep.At.After(p.at) {
			continue // need two distinct samples for a rate
		}
		dt := rep.At.Sub(p.at).Seconds()
		if dt <= 0 {
			continue
		}
		rates = append(rates, rated{
			rank:   r,
			rate:   float64(rep.UpPackets-p.upPkts) / dt,
			stalls: rep.Stalls - p.stalls,
			queued: rep.Queued,
			n:      cur.n,
		})
	}
	if len(rates) == 0 {
		c.mu.Unlock()
		return
	}
	var mean float64
	for _, x := range rates {
		mean += x.rate
	}
	mean /= float64(len(rates))

	// Refresh scores even when idle — placement still prefers them.
	c.scores = make(map[core.Rank]float64, len(rates))
	c.scoresAt = now
	var max float64
	for _, x := range rates {
		s := 0.0
		if mean > 0 {
			s = x.rate / mean
		}
		c.scores[x.rank] = s
		if s > max {
			max = s
		}
	}
	m.HeatScoreMilli.Store(int64(max * 1000))

	if mean < c.cfg.MinMeanRate {
		c.mu.Unlock()
		return // idle overlay: never churn the shape on noise
	}

	// Split candidate: hottest process over the threshold with pressure
	// evidence, enough children to share, and a cold cooldown.
	var split *rated
	for i := range rates {
		x := &rates[i]
		s := c.scores[x.rank]
		if s < c.cfg.SplitAbove {
			continue
		}
		if x.stalls <= 0 && x.queued < c.cfg.MinQueued {
			continue
		}
		if now.Sub(c.lastMut[x.rank]) < c.cfg.Cooldown {
			continue
		}
		if len(nw.LiveChildren(x.rank)) < 2 {
			continue
		}
		if split == nil || c.scores[x.rank] > c.scores[split.rank] {
			split = x
		}
	}
	if split != nil {
		heat := c.scores[split.rank]
		c.mu.Unlock()
		sib, err := nw.SplitNode(split.rank)
		if err != nil {
			return
		}
		c.record(Mutation{Kind: "split", Target: split.rank, Sibling: sib, Heat: heat, At: time.Now()})
		c.mu.Lock()
		c.lastMut[split.rank] = time.Now()
		c.lastMut[sib] = time.Now()
		c.mu.Unlock()
		return
	}

	// Merge candidate: coldest process under the threshold. Never the
	// last internal process (keep the aggregation level), never one whose
	// reports have gone missing (a congested uplink drops reports — such
	// a process is hot, not cold).
	var merge *rated
	if len(live) > 1 && c.cfg.MergeBelow > 0 {
		for i := range rates {
			x := &rates[i]
			if c.scores[x.rank] > c.cfg.MergeBelow {
				continue
			}
			if x.n < mergeWarmup {
				continue // too young to judge cold: traffic may still be cutting over
			}
			if now.Sub(c.lastMut[x.rank]) < c.cfg.Cooldown {
				continue
			}
			if merge == nil || c.scores[x.rank] < c.scores[merge.rank] {
				merge = x
			}
		}
	}
	if merge != nil {
		heat := c.scores[merge.rank]
		c.mu.Unlock()
		if c.cfg.Merge != nil {
			if err := c.cfg.Merge(merge.rank); err != nil {
				return
			}
		} else if _, err := nw.MergeNode(merge.rank, c.cfg.Compose); err != nil {
			return
		}
		c.record(Mutation{Kind: "merge", Target: merge.rank, Heat: heat, At: time.Now()})
		c.mu.Lock()
		delete(c.prev, merge.rank)
		c.lastMut[merge.rank] = time.Now()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

func (c *Controller) record(mut Mutation) {
	c.mu.Lock()
	c.muts = append(c.muts, mut)
	c.mu.Unlock()
	if c.cfg.OnMutation != nil {
		c.cfg.OnMutation(mut)
	}
}
