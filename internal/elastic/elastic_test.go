package elastic

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

const tagLoad = 100

// buildLoaded builds a recoverable overlay whose back-ends stream
// open-loop after the start multicast: every sender sleeps the same
// millisecond between bursts and burst(rank) sets how many packets each
// burst carries, so relative rates are exact regardless of timer
// granularity and the overlay stays unsaturated even under -race.
// A negative burst means the back-end stays silent. Returns the network
// and a stop function that halts the drain goroutine.
func buildLoaded(t *testing.T, spec string, burst func(core.Rank) int) (*core.Network, func()) {
	t.Helper()
	tree, err := topology.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := core.NewNetwork(core.Config{
		Topology:         tree,
		Recoverable:      true,
		LoadReportPeriod: 5 * time.Millisecond,
		OnBackEnd: func(be *core.BackEnd) error {
			p, err := be.Recv() // wait for the start multicast
			if err != nil {
				return nil
			}
			b := burst(be.Rank())
			if b < 0 {
				_, _ = be.Recv() // silent member: block until shutdown
				return nil
			}
			// Watch for the shutdown announcement while streaming
			// open-loop: Recv errors once the overlay tears down, which
			// is the only signal a sender that never blocks would see.
			stop := make(chan struct{})
			go func() {
				for {
					if _, err := be.Recv(); err != nil {
						close(stop)
						return
					}
				}
			}()
			for {
				select {
				case <-stop:
					return nil
				default:
				}
				for i := 0; i < b; i++ {
					// Transient failures are expected mid-migration (the
					// old parent link is gone, the new one not yet bound):
					// keep streaming, the stop watcher ends the loop.
					_ = be.Send(p.StreamID, tagLoad, "%d", int64(1))
				}
				time.Sleep(time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStream(core.StreamSpec{Transformation: "null", Synchronization: "nullsync"})
	if err != nil {
		nw.Shutdown()
		t.Fatal(err)
	}
	if err := st.Multicast(tagLoad, ""); err != nil {
		nw.Shutdown()
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = st.RecvTimeout(50 * time.Millisecond)
		}
	}()
	return nw, func() { close(stop); <-done }
}

// TestElasticSplitsHotSubtreeAndPlateaus is the hysteresis soak: under a
// sustained 4:1 subtree skew the controller splits the hot router, then
// the mutation count plateaus — separated thresholds plus cooldown keep
// the shape from oscillating.
func TestElasticSplitsHotSubtreeAndPlateaus(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	// kary:4^2: internals 1..4; leaves 5..8 under rank 1 run 4x hotter.
	nw, stopDrain := buildLoaded(t, "kary:4^2", func(r core.Rank) int {
		if r >= 5 && r <= 8 {
			return 4
		}
		return 1
	})
	defer stopDrain()
	defer nw.Shutdown()

	ctl := New(Config{
		Network:  nw,
		Period:   50 * time.Millisecond,
		Cooldown: 250 * time.Millisecond,
		// 4:1 skew scores the hot router ~2.3 and ~1.4 once split:
		// trigger between the two so exactly one split fires.
		SplitAbove:  1.8,
		MinQueued:   -1, // no flow control here: heat alone decides
		MinMeanRate: 50,
	})
	ctl.Start()
	defer ctl.Stop()

	time.Sleep(1500 * time.Millisecond)
	early := len(ctl.Mutations())
	time.Sleep(1500 * time.Millisecond)
	muts := ctl.Mutations()

	if early == 0 {
		t.Fatalf("no mutations under 4:1 skew; scores: %v", firstScores(ctl))
	}
	if len(muts) != early {
		t.Errorf("mutations kept accruing: %d then %d — no plateau", early, len(muts))
	}
	for _, m := range muts {
		if m.Kind != "split" {
			t.Errorf("unexpected %s of %d (heat %.2f) under skew", m.Kind, m.Target, m.Heat)
		}
		if m.Target != 1 {
			t.Errorf("split target = %d, want 1 (the hot router)", m.Target)
		}
	}
	if got := nw.Metrics().NodesSplit.Load(); got < 1 {
		t.Errorf("NodesSplit = %d, want >= 1", got)
	}
	if got := nw.Metrics().NodesMerged.Load(); got != 0 {
		t.Errorf("NodesMerged = %d, want 0 (cold subtrees are warm enough)", got)
	}
	// The hot router's children really were redistributed.
	sib := muts[0].Sibling
	if nk, ns := len(nw.LiveChildren(1)), len(nw.LiveChildren(sib)); nk != 2 || ns != 2 {
		t.Errorf("post-split children: donor %d, sibling %d; want 2 and 2", nk, ns)
		t.Logf("muts=%+v live=%v donor=%v sib(%d)=%v", muts, nw.LiveInternal(), nw.LiveChildren(1), sib, nw.LiveChildren(sib))
	}
	if nw.Metrics().HeatScoreMilli.Load() == 0 {
		t.Error("heat gauge never published")
	}
}

// TestElasticUniformLoadNoMutations: uniform offered load scores every
// router near 1.0 — inside the hysteresis band — so the shape must not
// change at all.
func TestElasticUniformLoadNoMutations(t *testing.T) {
	nw, stopDrain := buildLoaded(t, "kary:4^2", func(core.Rank) int {
		return 1
	})
	defer stopDrain()
	defer nw.Shutdown()

	ctl := New(Config{
		Network:   nw,
		Period:    50 * time.Millisecond,
		MinQueued: -1,
	})
	ctl.Start()
	defer ctl.Stop()

	time.Sleep(1500 * time.Millisecond)
	if muts := ctl.Mutations(); len(muts) != 0 {
		t.Errorf("uniform load mutated the tree: %+v", muts)
	}
	if got := nw.Metrics().TopologyMutations.Load(); got != 0 {
		t.Errorf("TopologyMutations = %d, want 0", got)
	}
}

// TestElasticMergesColdSubtree: a router whose subtree goes silent while
// the rest of the overlay is busy is folded into its parent.
func TestElasticMergesColdSubtree(t *testing.T) {
	// kary:2^2: leaves 3,4 under rank 1 stream; 5,6 under rank 2 silent.
	nw, stopDrain := buildLoaded(t, "kary:2^2", func(r core.Rank) int {
		if r == 3 || r == 4 {
			return 2
		}
		return -1
	})
	defer stopDrain()
	defer nw.Shutdown()

	ctl := New(Config{
		Network:  nw,
		Period:   50 * time.Millisecond,
		Cooldown: 10 * time.Second, // one mutation max in this test
	})
	ctl.Start()
	defer ctl.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if muts := ctl.Mutations(); len(muts) == 1 {
			if muts[0].Kind != "merge" || muts[0].Target != 2 {
				t.Fatalf("mutation = %+v, want merge of 2", muts[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cold router never merged; scores: %v", firstScores(ctl))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if live := nw.LiveInternal(); len(live) != 1 || live[0] != 1 {
		t.Errorf("LiveInternal = %v, want [1]", live)
	}
	for _, c := range []core.Rank{5, 6} {
		if got := nw.LiveParent(c); got != 0 {
			t.Errorf("LiveParent(%d) = %d, want 0 (folded into the root)", c, got)
		}
	}
	if got := nw.Metrics().NodesMerged.Load(); got != 1 {
		t.Errorf("NodesMerged = %d, want 1", got)
	}
}

// TestElasticPlacementFromScores: the controller's Placement snapshot
// steers PlaceBackEnd toward the coldest router.
func TestElasticPlacementFromScores(t *testing.T) {
	nw, stopDrain := buildLoaded(t, "kary:2^2", func(r core.Rank) int {
		if r == 3 || r == 4 {
			return 3
		}
		return 1
	})
	defer stopDrain()
	defer nw.Shutdown()

	ctl := New(Config{
		Network:  nw,
		Period:   50 * time.Millisecond,
		Cooldown: 10 * time.Second,
		// Thresholds far out: this test wants scores, not mutations.
		SplitAbove: 100,
	})
	ctl.Start()
	defer ctl.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if scores, at := ctl.Scores(); !at.IsZero() && len(scores) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never scored both routers")
		}
		time.Sleep(20 * time.Millisecond)
	}
	r, err := nw.PlaceBackEnd(ctl.Placement(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 2 {
		t.Errorf("placed under %d, want 2 (the colder router)", got)
	}
	if nw.Metrics().PlacementsLoadAware.Load() != 1 {
		t.Error("placement did not use the scores")
	}
}

func firstScores(c *Controller) map[core.Rank]float64 {
	s, _ := c.Scores()
	return s
}
