// Package meanshift implements the paper's case-study algorithm: the
// mean-shift procedure (Fukunaga & Hostetler) for two-dimensional data,
// which iteratively moves a search window toward the direction of greatest
// density increase until it converges on a mode (peak) of the underlying
// distribution. It is non-parametric: the number of clusters need not be
// known a priori.
//
// The package provides the single-node reference implementation (density
// scan seeding + kernel mean-shift + peak merging), the synthetic Gaussian
// cluster generator the paper's evaluation uses, and the TBON filter that
// distributes the computation: leaves run mean-shift on local data, and
// every parent merges its children's data sets and re-runs the procedure
// seeded with the children's peaks (filter.go).
package meanshift

import (
	"math"
	"sort"
)

// Point is a 2-D sample.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Kernel selects the shape function weighting points in the search window.
// The paper chooses Gaussian, which smooths noisy data; Uniform, Triangular
// and Epanechnikov (quadratic) are the other options it mentions.
type Kernel int

// The supported shape functions.
const (
	Gaussian Kernel = iota
	Uniform
	Triangular
	Epanechnikov
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Uniform:
		return "uniform"
	case Triangular:
		return "triangular"
	case Epanechnikov:
		return "epanechnikov"
	}
	return "kernel?"
}

// weight evaluates the kernel for squared distance d2 under bandwidth h.
// Points beyond the window (3h for Gaussian, h otherwise) weigh zero.
func (k Kernel) weight(d2, h float64) float64 {
	switch k {
	case Gaussian:
		if d2 > 9*h*h {
			return 0
		}
		return math.Exp(-d2 / (2 * h * h))
	case Uniform:
		if d2 > h*h {
			return 0
		}
		return 1
	case Triangular:
		if d2 > h*h {
			return 0
		}
		return 1 - math.Sqrt(d2)/h
	case Epanechnikov:
		if d2 > h*h {
			return 0
		}
		return 1 - d2/(h*h)
	}
	return 0
}

// Params controls the procedure. The zero value is completed by
// WithDefaults, matching the paper's choices where it states them (fixed
// bandwidth 50; Gaussian shape function).
type Params struct {
	// Bandwidth estimates the variability of the data (the paper fixes 50).
	Bandwidth float64
	// Kernel is the shape function (paper: Gaussian).
	Kernel Kernel
	// DensityThreshold is the minimum kernel-weighted density at which a
	// mean-shift search begins; low-density areas are poor mode candidates.
	DensityThreshold float64
	// MaxIters bounds the shift loop (the paper's "maximum iteration
	// threshold").
	MaxIters int
	// Eps is the movement below which the shift vector counts as zero.
	Eps float64
	// SeedStep is the grid spacing of the density scan that chooses
	// starting points; defaults to Bandwidth.
	SeedStep float64
	// MergeRadius collapses converged centroids closer than this into one
	// peak; defaults to Bandwidth/2.
	MergeRadius float64
}

// WithDefaults fills unset fields with the paper's values.
func (p Params) WithDefaults() Params {
	if p.Bandwidth <= 0 {
		p.Bandwidth = 50
	}
	if p.DensityThreshold <= 0 {
		p.DensityThreshold = 5
	}
	if p.MaxIters <= 0 {
		p.MaxIters = 100
	}
	if p.Eps <= 0 {
		p.Eps = 1e-2
	}
	if p.SeedStep <= 0 {
		p.SeedStep = p.Bandwidth
	}
	if p.MergeRadius <= 0 {
		p.MergeRadius = p.Bandwidth / 2
	}
	return p
}

// Density returns the kernel-weighted density of data around c. weights
// scales each point's contribution (nil means every point weighs 1); the
// distributed algorithm uses weights to represent condensed clusters.
func Density(data []Point, weights []float64, c Point, p Params) float64 {
	p = p.WithDefaults()
	var sum float64
	for i, q := range data {
		w := p.Kernel.weight(c.Dist2(q), p.Bandwidth)
		if weights != nil {
			w *= weights[i]
		}
		sum += w
	}
	return sum
}

// Shift runs the mean-shift procedure from start: on each iteration the
// kernel-weighted mean of the window around the current centroid becomes
// the new centroid, until the shift vector is (effectively) zero or
// MaxIters is reached. weights (nil = all 1) scales each point's mass.
// It returns the converged mode and the number of iterations used.
func Shift(data []Point, weights []float64, start Point, p Params) (Point, int) {
	p = p.WithDefaults()
	c := start
	for it := 1; it <= p.MaxIters; it++ {
		var wsum, wx, wy float64
		for i, q := range data {
			w := p.Kernel.weight(c.Dist2(q), p.Bandwidth)
			if w == 0 {
				continue
			}
			if weights != nil {
				w *= weights[i]
			}
			wsum += w
			wx += w * q.X
			wy += w * q.Y
		}
		if wsum == 0 {
			return c, it // empty window: nowhere to go
		}
		next := Point{wx / wsum, wy / wsum}
		if c.Dist(next) < p.Eps {
			return next, it
		}
		c = next
	}
	return c, p.MaxIters
}

// FindPeaks is the single-node algorithm exactly as §3.1 describes: scan
// the data with a fixed window computing densities, start a mean-shift
// search wherever the density exceeds the threshold, and keep each local
// maximum the searches converge to as a peak.
func FindPeaks(data []Point, p Params) []Point {
	return FindPeaksSeeded(data, nil, nil, p)
}

// FindPeaksSeeded runs FindPeaks over weighted data (weights nil = all 1)
// with additional explicit starting points — the peaks reported by child
// nodes, in the distributed algorithm. Seeds are searched first; the
// density scan then covers regions the seeds miss.
func FindPeaksSeeded(data []Point, weights []float64, seeds []Point, p Params) []Point {
	p = p.WithDefaults()
	if len(data) == 0 {
		return nil
	}
	var converged []Point
	for _, s := range seeds {
		m, _ := Shift(data, weights, s, p)
		converged = append(converged, m)
	}
	// Grid scan for dense regions, as in the single-node version.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, q := range data {
		minX = math.Min(minX, q.X)
		maxX = math.Max(maxX, q.X)
		minY = math.Min(minY, q.Y)
		maxY = math.Max(maxY, q.Y)
	}
	for x := minX; x <= maxX+p.SeedStep/2; x += p.SeedStep {
		for y := minY; y <= maxY+p.SeedStep/2; y += p.SeedStep {
			c := Point{x, y}
			// Skip cells already explained by a found peak.
			if nearAny(c, converged, p.MergeRadius) {
				continue
			}
			if Density(data, weights, c, p) < p.DensityThreshold {
				continue
			}
			m, _ := Shift(data, weights, c, p)
			converged = append(converged, m)
		}
	}
	return MergePeaks(converged, p.MergeRadius)
}

// Condense produces the "resulting data set" a node forwards upstream
// (§3.1): every point collapses onto the nearest found peak within the
// bandwidth, accumulating weight; points no peak explains survive
// unchanged. The condensed set preserves the mass distribution that
// matters for further mode seeking while shrinking the payload from
// sample count to cluster count — the data reduction property (output
// smaller than input, same form as input) that makes the algorithm a
// TBON-suitable reduction.
func Condense(data []Point, weights []float64, peaks []Point, p Params) ([]Point, []float64) {
	p = p.WithDefaults()
	if len(data) == 0 {
		return nil, nil
	}
	outPts := append([]Point(nil), peaks...)
	outW := make([]float64, len(peaks))
	for i, q := range data {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		best := -1
		bestD2 := p.Bandwidth * p.Bandwidth
		for j, pk := range peaks {
			if d2 := q.Dist2(pk); d2 <= bestD2 {
				best, bestD2 = j, d2
			}
		}
		if best >= 0 {
			outW[best] += w
		} else {
			outPts = append(outPts, q)
			outW = append(outW, w)
		}
	}
	// Drop peaks that attracted no mass (can happen when a stale seed
	// converged somewhere data no longer supports).
	pts := outPts[:0]
	ws := outW[:0]
	for i := range outPts {
		if outW[i] > 0 {
			pts = append(pts, outPts[i])
			ws = append(ws, outW[i])
		}
	}
	return pts, ws
}

func nearAny(c Point, ps []Point, r float64) bool {
	for _, q := range ps {
		if c.Dist2(q) <= r*r {
			return true
		}
	}
	return false
}

// MergePeaks collapses peaks within radius of each other into their
// centroid, returning peaks sorted by (X, Y) for determinism.
func MergePeaks(peaks []Point, radius float64) []Point {
	var out []Point
	counts := make([]int, 0, len(peaks))
	for _, pk := range peaks {
		merged := false
		for i := range out {
			if out[i].Dist2(pk) <= radius*radius {
				// Running centroid of merged members.
				n := float64(counts[i])
				out[i] = Point{(out[i].X*n + pk.X) / (n + 1), (out[i].Y*n + pk.Y) / (n + 1)}
				counts[i]++
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, pk)
			counts = append(counts, 1)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}
