package meanshift

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

// matchPeaks asserts that got contains exactly one peak near each want
// center, within tol.
func matchPeaks(t *testing.T, got, want []Point, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("found %d peaks %v, want %d near %v", len(got), got, len(want), want)
	}
	used := make([]bool, len(got))
	for _, w := range want {
		found := false
		for i, g := range got {
			if !used[i] && g.Dist(w) <= tol {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no peak near %v (got %v)", w, got)
		}
	}
}

func TestShiftConvergesToSingleMode(t *testing.T) {
	centers := []Point{{200, 200}}
	data := Generate(GenParams{Centers: centers, Spread: 20, PointsPerCluster: 400, Seed: 1})
	p := Params{Bandwidth: 50}.WithDefaults()
	mode, iters := Shift(data, nil, Point{150, 260}, p)
	if mode.Dist(centers[0]) > 10 {
		t.Errorf("mode = %v, want near %v", mode, centers[0])
	}
	if iters <= 0 || iters > p.MaxIters {
		t.Errorf("iters = %d", iters)
	}
}

func TestShiftEmptyWindow(t *testing.T) {
	data := []Point{{0, 0}}
	p := Params{Bandwidth: 1}.WithDefaults()
	// Start far outside any window: no weight, shift stays put.
	mode, _ := Shift(data, nil, Point{1000, 1000}, p)
	if mode != (Point{1000, 1000}) {
		t.Errorf("empty-window shift moved to %v", mode)
	}
}

func TestFindPeaksTwoClusters(t *testing.T) {
	centers := []Point{{150, 150}, {420, 430}}
	data := Generate(GenParams{Centers: centers, Spread: 25, PointsPerCluster: 300, Seed: 7})
	peaks := FindPeaks(data, Params{Bandwidth: 50})
	matchPeaks(t, peaks, centers, 15)
}

func TestFindPeaksFourClusters(t *testing.T) {
	centers := DefaultCenters(4, 600)
	data := Generate(GenParams{Centers: centers, Spread: 20, PointsPerCluster: 250, Seed: 3})
	peaks := FindPeaks(data, Params{Bandwidth: 50})
	matchPeaks(t, peaks, centers, 15)
}

func TestFindPeaksEmptyAndTiny(t *testing.T) {
	if got := FindPeaks(nil, Params{}); got != nil {
		t.Errorf("peaks of empty data = %v", got)
	}
	// A tight blob of identical points has one peak at the blob.
	blob := make([]Point, 50)
	for i := range blob {
		blob[i] = Point{100, 100}
	}
	peaks := FindPeaks(blob, Params{Bandwidth: 50})
	if len(peaks) != 1 || peaks[0].Dist(Point{100, 100}) > 1 {
		t.Errorf("blob peaks = %v", peaks)
	}
}

func TestAllKernelsFindTheMode(t *testing.T) {
	centers := []Point{{250, 250}}
	data := Generate(GenParams{Centers: centers, Spread: 20, PointsPerCluster: 400, Seed: 11})
	for _, k := range []Kernel{Gaussian, Uniform, Triangular, Epanechnikov} {
		t.Run(k.String(), func(t *testing.T) {
			peaks := FindPeaks(data, Params{Bandwidth: 50, Kernel: k})
			if len(peaks) == 0 {
				t.Fatal("no peaks")
			}
			// The dominant peak must be near the center.
			best := peaks[0]
			for _, pk := range peaks {
				if pk.Dist(centers[0]) < best.Dist(centers[0]) {
					best = pk
				}
			}
			if best.Dist(centers[0]) > 15 {
				t.Errorf("kernel %v: peak %v not near %v", k, best, centers[0])
			}
		})
	}
}

func TestMergePeaks(t *testing.T) {
	peaks := []Point{{0, 0}, {1, 1}, {100, 100}, {0.5, 0.5}}
	merged := MergePeaks(peaks, 5)
	if len(merged) != 2 {
		t.Fatalf("merged = %v, want 2 peaks", merged)
	}
	if merged[0].Dist(Point{0.5, 0.5}) > 1 {
		t.Errorf("merged centroid = %v", merged[0])
	}
	if got := MergePeaks(nil, 5); got != nil {
		t.Errorf("MergePeaks(nil) = %v", got)
	}
}

func TestDensityMonotoneInData(t *testing.T) {
	p := Params{Bandwidth: 50}.WithDefaults()
	d1 := Density([]Point{{0, 0}}, nil, Point{0, 0}, p)
	d2 := Density([]Point{{0, 0}, {1, 1}}, nil, Point{0, 0}, p)
	if d2 <= d1 {
		t.Errorf("density did not increase: %g then %g", d1, d2)
	}
}

func TestPointsFloatsRoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		ps := FloatsToPoints(xs)
		back := PointsToFloats(ps)
		n := len(xs) - len(xs)%2
		if len(back) != n {
			return false
		}
		for i := 0; i < n; i++ {
			same := back[i] == xs[i] || (math.IsNaN(back[i]) && math.IsNaN(xs[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	data := []Point{{1, 2}, {3, 4}}
	peaks := []Point{{5, 6}}
	p, err := MakePacket(100, 1, 2, data, nil, peaks)
	if err != nil {
		t.Fatal(err)
	}
	d, w, pk, err := ParsePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || len(w) != 2 || w[0] != 1 || len(pk) != 1 || d[1] != (Point{3, 4}) || pk[0] != (Point{5, 6}) {
		t.Errorf("round trip: %v %v", d, pk)
	}
	// Wrong format rejected.
	bad := packet.MustNew(100, 1, 2, "%d", int64(1))
	if _, _, _, err := ParsePacket(bad); err == nil {
		t.Error("ParsePacket of wrong format: want error")
	}
}

// TestDistributedMatchesSingleNode is the case study's correctness check:
// the TBON-distributed mean-shift must find the same peaks as the
// single-node version run over the union of all leaf data.
func TestDistributedMatchesSingleNode(t *testing.T) {
	centers := []Point{{150, 150}, {450, 450}}
	params := Params{Bandwidth: 50}
	const perLeaf = 150

	tree, err := topology.ParseSpec("kary:2^2")
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()

	// Build every leaf's data set (deterministic per rank).
	leafData := map[core.Rank][]Point{}
	var union []Point
	for _, l := range leaves {
		d := Generate(GenParams{
			Centers: centers, Spread: 20, PointsPerCluster: perLeaf,
			CenterJitter: 5, Seed: int64(l),
		})
		leafData[l] = d
		union = append(union, d...)
	}
	want := FindPeaks(union, params)

	reg := filter.NewRegistry()
	Register(reg, params)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				pts, ws, peaks := LeafResult(leafData[be.Rank()], params)
				out, err := MakePacket(p.Tag, p.StreamID, be.Rank(), pts, ws, peaks)
				if err != nil {
					return err
				}
				if err := be.SendPacket(out); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()

	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}
	res, err := st.RecvTimeout(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gotData, gotW, gotPeaks, err := ParsePacket(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotData) >= len(union) {
		t.Errorf("condensed set (%d points) not smaller than raw union (%d)", len(gotData), len(union))
	}
	if tw := TotalWeight(gotW); math.Abs(tw-float64(len(union))) > 1e-6 {
		t.Errorf("condensed mass = %g, want %d (conservation)", tw, len(union))
	}
	if len(gotPeaks) != len(want) {
		t.Fatalf("distributed found %d peaks %v, single-node %d %v",
			len(gotPeaks), gotPeaks, len(want), want)
	}
	for i := range want {
		ok := false
		for _, g := range gotPeaks {
			if g.Dist(want[i]) <= 15 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("no distributed peak near single-node peak %v (got %v)", want[i], gotPeaks)
		}
	}
	// Both must be near the true (unjittered) centers.
	matchPeaks(t, gotPeaks, centers, 20)
}

func TestGenerateDeterministic(t *testing.T) {
	gp := GenParams{Centers: []Point{{0, 0}}, Spread: 10, PointsPerCluster: 50, Seed: 42}
	a := Generate(gp)
	b := Generate(gp)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation is not deterministic for equal seeds")
		}
	}
	gp.Seed = 43
	c := Generate(gp)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestDefaultCenters(t *testing.T) {
	cs := DefaultCenters(4, 600)
	if len(cs) != 4 {
		t.Fatalf("got %d centers", len(cs))
	}
	for i, a := range cs {
		if a.X <= 0 || a.X >= 600 || a.Y <= 0 || a.Y >= 600 {
			t.Errorf("center %d = %v outside field", i, a)
		}
		for _, b := range cs[i+1:] {
			if a.Dist(b) < 100 {
				t.Errorf("centers %v and %v too close", a, b)
			}
		}
	}
}

func BenchmarkShift1000(b *testing.B) {
	data := Generate(GenParams{
		Centers: []Point{{200, 200}}, Spread: 30, PointsPerCluster: 1000, Seed: 1})
	p := Params{Bandwidth: 50}.WithDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Shift(data, nil, Point{180, 220}, p)
	}
}

func BenchmarkFindPeaks2x500(b *testing.B) {
	data := Generate(GenParams{
		Centers: []Point{{150, 150}, {450, 450}}, Spread: 25, PointsPerCluster: 500, Seed: 1})
	p := Params{Bandwidth: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FindPeaks(data, p)
	}
}
