package meanshift

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/packet"
)

// PacketFormat is the payload layout of distributed mean-shift packets:
// the condensed data set as x,y pairs, the per-point weights, and the peak
// list as x,y pairs.
const PacketFormat = "%af %af %af"

// FilterName is the registry name of the distributed mean-shift filter.
const FilterName = "meanshift"

// MakePacket builds a mean-shift result packet. weights may be nil (all 1).
func MakePacket(tag int32, streamID uint32, src packet.Rank, data []Point, weights []float64, peaks []Point) (*packet.Packet, error) {
	if weights == nil {
		weights = make([]float64, len(data))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(data) {
		return nil, fmt.Errorf("meanshift: %d points but %d weights", len(data), len(weights))
	}
	return packet.New(tag, streamID, src, PacketFormat,
		PointsToFloats(data), weights, PointsToFloats(peaks))
}

// ParsePacket extracts the condensed data, weights and peaks from a
// mean-shift packet.
func ParsePacket(p *packet.Packet) (data []Point, weights []float64, peaks []Point, err error) {
	if p.Format != PacketFormat {
		return nil, nil, nil, fmt.Errorf("meanshift: unexpected packet format %q", p.Format)
	}
	dv, err := p.FloatArray(0)
	if err != nil {
		return nil, nil, nil, err
	}
	wv, err := p.FloatArray(1)
	if err != nil {
		return nil, nil, nil, err
	}
	pv, err := p.FloatArray(2)
	if err != nil {
		return nil, nil, nil, err
	}
	data = FloatsToPoints(dv)
	if len(wv) != len(data) {
		return nil, nil, nil, fmt.Errorf("meanshift: %d points but %d weights", len(data), len(wv))
	}
	return data, append([]float64(nil), wv...), FloatsToPoints(pv), nil
}

// TotalWeight sums a weight vector (the number of raw samples the
// condensed set represents).
func TotalWeight(ws []float64) float64 {
	var t float64
	for _, w := range ws {
		t += w
	}
	return t
}

// LeafResult runs the complete back-end computation of §3.1 on local raw
// data: find peaks, then condense the data set for upstream transmission.
func LeafResult(data []Point, p Params) (pts []Point, ws []float64, peaks []Point) {
	peaks = FindPeaks(data, p)
	pts, ws = Condense(data, nil, peaks, p)
	return pts, ws, peaks
}

// Filter is the TBON transformation implementing §3.1's distributed
// algorithm at internal nodes: merge the children's (condensed, weighted)
// data sets, run the mean-shift procedure over the merged set using the
// children's peaks as starting points, and forward the newly condensed
// data plus refined peaks.
type Filter struct {
	Params Params
	// OnCompute, if set, observes each execution's input size and is used
	// by the experiment harness to account per-node compute time.
	OnCompute func(points int)
}

// Transform merges child results and re-runs mean-shift.
func (f *Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	var data, seeds []Point
	var weights []float64
	for _, p := range in {
		d, w, pk, err := ParsePacket(p)
		if err != nil {
			return nil, err
		}
		data = append(data, d...)
		weights = append(weights, w...)
		seeds = append(seeds, pk...)
	}
	if f.OnCompute != nil {
		f.OnCompute(len(data))
	}
	peaks := FindPeaksSeeded(data, weights, seeds, f.Params)
	pts, ws := Condense(data, weights, peaks, f.Params)
	out, err := MakePacket(in[0].Tag, in[0].StreamID, packet.UnknownRank, pts, ws, peaks)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the mean-shift filter under FilterName, capturing the
// given parameters for every instantiation.
func Register(reg *filter.Registry, p Params) {
	p = p.WithDefaults()
	reg.RegisterTransformation(FilterName, func() filter.Transformation {
		return &Filter{Params: p}
	})
}
