package meanshift

import "math/rand"

// GenParams describes the synthetic workload of §3.1: "The data about each
// cluster center is generated using a random Gaussian distribution. The
// cluster centers are slightly shifted in each leaf node as they might be
// in feature tracking in video processing or when processing images with
// non-uniform illumination."
type GenParams struct {
	// Centers are the true cluster modes.
	Centers []Point
	// Spread is the per-cluster Gaussian standard deviation.
	Spread float64
	// PointsPerCluster is the sample count per center.
	PointsPerCluster int
	// CenterJitter is the magnitude of the per-leaf random shift applied
	// to every center (the "slightly shifted" clause).
	CenterJitter float64
	// Seed makes generation deterministic; combine with the leaf rank so
	// every leaf sees different samples and differently jittered centers.
	Seed int64
}

// DefaultCenters lays k cluster centers on a coarse grid inside a
// field x field square, spaced far apart relative to the paper's
// bandwidth of 50.
func DefaultCenters(k int, field float64) []Point {
	cols := 1
	for cols*cols < k {
		cols++
	}
	var out []Point
	step := field / float64(cols+1)
	for i := 0; i < k; i++ {
		r, c := i/cols, i%cols
		out = append(out, Point{step * float64(c+1), step * float64(r+1)})
	}
	return out
}

// Generate produces one leaf's synthetic data set.
func Generate(gp GenParams) []Point {
	rng := rand.New(rand.NewSource(gp.Seed))
	spread := gp.Spread
	if spread <= 0 {
		spread = 20
	}
	n := gp.PointsPerCluster
	if n <= 0 {
		n = 100
	}
	out := make([]Point, 0, n*len(gp.Centers))
	for _, c := range gp.Centers {
		// Per-leaf jitter of this center.
		jc := Point{
			c.X + gp.CenterJitter*(2*rng.Float64()-1),
			c.Y + gp.CenterJitter*(2*rng.Float64()-1),
		}
		for i := 0; i < n; i++ {
			out = append(out, Point{
				jc.X + rng.NormFloat64()*spread,
				jc.Y + rng.NormFloat64()*spread,
			})
		}
	}
	return out
}

// PointsToFloats flattens points into the x0,y0,x1,y1,... layout used by
// the TBON packet payloads (%af).
func PointsToFloats(ps []Point) []float64 {
	out := make([]float64, 0, 2*len(ps))
	for _, p := range ps {
		out = append(out, p.X, p.Y)
	}
	return out
}

// FloatsToPoints is the inverse of PointsToFloats. A trailing odd value is
// ignored.
func FloatsToPoints(xs []float64) []Point {
	out := make([]Point, 0, len(xs)/2)
	for i := 0; i+1 < len(xs); i += 2 {
		out = append(out, Point{xs[i], xs[i+1]})
	}
	return out
}
