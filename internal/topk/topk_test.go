package topk

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestListBasics(t *testing.T) {
	if _, err := NewList(0); err == nil {
		t.Error("k=0: want error")
	}
	l, err := NewList(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{5, 1, 9, 7, 3} {
		l.Add(Entry{Key: fmt.Sprintf("f%d", i), Value: v})
	}
	es := l.Entries()
	if len(es) != 3 || es[0].Value != 9 || es[1].Value != 7 || es[2].Value != 5 {
		t.Errorf("top-3 = %v", es)
	}
}

func TestDeterministicTies(t *testing.T) {
	l, _ := NewList(2)
	l.Add(Entry{"b", 1})
	l.Add(Entry{"a", 1})
	l.Add(Entry{"c", 1})
	es := l.Entries()
	if es[0].Key != "a" || es[1].Key != "b" {
		t.Errorf("tie order = %v, want a then b", es)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	l, _ := NewList(4)
	l.Add(Entry{"x", 2.5})
	l.Add(Entry{"y", -1})
	p, err := l.ToPacket(100, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 4 || len(g.Entries()) != 2 || g.Entries()[0] != (Entry{"x", 2.5}) {
		t.Errorf("round trip: k=%d %v", g.K(), g.Entries())
	}
	if _, err := FromPacket(packet.MustNew(100, 1, 0, "%d", int64(1))); err == nil {
		t.Error("wrong format: want error")
	}
	bad := packet.MustNew(100, 1, 0, PacketFormat, int64(0), []string{}, []float64{})
	if _, err := FromPacket(bad); err == nil {
		t.Error("k=0 payload: want error")
	}
	ragged := packet.MustNew(100, 1, 0, PacketFormat, int64(2), []string{"a"}, []float64{1, 2})
	if _, err := FromPacket(ragged); err == nil {
		t.Error("ragged payload: want error")
	}
}

func TestFilterMismatchedK(t *testing.T) {
	a, _ := NewList(2)
	b, _ := NewList(3)
	pa, _ := a.ToPacket(100, 1, 0)
	pb, _ := b.ToPacket(100, 1, 0)
	if _, err := (Filter{}).Transform([]*packet.Packet{pa, pb}); err == nil {
		t.Error("mismatched k: want error")
	}
	if o, err := (Filter{}).Transform(nil); err != nil || o != nil {
		t.Errorf("empty batch: %v %v", o, err)
	}
}

// Property: merging per-chunk top-k lists yields exactly the flat top-k,
// for any partition of the observations.
func TestQuickMergeExactness(t *testing.T) {
	f := func(vals []float64, kRaw, splitRaw uint8) bool {
		k := int(kRaw%8) + 1
		if len(vals) == 0 {
			return true
		}
		entries := make([]Entry, len(vals))
		for i, v := range vals {
			if v != v { // NaN breaks ordering; skip
				return true
			}
			entries[i] = Entry{Key: fmt.Sprintf("k%d", i), Value: v}
		}
		// Flat reference.
		flat, _ := NewList(k)
		for _, e := range entries {
			flat.Add(e)
		}
		// Two-chunk tree.
		split := int(splitRaw) % (len(entries) + 1)
		l1, _ := NewList(k)
		for _, e := range entries[:split] {
			l1.Add(e)
		}
		l2, _ := NewList(k)
		for _, e := range entries[split:] {
			l2.Add(e)
		}
		l1.Merge(l2)
		a, b := flat.Entries(), l1.Entries()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOverlayHottestFunctions runs the profiling scenario: 64 daemons
// report per-function CPU times; the tree reduces to the global top 5.
func TestOverlayHottestFunctions(t *testing.T) {
	tree, err := topology.ParseSpec("balanced:64,8")
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	funcs := []string{"main", "compute", "mpi_send", "mpi_recv", "io_write"}

	// Deterministic per-daemon profile; remember the global truth.
	profile := func(rank core.Rank) map[string]float64 {
		rng := rand.New(rand.NewSource(int64(rank)))
		out := map[string]float64{}
		for _, f := range funcs {
			out[fmt.Sprintf("%s@host%d", f, rank)] = rng.Float64() * 100
		}
		return out
	}
	var all []Entry
	for _, l := range tree.Leaves() {
		for key, v := range profile(l) {
			all = append(all, Entry{key, v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Value != all[j].Value {
			return all[i].Value > all[j].Value
		}
		return all[i].Key < all[j].Key
	})
	want := all[:k]

	reg := filter.NewRegistry()
	Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				l, err := NewList(k)
				if err != nil {
					return err
				}
				for key, v := range profile(be.Rank()) {
					l.Add(Entry{key, v})
				}
				out, err := l.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				if err := be.SendPacket(out); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries()) != k {
		t.Fatalf("got %d entries", len(got.Entries()))
	}
	for i, e := range got.Entries() {
		if e != want[i] {
			t.Errorf("rank %d: got %v, want %v", i, e, want[i])
		}
	}
	// The packet reaching the front-end carries k entries, not 64*5.
	if p.EncodedSize() > 512 {
		t.Errorf("front-end top-k packet is %d bytes; should be k-sized", p.EncodedSize())
	}
}

func BenchmarkMerge64Lists(b *testing.B) {
	lists := make([]*packet.Packet, 64)
	for i := range lists {
		l, _ := NewList(10)
		rng := rand.New(rand.NewSource(int64(i)))
		for j := 0; j < 32; j++ {
			l.Add(Entry{Key: fmt.Sprintf("f%d@%d", j, i), Value: rng.Float64()})
		}
		p, _ := l.ToPacket(100, 1, 0)
		lists[i] = p
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Filter{}).Transform(lists); err != nil {
			b.Fatal(err)
		}
	}
}
