// Package topk implements an exact top-k reduction over keyed
// observations: every back-end reports its (key, value) measurements —
// e.g. per-function CPU time from a profiling daemon — and each tree level
// keeps only the k largest, so the front-end receives the global top k
// with per-link traffic bounded by k regardless of fleet size. Exactness
// holds because max-selection is associative: the global top k is always
// contained in the union of per-subtree top k's.
package topk

import (
	"fmt"
	"sort"

	"repro/internal/filter"
	"repro/internal/packet"
)

// Entry is one keyed observation.
type Entry struct {
	Key   string
	Value float64
}

// List is a top-k accumulator. The zero value is unusable; construct with
// NewList.
type List struct {
	k       int
	entries []Entry
}

// NewList returns an accumulator keeping the k largest entries.
func NewList(k int) (*List, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	return &List{k: k}, nil
}

// K returns the list's capacity.
func (l *List) K() int { return l.k }

// Add offers one observation. Duplicate keys are kept separately — the
// caller is responsible for key uniqueness within one origin (distinct
// back-ends reporting the same key are distinct observations, as when two
// hosts both spend time in main).
func (l *List) Add(e Entry) {
	l.entries = append(l.entries, e)
	l.compact()
}

// Merge folds another list in.
func (l *List) Merge(o *List) {
	l.entries = append(l.entries, o.entries...)
	l.compact()
}

func (l *List) compact() {
	sort.SliceStable(l.entries, func(i, j int) bool {
		if l.entries[i].Value != l.entries[j].Value {
			return l.entries[i].Value > l.entries[j].Value
		}
		return l.entries[i].Key < l.entries[j].Key // deterministic ties
	})
	if len(l.entries) > l.k {
		l.entries = l.entries[:l.k]
	}
}

// Entries returns the kept entries, largest first (shared; do not modify).
func (l *List) Entries() []Entry { return l.entries }

// PacketFormat is the payload layout: k, keys, values.
const PacketFormat = "%d %as %af"

// FilterName is the registry name of the top-k merge filter.
const FilterName = "topk"

// ToPacket encodes the list.
func (l *List) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	keys := make([]string, len(l.entries))
	vals := make([]float64, len(l.entries))
	for i, e := range l.entries {
		keys[i] = e.Key
		vals[i] = e.Value
	}
	return packet.New(tag, streamID, src, PacketFormat, int64(l.k), keys, vals)
}

// FromPacket decodes a top-k packet.
func FromPacket(p *packet.Packet) (*List, error) {
	if p.Format != PacketFormat {
		return nil, fmt.Errorf("topk: unexpected packet format %q", p.Format)
	}
	k, err := p.Int(0)
	if err != nil {
		return nil, err
	}
	keys, err := p.StringArray(1)
	if err != nil {
		return nil, err
	}
	vals, err := p.FloatArray(2)
	if err != nil {
		return nil, err
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("topk: %d keys but %d values", len(keys), len(vals))
	}
	l, err := NewList(int(k))
	if err != nil {
		return nil, err
	}
	for i := range keys {
		l.Add(Entry{Key: keys[i], Value: vals[i]})
	}
	return l, nil
}

// Filter merges child top-k lists; all inputs must agree on k.
type Filter struct{}

// Transform merges the batch into one top-k packet.
func (Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	acc, err := FromPacket(in[0])
	if err != nil {
		return nil, err
	}
	for _, p := range in[1:] {
		l, err := FromPacket(p)
		if err != nil {
			return nil, err
		}
		if l.k != acc.k {
			return nil, fmt.Errorf("topk: mismatched k (%d vs %d)", l.k, acc.k)
		}
		acc.Merge(l)
	}
	out, err := acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the filter under FilterName.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterName, func() filter.Transformation { return Filter{} })
}
