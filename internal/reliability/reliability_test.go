package reliability

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/eqclass"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

// packetAlias keeps the eqclass feeding helpers readable.
type packetAlias = packet.Packet

// eqclassPacket wraps a class-set packet built by the test helpers.
type eqclassPacket struct{ p *packet.Packet }

func TestRecoverInternalNode(t *testing.T) {
	tree, err := topology.ParseSpec("kary:2^2") // 0; 1,2; 3,4,5,6
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Recover(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NewParent != 0 {
		t.Errorf("NewParent = %d, want 0", plan.NewParent)
	}
	if len(plan.Orphans) != 2 || plan.Orphans[0] != 3 || plan.Orphans[1] != 4 {
		t.Errorf("Orphans = %v", plan.Orphans)
	}
	if plan.Tree.Len() != 6 {
		t.Fatalf("recovered tree has %d nodes, want 6", plan.Tree.Len())
	}
	// Orphans 3,4 (old) are now children of the root.
	for _, old := range plan.Orphans {
		nr := plan.Remap[old]
		if nr == topology.NoRank {
			t.Fatalf("orphan %d erased", old)
		}
		if plan.Tree.Parent(nr) != 0 {
			t.Errorf("orphan %d (new %d) has parent %d, want 0", old, nr, plan.Tree.Parent(nr))
		}
	}
	// Leaf count is preserved: no data sources were lost.
	if got := len(plan.Tree.Leaves()); got != 4 {
		t.Errorf("recovered tree has %d leaves, want 4", got)
	}
	if plan.Remap[1] != topology.NoRank {
		t.Error("failed rank still mapped")
	}
}

func TestRecoverLeaf(t *testing.T) {
	tree, _ := topology.ParseSpec("kary:2^2")
	plan, err := Recover(tree, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Orphans) != 0 {
		t.Errorf("leaf failure has orphans: %v", plan.Orphans)
	}
	if got := len(plan.Tree.Leaves()); got != 3 {
		t.Errorf("leaves after leaf failure = %d, want 3", got)
	}
}

func TestRecoverErrors(t *testing.T) {
	tree, _ := topology.ParseSpec("kary:2^2")
	if _, err := Recover(tree, 0); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("front-end failure: %v", err)
	}
	if _, err := Recover(tree, 99); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("unknown rank: %v", err)
	}
}

func TestRecoverChain(t *testing.T) {
	// Two successive failures keep the tree valid and all leaves attached.
	tree, _ := topology.ParseSpec("kary:2^3") // 15 nodes
	p1, err := Recover(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fail another internal node of the recovered tree.
	var internal Rank = topology.NoRank
	for _, r := range p1.Tree.InternalNodes() {
		internal = r
		break
	}
	if internal == topology.NoRank {
		t.Fatal("no internal node to fail")
	}
	p2, err := Recover(p1.Tree, internal)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p2.Tree.Leaves()); got != 8 {
		t.Errorf("leaves after two failures = %d, want 8", got)
	}
}

func TestComposeStatesEqClass(t *testing.T) {
	// Build the lost parent's state two ways: directly (the state it had
	// before dying) and by composition of its children's states. They must
	// match exactly.
	mkPkt := func(key string, member int64) *eqclassPacket {
		s := eqclass.NewSet()
		s.Add(key, member)
		p, err := s.ToPacket(100, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return &eqclassPacket{p: p}
	}

	parent := eqclass.NewFilter()
	childA := eqclass.NewFilter()
	childB := eqclass.NewFilter()
	feed := func(f *eqclass.Filter, pkts ...*eqclassPacket) {
		t.Helper()
		for _, ep := range pkts {
			out, err := f.Transform([]*packetAlias{ep.p})
			if err != nil {
				t.Fatal(err)
			}
			// What the child forwards, the parent consumes.
			if out != nil {
				if _, err := parent.Transform(out); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed(childA, mkPkt("linux", 1), mkPkt("linux", 2))
	feed(childB, mkPkt("aix", 3), mkPkt("linux", 1)) // overlap across children

	wantState, err := parent.State()
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := childA.State()
	sb, _ := childB.State()
	got, err := ComposeStates(func() filter.StatefulTransformation {
		return eqclass.NewFilter()
	}, [][]byte{sa, sb})
	if err != nil {
		t.Fatal(err)
	}
	// Compare semantically: both states must suppress the same pairs.
	wantF := eqclass.NewFilter()
	gotF := eqclass.NewFilter()
	if err := wantF.SetState(wantState); err != nil {
		t.Fatal(err)
	}
	if err := gotF.SetState(got); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []*eqclassPacket{mkPkt("linux", 1), mkPkt("linux", 2), mkPkt("aix", 3)} {
		w, err1 := wantF.Transform([]*packetAlias{probe.p})
		g, err2 := gotF.Transform([]*packetAlias{probe.p})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if (w == nil) != (g == nil) {
			t.Errorf("recovered state disagrees with lost state on %v", probe.p)
		}
	}
	// A genuinely new pair passes both.
	novel := mkPkt("hpux", 9)
	if w, _ := wantF.Transform([]*packetAlias{novel.p}); w == nil {
		t.Error("lost state suppressed novel pair")
	}
	if g, _ := gotF.Transform([]*packetAlias{novel.p}); g == nil {
		t.Error("recovered state suppressed novel pair")
	}
}

func TestComposeStatesSkipsEmptyAndRejectsGarbage(t *testing.T) {
	ctor := func() filter.StatefulTransformation { return eqclass.NewFilter() }
	if _, err := ComposeStates(ctor, [][]byte{nil, {}}); err != nil {
		t.Errorf("empty states: %v", err)
	}
	if _, err := ComposeStates(ctor, [][]byte{{0xde, 0xad}}); err == nil {
		t.Error("garbage state: want error")
	}
}

type nonMerger struct{ filter.Identity }

func (nonMerger) State() ([]byte, error) { return []byte{1}, nil }
func (nonMerger) SetState([]byte) error  { return nil }

func TestComposeStatesRequiresMerger(t *testing.T) {
	ctor := func() filter.StatefulTransformation { return nonMerger{} }
	if _, err := ComposeStates(ctor, [][]byte{{1}}); err == nil {
		t.Error("non-Merger filter: want error")
	}
}

// TestSemanticEquivalenceAfterRecovery is the end-to-end check: the same
// workload produces the same front-end answer on the original overlay and
// on the recovered overlay (failed node removed, orphans adopted). The
// reduction is a sum, whose per-leaf contributions are disjoint, so the
// answer must be identical.
func TestSemanticEquivalenceAfterRecovery(t *testing.T) {
	run := func(tree *topology.Tree) float64 {
		t.Helper()
		nw, err := core.NewNetwork(core.Config{
			Topology: tree,
			OnBackEnd: func(be *core.BackEnd) error {
				for {
					p, err := be.Recv()
					if err != nil {
						return nil
					}
					// Contribution depends on identity, not rank, so it is
					// stable across renumbering: use the leaf's position
					// among leaves.
					leaves := tree.Leaves()
					var idx int
					for i, l := range leaves {
						if l == be.Rank() {
							idx = i
							break
						}
					}
					if err := be.Send(p.StreamID, p.Tag, "%f", float64(1000+idx)); err != nil {
						return nil
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Shutdown()
		st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Multicast(100, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Float(0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	tree, _ := topology.ParseSpec("kary:3^2")
	want := run(tree)
	plan, err := Recover(tree, 2) // lose one mid-level comm process
	if err != nil {
		t.Fatal(err)
	}
	got := run(plan.Tree)
	if got != want {
		t.Errorf("recovered overlay computed %g, original %g", got, want)
	}
}

// Property: recovery never loses a leaf and always produces a valid tree,
// for any internal-node failure in any random tree.
func TestQuickRecoveryPreservesLeaves(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		sz := int(szRaw%60) + 5
		parents := make([]Rank, sz)
		parents[0] = topology.NoRank
		for i := 1; i < sz; i++ {
			m := (int64(i) + seed) % int64(i) // parent < i
			if m < 0 {
				m += int64(i)
			}
			parents[i] = Rank(m)
		}
		tree, err := topology.FromParents(parents)
		if err != nil {
			return false
		}
		internal := tree.InternalNodes()
		if len(internal) == 0 {
			return true
		}
		vi := int(seed % int64(len(internal)))
		if vi < 0 {
			vi += len(internal)
		}
		victim := internal[vi]
		plan, err := Recover(tree, victim)
		if err != nil {
			return false
		}
		return len(plan.Tree.Leaves()) == len(tree.Leaves())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
