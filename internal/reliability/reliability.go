// Package reliability implements the recovery model of the paper's
// reference [2] (Arnold & Miller, "Zero-cost reliability for tree-based
// overlay networks"): when a communication process fails, the overlay
// recovers *without* dedicated checkpointing by exploiting the redundancy
// inherent in the tree —
//
//  1. Topology: the failed process's children are adopted by their
//     grandparent, reconnecting the tree with one reconfiguration step.
//  2. Filter state: for reductions whose state is composable (associative
//     merges over disjoint leaf sets — equivalence classes, sums,
//     histograms, folded graphs), the lost node's filter state is exactly
//     the composition of its children's filter states, which survive.
//
// The package provides the reconfiguration planner, the state composition
// operator over filter.StatefulTransformation snapshots, and a composed
// recovery helper used by the tests to show end-to-end semantic
// equivalence between a never-failed overlay and a failed-and-recovered
// one.
package reliability

import (
	"errors"
	"fmt"

	"repro/internal/filter"
	"repro/internal/topology"
)

// Rank aliases the overlay rank type.
type Rank = topology.Rank

// Plan describes the reconfiguration that recovers from one failure.
type Plan struct {
	// Failed is the lost communication process (old numbering).
	Failed Rank
	// NewParent is the rank (old numbering) that adopts the orphans:
	// the failed node's parent.
	NewParent Rank
	// Orphans are the failed node's children (old numbering), in order.
	Orphans []Rank
	// Tree is the recovered topology with ranks compacted.
	Tree *topology.Tree
	// Remap maps old ranks to new ranks; the failed rank maps to
	// topology.NoRank.
	Remap map[Rank]Rank
}

// ErrUnrecoverable reports a failure the adoption rule cannot repair.
var ErrUnrecoverable = errors.New("reliability: unrecoverable failure")

// Recover plans the reconfiguration for the failure of the given node.
// The front-end (rank 0) is a single point of control and cannot be
// recovered by adoption; back-end failures simply remove the leaf.
func Recover(tree *topology.Tree, failed Rank) (*Plan, error) {
	n := tree.Node(failed)
	if n == nil {
		return nil, fmt.Errorf("%w: no such rank %d", ErrUnrecoverable, failed)
	}
	if failed == 0 {
		return nil, fmt.Errorf("%w: the front-end cannot fail over", ErrUnrecoverable)
	}
	parent := tree.Parent(failed)
	orphans := append([]Rank(nil), tree.Children(failed)...)

	// Build the recovered parent vector in old numbering, skip the dead
	// rank, then compact.
	oldLen := tree.Len()
	parents := make([]Rank, 0, oldLen-1)
	remap := make(map[Rank]Rank, oldLen)
	// First pass: assign new ranks.
	next := Rank(0)
	for r := Rank(0); int(r) < oldLen; r++ {
		if r == failed {
			remap[r] = topology.NoRank
			continue
		}
		remap[r] = next
		next++
	}
	// Second pass: rewritten parents.
	for r := Rank(0); int(r) < oldLen; r++ {
		if r == failed {
			continue
		}
		p := tree.Parent(r)
		if p == failed {
			p = parent // adoption by the grandparent
		}
		if p == topology.NoRank {
			parents = append(parents, topology.NoRank)
		} else {
			parents = append(parents, remap[p])
		}
	}
	newTree, err := topology.FromParents(parents)
	if err != nil {
		return nil, fmt.Errorf("reliability: recovered tree invalid: %w", err)
	}
	return &Plan{
		Failed:    failed,
		NewParent: parent,
		Orphans:   orphans,
		Tree:      newTree,
		Remap:     remap,
	}, nil
}

// ComposeStates rebuilds a lost node's filter state from its surviving
// children's snapshots: a fresh filter instance absorbs each child state in
// turn. The filter must be merge-composable: absorbing states S1..Sk must
// equal the state after processing the union of the inputs that produced
// them. The built-in eqclass filter has this property; so do sum-like and
// histogram reductions.
//
// ctor must produce fresh instances of the same filter type that emitted
// the snapshots.
func ComposeStates(ctor func() filter.StatefulTransformation, children [][]byte) ([]byte, error) {
	acc := ctor()
	for i, blob := range children {
		if len(blob) == 0 {
			continue
		}
		child := ctor()
		if err := child.SetState(blob); err != nil {
			return nil, fmt.Errorf("reliability: child state %d: %w", i, err)
		}
		if err := absorb(acc, child); err != nil {
			return nil, fmt.Errorf("reliability: composing state %d: %w", i, err)
		}
	}
	return acc.State()
}

// Merger is implemented by stateful filters that can absorb a sibling
// instance's state directly (the fast path for ComposeStates).
type Merger interface {
	MergeState(other filter.StatefulTransformation) error
}

// absorb merges child's state into acc, preferring the Merger fast path
// and falling back to re-absorbing the serialized state.
func absorb(acc, child filter.StatefulTransformation) error {
	if m, ok := acc.(Merger); ok {
		return m.MergeState(child)
	}
	// Generic path: acc ingests the child's serialized state by restoring
	// it into a scratch instance... without a Merger we can only splice at
	// the byte level, which requires the state format to be mergeable by
	// concatenation — not generally true. Refuse rather than corrupt.
	return errors.New("reliability: filter does not implement reliability.Merger")
}
