// Package timealign implements the time-aligned data aggregation the paper
// lists among the complex tree-based computations TBONs support (§1, §4):
// back-ends sample local metrics on their own (skew-corrected) clocks, and
// the tree must aggregate values that belong to the same global time bin —
// not merely values that happened to arrive together.
//
// Each packet carries a series of (bin, value) samples. The filter keeps a
// persistent per-bin accumulator; a bin is emitted once every child has
// contributed at least one sample past it (the watermark), so the
// aggregate for time T is complete when it leaves the node regardless of
// how asynchronously children deliver. This composes level by level: a
// parent's emitted bins are its subtree's fully aggregated time series.
package timealign

import (
	"fmt"
	"sort"

	"repro/internal/filter"
	"repro/internal/packet"
)

// PacketFormat is the payload layout: parallel arrays of bin indices and
// bin aggregates, plus the sender's watermark (the highest bin it has
// fully reported; everything <= watermark is final for its subtree).
const PacketFormat = "%ad %af %d"

// FilterName is the registry name of the time-aligned sum filter.
const FilterName = "timealign"

// Series is a time-binned metric series.
type Series struct {
	Bins      []int64
	Values    []float64
	Watermark int64
}

// ToPacket encodes the series.
func (s Series) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	if len(s.Bins) != len(s.Values) {
		return nil, fmt.Errorf("timealign: %d bins but %d values", len(s.Bins), len(s.Values))
	}
	return packet.New(tag, streamID, src, PacketFormat, s.Bins, s.Values, s.Watermark)
}

// FromPacket decodes a series packet.
func FromPacket(p *packet.Packet) (Series, error) {
	if p.Format != PacketFormat {
		return Series{}, fmt.Errorf("timealign: unexpected packet format %q", p.Format)
	}
	bins, err := p.IntArray(0)
	if err != nil {
		return Series{}, err
	}
	values, err := p.FloatArray(1)
	if err != nil {
		return Series{}, err
	}
	if len(bins) != len(values) {
		return Series{}, fmt.Errorf("timealign: %d bins but %d values", len(bins), len(values))
	}
	wm, err := p.Int(2)
	if err != nil {
		return Series{}, err
	}
	return Series{
		Bins:      append([]int64(nil), bins...),
		Values:    append([]float64(nil), values...),
		Watermark: wm,
	}, nil
}

// Filter aggregates per-bin sums across children with watermark-driven
// release. It is stateful (persistent filter state in the paper's terms):
// partially filled bins wait across executions until every child's
// watermark passes them.
type Filter struct {
	acc        map[int64]float64 // bin -> running sum
	watermarks map[packet.Rank]int64
	emitted    int64 // highest bin already emitted
	expected   int   // children feeding this node (0 = not told)
}

// NewFilter returns an empty aligner. Call SetNumChildren (the overlay
// does this automatically at stream creation) so the aligner knows how
// many contributors must report before a bin is complete; without it, the
// first contributor's watermark alone releases bins.
func NewFilter() *Filter {
	return &Filter{
		acc:        map[int64]float64{},
		watermarks: map[packet.Rank]int64{},
		emitted:    -1,
	}
}

// SetNumChildren tells the aligner how many distinct sources feed it; it
// implements filter.ChildAware.
func (f *Filter) SetNumChildren(n int) { f.expected = n }

// Transform folds the batch into the accumulator and emits every bin that
// is now complete (at or below the minimum watermark across children seen
// so far). Output packets carry this node's own watermark so parents can
// align in turn.
func (f *Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	for _, p := range in {
		s, err := FromPacket(p)
		if err != nil {
			return nil, err
		}
		for i, b := range s.Bins {
			f.acc[b] += s.Values[i]
		}
		// Track the per-child watermark by source rank; a child reporting
		// again only moves its watermark forward.
		if wm, ok := f.watermarks[p.SrcRank]; !ok || s.Watermark > wm {
			f.watermarks[p.SrcRank] = s.Watermark
		}
	}
	low := f.minWatermark()
	if low <= f.emitted {
		return nil, nil // nothing newly complete
	}
	var bins []int64
	for b := range f.acc {
		if b > f.emitted && b <= low {
			bins = append(bins, b)
		}
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	values := make([]float64, len(bins))
	for i, b := range bins {
		values[i] = f.acc[b]
		delete(f.acc, b)
	}
	f.emitted = low
	out, err := Series{Bins: bins, Values: values, Watermark: low}.
		ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

func (f *Filter) minWatermark() int64 {
	if len(f.watermarks) == 0 {
		return -1
	}
	// Until every expected contributor has reported, nothing is complete.
	if f.expected > 0 && len(f.watermarks) < f.expected {
		return -1
	}
	first := true
	var low int64
	for _, wm := range f.watermarks {
		if first || wm < low {
			low = wm
			first = false
		}
	}
	return low
}

// Register installs the aligner under FilterName.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterName, func() filter.Transformation { return NewFilter() })
}
