package timealign

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

func mkSeries(t *testing.T, src packet.Rank, wm int64, pairs ...int64) *packet.Packet {
	t.Helper()
	var bins []int64
	var vals []float64
	for i := 0; i+1 < len(pairs); i += 2 {
		bins = append(bins, pairs[i])
		vals = append(vals, float64(pairs[i+1]))
	}
	p, err := Series{Bins: bins, Values: vals, Watermark: wm}.ToPacket(100, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPacketRoundTrip(t *testing.T) {
	s := Series{Bins: []int64{1, 2}, Values: []float64{0.5, 1.5}, Watermark: 2}
	p, err := s.ToPacket(100, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Bins) != 2 || g.Bins[1] != 2 || g.Values[1] != 1.5 || g.Watermark != 2 {
		t.Errorf("round trip: %+v", g)
	}
	if _, err := FromPacket(packet.MustNew(100, 1, 0, "%d", int64(1))); err == nil {
		t.Error("wrong format: want error")
	}
	bad := packet.MustNew(100, 1, 0, PacketFormat, []int64{1, 2}, []float64{1}, int64(0))
	if _, err := FromPacket(bad); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := (Series{Bins: []int64{1}, Values: nil}).ToPacket(1, 1, 0); err == nil {
		t.Error("mismatched series: want error")
	}
}

func TestWatermarkHoldsBackIncompleteBins(t *testing.T) {
	f := NewFilter()
	f.SetNumChildren(2)
	// Child 1 reports bins 0-2 (watermark 2); child 2 has only reached
	// bin 0. Bins 1-2 must wait.
	out, err := f.Transform([]*packet.Packet{
		mkSeries(t, 1, 2, 0, 10, 1, 11, 2, 12),
		mkSeries(t, 2, 0, 0, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d packets", len(out))
	}
	s, err := FromPacket(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Bins) != 1 || s.Bins[0] != 0 || s.Values[0] != 30 {
		t.Fatalf("emitted %+v, want bin 0 = 30", s)
	}
	if s.Watermark != 0 {
		t.Errorf("watermark = %d, want 0", s.Watermark)
	}
	// Child 2 catches up through bin 2: bins 1 and 2 release, aligned.
	out, err = f.Transform([]*packet.Packet{
		mkSeries(t, 2, 2, 1, 21, 2, 22),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d packets after catch-up", len(out))
	}
	s, _ = FromPacket(out[0])
	if len(s.Bins) != 2 || s.Values[0] != 32 || s.Values[1] != 34 {
		t.Fatalf("aligned bins = %+v, want [32 34]", s)
	}
	if s.Watermark != 2 {
		t.Errorf("watermark = %d, want 2", s.Watermark)
	}
}

func TestNoDoubleEmission(t *testing.T) {
	f := NewFilter()
	f.SetNumChildren(1)
	out, err := f.Transform([]*packet.Packet{mkSeries(t, 1, 1, 0, 5, 1, 6)})
	if err != nil || len(out) != 1 {
		t.Fatalf("first: %v %v", out, err)
	}
	// The same watermark again releases nothing new.
	out, err = f.Transform([]*packet.Packet{mkSeries(t, 1, 1)})
	if err != nil || out != nil {
		t.Fatalf("re-report: %v %v", out, err)
	}
}

func TestEmptyBatch(t *testing.T) {
	f := NewFilter()
	if out, err := f.Transform(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
}

// TestOverlayAlignment runs the aligner on a real 2-level overlay where
// back-ends report the same logical time series at wildly different paces;
// the front-end must still see exactly one aggregate per bin, each equal to
// the per-bin sum over all back-ends.
func TestOverlayAlignment(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2") // 9 back-ends
	if err != nil {
		t.Fatal(err)
	}
	const bins = 6
	reg := filter.NewRegistry()
	Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			if _, err := be.Recv(); err != nil {
				return nil
			}
			// Slow ranks trickle one bin at a time; fast ranks batch.
			fast := be.Rank()%2 == 0
			if fast {
				var pairs []int64
				for b := int64(0); b < bins; b++ {
					pairs = append(pairs, b, int64(be.Rank()))
				}
				p := mkSeriesRaw(be.Rank(), bins-1, pairs...)
				if err := be.SendPacket(p); err != nil {
					return nil
				}
			} else {
				for b := int64(0); b < bins; b++ {
					p := mkSeriesRaw(be.Rank(), b, b, int64(be.Rank()))
					if err := be.SendPacket(p); err != nil {
						return nil
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "nullsync", // alignment replaces batching
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}

	var wantPerBin float64
	for _, l := range tree.Leaves() {
		wantPerBin += float64(l)
	}
	got := map[int64]float64{}
	for len(got) < bins {
		p, err := st.RecvTimeout(20 * time.Second)
		if err != nil {
			t.Fatalf("with %d of %d bins: %v", len(got), bins, err)
		}
		s, err := FromPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range s.Bins {
			if _, dup := got[b]; dup {
				t.Fatalf("bin %d emitted twice", b)
			}
			got[b] = s.Values[i]
		}
	}
	for b := int64(0); b < bins; b++ {
		if got[b] != wantPerBin {
			t.Errorf("bin %d = %g, want %g", b, got[b], wantPerBin)
		}
	}
}

func mkSeriesRaw(src packet.Rank, wm int64, pairs ...int64) *packet.Packet {
	var bins []int64
	var vals []float64
	for i := 0; i+1 < len(pairs); i += 2 {
		bins = append(bins, pairs[i])
		vals = append(vals, float64(pairs[i+1]))
	}
	p, err := Series{Bins: bins, Values: vals, Watermark: wm}.ToPacket(100, 1, src)
	if err != nil {
		panic(err)
	}
	return p
}

// Property: for ANY legal interleaving of per-child FIFO report streams
// (each child's bins ascending, as the overlay's FIFO links guarantee),
// every bin is emitted exactly once, in order, with the full cross-child
// sum.
func TestQuickAlignmentConservation(t *testing.T) {
	f := func(order []uint8, nChildRaw uint8) bool {
		nChildren := int(nChildRaw%3) + 2 // 2..4 children
		const bins = 5
		fl := NewFilter()
		fl.SetNumChildren(nChildren)
		next := make([]int64, nChildren) // next bin per child
		emitted := map[int64]float64{}
		lastEmitted := int64(-1)

		step := func(c int) bool {
			b := next[c]
			if b >= bins {
				return true
			}
			next[c] = b + 1
			p, err := Series{
				Bins:      []int64{b},
				Values:    []float64{float64(c + 1)},
				Watermark: b,
			}.ToPacket(100, 1, packet.Rank(c+1))
			if err != nil {
				return false
			}
			out, err := fl.Transform([]*packet.Packet{p})
			if err != nil {
				return false
			}
			for _, op := range out {
				s, err := FromPacket(op)
				if err != nil {
					return false
				}
				for k, bb := range s.Bins {
					if _, dup := emitted[bb]; dup || bb != lastEmitted+1 {
						return false // duplicate or out-of-order emission
					}
					lastEmitted = bb
					emitted[bb] = s.Values[k]
				}
			}
			return true
		}

		// Random legal interleaving driven by the generated order bytes,
		// then drain whatever remains deterministically.
		for _, o := range order {
			if !step(int(o) % nChildren) {
				return false
			}
		}
		for c := 0; c < nChildren; c++ {
			for next[c] < bins {
				if !step(c) {
					return false
				}
			}
		}

		var wantPerBin float64
		for c := 0; c < nChildren; c++ {
			wantPerBin += float64(c + 1)
		}
		if len(emitted) != bins {
			return false
		}
		for b := int64(0); b < bins; b++ {
			if emitted[b] != wantPerBin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
