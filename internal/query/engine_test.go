package query

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/sketch"
	"repro/internal/topology"
)

func testAttrs(rank core.Rank) AttrSource {
	return func() map[string]float64 {
		return map[string]float64{
			"load": float64(rank) / 10,
			"zone": float64(rank % 3),
		}
	}
}

// TestSessionEnginesShareOverlay: several tenant engines multiplex over
// one overlay, each computes the same results it would alone, and closing
// one engine leaves the others (and the overlay) fully live.
func TestSessionEnginesShareOverlay(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	mgr := session.NewManager(nw, session.Config{MaxSessions: 4})

	leaves := tree.Leaves()
	want := float64(len(leaves))
	check := func(e *Engine) {
		t.Helper()
		res, err := e.Run("select count(rank)", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0].Values[0]; got != want {
			t.Errorf("count = %g, want %g", got, want)
		}
	}

	engines := make([]*Engine, 3)
	for i := range engines {
		sess, err := mgr.Open([]string{"alice", "bob", "carol"}[i], session.WithWeight(i+1))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = NewSessionEngine(nw, sess)
	}
	var wg sync.WaitGroup
	for _, e := range engines {
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(e *Engine) { defer wg.Done(); check(e) }(e)
		}
	}
	wg.Wait()

	// Closing bob releases only bob: the overlay and the other engines
	// keep answering, and bob's next query fails fast (namespace gone).
	if err := engines[1].Close(); err != nil {
		t.Fatal(err)
	}
	check(engines[0])
	check(engines[2])
	if _, err := engines[1].Run("select count(rank)", time.Second); err == nil {
		t.Error("closed engine still answered")
	}
	if st := engines[0].Stats(); st == nil || st["streams_opened"] < 2 {
		t.Errorf("tenant stats = %v", st)
	}
	if engines[1].Stats() == nil {
		t.Error("closed tenant's stats gone (should survive close)")
	}
}

// TestLegacyEngineCloseLeavesOverlayUp: the classic NewEngine construction
// separates Close (engine) from Shutdown (overlay).
func TestLegacyEngineCloseLeavesOverlayUp(t *testing.T) {
	tree, err := topology.ParseSpec("kary:2^2")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must NOT have killed the overlay for other clients.
	res, err := eng.Run("select count(rank)", 10*time.Second)
	if err != nil {
		t.Fatalf("overlay dead after engine Close: %v", err)
	}
	if got := res.Rows[0].Values[0]; got != float64(len(tree.Leaves())) {
		t.Errorf("count = %g", got)
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run("select count(rank)", time.Second); err == nil {
		t.Error("overlay answered after Shutdown")
	}
}

// TestEngineSketchWorkloads runs each sketch kind end to end through the
// engine and checks the reduced result against the exact ground truth
// recomputed from the same deterministic generator.
func TestEngineSketchWorkloads(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	ranks := tree.Leaves()

	req := sketch.Request{Kind: sketch.KindCountMin, Param: 2048, N: 500, Seed: 7}
	exact := sketch.ExactFor(req, ranks)
	p, err := eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := sketch.CountMinFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range exact.Freq {
		if est := cm.Estimate(key); est < n {
			t.Fatalf("count-min underestimated %q: %d < %d", key, est, n)
		}
	}

	req = sketch.Request{Kind: sketch.KindHLL, Param: 12, N: 500, Seed: 7}
	exact = sketch.ExactFor(req, ranks)
	p, err = eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hll, err := sketch.HLLFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	est := float64(hll.Estimate())
	if rel := math.Abs(est-float64(exact.Distinct)) / float64(exact.Distinct); rel > 0.07 {
		t.Errorf("HLL estimate %g vs %d (rel %.3f)", est, exact.Distinct, rel)
	}

	req = sketch.Request{Kind: sketch.KindTDigest, N: 500, Seed: 7}
	exact = sketch.ExactFor(req, ranks)
	p, err = eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	td, err := sketch.TDigestFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := td.Quantile(0.5), exact.ExactQuantile(0.5); math.Abs(got-want) > 2 {
		t.Errorf("median %g vs exact %g", got, want)
	}

	if _, err := eng.Sketch(sketch.Request{Kind: "bogus"}, time.Second); err == nil {
		t.Error("bogus sketch kind accepted")
	}
}
