package query

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/recovery"
	"repro/internal/session"
	"repro/internal/sketch"
	"repro/internal/topology"
)

func testAttrs(rank core.Rank) AttrSource {
	return func() map[string]float64 {
		return map[string]float64{
			"load": float64(rank) / 10,
			"zone": float64(rank % 3),
		}
	}
}

// TestSessionEnginesShareOverlay: several tenant engines multiplex over
// one overlay, each computes the same results it would alone, and closing
// one engine leaves the others (and the overlay) fully live.
func TestSessionEnginesShareOverlay(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	mgr := session.NewManager(nw, session.Config{MaxSessions: 4})

	leaves := tree.Leaves()
	want := float64(len(leaves))
	check := func(e *Engine) {
		t.Helper()
		res, err := e.Run("select count(rank)", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0].Values[0]; got != want {
			t.Errorf("count = %g, want %g", got, want)
		}
	}

	engines := make([]*Engine, 3)
	for i := range engines {
		sess, err := mgr.Open([]string{"alice", "bob", "carol"}[i], session.WithWeight(i+1))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = NewSessionEngine(nw, sess)
	}
	var wg sync.WaitGroup
	for _, e := range engines {
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(e *Engine) { defer wg.Done(); check(e) }(e)
		}
	}
	wg.Wait()

	// Closing bob releases only bob: the overlay and the other engines
	// keep answering, and bob's next query fails fast (namespace gone).
	if err := engines[1].Close(); err != nil {
		t.Fatal(err)
	}
	check(engines[0])
	check(engines[2])
	if _, err := engines[1].Run("select count(rank)", time.Second); err == nil {
		t.Error("closed engine still answered")
	}
	if st := engines[0].Stats(); st == nil || st["streams_opened"] < 2 {
		t.Errorf("tenant stats = %v", st)
	}
	if engines[1].Stats() == nil {
		t.Error("closed tenant's stats gone (should survive close)")
	}
}

// TestLegacyEngineCloseLeavesOverlayUp: the classic NewEngine construction
// separates Close (engine) from Shutdown (overlay).
func TestLegacyEngineCloseLeavesOverlayUp(t *testing.T) {
	tree, err := topology.ParseSpec("kary:2^2")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must NOT have killed the overlay for other clients.
	res, err := eng.Run("select count(rank)", 10*time.Second)
	if err != nil {
		t.Fatalf("overlay dead after engine Close: %v", err)
	}
	if got := res.Rows[0].Values[0]; got != float64(len(tree.Leaves())) {
		t.Errorf("count = %g", got)
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run("select count(rank)", time.Second); err == nil {
		t.Error("overlay answered after Shutdown")
	}
}

// TestEngineSketchWorkloads runs each sketch kind end to end through the
// engine and checks the reduced result against the exact ground truth
// recomputed from the same deterministic generator.
func TestEngineSketchWorkloads(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^2")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tree, testAttrs)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	ranks := tree.Leaves()

	req := sketch.Request{Kind: sketch.KindCountMin, Param: 2048, N: 500, Seed: 7}
	exact := sketch.ExactFor(req, ranks)
	p, err := eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := sketch.CountMinFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range exact.Freq {
		if est := cm.Estimate(key); est < n {
			t.Fatalf("count-min underestimated %q: %d < %d", key, est, n)
		}
	}

	req = sketch.Request{Kind: sketch.KindHLL, Param: 12, N: 500, Seed: 7}
	exact = sketch.ExactFor(req, ranks)
	p, err = eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hll, err := sketch.HLLFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	est := float64(hll.Estimate())
	if rel := math.Abs(est-float64(exact.Distinct)) / float64(exact.Distinct); rel > 0.07 {
		t.Errorf("HLL estimate %g vs %d (rel %.3f)", est, exact.Distinct, rel)
	}

	req = sketch.Request{Kind: sketch.KindTDigest, N: 500, Seed: 7}
	exact = sketch.ExactFor(req, ranks)
	p, err = eng.Sketch(req, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	td, err := sketch.TDigestFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := td.Quantile(0.5), exact.ExactQuantile(0.5); math.Abs(got-want) > 2 {
		t.Errorf("median %g vs exact %g", got, want)
	}

	if _, err := eng.Sketch(sketch.Request{Kind: "bogus"}, time.Second); err == nil {
		t.Error("bogus sketch kind accepted")
	}
}

// decodeSketch decodes a merged sketch packet into its kind's state
// object, which reflect.DeepEqual can then compare cell-for-cell.
func decodeSketch(t *testing.T, k sketch.Kind, p *packet.Packet) any {
	t.Helper()
	var v any
	var err error
	switch k {
	case sketch.KindCountMin:
		v, err = sketch.CountMinFromPacket(p)
	case sketch.KindHLL:
		v, err = sketch.HLLFromPacket(p)
	case sketch.KindTDigest:
		v, err = sketch.TDigestFromPacket(p)
	default:
		t.Fatalf("unknown kind %q", k)
	}
	if err != nil {
		t.Fatalf("decode %s: %v", k, err)
	}
	return v
}

// sketchMatches compares one round's decoded sketch against the baseline
// and returns "" on a match. Count-min and HLL merges are shape-independent
// (entrywise add / register max), so any correct round is bit-identical.
// A t-digest's centroid grouping depends on the merge topology, which
// adoption legitimately changes; its lost/duplicate detector is the total
// weight — Count() moves by exactly the weight of a dropped or doubled
// contribution — plus tight quantile agreement.
func sketchMatches(k sketch.Kind, got, base any) string {
	if k != sketch.KindTDigest {
		if !reflect.DeepEqual(got, base) {
			return "state not bit-identical to the failure-free baseline"
		}
		return ""
	}
	g, b := got.(*sketch.TDigest), base.(*sketch.TDigest)
	if g.Count() != b.Count() {
		return fmt.Sprintf("total weight %g, baseline %g (a contribution was lost or duplicated)",
			g.Count(), b.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if d := math.Abs(g.Quantile(q) - b.Quantile(q)); d > 1 {
			return fmt.Sprintf("q%.1f drifted %.3f from the baseline", q, d)
		}
	}
	return ""
}

// TestMixedTenantSketchKillBitIdentical: three tenants run the three
// sketch kinds concurrently over one exactly-once overlay while an
// internal node is crashed and recovered mid-run. Count-min and t-digest
// merges are NOT idempotent — one duplicated or dropped contribution
// changes cells and centroid weights — so demanding every successful
// round match the failure-free baseline (bit-identical state for the
// shape-independent kinds, bit-identical total weight for t-digest; see
// sketchMatches) is an end-to-end exactness check on replay and dedup.
// Rounds that straddle the crash may time out and be retried; any round
// that completes must be exact.
func TestMixedTenantSketchKillBitIdentical(t *testing.T) {
	tree, err := topology.ParseSpec("kary:4^2")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(tree, testAttrs, WithExactlyOnce(8))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	rec, err := recovery.New(nw, recovery.Config{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	smgr := session.NewManager(nw, session.Config{MaxSessions: 3})
	defer smgr.Close()

	kinds := []sketch.Kind{sketch.KindCountMin, sketch.KindHLL, sketch.KindTDigest}
	reqs := map[sketch.Kind]sketch.Request{
		sketch.KindCountMin: {Kind: sketch.KindCountMin, Param: 1024, N: 400, Seed: 11},
		sketch.KindHLL:      {Kind: sketch.KindHLL, Param: 12, N: 400, Seed: 11},
		sketch.KindTDigest:  {Kind: sketch.KindTDigest, N: 400, Seed: 11},
	}
	engines := map[sketch.Kind]*Engine{}
	for i, k := range kinds {
		sess, err := smgr.Open(string(k), session.WithWeight(i+1))
		if err != nil {
			t.Fatal(err)
		}
		engines[k] = NewSessionEngine(nw, sess)
	}

	// Failure-free baseline round per kind. Back-ends rebuild their local
	// sketches deterministically from the request seed, so every correct
	// round reproduces these exact bits.
	baseline := map[sketch.Kind]any{}
	for _, k := range kinds {
		p, err := engines[k].Sketch(reqs[k], 30*time.Second)
		if err != nil {
			t.Fatalf("baseline %s: %v", k, err)
		}
		baseline[k] = decodeSketch(t, k, p)
	}

	// Tenant loops: keep running rounds until each has banked enough
	// successful post-kill rounds. Timeouts (rounds straddling the crash
	// or the recovery) retry; successes must match the baseline exactly.
	const wantRounds = 3
	var pre, post [3]atomic.Int64
	killed := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i, k := range kinds {
		wg.Add(1)
		go func(i int, k sketch.Kind) {
			defer wg.Done()
			deadline := time.Now().Add(90 * time.Second)
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				if time.Now().After(deadline) {
					t.Errorf("%s: deadline with %d/%d post-kill rounds", k, post[i].Load(), wantRounds)
					return
				}
				p, err := engines[k].Sketch(reqs[k], 5*time.Second)
				if err != nil {
					continue // straddled the crash; retry on a fresh stream
				}
				if why := sketchMatches(k, decodeSketch(t, k, p), baseline[k]); why != "" {
					t.Errorf("%s round %d: %s", k, round, why)
					return
				}
				select {
				case <-killed:
					if post[i].Add(1) >= wantRounds {
						return
					}
				default:
					pre[i].Add(1)
				}
			}
		}(i, k)
	}

	// Crash an internal node once every tenant is mid-run, then drive
	// recovery; the tenants keep querying throughout.
	waitUntil := func(cond func() bool, what string) {
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				close(done)
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitUntil(func() bool {
		return pre[0].Load() >= 1 && pre[1].Load() >= 1 && pre[2].Load() >= 1
	}, "all tenants to complete a pre-kill round")
	victim := tree.InternalNodes()[1]
	if err := nw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	close(killed)
	var recErr error
	for attempt := 0; attempt < 5; attempt++ {
		if _, recErr = rec.Recover(victim); recErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if recErr != nil {
		close(done)
		t.Fatalf("recover %d: %v", victim, recErr)
	}
	wg.Wait()
	m := nw.Metrics()
	t.Logf("pre=[%d %d %d] post=[%d %d %d] replayed=%d dups-dropped=%d ringHW=%d",
		pre[0].Load(), pre[1].Load(), pre[2].Load(),
		post[0].Load(), post[1].Load(), post[2].Load(),
		m.PacketsReplayed.Load(), m.DupsDropped.Load(), m.ReplayRingHighWater.Load())
}
