package query

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT avg(load)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selects) != 1 || q.Selects[0].Fn != AggAvg || q.Selects[0].Attr != "load" {
		t.Errorf("parsed %+v", q)
	}
	if q.GroupBy != "" || len(q.Where) != 0 {
		t.Errorf("spurious clauses: %+v", q)
	}
}

func TestParseFull(t *testing.T) {
	q, err := Parse("select count(rank), max(mem), std(load) where load >= 0.5 and rank != 3 group by zone")
	if err != nil {
		t.Fatal(err)
	}
	want := []Select{{AggCount, "rank"}, {AggMax, "mem"}, {AggStd, "load"}}
	if !reflect.DeepEqual(q.Selects, want) {
		t.Errorf("selects = %+v", q.Selects)
	}
	if len(q.Where) != 2 || q.Where[0] != (Pred{"load", OpGe, 0.5}) || q.Where[1] != (Pred{"rank", OpNe, 3}) {
		t.Errorf("where = %+v", q.Where)
	}
	if q.GroupBy != "zone" {
		t.Errorf("group by = %q", q.GroupBy)
	}
	// Canonical text reparses to the same query.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Errorf("canonical text did not round-trip: %q", q.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"avg(load)",
		"select",
		"select avg",
		"select avg(",
		"select avg()",
		"select avg(load",
		"select frobnicate(load)",
		"select avg(load) where",
		"select avg(load) where load",
		"select avg(load) where load ~ 3",
		"select avg(load) where load > banana",
		"select avg(load) group",
		"select avg(load) group by",
		"select avg(load) group by where",
		"select avg(load) trailing garbage",
		"select avg(load) where load > 1 and",
		"select avg(load); drop table",
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", s, err)
		}
	}
}

func TestPredEval(t *testing.T) {
	attrs := map[string]float64{"x": 5}
	cases := []struct {
		op   CmpOp
		v    float64
		want bool
	}{
		{OpEq, 5, true}, {OpEq, 4, false},
		{OpNe, 4, true}, {OpNe, 5, false},
		{OpLt, 6, true}, {OpLt, 5, false},
		{OpLe, 5, true}, {OpLe, 4, false},
		{OpGt, 4, true}, {OpGt, 5, false},
		{OpGe, 5, true}, {OpGe, 6, false},
	}
	for _, c := range cases {
		if got := (Pred{"x", c.op, c.v}).Eval(attrs); got != c.want {
			t.Errorf("x %s %g = %v, want %v", c.op, c.v, got, c.want)
		}
	}
	if (Pred{"missing", OpEq, 0}).Eval(attrs) {
		t.Error("missing attribute should fail the predicate")
	}
}

func TestEvaluate(t *testing.T) {
	q, _ := Parse("select avg(load), max(mem) where rank > 1 group by zone")
	// Filtered out by WHERE.
	if pt := Evaluate(q, map[string]float64{"rank": 1, "zone": 2, "load": 0.5, "mem": 100}); len(pt) != 0 {
		t.Errorf("filtered row produced %v", pt)
	}
	// Passing row: two keyed moment sets (one per selected attribute).
	pt := Evaluate(q, map[string]float64{"rank": 2, "zone": 3, "load": 0.5, "mem": 100})
	if len(pt) != 2 {
		t.Fatalf("partial has %d entries: %v", len(pt), pt)
	}
	if m := pt["3\x00load"]; m == nil || m.Mean() != 0.5 {
		t.Errorf("load moments = %+v", m)
	}
	// Missing GROUP BY attribute drops the row.
	if pt := Evaluate(q, map[string]float64{"rank": 2, "load": 0.5}); len(pt) != 0 {
		t.Errorf("row without group attr produced %v", pt)
	}
}

func TestPartialPacketRoundTrip(t *testing.T) {
	pt := Partial{}
	m := stats.New()
	m.Add(1)
	m.Add(2)
	pt["a\x00load"] = m
	p, err := pt.ToPacket(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := PartialFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if gm := g["a\x00load"]; gm == nil || gm.N != 2 || gm.Sum != 3 {
		t.Errorf("round trip: %+v", g)
	}
	if _, err := PartialFromPacket(packet.MustNew(100, 1, 0, "%d", int64(1))); err == nil {
		t.Error("wrong format: want error")
	}
	ragged := packet.MustNew(100, 1, 0, PartialFormat,
		[]string{"a", "b"}, []int64{1}, []float64{1}, []float64{1}, []float64{1}, []float64{1})
	if _, err := PartialFromPacket(ragged); err == nil {
		t.Error("ragged arrays: want error")
	}
}

func TestMergeFilterAssociative(t *testing.T) {
	mk := func(group string, vals ...float64) *packet.Packet {
		pt := Partial{}
		m := stats.New()
		for _, v := range vals {
			m.Add(v)
		}
		pt[group+"\x00x"] = m
		p, _ := pt.ToPacket(100, 1, 0)
		return p
	}
	out, err := (MergeFilter{}).Transform([]*packet.Packet{
		mk("a", 1, 2), mk("b", 10), mk("a", 3),
	})
	if err != nil || len(out) != 1 {
		t.Fatalf("merge: %v %v", out, err)
	}
	g, err := PartialFromPacket(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if m := g["a\x00x"]; m == nil || m.N != 3 || m.Sum != 6 {
		t.Errorf("group a = %+v", m)
	}
	if m := g["b\x00x"]; m == nil || m.N != 1 {
		t.Errorf("group b = %+v", m)
	}
	if o, err := (MergeFilter{}).Transform(nil); err != nil || o != nil {
		t.Errorf("empty batch: %v %v", o, err)
	}
}

// TestEndToEndQueries runs the full TAG pipeline on a real overlay: 27
// hosts expose (load, mem, zone) attributes; declarative queries aggregate
// them in-network.
func TestEndToEndQueries(t *testing.T) {
	tree, err := topology.ParseSpec("kary:3^3")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tree, func(rank core.Rank) AttrSource {
		return func() map[string]float64 {
			return map[string]float64{
				"load": float64(rank) / 10,
				"mem":  float64(100 + rank),
				"zone": float64(rank % 3),
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown() // the engine owns this overlay

	leaves := tree.Leaves()

	// Global aggregate.
	res, err := eng.Run("select count(rank), max(mem)", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if got := res.Rows[0].Values[0]; got != float64(len(leaves)) {
		t.Errorf("count = %g, want %d", got, len(leaves))
	}
	var wantMaxMem float64
	for _, l := range leaves {
		wantMaxMem = math.Max(wantMaxMem, float64(100+l))
	}
	if got := res.Rows[0].Values[1]; got != wantMaxMem {
		t.Errorf("max(mem) = %g, want %g", got, wantMaxMem)
	}

	// Filtered aggregate.
	res, err = eng.Run("select count(rank) where zone == 0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantZone0 := 0
	for _, l := range leaves {
		if l%3 == 0 {
			wantZone0++
		}
	}
	if got := res.Rows[0].Values[0]; got != float64(wantZone0) {
		t.Errorf("zone-0 count = %g, want %d", got, wantZone0)
	}

	// Grouped aggregate: per-zone average load must equal the direct
	// computation.
	res, err = eng.Run("select avg(load), count(rank) group by zone", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("zones = %+v", res.Rows)
	}
	wantAvg := map[string]*stats.Moments{}
	for _, l := range leaves {
		key := formatGroupValue(float64(l % 3))
		if wantAvg[key] == nil {
			wantAvg[key] = stats.New()
		}
		wantAvg[key].Add(float64(l) / 10)
	}
	for _, row := range res.Rows {
		w := wantAvg[row.Group]
		if w == nil {
			t.Fatalf("unexpected group %q", row.Group)
		}
		if math.Abs(row.Values[0]-w.Mean()) > 1e-9 {
			t.Errorf("zone %s avg(load) = %g, want %g", row.Group, row.Values[0], w.Mean())
		}
		if row.Values[1] != float64(w.N) {
			t.Errorf("zone %s count = %g, want %d", row.Group, row.Values[1], w.N)
		}
	}
	// Rendered output includes headers.
	if out := res.Render(); len(out) == 0 {
		t.Error("empty render")
	}

	// Bad query text surfaces at the caller.
	if _, err := eng.Run("select bogus(x)", time.Second); err == nil {
		t.Error("bad query: want error")
	}
}

// Property: for any partition of rows into two children, merging their
// partials equals evaluating all rows at one node.
func TestQuickPartitionInvariance(t *testing.T) {
	q, err := Parse("select sum(x), count(x) group by g")
	if err != nil {
		t.Fatal(err)
	}
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		rows := make([]map[string]float64, len(xs))
		for i, x := range xs {
			rows[i] = map[string]float64{"x": x, "g": float64(i % 3)}
		}
		whole := Partial{}
		for _, r := range rows {
			whole.Merge(Evaluate(q, r))
		}
		if len(rows) == 0 {
			return true
		}
		k := int(split) % (len(rows) + 1)
		left, right := Partial{}, Partial{}
		for _, r := range rows[:k] {
			left.Merge(Evaluate(q, r))
		}
		for _, r := range rows[k:] {
			right.Merge(Evaluate(q, r))
		}
		left.Merge(right)
		if len(left) != len(whole) {
			return false
		}
		for g, m := range whole {
			lm := left[g]
			if lm == nil || lm.N != m.N ||
				math.Abs(lm.Sum-m.Sum) > 1e-9*(1+math.Abs(m.Sum)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
