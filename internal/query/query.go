// Package query implements a TAG-style declarative aggregation interface
// on top of the TBON, modeled on the sensor-network system the paper
// surveys in §2.3: "a database-like SQL interface that allows users to
// express simple, declarative queries that execute in a distributed manner
// on the nodes of the network."
//
// Queries have the form
//
//	SELECT <agg>(<attr>)[, <agg>(<attr>)...]
//	  [WHERE <attr> <op> <number> [AND ...]]
//	  [GROUP BY <attr>]
//
// with agg one of count, sum, avg, min, max, std. Every back-end exposes
// an attribute map (plus the implicit "rank"); predicates are evaluated
// locally at the back-ends, per-group sufficient statistics are merged by
// a filter at every tree level, and the front-end renders the final rows.
// The network cost is therefore one constant-size partial per group per
// link, independent of the number of back-ends — TAG's in-network
// aggregation property.
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// AggFn names an aggregate function.
type AggFn string

// The supported aggregate functions.
const (
	AggCount AggFn = "count"
	AggSum   AggFn = "sum"
	AggAvg   AggFn = "avg"
	AggMin   AggFn = "min"
	AggMax   AggFn = "max"
	AggStd   AggFn = "std"
)

// Select is one output column: Fn applied to Attr.
type Select struct {
	Fn   AggFn
	Attr string
}

// String renders the column header.
func (s Select) String() string { return fmt.Sprintf("%s(%s)", s.Fn, s.Attr) }

// CmpOp is a predicate comparison operator.
type CmpOp string

// The supported comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Pred is one conjunct of the WHERE clause: Attr Op Value.
type Pred struct {
	Attr  string
	Op    CmpOp
	Value float64
}

// Eval applies the predicate to an attribute map; missing attributes fail
// the predicate.
func (p Pred) Eval(attrs map[string]float64) bool {
	v, ok := attrs[p.Attr]
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return v == p.Value
	case OpNe:
		return v != p.Value
	case OpLt:
		return v < p.Value
	case OpLe:
		return v <= p.Value
	case OpGt:
		return v > p.Value
	case OpGe:
		return v >= p.Value
	}
	return false
}

// Query is a parsed declarative aggregation request.
type Query struct {
	Selects []Select
	Where   []Pred // conjunction
	GroupBy string // attribute name, or "" for a single global group
}

// ErrSyntax reports an unparseable query.
var ErrSyntax = errors.New("query: syntax error")

// Parse parses the SELECT ... [WHERE ...] [GROUP BY ...] form. Keywords
// are case-insensitive; attribute names are case-sensitive.
func Parse(s string) (*Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, string(c))
			i++
		case strings.ContainsRune("=!<>", rune(c)):
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && (s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				s[j] == '-' || s[j] == '+' || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isIdentByte(c):
			j := i + 1
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q", ErrSyntax, c)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); !strings.EqualFold(got, want) {
		return fmt.Errorf("%w: expected %q, got %q", ErrSyntax, want, got)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q.Selects = append(q.Selects, sel)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if strings.EqualFold(p.peek(), "where") {
		p.next()
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !strings.EqualFold(p.peek(), "and") {
				break
			}
			p.next()
		}
	}
	if strings.EqualFold(p.peek(), "group") {
		p.next()
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		attr := p.next()
		if attr == "" || !isIdentByte(attr[0]) || isKeyword(attr) {
			return nil, fmt.Errorf("%w: bad GROUP BY attribute %q", ErrSyntax, attr)
		}
		q.GroupBy = attr
	}
	if rest := p.peek(); rest != "" {
		return nil, fmt.Errorf("%w: trailing input at %q", ErrSyntax, rest)
	}
	return q, nil
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "select", "where", "and", "group", "by":
		return true
	}
	return false
}

func (p *parser) parseSelect() (Select, error) {
	fn := strings.ToLower(p.next())
	switch AggFn(fn) {
	case AggCount, AggSum, AggAvg, AggMin, AggMax, AggStd:
	default:
		return Select{}, fmt.Errorf("%w: unknown aggregate %q", ErrSyntax, fn)
	}
	if err := p.expect("("); err != nil {
		return Select{}, err
	}
	attr := p.next()
	if attr == "" || attr == ")" {
		return Select{}, fmt.Errorf("%w: %s() needs an attribute", ErrSyntax, fn)
	}
	if err := p.expect(")"); err != nil {
		return Select{}, err
	}
	return Select{Fn: AggFn(fn), Attr: attr}, nil
}

func (p *parser) parsePred() (Pred, error) {
	attr := p.next()
	if attr == "" || !isIdentByte(attr[0]) || isKeyword(attr) {
		return Pred{}, fmt.Errorf("%w: bad predicate attribute %q", ErrSyntax, attr)
	}
	op := CmpOp(p.next())
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return Pred{}, fmt.Errorf("%w: bad operator %q", ErrSyntax, op)
	}
	num := p.next()
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return Pred{}, fmt.Errorf("%w: bad number %q", ErrSyntax, num)
	}
	return Pred{Attr: attr, Op: op, Value: v}, nil
}

// Attrs returns every attribute the query touches (for validation).
func (q *Query) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	add := func(a string) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, s := range q.Selects {
		add(s.Attr)
	}
	for _, w := range q.Where {
		add(w.Attr)
	}
	if q.GroupBy != "" {
		add(q.GroupBy)
	}
	return out
}

// String renders the query back to its canonical text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Selects {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, w := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %g", w.Attr, w.Op, w.Value)
		}
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", q.GroupBy)
	}
	return b.String()
}
