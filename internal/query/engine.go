package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/topology"
)

// PartialFormat is the payload of a per-node partial result: parallel
// arrays of group keys and their sufficient statistics.
const PartialFormat = "%as %ad %af %af %af %af"

// MergeFilterName is the registry name of the group-statistics merge
// filter every communication process runs for query streams.
const MergeFilterName = "query-groupstats"

// Partial maps group keys to the sufficient statistics of the matching
// rows below one node.
type Partial map[string]*stats.Moments

// ToPacket encodes the partial with groups in sorted order.
func (pt Partial) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	groups := make([]string, 0, len(pt))
	for g := range pt {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	ns := make([]int64, len(groups))
	sums := make([]float64, len(groups))
	sumsqs := make([]float64, len(groups))
	mins := make([]float64, len(groups))
	maxs := make([]float64, len(groups))
	for i, g := range groups {
		m := pt[g]
		ns[i], sums[i], sumsqs[i], mins[i], maxs[i] = m.N, m.Sum, m.SumSq, m.MinV, m.MaxV
	}
	return packet.New(tag, streamID, src, PartialFormat, groups, ns, sums, sumsqs, mins, maxs)
}

// PartialFromPacket decodes a partial.
func PartialFromPacket(p *packet.Packet) (Partial, error) {
	if p.Format != PartialFormat {
		return nil, fmt.Errorf("query: unexpected packet format %q", p.Format)
	}
	groups, err := p.StringArray(0)
	if err != nil {
		return nil, err
	}
	ns, err := p.IntArray(1)
	if err != nil {
		return nil, err
	}
	sums, err := p.FloatArray(2)
	if err != nil {
		return nil, err
	}
	sumsqs, err := p.FloatArray(3)
	if err != nil {
		return nil, err
	}
	mins, err := p.FloatArray(4)
	if err != nil {
		return nil, err
	}
	maxs, err := p.FloatArray(5)
	if err != nil {
		return nil, err
	}
	if len(ns) != len(groups) || len(sums) != len(groups) || len(sumsqs) != len(groups) ||
		len(mins) != len(groups) || len(maxs) != len(groups) {
		return nil, fmt.Errorf("query: ragged partial arrays")
	}
	pt := Partial{}
	for i, g := range groups {
		pt[g] = &stats.Moments{N: ns[i], Sum: sums[i], SumSq: sumsqs[i], MinV: mins[i], MaxV: maxs[i]}
	}
	return pt, nil
}

// Merge folds o into pt.
func (pt Partial) Merge(o Partial) {
	for g, m := range o {
		if have, ok := pt[g]; ok {
			have.Merge(m)
		} else {
			cp := *m
			pt[g] = &cp
		}
	}
}

// MergeFilter merges child partials group-wise; it is the in-network
// execution of the query's aggregation.
type MergeFilter struct{}

// Transform merges the batch into one partial packet.
func (MergeFilter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	acc := Partial{}
	for _, p := range in {
		pt, err := PartialFromPacket(p)
		if err != nil {
			return nil, err
		}
		acc.Merge(pt)
	}
	out, err := acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the merge filter in a registry.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(MergeFilterName, func() filter.Transformation { return MergeFilter{} })
}

// tagQuery marks query request/response packets.
const tagQuery = packet.TagFirstApplication + 17

// AttrSource produces a back-end's current attribute values. The implicit
// attribute "rank" is always available; sources may override it.
type AttrSource func() map[string]float64

// Evaluate computes a back-end's partial for the query text against its
// attributes: applies the WHERE conjunction, derives the group key, and
// contributes each selected attribute's value. The same row contributes to
// every selected attribute's moments (keyed per attribute inside the
// group, so avg(load) and max(mem) can coexist in one query).
func Evaluate(q *Query, attrs map[string]float64) Partial {
	if len(attrs) == 0 {
		return Partial{}
	}
	for _, w := range q.Where {
		if !w.Eval(attrs) {
			return Partial{}
		}
	}
	group := ""
	if q.GroupBy != "" {
		v, ok := attrs[q.GroupBy]
		if !ok {
			return Partial{}
		}
		group = formatGroupValue(v)
	}
	pt := Partial{}
	for _, sel := range q.Selects {
		v, ok := attrs[sel.Attr]
		if !ok {
			continue
		}
		key := group + "\x00" + sel.Attr
		m, ok := pt[key]
		if !ok {
			m = stats.New()
			pt[key] = m
		}
		m.Add(v)
	}
	return pt
}

func formatGroupValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Row is one line of a query result.
type Row struct {
	Group  string
	Values []float64 // parallel to the query's Selects
}

// Result is a completed query.
type Result struct {
	Query *Query
	Rows  []Row
}

// Render formats the result as a fixed-width table.
func (r *Result) Render() string {
	var b strings.Builder
	if r.Query.GroupBy != "" {
		fmt.Fprintf(&b, "%-12s", r.Query.GroupBy)
	}
	for _, s := range r.Query.Selects {
		fmt.Fprintf(&b, "%16s", s.String())
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		if r.Query.GroupBy != "" {
			fmt.Fprintf(&b, "%-12s", row.Group)
		}
		for _, v := range row.Values {
			fmt.Fprintf(&b, "%16.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// finalize converts a fully merged partial into result rows.
func finalize(q *Query, pt Partial) *Result {
	// Collect group keys (strip the per-attribute suffix).
	groups := map[string]bool{}
	for key := range pt {
		g, _, _ := strings.Cut(key, "\x00")
		groups[g] = true
	}
	sorted := make([]string, 0, len(groups))
	for g := range groups {
		sorted = append(sorted, g)
	}
	sort.Strings(sorted)

	res := &Result{Query: q}
	for _, g := range sorted {
		row := Row{Group: g}
		for _, sel := range q.Selects {
			m := pt[g+"\x00"+sel.Attr]
			if m == nil {
				m = stats.New()
			}
			row.Values = append(row.Values, applyAgg(sel.Fn, m))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func applyAgg(fn AggFn, m *stats.Moments) float64 {
	switch fn {
	case AggCount:
		return float64(m.N)
	case AggSum:
		return m.Sum
	case AggAvg:
		return m.Mean()
	case AggMin:
		return m.Min()
	case AggMax:
		return m.Max()
	case AggStd:
		return m.Std()
	}
	return math.NaN()
}

// Engine runs declarative queries over a TBON. An engine is a thin client
// of an overlay, not the overlay itself: NewEngine builds a private
// overlay for the classic single-tool case, while NewSessionEngine
// multiplexes many engines — one per tenant session — over one shared
// overlay built with NewNetwork. Either way Close releases only the
// engine's own resources; tearing the overlay down is its owner's job
// (Shutdown, or core.Network.Shutdown directly).
type Engine struct {
	nw    *core.Network
	sess  *session.Session // nil: the legacy single-tenant namespace
	owned bool             // NewEngine built the overlay for this engine
}

// Option adjusts the overlay configuration an Engine is built on.
type Option func(*core.Config)

// WithBatch enables per-link egress batching on the engine's overlay.
func WithBatch(p core.BatchPolicy) Option {
	return func(c *core.Config) { c.Batch = p }
}

// WithLinkWindow enables credit-based flow control on the engine's overlay
// with the given per-link window (see core.Config.LinkWindow).
func WithLinkWindow(w int) Option {
	return func(c *core.Config) { c.LinkWindow = w }
}

// WithExactlyOnce upgrades the overlay to exactly-once recovery: adoption
// plus sender replay and sequence dedup, with replay memory priced at the
// given credit window (see core.Config.ExactlyOnce). Non-idempotent merge
// filters — count-min, t-digest — need this to survive failures with
// bit-identical results.
func WithExactlyOnce(window int) Option {
	return func(c *core.Config) {
		c.Recoverable = true
		c.ExactlyOnce = true
		c.LinkWindow = window
	}
}

// NewNetwork builds the shared query overlay: back-ends evaluate
// declarative queries against the given attribute source (invoked per
// request, so values may change between queries) and answer mergeable-
// sketch requests (internal/sketch), with both families' merge filters
// registered at every level. The caller owns the returned network; any
// number of engines — legacy or per-session — may then be layered on it.
func NewNetwork(tree *topology.Tree, attrs func(rank core.Rank) AttrSource, opts ...Option) (*core.Network, error) {
	reg := filter.NewRegistry()
	Register(reg)
	sketch.Register(reg)
	cfg := core.Config{
		Topology:  tree,
		Registry:  reg,
		OnBackEnd: BackEndHandler(attrs),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewNetwork(cfg)
}

// BackEndHandler returns the back-end loop NewNetwork installs: sketch
// requests build the rank's local sketch; everything else is treated as
// query text and evaluated against the attribute source.
func BackEndHandler(attrs func(rank core.Rank) AttrSource) func(be *core.BackEnd) error {
	return func(be *core.BackEnd) error {
		var src AttrSource
		if attrs != nil {
			src = attrs(be.Rank())
		}
		for {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			if sketch.IsRequest(p) {
				_ = sketch.HandleRequest(be, p) // orphaned sends fail; next request retries
				continue
			}
			text, err := p.Str(0)
			if err != nil {
				continue
			}
			q, err := Parse(text)
			if err != nil {
				continue // the front-end validated; ignore corrupt requests
			}
			vals := map[string]float64{"rank": float64(be.Rank())}
			if src != nil {
				for k, v := range src() {
					vals[k] = v
				}
			}
			pt := Evaluate(q, vals)
			out, err := pt.ToPacket(p.Tag, p.StreamID, be.Rank())
			if err != nil {
				return err
			}
			if err := be.SendPacket(out); err != nil {
				return nil
			}
		}
	}
}

// NewEngine builds a private overlay and an engine over it — the classic
// single-tool construction. Close releases the engine; call Shutdown (or
// keep a Network handle) to tear the overlay down.
func NewEngine(tree *topology.Tree, attrs func(rank core.Rank) AttrSource, opts ...Option) (*Engine, error) {
	nw, err := NewNetwork(tree, attrs, opts...)
	if err != nil {
		return nil, err
	}
	return &Engine{nw: nw, owned: true}, nil
}

// NewSessionEngine is the multi-tenant construction: a thin query client
// bound to one tenant session on a shared overlay (built with NewNetwork).
// The engine's streams live in the session's namespace, draw from its
// credit budget, and land on its tenant counters; Close closes the
// session, never the overlay.
func NewSessionEngine(nw *core.Network, sess *session.Session) *Engine {
	return &Engine{nw: nw, sess: sess}
}

// newStream opens a per-request stream in the engine's namespace.
func (e *Engine) newStream(spec core.StreamSpec) (*core.Stream, error) {
	if e.sess != nil {
		return e.sess.NewStream(spec)
	}
	return e.nw.NewStream(spec)
}

// Run parses and executes one query, waiting up to timeout for the merged
// result.
func (e *Engine) Run(text string, timeout time.Duration) (*Result, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	st, err := e.newStream(core.StreamSpec{
		Transformation:  MergeFilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.Multicast(tagQuery, "%s", q.String()); err != nil {
		return nil, err
	}
	p, err := st.RecvTimeout(timeout)
	if err != nil {
		return nil, err
	}
	pt, err := PartialFromPacket(p)
	if err != nil {
		return nil, err
	}
	return finalize(q, pt), nil
}

// Sketch runs one mergeable-sketch workload: every back-end sketches its
// deterministic local stream and the overlay reduces the sketches level by
// level. The merged sketch packet is returned for the caller to decode
// with the kind's FromPacket.
func (e *Engine) Sketch(req sketch.Request, timeout time.Duration) (*packet.Packet, error) {
	fname, err := sketch.FilterName(req.Kind)
	if err != nil {
		return nil, err
	}
	st, err := e.newStream(core.StreamSpec{
		Transformation:  fname,
		Synchronization: "waitforall",
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rp, err := req.ToPacket(st.ID())
	if err != nil {
		return nil, err
	}
	if err := st.MulticastPacket(rp); err != nil {
		return nil, err
	}
	return st.RecvTimeout(timeout)
}

// MetricsSnapshot returns the overlay's counters as a name -> value map
// (egress high-water, credit stalls/grants, frames, …) for tooling.
func (e *Engine) MetricsSnapshot() map[string]int64 { return e.nw.Metrics().Snapshot() }

// Stats returns the engine's tenant counters, or nil for a legacy
// (session-less) engine.
func (e *Engine) Stats() map[string]int64 {
	if e.sess == nil {
		return nil
	}
	return e.sess.Stats()
}

// Close releases the engine: a session engine closes its session (every
// stream in its namespace, at every node, without quiescing other
// tenants); a legacy engine has nothing to release — its per-query streams
// are already closed. The overlay is deliberately left running; other
// engines may share it. Owners tear it down with Shutdown.
func (e *Engine) Close() error {
	if e.sess != nil {
		return e.sess.Close()
	}
	return nil
}

// Shutdown tears the underlying overlay down. Only the overlay's owner —
// the NewEngine caller, or whoever built the shared network — should call
// it; every other engine on the overlay dies with it.
func (e *Engine) Shutdown() error { return e.nw.Shutdown() }

// Network exposes the underlying overlay (e.g. for AttachBackEnd).
func (e *Engine) Network() *core.Network { return e.nw }
