package sketch

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

func ranks(n int) []core.Rank {
	rs := make([]core.Rank, n)
	for i := range rs {
		rs[i] = core.Rank(i + 1)
	}
	return rs
}

// buildAll returns each rank's local sketch packet for the request.
func buildAll(t *testing.T, req Request, rs []core.Rank) []*packet.Packet {
	t.Helper()
	out := make([]*packet.Packet, len(rs))
	for i, r := range rs {
		p, err := BuildLocal(req, r, 42)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestCountMinAccuracyAndExactMerge(t *testing.T) {
	req := Request{Kind: KindCountMin, N: 2000}.normalized()
	rs := ranks(8)
	exact := ExactFor(req, rs)

	// Whole-stream sketch: every rank's items into one count-min.
	whole := NewCountMin(defaultCMDepth, req.Param)
	for _, r := range rs {
		GenStream(req.Seed, r, req.N, func(key string, _ float64) { whole.Add(key, 1) })
	}
	// Merged sketch: per-rank sketches reduced by the merge filter.
	merged, err := mergeCountMin(buildAll(t, req, rs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountMinFromPacket(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.rows, whole.rows) {
		t.Fatal("merged count-min cells differ from the whole-stream sketch (merge must be exact)")
	}

	// Never underestimates; overestimates bounded by the εN guarantee
	// (ε = e/width) with plenty of slack.
	bound := int64(3*float64(exact.Total)/float64(req.Param)) + 1
	for key, want := range exact.Freq {
		est := got.Estimate(key)
		if est < want {
			t.Fatalf("count-min underestimated %q: %d < %d", key, est, want)
		}
		if est > want+bound {
			t.Fatalf("count-min overestimate for %q out of bound: %d vs %d (+%d allowed)",
				key, est, want, bound)
		}
	}
}

func TestHLLAccuracyAndExactMerge(t *testing.T) {
	req := Request{Kind: KindHLL, N: 3000}.normalized()
	rs := ranks(8)
	exact := ExactFor(req, rs)

	whole, err := NewHLL(req.Param)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		GenStream(req.Seed, r, req.N, func(key string, _ float64) { whole.Add(key) })
	}
	merged, err := mergeHLL(buildAll(t, req, rs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := HLLFromPacket(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.regs, whole.regs) {
		t.Fatal("merged HLL registers differ from the whole-stream sketch (merge must be exact)")
	}

	est := got.Estimate()
	relErr := math.Abs(float64(est)-float64(exact.Distinct)) / float64(exact.Distinct)
	// Standard error is 1.04/sqrt(2^p); allow 4 sigma.
	if limit := 4 * 1.04 / math.Sqrt(float64(int(1)<<req.Param)); relErr > limit {
		t.Fatalf("HLL estimate %d vs exact %d: relative error %.4f > %.4f",
			est, exact.Distinct, relErr, limit)
	}
}

func TestTDigestQuantilesAfterMerge(t *testing.T) {
	req := Request{Kind: KindTDigest, N: 3000}.normalized()
	rs := ranks(8)
	exact := ExactFor(req, rs)

	merged, err := mergeTDigest(buildAll(t, req, rs))
	if err != nil {
		t.Fatal(err)
	}
	td, err := TDigestFromPacket(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := td.Count(), float64(exact.Total); got != want {
		t.Fatalf("t-digest total weight %g, want %g", got, want)
	}
	// Values are N(100, 15); allow an absolute error of one standard
	// deviation's tenth at the median and more at the tails.
	for _, c := range []struct{ q, tol float64 }{
		{0.01, 6}, {0.25, 2}, {0.5, 1.5}, {0.75, 2}, {0.99, 6},
	} {
		got := td.Quantile(c.q)
		want := exact.ExactQuantile(c.q)
		if math.Abs(got-want) > c.tol {
			t.Errorf("q%.2f = %.2f, exact %.2f (tolerance %.1f)", c.q, got, want, c.tol)
		}
	}
}

func TestTDigestMergeOrderIndependent(t *testing.T) {
	req := Request{Kind: KindTDigest, N: 1000}.normalized()
	rs := ranks(4)
	pkts := buildAll(t, req, rs)
	fwd, err := mergeTDigest(pkts)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]*packet.Packet, len(pkts))
	for i, p := range pkts {
		rev[len(pkts)-1-i] = p
	}
	bwd, err := mergeTDigest(rev)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TDigestFromPacket(fwd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TDigestFromPacket(bwd)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("merge order changed q%.1f: %.6f vs %.6f", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestSketchPacketRoundTrips(t *testing.T) {
	cm := NewCountMin(3, 64)
	cm.Add("x", 5)
	cm.Add("y", 2)
	p, err := cm.ToPacket(Tag, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := CountMinFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cm.rows, cm2.rows) || cm2.depth != 3 || cm2.width != 64 {
		t.Error("count-min round trip lost state")
	}

	h, err := NewHLL(6)
	if err != nil {
		t.Fatal(err)
	}
	h.Add("x")
	h.Add("y")
	p, err = h.ToPacket(Tag, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HLLFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.regs, h2.regs) || h2.p != 6 {
		t.Error("HLL round trip lost state")
	}

	td := NewTDigest(50)
	for i := 0; i < 500; i++ {
		td.Add(float64(i%97), 1)
	}
	p, err = td.ToPacket(Tag, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	td2, err := TDigestFromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if td.Quantile(q) != td2.Quantile(q) {
			t.Errorf("t-digest round trip changed q%.1f", q)
		}
	}
}

func TestSketchDecodeRejectsMalformed(t *testing.T) {
	// Mismatched dimensions vs payload length.
	p := packet.MustNew(Tag, 1, 0, CountMinFormat, int64(2), int64(8), make([]int64, 5))
	if _, err := CountMinFromPacket(p); err == nil {
		t.Error("count-min dim/len mismatch accepted")
	}
	p = packet.MustNew(Tag, 1, 0, HLLFormat, int64(4), make([]byte, 3))
	if _, err := HLLFromPacket(p); err == nil {
		t.Error("HLL precision/register mismatch accepted")
	}
	p = packet.MustNew(Tag, 1, 0, TDigestFormat, 100.0, []float64{1, 2}, []float64{1})
	if _, err := TDigestFromPacket(p); err == nil {
		t.Error("t-digest parallel-array mismatch accepted")
	}
	p = packet.MustNew(Tag, 1, 0, TDigestFormat, 100.0, []float64{1}, []float64{-1})
	if _, err := TDigestFromPacket(p); err == nil {
		t.Error("t-digest non-positive weight accepted")
	}
	// Wrong format entirely.
	p = packet.MustNew(Tag, 1, 0, "%d", int64(1))
	if _, err := CountMinFromPacket(p); err == nil {
		t.Error("count-min accepted foreign format")
	}
	if _, err := HLLFromPacket(p); err == nil {
		t.Error("HLL accepted foreign format")
	}
	if _, err := TDigestFromPacket(p); err == nil {
		t.Error("t-digest accepted foreign format")
	}
}

func TestRequestRoundTripAndValidation(t *testing.T) {
	req := Request{Kind: KindHLL, Param: 10, N: 500, Seed: 99}
	p, err := req.ToPacket(123)
	if err != nil {
		t.Fatal(err)
	}
	if !IsRequest(p) {
		t.Fatal("encoded request not recognized")
	}
	got, err := ParseRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("request round trip: got %+v, want %+v", got, req)
	}

	// Defaults fill in on parse.
	p, err = Request{Kind: KindCountMin, N: 10}.ToPacket(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Param != 1024 {
		t.Errorf("count-min default width = %d, want 1024", got.Param)
	}

	// Unknown kinds rejected at parse and at build.
	p, err = Request{Kind: "bogus", N: 10}.ToPacket(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRequest(p); err == nil {
		t.Error("unknown kind accepted by ParseRequest")
	}
	if _, err := BuildLocal(Request{Kind: "bogus"}, 1, 1); err == nil {
		t.Error("unknown kind accepted by BuildLocal")
	}
	if _, err := FilterName("bogus"); err == nil {
		t.Error("unknown kind accepted by FilterName")
	}
	for _, k := range []Kind{KindCountMin, KindHLL, KindTDigest} {
		if _, err := FilterName(k); err != nil {
			t.Errorf("FilterName(%q): %v", k, err)
		}
	}
}
