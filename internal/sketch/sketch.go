// Package sketch is a library of mergeable-sketch filters — count-min
// frequency, HyperLogLog distinct-count, and t-digest quantiles — packaged
// as ordinary TBON merge filters. Sketches are the TBON-natural workload:
// each back-end summarizes its local stream into a fixed-size synopsis, and
// because the synopses merge associatively, every communication process
// combines its children's sketches into one, so the front-end receives a
// whole-system summary at per-level cost independent of the leaf count —
// the same amortization argument the paper makes for its filter model.
//
// The package also ships a tiny request/response protocol so tools (the
// query engine's sketch sessions, tbon-bench tenants) can drive sketch
// workloads over any stream: a request packet names the sketch kind and a
// deterministic synthetic workload (items per back-end, seed); back-ends
// answer with their local sketch, and the stream's merge filter reduces the
// answers level by level. Determinism is the point — tests recompute the
// exact ground truth from the same generator and check the sketch against
// it.
package sketch

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
)

// Kind names a sketch family.
type Kind string

const (
	KindCountMin Kind = "cm"
	KindHLL      Kind = "hll"
	KindTDigest  Kind = "tdigest"
)

// Filter registry names, one merge filter per sketch kind.
const (
	FilterCountMin = "sketch-cm"
	FilterHLL      = "sketch-hll"
	FilterTDigest  = "sketch-tdigest"
)

// Tag is the application packet tag sketch requests and responses travel
// under.
const Tag = packet.TagFirstApplication + 18

// RequestFormat is the payload layout of a sketch request: kind, sketch
// parameter (count-min width / HLL precision / t-digest compression),
// items per back-end, generator seed.
const RequestFormat = "%s %d %d %d"

// Request describes one sketch workload.
type Request struct {
	Kind Kind
	// Param is the sketch's size knob: count-min row width, HyperLogLog
	// precision (register-index bits), or t-digest compression. 0 selects
	// a kind-specific default.
	Param int
	// N is how many synthetic items each back-end feeds its local sketch.
	N int
	// Seed roots the deterministic per-rank workload generator.
	Seed int64
}

// FilterName returns the registry name of the kind's merge filter.
func FilterName(k Kind) (string, error) {
	switch k {
	case KindCountMin:
		return FilterCountMin, nil
	case KindHLL:
		return FilterHLL, nil
	case KindTDigest:
		return FilterTDigest, nil
	}
	return "", fmt.Errorf("sketch: unknown kind %q", k)
}

// normalized fills kind-specific defaults in.
func (r Request) normalized() Request {
	if r.Param <= 0 {
		switch r.Kind {
		case KindCountMin:
			r.Param = 1024
		case KindHLL:
			r.Param = 12
		case KindTDigest:
			r.Param = 100
		}
	}
	return r
}

// ToPacket encodes the request for multicast on a stream.
func (r Request) ToPacket(streamID uint32) (*packet.Packet, error) {
	return packet.New(Tag, streamID, 0, RequestFormat,
		string(r.Kind), int64(r.Param), int64(r.N), r.Seed)
}

// IsRequest reports whether p is a sketch request.
func IsRequest(p *packet.Packet) bool {
	return p.Tag == Tag && p.Format == RequestFormat
}

// ParseRequest decodes a sketch request packet.
func ParseRequest(p *packet.Packet) (Request, error) {
	if !IsRequest(p) {
		return Request{}, fmt.Errorf("sketch: not a request packet (tag %d format %q)", p.Tag, p.Format)
	}
	kind, err := p.Str(0)
	if err != nil {
		return Request{}, err
	}
	param, err := p.Int(1)
	if err != nil {
		return Request{}, err
	}
	n, err := p.Int(2)
	if err != nil {
		return Request{}, err
	}
	seed, err := p.Int(3)
	if err != nil {
		return Request{}, err
	}
	r := Request{Kind: Kind(kind), Param: int(param), N: int(n), Seed: seed}
	if _, err := FilterName(r.Kind); err != nil {
		return Request{}, err
	}
	return r.normalized(), nil
}

// HandleRequest is the back-end half of the protocol: build the rank's
// local sketch over its deterministic synthetic stream and send it upstream
// on the request's stream, where the kind's merge filter reduces it.
func HandleRequest(be *core.BackEnd, p *packet.Packet) error {
	req, err := ParseRequest(p)
	if err != nil {
		return err
	}
	out, err := BuildLocal(req, be.Rank(), p.StreamID)
	if err != nil {
		return err
	}
	return be.SendPacket(out)
}

// BuildLocal computes one rank's local sketch packet for the request.
func BuildLocal(req Request, rank core.Rank, streamID uint32) (*packet.Packet, error) {
	req = req.normalized()
	switch req.Kind {
	case KindCountMin:
		cm := NewCountMin(defaultCMDepth, req.Param)
		GenStream(req.Seed, rank, req.N, func(key string, _ float64) {
			cm.Add(key, 1)
		})
		return cm.ToPacket(Tag, streamID, rank)
	case KindHLL:
		h, err := NewHLL(req.Param)
		if err != nil {
			return nil, err
		}
		GenStream(req.Seed, rank, req.N, func(key string, _ float64) {
			h.Add(key)
		})
		return h.ToPacket(Tag, streamID, rank)
	case KindTDigest:
		td := NewTDigest(float64(req.Param))
		GenStream(req.Seed, rank, req.N, func(_ string, v float64) {
			td.Add(v, 1)
		})
		return td.ToPacket(Tag, streamID, rank)
	}
	return nil, fmt.Errorf("sketch: unknown kind %q", req.Kind)
}

// GenStream drives emit with rank's deterministic synthetic workload: a
// Zipf-skewed key (frequency/distinct workloads) and a normal value
// (quantile workloads) per item. Back-ends and tests run the identical
// generator, which is what lets tests check a reduced sketch against the
// exact ground truth.
func GenStream(seed int64, rank core.Rank, n int, emit func(key string, val float64)) {
	r := rand.New(rand.NewSource(seed ^ int64(uint64(rank)*0x9E3779B97F4A7C15)))
	z := rand.NewZipf(r, 1.2, 1, 4095)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", z.Uint64())
		val := r.NormFloat64()*15 + 100
		emit(key, val)
	}
}

// Exact is the ground truth of a workload across a set of ranks, computed
// directly (no sketching) from the same generator.
type Exact struct {
	Freq     map[string]int64 // per-key frequencies
	Distinct int              // distinct key count
	Values   []float64        // every value, sorted
	Total    int64            // total items
}

// ExactFor computes the exact aggregate of the request's workload over the
// given back-end ranks.
func ExactFor(req Request, ranks []core.Rank) Exact {
	e := Exact{Freq: map[string]int64{}}
	for _, r := range ranks {
		GenStream(req.Seed, r, req.N, func(key string, val float64) {
			e.Freq[key]++
			e.Values = append(e.Values, val)
			e.Total++
		})
	}
	e.Distinct = len(e.Freq)
	sort.Float64s(e.Values)
	return e
}

// ExactQuantile reads quantile q off the sorted exact values.
func (e Exact) ExactQuantile(q float64) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	i := int(q * float64(len(e.Values)-1))
	return e.Values[i]
}

// hash64 is the shared 64-bit key hash: FNV-1a finished with a splitmix64
// mix. The finalizer matters — FNV-1a's high bits are weakly mixed for
// short keys, and HLL routes on exactly those bits.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Register installs the three sketch merge filters. Each is a stateless
// within-batch merger, like the query engine's partial-aggregate filter:
// a synchronizer batch of child sketches reduces to a single sketch packet.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterCountMin, func() filter.Transformation {
		return mergeFilter{decodeMerge: mergeCountMin}
	})
	reg.RegisterTransformation(FilterHLL, func() filter.Transformation {
		return mergeFilter{decodeMerge: mergeHLL}
	})
	reg.RegisterTransformation(FilterTDigest, func() filter.Transformation {
		return mergeFilter{decodeMerge: mergeTDigest}
	})
}

// mergeFilter reduces a batch of same-kind sketch packets to one.
type mergeFilter struct {
	decodeMerge func(in []*packet.Packet) (*packet.Packet, error)
}

func (f mergeFilter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out, err := f.decodeMerge(in)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

func mergeCountMin(in []*packet.Packet) (*packet.Packet, error) {
	acc, err := CountMinFromPacket(in[0])
	if err != nil {
		return nil, err
	}
	for _, p := range in[1:] {
		cm, err := CountMinFromPacket(p)
		if err != nil {
			return nil, err
		}
		if err := acc.Merge(cm); err != nil {
			return nil, err
		}
	}
	return acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
}

func mergeHLL(in []*packet.Packet) (*packet.Packet, error) {
	acc, err := HLLFromPacket(in[0])
	if err != nil {
		return nil, err
	}
	for _, p := range in[1:] {
		h, err := HLLFromPacket(p)
		if err != nil {
			return nil, err
		}
		if err := acc.Merge(h); err != nil {
			return nil, err
		}
	}
	return acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
}

func mergeTDigest(in []*packet.Packet) (*packet.Packet, error) {
	acc, err := TDigestFromPacket(in[0])
	if err != nil {
		return nil, err
	}
	for _, p := range in[1:] {
		td, err := TDigestFromPacket(p)
		if err != nil {
			return nil, err
		}
		acc.Merge(td)
	}
	return acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
}
