package sketch

import (
	"fmt"
	"sort"

	"repro/internal/packet"
)

// TDigest is a merging t-digest quantile sketch: a sorted list of
// (mean, weight) centroids whose sizes are bounded by a scale function that
// keeps centroids small near the distribution's tails — quantile error is
// therefore relative to q(1-q), tight exactly where quantiles are
// interesting. Digests merge by concatenating centroid lists and
// re-compressing; the centroids are re-sorted by mean first, so a merge's
// result depends only on the multiset of inputs, not their arrival order —
// which keeps TBON reductions deterministic for a fixed tree shape.
type TDigest struct {
	compression    float64
	means, weights []float64 // compressed centroids, sorted by mean

	// buffer of uncompressed additions, folded in by compress.
	bufM, bufW []float64
}

// NewTDigest returns an empty digest. Compression below 20 clamps to 20
// (the sketch degenerates below that); ~100 is the standard default.
func NewTDigest(compression float64) *TDigest {
	if compression < 20 {
		compression = 20
	}
	return &TDigest{compression: compression}
}

// Add observes value x with weight w.
func (t *TDigest) Add(x, w float64) {
	if w <= 0 {
		return
	}
	t.bufM = append(t.bufM, x)
	t.bufW = append(t.bufW, w)
	if len(t.bufM) >= int(8*t.compression) {
		t.compress()
	}
}

// Merge folds o into t. Compression is deferred to the next read or
// encode, so a fan-in of merges compresses once over the union of
// centroids — the result depends only on the multiset of inputs, not the
// order the siblings arrived in.
func (t *TDigest) Merge(o *TDigest) {
	o.compress()
	t.bufM = append(t.bufM, o.means...)
	t.bufW = append(t.bufW, o.weights...)
}

// Count returns the total observed weight.
func (t *TDigest) Count() float64 {
	var c float64
	for _, w := range t.weights {
		c += w
	}
	for _, w := range t.bufW {
		c += w
	}
	return c
}

// compress folds the buffer into the centroid list and re-bounds centroid
// sizes by the k1-style limit 4·total·q(1-q)/δ at the centroid's midpoint
// quantile.
func (t *TDigest) compress() {
	if len(t.bufM) == 0 {
		return
	}
	n := len(t.means) + len(t.bufM)
	idx := make([]int, n)
	m := make([]float64, n)
	w := make([]float64, n)
	copy(m, t.means)
	copy(w, t.weights)
	copy(m[len(t.means):], t.bufM)
	copy(w[len(t.means):], t.bufW)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		// Tie-break on weight so equal-mean centroids group identically
		// regardless of arrival order.
		if m[idx[a]] != m[idx[b]] {
			return m[idx[a]] < m[idx[b]]
		}
		return w[idx[a]] < w[idx[b]]
	})
	var total float64
	for _, x := range w {
		total += x
	}

	outM := t.means[:0]
	outW := t.weights[:0]
	curM, curW := m[idx[0]], w[idx[0]]
	var done float64 // weight fully emitted so far
	for _, i := range idx[1:] {
		q := (done + (curW+w[i])/2) / total
		limit := 4 * total * q * (1 - q) / t.compression
		if curW+w[i] <= limit {
			merged := curW + w[i]
			curM += (m[i] - curM) * w[i] / merged
			curW = merged
			continue
		}
		outM = append(outM, curM)
		outW = append(outW, curW)
		done += curW
		curM, curW = m[i], w[i]
	}
	t.means = append(outM, curM)
	t.weights = append(outW, curW)
	t.bufM = t.bufM[:0]
	t.bufW = t.bufW[:0]
}

// Quantile estimates the value at quantile q in [0, 1], interpolating
// between centroid means at their cumulative-weight midpoints.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	if len(t.means) == 0 {
		return 0
	}
	if len(t.means) == 1 {
		return t.means[0]
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total float64
	for _, w := range t.weights {
		total += w
	}
	target := q * total
	var cum float64
	prevMid, prevMean := 0.0, t.means[0]
	for i := range t.means {
		mid := cum + t.weights[i]/2
		if target < mid || i == len(t.means)-1 {
			if i == 0 || mid == prevMid {
				return t.means[i]
			}
			frac := (target - prevMid) / (mid - prevMid)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return prevMean + frac*(t.means[i]-prevMean)
		}
		cum += t.weights[i]
		prevMid, prevMean = mid, t.means[i]
	}
	return t.means[len(t.means)-1]
}

// TDigestFormat is the payload layout: compression, means, weights.
const TDigestFormat = "%f %af %af"

// ToPacket encodes the digest (compressed form).
func (t *TDigest) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	t.compress()
	return packet.New(tag, streamID, src, TDigestFormat,
		t.compression, append([]float64(nil), t.means...), append([]float64(nil), t.weights...))
}

// TDigestFromPacket decodes a t-digest packet.
func TDigestFromPacket(p *packet.Packet) (*TDigest, error) {
	if p.Format != TDigestFormat {
		return nil, fmt.Errorf("sketch: unexpected t-digest format %q", p.Format)
	}
	comp, err := p.Float(0)
	if err != nil {
		return nil, err
	}
	means, err := p.FloatArray(1)
	if err != nil {
		return nil, err
	}
	weights, err := p.FloatArray(2)
	if err != nil {
		return nil, err
	}
	if len(means) != len(weights) {
		return nil, fmt.Errorf("sketch: t-digest %d means but %d weights", len(means), len(weights))
	}
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sketch: t-digest non-positive centroid weight %g", w)
		}
	}
	td := NewTDigest(comp)
	td.means = append([]float64(nil), means...)
	td.weights = append([]float64(nil), weights...)
	return td, nil
}
