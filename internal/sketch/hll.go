package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/packet"
)

// HLL is a HyperLogLog distinct-count sketch: 2^p one-byte registers, each
// holding the maximum leading-zero rank observed among hashes routed to it.
// Relative error is ≈ 1.04/√(2^p). Two sketches over any streams merge by
// register-wise max, and the merge is exact: the merged registers are
// bit-identical to sketching the union, so the TBON reduction loses
// nothing.
type HLL struct {
	p    int
	regs []byte
}

// NewHLL returns an empty sketch with 2^p registers, p in [4, 16].
func NewHLL(p int) (*HLL, error) {
	if p < 4 || p > 16 {
		return nil, fmt.Errorf("sketch: HLL precision %d out of range [4, 16]", p)
	}
	return &HLL{p: p, regs: make([]byte, 1<<p)}, nil
}

// Add observes a key.
func (h *HLL) Add(key string) {
	x := hash64(key)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // low bits; the guard bit caps rho at 64-p+1
	rho := byte(bits.LeadingZeros64(rest) + 1)
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// Estimate returns the approximate number of distinct keys observed.
func (h *HLL) Estimate() int64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	var alpha float64
	switch len(h.regs) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	default:
		alpha = 0.7213 / (1 + 1.079/m)
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting on empty registers.
		e = m * math.Log(m/float64(zeros))
	}
	return int64(e + 0.5)
}

// Merge folds o into h by register-wise max. Precisions must match.
func (h *HLL) Merge(o *HLL) error {
	if h.p != o.p {
		return fmt.Errorf("sketch: HLL precision %d vs %d", h.p, o.p)
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// HLLFormat is the payload layout: precision, registers.
const HLLFormat = "%d %ac"

// ToPacket encodes the sketch.
func (h *HLL) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	return packet.New(tag, streamID, src, HLLFormat, int64(h.p), h.regs)
}

// HLLFromPacket decodes a HyperLogLog packet.
func HLLFromPacket(p *packet.Packet) (*HLL, error) {
	if p.Format != HLLFormat {
		return nil, fmt.Errorf("sketch: unexpected HLL format %q", p.Format)
	}
	prec, err := p.Int(0)
	if err != nil {
		return nil, err
	}
	regs, err := p.Bytes(1)
	if err != nil {
		return nil, err
	}
	if prec < 4 || prec > 16 || len(regs) != 1<<prec {
		return nil, fmt.Errorf("sketch: HLL precision %d with %d registers", prec, len(regs))
	}
	return &HLL{p: int(prec), regs: append([]byte(nil), regs...)}, nil
}
