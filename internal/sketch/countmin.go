package sketch

import (
	"fmt"

	"repro/internal/packet"
)

// defaultCMDepth is the number of hash rows; 4 rows bound the failure
// probability at e^-4 ≈ 1.8% per query.
const defaultCMDepth = 4

// CountMin is a count-min sketch: a depth×width counter matrix where each
// item increments one cell per row (chosen by row-independent hashes) and a
// point query reads the minimum over its cells — an overestimate by at most
// εN with probability 1-δ for width = e/ε, depth = ln(1/δ). Updates are
// plain additions (not the conservative variant), which is what makes two
// sketches merge exactly by cell-wise sum: the TBON reduction is then
// bit-identical to sketching the concatenated stream.
type CountMin struct {
	depth, width int
	rows         []int64 // depth*width, row-major
}

// NewCountMin returns an empty sketch. Non-positive dimensions clamp to 1.
func NewCountMin(depth, width int) *CountMin {
	if depth < 1 {
		depth = 1
	}
	if width < 1 {
		width = 1
	}
	return &CountMin{depth: depth, width: width, rows: make([]int64, depth*width)}
}

// cells yields the sketch's cell index for key in each row, by double
// hashing one 64-bit key hash.
func (cm *CountMin) cell(h uint64, row int) int {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd, so the probe sequence covers the row
	return int((h1 + uint32(row)*h2) % uint32(cm.width))
}

// Add counts the key n times.
func (cm *CountMin) Add(key string, n int64) {
	h := hash64(key)
	for r := 0; r < cm.depth; r++ {
		cm.rows[r*cm.width+cm.cell(h, r)] += n
	}
}

// Estimate returns the key's frequency estimate (never an underestimate).
func (cm *CountMin) Estimate(key string) int64 {
	h := hash64(key)
	min := int64(-1)
	for r := 0; r < cm.depth; r++ {
		v := cm.rows[r*cm.width+cm.cell(h, r)]
		if min < 0 || v < min {
			min = v
		}
	}
	return min
}

// Merge folds o into cm by cell-wise sum. Dimensions must match.
func (cm *CountMin) Merge(o *CountMin) error {
	if cm.depth != o.depth || cm.width != o.width {
		return fmt.Errorf("sketch: count-min dims %dx%d vs %dx%d", cm.depth, cm.width, o.depth, o.width)
	}
	for i, v := range o.rows {
		cm.rows[i] += v
	}
	return nil
}

// CountMinFormat is the payload layout: depth, width, row-major counters.
const CountMinFormat = "%d %d %ad"

// ToPacket encodes the sketch.
func (cm *CountMin) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	return packet.New(tag, streamID, src, CountMinFormat,
		int64(cm.depth), int64(cm.width), cm.rows)
}

// CountMinFromPacket decodes a count-min packet.
func CountMinFromPacket(p *packet.Packet) (*CountMin, error) {
	if p.Format != CountMinFormat {
		return nil, fmt.Errorf("sketch: unexpected count-min format %q", p.Format)
	}
	depth, err := p.Int(0)
	if err != nil {
		return nil, err
	}
	width, err := p.Int(1)
	if err != nil {
		return nil, err
	}
	rows, err := p.IntArray(2)
	if err != nil {
		return nil, err
	}
	if depth < 1 || width < 1 || int64(len(rows)) != depth*width {
		return nil, fmt.Errorf("sketch: count-min %dx%d with %d cells", depth, width, len(rows))
	}
	return &CountMin{depth: int(depth), width: int(width), rows: append([]int64(nil), rows...)}, nil
}
