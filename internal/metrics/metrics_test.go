package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	// Sample stdev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryPercentile(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("P50 = %g", got)
	}
	if got := s.Percentile(95); got != 95 {
		t.Errorf("P95 = %g", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %g", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %g", got)
	}
	if got := s.Percentile(150); got != 100 {
		t.Errorf("P150 = %g", got)
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Errorf("Mean = %g, want 1.5", s.Mean())
	}
}

// Property: Min <= Mean <= Max and percentiles are monotone.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		if s.Min() > s.Max() {
			return false
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			// Mean of large-magnitude values can lose precision; tolerate
			// only tiny drift.
			if math.Abs(s.Mean()) < 1e12 {
				return false
			}
		}
		return s.Percentile(25) <= s.Percentile(75)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig 4", "scale", "single", "flat", "deep")
	tb.AddRow(16, 1.25, 0.5, 0.51)
	tb.AddRow(324, 30.0, 9.111, time.Duration(2500*time.Millisecond))
	out := tb.String()
	for _, want := range []string{"## Fig 4", "scale", "single", "324", "1.250", "2.500s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}
