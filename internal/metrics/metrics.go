// Package metrics provides the small measurement toolkit the experiment
// harness uses: streaming summary statistics, stopwatch timers, and
// fixed-width table rendering for reproducing the paper's figures as text.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates streaming statistics over float64 observations.
// The zero value is ready to use. Not safe for concurrent use.
type Summary struct {
	xs []float64
}

// Add records one observation.
func (s *Summary) Add(x float64) { s.xs = append(s.xs, x) }

// AddDuration records a duration in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Summary) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for no data).
func (s *Summary) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 points).
func (s *Summary) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, x := range s.xs {
		t += (x - m) * (x - m)
	}
	return math.Sqrt(t / float64(len(s.xs)-1))
}

// Min returns the smallest observation (0 for no data).
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for no data).
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p'th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Table renders experiment series as a fixed-width text table, the harness's
// stand-in for the paper's plots.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case time.Duration:
			if x != 0 && x < time.Second {
				row[i] = x.Round(time.Microsecond).String()
			} else {
				row[i] = fmt.Sprintf("%.3fs", x.Seconds())
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
