package session

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eqclass"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/recovery"
	"repro/internal/topology"
)

const tagQuery = packet.TagFirstApplication

var fabrics = map[string]core.TransportKind{
	"chan": core.ChanTransport,
	"tcp":  core.TCPTransport,
}

func mustTree(t *testing.T, spec string) *topology.Tree {
	t.Helper()
	tr, err := topology.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// echoNet builds a network whose back-ends answer every multicast with
// their rank as a float.
func echoNet(t *testing.T, spec string, kind core.TransportKind) *core.Network {
	t.Helper()
	nw, err := core.NewNetwork(core.Config{
		Topology:  mustTree(t, spec),
		Transport: kind,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				_ = be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank()))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestAdmissionControl(t *testing.T) {
	nw := echoNet(t, "kary:2^1", core.ChanTransport)
	defer nw.Shutdown()
	m := NewManager(nw, Config{MaxSessions: 2})

	a, err := m.Open("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("bob", WithWeight(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Active() != 2 {
		t.Fatalf("active = %d, want 2", m.Active())
	}
	// The cap is hit: the third tenant is refused with the typed error.
	if _, err := m.Open("carol"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("over-cap open: err = %v, want ErrSessionLimit", err)
	}
	if got := nw.Metrics().SessionsRejected.Load(); got != 1 {
		t.Errorf("SessionsRejected = %d, want 1", got)
	}
	// Freeing a slot admits again, in a fresh namespace.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close not idempotent: %v", err)
	}
	c, err := m.Open("carol")
	if err != nil {
		t.Fatal(err)
	}
	if c.NS() == a.NS() || c.NS() == b.NS() {
		t.Errorf("namespace %d reused while tracked (a=%d b=%d)", c.NS(), a.NS(), b.NS())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Active() != 0 {
		t.Errorf("active after manager close = %d", m.Active())
	}
	if _, err := m.Open("dave", WithWeight(0)); err == nil {
		t.Error("weight 0 accepted")
	}
}

func TestWeightMapsToPriorityClass(t *testing.T) {
	nw := echoNet(t, "kary:2^1", core.ChanTransport)
	defer nw.Shutdown()
	m := NewManager(nw, Config{MaxSessions: -1})

	a, err := m.Open("batch") // default weight 1
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("interactive", WithWeight(3), WithBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Priority() != 0 || b.Priority() != 2 {
		t.Errorf("priorities = %d, %d; want 0, 2 (weight-1)", a.Priority(), b.Priority())
	}
	infos := map[string]core.SessionInfo{}
	for _, si := range nw.Sessions() {
		infos[si.Tenant] = si
	}
	if infos["interactive"].Priority != 2 {
		t.Errorf("network sees priority %d for weight 3", infos["interactive"].Priority)
	}

	// Streams work and inherit the class (observable end to end: the
	// query still answers; the class itself is internal to egress).
	st, err := b.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RecvTimeout(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Stats() == nil || b.Stats()["streams_opened"] != 1 {
		t.Errorf("tenant stats = %v", b.Stats())
	}
}

// leafReport is the deterministic (class, member) report of the i'th
// leaf: an os class shared 4 ways and a cpu class shared 8 ways.
func leafReport(i int) [][2]any {
	return [][2]any{
		{fmt.Sprintf("os/%d", i%4), int64(i)},
		{"cpu", int64(i % 8)},
	}
}

func fingerprint(s *eqclass.Set) string {
	var parts []string
	for _, k := range s.Keys() {
		for _, m := range s.Members(k) {
			parts = append(parts, fmt.Sprintf("%s=%d", k, m))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// runTenants drives the equivalence-class workload through n concurrent
// tenant sessions over one overlay. If kill >= 0, that rank is crashed
// once every tenant has completed a few rounds, and the recovery manager
// must bring the overlay back while both tenants keep querying. Returns
// each tenant's final accumulated fingerprint and the expected one.
func runTenants(t *testing.T, spec string, kind core.TransportKind, n int, kill core.Rank) ([]string, string) {
	t.Helper()
	reg := filter.NewRegistry()
	eqclass.Register(reg)
	tree := mustTree(t, spec)
	leaves := tree.Leaves()
	leafIdx := map[core.Rank]int{}
	for i, l := range leaves {
		leafIdx[l] = i
	}
	want := eqclass.NewSet()
	for i := range leaves {
		for _, pr := range leafReport(i) {
			want.Add(pr[0].(string), pr[1].(int64))
		}
	}

	nw, err := core.NewNetwork(core.Config{
		Topology:        tree,
		Registry:        reg,
		Transport:       kind,
		Recoverable:     true,
		HeartbeatPeriod: 10 * time.Millisecond,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				round, err := p.Int(0)
				if err != nil {
					continue
				}
				// One pair per round; resending cycles the report, which
				// is safe because the reduction is idempotent.
				pairs := leafReport(leafIdx[be.Rank()])
				pr := pairs[int(round)%len(pairs)]
				s := eqclass.NewSet()
				s.Add(pr[0].(string), pr[1].(int64))
				rp, err := s.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				_ = be.SendPacket(rp) // orphaned sends fail; resent next cycle
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	mgr, err := recovery.New(nw, recovery.Config{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	m := NewManager(nw, Config{MaxSessions: n})
	defer m.Close()

	fps := make([]string, n)
	var rounds [8]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sess, err := m.Open(fmt.Sprintf("tenant-%d", i), WithWeight(i+1))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			st, err := sess.NewStream(core.StreamSpec{
				Transformation:  eqclass.FilterName,
				Synchronization: "nullsync",
			})
			if err != nil {
				t.Error(err)
				return
			}
			acc := eqclass.NewSet()
			deadline := time.Now().Add(60 * time.Second)
			for round := 0; ; round++ {
				rounds[i].Store(int64(round))
				if err := st.Multicast(tagQuery, "%d", int64(round)); err != nil {
					t.Errorf("tenant %d: %v", i, err)
					return
				}
				for {
					p, err := st.RecvTimeout(20 * time.Millisecond)
					if err != nil {
						break
					}
					if s, err := eqclass.FromPacket(p); err == nil {
						acc.Merge(s)
					}
				}
				recovered := kill < 0 || len(mgr.Reports()) > 0
				if recovered && fingerprint(acc) == fingerprint(want) {
					fps[i] = fingerprint(acc)
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("tenant %d never converged: %d of %d pairs", i, acc.Len(), want.Len())
					return
				}
			}
		}(i, sess)
	}

	if kill >= 0 {
		// Crash once every tenant is mid-stream.
		deadline := time.Now().Add(30 * time.Second)
		for {
			ready := true
			for i := 0; i < n; i++ {
				if rounds[i].Load() < 2 {
					ready = false
				}
			}
			if ready {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("tenants never reached round 2")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := nw.Kill(kill); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if kill >= 0 {
		reps := mgr.Reports()
		if len(reps) != 1 || reps[0].Failed != kill {
			t.Fatalf("recovery reports = %+v, want one for rank %d", reps, kill)
		}
	}
	return fps, fingerprint(want)
}

// TestTenantsMatchSingleTenant: two tenants sharing the overlay compute
// exactly what each computes alone — the multi-tenant acceptance bar —
// on both fabrics.
func TestTenantsMatchSingleTenant(t *testing.T) {
	for name, kind := range fabrics {
		t.Run(name, func(t *testing.T) {
			if kind == core.TCPTransport && testing.Short() {
				t.Skip("TCP equivalence runs in the CI soak step")
			}
			solo, want := runTenants(t, "kary:3^2", kind, 1, -1)
			if solo[0] != want {
				t.Fatalf("single tenant wrong: %q", solo[0])
			}
			both, _ := runTenants(t, "kary:3^2", kind, 2, -1)
			for i, fp := range both {
				if fp != want {
					t.Errorf("tenant %d diverged from the single-tenant result", i)
				}
			}
		})
	}
}

// TestMixedTenantChaosKill is the chaos acceptance check on the big tree:
// two tenants on kary:8^2, an internal communication process crashes
// mid-run, and both tenants converge to the identical, correct
// equivalence-class set on both fabrics.
func TestMixedTenantChaosKill(t *testing.T) {
	for name, kind := range fabrics {
		t.Run(name, func(t *testing.T) {
			if kind == core.TCPTransport && testing.Short() {
				t.Skip("TCP chaos runs in the CI soak step")
			}
			fps, want := runTenants(t, "kary:8^2", kind, 2, 3)
			for i, fp := range fps {
				if fp != want {
					t.Errorf("tenant %d diverged after recovery", i)
				}
			}
			if fps[0] != fps[1] {
				t.Error("tenants recovered to different sets")
			}
		})
	}
}

// TestCloseTenantDoesNotStallOthers: tearing tenant B down while its
// traffic is in flight never blocks tenant A — closes are bounded and A's
// queries keep answering throughout.
func TestCloseTenantDoesNotStallOthers(t *testing.T) {
	tree := mustTree(t, "kary:4^2")
	nw, err := core.NewNetwork(core.Config{
		Topology:   tree,
		LinkWindow: 4, // small shared window: contention is real
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				_ = be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank()))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	m := NewManager(nw, Config{})

	a, err := m.Open("steady", WithWeight(2))
	if err != nil {
		t.Fatal(err)
	}
	stA, err := a.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, l := range tree.Leaves() {
		want += float64(l)
	}
	queryA := func() {
		t.Helper()
		if err := stA.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := stA.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatal("tenant A stalled:", err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("sum = %g, want %g", v, want)
		}
	}

	for i := 0; i < 5; i++ {
		b, err := m.Open("churner", WithBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		stB, err := b.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
		if err != nil {
			t.Fatal(err)
		}
		// B floods from a goroutine on a 1-credit budget; its session dies
		// mid-stream.
		stop := make(chan struct{})
		var bwg sync.WaitGroup
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := stB.Multicast(tagQuery, ""); err != nil {
					return
				}
			}
		}()
		queryA()
		closed := make(chan error, 1)
		go func() { closed <- b.Close() }()
		select {
		case err := <-closed:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("tenant close stalled")
		}
		queryA()
		close(stop)
		bwg.Wait()
	}
}
