// Package session is the multi-tenant admission and fair-share policy
// layer over core's session mechanism. core knows how to run many tenant
// namespaces over one overlay (stream-id namespaces, credit sub-budgets,
// single-flood teardown); this package decides who gets in and on what
// terms: a Manager caps how many tenants share the overlay at once,
// allocates namespaces, and maps a tenant's declared weight onto the
// egress scheduler's priority classes.
//
// The weight mapping is deliberately simple. Streams of equal priority
// round-robin packet-for-packet on every link, so tenants of equal weight
// share each link's credit window fairly without any extra machinery;
// a higher weight moves the tenant into a strictly preferred class whose
// queued data flushes first. Weight w maps to priority w-1, so weight-1
// tenants coexist in class 0 with the legacy single-tenant API's streams.
package session

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// ErrSessionLimit is returned by Manager.Open when the concurrent-session
// cap is reached. Callers gate retry/backoff on it with errors.Is.
var ErrSessionLimit = errors.New("session: concurrent session limit reached")

// DefaultMaxSessions is the admission cap when Config.MaxSessions is 0.
const DefaultMaxSessions = 16

// Config parameterizes a Manager.
type Config struct {
	// MaxSessions caps how many sessions may be open at once; 0 means
	// DefaultMaxSessions, negative means unlimited.
	MaxSessions int
}

// Manager admits tenant sessions onto one shared overlay.
type Manager struct {
	nw  *core.Network
	max int

	mu     sync.Mutex
	nextNS uint32
	open   map[uint32]*Session
}

// NewManager wraps an already-running network. The Manager does not own
// the network: closing the manager closes its sessions, never the overlay.
func NewManager(nw *core.Network, cfg Config) *Manager {
	max := cfg.MaxSessions
	if max == 0 {
		max = DefaultMaxSessions
	}
	return &Manager{nw: nw, max: max, nextNS: 1, open: map[uint32]*Session{}}
}

// Option tunes one session at Open.
type Option func(*settings)

type settings struct {
	weight int
	budget int
}

// WithWeight sets the tenant's fair share, >= 1. Equal-weight tenants
// split link bandwidth evenly (their streams round-robin in one egress
// class); a higher weight is a strictly preferred class. Default 1.
func WithWeight(w int) Option {
	return func(s *settings) { s.weight = w }
}

// WithBudget caps how many link send credits the tenant may hold at once,
// as a sub-window of the network's Config.LinkWindow (values out of range
// clamp to the full window). Default: the full window.
func WithBudget(credits int) Option {
	return func(s *settings) { s.budget = credits }
}

// Open admits a tenant session, or fails with ErrSessionLimit when the
// concurrent-session cap is reached.
func (m *Manager) Open(tenant string, opts ...Option) (*Session, error) {
	set := settings{weight: 1}
	for _, o := range opts {
		o(&set)
	}
	if set.weight < 1 {
		return nil, fmt.Errorf("session: weight %d < 1", set.weight)
	}

	m.mu.Lock()
	if m.max >= 0 && len(m.open) >= m.max {
		n := len(m.open)
		m.mu.Unlock()
		m.nw.Metrics().SessionsRejected.Add(1)
		return nil, fmt.Errorf("session: %d sessions already open (cap %d): %w",
			n, m.max, ErrSessionLimit)
	}
	ns, err := m.allocNS()
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	s := &Session{m: m, ns: ns, tenant: tenant, prio: set.weight - 1}
	m.open[ns] = s
	m.mu.Unlock()

	if err := m.nw.OpenSession(core.SessionInfo{
		NS:       ns,
		Tenant:   tenant,
		Priority: s.prio,
		Budget:   set.budget,
	}); err != nil {
		m.mu.Lock()
		delete(m.open, ns)
		m.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// allocNS picks the next free namespace; called with m.mu held.
func (m *Manager) allocNS() (uint32, error) {
	for i := 0; i < core.MaxNamespace; i++ {
		ns := m.nextNS
		m.nextNS++
		if m.nextNS > core.MaxNamespace {
			m.nextNS = 1
		}
		if _, used := m.open[ns]; !used {
			return ns, nil
		}
	}
	return 0, errors.New("session: no free namespace")
}

// Active reports how many sessions are currently open.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.open)
}

// Close closes every open session. It does NOT shut the network down —
// the overlay belongs to its owner, and other clients (or a later
// manager) may still be using it.
func (m *Manager) Close() error {
	m.mu.Lock()
	open := make([]*Session, 0, len(m.open))
	for _, s := range m.open {
		open = append(open, s)
	}
	m.mu.Unlock()
	var first error
	for _, s := range open {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Session is one tenant's handle onto the shared overlay.
type Session struct {
	m      *Manager
	ns     uint32
	tenant string
	prio   int

	closeOnce sync.Once
	closeErr  error
}

// NS returns the session's stream-id namespace.
func (s *Session) NS() uint32 { return s.ns }

// Tenant returns the session's tenant name.
func (s *Session) Tenant() string { return s.tenant }

// Priority returns the egress class the session's weight mapped to.
func (s *Session) Priority() int { return s.prio }

// NewStream opens a stream in the session's namespace. A zero
// spec.Priority inherits the session's fair-share class; explicit
// priorities are honored, so a tenant may still rank its own streams.
func (s *Session) NewStream(spec core.StreamSpec) (*core.Stream, error) {
	if spec.Priority == 0 {
		spec.Priority = s.prio
	}
	return s.m.nw.NewStreamNS(s.ns, spec)
}

// Stats returns the tenant's traffic counters (shared across all of the
// tenant's sessions, surviving close).
func (s *Session) Stats() map[string]int64 {
	return s.m.nw.TenantSnapshot()[s.tenant]
}

// Close tears the session down: every stream in its namespace closes at
// every node via one flooded control packet, without quiescing other
// tenants. Idempotent; the first result is sticky.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.m.mu.Lock()
		delete(s.m.open, s.ns)
		s.m.mu.Unlock()
		s.closeErr = s.m.nw.CloseSession(s.ns)
	})
	return s.closeErr
}
