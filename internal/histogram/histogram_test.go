package histogram

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 0); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := New(10, 10, 4); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := New(10, 0, 4); err == nil {
		t.Error("inverted range: want error")
	}
}

func TestAddAndCount(t *testing.T) {
	h, err := New(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d", h.Count())
	}
	for i, b := range h.Bins {
		if b != 1 {
			t.Errorf("bin %d = %d, want 1", i, b)
		}
	}
	// Out-of-range clamps to boundary bins.
	h.Add(-100)
	h.Add(+100)
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("clamping: bins = %v", h.Bins)
	}
	// NaN is ignored.
	h.Add(math.NaN())
	if h.Count() != 12 {
		t.Errorf("NaN counted: %d", h.Count())
	}
}

func TestMerge(t *testing.T) {
	a, _ := New(0, 10, 5)
	b, _ := New(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Bins[0] != 2 || a.Bins[4] != 1 {
		t.Errorf("merged = %v", a.Bins)
	}
	c, _ := New(0, 10, 6)
	if err := a.Merge(c); !errors.Is(err, ErrMismatch) {
		t.Errorf("bin mismatch: %v", err)
	}
	d, _ := New(0, 11, 5)
	if err := a.Merge(d); !errors.Is(err, ErrMismatch) {
		t.Errorf("range mismatch: %v", err)
	}
}

func TestQuantile(t *testing.T) {
	h, _ := New(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("median = %g, want ~50", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 2 {
		t.Errorf("P90 = %g, want ~90", q)
	}
	empty, _ := New(0, 1, 4)
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
	if q := h.Quantile(-1); q > 2 {
		t.Errorf("clamped q<0 = %g", q)
	}
	if q := h.Quantile(2); q < 98 {
		t.Errorf("clamped q>1 = %g", q)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	h, _ := New(-5, 5, 8)
	h.Add(0)
	h.Add(-4.9)
	h.Add(4.9)
	p, err := h.ToPacket(100, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Min != h.Min || g.Max != h.Max || g.Count() != 3 {
		t.Errorf("round trip: %+v", g)
	}
	// Decoded histogram is independent of the packet's backing array.
	g.Bins[0] = 99
	g2, _ := FromPacket(p)
	if g2.Bins[0] == 99 {
		t.Error("FromPacket shares bins with packet")
	}
	bad := packet.MustNew(100, 1, 0, "%d", int64(1))
	if _, err := FromPacket(bad); err == nil {
		t.Error("wrong format: want error")
	}
	corrupt := packet.MustNew(100, 1, 0, PacketFormat, 5.0, 5.0, []int64{1})
	if _, err := FromPacket(corrupt); err == nil {
		t.Error("invalid bounds: want error")
	}
}

func TestFilterMerges(t *testing.T) {
	mk := func(vals ...float64) *packet.Packet {
		h, _ := New(0, 10, 5)
		for _, v := range vals {
			h.Add(v)
		}
		p, _ := h.ToPacket(100, 1, 0)
		return p
	}
	out, err := Filter{}.Transform([]*packet.Packet{mk(1, 2), mk(8), mk(9, 9, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d packets", len(out))
	}
	g, err := FromPacket(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != 6 {
		t.Errorf("merged count = %d, want 6", g.Count())
	}
	if o, err := (Filter{}).Transform(nil); err != nil || o != nil {
		t.Errorf("empty batch: %v %v", o, err)
	}
	// Mismatched configurations propagate the error.
	other, _ := New(0, 20, 5)
	po, _ := other.ToPacket(100, 1, 0)
	if _, err := (Filter{}).Transform([]*packet.Packet{mk(1), po}); err == nil {
		t.Error("mismatched merge: want error")
	}
}

// Property: merging preserves total count and is order-independent.
func TestQuickMergeConservation(t *testing.T) {
	f := func(a, b []uint8) bool {
		ha, _ := New(0, 256, 16)
		hb, _ := New(0, 256, 16)
		for _, x := range a {
			ha.Add(float64(x))
		}
		for _, x := range b {
			hb.Add(float64(x))
		}
		m1, _ := New(0, 256, 16)
		m1.Merge(ha)
		m1.Merge(hb)
		m2, _ := New(0, 256, 16)
		m2.Merge(hb)
		m2.Merge(ha)
		if m1.Count() != int64(len(a)+len(b)) {
			return false
		}
		for i := range m1.Bins {
			if m1.Bins[i] != m2.Bins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge64Histograms(b *testing.B) {
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		h, _ := New(0, 100, 50)
		for j := 0; j < 100; j++ {
			h.Add(float64((i*j)%100) + 0.5)
		}
		p, _ := h.ToPacket(100, 1, 0)
		pkts[i] = p
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Filter{}).Transform(pkts); err != nil {
			b.Fatal(err)
		}
	}
}
