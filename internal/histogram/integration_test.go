package histogram

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/topology"
)

// TestDistributedHistogram pushes per-leaf observations through the merge
// filter on a 3-level overlay and checks the global distribution at the
// front-end: total mass equals the sum of leaf masses, and the median of a
// uniform distribution lands mid-range.
func TestDistributedHistogram(t *testing.T) {
	tree, err := topology.ParseSpec("kary:4^2")
	if err != nil {
		t.Fatal(err)
	}
	const perLeaf = 500
	reg := filter.NewRegistry()
	Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				h, err := New(0, 100, 50)
				if err != nil {
					return err
				}
				rng := rand.New(rand.NewSource(int64(be.Rank())))
				for i := 0; i < perLeaf; i++ {
					h.Add(rng.Float64() * 100)
				}
				out, err := h.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				if err := be.SendPacket(out); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(len(tree.Leaves()) * perLeaf)
	if g.Count() != wantTotal {
		t.Errorf("global count = %d, want %d", g.Count(), wantTotal)
	}
	if med := g.Quantile(0.5); med < 40 || med > 60 {
		t.Errorf("median of uniform[0,100) = %g, want ~50", med)
	}
	// Constant message size: the front-end packet is one histogram, not
	// 16 — payload independent of back-end count.
	if p.EncodedSize() > 1024 {
		t.Errorf("front-end histogram packet is %d bytes; should be bin-count-sized", p.EncodedSize())
	}
}
