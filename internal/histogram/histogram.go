// Package histogram implements the mergeable fixed-bin histogram the paper
// lists among complex tree-based computations ("creating ... data
// histograms"): back-ends histogram local observations, and every
// communication process merges child histograms bin-wise, so the front-end
// receives the global distribution at constant (bin-count) message size
// regardless of the number of back-ends.
package histogram

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/packet"
)

// Histogram is a fixed-range, fixed-width binned counter. Out-of-range
// observations clamp to the boundary bins so mass is never lost.
type Histogram struct {
	Min, Max float64
	Bins     []int64
}

// ErrMismatch reports an attempt to merge histograms with different
// configurations.
var ErrMismatch = errors.New("histogram: mismatched bounds or bin count")

// New creates a histogram over [min, max) with n bins.
func New(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("histogram: bin count %d must be positive", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("histogram: bad range [%g, %g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := int(float64(len(h.Bins)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Count returns the total number of recorded observations.
func (h *Histogram) Count() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Merge adds o's counts into h. Configurations must match.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Min != o.Min || h.Max != o.Max || len(h.Bins) != len(o.Bins) {
		return ErrMismatch
	}
	for i, b := range o.Bins {
		h.Bins[i] += b
	}
	return nil
}

// Quantile returns an estimate of the q'th quantile (0..1) assuming uniform
// mass within bins.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return h.Min
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	width := (h.Max - h.Min) / float64(len(h.Bins))
	for i, b := range h.Bins {
		next := cum + float64(b)
		if next >= target && b > 0 {
			frac := (target - cum) / float64(b)
			return h.Min + width*(float64(i)+frac)
		}
		cum = next
	}
	return h.Max
}

// PacketFormat is the payload layout of histogram packets.
const PacketFormat = "%f %f %ad"

// FilterName is the registry name of the histogram merge filter.
const FilterName = "histogram"

// ToPacket encodes the histogram.
func (h *Histogram) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	return packet.New(tag, streamID, src, PacketFormat, h.Min, h.Max, h.Bins)
}

// FromPacket decodes a histogram packet.
func FromPacket(p *packet.Packet) (*Histogram, error) {
	if p.Format != PacketFormat {
		return nil, fmt.Errorf("histogram: unexpected packet format %q", p.Format)
	}
	min, err := p.Float(0)
	if err != nil {
		return nil, err
	}
	max, err := p.Float(1)
	if err != nil {
		return nil, err
	}
	bins, err := p.IntArray(2)
	if err != nil {
		return nil, err
	}
	if !(min < max) || len(bins) == 0 {
		return nil, fmt.Errorf("histogram: invalid payload [%g,%g) %d bins", min, max, len(bins))
	}
	return &Histogram{Min: min, Max: max, Bins: append([]int64(nil), bins...)}, nil
}

// Filter merges child histograms bin-wise.
type Filter struct{}

// Transform merges the batch into a single histogram packet.
func (Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	acc, err := FromPacket(in[0])
	if err != nil {
		return nil, err
	}
	for _, p := range in[1:] {
		h, err := FromPacket(p)
		if err != nil {
			return nil, err
		}
		if err := acc.Merge(h); err != nil {
			return nil, err
		}
	}
	out, err := acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the histogram filter under FilterName.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterName, func() filter.Transformation { return Filter{} })
}
