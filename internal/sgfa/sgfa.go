// Package sgfa implements the Sub-Graph Folding Algorithm the paper cites
// (Roth & Miller): combining sub-graphs of similar qualitative structure
// into a composite sub-graph so that a tool displaying per-host graphs
// (e.g. Paradyn's search history graphs for thousands of daemons) shows one
// composite per equivalence class of hosts instead of one graph per host.
//
// Graphs here are rooted, labeled trees (call/search graphs). Two graphs
// are qualitatively similar when they contain the same labeled paths; the
// composite is the union of labeled paths, each annotated with the set of
// hosts exhibiting it. Folding is associative and commutative, so it is a
// valid TBON reduction: each communication process folds its children's
// composites and forwards one composite upstream.
package sgfa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/filter"
	"repro/internal/packet"
)

// Graph is a rooted labeled tree described by parallel arrays: node i has
// label Labels[i] and parent Parents[i] (-1 for the root, node 0).
type Graph struct {
	Labels  []string
	Parents []int
}

// NewGraph returns a graph with just a root node.
func NewGraph(rootLabel string) *Graph {
	return &Graph{Labels: []string{rootLabel}, Parents: []int{-1}}
}

// AddNode appends a node with the given label under parent, returning its
// index.
func (g *Graph) AddNode(parent int, label string) int {
	g.Labels = append(g.Labels, label)
	g.Parents = append(g.Parents, parent)
	return len(g.Labels) - 1
}

// paths returns the set of root-to-node label paths, "/"-joined. Every
// node contributes the path ending at it, so structure and labels are both
// captured.
func (g *Graph) paths() []string {
	out := make([]string, len(g.Labels))
	for i := range g.Labels {
		if g.Parents[i] < 0 {
			out[i] = g.Labels[i]
		} else {
			out[i] = out[g.Parents[i]] + "/" + g.Labels[i]
		}
	}
	return out
}

// Signature returns a canonical string identifying the graph's qualitative
// structure: its sorted path set. Graphs with equal signatures fold into
// the same host equivalence class.
func (g *Graph) Signature() string {
	ps := g.paths()
	sort.Strings(ps)
	return strings.Join(ps, "\n")
}

// Composite is a folded set of graphs: the union of labeled paths, each
// with the sorted set of hosts exhibiting it.
type Composite struct {
	hosts map[string][]int64 // path -> host ranks
}

// NewComposite returns an empty composite.
func NewComposite() *Composite { return &Composite{hosts: map[string][]int64{}} }

// AddGraph folds one host's graph into the composite.
func (c *Composite) AddGraph(g *Graph, host int64) {
	for _, p := range g.paths() {
		c.addHost(p, host)
	}
}

func (c *Composite) addHost(path string, host int64) {
	for _, h := range c.hosts[path] {
		if h == host {
			return
		}
	}
	c.hosts[path] = append(c.hosts[path], host)
}

// Merge folds o into c.
func (c *Composite) Merge(o *Composite) {
	for p, hs := range o.hosts {
		for _, h := range hs {
			c.addHost(p, h)
		}
	}
}

// NumPaths returns the number of distinct labeled paths.
func (c *Composite) NumPaths() int { return len(c.hosts) }

// Paths returns the distinct labeled paths, sorted.
func (c *Composite) Paths() []string {
	ps := make([]string, 0, len(c.hosts))
	for p := range c.hosts {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// Hosts returns the sorted hosts exhibiting a path.
func (c *Composite) Hosts(path string) []int64 {
	hs := append([]int64(nil), c.hosts[path]...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// HostClasses groups hosts by identical path sets — the equivalence
// classes the folded display presents. It returns class signature → sorted
// hosts.
func (c *Composite) HostClasses() map[string][]int64 {
	perHost := map[int64][]string{}
	for p, hs := range c.hosts {
		for _, h := range hs {
			perHost[h] = append(perHost[h], p)
		}
	}
	classes := map[string][]int64{}
	for h, ps := range perHost {
		sort.Strings(ps)
		key := strings.Join(ps, "\n")
		classes[key] = append(classes[key], h)
	}
	for k := range classes {
		hs := classes[k]
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		classes[k] = hs
	}
	return classes
}

// PacketFormat is the payload layout of composite packets: each path is
// paired (by index) with a comma-separated host list. Host lists are
// encoded as strings because payload arrays are flat.
const PacketFormat = "%as %as"

// FilterName is the registry name of the folding filter.
const FilterName = "sgfa"

// ToPacket encodes the composite.
func (c *Composite) ToPacket(tag int32, streamID uint32, src packet.Rank) (*packet.Packet, error) {
	paths := c.Paths()
	hostStrs := make([]string, len(paths))
	for i, p := range paths {
		var sb strings.Builder
		for j, h := range c.Hosts(p) {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", h)
		}
		hostStrs[i] = sb.String()
	}
	return packet.New(tag, streamID, src, PacketFormat, paths, hostStrs)
}

// FromPacket decodes a composite packet.
func FromPacket(p *packet.Packet) (*Composite, error) {
	if p.Format != PacketFormat {
		return nil, fmt.Errorf("sgfa: unexpected packet format %q", p.Format)
	}
	paths, err := p.StringArray(0)
	if err != nil {
		return nil, err
	}
	hostStrs, err := p.StringArray(1)
	if err != nil {
		return nil, err
	}
	if len(paths) != len(hostStrs) {
		return nil, fmt.Errorf("sgfa: %d paths but %d host lists", len(paths), len(hostStrs))
	}
	c := NewComposite()
	for i, path := range paths {
		if hostStrs[i] == "" {
			continue
		}
		for _, f := range strings.Split(hostStrs[i], ",") {
			var h int64
			if _, err := fmt.Sscanf(f, "%d", &h); err != nil {
				return nil, fmt.Errorf("sgfa: bad host %q: %w", f, err)
			}
			c.addHost(path, h)
		}
	}
	return c, nil
}

// Filter folds child composites into one composite per batch.
type Filter struct{}

// Transform merges the batch.
func (Filter) Transform(in []*packet.Packet) ([]*packet.Packet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	acc := NewComposite()
	for _, p := range in {
		c, err := FromPacket(p)
		if err != nil {
			return nil, err
		}
		acc.Merge(c)
	}
	out, err := acc.ToPacket(in[0].Tag, in[0].StreamID, packet.UnknownRank)
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{out}, nil
}

// Register installs the folding filter under FilterName.
func Register(reg *filter.Registry) {
	reg.RegisterTransformation(FilterName, func() filter.Transformation { return Filter{} })
}
