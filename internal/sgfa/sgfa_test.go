package sgfa

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

// chainGraph builds main -> f1 -> f2 -> ... (a linear call chain).
func chainGraph(labels ...string) *Graph {
	g := NewGraph("main")
	parent := 0
	for _, l := range labels {
		parent = g.AddNode(parent, l)
	}
	return g
}

func TestSignature(t *testing.T) {
	a := chainGraph("compute", "mpi_send")
	b := chainGraph("compute", "mpi_send")
	c := chainGraph("compute", "mpi_recv")
	if a.Signature() != b.Signature() {
		t.Error("identical graphs have different signatures")
	}
	if a.Signature() == c.Signature() {
		t.Error("different graphs share a signature")
	}
	// Sibling order must not matter.
	d := NewGraph("main")
	d.AddNode(0, "x")
	d.AddNode(0, "y")
	e := NewGraph("main")
	e.AddNode(0, "y")
	e.AddNode(0, "x")
	if d.Signature() != e.Signature() {
		t.Error("sibling order changed the signature")
	}
}

func TestCompositeFolding(t *testing.T) {
	c := NewComposite()
	c.AddGraph(chainGraph("compute", "mpi_send"), 1)
	c.AddGraph(chainGraph("compute", "mpi_send"), 2)
	c.AddGraph(chainGraph("compute", "mpi_recv"), 3)
	// Paths: main, main/compute, main/compute/mpi_send, main/compute/mpi_recv.
	if c.NumPaths() != 4 {
		t.Errorf("NumPaths = %d, want 4: %v", c.NumPaths(), c.Paths())
	}
	hs := c.Hosts("main/compute/mpi_send")
	if len(hs) != 2 || hs[0] != 1 || hs[1] != 2 {
		t.Errorf("mpi_send hosts = %v", hs)
	}
	if got := c.Hosts("main"); len(got) != 3 {
		t.Errorf("main hosts = %v", got)
	}
	classes := c.HostClasses()
	if len(classes) != 2 {
		t.Fatalf("host classes = %d, want 2", len(classes))
	}
	// Idempotent re-add.
	c.AddGraph(chainGraph("compute", "mpi_send"), 1)
	if len(c.Hosts("main/compute/mpi_send")) != 2 {
		t.Error("re-adding a host duplicated it")
	}
}

func TestMergeAssociativity(t *testing.T) {
	g1 := chainGraph("a")
	g2 := chainGraph("b")
	g3 := chainGraph("a", "c")

	// (1+2)+3 == 1+(2+3)
	left := NewComposite()
	l12 := NewComposite()
	l12.AddGraph(g1, 1)
	l12.AddGraph(g2, 2)
	left.Merge(l12)
	l3 := NewComposite()
	l3.AddGraph(g3, 3)
	left.Merge(l3)

	right := NewComposite()
	r23 := NewComposite()
	r23.AddGraph(g2, 2)
	r23.AddGraph(g3, 3)
	r1 := NewComposite()
	r1.AddGraph(g1, 1)
	right.Merge(r1)
	right.Merge(r23)

	if len(left.Paths()) != len(right.Paths()) {
		t.Fatalf("path sets differ: %v vs %v", left.Paths(), right.Paths())
	}
	for _, p := range left.Paths() {
		lh, rh := left.Hosts(p), right.Hosts(p)
		if len(lh) != len(rh) {
			t.Errorf("path %q hosts differ: %v vs %v", p, lh, rh)
			continue
		}
		for i := range lh {
			if lh[i] != rh[i] {
				t.Errorf("path %q hosts differ: %v vs %v", p, lh, rh)
				break
			}
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	c := NewComposite()
	c.AddGraph(chainGraph("x", "y"), 4)
	c.AddGraph(chainGraph("z"), 9)
	p, err := c.ToPacket(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPaths() != c.NumPaths() {
		t.Errorf("round trip paths: %v vs %v", g.Paths(), c.Paths())
	}
	for _, path := range c.Paths() {
		if len(g.Hosts(path)) != len(c.Hosts(path)) {
			t.Errorf("path %q hosts lost", path)
		}
	}
	bad := packet.MustNew(100, 1, 0, "%d", int64(1))
	if _, err := FromPacket(bad); err == nil {
		t.Error("wrong format: want error")
	}
	mismatch := packet.MustNew(100, 1, 0, PacketFormat, []string{"a", "b"}, []string{"1"})
	if _, err := FromPacket(mismatch); err == nil {
		t.Error("length mismatch: want error")
	}
	garbageHost := packet.MustNew(100, 1, 0, PacketFormat, []string{"a"}, []string{"notanumber"})
	if _, err := FromPacket(garbageHost); err == nil {
		t.Error("garbage host: want error")
	}
}

// TestThousandNodeFolding reproduces the paper's claim that SGFA-style
// folding works at thousand-node scale: 1024 back-ends, each exhibiting one
// of 4 qualitative graph structures, fold to 4 host equivalence classes at
// the front-end.  [T-SGFA]
func TestThousandNodeFolding(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node overlay in -short mode")
	}
	tree, err := topology.ParseSpec("kary:4^5") // 1024 leaves
	if err != nil {
		t.Fatal(err)
	}
	shapes := []*Graph{
		chainGraph("compute", "mpi_send"),
		chainGraph("compute", "mpi_recv"),
		chainGraph("io", "write"),
		chainGraph("io", "read", "parse"),
	}
	reg := filter.NewRegistry()
	Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				comp := NewComposite()
				comp.AddGraph(shapes[int(be.Rank())%len(shapes)], int64(be.Rank()))
				out, err := comp.ToPacket(p.Tag, p.StreamID, be.Rank())
				if err != nil {
					return err
				}
				if err := be.SendPacket(out); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(100, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := FromPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	classes := comp.HostClasses()
	if len(classes) != len(shapes) {
		t.Fatalf("folded to %d classes, want %d", len(classes), len(shapes))
	}
	total := 0
	for _, hosts := range classes {
		total += len(hosts)
	}
	if total != 1024 {
		t.Errorf("classes cover %d hosts, want 1024", total)
	}
}

// Property: folding N identical graphs yields one class containing all hosts.
func TestQuickIdenticalGraphsOneClass(t *testing.T) {
	f := func(nRaw uint8, depth uint8) bool {
		n := int(nRaw%20) + 1
		labels := make([]string, depth%5+1)
		for i := range labels {
			labels[i] = fmt.Sprintf("f%d", i)
		}
		g := chainGraph(labels...)
		c := NewComposite()
		for h := 0; h < n; h++ {
			c.AddGraph(g, int64(h))
		}
		classes := c.HostClasses()
		if len(classes) != 1 {
			return false
		}
		for _, hosts := range classes {
			if len(hosts) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFold1024(b *testing.B) {
	shapes := []*Graph{
		chainGraph("compute", "mpi_send"),
		chainGraph("compute", "mpi_recv"),
		chainGraph("io", "write"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewComposite()
		for h := 0; h < 1024; h++ {
			c.AddGraph(shapes[h%len(shapes)], int64(h))
		}
		if len(c.HostClasses()) != 3 {
			b.Fatal("bad fold")
		}
	}
}
