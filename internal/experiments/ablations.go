package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/meanshift"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// FanOutSweepConfig explores the paper's open question — "whether even
// deeper trees with limited fan-outs would yield a constant execution time
// as the scale increases" — by fixing the back-end count and varying the
// fan-out (and therefore the depth) of the tree.
type FanOutSweepConfig struct {
	// Leaves is the fixed back-end count.
	Leaves int
	// FanOuts are the per-run fan-out bounds.
	FanOuts []int
	// Fig4 supplies the data/network model (Scales is ignored).
	Fig4 Fig4Config
}

// DefaultFanOutSweepConfig fixes 256 back-ends.
func DefaultFanOutSweepConfig() FanOutSweepConfig {
	return FanOutSweepConfig{
		Leaves:  256,
		FanOuts: []int{2, 4, 8, 16, 64, 256},
		Fig4:    DefaultFig4Config(),
	}
}

// FanOutRow is one sweep position.
type FanOutRow struct {
	FanOut   int
	Depth    int
	Internal int
	Makespan time.Duration
}

// RunFanOutSweep reproduces the deep-tree ablation using the Figure 4
// machinery at a fixed scale.
func RunFanOutSweep(cfg FanOutSweepConfig) ([]FanOutRow, error) {
	if cfg.Leaves == 0 {
		cfg = DefaultFanOutSweepConfig()
	}
	centers := meanshift.DefaultCenters(cfg.Fig4.Clusters, cfg.Fig4.Field)
	leafData := make([][]meanshift.Point, cfg.Leaves)
	for i := range leafData {
		leafData[i] = meanshift.Generate(meanshift.GenParams{
			Centers:          centers,
			Spread:           cfg.Fig4.Spread,
			PointsPerCluster: cfg.Fig4.PointsPerCluster,
			CenterJitter:     cfg.Fig4.Jitter,
			Seed:             cfg.Fig4.Seed + int64(i),
		})
	}
	var rows []FanOutRow
	for _, f := range cfg.FanOuts {
		var tree *topology.Tree
		var err error
		if f >= cfg.Leaves {
			tree, err = topology.Flat(cfg.Leaves)
		} else {
			tree, err = topology.Balanced(cfg.Leaves, f)
		}
		if err != nil {
			return nil, err
		}
		makespan, _, err := distributedMakespan(tree, leafData, cfg.Fig4)
		if err != nil {
			return nil, fmt.Errorf("experiments: fan-out %d: %w", f, err)
		}
		s := tree.Stats()
		rows = append(rows, FanOutRow{
			FanOut:   s.MaxFanOut,
			Depth:    s.Depth,
			Internal: s.Internal,
			Makespan: makespan,
		})
	}
	return rows, nil
}

// FanOutTable renders the sweep.
func FanOutTable(leaves int, rows []FanOutRow) string {
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-FANOUT — %d back-ends, varying fan-out (paper §3.2 open question)", leaves),
		"fan-out", "depth", "internal-nodes", "makespan")
	for _, r := range rows {
		tb.AddRow(r.FanOut, r.Depth, r.Internal, r.Makespan)
	}
	return tb.String()
}

// SyncPolicyRow compares synchronization policies on one overlay.
type SyncPolicyRow struct {
	Policy     string
	Deliveries int
	Latency    time.Duration
}

// RunSyncPolicyAblation measures how the three built-in synchronization
// policies trade front-end deliveries against latency on a real overlay
// where one back-end is slow: WaitForAll delays everything to the
// straggler, TimeOut bounds the wait, Null forwards eagerly.
func RunSyncPolicyAblation(leaves int, straggle time.Duration) ([]SyncPolicyRow, error) {
	if leaves <= 0 {
		leaves = 16
	}
	var rows []SyncPolicyRow
	for _, policy := range []string{"waitforall", "timeout", "nullsync"} {
		tree, err := topology.Balanced(leaves, 4)
		if err != nil {
			return nil, err
		}
		// Timeout windows cascade once per tree level, so the window must
		// be well under straggle/depth for the policy to beat WaitForAll.
		reg := filter.NewRegistry()
		reg.RegisterSynchronizer("timeout", func() filter.Synchronizer {
			return filter.NewTimeOut(straggle / 4)
		})
		nw, err := core.NewNetwork(core.Config{
			Topology: tree,
			Registry: reg,
			OnBackEnd: func(be *core.BackEnd) error {
				for {
					p, err := be.Recv()
					if err != nil {
						return nil
					}
					if be.Rank() == tree.Leaves()[0] {
						time.Sleep(straggle) // the straggler
					}
					if err := be.Send(p.StreamID, p.Tag, "%f", 1.0); err != nil {
						return nil
					}
				}
			},
		})
		if err != nil {
			return nil, err
		}
		st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: policy})
		if err != nil {
			nw.Shutdown()
			return nil, err
		}
		start := time.Now()
		if err := st.Multicast(100, ""); err != nil {
			nw.Shutdown()
			return nil, err
		}
		// First delivery latency, then drain briefly to count deliveries.
		first, err := st.RecvTimeout(30 * time.Second)
		if err != nil {
			nw.Shutdown()
			return nil, fmt.Errorf("policy %s: %w", policy, err)
		}
		latency := time.Since(start)
		deliveries := 1
		_ = first
		deadline := time.Now().Add(2 * straggle)
		for time.Now().Before(deadline) {
			if _, err := st.RecvTimeout(50 * time.Millisecond); err != nil {
				continue
			}
			deliveries++
		}
		nw.Shutdown()
		rows = append(rows, SyncPolicyRow{Policy: policy, Deliveries: deliveries, Latency: latency})
	}
	return rows, nil
}

// SyncPolicyTable renders the ablation.
func SyncPolicyTable(rows []SyncPolicyRow) string {
	tb := metrics.NewTable(
		"ABLATE-SYNC — synchronization policy vs first-result latency (one straggling back-end)",
		"policy", "fe-deliveries", "first-result latency")
	for _, r := range rows {
		tb.AddRow(r.Policy, r.Deliveries, r.Latency)
	}
	return tb.String()
}

// TransportRow compares the chan and TCP substrates.
type TransportRow struct {
	Transport string
	RoundTrip time.Duration
}

// RunTransportAblation measures one reduction round (multicast + reduced
// response) on each transport over the same topology.
func RunTransportAblation(leaves, rounds int) ([]TransportRow, error) {
	if leaves <= 0 {
		leaves = 32
	}
	if rounds <= 0 {
		rounds = 20
	}
	var rows []TransportRow
	for _, kind := range []struct {
		name string
		k    core.TransportKind
	}{{"chan", core.ChanTransport}, {"tcp", core.TCPTransport}} {
		tree, err := topology.Balanced(leaves, 8)
		if err != nil {
			return nil, err
		}
		nw, err := core.NewNetwork(core.Config{
			Topology:  tree,
			Transport: kind.k,
			OnBackEnd: func(be *core.BackEnd) error {
				for {
					p, err := be.Recv()
					if err != nil {
						return nil
					}
					if err := be.Send(p.StreamID, p.Tag, "%f", 1.0); err != nil {
						return nil
					}
				}
			},
		})
		if err != nil {
			return nil, err
		}
		st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
		if err != nil {
			nw.Shutdown()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := st.Multicast(100, ""); err != nil {
				nw.Shutdown()
				return nil, err
			}
			if _, err := st.RecvTimeout(60 * time.Second); err != nil {
				nw.Shutdown()
				return nil, fmt.Errorf("%s round %d: %w", kind.name, i, err)
			}
		}
		per := time.Since(start) / time.Duration(rounds)
		nw.Shutdown()
		rows = append(rows, TransportRow{Transport: kind.name, RoundTrip: per})
	}
	return rows, nil
}

// TransportTable renders the ablation.
func TransportTable(leaves int, rows []TransportRow) string {
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-TRANSPORT — reduction round over %d back-ends", leaves),
		"transport", "round latency")
	for _, r := range rows {
		tb.AddRow(r.Transport, r.RoundTrip)
	}
	return tb.String()
}
