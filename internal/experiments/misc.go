package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/sgfa"
	"repro/internal/topology"
)

// OverheadRow is one line of the internal-node overhead table (§3.2).
type OverheadRow struct {
	BackEnds int
	FanOut   int
	Internal int
	Overhead float64 // Internal / BackEnds
}

// RunOverhead reproduces T-OVERHEAD, the paper's node-cost arithmetic:
// fan-out 16 needs 16 internal nodes (6.25%) for 256 back-ends and 272
// (6.6%) for 4096. Pure topology computation — the numbers must match
// exactly.
func RunOverhead() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, c := range []struct{ fan, depth int }{{16, 2}, {16, 3}} {
		tr, err := topology.KAry(c.fan, c.depth)
		if err != nil {
			return nil, err
		}
		s := tr.Stats()
		rows = append(rows, OverheadRow{
			BackEnds: s.Leaves,
			FanOut:   c.fan,
			Internal: s.Internal,
			Overhead: s.Overhead,
		})
	}
	return rows, nil
}

// OverheadTable renders the rows.
func OverheadTable(rows []OverheadRow) string {
	tb := metrics.NewTable(
		"T-OVERHEAD — internal nodes needed to connect N back-ends (paper §3.2)",
		"back-ends", "fan-out", "internal", "overhead")
	for _, r := range rows {
		tb.AddRow(r.BackEnds, r.FanOut, r.Internal, fmt.Sprintf("%.2f%%", 100*r.Overhead))
	}
	return tb.String()
}

// SGFAConfig parameterizes the thousand-node sub-graph folding run.
type SGFAConfig struct {
	// Leaves is the back-end count (paper: thousands).
	Leaves int
	// FanOut is the tree fan-out.
	FanOut int
	// Shapes is the number of distinct qualitative graph structures.
	Shapes int
	// Depth is the per-graph call-chain depth.
	Depth int
}

// DefaultSGFAConfig runs 1024 back-ends with 4 structures.
func DefaultSGFAConfig() SGFAConfig {
	return SGFAConfig{Leaves: 1024, FanOut: 8, Shapes: 4, Depth: 4}
}

// SGFAResult summarizes the fold.
type SGFAResult struct {
	Leaves      int
	Classes     int
	LeafBytes   int64 // payload bytes entering the tree at the leaves
	RootBytes   int64 // payload bytes arriving at the front-end
	Reduction   float64
	WallTime    time.Duration
	PacketsUp   int64
	FrontEndIn  int
	FoldCorrect bool
}

// RunSGFA reproduces T-SGFA on the real overlay: every back-end submits its
// host's call graph; the folding filter merges structurally similar
// sub-graphs level by level; the front-end receives one composite covering
// every host.
func RunSGFA(cfg SGFAConfig) (*SGFAResult, error) {
	if cfg.Leaves <= 0 {
		cfg = DefaultSGFAConfig()
	}
	tree, err := topology.Balanced(cfg.Leaves, cfg.FanOut)
	if err != nil {
		return nil, err
	}
	shapes := make([]*sgfa.Graph, cfg.Shapes)
	for i := range shapes {
		g := sgfa.NewGraph("main")
		parent := 0
		for d := 0; d < cfg.Depth; d++ {
			parent = g.AddNode(parent, fmt.Sprintf("f%d_%d", i, d))
		}
		shapes[i] = g
	}

	var leafBytes int64
	reg := filter.NewRegistry()
	sgfa.Register(reg)
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Registry: reg,
		OnBackEnd: func(be *core.BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			comp := sgfa.NewComposite()
			comp.AddGraph(shapes[int(be.Rank())%len(shapes)], int64(be.Rank()))
			out, err := comp.ToPacket(p.Tag, p.StreamID, be.Rank())
			if err != nil {
				return err
			}
			if err := be.SendPacket(out); err != nil {
				return nil
			}
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer nw.Shutdown()

	// Leaf payload accounting (recomputed deterministically).
	for _, l := range tree.Leaves() {
		comp := sgfa.NewComposite()
		comp.AddGraph(shapes[int(l)%len(shapes)], int64(l))
		p, err := comp.ToPacket(100, 1, l)
		if err != nil {
			return nil, err
		}
		leafBytes += int64(p.EncodedSize())
	}

	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  sgfa.FilterName,
		Synchronization: "waitforall",
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := st.Multicast(100, ""); err != nil {
		return nil, err
	}
	p, err := st.RecvTimeout(120 * time.Second)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	comp, err := sgfa.FromPacket(p)
	if err != nil {
		return nil, err
	}
	classes := comp.HostClasses()
	covered := 0
	for _, hosts := range classes {
		covered += len(hosts)
	}
	res := &SGFAResult{
		Leaves:      cfg.Leaves,
		Classes:     len(classes),
		LeafBytes:   leafBytes,
		RootBytes:   int64(p.EncodedSize()),
		WallTime:    wall,
		PacketsUp:   nw.Metrics().PacketsUp.Load(),
		FrontEndIn:  1,
		FoldCorrect: len(classes) == cfg.Shapes && covered == cfg.Leaves,
	}
	if res.LeafBytes > 0 {
		res.Reduction = float64(res.LeafBytes) / float64(res.RootBytes)
	}
	return res, nil
}

// SGFATable renders the result.
func SGFATable(r *SGFAResult) string {
	tb := metrics.NewTable(
		fmt.Sprintf("T-SGFA — sub-graph folding at %d back-ends (paper: thousand-node runs)", r.Leaves),
		"metric", "value")
	tb.AddRow("host equivalence classes", r.Classes)
	tb.AddRow("leaf payload bytes", r.LeafBytes)
	tb.AddRow("front-end payload bytes", r.RootBytes)
	tb.AddRow("payload reduction", fmt.Sprintf("%.1fx", r.Reduction))
	tb.AddRow("wall time", r.WallTime)
	tb.AddRow("fold correct", r.FoldCorrect)
	return tb.String()
}
