package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// RecoveryConfig parameterizes the recovery-latency-vs-tree-shape study
// (T-RECOVERY): how long the overlay takes to notice and repair the loss
// of a mid-level communication process, as a function of organization.
type RecoveryConfig struct {
	// Shapes are the overlay organizations under test (topology specs).
	Shapes []string
	// Transports are the link substrates under test; empty means chan
	// and TCP (live rewiring is fabric-agnostic, so both are measured).
	Transports []core.TransportKind
	// HeartbeatPeriod and Timeout parameterize the failure detector.
	HeartbeatPeriod time.Duration
	Timeout         time.Duration
	// Net is the link-cost model used for the modeled (cluster-scale)
	// reconnection cost, as in the paper's experiments.
	Net simnet.Model
}

// transportName labels a substrate in tables and benchmarks.
func transportName(kind core.TransportKind) string {
	if kind == core.TCPTransport {
		return "tcp"
	}
	return "chan"
}

// DefaultRecoveryConfig covers the paper's organization space — flat-ish,
// balanced k-ary at several fan-outs, and skewed k-nomial — at
// laptop-runnable size.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Shapes: []string{
			"kary:2^3", "kary:4^2", "kary:8^2", "kary:2^5",
			"balanced:64,4", "knomial:2^5",
		},
		Transports:      []core.TransportKind{core.ChanTransport, core.TCPTransport},
		HeartbeatPeriod: 5 * time.Millisecond,
		Timeout:         50 * time.Millisecond,
		Net:             simnet.GigE,
	}
}

// RecoveryRow is one (shape, transport) measurement.
type RecoveryRow struct {
	Shape     string
	Transport string
	Nodes     int
	Leaves    int
	Depth     int
	Victim    core.Rank
	Orphans   int
	// Detection is the observed silence when the detector declared the
	// failure; Rewire the live reconfiguration time; Total their sum.
	Detection time.Duration
	Rewire    time.Duration
	Total     time.Duration
	// ModeledReconnect adds the simnet cost of the recovery's network
	// traffic at cluster scale: one link re-establishment round-trip per
	// orphan plus the re-announcement of the stream into each orphan
	// subtree.
	ModeledReconnect time.Duration
	// Correct records that the post-recovery reduction still produced the
	// full-membership answer.
	Correct bool
}

// RunRecovery measures, per tree shape, the end-to-end latency of live
// failure recovery: a mid-level communication process is crashed under an
// active reduction stream, the heartbeat detector declares it, the
// reconfiguration engine adopts the orphans, and the stream must produce
// the full-membership sum again.
func RunRecovery(cfg RecoveryConfig) ([]RecoveryRow, error) {
	if len(cfg.Shapes) == 0 {
		cfg = DefaultRecoveryConfig()
	}
	if len(cfg.Transports) == 0 {
		cfg.Transports = []core.TransportKind{core.ChanTransport, core.TCPTransport}
	}
	var rows []RecoveryRow
	for _, tr := range cfg.Transports {
		for _, spec := range cfg.Shapes {
			row, err := recoverOneShape(cfg, spec, tr)
			if err != nil {
				return nil, fmt.Errorf("experiments: recovery %s/%s: %w", transportName(tr), spec, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func recoverOneShape(cfg RecoveryConfig, spec string, tr core.TransportKind) (RecoveryRow, error) {
	tree, err := topology.ParseSpec(spec)
	if err != nil {
		return RecoveryRow{}, err
	}
	internals := tree.InternalNodes()
	if len(internals) == 0 {
		return RecoveryRow{}, fmt.Errorf("shape has no internal communication process to kill")
	}
	victim := internals[len(internals)/2]

	nw, err := core.NewNetwork(core.Config{
		Topology:        tree,
		Transport:       tr,
		Recoverable:     true,
		HeartbeatPeriod: cfg.HeartbeatPeriod,
		OnBackEnd: func(be *core.BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				_ = be.Send(p.StreamID, p.Tag, "%f", 1.0)
			}
		},
	})
	if err != nil {
		return RecoveryRow{}, err
	}
	defer nw.Shutdown()
	mgr, err := recovery.New(nw, recovery.Config{Timeout: cfg.Timeout})
	if err != nil {
		return RecoveryRow{}, err
	}
	if err := mgr.Start(); err != nil {
		return RecoveryRow{}, err
	}
	defer mgr.Stop()

	st, err := nw.NewStream(core.StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		return RecoveryRow{}, err
	}
	want := float64(len(tree.Leaves()))
	round := func() (float64, error) {
		if err := st.Multicast(100, ""); err != nil {
			return 0, err
		}
		p, err := st.RecvTimeout(30 * time.Second)
		if err != nil {
			return 0, err
		}
		return p.Float(0)
	}
	// Warm the stream, then crash the victim and wait out the detector.
	if v, err := round(); err != nil || v != want {
		return RecoveryRow{}, fmt.Errorf("warmup round: sum %v, err %v", v, err)
	}
	if err := nw.Kill(victim); err != nil {
		return RecoveryRow{}, err
	}
	deadline := time.Now().Add(60 * time.Second)
	for len(mgr.Reports()) == 0 {
		if time.Now().After(deadline) {
			return RecoveryRow{}, fmt.Errorf("detector never declared rank %d", victim)
		}
		time.Sleep(cfg.HeartbeatPeriod)
	}
	rep := mgr.Reports()[0]
	v, err := round()
	if err != nil {
		return RecoveryRow{}, fmt.Errorf("post-recovery round: %w", err)
	}

	// Modeled cluster-scale reconnection cost: per orphan, a connection
	// re-establishment round-trip plus the replay of the stream
	// announcement into its subtree (one ~96-byte control frame per hop is
	// dominated by the first hop; deeper replays overlap).
	var modeled time.Duration
	for range rep.Orphans {
		modeled += 2*cfg.Net.TransferTime(64) + cfg.Net.TransferTime(96)
	}
	stats := tree.Stats()
	return RecoveryRow{
		Shape:            spec,
		Transport:        transportName(tr),
		Nodes:            stats.Nodes,
		Leaves:           stats.Leaves,
		Depth:            stats.Depth,
		Victim:           victim,
		Orphans:          len(rep.Orphans),
		Detection:        rep.Detection,
		Rewire:           rep.Rewire,
		Total:            rep.Total,
		ModeledReconnect: modeled,
		Correct:          v == want,
	}, nil
}

// RecoveryTable renders the study.
func RecoveryTable(rows []RecoveryRow) string {
	tb := metrics.NewTable(
		"T-RECOVERY — Live failure recovery latency vs. tree shape and fabric",
		"shape", "fabric", "nodes", "leaves", "depth", "victim", "orphans",
		"detect", "rewire", "total", "modeled-net", "correct")
	for _, r := range rows {
		tb.AddRow(r.Shape, r.Transport, r.Nodes, r.Leaves, r.Depth, int(r.Victim), r.Orphans,
			r.Detection, r.Rewire, r.Total, r.ModeledReconnect, r.Correct)
	}
	return tb.String()
}
