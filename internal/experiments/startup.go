package experiments

import (
	"fmt"
	"time"

	"repro/internal/clockskew"
	"repro/internal/eqclass"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// StartupConfig parameterizes the Paradyn-startup reproduction (§2.2's
// prose result: 512 daemons, >60 s flat startup cut to <20 s by the
// tree-based clock-skew and equivalence-class filters — a 3.4x speedup).
type StartupConfig struct {
	// Daemons is the back-end count (paper: 512).
	Daemons int
	// FanOut is the tree fan-out (paper used modest fan-outs; default 8).
	FanOut int
	// ConnectCost is the per-process connect/spawn cost the starting
	// entity pays for each direct child (serial per parent).
	ConnectCost time.Duration
	// DaemonInit is the daemons' own initialization time (parallel across
	// daemons; a fixed floor for both organizations).
	DaemonInit time.Duration
	// Probes is the number of clock-skew probe exchanges per edge.
	Probes int
	// ProbeRTT is the base probe round-trip time.
	ProbeRTT time.Duration
	// ProbeJitter is the probe delay jitter bound.
	ProbeJitter time.Duration
	// ReportClasses is the number of distinct equivalence classes the
	// daemons' startup reports fall into (platforms, binaries, ...).
	ReportClasses int
	// ReportCost is the front-end/filter cost to parse one report message.
	ReportCost time.Duration
	// Net models report transfer costs.
	Net simnet.Model
	// Seed drives the synthetic skews.
	Seed int64
}

// DefaultStartupConfig mirrors the paper's 512-daemon experiment.
func DefaultStartupConfig() StartupConfig {
	return StartupConfig{
		Daemons:       512,
		FanOut:        8,
		ConnectCost:   115 * time.Millisecond,
		DaemonInit:    15 * time.Second,
		Probes:        4,
		ProbeRTT:      time.Millisecond,
		ProbeJitter:   200 * time.Microsecond,
		ReportClasses: 8,
		ReportCost:    2 * time.Millisecond,
		Net:           simnet.GigE,
		Seed:          7,
	}
}

// StartupResult reports both organizations' startup time and its phases.
type StartupResult struct {
	Daemons int

	FlatConnect, FlatSkew, FlatReports, FlatTotal time.Duration
	TreeConnect, TreeSkew, TreeReports, TreeTotal time.Duration

	// SkewErrFlat/Tree are the worst-case clock-skew estimation errors, to
	// show the tree's composed estimates remain accurate.
	SkewErrFlat, SkewErrTree time.Duration

	// ReportMsgsFlat/Tree count report messages the front-end processes;
	// suppression is what shrinks the tree number.
	ReportMsgsFlat, ReportMsgsTree int

	Speedup float64
}

// RunStartup reproduces T-STARTUP. The flat organization connects to and
// probes every daemon serially from the front-end and parses one report
// per daemon; the tree organization spawns/probes level-parallel and the
// eqclass filter suppresses duplicate reports level by level.
func RunStartup(cfg StartupConfig) (*StartupResult, error) {
	if cfg.Daemons <= 0 {
		cfg = DefaultStartupConfig()
	}
	tree, err := topology.Balanced(cfg.Daemons, cfg.FanOut)
	if err != nil {
		return nil, err
	}
	oracle := clockskew.NewOracle(tree, 100*time.Millisecond, cfg.ProbeRTT, cfg.ProbeJitter, cfg.Seed)

	res := &StartupResult{Daemons: cfg.Daemons}

	// --- Flat organization -------------------------------------------------
	leaves := tree.Leaves()
	res.FlatConnect = time.Duration(cfg.Daemons) * cfg.ConnectCost
	flatSkews, flatProbe := oracle.DetectFlat(leaves, cfg.Probes)
	res.FlatSkew = flatProbe
	res.ReportMsgsFlat = cfg.Daemons
	res.FlatReports = time.Duration(cfg.Daemons)*cfg.ReportCost +
		time.Duration(cfg.Daemons)*cfg.Net.TransferTime(256)
	res.FlatTotal = maxDur(cfg.DaemonInit, res.FlatConnect+res.FlatSkew) + res.FlatReports

	// --- Tree organization -------------------------------------------------
	// Spawn is serial per parent, parallel across parents: critical path.
	res.TreeConnect = spawnCriticalPath(tree, cfg.ConnectCost)
	treeSkews, treeProbe := oracle.DetectTree(tree, cfg.Probes)
	res.TreeSkew = treeProbe
	// Equivalence-class suppression: simulate the per-level report merge to
	// count the messages each level forwards.
	msgs, reportPath := reportPhase(tree, cfg)
	res.ReportMsgsTree = msgs
	res.TreeReports = reportPath
	res.TreeTotal = maxDur(cfg.DaemonInit, res.TreeConnect+res.TreeSkew) + res.TreeReports

	// Estimation accuracy.
	for _, l := range leaves {
		if e := absDur(flatSkews[l] - oracle.True[l]); e > res.SkewErrFlat {
			res.SkewErrFlat = e
		}
		if e := absDur(treeSkews[l] - oracle.True[l]); e > res.SkewErrTree {
			res.SkewErrTree = e
		}
	}
	res.Speedup = float64(res.FlatTotal) / float64(res.TreeTotal)
	return res, nil
}

// spawnCriticalPath models top-down tree instantiation: every parent
// spawns/connects its children serially; levels proceed in parallel.
func spawnCriticalPath(tree *topology.Tree, per time.Duration) time.Duration {
	var walk func(r topology.Rank) time.Duration
	walk = func(r topology.Rank) time.Duration {
		children := tree.Children(r)
		own := time.Duration(len(children)) * per
		var worst time.Duration
		for _, c := range children {
			if d := walk(c); d > worst {
				worst = d
			}
		}
		return own + worst
	}
	return walk(0)
}

// reportPhase pushes one startup report per daemon through real eqclass
// filters at every node and returns the number of messages the front-end
// processes plus the critical-path report time.
func reportPhase(tree *topology.Tree, cfg StartupConfig) (int, time.Duration) {
	// Each node's output packets and completion time.
	type out struct {
		pkts     []*packet.Packet
		finished time.Duration
	}
	results := map[topology.Rank]out{}
	for _, l := range tree.Leaves() {
		s := eqclass.NewSet()
		s.Add(fmt.Sprintf("class-%d", int(l)%cfg.ReportClasses), int64(l))
		p, err := s.ToPacket(100, 1, l)
		if err != nil {
			continue
		}
		results[l] = out{pkts: []*packet.Packet{p}, finished: 0}
	}
	maxLevel := 0
	for r := 0; r < tree.Len(); r++ {
		if lvl := tree.Node(topology.Rank(r)).Level; lvl > maxLevel {
			maxLevel = lvl
		}
	}
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		for r := 0; r < tree.Len(); r++ {
			n := tree.Node(topology.Rank(r))
			if n.Level != lvl || n.IsLeaf() {
				continue
			}
			f := eqclass.NewFilter()
			var in []*packet.Packet
			var lastArrival, xfer time.Duration
			for _, c := range n.Children {
				cr := results[c]
				in = append(in, cr.pkts...)
				if cr.finished > lastArrival {
					lastArrival = cr.finished
				}
				for _, p := range cr.pkts {
					xfer += cfg.Net.TransferTime(p.EncodedSize())
				}
			}
			cost := time.Duration(len(in)) * cfg.ReportCost
			o, err := f.Transform(in)
			if err != nil {
				o = in // degrade: forward unfiltered
			}
			results[n.Rank] = out{pkts: o, finished: lastArrival + xfer + cost}
		}
	}
	root := results[0]
	// The front-end itself parses what reaches it; that cost is already in
	// root.finished via the level walk (rank 0 participates at level 0).
	return len(root.pkts), root.finished
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// StartupTable renders the result in the paper's terms.
func StartupTable(r *StartupResult) string {
	tb := metrics.NewTable(
		fmt.Sprintf("T-STARTUP — tool startup with %d daemons (paper: >60s flat -> <20s tree, 3.4x)", r.Daemons),
		"organization", "connect", "skew-detect", "reports", "total", "fe-report-msgs")
	tb.AddRow("flat (one-to-many)", r.FlatConnect, r.FlatSkew, r.FlatReports, r.FlatTotal, r.ReportMsgsFlat)
	tb.AddRow("tree (TBON)", r.TreeConnect, r.TreeSkew, r.TreeReports, r.TreeTotal, r.ReportMsgsTree)
	tb.AddRow("speedup", "", "", "", fmt.Sprintf("%.1fx", r.Speedup), "")
	return tb.String()
}
