package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/sketch"
	"repro/internal/topology"
)

// MultiTenantConfig parameterizes the session-fabric study: N tenants run
// a mixed aggregation/sketch workload concurrently over ONE shared
// overlay, against the sequential single-tenant baseline (the N=1 row).
// The paper's amortization claim, applied to tools instead of packets: the
// overlay is the expensive shared asset, and the session fabric is what
// lets many tools use it at once without building N overlays.
type MultiTenantConfig struct {
	// Leaves is the back-end count; FanOut the tree fan-out.
	Leaves int
	FanOut int
	// Tenants is the swept tenant counts; include 1 for the baseline.
	Tenants []int
	// OpsPerTenant is how many operations each tenant runs. The workload
	// cycles: grouped aggregation query, count-min, HLL, t-digest.
	OpsPerTenant int
	// LinkWindow enables credit flow control (sub-budgeted per tenant).
	LinkWindow int
	// SketchItems is the per-back-end item count of each sketch op.
	SketchItems int
	// Seed roots the sketch generators.
	Seed int64
}

// DefaultMultiTenantConfig is laptop-runnable.
func DefaultMultiTenantConfig() MultiTenantConfig {
	return MultiTenantConfig{
		Leaves:       64,
		FanOut:       8,
		Tenants:      []int{1, 2, 4, 8},
		OpsPerTenant: 24,
		LinkWindow:   32,
		SketchItems:  200,
		Seed:         1,
	}
}

// MultiTenantRow is one swept tenant count.
type MultiTenantRow struct {
	Tenants int
	// Ops is the total operations completed across tenants.
	Ops int
	// AggRate is aggregate operations per second across all tenants.
	AggRate float64
	// MinRate and MaxRate are the slowest and fastest tenant's own rates;
	// their ratio is the fairness of the shared fabric under equal weights.
	MinRate  float64
	MaxRate  float64
	Fairness float64
	// Speedup is AggRate over the N=1 (sequential single-tenant) AggRate.
	Speedup float64
}

// RunMultiTenant measures each tenant count on a fresh overlay.
func RunMultiTenant(cfg MultiTenantConfig) ([]MultiTenantRow, error) {
	if cfg.Leaves == 0 {
		cfg = DefaultMultiTenantConfig()
	}
	var rows []MultiTenantRow
	var baseline float64
	for _, n := range cfg.Tenants {
		row, err := multiTenantRun(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: multitenant %d tenants: %w", n, err)
		}
		if baseline == 0 {
			baseline = row.AggRate
		}
		row.Speedup = row.AggRate / baseline
		rows = append(rows, row)
	}
	return rows, nil
}

func multiTenantRun(cfg MultiTenantConfig, tenants int) (MultiTenantRow, error) {
	tree, err := topology.Balanced(cfg.Leaves, cfg.FanOut)
	if err != nil {
		return MultiTenantRow{}, err
	}
	nw, err := query.NewNetwork(tree, func(rank core.Rank) query.AttrSource {
		return func() map[string]float64 {
			return map[string]float64{
				"zone": float64(rank % 4),
				"load": float64(rank) / 100,
				"mem":  float64(256 + rank%32*64),
			}
		}
	}, query.WithLinkWindow(cfg.LinkWindow))
	if err != nil {
		return MultiTenantRow{}, err
	}
	defer nw.Shutdown()

	mgr := session.NewManager(nw, session.Config{MaxSessions: tenants})
	engines := make([]*query.Engine, tenants)
	for i := range engines {
		// Equal weights: the fairness number below measures the fabric,
		// not a deliberate priority skew.
		sess, err := mgr.Open(fmt.Sprintf("tenant-%d", i))
		if err != nil {
			return MultiTenantRow{}, err
		}
		engines[i] = query.NewSessionEngine(nw, sess)
	}

	elapsed := make([]time.Duration, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	start := time.Now()
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *query.Engine) {
			defer wg.Done()
			t0 := time.Now()
			errs[i] = tenantWorkload(cfg, eng, int64(i))
			elapsed[i] = time.Since(t0)
		}(i, eng)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MultiTenantRow{}, err
		}
	}
	if err := mgr.Close(); err != nil {
		return MultiTenantRow{}, err
	}

	row := MultiTenantRow{
		Tenants: tenants,
		Ops:     tenants * cfg.OpsPerTenant,
		AggRate: float64(tenants*cfg.OpsPerTenant) / wall.Seconds(),
	}
	for _, d := range elapsed {
		r := float64(cfg.OpsPerTenant) / d.Seconds()
		if row.MinRate == 0 || r < row.MinRate {
			row.MinRate = r
		}
		if r > row.MaxRate {
			row.MaxRate = r
		}
	}
	row.Fairness = row.MinRate / row.MaxRate
	return row, nil
}

// tenantWorkload runs one tenant's mixed operation cycle.
func tenantWorkload(cfg MultiTenantConfig, eng *query.Engine, tenant int64) error {
	kinds := []sketch.Kind{sketch.KindCountMin, sketch.KindHLL, sketch.KindTDigest}
	for op := 0; op < cfg.OpsPerTenant; op++ {
		if op%4 == 0 {
			if _, err := eng.Run("select count(rank), avg(load), max(mem) group by zone", time.Minute); err != nil {
				return err
			}
			continue
		}
		req := sketch.Request{
			Kind: kinds[op%len(kinds)],
			N:    cfg.SketchItems,
			Seed: cfg.Seed + tenant*1000 + int64(op),
		}
		if _, err := eng.Sketch(req, time.Minute); err != nil {
			return err
		}
	}
	return nil
}

// MultiTenantTable renders the sweep.
func MultiTenantTable(cfg MultiTenantConfig, rows []MultiTenantRow) string {
	if cfg.Leaves == 0 {
		cfg = DefaultMultiTenantConfig()
	}
	tb := metrics.NewTable(
		fmt.Sprintf("MULTITENANT — mixed query+sketch ops over one shared overlay, %d back-ends, window %d (fairness = slowest/fastest tenant rate; speedup vs 1 tenant)",
			cfg.Leaves, cfg.LinkWindow),
		"tenants", "ops", "agg-ops/s", "min-ops/s", "max-ops/s", "fairness", "speedup")
	for _, r := range rows {
		tb.AddRow(r.Tenants, r.Ops, r.AggRate, r.MinRate, r.MaxRate, r.Fairness, r.Speedup)
	}
	return tb.String()
}
