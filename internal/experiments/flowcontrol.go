package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// FlowControlConfig parameterizes the flow-control ablation: downstream
// multicast throughput and memory behavior as a function of the credit
// window (0 = flow control off, the unbounded/blocking baseline) and of
// how much slower one consumer is than its siblings.
type FlowControlConfig struct {
	// Leaves is the back-end count.
	Leaves int
	// FanOut is the tree fan-out.
	FanOut int
	// Windows are the credit windows swept; 0 disables flow control.
	Windows []int
	// SlowFactors are the slow-consumer ratios swept: one back-end
	// processes each packet factor× slower than its siblings (1 = uniform
	// consumers).
	SlowFactors []int
	// Rounds is the number of multicast rounds per run.
	Rounds int
	// PerPacket is the fast consumers' per-packet processing time.
	PerPacket time.Duration
}

// DefaultFlowControlConfig sweeps window {off, 16, 64} against uniform and
// 100×-slower consumers at laptop-runnable size.
func DefaultFlowControlConfig() FlowControlConfig {
	return FlowControlConfig{
		Leaves:      64,
		FanOut:      8,
		Windows:     []int{0, 16, 64},
		SlowFactors: []int{1, 100},
		Rounds:      400,
		PerPacket:   10 * time.Microsecond,
	}
}

// FlowControlRow is one sweep position.
type FlowControlRow struct {
	Window     int
	SlowFactor int
	// Rate is downstream packets per second absorbed by the overlay
	// (leaves × rounds / wall time).
	Rate float64
	// EgressHighWater is the deepest per-link egress queue observed:
	// bounded by Window when flow control is on, unbounded otherwise.
	EgressHighWater int64
	// MailboxHighWater is the deepest shard mailbox observed.
	MailboxHighWater int64
	// CreditStalls counts flushes cut short by an exhausted peer window.
	CreditStalls int64
	// CreditGrants counts grant packets returned by receivers.
	CreditGrants int64
}

// RunFlowControl measures every (window, slow-factor) pair: the front-end
// multicasts Rounds packets to every back-end; one back-end consumes
// SlowFactor× slower than the rest; the run ends when every back-end has
// acknowledged its last packet upstream.
func RunFlowControl(cfg FlowControlConfig) ([]FlowControlRow, error) {
	if cfg.Leaves == 0 {
		cfg = DefaultFlowControlConfig()
	}
	var rows []FlowControlRow
	for _, w := range cfg.Windows {
		for _, f := range cfg.SlowFactors {
			row, err := flowControlRun(cfg, w, f)
			if err != nil {
				return nil, fmt.Errorf("experiments: flowcontrol window %d slow %d: %w", w, f, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func flowControlRun(cfg FlowControlConfig, window, slowFactor int) (FlowControlRow, error) {
	tree, err := topology.Balanced(cfg.Leaves, cfg.FanOut)
	if err != nil {
		return FlowControlRow{}, err
	}
	slowRank := tree.Leaves()[0]
	nw, err := core.NewNetwork(core.Config{
		Topology:   tree,
		Batch:      core.BatchPolicy{MaxBatch: 16, MaxDelay: 2 * time.Millisecond},
		LinkWindow: window,
		OnBackEnd: func(be *core.BackEnd) error {
			delay := cfg.PerPacket
			if be.Rank() == slowRank {
				delay = time.Duration(slowFactor) * cfg.PerPacket
			}
			seen := 0
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				time.Sleep(delay)
				seen++
				if seen == cfg.Rounds {
					// Final ack: one upstream packet once this back-end has
					// consumed the whole run.
					if err := be.Send(p.StreamID, p.Tag, "%d", int64(1)); err != nil {
						return nil
					}
				}
			}
		},
	})
	if err != nil {
		return FlowControlRow{}, err
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  "sum",
		Synchronization: "waitforall",
		RecvBuffer:      8,
	})
	if err != nil {
		return FlowControlRow{}, err
	}
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		if err := st.Multicast(100, "%d", int64(r)); err != nil {
			return FlowControlRow{}, err
		}
	}
	// One reduced packet arrives when every back-end has acked.
	if _, err := st.RecvTimeout(10 * time.Minute); err != nil {
		return FlowControlRow{}, fmt.Errorf("waiting for final acks: %w", err)
	}
	elapsed := time.Since(start)
	m := nw.Metrics()
	return FlowControlRow{
		Window:           window,
		SlowFactor:       slowFactor,
		Rate:             float64(cfg.Leaves*cfg.Rounds) / elapsed.Seconds(),
		EgressHighWater:  m.EgressHighWater.Load(),
		MailboxHighWater: m.ShardQueueHighWater.Load(),
		CreditStalls:     m.CreditStalls.Load(),
		CreditGrants:     m.CreditGrants.Load(),
	}, nil
}

// FlowControlTable renders the sweep.
func FlowControlTable(cfg FlowControlConfig, rows []FlowControlRow) string {
	if cfg.Leaves == 0 {
		cfg = DefaultFlowControlConfig()
	}
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-FLOWCONTROL — downstream throughput & memory, %d back-ends, one slow consumer (window 0 = flow control off)", cfg.Leaves),
		"window", "slow-x", "pkts/s", "egress-hw", "mailbox-hw", "stalls", "grants")
	for _, r := range rows {
		w := fmt.Sprintf("%d", r.Window)
		if r.Window == 0 {
			w = "off"
		}
		tb.AddRow(w, r.SlowFactor, r.Rate, r.EgressHighWater, r.MailboxHighWater, r.CreditStalls, r.CreditGrants)
	}
	return tb.String()
}
