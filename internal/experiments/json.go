// Machine-readable result emission: every experiment's typed rows wrap in
// a small envelope so tbon-bench -json can record the perf trajectory
// (BENCH_*.json) per change instead of scraping tables.
package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Report is one experiment's machine-readable result envelope. Rows is the
// experiment's own row slice (ThroughputRow, BatchingRow, ...), marshalled
// with its exported field names; durations are nanoseconds, rates are
// per-second floats, exactly as the types declare them.
type Report struct {
	// Experiment is the tbon-bench -exp name that produced the rows.
	Experiment string `json:"experiment"`
	// RecordedAt stamps the run (UTC).
	RecordedAt time.Time `json:"recorded_at"`
	// GoMaxProcs records the parallelism the run had available — the
	// knob the stream-sharded data plane scales with.
	GoMaxProcs int `json:"gomaxprocs"`
	// AllocsPerOp / BytesPerOp record the allocation profile of the
	// experiment's hot path when its rows provide one (AllocProfiler);
	// omitted for experiments that do not measure allocations. These are
	// the regression-gate numbers: a change that reintroduces per-packet
	// garbage shows up here before it shows up as throughput. Pointers so
	// a measured zero — the steady-state target — still serializes.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Rows carries the per-experiment result rows.
	Rows any `json:"rows"`
}

// AllocProfiler is implemented by experiment row sets that measure the
// allocation profile of their hot path (the zeroalloc ablation); NewReport
// lifts the numbers into the envelope.
type AllocProfiler interface {
	AllocProfile() (allocsPerOp, bytesPerOp float64)
}

// NewReport stamps rows with the run environment.
func NewReport(experiment string, rows any) Report {
	r := Report{
		Experiment: experiment,
		RecordedAt: time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       rows,
	}
	if ap, ok := rows.(AllocProfiler); ok {
		allocs, bytes := ap.AllocProfile()
		r.AllocsPerOp, r.BytesPerOp = &allocs, &bytes
	}
	return r
}

// WriteJSON emits the reports as one indented JSON array, the BENCH_*.json
// format. A nil slice (no experiment matched the selection) encodes as an
// empty array, not null, so consumers always see the documented shape.
func WriteJSON(w io.Writer, reports []Report) error {
	if reports == nil {
		reports = []Report{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
