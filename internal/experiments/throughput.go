package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// ThroughputConfig parameterizes the front-end data-processing experiment
// (§2.2's prose result: Paradyn's one-to-many front-end could not keep up
// with more than 32 daemons producing performance data for 32 functions;
// the MRNet front-end easily processed 512).
type ThroughputConfig struct {
	// DaemonCounts are the x positions (paper: up to 512).
	DaemonCounts []int
	// Rounds is the number of data waves each daemon produces.
	Rounds int
	// Functions is the per-record metric vector width (paper: 32).
	Functions int
	// FanOut is the tree fan-out for the TBON runs.
	FanOut int
}

// DefaultThroughputConfig mirrors the paper's experiment at laptop size.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		DaemonCounts: []int{16, 32, 64, 128, 256, 512},
		Rounds:       40,
		Functions:    32,
		FanOut:       8,
	}
}

// ThroughputRow compares the organizations at one daemon count.
type ThroughputRow struct {
	Daemons int
	// FlatRate and TreeRate are front-end-consumed daemon-records/second.
	FlatRate, TreeRate float64
	// FlatPkts and TreePkts are packets the front-end process handled.
	FlatPkts, TreePkts int64
}

// RunThroughput reproduces T-THROUGHPUT on the real overlay: every daemon
// sends Rounds records of Functions float metrics as fast as the network
// accepts them. In the flat organization the front-end must parse every
// record itself (identity filter); in the TBON the per-level sum filter
// reduces each wave to one packet. The measured rate is total records
// divided by the time until the front-end has consumed everything.
func RunThroughput(cfg ThroughputConfig) ([]ThroughputRow, error) {
	if len(cfg.DaemonCounts) == 0 {
		cfg = DefaultThroughputConfig()
	}
	var rows []ThroughputRow
	for _, n := range cfg.DaemonCounts {
		flatRate, flatPkts, err := throughputRun(topologyFlat(n), "", "nullsync", cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput flat %d: %w", n, err)
		}
		tree, err := topology.Balanced(n, cfg.FanOut)
		if err != nil {
			return nil, err
		}
		treeRate, treePkts, err := throughputRun(tree, "sum", "waitforall", cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput tree %d: %w", n, err)
		}
		rows = append(rows, ThroughputRow{
			Daemons:  n,
			FlatRate: flatRate, TreeRate: treeRate,
			FlatPkts: flatPkts, TreePkts: treePkts,
		})
	}
	return rows, nil
}

func topologyFlat(n int) *topology.Tree {
	t, err := topology.Flat(n)
	if err != nil {
		panic(err)
	}
	return t
}

func throughputRun(tree *topology.Tree, tform, sync string, cfg ThroughputConfig, daemons int) (float64, int64, error) {
	payload := make([]float64, cfg.Functions)
	for i := range payload {
		payload[i] = float64(i)
	}
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		OnBackEnd: func(be *core.BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			for r := 0; r < cfg.Rounds; r++ {
				if err := be.Send(p.StreamID, p.Tag, "%af", payload); err != nil {
					return nil
				}
			}
			// Drain until shutdown.
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		return 0, 0, err
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  tform,
		Synchronization: sync,
		RecvBuffer:      4096,
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := st.Multicast(100, ""); err != nil {
		return 0, 0, err
	}
	// Expected front-end deliveries: every record individually (flat,
	// identity) or one reduced packet per wave (tree, waitforall+sum).
	expect := cfg.Rounds
	if tform == "" {
		expect = cfg.Rounds * daemons
	}
	var sink float64
	for i := 0; i < expect; i++ {
		p, err := st.RecvTimeout(120 * time.Second)
		if err != nil {
			return 0, 0, fmt.Errorf("after %d of %d deliveries: %w", i, expect, err)
		}
		// "Process" the record the way a tool front-end would: touch every
		// metric.
		xs, err := p.FloatArray(0)
		if err != nil {
			return 0, 0, err
		}
		for _, x := range xs {
			sink += x
		}
	}
	_ = sink
	elapsed := time.Since(start)
	records := float64(cfg.Rounds * daemons)
	return records / elapsed.Seconds(), nw.Metrics().PacketsUp.Load(), nil
}

// ThroughputTable renders the rows.
func ThroughputTable(rows []ThroughputRow) string {
	tb := metrics.NewTable(
		"T-THROUGHPUT — front-end processing rate (daemon-records/s; paper: flat saturates past 32 daemons)",
		"daemons", "flat rec/s", "tree rec/s", "tree/flat")
	for _, r := range rows {
		ratio := r.TreeRate / r.FlatRate
		tb.AddRow(r.Daemons, r.FlatRate, r.TreeRate, fmt.Sprintf("%.1fx", ratio))
	}
	return tb.String()
}
