package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// BatchingConfig parameterizes the batching ablation: upstream throughput
// of small packets as a function of the egress flush window and the tree
// fan-out. Window 0 disables batching (the per-packet baseline).
type BatchingConfig struct {
	// Leaves is the back-end count.
	Leaves int
	// FanOuts are the tree fan-outs swept.
	FanOuts []int
	// Windows are the egress flush windows swept; 0 disables batching.
	Windows []int
	// Rounds is the number of packets each back-end sends per run.
	Rounds int
	// MaxDelay is the egress age bound for the batched runs.
	MaxDelay time.Duration
}

// DefaultBatchingConfig sweeps the flush window across two tree shapes at
// laptop-runnable size.
func DefaultBatchingConfig() BatchingConfig {
	return BatchingConfig{
		Leaves:   256,
		FanOuts:  []int{8, 16},
		Windows:  []int{0, 4, 16, 64},
		Rounds:   600,
		MaxDelay: 2 * time.Millisecond,
	}
}

// BatchingRow is one sweep position.
type BatchingRow struct {
	FanOut int
	Window int
	// Rate is back-end packets per second absorbed by the overlay.
	Rate float64
	// AvgFrame is the mean packets per link frame (1.0 when disabled).
	AvgFrame float64
	// HighWater is the deepest egress queue observed.
	HighWater int64
}

// RunBatching measures upstream small-packet throughput for every
// (fan-out, window) pair: each back-end blasts Rounds single-int packets
// through a waitforall+sum pipeline and the run ends when the front-end
// has consumed every reduced round.
func RunBatching(cfg BatchingConfig) ([]BatchingRow, error) {
	if cfg.Leaves == 0 {
		cfg = DefaultBatchingConfig()
	}
	var rows []BatchingRow
	for _, f := range cfg.FanOuts {
		for _, w := range cfg.Windows {
			rate, avg, hw, err := batchingRun(cfg.Leaves, f, w, cfg.Rounds, cfg.MaxDelay)
			if err != nil {
				return nil, fmt.Errorf("experiments: batching fanout %d window %d: %w", f, w, err)
			}
			rows = append(rows, BatchingRow{FanOut: f, Window: w, Rate: rate, AvgFrame: avg, HighWater: hw})
		}
	}
	return rows, nil
}

// BatchingPoint measures one (fan-out, window) position, for benchmarks.
func BatchingPoint(leaves, fanOut, window, rounds int) (rate float64, err error) {
	rate, _, _, err = batchingRun(leaves, fanOut, window, rounds, 2*time.Millisecond)
	return rate, err
}

func batchingRun(leaves, fanOut, window, rounds int, maxDelay time.Duration) (float64, float64, int64, error) {
	tree, err := topology.Balanced(leaves, fanOut)
	if err != nil {
		return 0, 0, 0, err
	}
	nw, err := core.NewNetwork(core.Config{
		Topology: tree,
		Batch:    core.BatchPolicy{MaxBatch: window, MaxDelay: maxDelay},
		OnBackEnd: func(be *core.BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			for i := 0; i < rounds; i++ {
				if err := be.Send(p.StreamID, p.Tag, "%d", int64(i)); err != nil {
					return nil
				}
			}
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer nw.Shutdown()
	st, err := nw.NewStream(core.StreamSpec{
		Transformation:  "sum",
		Synchronization: "waitforall",
		RecvBuffer:      rounds + 8,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	// End-to-end measurement, multicast to last reduced round. The one-off
	// request propagation pays the egress age bound per level on the idle
	// downstream path, so Rounds must be large enough to amortize that
	// fixed few-millisecond startup (the defaults are).
	start := time.Now()
	if err := st.Multicast(100, ""); err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < rounds; i++ {
		if _, err := st.RecvTimeout(120 * time.Second); err != nil {
			return 0, 0, 0, fmt.Errorf("after %d of %d rounds: %w", i, rounds, err)
		}
	}
	elapsed := time.Since(start)
	m := nw.Metrics()
	avg := 1.0
	if frames := m.FramesSent.Load(); frames > 0 {
		avg = float64(m.PacketsQueued.Load()) / float64(frames)
	}
	rate := float64(leaves*rounds) / elapsed.Seconds()
	return rate, avg, m.EgressHighWater.Load(), nil
}

// BatchingTable renders the sweep.
func BatchingTable(cfg BatchingConfig, rows []BatchingRow) string {
	if cfg.Leaves == 0 {
		cfg = DefaultBatchingConfig()
	}
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-BATCHING — upstream small-packet throughput, %d back-ends (window 0 = batching off)", cfg.Leaves),
		"fan-out", "window", "pkts/s", "vs-off", "avg-frame", "queue-hw")
	base := map[int]float64{}
	for _, r := range rows {
		if r.Window == 0 {
			base[r.FanOut] = r.Rate
		}
	}
	for _, r := range rows {
		speedup := "-"
		if b := base[r.FanOut]; b > 0 && r.Window != 0 {
			speedup = fmt.Sprintf("%.2fx", r.Rate/b)
		}
		tb.AddRow(r.FanOut, r.Window, r.Rate, speedup, fmt.Sprintf("%.1f", r.AvgFrame), r.HighWater)
	}
	return tb.String()
}
