// Package experiments implements the paper's evaluation: one runner per
// table/figure (see DESIGN.md's per-experiment index), each reusing the
// real library code and printing rows in the shape the paper reports.
//
// Timing model. The paper's cluster had one workstation per overlay
// process; a laptop does not. Experiments that depend on "every node
// computes in parallel" therefore measure each node's real compute time
// with the real algorithm code and compose the tree's critical path under
// the parallel-machine schedule, adding communication costs from the
// simnet model (GigE, as in the paper). Experiments that stress a single
// bottleneck process (front-end throughput) run the real overlay and
// measure wall time directly, since a single hot goroutine is faithful to
// a single hot workstation.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/meanshift"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Fig4Config parameterizes the mean-shift scaling study (Figure 4).
type Fig4Config struct {
	// Scales are the input-data scale factors; for the tree runs each is
	// also the number of back-ends, exactly as in the paper.
	Scales []int
	// Clusters is the number of true modes per leaf data set.
	Clusters int
	// PointsPerCluster is the raw sample count per cluster per leaf.
	PointsPerCluster int
	// Field is the side of the square data domain.
	Field float64
	// Spread is each cluster's Gaussian standard deviation.
	Spread float64
	// Jitter is the per-leaf shift of the cluster centers (§3.1).
	Jitter float64
	// Params are the mean-shift parameters (bandwidth 50, Gaussian kernel).
	Params meanshift.Params
	// Net is the link-cost model used for message transfer times.
	Net simnet.Model
	// Seed makes the synthetic data deterministic.
	Seed int64
}

// DefaultFig4Config mirrors the paper's setup at laptop-runnable size.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Scales:           []int{16, 32, 48, 64, 128, 256, 324},
		Clusters:         2,
		PointsPerCluster: 120,
		Field:            600,
		Spread:           20,
		Jitter:           5,
		Params:           meanshift.Params{Bandwidth: 50},
		Net:              simnet.GigE,
		Seed:             1,
	}
}

// Fig4Row is one x-position of Figure 4: processing time for the
// single-node, 1-deep (flat) and 2-deep (deep) organizations.
type Fig4Row struct {
	Scale  int
	Single time.Duration
	Flat   time.Duration
	Deep   time.Duration
	// DeepFanOut is the fan-out of the 2-deep tree at this scale.
	DeepFanOut int
	// Peaks is the number of modes the deep run reported (sanity signal:
	// it should stay near Clusters at every scale).
	Peaks int
}

// RunFig4 regenerates Figure 4. For each scale S it measures:
//
//	single — FindPeaks over the union of S leaves' raw data on one node;
//	flat   — the distributed algorithm on a 1-deep tree (front-end with
//	         fan-out S);
//	deep   — the distributed algorithm on a 2-deep tree with fan-out
//	         ceil(sqrt(S)) (16 back-ends -> fan-out 4 ... 324 -> 18,
//	         matching the paper's balanced trees).
//
// Distributed runs execute the real leaf computation and the real filter
// at every node, measuring each node's compute time, and compose the
// critical path: a node starts after its slowest child's result has
// arrived and all child messages have crossed its link.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	if len(cfg.Scales) == 0 {
		cfg = DefaultFig4Config()
	}
	var rows []Fig4Row
	for _, s := range cfg.Scales {
		row, err := fig4Scale(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 scale %d: %w", s, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig4Scale(cfg Fig4Config, scale int) (Fig4Row, error) {
	centers := meanshift.DefaultCenters(cfg.Clusters, cfg.Field)
	leafData := make([][]meanshift.Point, scale)
	var union []meanshift.Point
	for i := range leafData {
		leafData[i] = meanshift.Generate(meanshift.GenParams{
			Centers:          centers,
			Spread:           cfg.Spread,
			PointsPerCluster: cfg.PointsPerCluster,
			CenterJitter:     cfg.Jitter,
			Seed:             cfg.Seed + int64(i),
		})
		union = append(union, leafData[i]...)
	}

	// Single node: the whole data set on one workstation.
	t0 := time.Now()
	meanshift.FindPeaks(union, cfg.Params)
	single := time.Since(t0)

	// Flat: 1-deep tree, fan-out = scale.
	flatTree, err := topology.Flat(scale)
	if err != nil {
		return Fig4Row{}, err
	}
	flat, _, err := distributedMakespan(flatTree, leafData, cfg)
	if err != nil {
		return Fig4Row{}, err
	}

	// Deep: 2-deep balanced tree with fan-out ceil(sqrt(scale)).
	fan := 1
	for fan*fan < scale {
		fan++
	}
	deepTree, err := topology.Balanced(scale, fan)
	if err != nil {
		return Fig4Row{}, err
	}
	deep, peaks, err := distributedMakespan(deepTree, leafData, cfg)
	if err != nil {
		return Fig4Row{}, err
	}

	return Fig4Row{
		Scale:      scale,
		Single:     single,
		Flat:       flat,
		Deep:       deep,
		DeepFanOut: fan,
		Peaks:      peaks,
	}, nil
}

// nodeResult is one node's output during the critical-path walk.
type nodeResult struct {
	pkt      *packet.Packet
	finished time.Duration // completion time on the simulated machine
}

// distributedMakespan executes the distributed algorithm over the tree
// (leaf computations and internal-node filter executions are the real
// code, individually timed) and returns the simulated makespan: the time
// at which the front-end's final merge completes, under the schedule
// "every node is its own machine; a message of b bytes takes
// Net.TransferTime(b); a node receives its child messages serially".
func distributedMakespan(tree *topology.Tree, leafData [][]meanshift.Point, cfg Fig4Config) (time.Duration, int, error) {
	leaves := tree.Leaves()
	if len(leaves) != len(leafData) {
		return 0, 0, fmt.Errorf("tree has %d leaves, want %d", len(leaves), len(leafData))
	}
	results := make(map[topology.Rank]nodeResult, tree.Len())

	// The downstream "start" broadcast reaches a leaf after one hop per
	// level; include it for completeness (it is microseconds).
	broadcast := func(level int) time.Duration {
		return time.Duration(level) * cfg.Net.TransferTime(64)
	}

	// Leaves: the paper's back-end computation.
	for i, l := range leaves {
		start := broadcast(tree.Node(l).Level)
		t0 := time.Now()
		pts, ws, peaks := meanshift.LeafResult(leafData[i], cfg.Params)
		compute := time.Since(t0)
		pkt, err := meanshift.MakePacket(100, 1, l, pts, ws, peaks)
		if err != nil {
			return 0, 0, err
		}
		results[l] = nodeResult{pkt: pkt, finished: start + compute}
	}

	// Internal nodes and the front-end, bottom-up (deepest level first).
	byLevelDesc := make([][]topology.Rank, 0)
	maxLevel := 0
	for r := 0; r < tree.Len(); r++ {
		if lvl := tree.Node(topology.Rank(r)).Level; lvl > maxLevel {
			maxLevel = lvl
		}
	}
	levels := make([][]topology.Rank, maxLevel+1)
	for r := 0; r < tree.Len(); r++ {
		n := tree.Node(topology.Rank(r))
		if !n.IsLeaf() {
			levels[n.Level] = append(levels[n.Level], n.Rank)
		}
	}
	for lvl := maxLevel; lvl >= 0; lvl-- {
		byLevelDesc = append(byLevelDesc, levels[lvl])
	}

	f := &meanshift.Filter{Params: cfg.Params}
	var rootPeaks int
	for _, ranks := range byLevelDesc {
		for _, r := range ranks {
			children := tree.Children(r)
			in := make([]*packet.Packet, len(children))
			var lastArrival, xferTotal time.Duration
			for i, c := range children {
				cr, ok := results[c]
				if !ok {
					return 0, 0, fmt.Errorf("child %d of %d not computed", c, r)
				}
				in[i] = cr.pkt
				if cr.finished > lastArrival {
					lastArrival = cr.finished
				}
				xferTotal += cfg.Net.TransferTime(cr.pkt.EncodedSize())
			}
			t0 := time.Now()
			out, err := f.Transform(in)
			compute := time.Since(t0)
			if err != nil {
				return 0, 0, err
			}
			if len(out) != 1 {
				return 0, 0, fmt.Errorf("filter produced %d packets", len(out))
			}
			// The node may only start when the slowest child has finished,
			// and its NIC serializes the child messages.
			results[r] = nodeResult{
				pkt:      out[0],
				finished: lastArrival + xferTotal + compute,
			}
			if r == 0 {
				_, _, peaks, err := meanshift.ParsePacket(out[0])
				if err != nil {
					return 0, 0, err
				}
				rootPeaks = len(peaks)
			}
		}
	}
	return results[0].finished, rootPeaks, nil
}

// Fig4Table renders the rows in the paper's layout.
func Fig4Table(rows []Fig4Row) string {
	tb := metrics.NewTable(
		"Figure 4 — Mean-shift Processing Times (simulated parallel-machine makespan)",
		"scale", "single", "flat(1-deep)", "deep(2-deep)", "deep-fanout", "peaks")
	for _, r := range rows {
		tb.AddRow(r.Scale, r.Single, r.Flat, r.Deep, r.DeepFanOut, r.Peaks)
	}
	return tb.String()
}
