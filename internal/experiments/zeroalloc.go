package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/transport"
)

// ZeroAllocConfig sizes the pooled-arena ablation.
type ZeroAllocConfig struct {
	// Batch is the packets per simulated egress flush (the encode → frame →
	// write cycle a flow-controlled queue performs per round).
	Batch int
	// PayloadBytes is the %ac blob carried per packet; the paper's
	// tool-data packets are this order of magnitude, and payload size sets
	// how much of each op the allocator-vs-arena difference is.
	PayloadBytes int
}

// DefaultZeroAllocConfig mirrors the egress defaults: a full flush window
// of 1 KiB payloads.
func DefaultZeroAllocConfig() ZeroAllocConfig {
	return ZeroAllocConfig{Batch: 32, PayloadBytes: 1024}
}

// ZeroAllocRow is one arm of the pooling ablation.
type ZeroAllocRow struct {
	// Mode is "pooled" (arena on, the default) or "unpooled" (every encode
	// body allocated fresh, the pre-arena behavior).
	Mode string `json:"mode"`
	// PktsPerSec is the single-threaded hot-path throughput.
	PktsPerSec float64 `json:"pkts_per_sec"`
	// AllocsPerOp / BytesPerOp are heap allocations per packet through the
	// full encode → frame → write → release cycle.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Speedup is PktsPerSec over the unpooled arm's.
	Speedup float64 `json:"speedup"`
}

// ZeroAllocRows carries the ablation rows and surfaces the pooled arm's
// allocation profile to the Report envelope.
type ZeroAllocRows []ZeroAllocRow

// AllocProfile reports the pooled (production-default) arm's allocs/op and
// bytes/op for the Report envelope.
func (rs ZeroAllocRows) AllocProfile() (allocsPerOp, bytesPerOp float64) {
	for _, r := range rs {
		if r.Mode == "pooled" {
			return r.AllocsPerOp, r.BytesPerOp
		}
	}
	return 0, 0
}

// RunZeroAlloc measures the data plane's per-packet cost with the packet
// arena on and off, at GOMAXPROCS=1 so the comparison is allocator work
// against arena reuse rather than parallel GC absorption. The measured
// cycle is an egress flush against a memory-speed link: retain encoded-body
// custody for a window of packets, encode and frame them through the
// persistent link scratch, write, release. Pooling on recycles every
// encode body through the arena; pooling off allocates each one fresh and
// leaves it to the GC — the pre-arena steady state.
func RunZeroAlloc(cfg ZeroAllocConfig) (ZeroAllocRows, error) {
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultZeroAllocConfig().Batch
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = DefaultZeroAllocConfig().PayloadBytes
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	unpooled, err := zeroAllocArm(cfg, false)
	if err != nil {
		return nil, err
	}
	pooled, err := zeroAllocArm(cfg, true)
	if err != nil {
		return nil, err
	}
	unpooled.Speedup = 1
	if unpooled.PktsPerSec > 0 {
		pooled.Speedup = pooled.PktsPerSec / unpooled.PktsPerSec
	}
	return ZeroAllocRows{unpooled, pooled}, nil
}

// zeroAllocArm benchmarks one pooling mode.
func zeroAllocArm(cfg ZeroAllocConfig, pooled bool) (ZeroAllocRow, error) {
	restore := packet.SetPooling(pooled)
	defer packet.SetPooling(restore)

	link := transport.NewWriterLink(io.Discard)
	defer link.Close()
	blob := make([]byte, cfg.PayloadBytes)
	for i := range blob {
		blob[i] = byte(i)
	}
	ps := make([]*packet.Packet, cfg.Batch)
	for i := range ps {
		p, err := packet.New(packet.TagFirstApplication, 1, packet.Rank(i), "%d %ac", i, blob)
		if err != nil {
			return ZeroAllocRow{}, err
		}
		ps[i] = p
	}
	var sendErr error
	flush := func() {
		// The egress custody cycle: one hold per packet for the flush,
		// released once the wire has the bytes (recycling the arena-backed
		// bodies when pooling is on).
		for _, p := range ps {
			p.RetainEncoded(1)
		}
		if err := link.SendBatch(ps); err != nil {
			sendErr = err
		}
		for _, p := range ps {
			p.ReleaseEncoded()
		}
	}
	for i := 0; i < 64; i++ {
		flush() // warm the arena classes and the link scratch
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flush()
		}
	})
	if sendErr != nil {
		return ZeroAllocRow{}, sendErr
	}
	mode := "unpooled"
	if pooled {
		mode = "pooled"
	}
	pkts := float64(cfg.Batch) * float64(res.N)
	return ZeroAllocRow{
		Mode:        mode,
		PktsPerSec:  pkts / res.T.Seconds(),
		AllocsPerOp: float64(res.AllocsPerOp()) / float64(cfg.Batch),
		BytesPerOp:  float64(res.AllocedBytesPerOp()) / float64(cfg.Batch),
	}, nil
}

// ZeroAllocTable renders the ablation.
func ZeroAllocTable(cfg ZeroAllocConfig, rows ZeroAllocRows) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Zero-allocation ablation: %d-packet flushes, %d B payloads, GOMAXPROCS=1\n",
		cfg.Batch, cfg.PayloadBytes)
	fmt.Fprintf(&b, "%-10s %14s %12s %12s %9s\n", "mode", "pkts/s", "allocs/op", "bytes/op", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.0f %12.2f %12.1f %8.2fx\n",
			r.Mode, r.PktsPerSec, r.AllocsPerOp, r.BytesPerOp, r.Speedup)
	}
	return b.String()
}
