package experiments

// Elastic self-scaling ablation (DESIGN.md §13): the same skewed workload
// runs with and without the elastic controller, and the rows put
// sustained throughput, tail latency, and topology churn side by side.
//
// The workload is credit-limited on purpose. With ExactlyOnce, credits
// retire end to end — a grant means "delivered at the front-end" — so a
// router's whole subtree can have at most one uplink window in flight,
// and with batched egress (age-flush coalescing) the credit round-trip
// has a latency floor independent of CPU. Together they make the hot
// router's single uplink the subtree's throughput cap: window / RTT.
// Splitting the hot router doubles the aggregate uplink window, which is
// exactly how elasticity buys sustained packets per second even on one
// core. Hot leaves stream closed-loop (as fast as credits allow) with 4x
// the per-leaf volume of the paced cold background; the run ends when
// the hot backlog has fully drained, which is the quantity elasticity is
// supposed to accelerate.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// TagElastic marks the ablation's data and start packets.
const TagElastic int32 = 7101

// ElasticConfig parameterizes the elastic ablation.
type ElasticConfig struct {
	// Spec is the overlay shape; the headline run is kary:8^2 (8 routers,
	// 64 leaves, the hot subtree under rank 1).
	Spec string
	// HotQuota is how many packets each hot leaf injects closed-loop.
	HotQuota int
	// ColdBurst is the cold background pace: packets per 10ms per cold
	// leaf, sustained until the hot backlog drains.
	ColdBurst int
	// Window is the credit window (core.Config.LinkWindow); small, so
	// uplinks are in-flight-bound and splitting pays.
	Window int
	// Transport selects the fabric; default TCP (a real round-trip per
	// credit, the regime the controller is for).
	Transport core.TransportKind
	// Period and Cooldown tune the controller; UniformSecs bounds the
	// uniform-load control arm. SplitAbove is the skewed arm's split
	// threshold: under this workload a split candidate scores >= 2.0 and
	// the converged shape ~1.5, so 1.7 sits inside the gap — candidates
	// fire decisively, the plateau holds decisively.
	Period      time.Duration
	Cooldown    time.Duration
	UniformSecs float64
	SplitAbove  float64
	// Timeout bounds each arm.
	Timeout time.Duration
}

// DefaultElasticConfig is laptop-runnable (~15s for the three arms).
func DefaultElasticConfig() ElasticConfig {
	return ElasticConfig{
		Spec:        "kary:8^2",
		HotQuota:    8000,
		ColdBurst:   1,
		Window:      8,
		Transport:   core.TCPTransport,
		Period:      40 * time.Millisecond,
		Cooldown:    150 * time.Millisecond,
		UniformSecs: 2,
		SplitAbove:  1.7,
		Timeout:     90 * time.Second,
	}
}

// ElasticRow reports one arm of the ablation.
type ElasticRow struct {
	// Mode is "static" (controller off), "elastic" (controller on), or
	// "uniform" (controller on, no skew — the zero-churn control).
	Mode string
	// ElapsedSec is start-multicast to full drain of every accepted id.
	ElapsedSec float64
	// Sent/Delivered/Lost are the delivery totals; Lost must be zero on
	// the exactly-once fabric, mutations or not.
	Sent      int
	Delivered int
	Lost      int
	// RatePkts is delivered packets per second of elapsed time — the
	// headline sustained throughput.
	RatePkts float64
	// HotRate and ColdRate are per-leaf delivered rates (pkts/s), whose
	// ratio is the achieved skew.
	HotRate  float64
	ColdRate float64
	// P50Ms/P99Ms are injection-to-delivery latency percentiles over the
	// paced cold background (the bystander cost of the skew and of the
	// churn that fixes it); hot ids are closed-loop, so their timestamps
	// include credit wait and are not comparable across arms.
	P50Ms float64
	P99Ms float64
	// Splits/Merges count committed mutations; LastMutationSec is the
	// last one's offset from the start (-1 when none) and ConvergedFrac
	// its fraction of the elapsed run.
	Splits          int
	Merges          int
	LastMutationSec float64
	ConvergedFrac   float64
}

// RunElastic executes the ablation: static, elastic, and uniform arms
// over the same overlay shape and workload generator.
func RunElastic(cfg ElasticConfig) ([]ElasticRow, error) {
	if cfg.Spec == "" {
		cfg = DefaultElasticConfig()
	}
	rows := make([]ElasticRow, 0, 3)
	for _, mode := range []string{"static", "elastic", "uniform"} {
		row, err := runElasticArm(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("elastic %s arm: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runElasticArm(cfg ElasticConfig, mode string) (ElasticRow, error) {
	tree, err := topology.ParseSpec(cfg.Spec)
	if err != nil {
		return ElasticRow{}, err
	}
	// The hot subtree is everything under the first internal process;
	// "uniform" has no hot leaves at all.
	hotLeaf := map[core.Rank]bool{}
	var nHot, nCold int
	for _, l := range tree.Leaves() {
		if mode != "uniform" && tree.Parent(l) == 1 {
			hotLeaf[l] = true
			nHot++
		} else {
			nCold++
		}
	}

	var (
		sentHot, sentCold atomic.Int64
		hotLeft, coldLeft atomic.Int64
	)
	hotLeft.Store(int64(nHot))
	coldLeft.Store(int64(nCold))
	stopCold := make(chan struct{})

	nw, err := core.NewNetwork(core.Config{
		Topology:         tree,
		Transport:        cfg.Transport,
		Recoverable:      true,
		ExactlyOnce:      true,
		LinkWindow:       cfg.Window,
		Batch:            core.DefaultBatchPolicy(),
		LoadReportPeriod: 10 * time.Millisecond,
		OnBackEnd: func(be *core.BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			sid := p.StreamID
			// Watch for the shutdown announcement while streaming: Recv
			// erroring is the only signal a non-blocking sender sees.
			down := make(chan struct{})
			go func() {
				for {
					if _, err := be.Recv(); err != nil {
						close(down)
						return
					}
				}
			}()
			if hotLeaf[be.Rank()] {
				for i := 0; i < cfg.HotQuota; i++ {
					select {
					case <-down:
						return nil
					default:
					}
					// Send blocks on credits (closed-loop); a transient
					// mid-migration failure just forfeits that id.
					if be.Send(sid, TagElastic, "%d %d", int64(1), time.Now().UnixNano()) == nil {
						sentHot.Add(1)
					}
				}
				_ = be.Flush()
				hotLeft.Add(-1)
				<-down
				return nil
			}
			for {
				select {
				case <-down:
					return nil
				case <-stopCold:
					_ = be.Flush()
					coldLeft.Add(-1)
					<-down
					return nil
				default:
				}
				for i := 0; i < cfg.ColdBurst; i++ {
					if be.Send(sid, TagElastic, "%d %d", int64(0), time.Now().UnixNano()) == nil {
						sentCold.Add(1)
					}
				}
				time.Sleep(10 * time.Millisecond)
			}
		},
	})
	if err != nil {
		return ElasticRow{}, err
	}
	defer nw.Shutdown()

	var ctl *elastic.Controller
	if mode != "static" {
		mergeBelow := 0.0 // package default for the uniform control arm
		if mode == "elastic" {
			// The skewed arm drains to empty, so every subtree eventually
			// goes idle; a split-only controller keeps the headline about
			// scaling up, while merging is covered by its own tests.
			mergeBelow = -1
		}
		ctl = elastic.New(elastic.Config{
			Network:    nw,
			Period:     cfg.Period,
			Cooldown:   cfg.Cooldown,
			SplitAbove: cfg.SplitAbove,
			MergeBelow: mergeBelow,
		})
		ctl.Start()
		defer ctl.Stop()
	}

	st, err := nw.NewStream(core.StreamSpec{Transformation: "null", Synchronization: "nullsync"})
	if err != nil {
		return ElasticRow{}, err
	}
	start := time.Now()
	if err := st.Multicast(TagElastic, ""); err != nil {
		return ElasticRow{}, err
	}

	var (
		delivHot, delivCold int
		lat                 []float64
		coldStopped         bool
	)
	deadline := time.Now().Add(cfg.Timeout)
	for {
		if !coldStopped {
			uniformDone := mode == "uniform" && time.Since(start).Seconds() >= cfg.UniformSecs
			hotDone := nHot > 0 && hotLeft.Load() == 0 && int64(delivHot) >= sentHot.Load()
			if uniformDone || hotDone {
				close(stopCold)
				coldStopped = true
			}
		}
		if coldStopped && coldLeft.Load() == 0 &&
			int64(delivHot+delivCold) >= sentHot.Load()+sentCold.Load() {
			break
		}
		if time.Now().After(deadline) {
			break // report the shortfall as loss
		}
		p, err := st.RecvTimeout(100 * time.Millisecond)
		if err != nil {
			continue
		}
		if p.Tag != TagElastic {
			continue
		}
		class, err1 := p.Int(0)
		ns, err2 := p.Int(1)
		if err1 != nil || err2 != nil {
			continue
		}
		if class == 1 {
			delivHot++
			continue
		}
		delivCold++
		// Latency is measured on the paced cold background only: hot ids
		// are closed-loop, so their injection timestamps include the
		// credit wait inside Send — not comparable across arms. The cold
		// bystanders are paced below capacity in every arm, making their
		// tail the honest "what does the skew (and the churn that fixes
		// it) cost everyone else" number.
		lat = append(lat, float64(time.Now().UnixNano()-ns)/1e6)
	}
	elapsed := time.Since(start)

	row := ElasticRow{
		Mode:            mode,
		ElapsedSec:      elapsed.Seconds(),
		Sent:            int(sentHot.Load() + sentCold.Load()),
		Delivered:       delivHot + delivCold,
		LastMutationSec: -1,
	}
	row.Lost = row.Sent - row.Delivered
	if s := elapsed.Seconds(); s > 0 {
		row.RatePkts = float64(row.Delivered) / s
		if nHot > 0 {
			row.HotRate = float64(delivHot) / float64(nHot) / s
		}
		if nCold > 0 {
			row.ColdRate = float64(delivCold) / float64(nCold) / s
		}
	}
	sort.Float64s(lat)
	if n := len(lat); n > 0 {
		row.P50Ms = lat[n/2]
		row.P99Ms = lat[n*99/100]
	}
	if ctl != nil {
		for _, m := range ctl.Mutations() {
			switch m.Kind {
			case "split":
				row.Splits++
			case "merge":
				row.Merges++
			}
			if off := m.At.Sub(start).Seconds(); off > row.LastMutationSec {
				row.LastMutationSec = off
			}
		}
		if row.LastMutationSec >= 0 && row.ElapsedSec > 0 {
			row.ConvergedFrac = row.LastMutationSec / row.ElapsedSec
		}
	}
	return row, nil
}

// ElasticTable renders the ablation.
func ElasticTable(cfg ElasticConfig, rows []ElasticRow) string {
	if cfg.Spec == "" {
		cfg = DefaultElasticConfig()
	}
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-ELASTIC — load-driven tree mutation under 4:1 subtree skew, %s, window %d",
			cfg.Spec, cfg.Window),
		"mode", "elapsed-s", "pkts/s", "hot/leaf/s", "cold/leaf/s", "cold-p50-ms", "cold-p99-ms", "splits", "merges", "last-mut-s", "lost")
	for _, r := range rows {
		tb.AddRow(r.Mode, r.ElapsedSec, r.RatePkts, r.HotRate, r.ColdRate,
			r.P50Ms, r.P99Ms, r.Splits, r.Merges, r.LastMutationSec, r.Lost)
	}
	return tb.String()
}
