package experiments

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/meanshift"
	"repro/internal/simnet"
)

// smallFig4 keeps unit-test runtime modest while preserving the shape.
func smallFig4() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.Scales = []int{8, 16, 64, 128}
	cfg.PointsPerCluster = 60
	return cfg
}

// TestFig4Shape checks the paper's three claims on the regenerated figure:
// single-node time grows roughly linearly with scale; the deep tree beats
// the flat tree at the largest scale; and the deep curve stays much
// flatter than the single curve.
func TestFig4Shape(t *testing.T) {
	rows, err := RunFig4(smallFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	scaleRatio := float64(last.Scale) / float64(first.Scale) // 16x

	// Claim 1: single-node grows with the input (at least half-linearly;
	// timing noise and cache effects blur exact linearity).
	singleRatio := float64(last.Single) / float64(first.Single)
	if singleRatio < scaleRatio/4 {
		t.Errorf("single-node grew only %.1fx over a %.0fx scale increase", singleRatio, scaleRatio)
	}

	// Claim 2: at the largest scale the deep tree beats flat and single.
	if last.Deep >= last.Flat {
		t.Errorf("deep (%v) not faster than flat (%v) at scale %d", last.Deep, last.Flat, last.Scale)
	}
	if last.Deep >= last.Single {
		t.Errorf("deep (%v) not faster than single (%v) at scale %d", last.Deep, last.Single, last.Scale)
	}

	// Claim 3: the deep curve is much flatter than single's.
	deepRatio := float64(last.Deep) / float64(first.Deep)
	if deepRatio > singleRatio {
		t.Errorf("deep grew %.1fx, single %.1fx — deep should be flatter", deepRatio, singleRatio)
	}

	// Sanity: the distributed computation still finds the true modes.
	for _, r := range rows {
		if r.Peaks < 1 || r.Peaks > 2*smallFig4().Clusters+2 {
			t.Errorf("scale %d: %d peaks is implausible", r.Scale, r.Peaks)
		}
	}
	t.Logf("\n%s", Fig4Table(rows))
}

func TestFig4DefaultsApplied(t *testing.T) {
	// Empty config falls back to defaults (just verify it runs one scale).
	cfg := DefaultFig4Config()
	cfg.Scales = []int{4}
	cfg.PointsPerCluster = 30
	rows, err := RunFig4(cfg)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if rows[0].DeepFanOut != 2 {
		t.Errorf("deep fan-out for 4 leaves = %d, want 2", rows[0].DeepFanOut)
	}
}

// TestStartupShape checks §2.2's claims: the flat startup exceeds 60s, the
// tree startup is under 20s, the speedup is at least 3x, and suppression
// collapses 512 report messages to the class count.
func TestStartupShape(t *testing.T) {
	res, err := RunStartup(DefaultStartupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FlatTotal < 60*time.Second {
		t.Errorf("flat startup %v, paper reports over 1 minute", res.FlatTotal)
	}
	if res.TreeTotal > 20*time.Second {
		t.Errorf("tree startup %v, paper reports under 20 seconds", res.TreeTotal)
	}
	if res.Speedup < 3 {
		t.Errorf("speedup %.1fx, paper reports 3.4x", res.Speedup)
	}
	if res.ReportMsgsFlat != 512 {
		t.Errorf("flat report messages = %d, want 512", res.ReportMsgsFlat)
	}
	if res.ReportMsgsTree > DefaultStartupConfig().ReportClasses {
		t.Errorf("tree forwards %d report messages, want <= %d classes",
			res.ReportMsgsTree, DefaultStartupConfig().ReportClasses)
	}
	// The composed tree estimates must stay accurate (within a few jitter
	// widths even after composition across levels).
	if res.SkewErrTree > 10*DefaultStartupConfig().ProbeJitter {
		t.Errorf("tree skew error %v too large", res.SkewErrTree)
	}
	t.Logf("\n%s", StartupTable(res))
}

// TestThroughputShape checks that the TBON front-end sustains a higher
// record rate than the flat front-end at scale, and that the gap widens
// as daemons are added (the flat front-end is the bottleneck).
func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput overlay runs in -short mode")
	}
	cfg := ThroughputConfig{
		DaemonCounts: []int{16, 128},
		// 60 rounds stretch the measured window to tens of milliseconds:
		// at 20 the flat-vs-tree comparison was dominated by startup and
		// scheduler jitter and flaked under parallel test load.
		Rounds:    60,
		Functions: 32,
		FanOut:    8,
	}
	rows, err := RunThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.TreeRate <= last.FlatRate {
		t.Errorf("at %d daemons tree rate %.0f <= flat rate %.0f",
			last.Daemons, last.TreeRate, last.FlatRate)
	}
	firstGap := rows[0].TreeRate / rows[0].FlatRate
	lastGap := last.TreeRate / last.FlatRate
	if lastGap < firstGap/2 {
		t.Errorf("tree advantage shrank: %.2fx at %d daemons, %.2fx at %d",
			firstGap, rows[0].Daemons, lastGap, last.Daemons)
	}
	t.Logf("\n%s", ThroughputTable(rows))
}

// TestOverheadExact verifies the paper's arithmetic to the digit.
func TestOverheadExact(t *testing.T) {
	rows, err := RunOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].BackEnds != 256 || rows[0].Internal != 16 || rows[0].Overhead != 0.0625 {
		t.Errorf("256-back-end row: %+v", rows[0])
	}
	if rows[1].BackEnds != 4096 || rows[1].Internal != 272 {
		t.Errorf("4096-back-end row: %+v", rows[1])
	}
	if math.Abs(rows[1].Overhead-272.0/4096.0) > 1e-12 {
		t.Errorf("overhead = %v", rows[1].Overhead)
	}
	t.Logf("\n%s", OverheadTable(rows))
}

func TestSGFARun(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node overlay in -short mode")
	}
	cfg := SGFAConfig{Leaves: 256, FanOut: 8, Shapes: 4, Depth: 3}
	res, err := RunSGFA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoldCorrect {
		t.Errorf("fold incorrect: %d classes", res.Classes)
	}
	if res.Reduction < 4 {
		t.Errorf("payload reduction %.1fx, want substantial (>4x)", res.Reduction)
	}
	t.Logf("\n%s", SGFATable(res))
}

func TestFanOutSweep(t *testing.T) {
	cfg := FanOutSweepConfig{
		Leaves:  64,
		FanOuts: []int{2, 8, 64},
		Fig4:    smallFig4(),
	}
	rows, err := RunFanOutSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The flat end of the sweep (fan-out = leaves) must not beat every
	// deeper tree: bounded fan-out is the point of the paper.
	flat := rows[len(rows)-1]
	bestDeep := rows[0].Makespan
	for _, r := range rows[:len(rows)-1] {
		if r.Makespan < bestDeep {
			bestDeep = r.Makespan
		}
	}
	if flat.Makespan < bestDeep/2 {
		t.Errorf("flat (%v) dramatically beats every bounded fan-out (best %v)", flat.Makespan, bestDeep)
	}
	t.Logf("\n%s", FanOutTable(cfg.Leaves, rows))
}

func TestSyncPolicyAblation(t *testing.T) {
	rows, err := RunSyncPolicyAblation(8, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SyncPolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// WaitForAll must wait for the straggler; Null must not.
	if byName["waitforall"].Latency < 250*time.Millisecond {
		t.Errorf("waitforall latency %v did not include the straggler", byName["waitforall"].Latency)
	}
	if byName["nullsync"].Latency > 250*time.Millisecond {
		t.Errorf("nullsync latency %v waited for the straggler", byName["nullsync"].Latency)
	}
	if byName["timeout"].Latency >= byName["waitforall"].Latency {
		t.Errorf("timeout (%v) not faster than waitforall (%v)",
			byName["timeout"].Latency, byName["waitforall"].Latency)
	}
	t.Logf("\n%s", SyncPolicyTable(rows))
}

func TestTransportAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP overlay in -short mode")
	}
	rows, err := RunTransportAblation(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	t.Logf("\n%s", TransportTable(16, rows))
}

// TestMakespanModelMonotone: adding communication cost can only increase
// the modeled makespan.
func TestMakespanModelMonotone(t *testing.T) {
	cfg := smallFig4()
	centers := meanshift.DefaultCenters(cfg.Clusters, cfg.Field)
	leafData := make([][]meanshift.Point, 16)
	for i := range leafData {
		leafData[i] = meanshift.Generate(meanshift.GenParams{
			Centers: centers, Spread: cfg.Spread,
			PointsPerCluster: 40, CenterJitter: cfg.Jitter, Seed: int64(i),
		})
	}
	tree := topologyFlat(16)
	cheap := cfg
	cheap.Net = simnet.Model{} // free network
	costly := cfg
	costly.Net = simnet.Model{Latency: 10 * time.Millisecond, Bandwidth: 1e6}
	tCheap, _, err := distributedMakespan(tree, leafData, cheap)
	if err != nil {
		t.Fatal(err)
	}
	tCostly, _, err := distributedMakespan(tree, leafData, costly)
	if err != nil {
		t.Fatal(err)
	}
	// 16 children x >=10ms latency each must appear in the makespan.
	if tCostly < tCheap+100*time.Millisecond {
		t.Errorf("costly net makespan %v vs free %v: transfer cost missing", tCostly, tCheap)
	}
}

// TestRecoveryStudy: every shape recovers, produces the correct
// post-recovery answer, and reports sane latencies (detection at least the
// configured timeout, totals dominated by detection, not rewiring).
func TestRecoveryStudy(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	cfg.Shapes = []string{"kary:2^3", "kary:4^2"}
	rows, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One row per (transport, shape): live rewiring runs on both fabrics.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 shapes x 2 fabrics)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Transport] = true
		if !r.Correct {
			t.Errorf("%s/%s: post-recovery reduction incorrect", r.Transport, r.Shape)
		}
		if r.Detection < cfg.Timeout {
			t.Errorf("%s/%s: detection %v under the %v timeout", r.Transport, r.Shape, r.Detection, cfg.Timeout)
		}
		if r.Rewire <= 0 || r.Total < r.Detection {
			t.Errorf("%s/%s: implausible latencies %+v", r.Transport, r.Shape, r)
		}
		if r.Orphans <= 0 {
			t.Errorf("%s/%s: internal victim %d adopted no orphans", r.Transport, r.Shape, r.Victim)
		}
	}
	if !seen["chan"] || !seen["tcp"] {
		t.Errorf("fabrics measured = %v, want both chan and tcp", seen)
	}
	t.Logf("\n%s", RecoveryTable(rows))
}

// TestBatchingAblationShape: the sweep covers every (fan-out, window)
// pair, rates are positive, and the batched runs actually batch (mean
// frame size above 1).
func TestBatchingAblationShape(t *testing.T) {
	cfg := BatchingConfig{
		Leaves:   64,
		FanOuts:  []int{8},
		Windows:  []int{0, 16},
		Rounds:   50,
		MaxDelay: 2 * time.Millisecond,
	}
	rows, err := RunBatching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Errorf("fanout %d window %d: rate %v", r.FanOut, r.Window, r.Rate)
		}
	}
	if rows[1].AvgFrame <= 1 {
		t.Errorf("batched run mean frame size %.2f, want > 1", rows[1].AvgFrame)
	}
	t.Logf("\n%s", BatchingTable(cfg, rows))
}

// TestBatchingSpeedup locks in the tentpole's headline number: on the
// chan transport with small packets, egress batching must deliver at
// least 1.5x the un-batched packet rate (locally it measures ~2x). Best
// of three runs per mode defends against scheduler noise; a second full
// measurement is taken before declaring failure.
func TestBatchingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement in -short mode")
	}
	const leaves, fanOut, window, rounds = 256, 16, 64, 600
	best := func(w int) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			r, err := BatchingPoint(leaves, fanOut, w, rounds)
			if err != nil {
				t.Fatal(err)
			}
			if r > b {
				b = r
			}
		}
		return b
	}
	var ratio float64
	for attempt := 0; attempt < 2; attempt++ {
		off := best(0)
		on := best(window)
		ratio = on / off
		t.Logf("attempt %d: off=%.0f pkts/s on=%.0f pkts/s ratio=%.2f", attempt, off, on, ratio)
		if ratio >= 1.5 {
			return
		}
	}
	t.Errorf("batching speedup %.2fx, want >= 1.5x", ratio)
}

// TestFlowControlAblationShape: the credit-window × slow-consumer sweep
// runs end to end, the flow-controlled rows honor the window bound on the
// egress gauge, and the protocol visibly engages under the slow consumer.
func TestFlowControlAblationShape(t *testing.T) {
	cfg := FlowControlConfig{
		Leaves:      16,
		FanOut:      4,
		Windows:     []int{0, 8},
		SlowFactors: []int{1, 50},
		Rounds:      60,
		PerPacket:   5 * time.Microsecond,
	}
	rows, err := RunFlowControl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Errorf("window %d slow %d: rate %v", r.Window, r.SlowFactor, r.Rate)
		}
		if r.Window > 0 {
			if r.EgressHighWater > int64(r.Window) {
				t.Errorf("window %d slow %d: egress high-water %d exceeds the window",
					r.Window, r.SlowFactor, r.EgressHighWater)
			}
			if r.CreditGrants == 0 {
				t.Errorf("window %d slow %d: no grants; flow control never engaged", r.Window, r.SlowFactor)
			}
		} else if r.CreditStalls != 0 || r.CreditGrants != 0 {
			t.Errorf("baseline row moved credit counters: %+v", r)
		}
	}
	t.Logf("\n%s", FlowControlTable(cfg, rows))
}

// TestMultiTenantShape runs the session-fabric study small: every swept
// tenant count completes its ops, fairness is a sane ratio, and the
// concurrent rows don't collapse versus the sequential baseline.
func TestMultiTenantShape(t *testing.T) {
	cfg := DefaultMultiTenantConfig()
	cfg.Leaves, cfg.FanOut = 16, 4
	cfg.Tenants = []int{1, 2, 4}
	cfg.OpsPerTenant = 8
	cfg.SketchItems = 50
	rows, err := RunMultiTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ops != r.Tenants*cfg.OpsPerTenant {
			t.Errorf("%d tenants: ops = %d", r.Tenants, r.Ops)
		}
		if r.AggRate <= 0 || r.MinRate <= 0 || r.MaxRate < r.MinRate {
			t.Errorf("%d tenants: rates %+v", r.Tenants, r)
		}
		if r.Fairness <= 0 || r.Fairness > 1.0001 {
			t.Errorf("%d tenants: fairness = %g", r.Tenants, r.Fairness)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %g", rows[0].Speedup)
	}
}

// TestExactlyOnceAblationShape runs the exactly-once ablation small: the
// exactly-once arm must hold the delivery invariant with the ring bounded
// by the window; the lossy arm must at least deliver something and never
// duplicate (at-most-once).
func TestExactlyOnceAblationShape(t *testing.T) {
	cfg := ExactlyOnceConfig{
		Spec:       "kary:2^3",
		PerBE:      40,
		Window:     8,
		Transports: []core.TransportKind{core.ChanTransport},
		Seeds:      []int64{0, 1},
	}
	rows, err := RunExactlyOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Runs != len(cfg.Seeds) || r.Kills == 0 {
			t.Errorf("%+v: runs/kills wrong", r)
		}
		if r.Duplicated != 0 {
			t.Errorf("mode exactly-once=%v duplicated %d ids (at-most-once broken)", r.ExactlyOnce, r.Duplicated)
		}
		if r.ExactlyOnce {
			if !r.InvariantHeld || r.Lost != 0 {
				t.Errorf("exactly-once arm lost %d ids: %+v", r.Lost, r)
			}
			if r.RingHighWater > int64(cfg.Window) {
				t.Errorf("ring high water %d exceeds window %d", r.RingHighWater, cfg.Window)
			}
		} else {
			if r.Delivered == 0 {
				t.Errorf("lossy arm delivered nothing: %+v", r)
			}
			if r.PacketsReplayed != 0 || r.RingHighWater != 0 {
				t.Errorf("lossy arm moved replay counters: %+v", r)
			}
		}
	}
	t.Logf("\n%s", ExactlyOnceTable(cfg, rows))
}

// TestElasticAblationShape is the elastic smoke: a scaled-down skewed
// run on the chan fabric where the controller must beat (or at worst
// match) the static tree on sustained throughput, mutate at least once
// under skew, mutate never under uniform load, and lose nothing on the
// exactly-once fabric throughout.
func TestElasticAblationShape(t *testing.T) {
	cfg := ElasticConfig{
		Spec:        "kary:4^2",
		HotQuota:    1200,
		ColdBurst:   1,
		Window:      8,
		Transport:   core.ChanTransport,
		Period:      30 * time.Millisecond,
		Cooldown:    120 * time.Millisecond,
		UniformSecs: 1,
		SplitAbove:  1.7,
		Timeout:     60 * time.Second,
	}
	rows, err := RunElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMode := map[string]ElasticRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Lost != 0 {
			t.Errorf("%s arm lost %d packets on the exactly-once fabric", r.Mode, r.Lost)
		}
		if r.Delivered == 0 || r.RatePkts <= 0 {
			t.Errorf("%s arm delivered nothing: %+v", r.Mode, r)
		}
	}
	st, el, un := byMode["static"], byMode["elastic"], byMode["uniform"]
	if st.Splits != 0 || st.Merges != 0 {
		t.Errorf("static arm mutated: %+v", st)
	}
	if el.Splits == 0 {
		t.Errorf("elastic arm never split under skew: %+v", el)
	}
	if el.RatePkts < st.RatePkts {
		t.Errorf("elastic %.0f pkts/s below static %.0f", el.RatePkts, st.RatePkts)
	}
	if un.Splits != 0 || un.Merges != 0 {
		t.Errorf("uniform load mutated the tree: %+v", un)
	}
	t.Logf("\n%s", ElasticTable(cfg, rows))
}
