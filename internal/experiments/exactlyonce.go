package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eqclass/chaos"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// ExactlyOnceConfig parameterizes the exactly-once recovery ablation: the
// same seeded kill schedules run twice over the delivery-invariant chaos
// harness — once with sender replay + dedup (core.Config.ExactlyOnce) and
// once with plain lossy adoption — and the rows put the delivery outcome
// and the price (replay traffic, ring memory, throughput) side by side.
type ExactlyOnceConfig struct {
	// Spec is the overlay shape under chaos.
	Spec string
	// PerBE is how many uniquely-tagged ids each back-end injects.
	PerBE int
	// Window is the credit window, which also prices the replay ring.
	Window int
	// Transports are the link substrates under test; empty means chan
	// and TCP.
	Transports []core.TransportKind
	// Seeds generate the kill schedules; each seed runs in BOTH modes so
	// the ablation compares identical failure sequences.
	Seeds []int64
}

// DefaultExactlyOnceConfig is laptop-runnable (~20 chaos runs).
func DefaultExactlyOnceConfig() ExactlyOnceConfig {
	return ExactlyOnceConfig{
		Spec:       "kary:2^3",
		PerBE:      80,
		Window:     8,
		Transports: []core.TransportKind{core.ChanTransport, core.TCPTransport},
		Seeds:      []int64{0, 1, 2, 3, 4},
	}
}

// ExactlyOnceRow aggregates one (transport, mode) cell of the ablation
// over every seeded schedule.
type ExactlyOnceRow struct {
	Transport string
	// ExactlyOnce distinguishes the recovery mode: true is the full
	// replay+dedup protocol, false the lossy-adoption ablation.
	ExactlyOnce bool
	// Runs is the number of seeded schedules aggregated; Kills the total
	// injected failures across them.
	Runs  int
	Kills int
	// Sent/Delivered/Lost/Duplicated total the delivery multisets.
	Sent       int
	Delivered  int
	Lost       int
	Duplicated int
	// InvariantHeld is true when every run delivered exactly the sent
	// multiset — the exactly-once acceptance bar.
	InvariantHeld bool
	// Rate is delivered ids per second of chaos wall time.
	Rate float64
	// PacketsReplayed, DupsDropped, and RingHighWater price the protocol;
	// the ring high water may never exceed Window.
	PacketsReplayed int64
	DupsDropped     int64
	RingHighWater   int64
}

// RunExactlyOnce executes the ablation: every seed's schedule runs in both
// modes on every transport.
func RunExactlyOnce(cfg ExactlyOnceConfig) ([]ExactlyOnceRow, error) {
	if cfg.Spec == "" {
		cfg = DefaultExactlyOnceConfig()
	}
	tree, err := topology.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	transports := cfg.Transports
	if len(transports) == 0 {
		transports = []core.TransportKind{core.ChanTransport, core.TCPTransport}
	}
	var rows []ExactlyOnceRow
	for _, kind := range transports {
		for _, exactly := range []bool{true, false} {
			row := ExactlyOnceRow{
				Transport:     transportName(kind),
				ExactlyOnce:   exactly,
				InvariantHeld: true,
			}
			var elapsed time.Duration
			for _, seed := range cfg.Seeds {
				sched := chaos.GenSchedule(tree, seed)
				start := time.Now()
				res, err := chaos.RunChaos(chaos.ChaosConfig{
					Spec:        cfg.Spec,
					Transport:   kind,
					PerBE:       cfg.PerBE,
					Window:      cfg.Window,
					ExactlyOnce: exactly,
					Schedule:    sched,
					// The lossy arm never reaches the expected count; the
					// shortfall IS its result, so stop once deliveries dry up.
					StallGrace: time.Second,
				})
				if err != nil {
					return nil, fmt.Errorf("exactlyonce %s seed %d: %w", row.Transport, seed, err)
				}
				elapsed += time.Since(start)
				row.Runs++
				row.Kills += len(sched.Kills)
				row.Sent += res.Sent
				row.Delivered += res.Delivered
				row.Lost += len(res.Lost)
				row.Duplicated += len(res.Duplicated)
				row.InvariantHeld = row.InvariantHeld && res.Ok()
				row.PacketsReplayed += res.PacketsReplayed
				row.DupsDropped += res.DupsDropped
				if res.ReplayRingHighWater > row.RingHighWater {
					row.RingHighWater = res.ReplayRingHighWater
				}
			}
			if s := elapsed.Seconds(); s > 0 {
				row.Rate = float64(row.Delivered) / s
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ExactlyOnceTable renders the ablation.
func ExactlyOnceTable(cfg ExactlyOnceConfig, rows []ExactlyOnceRow) string {
	if cfg.Spec == "" {
		cfg = DefaultExactlyOnceConfig()
	}
	tb := metrics.NewTable(
		fmt.Sprintf("ABLATE-EXACTLYONCE — delivery invariant under seeded kill schedules, %s, window %d (mode lossy = replay/dedup off)",
			cfg.Spec, cfg.Window),
		"transport", "mode", "runs", "kills", "sent", "delivered", "lost", "dup", "ids/s", "replayed", "ring-hw")
	for _, r := range rows {
		mode := "exactly-once"
		if !r.ExactlyOnce {
			mode = "lossy"
		}
		tb.AddRow(r.Transport, mode, r.Runs, r.Kills, r.Sent, r.Delivered, r.Lost, r.Duplicated,
			r.Rate, r.PacketsReplayed, r.RingHighWater)
	}
	return tb.String()
}
