package topology

import "fmt"

// Flat builds the paper's 1-deep ("shallow") organization: a front-end
// directly connected to n back-ends. This is the simple scaling solution
// whose front-end fan-in becomes the bottleneck at large scale.
func Flat(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: flat tree needs at least 1 back-end, got %d", ErrInvalid, n)
	}
	parents := make([]Rank, n+1)
	parents[0] = NoRank
	for i := 1; i <= n; i++ {
		parents[i] = 0
	}
	return FromParents(parents)
}

// KAry builds a fully balanced k-ary tree: every non-leaf node has exactly
// fanout children and all back-ends sit at depth levels below the front-end.
// The tree has fanout^depth back-ends. KAry(f, 1) is Flat(f);
// KAry(f, 2) is the paper's 2-deep ("deep") organization.
func KAry(fanout, depth int) (*Tree, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("%w: k-ary fan-out must be >= 1, got %d", ErrInvalid, fanout)
	}
	if depth < 1 {
		return nil, fmt.Errorf("%w: k-ary depth must be >= 1, got %d", ErrInvalid, depth)
	}
	total := 1
	width := 1
	for l := 1; l <= depth; l++ {
		if width > 1<<24/fanout {
			return nil, fmt.Errorf("%w: k-ary %d^%d too large", ErrInvalid, fanout, depth)
		}
		width *= fanout
		total += width
	}
	parents := make([]Rank, total)
	parents[0] = NoRank
	// Breadth-first: level l starts at index start(l); each node i at level l
	// has parent (i - levelStart)/fanout + prevLevelStart.
	levelStart := 0
	prevStart := 0
	width = 1
	idx := 1
	for l := 1; l <= depth; l++ {
		prevStart = levelStart
		levelStart = idx
		width *= fanout
		for j := 0; j < width; j++ {
			parents[idx] = Rank(prevStart + j/fanout)
			idx++
		}
	}
	return FromParents(parents)
}

// Balanced builds the shallowest k-ary-shaped tree that connects exactly
// leaves back-ends with no node exceeding the given fan-out. Unlike KAry it
// does not require leaves to be a power of fanout: the last internal level
// distributes back-ends as evenly as possible. Balanced(n, f) with n <= f
// degenerates to Flat(n).
func Balanced(leaves, fanout int) (*Tree, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("%w: need at least 1 back-end, got %d", ErrInvalid, leaves)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("%w: balanced fan-out must be >= 2, got %d", ErrInvalid, fanout)
	}
	if leaves <= fanout {
		return Flat(leaves)
	}
	// Number of internal levels needed so that fanout^levels >= leaves.
	levels := 0
	cap := 1
	for cap < leaves {
		cap *= fanout
		levels++
	}
	// Width of each level: level 0 is the root (width 1); the last level is
	// the back-ends (width = leaves). Intermediate level l has
	// ceil(width[l+1] / fanout) nodes.
	widths := make([]int, levels+1)
	widths[levels] = leaves
	for l := levels - 1; l >= 1; l-- {
		widths[l] = (widths[l+1] + fanout - 1) / fanout
	}
	widths[0] = 1

	total := 0
	for _, w := range widths {
		total += w
	}
	parents := make([]Rank, total)
	parents[0] = NoRank
	start := make([]int, levels+1)
	for l := 1; l <= levels; l++ {
		start[l] = start[l-1] + widths[l-1]
	}
	for l := 1; l <= levels; l++ {
		// Distribute widths[l] children over widths[l-1] parents as evenly
		// as possible, preserving contiguity.
		w, pw := widths[l], widths[l-1]
		base, extra := w/pw, w%pw
		idx := start[l]
		for p := 0; p < pw; p++ {
			c := base
			if p < extra {
				c++
			}
			for j := 0; j < c; j++ {
				parents[idx] = Rank(start[l-1] + p)
				idx++
			}
		}
	}
	return FromParents(parents)
}

// KNomial builds a k-nomial tree of the given order and dimension, the
// skewed topology the paper lists alongside balanced k-ary trees. In a
// k-nomial tree of dimension d, the root has d subtrees where subtree i is a
// k-nomial tree of dimension i scaled by (k-1) siblings per dimension; a
// binomial tree is KNomial(2, d). The tree has k^d total nodes.
func KNomial(k, dim int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: k-nomial order must be >= 2, got %d", ErrInvalid, k)
	}
	if dim < 1 {
		return nil, fmt.Errorf("%w: k-nomial dimension must be >= 1, got %d", ErrInvalid, dim)
	}
	total := 1
	for i := 0; i < dim; i++ {
		if total > 1<<24/k {
			return nil, fmt.Errorf("%w: k-nomial %d^%d too large", ErrInvalid, k, dim)
		}
		total *= k
	}
	// Recursive-doubling construction: at step i (i = 0..dim-1) every
	// existing node n (n < k^i) gains k-1 children n + m*k^i, m = 1..k-1.
	parents := make([]Rank, total)
	parents[0] = NoRank
	count := 1
	for i := 0; i < dim; i++ {
		for n := 0; n < count; n++ {
			for m := 1; m < k; m++ {
				parents[n+m*count] = Rank(n)
			}
		}
		count *= k
	}
	return FromParents(parents)
}
