// Package topology describes and constructs the process-tree organizations a
// TBON can assume: balanced k-ary trees, skewed k-nomial trees, flat
// one-to-many fan-outs, and arbitrary explicit trees. It also computes the
// structural statistics the paper reports (depth, maximum fan-out, and the
// internal-node overhead of deep trees relative to their back-end count).
//
// Nodes are identified by dense ranks assigned in breadth-first order with
// the front-end (root) at rank 0. Rank 0 is always the front-end, leaves are
// always back-ends, and everything between is a communication process.
package topology

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/packet"
)

// Rank aliases the packet rank type so the two packages agree on identity.
type Rank = packet.Rank

// NoRank marks "no parent" (the root) or an unassigned rank.
const NoRank Rank = -1

// Node is one vertex of the process tree.
type Node struct {
	// Rank is the node's dense breadth-first identifier; the root is 0.
	Rank Rank
	// Parent is the rank of the parent, or NoRank for the root.
	Parent Rank
	// Children holds the ranks of the node's children in rank order.
	Children []Rank
	// Level is the node's distance from the root.
	Level int
	// Host optionally names the machine that should run this node; used
	// by the TCP transport, ignored by the in-process transport.
	Host string
}

// IsLeaf reports whether the node is a back-end.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsRoot reports whether the node is the front-end.
func (n *Node) IsRoot() bool { return n.Parent == NoRank }

// Tree is a validated process-tree. The zero value is not usable; construct
// trees with the builders in this package or FromParents.
type Tree struct {
	nodes []Node
}

// ErrInvalid reports a structurally invalid tree description.
var ErrInvalid = errors.New("topology: invalid tree")

// FromParents constructs a tree from a parent vector: parents[i] is the
// parent rank of node i, with parents[0] == NoRank for the root. The vector
// must describe a single connected tree rooted at 0 in which every non-root
// node's parent precedes it is NOT required — any valid tree shape is
// accepted and children are ordered by rank.
func FromParents(parents []Rank) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty parent vector", ErrInvalid)
	}
	if parents[0] != NoRank {
		return nil, fmt.Errorf("%w: node 0 must be the root (parent %d)", ErrInvalid, parents[0])
	}
	t := &Tree{nodes: make([]Node, n)}
	for i := range t.nodes {
		t.nodes[i].Rank = Rank(i)
		t.nodes[i].Parent = parents[i]
	}
	for i := 1; i < n; i++ {
		p := parents[i]
		if p == NoRank {
			return nil, fmt.Errorf("%w: multiple roots (node %d)", ErrInvalid, i)
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("%w: node %d has out-of-range parent %d", ErrInvalid, i, p)
		}
		if p == Rank(i) {
			return nil, fmt.Errorf("%w: node %d is its own parent", ErrInvalid, i)
		}
		t.nodes[p].Children = append(t.nodes[p].Children, Rank(i))
	}
	for i := range t.nodes {
		cs := t.nodes[i].Children
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
	}
	if err := t.computeLevels(); err != nil {
		return nil, err
	}
	return t, nil
}

// computeLevels assigns BFS levels and verifies connectivity/acyclicity.
func (t *Tree) computeLevels() error {
	for i := range t.nodes {
		t.nodes[i].Level = -1
	}
	t.nodes[0].Level = 0
	queue := []Rank{0}
	seen := 1
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, c := range t.nodes[r].Children {
			if t.nodes[c].Level != -1 {
				return fmt.Errorf("%w: node %d reached twice (cycle)", ErrInvalid, c)
			}
			t.nodes[c].Level = t.nodes[r].Level + 1
			queue = append(queue, c)
			seen++
		}
	}
	if seen != len(t.nodes) {
		return fmt.Errorf("%w: %d of %d nodes unreachable from root",
			ErrInvalid, len(t.nodes)-seen, len(t.nodes))
	}
	return nil
}

// Len returns the total number of nodes (front-end + internal + back-ends).
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the node with the given rank.
func (t *Tree) Node(r Rank) *Node {
	if r < 0 || int(r) >= len(t.nodes) {
		return nil
	}
	return &t.nodes[r]
}

// Root returns the front-end node.
func (t *Tree) Root() *Node { return &t.nodes[0] }

// Parent returns the parent rank of r, or NoRank for the root.
func (t *Tree) Parent(r Rank) Rank { return t.nodes[r].Parent }

// Children returns the children of r in rank order. The slice is shared and
// must not be modified.
func (t *Tree) Children(r Rank) []Rank { return t.nodes[r].Children }

// Leaves returns the ranks of all back-ends in rank order.
func (t *Tree) Leaves() []Rank {
	var out []Rank
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			out = append(out, Rank(i))
		}
	}
	return out
}

// InternalNodes returns the ranks of all communication processes — nodes
// that are neither the front-end nor back-ends.
func (t *Tree) InternalNodes() []Rank {
	var out []Rank
	for i := 1; i < len(t.nodes); i++ {
		if !t.nodes[i].IsLeaf() {
			out = append(out, Rank(i))
		}
	}
	return out
}

// PathToRoot returns the ranks from r (inclusive) up to the root (inclusive).
func (t *Tree) PathToRoot(r Rank) []Rank {
	var out []Rank
	for r != NoRank {
		out = append(out, r)
		r = t.nodes[r].Parent
	}
	return out
}

// SubtreeLeaves returns the back-ends in the subtree rooted at r.
func (t *Tree) SubtreeLeaves(r Rank) []Rank {
	var out []Rank
	var walk func(Rank)
	walk = func(x Rank) {
		n := &t.nodes[x]
		if n.IsLeaf() {
			out = append(out, x)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(r)
	return out
}

// Stats summarizes a tree's shape.
type Stats struct {
	Nodes     int     // total process count
	Leaves    int     // back-end count
	Internal  int     // communication processes (excludes root and leaves)
	Depth     int     // maximum level of any node
	MaxFanOut int     // largest child count of any node
	Overhead  float64 // Internal / Leaves — the paper's "moderate penalty" metric
}

// Stats computes the tree's shape summary.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: len(t.nodes)}
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.IsLeaf() {
			s.Leaves++
		} else if !n.IsRoot() {
			s.Internal++
		}
		if n.Level > s.Depth {
			s.Depth = n.Level
		}
		if len(n.Children) > s.MaxFanOut {
			s.MaxFanOut = len(n.Children)
		}
	}
	if s.Leaves > 0 {
		s.Overhead = float64(s.Internal) / float64(s.Leaves)
	}
	return s
}

// String renders the tree as an explicit spec (see ParseSpec), which
// round-trips through ParseSpec.
func (t *Tree) String() string {
	var b strings.Builder
	first := true
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.IsLeaf() {
			continue
		}
		if !first {
			b.WriteByte(';')
		}
		first = false
		fmt.Fprintf(&b, "%d:", n.Rank)
		for j, c := range n.Children {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", c)
		}
	}
	return b.String()
}

// Equal reports whether two trees have identical structure.
func (t *Tree) Equal(u *Tree) bool {
	if t.Len() != u.Len() {
		return false
	}
	for i := range t.nodes {
		if t.nodes[i].Parent != u.nodes[i].Parent {
			return false
		}
	}
	return true
}

// AttachLeaf adds a new back-end as a child of parent, returning the new
// node's rank. This supports the paper's dynamic topology model in which
// back-ends may join after the internal tree has been instantiated. The
// parent must not be a leaf of a multi-level tree unless allowLeafParent is
// true (attaching to a leaf turns that leaf into a communication process).
func (t *Tree) AttachLeaf(parent Rank, allowLeafParent bool) (Rank, error) {
	p := t.Node(parent)
	if p == nil {
		return NoRank, fmt.Errorf("%w: no such parent %d", ErrInvalid, parent)
	}
	if p.IsLeaf() && !allowLeafParent && t.Len() > 1 {
		return NoRank, fmt.Errorf("%w: parent %d is a back-end", ErrInvalid, parent)
	}
	r := Rank(len(t.nodes))
	t.nodes = append(t.nodes, Node{
		Rank:   r,
		Parent: parent,
		Level:  p.Level + 1,
	})
	// NOTE: t.nodes may have been reallocated; re-resolve the parent.
	t.nodes[parent].Children = append(t.nodes[parent].Children, r)
	return r, nil
}

// RemoveSubtree deletes the subtree rooted at r (which must not be the
// root), compacting ranks. It returns the mapping from old ranks to new
// ranks (NoRank for removed nodes). This supports failure-driven
// reconfiguration; see internal/reliability.
func (t *Tree) RemoveSubtree(r Rank) (map[Rank]Rank, error) {
	if r == 0 {
		return nil, fmt.Errorf("%w: cannot remove the front-end", ErrInvalid)
	}
	if t.Node(r) == nil {
		return nil, fmt.Errorf("%w: no such node %d", ErrInvalid, r)
	}
	doomed := map[Rank]bool{}
	var mark func(Rank)
	mark = func(x Rank) {
		doomed[x] = true
		for _, c := range t.nodes[x].Children {
			mark(c)
		}
	}
	mark(r)

	remap := make(map[Rank]Rank, len(t.nodes))
	var kept []Node
	for i := range t.nodes {
		old := Rank(i)
		if doomed[old] {
			remap[old] = NoRank
			continue
		}
		remap[old] = Rank(len(kept))
		kept = append(kept, t.nodes[i])
	}
	for i := range kept {
		kept[i].Rank = Rank(i)
		if kept[i].Parent != NoRank {
			kept[i].Parent = remap[kept[i].Parent]
		}
		var cs []Rank
		for _, c := range kept[i].Children {
			if nc := remap[c]; nc != NoRank {
				cs = append(cs, nc)
			}
		}
		kept[i].Children = cs
	}
	t.nodes = kept
	if err := t.computeLevels(); err != nil {
		return nil, err
	}
	return remap, nil
}
