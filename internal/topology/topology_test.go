package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlat(t *testing.T) {
	tr, err := Flat(8)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes != 9 || s.Leaves != 8 || s.Internal != 0 || s.Depth != 1 || s.MaxFanOut != 8 {
		t.Errorf("Flat(8) stats = %+v", s)
	}
	if _, err := Flat(0); err == nil {
		t.Error("Flat(0): want error")
	}
}

func TestKAry(t *testing.T) {
	cases := []struct {
		fanout, depth        int
		nodes, leaves, inner int
	}{
		{2, 1, 3, 2, 0},
		{2, 3, 15, 8, 6},
		{16, 2, 273, 256, 16},
		{16, 3, 4369, 4096, 272},
		{3, 2, 13, 9, 3},
	}
	for _, c := range cases {
		tr, err := KAry(c.fanout, c.depth)
		if err != nil {
			t.Fatalf("KAry(%d,%d): %v", c.fanout, c.depth, err)
		}
		s := tr.Stats()
		if s.Nodes != c.nodes || s.Leaves != c.leaves || s.Internal != c.inner {
			t.Errorf("KAry(%d,%d) stats = %+v, want nodes=%d leaves=%d internal=%d",
				c.fanout, c.depth, s, c.nodes, c.leaves, c.inner)
		}
		if s.Depth != c.depth {
			t.Errorf("KAry(%d,%d) depth = %d", c.fanout, c.depth, s.Depth)
		}
		if s.MaxFanOut != c.fanout {
			t.Errorf("KAry(%d,%d) max fan-out = %d", c.fanout, c.depth, s.MaxFanOut)
		}
	}
}

// TestInternalNodeOverhead verifies the paper's §3.2 arithmetic exactly:
// "with a fan-out of 16, 16 (6.25% more) internal nodes are needed to
// connect 256 back-ends, or 272 (6.6%) for 4096 back-ends."  [T-OVERHEAD]
func TestInternalNodeOverhead(t *testing.T) {
	tr, err := KAry(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Leaves != 256 || s.Internal != 16 {
		t.Fatalf("fan-out 16, 256 back-ends: internal = %d, want 16", s.Internal)
	}
	if s.Overhead != 0.0625 {
		t.Errorf("overhead = %v, want 0.0625 (6.25%%)", s.Overhead)
	}
	tr, err = KAry(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	s = tr.Stats()
	if s.Leaves != 4096 || s.Internal != 272 {
		t.Fatalf("fan-out 16, 4096 back-ends: internal = %d, want 272", s.Internal)
	}
	if got := s.Overhead; got < 0.066 || got > 0.0665 {
		t.Errorf("overhead = %v, want ~0.0664 (6.6%%)", got)
	}
}

func TestKNomial(t *testing.T) {
	// Binomial tree of dimension 3: 8 nodes, root has 3 children.
	tr, err := KNomial(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 8 {
		t.Fatalf("KNomial(2,3) has %d nodes, want 8", tr.Len())
	}
	if got := len(tr.Children(0)); got != 3 {
		t.Errorf("binomial dim-3 root has %d children, want 3", got)
	}
	s := tr.Stats()
	if s.Leaves != 4 {
		t.Errorf("binomial dim-3 has %d leaves, want 4", s.Leaves)
	}
	// 3-nomial dimension 2: 9 nodes.
	tr, err = KNomial(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 9 {
		t.Fatalf("KNomial(3,2) has %d nodes, want 9", tr.Len())
	}
}

func TestBalanced(t *testing.T) {
	cases := []struct{ leaves, fanout int }{
		{1, 2}, {2, 2}, {5, 2}, {17, 4}, {324, 18}, {100, 10}, {257, 16},
	}
	for _, c := range cases {
		tr, err := Balanced(c.leaves, c.fanout)
		if err != nil {
			t.Fatalf("Balanced(%d,%d): %v", c.leaves, c.fanout, err)
		}
		s := tr.Stats()
		if s.Leaves != c.leaves {
			t.Errorf("Balanced(%d,%d) has %d leaves", c.leaves, c.fanout, s.Leaves)
		}
		if s.MaxFanOut > c.fanout {
			t.Errorf("Balanced(%d,%d) max fan-out %d exceeds bound", c.leaves, c.fanout, s.MaxFanOut)
		}
		// All leaves at the same level.
		leaves := tr.Leaves()
		lvl := tr.Node(leaves[0]).Level
		for _, l := range leaves {
			if tr.Node(l).Level != lvl {
				t.Errorf("Balanced(%d,%d): leaves at mixed levels", c.leaves, c.fanout)
				break
			}
		}
	}
	if _, err := Balanced(10, 1); err == nil {
		t.Error("Balanced fan-out 1: want error")
	}
}

func TestFromParentsRejectsInvalid(t *testing.T) {
	cases := [][]Rank{
		{},                // empty
		{0},               // root is own parent
		{NoRank, NoRank},  // two roots
		{NoRank, 5},       // out of range
		{NoRank, 2, 1},    // cycle between 1 and 2
		{NoRank, 1},       // self-parent
		{1, 0},            // node 0 not root
		{NoRank, 0, 3, 2}, // cycle 2<->3
	}
	for i, ps := range cases {
		if _, err := FromParents(ps); err == nil {
			t.Errorf("case %d (%v): want error", i, ps)
		}
	}
}

func TestPathToRootAndSubtreeLeaves(t *testing.T) {
	tr, err := KAry(2, 2) // ranks: 0; 1,2; 3,4,5,6
	if err != nil {
		t.Fatal(err)
	}
	path := tr.PathToRoot(5)
	if len(path) != 3 || path[0] != 5 || path[2] != 0 {
		t.Errorf("PathToRoot(5) = %v", path)
	}
	sl := tr.SubtreeLeaves(1)
	if len(sl) != 2 || sl[0] != 3 || sl[1] != 4 {
		t.Errorf("SubtreeLeaves(1) = %v", sl)
	}
	if got := tr.SubtreeLeaves(0); len(got) != 4 {
		t.Errorf("SubtreeLeaves(root) = %v", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{"flat:4", "kary:2^3", "kary:16^2", "knomial:2^4", "balanced:20,4"}
	for _, s := range specs {
		tr, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		tr2, err := ParseSpec(tr.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", s, tr.String(), err)
		}
		if !tr.Equal(tr2) {
			t.Errorf("spec %q did not round-trip through %q", s, tr.String())
		}
	}
}

func TestParseSpecExplicit(t *testing.T) {
	tr, err := ParseSpec("0:1,2;1:3,4;2:5,6")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("explicit tree has %d nodes, want 7", tr.Len())
	}
	if tr.Parent(5) != 2 {
		t.Errorf("Parent(5) = %d, want 2", tr.Parent(5))
	}
	bad := []string{
		"", "0:0", "0:1;2:1", "0:2", "nonsense", "flat:x", "kary:4", "kary:a^b",
		"balanced:10", "x:1", "0:y",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): want error", s)
		}
	}
}

func TestParseSpecTrailingComma(t *testing.T) {
	// "0:1," has an empty child entry which is skipped; still one valid edge.
	tr, err := ParseSpec("0:1")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("got %d nodes", tr.Len())
	}
}

func TestAttachLeaf(t *testing.T) {
	tr, _ := KAry(2, 2)
	n0 := tr.Len()
	r, err := tr.AttachLeaf(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n0+1 || tr.Parent(r) != 1 {
		t.Errorf("AttachLeaf: len=%d parent=%d", tr.Len(), tr.Parent(r))
	}
	if tr.Node(r).Level != 2 {
		t.Errorf("attached leaf level = %d, want 2", tr.Node(r).Level)
	}
	// Attaching to a back-end without permission fails.
	if _, err := tr.AttachLeaf(3, false); err == nil {
		t.Error("AttachLeaf to back-end: want error")
	}
	// With permission the back-end becomes internal.
	r2, err := tr.AttachLeaf(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Node(3).IsLeaf() {
		t.Error("node 3 should no longer be a leaf")
	}
	if tr.Parent(r2) != 3 {
		t.Errorf("Parent(%d) = %d, want 3", r2, tr.Parent(r2))
	}
	if _, err := tr.AttachLeaf(999, false); err == nil {
		t.Error("AttachLeaf to missing parent: want error")
	}
}

func TestRemoveSubtree(t *testing.T) {
	tr, _ := KAry(2, 2) // 0; 1,2; 3,4,5,6
	remap, err := tr.RemoveSubtree(1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 { // removed 1,3,4
		t.Fatalf("after removal: %d nodes, want 4", tr.Len())
	}
	if remap[1] != NoRank || remap[3] != NoRank || remap[4] != NoRank {
		t.Errorf("remap should delete 1,3,4: %v", remap)
	}
	// Old rank 2 is now rank 1 and still the root's child.
	if remap[2] != 1 || tr.Parent(1) != 0 {
		t.Errorf("remap[2]=%d parent=%d", remap[2], tr.Parent(1))
	}
	s := tr.Stats()
	if s.Leaves != 2 || s.Depth != 2 {
		t.Errorf("post-removal stats: %+v", s)
	}
	if _, err := tr.RemoveSubtree(0); err == nil {
		t.Error("RemoveSubtree(root): want error")
	}
	if _, err := tr.RemoveSubtree(99); err == nil {
		t.Error("RemoveSubtree(missing): want error")
	}
}

// Property: for any valid random tree, stats invariants hold.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%200) + 2
		rng := rand.New(rand.NewSource(seed))
		parents := make([]Rank, n)
		parents[0] = NoRank
		for i := 1; i < n; i++ {
			parents[i] = Rank(rng.Intn(i)) // parent precedes child => valid tree
		}
		tr, err := FromParents(parents)
		if err != nil {
			return false
		}
		s := tr.Stats()
		if s.Nodes != n || s.Leaves+s.Internal+1 != n {
			return false
		}
		// Level consistency: child level = parent level + 1.
		for i := 1; i < n; i++ {
			if tr.Node(Rank(i)).Level != tr.Node(parents[i]).Level+1 {
				return false
			}
		}
		// Leaves found by Leaves() match IsLeaf.
		if len(tr.Leaves()) != s.Leaves {
			return false
		}
		// String round-trips when the tree has at least one edge.
		tr2, err := ParseSpec(tr.String())
		if err != nil || !tr.Equal(tr2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Balanced always yields exactly the requested leaves and respects
// the fan-out bound.
func TestQuickBalanced(t *testing.T) {
	f := func(l uint16, fo uint8) bool {
		leaves := int(l%2000) + 1
		fanout := int(fo%30) + 2
		tr, err := Balanced(leaves, fanout)
		if err != nil {
			return false
		}
		s := tr.Stats()
		return s.Leaves == leaves && s.MaxFanOut <= fanout
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKAry16x3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := KAry(16, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalanced4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Balanced(4096, 16); err != nil {
			b.Fatal(err)
		}
	}
}
