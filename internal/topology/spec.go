package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a topology specification string. Four genera are
// supported, mirroring MRNet's topology-generator vocabulary:
//
//	flat:N           front-end plus N back-ends (the paper's 1-deep tree)
//	kary:F^D         balanced tree, fan-out F, back-ends at depth D (F^D leaves)
//	knomial:K^D      k-nomial tree of order K and dimension D (K^D nodes)
//	balanced:N,F     shallowest tree over N back-ends with max fan-out F
//
// Any other string is treated as an explicit tree: semicolon-separated
// "parent:child,child,..." groups, e.g. "0:1,2;1:3,4;2:5,6". Ranks must be
// dense, rooted at 0.
func ParseSpec(spec string) (*Tree, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrInvalid)
	}
	if genus, rest, ok := strings.Cut(spec, ":"); ok {
		switch genus {
		case "flat":
			n, err := strconv.Atoi(rest)
			if err != nil {
				return nil, fmt.Errorf("%w: flat:%s: %v", ErrInvalid, rest, err)
			}
			return Flat(n)
		case "kary":
			f, d, err := parseCaret(rest)
			if err != nil {
				return nil, err
			}
			return KAry(f, d)
		case "knomial":
			k, d, err := parseCaret(rest)
			if err != nil {
				return nil, err
			}
			return KNomial(k, d)
		case "balanced":
			nf := strings.SplitN(rest, ",", 2)
			if len(nf) != 2 {
				return nil, fmt.Errorf("%w: balanced wants N,F: %q", ErrInvalid, rest)
			}
			n, err1 := strconv.Atoi(strings.TrimSpace(nf[0]))
			f, err2 := strconv.Atoi(strings.TrimSpace(nf[1]))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: balanced:%s", ErrInvalid, rest)
			}
			return Balanced(n, f)
		}
	}
	return parseExplicit(spec)
}

func parseCaret(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, "^")
	if !ok {
		return 0, 0, fmt.Errorf("%w: want F^D, got %q", ErrInvalid, s)
	}
	f, err1 := strconv.Atoi(strings.TrimSpace(a))
	d, err2 := strconv.Atoi(strings.TrimSpace(b))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("%w: want F^D, got %q", ErrInvalid, s)
	}
	return f, d, nil
}

func parseExplicit(spec string) (*Tree, error) {
	type edge struct{ parent, child int }
	var edges []edge
	maxRank := 0
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		ps, cs, ok := strings.Cut(group, ":")
		if !ok {
			return nil, fmt.Errorf("%w: group %q missing ':'", ErrInvalid, group)
		}
		p, err := strconv.Atoi(strings.TrimSpace(ps))
		if err != nil {
			return nil, fmt.Errorf("%w: bad parent in %q", ErrInvalid, group)
		}
		if p > maxRank {
			maxRank = p
		}
		for _, c := range strings.Split(cs, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			ci, err := strconv.Atoi(c)
			if err != nil {
				return nil, fmt.Errorf("%w: bad child %q in %q", ErrInvalid, c, group)
			}
			if ci > maxRank {
				maxRank = ci
			}
			edges = append(edges, edge{p, ci})
		}
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: no edges in %q", ErrInvalid, spec)
	}
	parents := make([]Rank, maxRank+1)
	for i := range parents {
		parents[i] = NoRank
	}
	for _, e := range edges {
		if e.child == 0 {
			return nil, fmt.Errorf("%w: rank 0 cannot be a child", ErrInvalid)
		}
		if parents[e.child] != NoRank {
			return nil, fmt.Errorf("%w: node %d has two parents", ErrInvalid, e.child)
		}
		parents[e.child] = Rank(e.parent)
	}
	for i := 1; i <= maxRank; i++ {
		if parents[i] == NoRank {
			return nil, fmt.Errorf("%w: node %d has no parent (ranks must be dense)", ErrInvalid, i)
		}
	}
	return FromParents(parents)
}
