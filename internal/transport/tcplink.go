package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/packet"
	"repro/internal/topology"
)

// tcpLink adapts a net.Conn to the Link interface using the packet wire
// format with multi-packet frames: every Send or SendBatch assembles one
// length-prefixed frame in the link's persistent scratch buffer — packet
// bodies copied straight from the encode-once cache — and hands it to the
// socket as a single write, so a batched flush pays one syscall and zero
// intermediate copies (no per-frame body allocation, no bufio staging).
type tcpLink struct {
	conn net.Conn

	sendMu sync.Mutex
	// scratch is the reusable frame-assembly buffer, owned by sendMu. It
	// is retained across frames up to maxFrameScratch so the steady-state
	// send path allocates nothing; oversize frames fall back to a
	// one-shot buffer the GC reclaims.
	scratch []byte

	recvMu  sync.Mutex
	r       *bufio.Reader
	pending []*packet.Packet // partially consumed inbound frame
	pendOff int

	closeOnce sync.Once
	closeErr  error
}

// maxFrameScratch bounds the frame-assembly scratch a link keeps between
// flushes; it comfortably covers the egress flusher's frame-split bound.
const maxFrameScratch = 128 << 10

// NewTCPLink wraps an established connection as a Link. The caller
// relinquishes ownership of conn.
func NewTCPLink(conn net.Conn) Link {
	return &tcpLink{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
	}
}

func (l *tcpLink) Send(p *packet.Packet) error {
	return l.writeFrame([]*packet.Packet{p})
}

// SendBatch writes the whole batch as one frame with a single flush.
func (l *tcpLink) SendBatch(ps []*packet.Packet) error {
	if len(ps) == 0 {
		return nil
	}
	return l.writeFrame(ps)
}

// writeFrame assembles header + body in the persistent scratch and writes
// the frame with one conn.Write. appendWireFrame recycles the scratch, so
// a steady-state flush performs no allocation between the encode-once
// cache and the socket.
func (l *tcpLink) writeFrame(ps []*packet.Packet) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	var buf []byte
	buf, l.scratch = appendWireFrame(l.scratch, ps)
	if _, err := l.conn.Write(buf); err != nil {
		return l.mapErr(err)
	}
	return nil
}

// appendWireFrame builds a complete wire frame (uint32 body-length prefix
// plus body) for ps in scratch, growing it as needed, and returns the
// frame alongside the scratch to retain for the next call — the grown
// buffer when it stayed within maxFrameScratch, the old one otherwise.
func appendWireFrame(scratch []byte, ps []*packet.Packet) (frame, keep []byte) {
	body := packet.EncodedFrameSize(ps)
	buf := scratch[:0]
	if cap(buf) < 4+body {
		buf = make([]byte, 0, 4+body)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(body))
	buf = packet.AppendFrame(buf, ps)
	if cap(buf) <= maxFrameScratch {
		return buf, buf
	}
	return buf, scratch
}

// BatchCopies reports true: the batch's bytes are on the socket (or in
// the kernel buffer) before SendBatch returns, and neither the slice nor
// the encoded bodies are retained by the link.
func (l *tcpLink) BatchCopies() bool { return true }

func (l *tcpLink) Recv() (*packet.Packet, error) {
	l.recvMu.Lock()
	defer l.recvMu.Unlock()
	if l.pendOff < len(l.pending) {
		p := l.pending[l.pendOff]
		l.pendOff++
		if l.pendOff == len(l.pending) {
			l.pending, l.pendOff = nil, 0
		}
		return p, nil
	}
	ps, err := l.readFrame()
	if err != nil {
		return nil, err
	}
	p := ps[0]
	if len(ps) > 1 {
		l.pending, l.pendOff = ps, 1
	}
	return p, nil
}

// RecvBatch returns the next inbound frame's packets as one batch.
func (l *tcpLink) RecvBatch() ([]*packet.Packet, error) {
	l.recvMu.Lock()
	defer l.recvMu.Unlock()
	if l.pendOff < len(l.pending) {
		ps := l.pending[l.pendOff:]
		l.pending, l.pendOff = nil, 0
		return ps, nil
	}
	return l.readFrame()
}

// readFrame reads frames until one carries at least one packet; callers
// hold recvMu.
func (l *tcpLink) readFrame() ([]*packet.Packet, error) {
	for {
		ps, err := packet.ReadFrame(l.r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || isClosedConn(err) {
				return nil, io.EOF
			}
			return nil, err
		}
		if len(ps) > 0 {
			return ps, nil
		}
	}
}

func (l *tcpLink) Close() error {
	l.closeOnce.Do(func() { l.closeErr = l.conn.Close() })
	return l.closeErr
}

// Drop severs the connection abruptly: SO_LINGER 0 makes the close discard
// unsent data and send a RST, so the peer sees a crash, not a clean FIN.
func (l *tcpLink) Drop() {
	if tc, ok := l.conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = l.Close()
}

func (l *tcpLink) mapErr(err error) error {
	if errors.Is(err, net.ErrClosed) || isClosedConn(err) {
		return ErrClosed
	}
	return err
}

func isClosedConn(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}

// Dial establishes a TCP link to addr.
func Dial(addr string) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// Listener accepts TCP links.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener on addr (use "127.0.0.1:0" for an ephemeral
// local port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the listener's bound address.
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Accept waits for the next inbound link.
func (ln *Listener) Accept() (Link, error) {
	conn, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// Close stops the listener.
func (ln *Listener) Close() error { return ln.l.Close() }

// NewTCPFabric wires an entire topology with real TCP links over loopback,
// returning one Endpoint per rank. This is the integration-test and
// single-machine-deployment path; a distributed deployment would instead
// have each process Dial its parent using the topology's Host fields.
func NewTCPFabric(t *topology.Tree) ([]*Endpoint, error) {
	eps := make([]*Endpoint, t.Len())
	for r := 0; r < t.Len(); r++ {
		eps[r] = &Endpoint{Rank: packet.Rank(r)}
	}
	var openLinks []Link
	fail := func(err error) ([]*Endpoint, error) {
		for _, l := range openLinks {
			l.Close()
		}
		return nil, err
	}
	for r := 0; r < t.Len(); r++ {
		for _, c := range t.Children(topology.Rank(r)) {
			ln, err := Listen("127.0.0.1:0")
			if err != nil {
				return fail(fmt.Errorf("transport: listen for edge %d->%d: %w", r, c, err))
			}
			type accepted struct {
				link Link
				err  error
			}
			acceptCh := make(chan accepted, 1)
			go func() {
				l, err := ln.Accept()
				acceptCh <- accepted{l, err}
			}()
			childEnd, err := Dial(ln.Addr())
			if err != nil {
				ln.Close()
				return fail(fmt.Errorf("transport: dial for edge %d->%d: %w", r, c, err))
			}
			acc := <-acceptCh
			ln.Close()
			if acc.err != nil {
				childEnd.Close()
				return fail(fmt.Errorf("transport: accept for edge %d->%d: %w", r, c, acc.err))
			}
			eps[r].Children = append(eps[r].Children, acc.link)
			eps[c].Parent = childEnd
			openLinks = append(openLinks, acc.link, childEnd)
		}
	}
	return eps, nil
}
