package transport

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
)

// rewirers returns both fabric implementations for table-driven tests.
func rewirers() map[string]Rewirer {
	return map[string]Rewirer{
		"chan": NewChanRewirer(0),
		"tcp":  &TCPRewirer{},
	}
}

// TestRewirerOfferRedial exercises the replacement-link protocol on both
// fabrics: offer, redial, accept, then traffic in both directions.
func TestRewirerOfferRedial(t *testing.T) {
	for name, rw := range rewirers() {
		t.Run(name, func(t *testing.T) {
			off, err := rw.Offer()
			if err != nil {
				t.Fatal(err)
			}
			if off.Addr() == "" {
				t.Fatal("offer has no address")
			}
			// Redial strictly before Accept: the rendezvous must hold the
			// connection (TCP backlog semantics).
			child, err := rw.Redial(off.Addr())
			if err != nil {
				t.Fatal(err)
			}
			parent, err := off.Accept()
			if err != nil {
				t.Fatal(err)
			}
			defer parent.Close()
			defer child.Close()

			up := packet.MustNew(10, 1, 2, "%d", int64(42))
			if err := child.Send(up); err != nil {
				t.Fatal(err)
			}
			got, err := parent.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := got.Int(0); v != 42 {
				t.Errorf("upstream payload = %d, want 42", v)
			}
			down := packet.MustNew(11, 1, 0, "%s", "hello")
			if err := parent.Send(down); err != nil {
				t.Fatal(err)
			}
			got, err = child.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if s, _ := got.Str(0); s != "hello" {
				t.Errorf("downstream payload = %q, want hello", s)
			}
		})
	}
}

// TestRewirerRedialUnknownAddr: redialing a rendezvous that never existed
// fails with ErrNoOffer on both fabrics.
func TestRewirerRedialUnknownAddr(t *testing.T) {
	for name, rw := range rewirers() {
		t.Run(name, func(t *testing.T) {
			addr := "chan:9999"
			if name == "tcp" {
				addr = "127.0.0.1:1" // nothing listens on port 1
			}
			if _, err := rw.Redial(addr); !errors.Is(err, ErrNoOffer) {
				t.Errorf("redial %s: err = %v, want ErrNoOffer", addr, err)
			}
		})
	}
}

// TestRewirerDoubleRedial: an offer mints exactly one link; a second
// redial of the same address fails.
func TestRewirerDoubleRedial(t *testing.T) {
	for name, rw := range rewirers() {
		t.Run(name, func(t *testing.T) {
			off, err := rw.Offer()
			if err != nil {
				t.Fatal(err)
			}
			child, err := rw.Redial(off.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer child.Close()
			parent, err := off.Accept()
			if err != nil {
				t.Fatal(err)
			}
			defer parent.Close()
			if second, err := rw.Redial(off.Addr()); err == nil {
				// TCP may connect before observing the closed listener's
				// reset; a usable link is the failure, not the connect.
				if serr := second.Send(packet.MustNew(1, 0, 0, "")); serr == nil {
					if _, rerr := parent.Recv(); rerr == nil {
						t.Error("second redial produced a live second link")
					}
				}
				second.Close()
			}
		})
	}
}

// TestRewirerCloseUnblocksAccept: closing an offer fails a blocked Accept
// instead of leaving it waiting forever (a dead orphan must not wedge the
// adopter).
func TestRewirerCloseUnblocksAccept(t *testing.T) {
	for name, rw := range rewirers() {
		t.Run(name, func(t *testing.T) {
			off, err := rw.Offer()
			if err != nil {
				t.Fatal(err)
			}
			type res struct {
				l   Link
				err error
			}
			ch := make(chan res, 1)
			go func() {
				l, err := off.Accept()
				ch <- res{l, err}
			}()
			time.Sleep(10 * time.Millisecond)
			if err := off.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case r := <-ch:
				if r.err == nil {
					t.Error("Accept succeeded after Close")
					r.l.Close()
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Accept still blocked after Close")
			}
		})
	}
}

// TestChanRewirerCloseSeversDepositedEnd: when a redial lands but the
// adopter abandons the offer, the orphan's end must observe EOF rather
// than strand on a link nobody will ever read.
func TestChanRewirerCloseSeversDepositedEnd(t *testing.T) {
	rw := NewChanRewirer(0)
	off, err := rw.Offer()
	if err != nil {
		t.Fatal(err)
	}
	child, err := rw.Redial(off.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := child.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("orphan end Recv = %v, want io.EOF", err)
	}
}
