package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/topology"
)

func mkPkt(tag int32, v int64) *packet.Packet {
	return packet.MustNew(tag, 1, 0, "%d", v)
}

// linkFactory lets every behavioural test run against both transports.
type linkFactory struct {
	name string
	make func(t *testing.T) (Link, Link)
}

func factories() []linkFactory {
	return []linkFactory{
		// The buffer must cover the largest burst any shared test sends
		// before its first Recv (currently 10 packets).
		{"chan", func(t *testing.T) (Link, Link) { return NewPair(16) }},
		{"tcp", func(t *testing.T) (Link, Link) {
			t.Helper()
			ln, err := Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			type res struct {
				l   Link
				err error
			}
			ch := make(chan res, 1)
			go func() {
				l, err := ln.Accept()
				ch <- res{l, err}
			}()
			a, err := Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			r := <-ch
			if r.err != nil {
				t.Fatal(r.err)
			}
			return a, r.l
		}},
	}
}

func TestLinkSendRecv(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			for i := int64(0); i < 10; i++ {
				if err := a.Send(mkPkt(100, i)); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}
			for i := int64(0); i < 10; i++ {
				p, err := b.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if v, _ := p.Int(0); v != i {
					t.Fatalf("FIFO violation: got %d want %d", v, i)
				}
			}
		})
	}
}

func TestLinkBidirectional(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			if err := a.Send(mkPkt(1, 10)); err != nil {
				t.Fatal(err)
			}
			if err := b.Send(mkPkt(2, 20)); err != nil {
				t.Fatal(err)
			}
			p, err := b.Recv()
			if err != nil || p.Tag != 1 {
				t.Fatalf("b.Recv: %v %v", p, err)
			}
			p, err = a.Recv()
			if err != nil || p.Tag != 2 {
				t.Fatalf("a.Recv: %v %v", p, err)
			}
		})
	}
}

func TestLinkCloseUnblocksRecv(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer b.Close()
			errCh := make(chan error, 1)
			go func() {
				_, err := b.Recv()
				errCh <- err
			}()
			time.Sleep(10 * time.Millisecond)
			a.Close()
			select {
			case err := <-errCh:
				if !errors.Is(err, io.EOF) {
					t.Errorf("Recv after peer close: %v, want io.EOF", err)
				}
			case <-time.After(2 * time.Second):
				t.Error("Recv did not unblock after peer close")
			}
		})
	}
}

func TestLinkDrainAfterClose(t *testing.T) {
	// Packets sent before close must still be receivable (graceful drain) on
	// the chan transport; TCP makes the same guarantee via kernel buffers,
	// so test both.
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer b.Close()
			if err := a.Send(mkPkt(1, 42)); err != nil {
				t.Fatal(err)
			}
			if f.name == "tcp" {
				// Give the kernel a moment to move bytes before close.
				time.Sleep(20 * time.Millisecond)
			}
			a.Close()
			p, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv of drained packet: %v", err)
			}
			if v, _ := p.Int(0); v != 42 {
				t.Fatalf("drained packet = %v", p)
			}
			if _, err := b.Recv(); !errors.Is(err, io.EOF) {
				t.Fatalf("Recv after drain: %v, want io.EOF", err)
			}
		})
	}
}

func TestChanSendAfterCloseFails(t *testing.T) {
	a, b := NewPair(4)
	defer b.Close()
	a.Close()
	if err := a.Send(mkPkt(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed end: %v, want ErrClosed", err)
	}
	if err := b.Send(mkPkt(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed peer: %v, want ErrClosed", err)
	}
}

func TestChanBackpressure(t *testing.T) {
	a, b := NewPair(2)
	defer a.Close()
	defer b.Close()
	// Fill the buffer.
	for i := 0; i < 2; i++ {
		if err := a.Send(mkPkt(1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Third send must block until the receiver drains.
	sent := make(chan struct{})
	go func() {
		a.Send(mkPkt(1, 2))
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("Send did not block on full buffer")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not complete after drain")
	}
}

func TestChanConcurrentSenders(t *testing.T) {
	a, b := NewPair(8)
	defer a.Close()
	defer b.Close()
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(mkPkt(int32(100+s), int64(i))); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	got := make(map[int32]int64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < senders*per; i++ {
			p, err := b.Recv()
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			v, _ := p.Int(0)
			// Per-sender FIFO: values from one tag must arrive in order.
			if last, ok := got[p.Tag]; ok && v != last+1 {
				t.Errorf("tag %d: got %d after %d", p.Tag, v, last)
				return
			}
			got[p.Tag] = v
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func TestTCPLargePayload(t *testing.T) {
	fs := factories()
	a, b := fs[1].make(t)
	defer a.Close()
	defer b.Close()
	big := make([]float64, 1<<16)
	for i := range big {
		big[i] = float64(i)
	}
	p := packet.MustNew(100, 1, 0, "%af", big)
	go func() {
		if err := a.Send(p); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	q, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	xs, err := q.FloatArray(0)
	if err != nil || len(xs) != len(big) || xs[12345] != 12345 {
		t.Fatalf("large payload corrupted: len=%d err=%v", len(xs), err)
	}
}

func TestChanFabricShape(t *testing.T) {
	tr, err := topology.KAry(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	eps := NewChanFabric(tr, 0)
	if len(eps) != tr.Len() {
		t.Fatalf("fabric has %d endpoints, want %d", len(eps), tr.Len())
	}
	if eps[0].Parent != nil {
		t.Error("root has a parent link")
	}
	if len(eps[0].Children) != 4 {
		t.Errorf("root has %d child links", len(eps[0].Children))
	}
	for _, leaf := range tr.Leaves() {
		if eps[leaf].Parent == nil {
			t.Errorf("leaf %d missing parent link", leaf)
		}
		if len(eps[leaf].Children) != 0 {
			t.Errorf("leaf %d has child links", leaf)
		}
	}
}

func TestChanFabricEndToEnd(t *testing.T) {
	tr, _ := topology.KAry(2, 2)
	eps := NewChanFabric(tr, 0)
	// Leaf 3 (first child of node 1) sends; route manually up to root.
	if err := eps[3].Parent.Send(mkPkt(100, 99)); err != nil {
		t.Fatal(err)
	}
	p, err := eps[1].Children[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Parent.Send(p); err != nil {
		t.Fatal(err)
	}
	q, err := eps[0].Children[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := q.Int(0); v != 99 {
		t.Fatalf("routed packet = %v", q)
	}
}

func TestTCPFabricEndToEnd(t *testing.T) {
	tr, _ := topology.KAry(2, 1)
	eps, err := NewTCPFabric(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	if err := eps[1].Parent.Send(mkPkt(100, 7)); err != nil {
		t.Fatal(err)
	}
	p, err := eps[0].Children[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Int(0); v != 7 {
		t.Fatalf("got %v", p)
	}
}

func TestEndpointClose(t *testing.T) {
	tr, _ := topology.Flat(3)
	eps := NewChanFabric(tr, 0)
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tr.Leaves() {
		if err := eps[leaf].Parent.Send(mkPkt(1, 1)); !errors.Is(err, ErrClosed) {
			t.Errorf("leaf %d Send after root close: %v", leaf, err)
		}
	}
}

func BenchmarkChanLinkRoundTrip(b *testing.B) {
	a, bb := NewPair(64)
	defer a.Close()
	defer bb.Close()
	p := mkPkt(100, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Send(p); err != nil {
			b.Fatal(err)
		}
		if _, err := bb.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPLinkRoundTrip(b *testing.B) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan Link, 1)
	go func() {
		l, err := ln.Accept()
		if err != nil {
			b.Error(err)
			return
		}
		ch <- l
	}()
	a, err := Dial(ln.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer := <-ch
	defer peer.Close()
	go func() {
		for {
			p, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(p); err != nil {
				return
			}
		}
	}()
	p := mkPkt(100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(p); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleNewPair() {
	a, b := NewPair(1)
	defer a.Close()
	defer b.Close()
	a.Send(packet.MustNew(100, 1, 0, "%s", "hello"))
	p, _ := b.Recv()
	s, _ := p.Str(0)
	fmt.Println(s)
	// Output: hello
}

// TestChanDropLosesInFlight: Drop models a crash — packets buffered on
// the wire are lost and the peer sees EOF immediately, deterministically
// (regression: the Recv fast path used to drain them).
func TestChanDropLosesInFlight(t *testing.T) {
	a, b := NewPair(8)
	for i := 0; i < 3; i++ {
		if err := a.Send(packet.MustNew(100, 1, 0, "%d", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	a.(Dropper).Drop()
	if p, err := b.Recv(); err != io.EOF {
		t.Fatalf("Recv after peer drop = %v, %v; want io.EOF", p, err)
	}
	if err := b.Send(packet.MustNew(100, 1, 0, "%d", int64(9))); err != ErrClosed {
		t.Fatalf("Send after peer drop = %v; want ErrClosed", err)
	}
}

// TestChanCloseStillDrains: ordinary Close keeps the graceful contract —
// the peer drains in-flight packets before EOF.
func TestChanCloseStillDrains(t *testing.T) {
	a, b := NewPair(8)
	if err := a.Send(packet.MustNew(100, 1, 0, "%d", int64(7))); err != nil {
		t.Fatal(err)
	}
	a.Close()
	p, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv after peer close: %v", err)
	}
	if v, _ := p.Int(0); v != 7 {
		t.Errorf("drained %d, want 7", v)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("second Recv = %v, want io.EOF", err)
	}
}
