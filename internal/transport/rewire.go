package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoOffer is returned by Redial for a rendezvous that does not exist,
// was already claimed, or was closed.
var ErrNoOffer = errors.New("transport: no such offer")

// Rewirer mints replacement links on a live fabric, the plumbing under
// live topology mutation (recovery reparenting, dynamic attach). The
// protocol mirrors a distributed deployment even when both halves run in
// one process: the adopting parent opens an Offer (a listen, on TCP), the
// orphan Redials the offer's address, and each side then holds its end of
// a brand-new Link. Redial never requires Accept to be in progress — on
// TCP the listen backlog holds the connection, and the chan implementation
// mirrors that — so the two halves may run strictly sequentially.
//
// Implementations are safe for concurrent use by multiple goroutines.
type Rewirer interface {
	// Offer opens a rendezvous for exactly one replacement link.
	Offer() (Offer, error)
	// Redial connects to a rendezvous opened by Offer (possibly in another
	// process, on TCP) and returns the orphan-side end of the new link.
	Redial(addr string) (Link, error)
}

// Offer is one open rendezvous: Addr is what the orphan passes to Redial,
// Accept blocks until the orphan has redialed and returns the parent-side
// end, and Close abandons the rendezvous (failing a blocked Accept).
type Offer interface {
	Addr() string
	Accept() (Link, error)
	Close() error
}

// ChanRewirer mints in-process replacement links. Offers register in a
// per-rewirer table under synthetic "chan:N" addresses; Redial builds a
// fresh channel pair, leaves the parent end at the rendezvous for Accept
// to claim, and hands back the child end immediately.
type ChanRewirer struct {
	buf int

	mu     sync.Mutex
	next   int
	offers map[string]*chanOffer
}

// NewChanRewirer creates a rewirer whose links use the given per-direction
// buffer capacity (0 = DefaultChanBuffer).
func NewChanRewirer(buf int) *ChanRewirer {
	return &ChanRewirer{buf: buf, offers: map[string]*chanOffer{}}
}

type chanOffer struct {
	rw   *ChanRewirer
	addr string

	parentEnd chan Link // buffered 1: Redial deposits, Accept claims
	closed    chan struct{}
	closeOnce sync.Once
}

func (rw *ChanRewirer) Offer() (Offer, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	o := &chanOffer{
		rw:        rw,
		addr:      fmt.Sprintf("chan:%d", rw.next),
		parentEnd: make(chan Link, 1),
		closed:    make(chan struct{}),
	}
	rw.next++
	rw.offers[o.addr] = o
	return o, nil
}

func (rw *ChanRewirer) Redial(addr string) (Link, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	o := rw.offers[addr]
	if o == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoOffer, addr)
	}
	// One offer, one redial: claiming deregisters the rendezvous so a
	// second redial fails like a TCP listener that already closed. The
	// deposit stays inside the critical section: Close deregisters under
	// the same lock before draining, so a racing Close either beats this
	// redial entirely (lookup fails above) or observes the deposited end
	// in its drain and severs it — the parent end can never strand.
	delete(rw.offers, addr)
	parent, child := NewPair(rw.buf)
	o.parentEnd <- parent // buffered 1, sole depositor: never blocks
	return child, nil
}

func (o *chanOffer) Addr() string { return o.addr }

func (o *chanOffer) Accept() (Link, error) {
	select {
	case l := <-o.parentEnd:
		return l, nil
	case <-o.closed:
		// A redial may have raced the close; prefer delivering it.
		select {
		case l := <-o.parentEnd:
			return l, nil
		default:
			return nil, fmt.Errorf("%w: %s closed", ErrNoOffer, o.addr)
		}
	}
}

func (o *chanOffer) Close() error {
	o.closeOnce.Do(func() {
		o.rw.mu.Lock()
		delete(o.rw.offers, o.addr)
		o.rw.mu.Unlock()
		close(o.closed)
		// Sever a deposited-but-unclaimed parent end so the redialed
		// orphan observes EOF instead of waiting on an abandoned link.
		select {
		case l := <-o.parentEnd:
			DropLink(l)
		default:
		}
	})
	return nil
}

// TCPRewirer mints replacement links over real TCP: Offer opens a
// one-shot listener, Redial dials it. The zero value listens on an
// ephemeral loopback port, the single-machine deployment; a distributed
// deployment sets ListenAddr to an externally reachable address.
type TCPRewirer struct {
	// ListenAddr is the address offers listen on; empty means
	// "127.0.0.1:0".
	ListenAddr string
}

func (rw *TCPRewirer) Offer() (Offer, error) {
	addr := rw.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rewire listen: %w", err)
	}
	return &tcpOffer{ln: ln}, nil
}

func (rw *TCPRewirer) Redial(addr string) (Link, error) {
	l, err := Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoOffer, addr, err)
	}
	return l, nil
}

type tcpOffer struct {
	ln        *Listener
	closeOnce sync.Once
}

func (o *tcpOffer) Addr() string { return o.ln.Addr() }

func (o *tcpOffer) Accept() (Link, error) {
	l, err := o.ln.Accept()
	// One offer, one link: the rendezvous closes after the first accept.
	_ = o.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoOffer, o.ln.Addr(), err)
	}
	return l, nil
}

func (o *tcpOffer) Close() error {
	o.closeOnce.Do(func() { _ = o.ln.Close() })
	return nil
}
