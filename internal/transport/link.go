// Package transport provides the point-to-point FIFO channels that connect
// TBON processes. Two interchangeable implementations are provided: an
// in-process channel transport (the default substrate for many-node overlay
// simulation — one goroutine-driven node per process rank) and a TCP
// transport using length-prefixed packet frames, which exercises a real
// network code path.
//
// A Link is reliable and FIFO in each direction, matching the paper's model
// of processes "connected via FIFO channels" implemented over protocols
// like TCP.
package transport

import (
	"errors"

	"repro/internal/packet"
)

// ErrClosed is returned by Send on a link whose either end has been closed.
var ErrClosed = errors.New("transport: link closed")

// Link is one end of a bidirectional, reliable, FIFO message channel.
// Send and Recv are safe for concurrent use; Recv blocks until a packet
// arrives or the link closes (then it returns io.EOF after draining any
// packets already delivered).
type Link interface {
	Send(p *packet.Packet) error
	Recv() (*packet.Packet, error)
	Close() error
}

// BatchLink is implemented by links with a native multi-packet fast path:
// SendBatch moves a whole batch with one link operation (one channel
// transfer, or one length-prefixed frame and one bufio flush on TCP), and
// RecvBatch returns everything one such operation delivered. Both built-in
// transports implement it; the SendBatch/RecvBatch package helpers fall
// back to per-packet Send/Recv for links that do not.
type BatchLink interface {
	Link
	// SendBatch delivers the packets in order as one frame. The link takes
	// ownership of the slice; the caller must not reuse it.
	SendBatch(ps []*packet.Packet) error
	// RecvBatch returns the next frame's packets in order. Like Recv it
	// blocks until data arrives or the link closes (then io.EOF).
	RecvBatch() ([]*packet.Packet, error)
}

// SendBatch sends the packets over l in order, using the link's native
// batch path when it has one. The slice is owned by the link afterwards.
func SendBatch(l Link, ps []*packet.Packet) error {
	if len(ps) == 0 {
		return nil
	}
	if len(ps) == 1 {
		return l.Send(ps[0])
	}
	if b, ok := l.(BatchLink); ok {
		return b.SendBatch(ps)
	}
	for _, p := range ps {
		if err := l.Send(p); err != nil {
			return err
		}
	}
	return nil
}

// RecvBatch receives the next frame from l, falling back to a single-packet
// batch for links without a native batch path.
func RecvBatch(l Link) ([]*packet.Packet, error) {
	if b, ok := l.(BatchLink); ok {
		return b.RecvBatch()
	}
	p, err := l.Recv()
	if err != nil {
		return nil, err
	}
	return []*packet.Packet{p}, nil
}

// BatchCopier is implemented by links that can answer for their send-side
// ownership discipline: BatchCopies reports whether SendBatch copies
// everything it needs (the packets' encoded bytes onto the wire) before
// returning, leaving the slice free for the caller to reuse. The TCP
// transport copies; the in-process transport retains the slice (it IS the
// channel transfer). The egress flusher uses this to recycle its take
// buffer across flushes on copying links — links that don't implement the
// interface are conservatively treated as retaining.
type BatchCopier interface {
	BatchCopies() bool
}

// BatchCopies reports whether l's SendBatch copies the batch before
// returning (see BatchCopier). Unknown links are assumed to retain.
func BatchCopies(l Link) bool {
	if c, ok := l.(BatchCopier); ok {
		return c.BatchCopies()
	}
	return false
}

// Dropper is implemented by links that can model a process crash: Drop
// severs the link abruptly, discarding any packets still in flight, so the
// peer observes an unexpected EOF rather than a graceful drain. Fault
// injection (core.Network.Kill) uses this to make the chan and TCP fabrics
// fail the same way a real crashed process would.
type Dropper interface {
	Drop()
}

// DropLink severs a link abruptly, preferring the Dropper fast-fail path
// and falling back to an ordinary Close for links that cannot model loss.
func DropLink(l Link) {
	if l == nil {
		return
	}
	if d, ok := l.(Dropper); ok {
		d.Drop()
		return
	}
	_ = l.Close()
}

// Endpoint bundles the links a single tree node uses: one toward its parent
// (nil for the front-end) and one per child, index-aligned with the
// topology's child order.
type Endpoint struct {
	Rank     packet.Rank
	Parent   Link
	Children []Link
}

// Drop abruptly severs every link owned by the endpoint, modeling the
// owning process crashing.
func (e *Endpoint) Drop() {
	DropLink(e.Parent)
	for _, c := range e.Children {
		DropLink(c)
	}
}

// Close closes every link owned by the endpoint, returning the first error.
func (e *Endpoint) Close() error {
	var first error
	if e.Parent != nil {
		if err := e.Parent.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range e.Children {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
