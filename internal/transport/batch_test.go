package transport

import (
	"io"
	"testing"

	"repro/internal/packet"
)

func mkBatch(n int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = mkPkt(100, int64(i))
	}
	return out
}

// TestBatchRoundTrip: a SendBatch arrives as one RecvBatch frame with
// order and payloads intact, on both transports.
func TestBatchRoundTrip(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			sent := mkBatch(5)
			if err := SendBatch(a, sent); err != nil {
				t.Fatal(err)
			}
			got, err := RecvBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(sent) {
				t.Fatalf("RecvBatch returned %d packets, want %d", len(got), len(sent))
			}
			for i, p := range got {
				if v, _ := p.Int(0); v != int64(i) {
					t.Errorf("packet %d carries %d", i, v)
				}
			}
		})
	}
}

// TestBatchInterleavesWithSingles: per-packet Recv parcels a batch out one
// packet at a time, FIFO with surrounding single sends.
func TestBatchInterleavesWithSingles(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			if err := a.Send(mkPkt(100, 100)); err != nil {
				t.Fatal(err)
			}
			if err := SendBatch(a, mkBatch(3)); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(mkPkt(100, 200)); err != nil {
				t.Fatal(err)
			}
			want := []int64{100, 0, 1, 2, 200}
			for i, w := range want {
				p, err := b.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if v, _ := p.Int(0); v != w {
					t.Fatalf("Recv %d = %d, want %d", i, v, w)
				}
			}
		})
	}
}

// TestFramesSharePacketEncodings pins the "links accept pre-encoded
// bodies" contract: the TCP frame writer consumes each packet's cached
// wire bytes, so sending the same packets over k links serializes each
// packet once — the encode-once half of a multicast — instead of once per
// link. (The chan transport moves pointers and never encodes at all.)
func TestFramesSharePacketEncodings(t *testing.T) {
	var tcp linkFactory
	for _, f := range factories() {
		if f.name == "tcp" {
			tcp = f
		}
	}
	a1, b1 := tcp.make(t)
	a2, b2 := tcp.make(t)
	defer func() {
		for _, l := range []Link{a1, b1, a2, b2} {
			l.Close()
		}
	}()
	const n = 6
	batch := mkBatch(n)
	before := packet.WireEncodes()
	if err := SendBatch(a1, append([]*packet.Packet(nil), batch...)); err != nil {
		t.Fatal(err)
	}
	if err := SendBatch(a2, append([]*packet.Packet(nil), batch...)); err != nil {
		t.Fatal(err)
	}
	for _, b := range []Link{b1, b2} {
		got, err := RecvBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("received %d packets, want %d", len(got), n)
		}
		for i, p := range got {
			if v, _ := p.Int(0); v != int64(i) {
				t.Errorf("packet %d carries %d", i, v)
			}
		}
	}
	if delta := packet.WireEncodes() - before; delta != n {
		t.Errorf("two-link fan-out of %d packets cost %d serialization passes, want %d (encode-once)",
			n, delta, n)
	}
}

// TestRecvBatchDrainsPendingThenEOF: a half-consumed batch keeps serving
// after the peer closes, then EOF.
func TestRecvBatchDrainsPendingThenEOF(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer b.Close()
			if err := SendBatch(a, mkBatch(3)); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Recv(); err != nil { // consume one, leaving pending
				t.Fatal(err)
			}
			a.Close()
			rest, err := RecvBatch(b)
			if err != nil {
				t.Fatalf("RecvBatch of pending remainder: %v", err)
			}
			if len(rest) != 2 {
				t.Fatalf("pending remainder %d packets, want 2", len(rest))
			}
			if _, err := RecvBatch(b); err != io.EOF {
				t.Fatalf("RecvBatch after drain = %v, want io.EOF", err)
			}
		})
	}
}
