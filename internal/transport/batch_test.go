package transport

import (
	"io"
	"testing"

	"repro/internal/packet"
)

func mkBatch(n int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = mkPkt(100, int64(i))
	}
	return out
}

// TestBatchRoundTrip: a SendBatch arrives as one RecvBatch frame with
// order and payloads intact, on both transports.
func TestBatchRoundTrip(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			sent := mkBatch(5)
			if err := SendBatch(a, sent); err != nil {
				t.Fatal(err)
			}
			got, err := RecvBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(sent) {
				t.Fatalf("RecvBatch returned %d packets, want %d", len(got), len(sent))
			}
			for i, p := range got {
				if v, _ := p.Int(0); v != int64(i) {
					t.Errorf("packet %d carries %d", i, v)
				}
			}
		})
	}
}

// TestBatchInterleavesWithSingles: per-packet Recv parcels a batch out one
// packet at a time, FIFO with surrounding single sends.
func TestBatchInterleavesWithSingles(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer a.Close()
			defer b.Close()
			if err := a.Send(mkPkt(100, 100)); err != nil {
				t.Fatal(err)
			}
			if err := SendBatch(a, mkBatch(3)); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(mkPkt(100, 200)); err != nil {
				t.Fatal(err)
			}
			want := []int64{100, 0, 1, 2, 200}
			for i, w := range want {
				p, err := b.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if v, _ := p.Int(0); v != w {
					t.Fatalf("Recv %d = %d, want %d", i, v, w)
				}
			}
		})
	}
}

// TestRecvBatchDrainsPendingThenEOF: a half-consumed batch keeps serving
// after the peer closes, then EOF.
func TestRecvBatchDrainsPendingThenEOF(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			a, b := f.make(t)
			defer b.Close()
			if err := SendBatch(a, mkBatch(3)); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Recv(); err != nil { // consume one, leaving pending
				t.Fatal(err)
			}
			a.Close()
			rest, err := RecvBatch(b)
			if err != nil {
				t.Fatalf("RecvBatch of pending remainder: %v", err)
			}
			if len(rest) != 2 {
				t.Fatalf("pending remainder %d packets, want 2", len(rest))
			}
			if _, err := RecvBatch(b); err != io.EOF {
				t.Fatalf("RecvBatch after drain = %v, want io.EOF", err)
			}
		})
	}
}
