package transport

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func TestBudgetBasics(t *testing.T) {
	b := NewBudget(2)
	if b.Cap() != 2 {
		t.Fatalf("cap = %d", b.Cap())
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("two acquires must succeed")
	}
	if b.TryAcquire() {
		t.Fatal("third acquire must fail")
	}
	if b.InUse() != 2 {
		t.Fatalf("in use = %d", b.InUse())
	}
	b.Release(1)
	if !b.TryAcquire() {
		t.Fatal("released credit must be reusable")
	}
	// Over-release is clamped, not a panic or a capacity leak.
	b.Release(10)
	if b.InUse() != 0 {
		t.Fatalf("after over-release, in use = %d", b.InUse())
	}
	if NewBudget(0).Cap() != 1 {
		t.Fatal("zero-credit budgets must clamp to 1")
	}
}

func TestBudgetAcquireBlocksAndAborts(t *testing.T) {
	b := NewBudget(1)
	if !b.TryAcquire() {
		t.Fatal("first acquire")
	}
	stop := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- b.Acquire(stop, nil) }()
	select {
	case <-got:
		t.Fatal("acquire should block on an exhausted budget")
	case <-time.After(20 * time.Millisecond):
	}
	close(stop)
	if v := <-got; v {
		t.Fatal("stopped acquire must report false")
	}
	// An aborted budget stops constraining entirely.
	b.Abort()
	if !b.Acquire(nil, nil) {
		t.Fatal("aborted budget must grant immediately")
	}
	b.Abort() // idempotent
}

// budgetPair builds a chan-fabric link pair wrapped in FlowLinks of window w.
func budgetPair(t *testing.T, w int) (*FlowLink, *FlowLink) {
	t.Helper()
	a, b := NewPair(8)
	return NewFlowLink(a, w), NewFlowLink(b, w)
}

func TestAcquireBudgetedReleasesOnRefill(t *testing.T) {
	fl, _ := budgetPair(t, 4)
	b := NewBudget(2)
	if !fl.AcquireBudgeted(b, nil, nil) || !fl.AcquireBudgeted(b, nil, nil) {
		t.Fatal("budgeted acquires within both windows must succeed")
	}
	if b.InUse() != 2 {
		t.Fatalf("budget in use = %d, want 2", b.InUse())
	}
	if b.TryAcquire() {
		t.Fatal("budget must be exhausted")
	}
	// The link window still has 2 free credits, but the tenant's budget is
	// spent: a budgeted acquire must block even though the link would not.
	stop := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- fl.AcquireBudgeted(b, stop, nil) }()
	select {
	case <-got:
		t.Fatal("acquire should block on the exhausted tenant budget")
	case <-time.After(20 * time.Millisecond):
	}
	// A grant refilling one link credit releases the oldest budget stamp,
	// unblocking the tenant.
	fl.Refill(1)
	if v := <-got; !v {
		t.Fatal("refill must unblock the budgeted acquire")
	}
	close(stop)
}

func TestAcquireBudgetedRefundAndAbort(t *testing.T) {
	fl, _ := budgetPair(t, 4)
	b := NewBudget(4)
	for i := 0; i < 3; i++ {
		if !fl.AcquireBudgeted(b, nil, nil) {
			t.Fatal("acquire")
		}
	}
	// A failed send unwinds its own (newest) stamp.
	fl.RefundBudgeted(1)
	if b.InUse() != 2 {
		t.Fatalf("after refund, budget in use = %d, want 2", b.InUse())
	}
	// Link death returns every remaining stamp: a tenant must not stay
	// charged for credits a dead peer can never retire.
	fl.Abort()
	if b.InUse() != 0 {
		t.Fatalf("after abort, budget in use = %d, want 0", b.InUse())
	}
	// Acquires against the dead link proceed without stranding tokens.
	if !fl.AcquireBudgeted(b, nil, nil) {
		t.Fatal("acquire on dead link must proceed")
	}
	if b.InUse() != 0 {
		t.Fatalf("dead-link acquire leaked a budget token: in use = %d", b.InUse())
	}
}

func TestAcquireBudgetedNilBudget(t *testing.T) {
	fl, _ := budgetPair(t, 1)
	if !fl.AcquireBudgeted(nil, nil, nil) {
		t.Fatal("nil budget must degrade to plain Acquire")
	}
	stop := make(chan struct{})
	close(stop)
	if fl.AcquireBudgeted(nil, stop, nil) {
		t.Fatal("stopped plain acquire must report false")
	}
}

// TestBudgetedGrantsOverWire drives real grants end to end: the receiver
// retires packets, the sender's budget frees as the grants land.
func TestBudgetedGrantsOverWire(t *testing.T) {
	fl, peer := budgetPair(t, 4)
	b := NewBudget(2)
	data := packet.MustNew(100, 1, 0, "%d", int64(7))
	for i := 0; i < 2; i++ {
		if !fl.AcquireBudgeted(b, nil, nil) {
			t.Fatal("acquire")
		}
		if err := fl.Send(data); err != nil {
			t.Fatal(err)
		}
	}
	// Receiver consumes and retires both; window 4 → threshold 1, so each
	// retirement yields a grant to send back.
	for i := 0; i < 2; i++ {
		if _, err := peer.Recv(); err != nil {
			t.Fatal(err)
		}
		if g := peer.Retire(1); g > 0 {
			if err := peer.Send(packet.NewCreditGrant(uint32(g), 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The sender absorbs the grants on its next receive attempt; there is
	// no data coming back, so poke the absorb path directly via Refill as
	// the chan link's Recv would. Use a real recv with a trailing data
	// packet instead: the peer sends one data packet after the grants.
	if err := peer.Send(data); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Recv(); err != nil { // absorbs both grants first
		t.Fatal(err)
	}
	if b.InUse() != 0 {
		t.Fatalf("budget in use after grants = %d, want 0", b.InUse())
	}
}
