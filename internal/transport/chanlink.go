package transport

import (
	"io"
	"sync"

	"repro/internal/packet"
	"repro/internal/topology"
)

// chanLink is one end of an in-process link built from a pair of buffered
// channels. The buffer provides the bounded queueing (and therefore the
// backpressure) that a TCP socket's kernel buffers provide in the real
// system: a fast sender eventually blocks when its slow receiver falls
// behind, which is exactly the effect that makes flat-tree front-ends a
// bottleneck.
type chanLink struct {
	send chan *packet.Packet
	recv chan *packet.Packet

	ownClosed   chan struct{} // closed when this end Closes
	peerClosed  chan struct{} // closed when the peer end Closes
	closeOnce   *sync.Once    // guards ownClosed
	ownDropped  chan struct{} // closed when this end Drops (crash)
	peerDropped chan struct{} // closed when the peer end Drops
	dropOnce    *sync.Once    // guards ownDropped
}

// DefaultChanBuffer is the per-direction packet buffer used when callers
// pass a non-positive buffer size.
const DefaultChanBuffer = 64

// NewPair creates the two ends of an in-process link with the given
// per-direction buffer capacity.
func NewPair(buf int) (Link, Link) {
	if buf <= 0 {
		buf = DefaultChanBuffer
	}
	ab := make(chan *packet.Packet, buf)
	ba := make(chan *packet.Packet, buf)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	aDropped := make(chan struct{})
	bDropped := make(chan struct{})
	a := &chanLink{
		send: ab, recv: ba,
		ownClosed: aClosed, peerClosed: bClosed,
		closeOnce:  &sync.Once{},
		ownDropped: aDropped, peerDropped: bDropped,
		dropOnce: &sync.Once{},
	}
	b := &chanLink{
		send: ba, recv: ab,
		ownClosed: bClosed, peerClosed: aClosed,
		closeOnce:  &sync.Once{},
		ownDropped: bDropped, peerDropped: aDropped,
		dropOnce: &sync.Once{},
	}
	return a, b
}

// Send delivers p to the peer, blocking while the buffer is full. It fails
// with ErrClosed once either end has closed.
func (l *chanLink) Send(p *packet.Packet) error {
	// Fast-path check so a closed link fails even if buffer space remains.
	select {
	case <-l.ownClosed:
		return ErrClosed
	case <-l.peerClosed:
		return ErrClosed
	default:
	}
	select {
	case l.send <- p:
		return nil
	case <-l.ownClosed:
		return ErrClosed
	case <-l.peerClosed:
		return ErrClosed
	}
}

// Recv returns the next packet. After the peer closes, Recv drains any
// packets already in flight and then reports io.EOF; after the peer
// Drops (crash), the in-flight packets are lost and Recv reports io.EOF
// immediately.
func (l *chanLink) Recv() (*packet.Packet, error) {
	select {
	case <-l.peerDropped:
		return nil, io.EOF
	default:
	}
	select {
	case p := <-l.recv:
		return p, nil
	default:
	}
	select {
	case p := <-l.recv:
		return p, nil
	case <-l.ownClosed:
		return l.drainOrEOF()
	case <-l.peerClosed:
		return l.drainOrEOF()
	}
}

func (l *chanLink) drainOrEOF() (*packet.Packet, error) {
	// A dropped peer models a crash: whatever it had "on the wire" is lost,
	// so report EOF immediately instead of draining.
	select {
	case <-l.peerDropped:
		return nil, io.EOF
	default:
	}
	select {
	case p := <-l.recv:
		return p, nil
	default:
		return nil, io.EOF
	}
}

// Close closes this end. Both ends observe the closure: the peer's pending
// and future Sends fail, and its Recv drains then reports io.EOF.
func (l *chanLink) Close() error {
	l.closeOnce.Do(func() { close(l.ownClosed) })
	return nil
}

// Drop severs the link as a crash would: the peer's Recv reports EOF without
// draining packets already buffered, modeling in-flight data loss.
func (l *chanLink) Drop() {
	l.dropOnce.Do(func() { close(l.ownDropped) })
	_ = l.Close()
}

// NewChanFabric wires an entire topology with in-process links, returning
// one Endpoint per rank (indexed by rank). buf sets the per-direction
// buffer; pass 0 for the default.
func NewChanFabric(t *topology.Tree, buf int) []*Endpoint {
	eps := make([]*Endpoint, t.Len())
	for r := 0; r < t.Len(); r++ {
		eps[r] = &Endpoint{Rank: packet.Rank(r)}
	}
	for r := 0; r < t.Len(); r++ {
		for _, c := range t.Children(topology.Rank(r)) {
			parentEnd, childEnd := NewPair(buf)
			eps[r].Children = append(eps[r].Children, parentEnd)
			eps[c].Parent = childEnd
		}
	}
	return eps
}
