package transport

import (
	"io"
	"sync"

	"repro/internal/packet"
	"repro/internal/topology"
)

// chanFrame is one channel transfer: either a single packet (the common
// un-batched case, carried inline so it costs no allocation) or a whole
// egress batch. Exactly one field is set.
type chanFrame struct {
	p  *packet.Packet
	ps []*packet.Packet
}

// chanLink is one end of an in-process link built from a pair of buffered
// channels. The buffer provides the bounded queueing (and therefore the
// backpressure) that a TCP socket's kernel buffers provide in the real
// system: a fast sender eventually blocks when its slow receiver falls
// behind, which is exactly the effect that makes flat-tree front-ends a
// bottleneck. The channel element is a frame — one packet or one batch —
// so batching reduces a link's channel operations from one per packet to
// one per flush.
type chanLink struct {
	send chan chanFrame
	recv chan chanFrame

	ownClosed   chan struct{} // closed when this end Closes
	peerClosed  chan struct{} // closed when the peer end Closes
	closeOnce   *sync.Once    // guards ownClosed
	ownDropped  chan struct{} // closed when this end Drops (crash)
	peerDropped chan struct{} // closed when the peer end Drops
	dropOnce    *sync.Once    // guards ownDropped

	// recvMu guards the pending buffer that parcels a received batch out to
	// per-packet Recv callers.
	recvMu  sync.Mutex
	pending []*packet.Packet
	pendOff int
}

// DefaultChanBuffer is the per-direction frame buffer used when callers
// pass a non-positive buffer size. Each buffered element is one frame (a
// packet or a batch), so the buffer bounds queued link operations, not
// queued packets.
const DefaultChanBuffer = 64

// NewPair creates the two ends of an in-process link with the given
// per-direction buffer capacity.
func NewPair(buf int) (Link, Link) {
	if buf <= 0 {
		buf = DefaultChanBuffer
	}
	ab := make(chan chanFrame, buf)
	ba := make(chan chanFrame, buf)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	aDropped := make(chan struct{})
	bDropped := make(chan struct{})
	a := &chanLink{
		send: ab, recv: ba,
		ownClosed: aClosed, peerClosed: bClosed,
		closeOnce:  &sync.Once{},
		ownDropped: aDropped, peerDropped: bDropped,
		dropOnce: &sync.Once{},
	}
	b := &chanLink{
		send: ba, recv: ab,
		ownClosed: bClosed, peerClosed: aClosed,
		closeOnce:  &sync.Once{},
		ownDropped: bDropped, peerDropped: aDropped,
		dropOnce: &sync.Once{},
	}
	return a, b
}

// Send delivers p to the peer, blocking while the buffer is full. It fails
// with ErrClosed once either end has closed.
func (l *chanLink) Send(p *packet.Packet) error {
	return l.sendFrame(chanFrame{p: p})
}

// SendBatch delivers the whole batch as a single channel transfer. The
// link takes ownership of the slice.
func (l *chanLink) SendBatch(ps []*packet.Packet) error {
	if len(ps) == 0 {
		return nil
	}
	if len(ps) == 1 {
		return l.sendFrame(chanFrame{p: ps[0]})
	}
	return l.sendFrame(chanFrame{ps: ps})
}

// BatchCopies reports false: SendBatch passes the slice itself through
// the channel, so the receiver shares the sender's backing array and the
// sender must never reuse it (the aliasing class batchalias polices).
func (l *chanLink) BatchCopies() bool { return false }

func (l *chanLink) sendFrame(f chanFrame) error {
	// Fast-path check so a closed link fails even if buffer space remains.
	select {
	case <-l.ownClosed:
		return ErrClosed
	case <-l.peerClosed:
		return ErrClosed
	default:
	}
	select {
	case l.send <- f:
		return nil
	case <-l.ownClosed:
		return ErrClosed
	case <-l.peerClosed:
		return ErrClosed
	}
}

// Recv returns the next packet, parceling out buffered batches one packet
// at a time. After the peer closes, Recv drains any frames already in
// flight and then reports io.EOF; after the peer Drops (crash), in-flight
// frames are lost and Recv reports io.EOF immediately.
func (l *chanLink) Recv() (*packet.Packet, error) {
	l.recvMu.Lock()
	defer l.recvMu.Unlock()
	if p := l.popPending(); p != nil {
		return p, nil
	}
	f, err := l.recvFrame()
	if err != nil {
		return nil, err
	}
	if f.p != nil {
		return f.p, nil
	}
	l.pending = f.ps
	l.pendOff = 0
	return l.popPending(), nil
}

// RecvBatch returns the next frame's packets as one batch.
func (l *chanLink) RecvBatch() ([]*packet.Packet, error) {
	l.recvMu.Lock()
	defer l.recvMu.Unlock()
	if l.pendOff < len(l.pending) {
		ps := l.pending[l.pendOff:]
		l.pending, l.pendOff = nil, 0
		return ps, nil
	}
	f, err := l.recvFrame()
	if err != nil {
		return nil, err
	}
	if f.p != nil {
		return []*packet.Packet{f.p}, nil
	}
	return f.ps, nil
}

// popPending returns the next packet of a partially consumed batch, or nil.
func (l *chanLink) popPending() *packet.Packet {
	if l.pendOff >= len(l.pending) {
		return nil
	}
	p := l.pending[l.pendOff]
	l.pendOff++
	if l.pendOff == len(l.pending) {
		l.pending, l.pendOff = nil, 0
	}
	return p
}

// recvFrame blocks for the next frame; callers hold recvMu.
func (l *chanLink) recvFrame() (chanFrame, error) {
	select {
	case <-l.peerDropped:
		return chanFrame{}, io.EOF
	default:
	}
	select {
	case f := <-l.recv:
		return f, nil
	default:
	}
	select {
	case f := <-l.recv:
		return f, nil
	case <-l.ownClosed:
		return l.drainOrEOF()
	case <-l.peerClosed:
		return l.drainOrEOF()
	}
}

func (l *chanLink) drainOrEOF() (chanFrame, error) {
	// A dropped peer models a crash: whatever it had "on the wire" is lost,
	// so report EOF immediately instead of draining.
	select {
	case <-l.peerDropped:
		return chanFrame{}, io.EOF
	default:
	}
	select {
	case f := <-l.recv:
		return f, nil
	default:
		return chanFrame{}, io.EOF
	}
}

// Close closes this end. Both ends observe the closure: the peer's pending
// and future Sends fail, and its Recv drains then reports io.EOF.
func (l *chanLink) Close() error {
	l.closeOnce.Do(func() { close(l.ownClosed) })
	return nil
}

// Drop severs the link as a crash would: the peer's Recv reports EOF without
// draining packets already buffered, modeling in-flight data loss.
func (l *chanLink) Drop() {
	l.dropOnce.Do(func() { close(l.ownDropped) })
	_ = l.Close()
}

// NewChanFabric wires an entire topology with in-process links, returning
// one Endpoint per rank (indexed by rank). buf sets the per-direction
// buffer; pass 0 for the default.
func NewChanFabric(t *topology.Tree, buf int) []*Endpoint {
	eps := make([]*Endpoint, t.Len())
	for r := 0; r < t.Len(); r++ {
		eps[r] = &Endpoint{Rank: packet.Rank(r)}
	}
	for r := 0; r < t.Len(); r++ {
		for _, c := range t.Children(topology.Rank(r)) {
			parentEnd, childEnd := NewPair(buf)
			eps[r].Children = append(eps[r].Children, parentEnd)
			eps[c].Parent = childEnd
		}
	}
	return eps
}
