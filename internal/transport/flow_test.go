package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

// TestFlowLinkWindowAccounting: the sender pool holds exactly the window,
// TryAcquire exhausts it, Refill restores it, and over-refills are clamped.
func TestFlowLinkWindowAccounting(t *testing.T) {
	a, b := NewPair(4)
	defer a.Close()
	defer b.Close()
	f := NewFlowLink(a, 3)
	for i := 0; i < 3; i++ {
		if !f.TryAcquire() {
			t.Fatalf("acquire %d failed inside the window", i)
		}
	}
	if f.TryAcquire() {
		t.Fatal("acquired a fourth credit from a window of 3")
	}
	f.Refill(2)
	if !f.TryAcquire() || !f.TryAcquire() {
		t.Fatal("refilled credits not acquirable")
	}
	if f.TryAcquire() {
		t.Fatal("acquired beyond the refill")
	}
	// Over-refill (duplicate grant) is clamped at the window.
	f.Refill(100)
	n := 0
	for f.TryAcquire() {
		n++
	}
	if n != 3 {
		t.Fatalf("pool refilled to %d credits, want the window of 3", n)
	}
}

// TestFlowLinkAcquireBlocksAndAborts: Acquire blocks on an exhausted window
// until a grant refills it, and aborts cleanly on a stop channel.
func TestFlowLinkAcquireBlocksAndAborts(t *testing.T) {
	a, b := NewPair(4)
	defer a.Close()
	defer b.Close()
	f := NewFlowLink(a, 1)
	if !f.TryAcquire() {
		t.Fatal("first acquire failed")
	}
	got := make(chan bool, 1)
	go func() { got <- f.Acquire(nil, nil) }()
	select {
	case <-got:
		t.Fatal("Acquire returned with the window exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	f.Refill(1)
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("Acquire aborted after a refill")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not wake on refill")
	}

	if !f.TryAcquire() {
		// the woken Acquire took the refilled credit; exhaust again below
		t.Log("window already exhausted by the woken Acquire")
	}
	stop := make(chan struct{})
	aborted := make(chan bool, 1)
	go func() { aborted <- f.Acquire(stop, nil) }()
	close(stop)
	select {
	case ok := <-aborted:
		if ok {
			t.Fatal("Acquire succeeded past an exhausted window without a refill")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not abort on stop")
	}
}

// TestFlowLinkRetireThreshold: retirements below a quarter window stay
// accumulated; crossing it claims the whole accumulation exactly once.
func TestFlowLinkRetireThreshold(t *testing.T) {
	a, b := NewPair(4)
	defer a.Close()
	defer b.Close()
	f := NewFlowLink(a, 16) // threshold 4
	for i := 0; i < 3; i++ {
		if g := f.Retire(1); g != 0 {
			t.Fatalf("grant of %d released below the threshold", g)
		}
	}
	if g := f.Retire(1); g != 4 {
		t.Fatalf("threshold crossing granted %d, want 4", g)
	}
	if g := f.Retire(2); g != 0 {
		t.Fatalf("fresh accumulation granted %d early", g)
	}
	if g := f.Retire(7); g != 9 {
		t.Fatalf("bulk retirement granted %d, want 9", g)
	}
}

// TestFlowLinkAbsorbsGrants: grants put on the wire by the peer refill the
// pool inside Recv/RecvBatch and never surface; data packets pass through
// untouched, on both the per-packet and batch receive paths.
func TestFlowLinkAbsorbsGrants(t *testing.T) {
	a, b := NewPair(16)
	defer a.Close()
	defer b.Close()
	f := NewFlowLink(a, 4)
	for i := 0; i < 4; i++ {
		f.TryAcquire()
	}

	// A frame of only grants, then a mixed frame: RecvBatch must skip the
	// first entirely and filter the second.
	if err := SendBatch(b, []*packet.Packet{packet.NewCreditGrant(2, 0)}); err != nil {
		t.Fatal(err)
	}
	data := packet.MustNew(packet.TagFirstApplication, 9, 2, "%d", int64(5))
	if err := SendBatch(b, []*packet.Packet{packet.NewCreditGrant(1, 0), data}); err != nil {
		t.Fatal(err)
	}
	ps, err := f.RecvBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].StreamID != 9 {
		t.Fatalf("RecvBatch returned %d packets (stream %d), want the 1 data packet", len(ps), ps[0].StreamID)
	}
	n := 0
	for f.TryAcquire() {
		n++
	}
	if n != 3 {
		t.Fatalf("absorbed grants refilled %d credits, want 3", n)
	}

	// Per-packet path: grant then data.
	if err := b.Send(packet.NewCreditGrant(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(data); err != nil {
		t.Fatal(err)
	}
	p, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p.StreamID != 9 {
		t.Fatalf("Recv returned stream %d, want the data packet", p.StreamID)
	}
	if !f.TryAcquire() || !f.TryAcquire() {
		t.Fatal("per-packet grant did not refill")
	}
}

// TestFlowLinkRefillHook: the hook fires after refills — the egress
// stall/resume wakeup contract.
func TestFlowLinkRefillHook(t *testing.T) {
	a, b := NewPair(4)
	defer a.Close()
	defer b.Close()
	f := NewFlowLink(a, 2)
	var mu sync.Mutex
	fired := 0
	f.SetRefillHook(func() { mu.Lock(); fired++; mu.Unlock() })
	f.TryAcquire()
	f.Refill(1)
	mu.Lock()
	got := fired
	mu.Unlock()
	if got != 1 {
		t.Fatalf("refill hook fired %d times, want 1", got)
	}
}

// TestFlowLinkDelegation: the wrapper stays a faithful BatchLink and
// Dropper on both fabrics' core behaviors (batch path, drop-through EOF).
func TestFlowLinkDelegation(t *testing.T) {
	a, b := NewPair(8)
	f := NewFlowLink(a, 4)
	batch := []*packet.Packet{
		packet.MustNew(100, 1, 0, "%d", int64(1)),
		packet.MustNew(100, 1, 0, "%d", int64(2)),
	}
	if err := SendBatch(f, batch); err != nil {
		t.Fatal(err)
	}
	got, err := RecvBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("batch of %d through the wrapper, want 2 (native batch path lost?)", len(got))
	}
	DropLink(f) // must reach the inner Dropper
	if _, err := b.Recv(); err == nil {
		t.Fatal("peer Recv succeeded after a dropped FlowLink")
	}
}
