package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/packet"
)

// FlowLink layers credit-based flow-control accounting over any Link, on
// any fabric: the wrapper is pure bookkeeping around the wrapped link's
// Send/Recv, so the chan and TCP transports (and anything interposed on
// them, like the simnet cost model) get identical credit semantics.
//
// Each direction of a link is governed by a fixed window W of send credits:
//
//   - The SENDER side holds a pool of W credit tokens. Every data packet it
//     puts on the wire must first acquire one (TryAcquire / Acquire), so at
//     most W data packets can be "in flight" — on the wire or un-retired at
//     the receiver — per direction. Control traffic never consumes credits.
//
//   - The RECEIVER side calls Retire as its pipeline actually finishes
//     packets (not merely enqueues them). Retirements accumulate and, once
//     a quarter-window has built up, Retire hands the caller a grant total
//     to return to the peer as one compact TagCredit packet — batching the
//     reverse traffic without risking deadlock (a stalled sender has W
//     un-granted packets at the receiver, and W ≥ the grant threshold, so
//     the threshold is always eventually crossed).
//
//   - Inbound grants are absorbed inside Recv/RecvBatch and refill the
//     sender pool directly, waking any Acquire-blocked sender; they are
//     invisible above the transport.
//
// Both ends of a link wrap independently (each process wraps its own end),
// and a replacement link minted by recovery or attach gets a fresh wrapper
// — which is exactly how credit state is rebuilt after a rewire: the new
// window starts full on the sender side and unretired on the receiver side,
// so retained buffers re-entering the window cannot double-spend credits.
type FlowLink struct {
	Link
	window int
	// tokens is the sender-side credit pool: a buffered channel used as a
	// counting semaphore, which makes Acquire abortable by arbitrary stop
	// channels. Sending into it takes a credit; draining it returns one.
	tokens chan struct{}
	// retired accumulates receiver-side retirements since the last grant.
	retired atomic.Int64
	// refillHook, when set, is invoked after inbound grants refill the
	// pool — the egress queue's stall/resume wakeup.
	refillHook atomic.Pointer[func()]
	// ackHook, when set, is invoked after inbound grants with the grant's
	// credit count and cumulative acknowledged total — the egress replay
	// ring's retirement signal (exactly-once delivery). It runs on the
	// link's reader goroutine and must not touch the wire.
	ackHook atomic.Pointer[func(n int, cum uint64)]
	// retiredTotal counts every receiver-side retirement on this link for
	// the link's lifetime; outgoing grants carry it as the cumulative ack.
	retiredTotal atomic.Uint64
	// dead releases blocked Acquire callers once the link is known
	// finished (closed, dropped, or replaced after a failure): credits
	// from a dead peer are never coming, so waiting is pointless — the
	// caller proceeds and lets the send surface the link's real state.
	dead     chan struct{}
	deadOnce sync.Once

	// budMu guards budQ, the FIFO of per-tenant Budget stamps for credits
	// taken via AcquireBudgeted. Credits are fungible, so when a grant
	// refills n credits the n oldest stamps are released — attribution is
	// FIFO-approximate when budgeted and unbudgeted traffic interleave on
	// one link, but the sum of outstanding budget tokens always equals the
	// number of budgeted credits still in flight, and every stamp is
	// released by exactly one of Refill, RefundBudgeted, or Abort.
	budMu sync.Mutex
	budQ  []*Budget
}

// NewFlowLink wraps l with a credit window of w packets per direction.
// w must be positive.
func NewFlowLink(l Link, w int) *FlowLink {
	if w < 1 {
		w = 1
	}
	f := &FlowLink{Link: l, window: w, tokens: make(chan struct{}, w), dead: make(chan struct{})}
	return f
}

// Abort marks the link finished, releasing every blocked Acquire (they
// proceed and let the send itself fail) and returning every outstanding
// budget stamp — credits on a dead link are never retired, and a tenant
// must not stay charged for them. Idempotent; implied by Close and Drop,
// and called explicitly when recovery replaces a failed link.
func (f *FlowLink) Abort() {
	f.deadOnce.Do(func() { close(f.dead) })
	f.releaseBudgets(int(^uint(0) >> 1))
}

// releaseBudgets pops up to n stamps from the head of the budget FIFO and
// returns their tokens.
func (f *FlowLink) releaseBudgets(n int) {
	f.budMu.Lock()
	if n > len(f.budQ) {
		n = len(f.budQ)
	}
	popped := f.budQ[:n]
	rest := f.budQ[n:]
	if len(rest) == 0 {
		f.budQ = nil
	} else {
		f.budQ = append([]*Budget(nil), rest...)
	}
	f.budMu.Unlock()
	for _, b := range popped {
		b.Release(1)
	}
}

// Window returns the link's per-direction credit window.
func (f *FlowLink) Window() int { return f.window }

// Inner returns the wrapped link.
func (f *FlowLink) Inner() Link { return f.Link }

// grantThreshold is how many retirements accumulate before Retire releases
// a grant: a quarter window batches the reverse traffic 4:1 while staying
// safely below the window (the deadlock-freedom condition).
func (f *FlowLink) grantThreshold() int64 {
	t := int64(f.window) / 4
	if t < 1 {
		t = 1
	}
	return t
}

// TryAcquire takes one send credit if one is available.
func (f *FlowLink) TryAcquire() bool {
	select {
	case f.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks for one send credit, aborting (false) if either stop
// channel fires first. Nil stop channels never fire.
func (f *FlowLink) Acquire(stopA, stopB <-chan struct{}) bool {
	select {
	case f.tokens <- struct{}{}:
		return true
	default:
	}
	select {
	case f.tokens <- struct{}{}:
		return true
	case <-f.dead:
		return true // finished link: proceed, the send reports the truth
	case <-stopA:
		return false
	case <-stopB:
		return false
	}
}

// AcquireBudgeted takes one credit from the tenant budget b and one send
// credit from the link's window as a single step, stamping the link credit
// with the budget so the budget token returns automatically when the
// credit does (inbound grant, refund of a failed send, or link death).
// Aborting either side lets the caller proceed — a dead link or a closed
// session must never wedge a sender — and the stamp discipline still
// releases exactly once. Returns false only when a stop channel fired.
func (f *FlowLink) AcquireBudgeted(b *Budget, stopA, stopB <-chan struct{}) bool {
	if b == nil {
		return f.Acquire(stopA, stopB)
	}
	if !b.Acquire(stopA, stopB) {
		return false
	}
	if !f.Acquire(stopA, stopB) {
		b.Release(1)
		return false
	}
	f.budMu.Lock()
	dead := false
	select {
	case <-f.dead:
		dead = true
	default:
		f.budQ = append(f.budQ, b)
	}
	f.budMu.Unlock()
	if dead {
		// The link died before (or while) we stamped: Abort already swept
		// the FIFO, so return the token directly rather than stranding it.
		b.Release(1)
	}
	return true
}

// RefundBudgeted returns n unused send credits taken via AcquireBudgeted
// (a failed send unwinding), releasing the newest n budget stamps — the
// ones the unwinding sender itself just pushed.
func (f *FlowLink) RefundBudgeted(n int) {
	f.budMu.Lock()
	k := n
	if k > len(f.budQ) {
		k = len(f.budQ)
	}
	popped := append([]*Budget(nil), f.budQ[len(f.budQ)-k:]...)
	f.budQ = f.budQ[:len(f.budQ)-k]
	f.budMu.Unlock()
	for _, b := range popped {
		b.Release(1)
	}
	f.Refund(n)
}

// Refund returns n unused send credits without waking anyone: the caller
// is the would-be sender itself, unwinding a failed flush — possibly with
// its own queue lock held, so no hook may run. Credits beyond the window
// are discarded, which keeps the invariant self-healing.
func (f *FlowLink) Refund(n int) {
	for ; n > 0; n-- {
		select {
		case <-f.tokens:
		default:
			return
		}
	}
}

// Refill returns n send credits to the pool (an inbound grant from the
// peer) and runs the refill hook — the egress queue's stall/resume wakeup.
// The n oldest budget stamps are released first: the peer retiring n
// packets is what frees the tenants those credits were charged to.
func (f *FlowLink) Refill(n int) {
	f.refillAck(n, 0)
}

// refillAck is Refill plus the grant's cumulative acknowledged total, fed
// to the ack hook so an egress replay ring can retire the acked prefix.
// cum 0 means "unknown" (legacy grants); the hook falls back to the delta.
func (f *FlowLink) refillAck(n int, cum uint64) {
	f.releaseBudgets(n)
	f.Refund(n)
	if hook := f.ackHook.Load(); hook != nil {
		(*hook)(n, cum)
	}
	if hook := f.refillHook.Load(); hook != nil {
		(*hook)()
	}
}

// SetRefillHook registers fn to run after every inbound grant refill.
func (f *FlowLink) SetRefillHook(fn func()) {
	if fn == nil {
		f.refillHook.Store(nil)
		return
	}
	f.refillHook.Store(&fn)
}

// SetAckHook registers fn to run after every inbound grant with the
// grant's credit count and cumulative acknowledged total. Like the refill
// hook it runs on the link's reader goroutine: it must be quick and must
// never touch the wire.
func (f *FlowLink) SetAckHook(fn func(n int, cum uint64)) {
	if fn == nil {
		f.ackHook.Store(nil)
		return
	}
	f.ackHook.Store(&fn)
}

// GrantPacket builds the credit-grant packet returning n credits to the
// peer, stamped with this side's cumulative retired total as the ack.
// The snapshot is taken after the retirements it covers were recorded
// (Retire/FlushRetired add to the total before the claim is returned), so
// the cumulative count never undercounts the credits it accompanies.
func (f *FlowLink) GrantPacket(n int) *packet.Packet {
	return packet.NewCreditGrant(uint32(n), f.retiredTotal.Load())
}

// Retire records that the receiving pipeline finished n inbound data
// packets. When accumulated retirements cross the grant threshold the
// whole accumulation is claimed and returned for the caller to grant back
// to the peer; otherwise 0.
func (f *FlowLink) Retire(n int) int {
	f.retiredTotal.Add(uint64(n))
	f.retired.Add(int64(n))
	for {
		cur := f.retired.Load()
		if cur < f.grantThreshold() {
			return 0
		}
		if f.retired.CompareAndSwap(cur, 0) {
			return int(cur)
		}
	}
}

// FlushRetired claims the accumulated retirements regardless of the grant
// threshold. Receivers call it when their pipeline goes idle: no further
// work is coming to push the accumulation over the threshold, and the peer
// may be waiting on exactly these credits — a tenant sub-budget smaller
// than threshold × fan-out exhausts before any single link accumulates a
// quarter window, so threshold batching alone is a liveness guarantee only
// for window-limited senders, not budget-limited ones.
func (f *FlowLink) FlushRetired() int {
	for {
		cur := f.retired.Load()
		if cur == 0 {
			return 0
		}
		if f.retired.CompareAndSwap(cur, 0) {
			return int(cur)
		}
	}
}

// absorb refills the pool from any grants in ps and filters them out. The
// filtered slice is freshly allocated, never a compaction of ps: on the
// in-process fabric ps shares its backing array with the slice the sender
// passed to SendBatch, which the sender may still read after the send (the
// exactly-once path appends the sent prefix to its replay ring). When ps
// carries no grants it is returned as-is, so the common case stays
// zero-copy.
func (f *FlowLink) absorb(ps []*packet.Packet) []*packet.Packet {
	grants := 0
	for _, p := range ps {
		if _, ok := packet.CreditGrantValue(p); ok {
			grants++
		}
	}
	if grants == 0 {
		return ps
	}
	kept := make([]*packet.Packet, 0, len(ps)-grants)
	for _, p := range ps {
		if n, ok := packet.CreditGrantValue(p); ok {
			f.refillAck(int(n), packet.CreditGrantAck(p))
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// Recv delivers the next non-grant packet, absorbing credit grants into the
// sender pool as they arrive.
func (f *FlowLink) Recv() (*packet.Packet, error) {
	for {
		p, err := f.Link.Recv()
		if err != nil {
			return nil, err
		}
		if n, ok := packet.CreditGrantValue(p); ok {
			f.refillAck(int(n), packet.CreditGrantAck(p))
			continue
		}
		return p, nil
	}
}

// RecvBatch delivers the next frame's non-grant packets, absorbing grants;
// frames that carried only grants are skipped entirely.
func (f *FlowLink) RecvBatch() ([]*packet.Packet, error) {
	for {
		ps, err := RecvBatch(f.Link)
		if err != nil {
			return nil, err
		}
		if ps = f.absorb(ps); len(ps) > 0 {
			return ps, nil
		}
	}
}

// SendBatch forwards a whole batch through the wrapped link's native batch
// path. Credit accounting is the caller's concern (the egress queue
// acquires credits per data packet before flushing).
func (f *FlowLink) SendBatch(ps []*packet.Packet) error {
	return SendBatch(f.Link, ps)
}

// BatchCopies delegates the ownership question to the wrapped link: the
// flow wrapper adds bookkeeping, not buffering.
func (f *FlowLink) BatchCopies() bool { return BatchCopies(f.Link) }

// Close closes the wrapped link and releases blocked senders.
func (f *FlowLink) Close() error {
	f.Abort()
	return f.Link.Close()
}

// Drop severs the wrapped link abruptly (crash modeling passes through)
// and releases blocked senders.
func (f *FlowLink) Drop() {
	f.Abort()
	DropLink(f.Link)
}
