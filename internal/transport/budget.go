package transport

import "sync"

// Budget is a counting semaphore over send credits, used to carve a
// per-tenant sub-window out of a link's credit window: where a FlowLink
// bounds how many un-retired data packets one LINK direction may carry, a
// Budget bounds how many of those credits one TENANT may hold across all of
// a process's links at once. A session fabric gives each tenant its own
// Budget sized at (a share of) Config.LinkWindow, so a single tenant whose
// subtree has stopped consuming cannot pin every credit of a shared link
// and starve its neighbors' data plane.
//
// A Budget is pure accounting — it wraps no link. It pairs with
// FlowLink.AcquireBudgeted, which takes a budget token and a link credit as
// one atomic step and returns the budget token automatically when the
// link's credit comes back (grant, refund, or link death). Like FlowLink's
// window, an aborted Budget stops constraining: Acquire succeeds
// immediately so teardown can never wedge a sender.
type Budget struct {
	cap    int
	tokens chan struct{}
	// dead releases blocked Acquire callers once the budget's owner is
	// gone (session closed): constraints from a dead tenant are pointless,
	// the caller proceeds and lets stream state surface the truth.
	dead     chan struct{}
	deadOnce sync.Once
}

// NewBudget returns a budget of n credits. n < 1 is treated as 1 (a
// zero-credit budget could never send and would deadlock its tenant).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{cap: n, tokens: make(chan struct{}, n), dead: make(chan struct{})}
}

// Cap returns the budget's total credit count.
func (b *Budget) Cap() int { return b.cap }

// InUse reports how many credits are currently held.
func (b *Budget) InUse() int { return len(b.tokens) }

// TryAcquire takes one credit if one is free.
func (b *Budget) TryAcquire() bool {
	select {
	case b.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks for one credit, aborting (false) if either stop channel
// fires first. Nil stop channels never fire. An aborted budget grants
// immediately, like a dead FlowLink's window.
func (b *Budget) Acquire(stopA, stopB <-chan struct{}) bool {
	select {
	case b.tokens <- struct{}{}:
		return true
	default:
	}
	select {
	case b.tokens <- struct{}{}:
		return true
	case <-b.dead:
		return true // aborted budget: proceed, downstream state decides
	case <-stopA:
		return false
	case <-stopB:
		return false
	}
}

// Release returns n credits. Credits beyond the capacity are discarded,
// which keeps the invariant self-healing (an aborted budget's stragglers
// may double-release).
func (b *Budget) Release(n int) {
	for ; n > 0; n-- {
		select {
		case <-b.tokens:
		default:
			return
		}
	}
}

// Abort marks the budget finished: every blocked Acquire proceeds and
// future Acquires succeed immediately. Idempotent. Called when the owning
// session closes, so tenant teardown can never strand a sender on its own
// (now meaningless) sub-window.
func (b *Budget) Abort() {
	b.deadOnce.Do(func() { close(b.dead) })
}
