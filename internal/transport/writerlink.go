package transport

import (
	"io"
	"sync"

	"repro/internal/packet"
)

// WriterLink is a send-only Link that writes wire frames to an io.Writer
// using the same persistent frame-assembly scratch as the TCP transport.
// It exists for the allocation benchmarks and the zeroalloc experiment:
// pointed at io.Discard it drives the full encode-and-frame egress path at
// memory speed, isolating the data plane's own allocation behavior from
// socket costs. Recv blocks until Close and then reports io.EOF, so a
// WriterLink can sit under a FlowLink like any other link.
type WriterLink struct {
	mu      sync.Mutex
	w       io.Writer
	scratch []byte
	one     [1]*packet.Packet // reused single-packet batch for Send
	closed  bool

	done     chan struct{}
	doneOnce sync.Once
}

// NewWriterLink wraps w as a send-only link.
func NewWriterLink(w io.Writer) *WriterLink {
	return &WriterLink{w: w, done: make(chan struct{})}
}

// Send writes p as a one-packet frame.
func (l *WriterLink) Send(p *packet.Packet) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.one[0] = p
	err := l.writeLocked(l.one[:])
	l.one[0] = nil
	return err
}

// SendBatch writes the whole batch as one frame. The batch is fully
// copied to the writer before return (see BatchCopies).
func (l *WriterLink) SendBatch(ps []*packet.Packet) error {
	if len(ps) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeLocked(ps)
}

func (l *WriterLink) writeLocked(ps []*packet.Packet) error {
	if l.closed {
		return ErrClosed
	}
	var buf []byte
	buf, l.scratch = appendWireFrame(l.scratch, ps)
	_, err := l.w.Write(buf)
	return err
}

// Recv blocks until the link closes; a WriterLink carries no inbound
// traffic.
func (l *WriterLink) Recv() (*packet.Packet, error) {
	<-l.done
	return nil, io.EOF
}

// RecvBatch blocks until the link closes, like Recv.
func (l *WriterLink) RecvBatch() ([]*packet.Packet, error) {
	<-l.done
	return nil, io.EOF
}

// BatchCopies reports true: frames are handed to the writer before
// SendBatch returns and nothing is retained.
func (l *WriterLink) BatchCopies() bool { return true }

// Close marks the link closed; subsequent sends fail with ErrClosed and
// blocked Recvs return io.EOF.
func (l *WriterLink) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.doneOnce.Do(func() { close(l.done) })
	return nil
}
