package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func framePackets(t *testing.T) []*Packet {
	t.Helper()
	return []*Packet{
		MustNew(100, 1, 2, "%d", int64(7)),
		MustNew(101, 1, 3, "%f %s", 2.5, "x"),
		MustNew(102, 9, 4, "%ad %as", []int64{1, 2, 3}, []string{"a"}),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3} {
		ps := framePackets(t)[:n]
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, ps); err != nil {
			t.Fatalf("WriteFrame(%d packets): %v", n, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d packets): %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("round-trip count = %d, want %d", len(got), n)
		}
		for i, p := range ps {
			if !bytes.Equal(got[i].Encode(), p.Encode()) {
				t.Errorf("packet %d changed across frame round-trip", i)
			}
		}
		if buf.Len() != 0 {
			t.Errorf("ReadFrame left %d unread bytes", buf.Len())
		}
	}
}

func TestFrameSizeAccounting(t *testing.T) {
	ps := framePackets(t)
	body := EncodeFrame(ps)
	if len(body) != EncodedFrameSize(ps) {
		t.Fatalf("EncodeFrame produced %d bytes, EncodedFrameSize says %d", len(body), EncodedFrameSize(ps))
	}
}

func TestDecodeFrameMalformedCount(t *testing.T) {
	// A count claiming more packets than the body can possibly hold must
	// be rejected before any allocation is attempted.
	body := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, err := DecodeFrame(body); !errors.Is(err, ErrWire) {
		t.Fatalf("huge count: err = %v, want ErrWire", err)
	}
	// Count beyond MaxFramePackets is rejected outright.
	body = binary.LittleEndian.AppendUint32(nil, MaxFramePackets+1)
	if _, err := DecodeFrame(body); !errors.Is(err, ErrWire) {
		t.Fatalf("count above MaxFramePackets: err = %v, want ErrWire", err)
	}
	// A count of 2 over a body holding 1 packet is truncated.
	one := EncodeFrame(framePackets(t)[:1])
	binary.LittleEndian.PutUint32(one, 2)
	if _, err := DecodeFrame(one); !errors.Is(err, ErrWire) {
		t.Fatalf("over-count: err = %v, want ErrWire", err)
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	body := EncodeFrame(framePackets(t))
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeFrame(body[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(body))
		}
	}
	// Trailing garbage after the last packet is rejected too.
	if _, err := DecodeFrame(append(append([]byte{}, body...), 0xFF)); !errors.Is(err, ErrWire) {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeFrameOversize(t *testing.T) {
	// Mirror the MaxWireSize defence: an outer frame length beyond
	// MaxFrameBody (one maximal packet plus framing) fails before any body
	// read, and an inner packet length beyond the cap fails without
	// allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrameBody+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrWire) {
		t.Fatalf("oversize frame length: err = %v, want ErrWire", err)
	}
	body := binary.LittleEndian.AppendUint32(nil, 1)
	body = binary.LittleEndian.AppendUint32(body, MaxWireSize+1)
	body = append(body, make([]byte, 64)...)
	if _, err := DecodeFrame(body); !errors.Is(err, ErrWire) {
		t.Fatalf("oversize packet length: err = %v, want ErrWire", err)
	}
}

func TestReadFrameShortBody(t *testing.T) {
	ps := framePackets(t)[:1]
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, ps); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("short frame body accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty reader: err = %v, want io.EOF", err)
	}
}
