package packet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Multi-packet frame wire format (all integers little-endian):
//
//	bodyLen   uint32  length of everything after this prefix
//	count     uint32  number of packets in the frame
//	count × { pktLen uint32, packet bytes (Encode form) }
//
// A frame is the unit the TCP transport writes per link flush: batching N
// packets into one frame amortizes the write syscall, the bufio flush, and
// (on the modeled network) the per-message latency over N packets. Frames
// with count == 1 replace the old single-packet framing; both ends of a
// link always speak frames.

// MaxFramePackets is the largest per-frame packet count the decoder will
// accept — a defence against corrupt counts triggering huge allocations.
// It is far above any egress flush window.
const MaxFramePackets = 1 << 20

// minEncodedPacket is the smallest Encode output: the fixed header with an
// empty format string and no payload.
const minEncodedPacket = 2 + 1 + 4 + 4 + 4 + 8 + 2

// MaxFrameBody is the largest frame body the decoder accepts: senders
// bound batches to MaxWireSize payload bytes (flushing early when a batch
// would grow past it), and a single maximal packet must still fit with
// its count and length framing — so the old single-packet size limit is
// never tightened by batching.
const MaxFrameBody = MaxWireSize + 8

// EncodedFrameSize returns the number of body bytes EncodeFrame produces
// (excluding the uint32 body-length prefix WriteFrame adds).
func EncodedFrameSize(ps []*Packet) int {
	n := 4
	for _, p := range ps {
		n += 4 + p.EncodedSize()
	}
	return n
}

// EncodeFrame serializes the packets into a frame body (everything after
// the outer length prefix). Packet bodies come from the per-packet wire
// cache (EncodedBytes), so a packet fanned out into k frames — a TCP
// multicast — is serialized once and copied k times, never re-encoded.
func EncodeFrame(ps []*Packet) []byte {
	return AppendFrame(make([]byte, 0, EncodedFrameSize(ps)), ps)
}

// AppendFrame appends the frame body for ps to dst and returns it — the
// allocation-free form of EncodeFrame for callers that keep a reusable
// scratch buffer (the TCP link's frame writer). dst should have
// EncodedFrameSize(ps) spare capacity to avoid growth.
func AppendFrame(dst []byte, ps []*Packet) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ps)))
	for _, p := range ps {
		enc := p.EncodedBytes()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// DecodeFrame parses a frame body produced by EncodeFrame. Each packet's
// bytes are validated individually; a malformed count, a truncated packet,
// or trailing garbage fails the whole frame.
func DecodeFrame(b []byte) ([]*Packet, error) {
	if len(b) > MaxFrameBody {
		return nil, fmt.Errorf("%w: frame body %d bytes exceeds MaxFrameBody", ErrWire, len(b))
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: frame body truncated (%d bytes)", ErrWire, len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	if count > MaxFramePackets {
		return nil, fmt.Errorf("%w: frame count %d exceeds MaxFramePackets", ErrWire, count)
	}
	rest := b[4:]
	// Each packet needs at least its length prefix plus the minimal header,
	// so a corrupt count cannot demand more packets than the body can hold.
	if int(count) > len(rest)/(4+minEncodedPacket) {
		return nil, fmt.Errorf("%w: frame count %d exceeds body capacity (%d bytes)", ErrWire, count, len(rest))
	}
	ps := make([]*Packet, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: frame truncated at packet %d", ErrWire, i)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if n > MaxWireSize {
			return nil, fmt.Errorf("%w: packet %d length %d exceeds MaxWireSize", ErrWire, i, n)
		}
		if int(n) > len(rest) {
			return nil, fmt.Errorf("%w: packet %d truncated (need %d of %d)", ErrWire, i, n, len(rest))
		}
		p, err := Decode(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("frame packet %d: %w", i, err)
		}
		ps = append(ps, p)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrWire, len(rest))
	}
	return ps, nil
}

// WriteFrame writes the packets as one length-prefixed frame: a single
// buffered write amortizes framing over the whole batch.
func WriteFrame(w io.Writer, ps []*Packet) (int64, error) {
	body := EncodeFrame(ps)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	n1, err := w.Write(hdr[:])
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(body)
	return int64(n1 + n2), err
}

// ReadFrame reads one length-prefixed frame from r, the inverse of
// WriteFrame.
func ReadFrame(r io.Reader) ([]*Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBody {
		return nil, fmt.Errorf("%w: frame length %d exceeds MaxFrameBody", ErrWire, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("packet: short frame: %w", err)
	}
	return DecodeFrame(buf)
}
