package packet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestEncodedBytesConcurrent hammers the per-packet wire cache from many
// goroutines at once — the multicast shape, where every child link asks for
// the same packet's bytes: exactly one serialization pass may happen, and
// every caller must see identical, decodable bytes.
func TestEncodedBytesConcurrent(t *testing.T) {
	p := MustNew(100, 7, 3, "%d %s %af", int64(42), "payload", []float64{1, 2, 3})
	before := WireEncodes()
	const goroutines = 16
	outs := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = p.EncodedBytes()
		}(g)
	}
	wg.Wait()
	if delta := WireEncodes() - before; delta != 1 {
		t.Errorf("%d goroutines cost %d serialization passes, want exactly 1", goroutines, delta)
	}
	for g := 1; g < goroutines; g++ {
		if !bytes.Equal(outs[0], outs[g]) {
			t.Fatalf("goroutine %d saw different bytes", g)
		}
	}
	q, err := Decode(outs[0])
	if err != nil {
		t.Fatal(err)
	}
	if q.Tag != 100 || q.StreamID != 7 || q.SrcRank != 3 {
		t.Errorf("cached bytes decode to header %d/%d/%d", q.Tag, q.StreamID, q.SrcRank)
	}
}

// TestRestampDropsCache: a header restamp must never reuse the old
// header's cached bytes, while an identity restamp shares the packet (and
// therefore its cache).
func TestRestampDropsCache(t *testing.T) {
	p := MustNew(100, 1, 2, "%d", int64(9))
	first := p.EncodedBytes()

	q := p.WithStreamSrc(5, 8)
	dq, err := Decode(q.EncodedBytes())
	if err != nil {
		t.Fatal(err)
	}
	if dq.StreamID != 5 || dq.SrcRank != 8 {
		t.Fatalf("restamped packet encodes stream=%d src=%d; stale cache", dq.StreamID, dq.SrcRank)
	}
	dp, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	if dp.StreamID != 1 || dp.SrcRank != 2 {
		t.Fatalf("original cache mutated: stream=%d src=%d", dp.StreamID, dp.SrcRank)
	}

	if same := p.WithStreamSrc(1, 2); same != p {
		t.Error("identity restamp allocated a copy; the fan-out path loses the shared cache")
	}
	if same := p.WithStream(1); same != p {
		t.Error("identity WithStream allocated a copy")
	}
}

// TestParseFormatConcurrent hammers the format-string cache the way many
// parallel streams do — the same handful of hot formats plus a churn of
// distinct ones (beyond the cache cap) — asserting every result is correct
// regardless of which goroutine won the cache race.
func TestParseFormatConcurrent(t *testing.T) {
	hot := []string{"%d", "%f", "%d %s", "%af", "%d %d %s %s %s %ad"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f := hot[i%len(hot)]
				dirs, err := ParseFormat(f)
				if err != nil {
					t.Errorf("ParseFormat(%q): %v", f, err)
					return
				}
				if len(dirs) == 0 {
					t.Errorf("ParseFormat(%q) returned no directives", f)
					return
				}
				// Cold formats churn past the cache cap concurrently.
				cold := fmt.Sprintf("%%d %%s %%a%c", "cdf"[i%3])
				if _, err := ParseFormat(cold + " %d"); err != nil {
					t.Errorf("ParseFormat cold: %v", err)
					return
				}
				if _, err := ParseFormat(fmt.Sprintf("%%x%d", g*1000+i)); err == nil {
					t.Error("malformed format accepted")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The winners must all have parsed identically: spot-check a hot one.
	dirs, err := ParseFormat("%d %s")
	if err != nil || len(dirs) != 2 || dirs[0] != DirInt || dirs[1] != DirString {
		t.Fatalf("hot format parsed to %v (%v)", dirs, err)
	}
}
