package packet

// Credit-grant control packets are the return half of the overlay's
// credit-based flow control (see internal/transport's FlowLink and DESIGN.md
// §8): a receiver that has retired n data packets from a link direction
// hands the sender n fresh send credits by emitting one grant on the
// reverse direction. Grants are order-free — they carry no data-plane
// semantics and may overtake or trail any other traffic on the link — so
// transports absorb them at the receive edge before frames reach routing
// code.
//
// The encoding is deliberately compact: a grant is a header-only packet
// (no format string, no payload) whose StreamID field carries the credit
// count and whose Seq field carries the receiver's cumulative acknowledged
// total — the number of data packets it has retired on the link direction
// since the link was established. A grant therefore doubles as the
// acknowledgement that retires the sender's replay ring (DESIGN.md §10):
// no new packet class, and a grant still costs only the 25-byte wire
// header with zero payload encode/decode work on the hot reverse path.
// The cumulative total makes grants self-describing: a sender recovering
// from a missed hook or an out-of-order absorb can resynchronize its ring
// against the receiver's count rather than trusting per-grant deltas.

// NewCreditGrant builds a credit-grant packet returning n send credits and
// acknowledging acked cumulative data packets. n must be positive; the
// count travels in the header's StreamID field, the cumulative ack in Seq.
func NewCreditGrant(n uint32, acked uint64) *Packet {
	return &Packet{Tag: TagCredit, StreamID: n, Seq: acked}
}

// CreditGrantValue reports whether p is a credit grant and, if so, how many
// credits it returns.
func CreditGrantValue(p *Packet) (uint32, bool) {
	if p == nil || p.Tag != TagCredit {
		return 0, false
	}
	return p.StreamID, true
}

// CreditGrantAck returns the cumulative acknowledged total carried by a
// credit grant: how many data packets the receiver has retired on the link
// direction in its lifetime. Zero on pre-ack grants and non-grant packets.
func CreditGrantAck(p *Packet) uint64 {
	if p == nil || p.Tag != TagCredit {
		return 0
	}
	return p.Seq
}
