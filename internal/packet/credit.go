package packet

// Credit-grant control packets are the return half of the overlay's
// credit-based flow control (see internal/transport's FlowLink and DESIGN.md
// §8): a receiver that has retired n data packets from a link direction
// hands the sender n fresh send credits by emitting one grant on the
// reverse direction. Grants are order-free — they carry no data-plane
// semantics and may overtake or trail any other traffic on the link — so
// transports absorb them at the receive edge before frames reach routing
// code.
//
// The encoding is deliberately compact: a grant is a header-only packet
// (no format string, no payload) whose StreamID field carries the credit
// count, so a grant costs the minimal 17-byte wire header and zero payload
// encode/decode work on the hot reverse path.

// NewCreditGrant builds a credit-grant packet returning n send credits.
// n must be positive; the count travels in the header's StreamID field.
func NewCreditGrant(n uint32) *Packet {
	return &Packet{Tag: TagCredit, StreamID: n}
}

// CreditGrantValue reports whether p is a credit grant and, if so, how many
// credits it returns.
func CreditGrantValue(p *Packet) (uint32, bool) {
	if p == nil || p.Tag != TagCredit {
		return 0, false
	}
	return p.StreamID, true
}
