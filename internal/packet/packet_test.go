package packet

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFormat(t *testing.T) {
	cases := []struct {
		format string
		want   []Directive
		ok     bool
	}{
		{"", nil, true},
		{"   ", nil, true},
		{"%d", []Directive{DirInt}, true},
		{"%d %f %s", []Directive{DirInt, DirFloat, DirString}, true},
		{"%c %ac %ad %af %as", []Directive{DirByte, DirByteArray, DirIntArray, DirFloatArray, DirStringArray}, true},
		{"%x", nil, false},
		{"%d %", nil, false},
		{"%dd", nil, false},
		{"d", nil, false},
	}
	for _, c := range cases {
		got, err := ParseFormat(c.format)
		if c.ok && err != nil {
			t.Errorf("ParseFormat(%q): unexpected error %v", c.format, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseFormat(%q): want error, got %v", c.format, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFormat(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(100, 1, 0, "%d", "not an int"); err == nil {
		t.Error("New with mismatched type: want error")
	}
	if _, err := New(100, 1, 0, "%d %d", int64(1)); err == nil {
		t.Error("New with wrong arity: want error")
	}
	if _, err := New(100, 1, 0, "%z", int64(1)); err == nil {
		t.Error("New with bad format: want error")
	}
	p, err := New(100, 1, 0, "%d %f %s", 42, 3.5, "hi")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v, _ := p.Int(0); v != 42 {
		t.Errorf("Int(0) = %d, want 42", v)
	}
	if v, _ := p.Float(1); v != 3.5 {
		t.Errorf("Float(1) = %g, want 3.5", v)
	}
	if v, _ := p.Str(2); v != "hi" {
		t.Errorf("Str(2) = %q, want hi", v)
	}
}

func TestCoercions(t *testing.T) {
	p := MustNew(100, 0, 0, "%d %d %d %f %f %c %ad",
		int32(7), uint32(8), Rank(9), float32(1.5), 2, 200, []int{1, 2, 3})
	wantInts := []int64{7, 8, 9}
	for i, w := range wantInts {
		if v, err := p.Int(i); err != nil || v != w {
			t.Errorf("Int(%d) = %d, %v; want %d", i, v, err, w)
		}
	}
	if v, _ := p.Float(3); v != 1.5 {
		t.Errorf("Float(3) = %g, want 1.5", v)
	}
	if v, _ := p.Float(4); v != 2 {
		t.Errorf("Float(4) = %g, want 2", v)
	}
	if v, _ := p.Byte(5); v != 200 {
		t.Errorf("Byte(5) = %d, want 200", v)
	}
	xs, err := p.IntArray(6)
	if err != nil || !reflect.DeepEqual(xs, []int64{1, 2, 3}) {
		t.Errorf("IntArray(6) = %v, %v", xs, err)
	}
}

func TestByteCoercionRange(t *testing.T) {
	if _, err := New(100, 0, 0, "%c", 256); err == nil {
		t.Error("byte coercion of 256: want error")
	}
	if _, err := New(100, 0, 0, "%c", -1); err == nil {
		t.Error("byte coercion of -1: want error")
	}
}

func TestAccessorTypeChecks(t *testing.T) {
	p := MustNew(100, 0, 0, "%d %s", int64(1), "x")
	if _, err := p.Float(0); err == nil {
		t.Error("Float on int value: want error")
	}
	if _, err := p.Int(1); err == nil {
		t.Error("Int on string value: want error")
	}
	if _, err := p.Int(5); err == nil {
		t.Error("Int out of range: want error")
	}
	if _, err := p.Int(-1); err == nil {
		t.Error("Int(-1): want error")
	}
}

func TestWithStreamAndSrc(t *testing.T) {
	p := MustNew(100, 1, 2, "%d", int64(5))
	q := p.WithStream(9).WithSrc(4)
	if q.StreamID != 9 || q.SrcRank != 4 {
		t.Errorf("got stream=%d src=%d", q.StreamID, q.SrcRank)
	}
	if p.StreamID != 1 || p.SrcRank != 2 {
		t.Error("WithStream/WithSrc mutated the original")
	}
	if v, _ := q.Int(0); v != 5 {
		t.Error("payload not shared")
	}
}

func TestStringRendering(t *testing.T) {
	p := MustNew(100, 1, 2, "%d %s", int64(5), "abc")
	s := p.String()
	for _, want := range []string{"tag=100", "stream=1", "src=2", "5", "abc"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	enc := p.Encode()
	if len(enc) != p.EncodedSize() {
		t.Errorf("EncodedSize = %d, Encode produced %d bytes", p.EncodedSize(), len(enc))
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return q
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*Packet{
		MustNew(100, 0, 0, ""),
		MustNew(101, 7, 3, "%d", int64(-12345)),
		MustNew(102, 7, 3, "%f", 3.14159),
		MustNew(103, 7, 3, "%s", ""),
		MustNew(104, 7, 3, "%s", "hello world"),
		MustNew(105, 7, 3, "%c", byte(0xFF)),
		MustNew(106, 7, 3, "%ac", []byte{1, 2, 3}),
		MustNew(107, 7, 3, "%ad", []int64{}),
		MustNew(108, 7, 3, "%ad", []int64{-1, 0, 1 << 62}),
		MustNew(109, 7, 3, "%af", []float64{-0.5, 1e300}),
		MustNew(110, 7, 3, "%as", []string{"a", "", "ccc"}),
		MustNew(111, 9, UnknownRank, "%d %f %s %ad %af %as %c %ac",
			int64(1), 2.0, "three", []int64{4}, []float64{5}, []string{"six"}, byte(7), []byte{8}),
	}
	for _, p := range cases {
		q := roundTrip(t, p)
		if q.Tag != p.Tag || q.StreamID != p.StreamID || q.SrcRank != p.SrcRank || q.Format != p.Format {
			t.Errorf("header mismatch: got %v want %v", q, p)
		}
		if !reflect.DeepEqual(normalize(q.Values()), normalize(p.Values())) {
			t.Errorf("payload mismatch: got %v want %v", q.Values(), p.Values())
		}
	}
}

// normalize maps empty slices and nil to a comparable form.
func normalize(vs []any) []any {
	out := make([]any, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case []byte:
			if len(x) == 0 {
				out[i] = []byte{}
				continue
			}
		case []int64:
			if len(x) == 0 {
				out[i] = []int64{}
				continue
			}
		case []float64:
			if len(x) == 0 {
				out[i] = []float64{}
				continue
			}
		case []string:
			if len(x) == 0 {
				out[i] = []string{}
				continue
			}
		}
		out[i] = v
	}
	return out
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := MustNew(100, 1, 2, "%d %s %af", int64(7), "hello", []float64{1, 2, 3})
	enc := p.Encode()

	// Truncation at every byte boundary must error, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Errorf("Decode of %d-byte truncation: want error", n)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte{}, enc...), 0xAB)); err == nil {
		t.Error("Decode with trailing byte: want error")
	}
	// Bad magic.
	bad := append([]byte{}, enc...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("Decode with bad magic: want error")
	}
	// Bad version.
	bad = append([]byte{}, enc...)
	bad[2] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("Decode with bad version: want error")
	}
}

func TestDecodeHugeArrayCount(t *testing.T) {
	// A corrupt element count must be rejected before allocation.
	p := MustNew(100, 1, 2, "%ad", []int64{1})
	enc := p.Encode()
	// The array count is the 4 bytes right after the header+format.
	hdr := 2 + 1 + 4 + 4 + 4 + 2 + len(p.Format)
	enc[hdr] = 0xFF
	enc[hdr+1] = 0xFF
	enc[hdr+2] = 0xFF
	enc[hdr+3] = 0x7F
	if _, err := Decode(enc); err == nil {
		t.Error("Decode with huge array count: want error")
	}
}

func TestWriteToReadFrom(t *testing.T) {
	var buf strings.Builder
	p := MustNew(100, 1, 2, "%d %s", int64(7), "hello")
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	q, err := ReadFrom(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if v, _ := q.Str(1); v != "hello" {
		t.Errorf("round trip lost payload: %v", q)
	}
	// Two packets back to back.
	var buf2 strings.Builder
	p.WriteTo(&buf2)
	p2 := MustNew(101, 1, 2, "%d", int64(9))
	p2.WriteTo(&buf2)
	r := strings.NewReader(buf2.String())
	if q, err := ReadFrom(r); err != nil || q.Tag != 100 {
		t.Fatalf("first ReadFrom: %v %v", q, err)
	}
	if q, err := ReadFrom(r); err != nil || q.Tag != 101 {
		t.Fatalf("second ReadFrom: %v %v", q, err)
	}
	if _, err := ReadFrom(r); err == nil {
		t.Error("ReadFrom at EOF: want error")
	}
}

// Property: every packet built from generated payloads round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, xs []int64, fs []float64, ss []string, bs []byte) bool {
		p, err := New(200, 3, 5, "%d %f %s %ad %af %as %ac", i, fl, s, xs, fs, ss, bs)
		if err != nil {
			return false
		}
		q, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(q.Values()), normalize(p.Values()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EncodedSize always equals len(Encode()).
func TestQuickEncodedSize(t *testing.T) {
	f := func(s string, xs []float64, ss []string) bool {
		p, err := New(1, 2, 3, "%s %af %as", s, xs, ss)
		if err != nil {
			return false
		}
		return p.EncodedSize() == len(p.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRefCounting(t *testing.T) {
	p := MustNew(100, 1, 2, "%d", int64(7))
	r := NewRef(p)
	released := 0
	r.SetOnRelease(func() { released++ })
	r.Retain(3) // count 4
	if got := r.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for i := 0; i < 3; i++ {
		if r.Release() {
			t.Fatalf("Release %d: reported final too early", i)
		}
	}
	if !r.Release() {
		t.Fatal("final Release: want true")
	}
	if released != 1 {
		t.Fatalf("onRelease ran %d times, want 1", released)
	}
}

func TestRefReleasePanicsWhenDead(t *testing.T) {
	r := NewRef(MustNew(100, 1, 2, "%d", int64(7)))
	r.Release()
	defer func() {
		if recover() == nil {
			t.Error("Release of dead ref: want panic")
		}
	}()
	r.Release()
}

func TestRefEncodedIsStable(t *testing.T) {
	r := NewRef(MustNew(100, 1, 2, "%ad", []int64{1, 2, 3}))
	a := r.Encoded()
	b := r.Encoded()
	if &a[0] != &b[0] {
		t.Error("Encoded allocated twice; want cached buffer")
	}
}

func TestRefConcurrentReleases(t *testing.T) {
	const n = 64
	r := NewRef(MustNew(100, 1, 2, "%d", int64(7)))
	r.Retain(n - 1)
	done := make(chan bool, n)
	for i := 0; i < n; i++ {
		go func() { done <- r.Release() }()
	}
	finals := 0
	for i := 0; i < n; i++ {
		if <-done {
			finals++
		}
	}
	if finals != 1 {
		t.Errorf("%d goroutines saw the final release, want exactly 1", finals)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := MustNew(100, 1, 2, "%d %s %af", int64(7), "hello", make([]float64, 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Encode()
	}
}

func BenchmarkDecode(b *testing.B) {
	p := MustNew(100, 1, 2, "%d %s %af", int64(7), "hello", make([]float64, 256))
	enc := p.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefSharedEncodeFanout16(b *testing.B) {
	// Zero-copy path: one encode shared by 16 simulated children.
	p := MustNew(100, 1, 2, "%af", make([]float64, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRef(p)
		r.Retain(15)
		for c := 0; c < 16; c++ {
			_ = r.Encoded()
			r.Release()
		}
	}
}

func BenchmarkCopyEncodeFanout16(b *testing.B) {
	// Deep-copy baseline: each child encodes independently.
	p := MustNew(100, 1, 2, "%af", make([]float64, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 16; c++ {
			_ = p.Encode()
		}
	}
}
