package packet

import (
	"bytes"
	"testing"
)

// TestArenaRoundTrip: a released buffer is handed back out for the same
// size class with zero length and its full class capacity.
func TestArenaRoundTrip(t *testing.T) {
	prev := SetPooling(true)
	defer SetPooling(prev)

	b := GetBuf(100)
	if len(b.Data) != 0 || cap(b.Data) < 100 {
		t.Fatalf("GetBuf(100) = len %d cap %d", len(b.Data), cap(b.Data))
	}
	b.Data = append(b.Data, "hello"...)
	first := &b.Data[0]
	PutBuf(b)

	c := GetBuf(100)
	if len(c.Data) != 0 {
		t.Fatalf("recycled buffer has stale length %d", len(c.Data))
	}
	c.Data = c.Data[:1]
	if &c.Data[0] != first {
		t.Error("same-class GetBuf after PutBuf did not recycle the backing array")
	}
	PutBuf(c)
}

// TestArenaOversizeAndDisabled: oversize requests and pooling-off both
// yield plain allocations that PutBuf drops without touching the pools.
func TestArenaOversizeAndDisabled(t *testing.T) {
	prev := SetPooling(true)
	defer SetPooling(prev)

	big := GetBuf(1<<arenaMaxClass + 1)
	if big.class != -1 {
		t.Fatalf("oversize buffer got class %d, want -1", big.class)
	}
	PutBuf(big) // must not panic or pool

	SetPooling(false)
	if PoolingEnabled() {
		t.Fatal("SetPooling(false) left pooling on")
	}
	off := GetBuf(64)
	if off.class != -1 {
		t.Fatalf("pooling-off buffer got class %d, want -1", off.class)
	}
	PutBuf(off)
	SetPooling(true)
}

// TestArenaShrunkBufferRetired: a buffer whose Data was resliced below
// its class capacity must not re-enter the pool — the next taker relies
// on the class's full capacity.
func TestArenaShrunkBufferRetired(t *testing.T) {
	prev := SetPooling(true)
	defer SetPooling(prev)

	b := GetBuf(64)
	b.Data = make([]byte, 0, 8) // simulate a reslice losing capacity
	b.class = arenaMinClass
	_, putsBefore, _ := ArenaStats()
	PutBuf(b)
	if _, puts, _ := ArenaStats(); puts != putsBefore {
		t.Error("shrunk buffer was pooled; next GetBuf would be under-capacity")
	}
}

// TestEncodedBytesPooledRecycle exercises the tracked-packet lifecycle:
// retain → encode (arena body) → release → the next tracked packet of the
// same class reuses the backing array, and the released packet re-encodes
// correctly if asked again.
func TestEncodedBytesPooledRecycle(t *testing.T) {
	prev := SetPooling(true)
	defer SetPooling(prev)

	p := MustNew(100, 7, 3, "%d %s", int64(42), "payload")
	p.RetainEncoded(1)
	enc := p.EncodedBytes()
	want := append([]byte(nil), enc...)
	addr := &enc[0]
	if !p.ReleaseEncoded() {
		t.Fatal("final ReleaseEncoded returned false")
	}
	if p.ReleaseEncoded() {
		t.Fatal("second ReleaseEncoded claimed to be final; double release must be a no-op")
	}

	q := MustNew(100, 8, 4, "%d %s", int64(43), "payload")
	q.RetainEncoded(1)
	qenc := q.EncodedBytes()
	if &qenc[0] != addr {
		t.Error("released encode body was not recycled to the next same-class packet")
	}
	q.ReleaseEncoded()

	// p's cache was dropped, not corrupted: a fresh read re-encodes to
	// the same bytes (now untracked, so a plain allocation).
	if got := p.EncodedBytes(); !bytes.Equal(got, want) {
		t.Errorf("re-encode after recycle differs:\n got %x\nwant %x", got, want)
	}
}

// TestRefRecyclesEncodedBody: the Ref.onRelease default hook is the
// return-to-pool point — a k-way fan-out returns the shared encode body
// exactly once, when the last reference goes.
func TestRefRecyclesEncodedBody(t *testing.T) {
	prev := SetPooling(true)
	defer SetPooling(prev)

	p := MustNew(100, 7, 3, "%ad", []int64{1, 2, 3})
	r := NewRef(p).Retain(3) // 4 children
	enc := r.Encoded()
	addr := &enc[0]
	for i := 0; i < 3; i++ {
		if r.Release() {
			t.Fatal("non-final release reported final")
		}
		if p.wire.Load() == nil {
			t.Fatal("encode body recycled while references remain")
		}
	}
	if !r.Release() {
		t.Fatal("final release not reported")
	}
	if p.wire.Load() != nil {
		t.Fatal("final release did not drop the wire cache")
	}
	b := GetBuf(p.EncodedSize())
	if b.Data = b.Data[:1]; &b.Data[0] != addr {
		t.Error("final release did not return the encode body to the arena")
	}
	PutBuf(b)
}

// TestRestampSharesValues is the aliasing regression for the single-field
// restamp path (WithSeq/WithStream/WithSrc/WithStreamSrc): the clone must
// share the payload backing arrays — no deep copy — while starting with a
// clean wire cache and no inherited encoded-body holds.
func TestRestampSharesValues(t *testing.T) {
	xs := []float64{1, 2, 3}
	p := MustNew(100, 1, 2, "%d %af", int64(9), xs)
	p.RetainEncoded(1)
	_ = p.EncodedBytes()

	q := p.WithSeq(MakeSeq(2, 1))
	if q == p {
		t.Fatal("WithSeq with a new seq must clone")
	}
	qx, err := q.FloatArray(1)
	if err != nil {
		t.Fatal(err)
	}
	if &qx[0] != &xs[0] {
		t.Error("restamp deep-copied the %af payload; single-field restamps must share the backing array")
	}
	if len(q.Values()) != len(p.Values()) || &q.Values()[0] != &p.Values()[0] {
		t.Error("restamp reallocated the values slice; must alias the original")
	}
	if q.EncodedRefs() != 0 {
		t.Errorf("restamp inherited %d encoded-body holds; clones must start untracked", q.EncodedRefs())
	}
	if q.wire.Load() != nil {
		t.Error("restamp carried the wire cache; a new header encodes to different bytes")
	}

	// The shared payload still encodes correctly from both packets.
	dq, err := Decode(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dq.FloatArray(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("restamped packet payload decoded to %v", got)
	}
	p.ReleaseEncoded()
}
