package packet

import (
	"sync"
	"sync/atomic"
)

// The arena is a set of size-classed sync.Pools backing the two transient
// buffer kinds the steady-state data plane used to heap-allocate per
// packet: encode bodies (the EncodedBytes cache) and frame-assembly
// scratch (AppendFrame destinations in the transports). Buffers circulate
// as *Buf so the wrapper itself is recycled along with its backing array
// and a pool round-trip costs zero allocations.
//
// Ownership discipline (enforced by tbon-lint's poolrelease analyzer):
// every buffer taken with GetBuf must reach exactly one release — PutBuf
// directly, or a handoff that owns the release from then on (storing it as
// a packet's wire cache, whose ReleaseEncoded/recycleWire return it). A
// pooled buffer must never be read after its release: the bytes belong to
// the next taker. Decode aliases its input (%ac values share the frame
// buffer), so READ-side frame buffers are never pooled — only send-side
// scratch and encode bodies, whose lifetimes the custody protocol in
// internal/core bounds explicitly.

// Buf is an arena buffer. Data holds the contents; callers append into
// Data[:0] after GetBuf and may reslice freely — PutBuf recycles whatever
// backing array Data ends up with only when the class label still matches
// a pool, so growth past the class simply retires the buffer to the GC.
type Buf struct {
	// Data is the buffer's current contents. After GetBuf it has zero
	// length and at least the requested capacity.
	Data []byte

	// class is the arena size-class exponent, or -1 for a plain
	// allocation PutBuf will drop (oversize request, or pooling off).
	class int32
}

// Arena size classes: powers of two from 64 B (2^6) to 64 KiB (2^16).
// Packets below 64 B don't exist (minEncodedPacket is 25, but grants and
// heartbeats land in the smallest class), and frames above 64 KiB are
// rare enough — maxEgressFrameBytes-sized flushes — that the GC handles
// the tail.
const (
	arenaMinClass = 6  // 64 B
	arenaMaxClass = 16 // 64 KiB
	arenaClasses  = arenaMaxClass - arenaMinClass + 1
)

var arenaPools [arenaClasses]sync.Pool

var (
	// poolingOff gates the whole arena; the zero value means pooling is
	// ON. The -exp zeroalloc ablation and the eqclass soak flip it to
	// compare pooled and unpooled runs over identical workloads.
	poolingOff atomic.Bool

	arenaGets   atomic.Int64
	arenaPuts   atomic.Int64
	arenaMisses atomic.Int64
)

// SetPooling enables or disables the arena, returning the previous
// setting. With pooling off GetBuf degenerates to make([]byte, 0, size)
// and PutBuf is a no-op, which is the ablation baseline: identical code
// paths, per-use heap allocation.
func SetPooling(on bool) bool { return !poolingOff.Swap(!on) }

// PoolingEnabled reports whether the arena is active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// classFor returns the smallest size class holding size bytes, or -1 when
// the request exceeds the largest class.
func classFor(size int) int32 {
	if size > 1<<arenaMaxClass {
		return -1
	}
	c := int32(arenaMinClass)
	for 1<<c < size {
		c++
	}
	return c
}

// GetBuf takes a buffer with capacity for at least size bytes and zero
// length. The caller owns it until exactly one PutBuf or ownership
// handoff (see the package comment above); the poolrelease analyzer
// checks that every path does one or the other.
func GetBuf(size int) *Buf {
	if !PoolingEnabled() {
		return &Buf{Data: make([]byte, 0, size), class: -1}
	}
	c := classFor(size)
	if c < 0 {
		arenaMisses.Add(1)
		return &Buf{Data: make([]byte, 0, size), class: -1}
	}
	arenaGets.Add(1)
	if v := arenaPools[c-arenaMinClass].Get(); v != nil {
		b := v.(*Buf)
		b.Data = b.Data[:0]
		return b
	}
	arenaMisses.Add(1)
	return &Buf{Data: make([]byte, 0, 1<<c), class: c}
}

// PutBuf returns b to its arena pool. Plain allocations (class -1) and
// buffers whose backing array outgrew the class capacity are dropped to
// the GC instead — a stale class label must never hand a small array to a
// taker that asked for the class's full capacity. Releasing the same
// buffer twice would alias two future takers onto one array; the custody
// protocol (CAS-guarded ReleaseEncoded, single-owner egress slots) and
// the poolrelease analyzer exist to rule that out.
func PutBuf(b *Buf) {
	if b == nil || b.class < 0 || !PoolingEnabled() {
		return
	}
	if cap(b.Data) < 1<<b.class {
		return // resliced below class capacity; retire to GC
	}
	arenaPuts.Add(1)
	b.Data = b.Data[:0]
	arenaPools[b.class-arenaMinClass].Put(b)
}

// ArenaStats returns the cumulative arena counters: buffers handed out
// from pools, buffers returned to pools, and misses (pool empty, request
// oversize). Gets minus puts bounds the buffers currently in flight plus
// those retired to the GC.
func ArenaStats() (gets, puts, misses int64) {
	return arenaGets.Load(), arenaPuts.Load(), arenaMisses.Load()
}
