package packet

import (
	"sync/atomic"
)

// Ref is a counted reference to a packet, the mechanism MRNet uses to place
// a single packet object into multiple outgoing buffers during multicast
// without copying the payload. A communication process that fans a packet
// out to k children takes k references; each child path releases its
// reference after the bytes are on the wire. When the count reaches zero the
// packet's encoded form (if cached) is returned to a pool.
//
// Packets themselves are immutable, so sharing is safe; Ref exists to make
// the sharing explicit, to amortize Encode across fan-out, and to give the
// benchmarks an honest copy-vs-reference comparison (the paper's
// "counted packet references ... zero-copy data paths" claim).
type Ref struct {
	p    *Packet
	refs atomic.Int32

	// onRelease, if non-nil, runs exactly once when the count hits zero.
	onRelease func()
}

// NewRef wraps p in a reference with an initial count of 1. The reference
// takes one encoded-body hold on the packet, and its default release hook
// returns the cached encode body to the arena when the final reference is
// dropped — a k-child multicast that shares one Ref gives the body back
// exactly once, when the last child link has flushed it.
func NewRef(p *Packet) *Ref {
	r := &Ref{p: p}
	r.refs.Store(1)
	p.RetainEncoded(1)
	r.onRelease = func() { p.ReleaseEncoded() }
	return r
}

// Packet returns the underlying (immutable) packet.
func (r *Ref) Packet() *Packet { return r.p }

// Retain adds n references and returns r for chaining. It panics if the
// reference was already released to zero, which would indicate a use-after-
// free style bug in routing code.
func (r *Ref) Retain(n int32) *Ref {
	if v := r.refs.Add(n); v <= n-1 {
		panic("packet: Retain after release to zero")
	}
	return r
}

// Release drops one reference, running the release hook when the count
// reaches zero. It reports whether this call released the final reference.
func (r *Ref) Release() bool {
	v := r.refs.Add(-1)
	if v < 0 {
		panic("packet: Release of dead reference")
	}
	if v == 0 {
		if r.onRelease != nil {
			r.onRelease()
		}
		return true
	}
	return false
}

// Count returns the current reference count (for tests and metrics).
func (r *Ref) Count() int32 { return r.refs.Load() }

// SetOnRelease installs a hook invoked when the final reference is
// dropped, replacing the default return-to-pool hook (the encoded-body
// hold NewRef took then stays outstanding, which merely keeps that one
// buffer out of the arena). It must be called before the reference is
// shared.
func (r *Ref) SetOnRelease(f func()) { r.onRelease = f }

// Encoded returns the packet's wire encoding, computing it at most once no
// matter how many outgoing links share the reference. This is the zero-copy
// fan-out path: k children share one encode and one buffer. The cache
// lives on the Packet itself (EncodedBytes), so references taken on the
// same packet share the same bytes.
func (r *Ref) Encoded() []byte {
	return r.p.EncodedBytes()
}
