// Package packet implements the application-level packet abstraction used
// throughout the TBON. A packet carries a typed payload described by an
// MRNet-style format string, a tag identifying the logical message type, the
// stream it travels on, and the rank of the node that produced it.
//
// Format strings are space-separated conversion directives:
//
//	%c    one byte                %ac   []byte
//	%d    int64                   %ad   []int64
//	%f    float64                 %af   []float64
//	%s    string                  %as   []string
//
// The directives describe, positionally, the values held by the packet.
// Encoding to and decoding from a binary wire form is implemented in
// encode.go; counted references for zero-copy multicast in refcount.go.
package packet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Well-known tag values. Tags at or above TagFirstApplication are free for
// application use; tags below it are reserved for TBON control traffic.
const (
	// TagControl marks internal control messages (stream creation, filter
	// loading, shutdown, topology updates).
	TagControl int32 = iota
	// TagAck acknowledges a control message.
	TagAck
	// TagEvent carries failure/recovery event notifications.
	TagEvent
	// TagCredit marks credit-grant messages of the flow-control protocol
	// (see credit.go). Grants are order-free link-local control: transports
	// absorb them at the receive edge, so they never reach routing code.
	TagCredit
	// TagFirstApplication is the first tag available to applications.
	TagFirstApplication int32 = 100
)

// Rank identifies a node in the overlay. Ranks are assigned densely by the
// topology: the front-end is rank 0, internal nodes and back-ends follow in
// breadth-first order.
type Rank int32

// UnknownRank marks a packet whose origin is not (yet) known.
const UnknownRank Rank = -1

// Directive is a single parsed conversion directive from a format string.
type Directive uint8

// The parsed directive kinds, one per format token.
const (
	DirInvalid     Directive = iota
	DirByte                  // %c
	DirInt                   // %d
	DirFloat                 // %f
	DirString                // %s
	DirByteArray             // %ac
	DirIntArray              // %ad
	DirFloatArray            // %af
	DirStringArray           // %as
)

// String returns the format token for the directive.
func (d Directive) String() string {
	switch d {
	case DirByte:
		return "%c"
	case DirInt:
		return "%d"
	case DirFloat:
		return "%f"
	case DirString:
		return "%s"
	case DirByteArray:
		return "%ac"
	case DirIntArray:
		return "%ad"
	case DirFloatArray:
		return "%af"
	case DirStringArray:
		return "%as"
	}
	return "%!"
}

// ErrBadFormat reports a malformed format string.
var ErrBadFormat = errors.New("packet: malformed format string")

// ErrArity reports a mismatch between a format string and the number of
// values supplied.
var ErrArity = errors.New("packet: format/value arity mismatch")

// ErrType reports a value whose dynamic type does not match its directive.
var ErrType = errors.New("packet: value type does not match format directive")

// fmtCache memoizes parsed format strings. Overlay traffic reuses a
// handful of formats millions of times, and the per-packet parse (a
// strings.Fields allocation plus a token scan) is pure overhead on the hot
// path; the cache is capped so hostile inputs cannot grow it unboundedly.
var (
	fmtCache     sync.Map // string -> []Directive (shared, read-only)
	fmtCacheSize atomic.Int64
)

const fmtCacheCap = 1024

// ParseFormat parses a format string into its directives. The returned
// slice may be shared with other callers and must not be modified.
func ParseFormat(format string) ([]Directive, error) {
	if v, ok := fmtCache.Load(format); ok {
		return v.([]Directive), nil
	}
	if strings.TrimSpace(format) == "" {
		return nil, nil
	}
	fields := strings.Fields(format)
	dirs := make([]Directive, 0, len(fields))
	for _, f := range fields {
		d, ok := parseDirective(f)
		if !ok {
			return nil, fmt.Errorf("%w: bad directive %q in %q", ErrBadFormat, f, format)
		}
		dirs = append(dirs, d)
	}
	if fmtCacheSize.Load() < fmtCacheCap {
		if v, loaded := fmtCache.LoadOrStore(format, dirs); loaded {
			return v.([]Directive), nil
		}
		fmtCacheSize.Add(1)
	}
	return dirs, nil
}

func parseDirective(tok string) (Directive, bool) {
	switch tok {
	case "%c":
		return DirByte, true
	case "%d":
		return DirInt, true
	case "%f":
		return DirFloat, true
	case "%s":
		return DirString, true
	case "%ac":
		return DirByteArray, true
	case "%ad":
		return DirIntArray, true
	case "%af":
		return DirFloatArray, true
	case "%as":
		return DirStringArray, true
	}
	return DirInvalid, false
}

// Packet is an application-level message. Packets are immutable once
// constructed; filters produce new packets rather than mutating inputs, which
// is what makes counted references safe for zero-copy multicast.
type Packet struct {
	// Tag identifies the logical message type.
	Tag int32
	// StreamID identifies the stream this packet travels on. Zero means
	// "no stream" (control traffic).
	StreamID uint32
	// SrcRank is the rank of the node that created the packet.
	SrcRank Rank
	// Seq is the packet's origin-stamped delivery sequence number, zero
	// when unstamped. Exactly-once delivery packs the originating rank and
	// a per-(origin,stream) counter into it (see MakeSeq); unlike SrcRank,
	// which every hop re-stamps, Seq survives forwarding so receivers can
	// de-duplicate replayed packets. Credit grants reuse the field to carry
	// the cumulative acknowledgement count (see credit.go).
	Seq uint64
	// Format is the format string describing Values.
	Format string

	dirs   []Directive
	values []any

	// wire caches the packet's encoded form so a multicast that places the
	// same packet on k outgoing links encodes it once; all frames share the
	// buffer (see EncodedBytes). encMu serializes the one slow-path encode.
	// Both make Packet non-copyable — header restamps go through restamp.
	//
	// When wireRefs is positive at encode time the cache body comes from
	// the arena (GetBuf) and is returned to it (PutBuf) by the final
	// ReleaseEncoded; with no holders the body is a plain allocation the
	// GC reclaims, so code that never touches the custody API keeps its
	// old semantics.
	wire     atomic.Pointer[Buf]
	wireRefs atomic.Int32
	encMu    sync.Mutex
}

// RetainEncoded adds n holds on the packet's encoded body. While at least
// one hold is outstanding the encode body may come from the arena, and
// holders must keep their hold across any read of EncodedBytes — the final
// ReleaseEncoded recycles the buffer, after which its bytes belong to the
// next arena taker. The egress custody protocol in internal/core is the
// canonical caller: enqueue retains, the flush (or the replay-ring
// retirement under exactly-once) releases.
func (p *Packet) RetainEncoded(n int32) { p.wireRefs.Add(n) }

// ReleaseEncoded drops one hold, returning the cached encode body to the
// arena when the last hold goes. It reports whether this call was the
// final release. Releasing with no holds outstanding is a no-op returning
// false — that makes the double-release that an ack-during-replay
// re-append could otherwise produce harmless: the second custody chain
// finds the count already at zero and recycles nothing.
func (p *Packet) ReleaseEncoded() bool {
	for {
		v := p.wireRefs.Load()
		if v <= 0 {
			return false
		}
		if p.wireRefs.CompareAndSwap(v, v-1) {
			if v == 1 {
				p.recycleWire()
				return true
			}
			return false
		}
	}
}

// EncodedRefs returns the current number of encoded-body holds (for tests
// and metrics).
func (p *Packet) EncodedRefs() int32 { return p.wireRefs.Load() }

// recycleWire drops the wire cache and returns a pooled body to the
// arena. Safe against concurrent encodes: an encode racing past the swap
// stores a fresh buffer that simply retires to the GC (nobody holds a
// reference that would recycle it).
func (p *Packet) recycleWire() {
	if b := p.wire.Swap(nil); b != nil {
		PutBuf(b)
	}
}

// New constructs a packet, validating the values against the format string.
// The variadic slice is retained by the packet (coerced in place), so
// callers expanding a long-lived []any with ... must not mutate it after.
func New(tag int32, streamID uint32, src Rank, format string, values ...any) (*Packet, error) {
	dirs, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if len(dirs) != len(values) {
		return nil, fmt.Errorf("%w: format %q has %d directives, got %d values",
			ErrArity, format, len(dirs), len(values))
	}
	for i, v := range values {
		cv, err := coerce(dirs[i], v)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		values[i] = cv
	}
	return &Packet{
		Tag:      tag,
		StreamID: streamID,
		SrcRank:  src,
		Format:   format,
		dirs:     dirs,
		values:   values,
	}, nil
}

// MustNew is New but panics on error; intended for statically correct
// call sites such as tests and built-in control messages.
func MustNew(tag int32, streamID uint32, src Rank, format string, values ...any) *Packet {
	p, err := New(tag, streamID, src, format, values...)
	if err != nil {
		panic(err)
	}
	return p
}

// coerce normalizes v to the canonical Go type for directive d, accepting
// the common convertible types so callers can pass int literals and the like.
func coerce(d Directive, v any) (any, error) {
	switch d {
	case DirByte:
		switch x := v.(type) {
		case byte:
			return x, nil
		case int:
			if x < 0 || x > 255 {
				return nil, fmt.Errorf("%w: int %d out of byte range", ErrType, x)
			}
			return byte(x), nil
		}
	case DirInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint32:
			return int64(x), nil
		case Rank:
			return int64(x), nil
		}
	case DirFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case DirString:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case DirByteArray:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
	case DirIntArray:
		switch x := v.(type) {
		case []int64:
			return x, nil
		case []int:
			out := make([]int64, len(x))
			for i, e := range x {
				out[i] = int64(e)
			}
			return out, nil
		}
	case DirFloatArray:
		if x, ok := v.([]float64); ok {
			return x, nil
		}
	case DirStringArray:
		if x, ok := v.([]string); ok {
			return x, nil
		}
	default:
		return nil, fmt.Errorf("%w: unknown directive", ErrBadFormat)
	}
	return nil, fmt.Errorf("%w: got %T for %s", ErrType, v, d)
}

// NumValues returns the number of payload values in the packet.
func (p *Packet) NumValues() int { return len(p.values) }

// Directives returns the parsed directives. The returned slice must not be
// modified.
func (p *Packet) Directives() []Directive { return p.dirs }

// Value returns the i'th payload value.
func (p *Packet) Value(i int) any { return p.values[i] }

// Values returns all payload values. The returned slice must not be modified.
func (p *Packet) Values() []any { return p.values }

// Int returns the i'th value as an int64, or an error if it is not one.
func (p *Packet) Int(i int) (int64, error) {
	if err := p.check(i, DirInt); err != nil {
		return 0, err
	}
	return p.values[i].(int64), nil
}

// Float returns the i'th value as a float64.
func (p *Packet) Float(i int) (float64, error) {
	if err := p.check(i, DirFloat); err != nil {
		return 0, err
	}
	return p.values[i].(float64), nil
}

// String returns a human-readable rendering of the packet header and payload.
func (p *Packet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packet{tag=%d stream=%d src=%d fmt=%q", p.Tag, p.StreamID, p.SrcRank, p.Format)
	for i, v := range p.values {
		if i == 0 {
			b.WriteString(" [")
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%v", v)
	}
	if len(p.values) > 0 {
		b.WriteString("]")
	}
	b.WriteString("}")
	return b.String()
}

// Str returns the i'th value as a string.
func (p *Packet) Str(i int) (string, error) {
	if err := p.check(i, DirString); err != nil {
		return "", err
	}
	return p.values[i].(string), nil
}

// Byte returns the i'th value as a byte.
func (p *Packet) Byte(i int) (byte, error) {
	if err := p.check(i, DirByte); err != nil {
		return 0, err
	}
	return p.values[i].(byte), nil
}

// Bytes returns the i'th value as a []byte. The returned slice is shared
// with the packet and must not be modified.
func (p *Packet) Bytes(i int) ([]byte, error) {
	if err := p.check(i, DirByteArray); err != nil {
		return nil, err
	}
	return p.values[i].([]byte), nil
}

// IntArray returns the i'th value as a []int64 (shared, do not modify).
func (p *Packet) IntArray(i int) ([]int64, error) {
	if err := p.check(i, DirIntArray); err != nil {
		return nil, err
	}
	return p.values[i].([]int64), nil
}

// FloatArray returns the i'th value as a []float64 (shared, do not modify).
func (p *Packet) FloatArray(i int) ([]float64, error) {
	if err := p.check(i, DirFloatArray); err != nil {
		return nil, err
	}
	return p.values[i].([]float64), nil
}

// StringArray returns the i'th value as a []string (shared, do not modify).
func (p *Packet) StringArray(i int) ([]string, error) {
	if err := p.check(i, DirStringArray); err != nil {
		return nil, err
	}
	return p.values[i].([]string), nil
}

func (p *Packet) check(i int, want Directive) error {
	if i < 0 || i >= len(p.dirs) {
		return fmt.Errorf("packet: index %d out of range (%d values)", i, len(p.dirs))
	}
	if p.dirs[i] != want {
		return fmt.Errorf("%w: value %d is %s, want %s", ErrType, i, p.dirs[i], want)
	}
	return nil
}

// restamp returns a header-mutable copy sharing the payload — dirs and
// values alias the original's backing arrays, which is safe because
// packets are immutable once constructed (see TestRestampSharesValues).
// The wire cache and its holds are deliberately NOT carried over: a
// restamped header encodes to different bytes, and the copy starts
// untracked (and Packet's cache fields make the struct non-copyable).
func (p *Packet) restamp() *Packet {
	return &Packet{
		Tag:      p.Tag,
		StreamID: p.StreamID,
		SrcRank:  p.SrcRank,
		Seq:      p.Seq,
		Format:   p.Format,
		dirs:     p.dirs,
		values:   p.values,
	}
}

// seqCounterBits splits Seq: the low 40 bits hold the per-(origin,stream)
// counter, the high 24 bits the originating rank. 2^24 ranks and 2^40
// packets per origin per stream outlast any overlay we build.
const seqCounterBits = 40

// MakeSeq packs an origin rank and a 1-based counter into a Seq value.
// Counter zero is reserved: a zero Seq means "unstamped".
func MakeSeq(origin Rank, counter uint64) uint64 {
	return uint64(uint32(origin))<<seqCounterBits | counter&(1<<seqCounterBits-1)
}

// SeqOrigin returns the originating rank packed into a Seq value.
func SeqOrigin(seq uint64) Rank { return Rank(seq >> seqCounterBits) }

// SeqCounter returns the per-(origin,stream) counter packed into a Seq.
func SeqCounter(seq uint64) uint64 { return seq & (1<<seqCounterBits - 1) }

// WithSeq returns a copy of the packet stamped with the given sequence
// number. The payload is shared, not copied.
func (p *Packet) WithSeq(seq uint64) *Packet {
	if p.Seq == seq {
		return p
	}
	q := p.restamp()
	q.Seq = seq
	return q
}

// WithStream returns a copy of the packet re-addressed to the given stream.
// The payload is shared, not copied.
func (p *Packet) WithStream(id uint32) *Packet {
	if p.StreamID == id {
		return p // immutable: an identical restamp can share the packet
	}
	q := p.restamp()
	q.StreamID = id
	return q
}

// WithSrc returns a copy of the packet with a new source rank. The payload
// is shared, not copied.
func (p *Packet) WithSrc(r Rank) *Packet {
	if p.SrcRank == r {
		return p
	}
	q := p.restamp()
	q.SrcRank = r
	return q
}

// WithStreamSrc re-addresses the packet to a stream and source in one
// copy; the hot upstream forwarding path re-stamps both per hop.
func (p *Packet) WithStreamSrc(id uint32, r Rank) *Packet {
	if p.StreamID == id && p.SrcRank == r {
		return p
	}
	q := p.restamp()
	q.StreamID = id
	q.SrcRank = r
	return q
}
