package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Wire format (all integers little-endian):
//
//	magic     uint16  0x7B0E ("TBOE")
//	version   uint8   2
//	tag       int32
//	streamID  uint32
//	srcRank   int32
//	seq       uint64  (origin-stamped delivery sequence; ack count on grants)
//	fmtLen    uint16
//	format    fmtLen bytes
//	payload   per-directive encoding (see below)
//
// Per-directive payload encodings:
//
//	%c   1 byte
//	%d   8 bytes (two's complement)
//	%f   8 bytes (IEEE-754 bits)
//	%s   uint32 length + bytes
//	%a*  uint32 element count + repeated element encodings
const (
	wireMagic   uint16 = 0x7B0E
	wireVersion uint8  = 2
)

// MaxWireSize is the largest encoded packet Decode will accept, a defence
// against corrupt length prefixes on real sockets.
const MaxWireSize = 1 << 28 // 256 MiB

// ErrWire reports a malformed wire-format packet.
var ErrWire = errors.New("packet: malformed wire data")

// wireEncodes counts actual serialization passes (Encode bodies executed),
// the cost the per-packet wire cache exists to amortize: a k-child TCP
// multicast used to pay k of these per packet, and now pays one. Tests and
// benchmarks read it through WireEncodes.
var wireEncodes atomic.Int64

// WireEncodes returns the number of packet serialization passes performed
// by this process so far. The counter is global and monotonic; callers
// interested in one workload take a delta.
func WireEncodes() int64 { return wireEncodes.Load() }

// EncodedBytes returns the packet's wire encoding, serializing at most once
// no matter how many links, frames, or goroutines ask: the fan-out of a
// multicast shares one buffer. The returned slice is shared and must not
// be modified. When the packet has encoded-body holds outstanding
// (RetainEncoded) the body is taken from the arena and returned to it by
// the final ReleaseEncoded; such callers must keep a hold across the read.
func (p *Packet) EncodedBytes() []byte {
	if b := p.wire.Load(); b != nil {
		return b.Data
	}
	p.encMu.Lock()
	defer p.encMu.Unlock()
	if b := p.wire.Load(); b != nil {
		return b.Data
	}
	var buf *Buf
	if p.wireRefs.Load() > 0 {
		// Tracked packet: pool the body; storing it as the wire cache is
		// the ownership handoff, ReleaseEncoded the matching release.
		buf = GetBuf(p.EncodedSize())
	} else {
		buf = &Buf{Data: make([]byte, 0, p.EncodedSize()), class: -1}
	}
	wireEncodes.Add(1)
	buf.Data = p.appendEncode(buf.Data[:0])
	p.wire.Store(buf)
	return buf.Data
}

// EncodedSize returns the exact number of bytes Encode will produce.
func (p *Packet) EncodedSize() int {
	if b := p.wire.Load(); b != nil {
		return len(b.Data)
	}
	n := 2 + 1 + 4 + 4 + 4 + 8 + 2 + len(p.Format)
	for i, d := range p.dirs {
		switch d {
		case DirByte:
			n++
		case DirInt, DirFloat:
			n += 8
		case DirString:
			n += 4 + len(p.values[i].(string))
		case DirByteArray:
			n += 4 + len(p.values[i].([]byte))
		case DirIntArray:
			n += 4 + 8*len(p.values[i].([]int64))
		case DirFloatArray:
			n += 4 + 8*len(p.values[i].([]float64))
		case DirStringArray:
			ss := p.values[i].([]string)
			n += 4
			for _, s := range ss {
				n += 4 + len(s)
			}
		}
	}
	return n
}

// Encode serializes the packet to its binary wire form. Every call performs
// a full serialization pass into a fresh allocation; hot paths should
// prefer EncodedBytes, which caches the result on the packet.
func (p *Packet) Encode() []byte {
	wireEncodes.Add(1)
	return p.appendEncode(make([]byte, 0, p.EncodedSize()))
}

// appendEncode appends the packet's wire form to buf and returns it —
// the single serialization pass shared by Encode (fresh allocation) and
// EncodedBytes (cached, possibly arena-backed). Callers count the pass
// via wireEncodes themselves.
func (p *Packet) appendEncode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Tag))
	buf = binary.LittleEndian.AppendUint32(buf, p.StreamID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.SrcRank))
	buf = binary.LittleEndian.AppendUint64(buf, p.Seq)
	if len(p.Format) > math.MaxUint16 {
		panic("packet: format string too long")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Format)))
	buf = append(buf, p.Format...)
	for i, d := range p.dirs {
		switch d {
		case DirByte:
			buf = append(buf, p.values[i].(byte))
		case DirInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p.values[i].(int64)))
		case DirFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.values[i].(float64)))
		case DirString:
			s := p.values[i].(string)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		case DirByteArray:
			b := p.values[i].([]byte)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
			buf = append(buf, b...)
		case DirIntArray:
			xs := p.values[i].([]int64)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
			for _, x := range xs {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
			}
		case DirFloatArray:
			xs := p.values[i].([]float64)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
			for _, x := range xs {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			}
		case DirStringArray:
			ss := p.values[i].([]string)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ss)))
			for _, s := range ss {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	return buf
}

// decoder is a bounds-checked cursor over wire bytes.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) need(n int) error {
	if n < 0 || d.off+n > len(d.b) {
		return fmt.Errorf("%w: truncated at offset %d (need %d of %d)", ErrWire, d.off, n, len(d.b))
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v, nil
}

// arrayLen validates an element count against the remaining buffer so a
// corrupt count cannot trigger a huge allocation. elemSize is the minimum
// encoded size of one element.
func (d *decoder) arrayLen(elemSize int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if int(n) > (len(d.b)-d.off)/max(elemSize, 1) {
		return 0, fmt.Errorf("%w: array count %d exceeds remaining data", ErrWire, n)
	}
	return int(n), nil
}

// Decode parses a packet from its binary wire form. The payload byte slices
// returned share memory with b for %ac directives; callers that retain the
// packet beyond the life of b must copy.
func Decode(b []byte) (*Packet, error) {
	if len(b) > MaxWireSize {
		return nil, fmt.Errorf("%w: %d bytes exceeds MaxWireSize", ErrWire, len(b))
	}
	d := &decoder{b: b}
	magic, err := d.u16()
	if err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrWire, magic)
	}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrWire, ver)
	}
	tag, err := d.u32()
	if err != nil {
		return nil, err
	}
	streamID, err := d.u32()
	if err != nil {
		return nil, err
	}
	src, err := d.u32()
	if err != nil {
		return nil, err
	}
	seq, err := d.u64()
	if err != nil {
		return nil, err
	}
	fmtLen, err := d.u16()
	if err != nil {
		return nil, err
	}
	fmtBytes, err := d.bytes(int(fmtLen))
	if err != nil {
		return nil, err
	}
	format := string(fmtBytes)
	dirs, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	values := make([]any, len(dirs))
	for i, dir := range dirs {
		switch dir {
		case DirByte:
			v, err := d.u8()
			if err != nil {
				return nil, err
			}
			values[i] = v
		case DirInt:
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			values[i] = int64(v)
		case DirFloat:
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			values[i] = math.Float64frombits(v)
		case DirString:
			n, err := d.arrayLen(1)
			if err != nil {
				return nil, err
			}
			sb, err := d.bytes(n)
			if err != nil {
				return nil, err
			}
			values[i] = string(sb)
		case DirByteArray:
			n, err := d.arrayLen(1)
			if err != nil {
				return nil, err
			}
			bb, err := d.bytes(n)
			if err != nil {
				return nil, err
			}
			values[i] = bb
		case DirIntArray:
			n, err := d.arrayLen(8)
			if err != nil {
				return nil, err
			}
			xs := make([]int64, n)
			for j := range xs {
				v, err := d.u64()
				if err != nil {
					return nil, err
				}
				xs[j] = int64(v)
			}
			values[i] = xs
		case DirFloatArray:
			n, err := d.arrayLen(8)
			if err != nil {
				return nil, err
			}
			xs := make([]float64, n)
			for j := range xs {
				v, err := d.u64()
				if err != nil {
					return nil, err
				}
				xs[j] = math.Float64frombits(v)
			}
			values[i] = xs
		case DirStringArray:
			n, err := d.arrayLen(4)
			if err != nil {
				return nil, err
			}
			ss := make([]string, n)
			for j := range ss {
				m, err := d.arrayLen(1)
				if err != nil {
					return nil, err
				}
				sb, err := d.bytes(m)
				if err != nil {
					return nil, err
				}
				ss[j] = string(sb)
			}
			values[i] = ss
		}
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(b)-d.off)
	}
	return &Packet{
		Tag:      int32(tag),
		StreamID: streamID,
		SrcRank:  Rank(int32(src)),
		Seq:      seq,
		Format:   format,
		dirs:     dirs,
		values:   values,
	}, nil
}

// WriteTo writes the packet to w with a uint32 length prefix, the framing
// used by the TCP transport. It implements part of io.WriterTo.
func (p *Packet) WriteTo(w io.Writer) (int64, error) {
	enc := p.EncodedBytes()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
	n1, err := w.Write(hdr[:])
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(enc)
	return int64(n1 + n2), err
}

// ReadFrom reads one length-prefixed packet from r, the inverse of WriteTo.
func ReadFrom(r io.Reader) (*Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxWireSize {
		return nil, fmt.Errorf("%w: frame length %d exceeds MaxWireSize", ErrWire, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("packet: short frame: %w", err)
	}
	return Decode(buf)
}
