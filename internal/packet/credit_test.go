package packet

import (
	"bytes"
	"testing"
)

// TestCreditGrantRoundTrip: a grant survives the wire, keeps its count and
// cumulative ack, and costs exactly the minimal header — the compactness
// the reverse path depends on.
func TestCreditGrantRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n   uint32
		cum uint64
	}{
		{1, 0},
		{7, 7},
		{1 << 20, 1 << 42},
		{^uint32(0), ^uint64(0)},
	} {
		g := NewCreditGrant(tc.n, tc.cum)
		if v, ok := CreditGrantValue(g); !ok || v != tc.n {
			t.Fatalf("CreditGrantValue(NewCreditGrant(%d, %d)) = %d, %v", tc.n, tc.cum, v, ok)
		}
		if a := CreditGrantAck(g); a != tc.cum {
			t.Fatalf("CreditGrantAck = %d, want %d", a, tc.cum)
		}
		enc := g.Encode()
		if len(enc) != minEncodedPacket {
			t.Errorf("grant encodes to %d bytes, want the minimal header %d", len(enc), minEncodedPacket)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decoding grant: %v", err)
		}
		if v, ok := CreditGrantValue(dec); !ok || v != tc.n {
			t.Errorf("decoded grant carries %d, %v; want %d, true", v, ok, tc.n)
		}
		if a := CreditGrantAck(dec); a != tc.cum {
			t.Errorf("decoded grant ack = %d, want %d", a, tc.cum)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Error("grant encode not stable across a decode cycle")
		}
	}
}

// TestCreditGrantValueRejectsOthers: ordinary control and data packets are
// never mistaken for grants (the tag, not the shape, is the discriminator),
// and their ack accessor reads zero rather than misreading a data Seq.
func TestCreditGrantValueRejectsOthers(t *testing.T) {
	stamped := MustNew(TagFirstApplication, 3, 0, "%d", int64(1)).WithSeq(MakeSeq(3, 9))
	for _, p := range []*Packet{
		nil,
		MustNew(TagControl, 3, 0, "%d", int64(1)),
		stamped,
		MustNew(TagAck, 9, 0, ""),
	} {
		if v, ok := CreditGrantValue(p); ok {
			t.Errorf("CreditGrantValue(%v) = %d, true; want false", p, v)
		}
		if a := CreditGrantAck(p); a != 0 {
			t.Errorf("CreditGrantAck(%v) = %d, want 0 for non-grants", p, a)
		}
	}
}

// TestCreditGrantInFrame: grants batch into frames alongside data packets
// and come back intact — the reverse direction of a link is an ordinary
// frame stream.
func TestCreditGrantInFrame(t *testing.T) {
	ps := []*Packet{
		NewCreditGrant(16, 160),
		MustNew(TagFirstApplication, 2, 1, "%d", int64(42)),
		NewCreditGrant(3, 163),
	}
	dec, err := DecodeFrame(EncodeFrame(ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("frame decoded to %d packets, want 3", len(dec))
	}
	if v, ok := CreditGrantValue(dec[0]); !ok || v != 16 {
		t.Errorf("first packet: grant %d, %v; want 16, true", v, ok)
	}
	if a := CreditGrantAck(dec[0]); a != 160 {
		t.Errorf("first packet ack %d, want 160", a)
	}
	if _, ok := CreditGrantValue(dec[1]); ok {
		t.Error("data packet mistaken for a grant")
	}
	if v, ok := CreditGrantValue(dec[2]); !ok || v != 3 {
		t.Errorf("third packet: grant %d, %v; want 3, true", v, ok)
	}
	if a := CreditGrantAck(dec[2]); a != 163 {
		t.Errorf("third packet ack %d, want 163", a)
	}
}

// TestSeqPackRoundTrip: MakeSeq/SeqOrigin/SeqCounter are exact inverses
// across the rank and counter ranges the overlay uses, and counter zero
// stays reserved for "unstamped".
func TestSeqPackRoundTrip(t *testing.T) {
	for _, origin := range []Rank{0, 1, 127, 1<<24 - 1} {
		for _, counter := range []uint64{1, 2, 1 << 20, 1<<40 - 1} {
			s := MakeSeq(origin, counter)
			if got := SeqOrigin(s); got != origin {
				t.Fatalf("SeqOrigin(MakeSeq(%d, %d)) = %d", origin, counter, got)
			}
			if got := SeqCounter(s); got != counter {
				t.Fatalf("SeqCounter(MakeSeq(%d, %d)) = %d", origin, counter, got)
			}
		}
	}
	if MakeSeq(0, 1) == 0 {
		t.Fatal("a stamped seq must never collide with the unstamped zero")
	}
}

// TestSeqSurvivesWireAndRestamp: the Seq header field round-trips the wire
// and is preserved by the forwarding restamps (WithStream/WithSrc/
// WithStreamSrc) — that survival is what makes receiver-side dedup of
// replayed packets possible across hops that re-stamp SrcRank.
func TestSeqSurvivesWireAndRestamp(t *testing.T) {
	p := MustNew(TagFirstApplication, 5, 2, "%s", "payload").WithSeq(MakeSeq(2, 77))
	dec, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seq != p.Seq {
		t.Fatalf("Seq lost on the wire: %#x vs %#x", dec.Seq, p.Seq)
	}
	hop := p.WithStreamSrc(9, 4)
	if hop.Seq != p.Seq {
		t.Fatalf("WithStreamSrc dropped Seq: %#x vs %#x", hop.Seq, p.Seq)
	}
	if hop.StreamID != 9 || hop.SrcRank != 4 {
		t.Fatalf("restamp failed: %v", hop)
	}
	if q := p.WithSeq(p.Seq); q != p {
		t.Error("identical WithSeq should share the packet")
	}
	if q := p.WithStream(p.StreamID); q.Seq != p.Seq {
		t.Error("WithStream dropped Seq")
	}
	if q := p.WithSrc(11); q.Seq != p.Seq {
		t.Error("WithSrc dropped Seq")
	}
}
