package packet

import (
	"bytes"
	"testing"
)

// TestCreditGrantRoundTrip: a grant survives the wire, keeps its count, and
// costs exactly the minimal header — the compactness the reverse path
// depends on.
func TestCreditGrantRoundTrip(t *testing.T) {
	for _, n := range []uint32{1, 7, 1 << 20, ^uint32(0)} {
		g := NewCreditGrant(n)
		if v, ok := CreditGrantValue(g); !ok || v != n {
			t.Fatalf("CreditGrantValue(NewCreditGrant(%d)) = %d, %v", n, v, ok)
		}
		enc := g.Encode()
		if len(enc) != minEncodedPacket {
			t.Errorf("grant encodes to %d bytes, want the minimal header %d", len(enc), minEncodedPacket)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decoding grant: %v", err)
		}
		if v, ok := CreditGrantValue(dec); !ok || v != n {
			t.Errorf("decoded grant carries %d, %v; want %d, true", v, ok, n)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Error("grant encode not stable across a decode cycle")
		}
	}
}

// TestCreditGrantValueRejectsOthers: ordinary control and data packets are
// never mistaken for grants (the tag, not the shape, is the discriminator).
func TestCreditGrantValueRejectsOthers(t *testing.T) {
	for _, p := range []*Packet{
		nil,
		MustNew(TagControl, 3, 0, "%d", int64(1)),
		MustNew(TagFirstApplication, 3, 0, "%d", int64(1)),
		MustNew(TagAck, 9, 0, ""),
	} {
		if v, ok := CreditGrantValue(p); ok {
			t.Errorf("CreditGrantValue(%v) = %d, true; want false", p, v)
		}
	}
}

// TestCreditGrantInFrame: grants batch into frames alongside data packets
// and come back intact — the reverse direction of a link is an ordinary
// frame stream.
func TestCreditGrantInFrame(t *testing.T) {
	ps := []*Packet{
		NewCreditGrant(16),
		MustNew(TagFirstApplication, 2, 1, "%d", int64(42)),
		NewCreditGrant(3),
	}
	dec, err := DecodeFrame(EncodeFrame(ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("frame decoded to %d packets, want 3", len(dec))
	}
	if v, ok := CreditGrantValue(dec[0]); !ok || v != 16 {
		t.Errorf("first packet: grant %d, %v; want 16, true", v, ok)
	}
	if _, ok := CreditGrantValue(dec[1]); ok {
		t.Error("data packet mistaken for a grant")
	}
	if v, ok := CreditGrantValue(dec[2]); !ok || v != 3 {
		t.Errorf("third packet: grant %d, %v; want 3, true", v, ok)
	}
}
