package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to a decodable packet with
// identical header fields (decode/encode is idempotent on valid inputs).
func FuzzDecode(f *testing.F) {
	seeds := []*Packet{
		MustNew(100, 0, 0, ""),
		MustNew(101, 7, 3, "%d %f %s", int64(-1), 2.5, "x"),
		MustNew(102, 7, 3, "%ad %af %as %ac",
			[]int64{1, 2}, []float64{3}, []string{"a", "b"}, []byte{9}),
		NewCreditGrant(32, 0),
		NewCreditGrant(^uint32(0), ^uint64(0)),
		// Extended grant encoding: credits in StreamID, cumulative ack in
		// the Seq header field (exactly-once recovery) — plus a seq-stamped
		// data packet, so mutations hit both uses of the field.
		NewCreditGrant(4, 1<<40|12345),
		MustNew(103, 9, 2, "%s", "id-7").WithSeq(MakeSeq(2, 7)),
		// Session control ops, mirroring core's opOpenSession (op,
		// namespace, tenant, priority, budget) and opCloseSession (op,
		// namespace) wire shapes — the decoder must survive mutations of
		// the tenant announcement flood.
		MustNew(TagControl, 0, 0, "%d %d %s %d %d",
			int64(5), int64(9), "tenant-a", int64(2), int64(8)),
		MustNew(TagControl, 0, 0, "%d %d %s %d %d",
			int64(5), int64(4095), "", int64(0), int64(0)),
		MustNew(TagControl, 0, 0, "%d %d", int64(6), int64(9)),
		// Load report (op 8): origin, cumulative upstream packets, queue
		// depth, cumulative stalls — core's opLoadReport wire shape, so
		// mutations exercise the elastic-topology control path.
		MustNew(TagControl, 0, 3, "%d %d %d %d %d",
			int64(8), int64(3), int64(1<<40), int64(17), int64(0)),
	}
	for _, p := range seeds {
		f.Add(p.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x0E, 0x7B, 1})
	f.Add([]byte{0x0E, 0x7B, 2})
	// A version-1 header (no seq field): the decoder must reject the stale
	// version cleanly, not misparse the format length as seq bytes.
	f.Add([]byte{0x0E, 0x7B, 1, 100, 0, 0, 0, 7, 0, 0, 0, 3, 0, 0, 0, 0, 0})
	// A valid packet truncated mid-seq: rejected, never panics.
	trunc := MustNew(103, 9, 2, "").Encode()
	f.Add(trunc[:len(trunc)-10])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		re := p.Encode()
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted packet failed: %v", err)
		}
		if q.Tag != p.Tag || q.StreamID != p.StreamID || q.SrcRank != p.SrcRank || q.Seq != p.Seq || q.Format != p.Format {
			t.Fatalf("headers changed across re-encode: %v vs %v", p, q)
		}
		if !bytes.Equal(re, q.Encode()) {
			t.Fatal("encode not stable across decode/encode cycle")
		}
	})
}

// FuzzDecodeFrame hammers the multi-packet frame decoder with arbitrary
// bodies: it must never panic regardless of corrupt counts, truncated
// packets, or oversize lengths, and anything it accepts must re-encode to
// an identical frame (the decoder is exactly the inverse of EncodeFrame on
// valid inputs).
func FuzzDecodeFrame(f *testing.F) {
	single := MustNew(101, 7, 3, "%d %f %s", int64(-1), 2.5, "x")
	batch := []*Packet{
		MustNew(100, 0, 0, ""),
		single,
		MustNew(102, 7, 3, "%ad %af %as %ac",
			[]int64{1, 2}, []float64{3}, []string{"a", "b"}, []byte{9}),
		NewCreditGrant(64, 640),
	}
	f.Add(EncodeFrame(nil))
	f.Add(EncodeFrame(batch[:1]))
	f.Add(EncodeFrame(batch))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})               // count 1, no packet
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})   // absurd count
	f.Add(append([]byte{1, 0, 0, 0}, 0xFF)) // count 1, garbage length
	f.Add(append(EncodeFrame(batch), 0x00)) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeFrame(data)
		if err != nil {
			return
		}
		re := EncodeFrame(ps)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame does not re-encode identically (%d vs %d bytes)", len(re), len(data))
		}
		qs, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if len(qs) != len(ps) {
			t.Fatalf("re-decode count %d, want %d", len(qs), len(ps))
		}
	})
}

// FuzzFormatRoundTrip fuzzes format strings through the parser: parsing
// must never panic, and a parse-accepted format must render back into
// directives consistently.
func FuzzFormatRoundTrip(f *testing.F) {
	for _, s := range []string{"", "%d", "%d %f %s", "%ad %af %as %ac %c", "%x", "nonsense"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, format string) {
		dirs, err := ParseFormat(format)
		if err != nil {
			return
		}
		for _, d := range dirs {
			if d == DirInvalid {
				t.Fatalf("ParseFormat(%q) accepted an invalid directive", format)
			}
			if re, ok := parseDirective(d.String()); !ok || re != d {
				t.Fatalf("directive %v does not round-trip through %q", d, d.String())
			}
		}
	})
}
