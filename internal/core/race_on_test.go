//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// alloc-count assertions are skipped under it (instrumentation allocates).
const raceEnabled = true
