package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/transport"
)

// Tenant sessions multiplex many independent tools over one live overlay —
// the paper's core amortization claim. A session claims a stream-id
// namespace (see NamespaceOf), a fair-share egress priority, and a credit
// sub-budget of Config.LinkWindow, and is announced downstream with one
// opOpenSession flood. Teardown is the interesting half: CloseSession
// closes every stream of the namespace at every node with a single flooded
// opCloseSession packet — no per-stream control traffic and, critically, no
// shard quiesce — so tearing one tenant down never parks another tenant's
// pipelines. Admission policy (how many sessions, which weights) lives in
// internal/session; this file is the mechanism.

// SessionInfo describes one tenant session.
type SessionInfo struct {
	// NS is the session's stream-id namespace, in [1, MaxNamespace].
	// Namespace 0 is reserved for the legacy single-tenant API.
	NS uint32
	// Tenant names the session's owner for per-tenant metrics. Empty
	// defaults to "ns<NS>".
	Tenant string
	// Priority is the egress scheduling priority every stream opened in
	// this session inherits by default (sessions may still set per-stream
	// priorities explicitly; this is the fair-share class).
	Priority int
	// Budget caps how many link send credits the tenant may hold at once
	// across the front-end's links (a sub-window of Config.LinkWindow).
	// 0 or out-of-range values clamp to the full link window; ignored
	// entirely when flow control is off.
	Budget int
}

// sessionState is the front-end's record of an open session.
type sessionState struct {
	info     SessionInfo
	budget   *transport.Budget // nil when flow control is off
	counters *TenantCounters
}

// TenantCounters are per-tenant front-end traffic counters, the
// multi-tenant analogue of Metrics. They survive session close so final
// per-tenant stats remain readable.
type TenantCounters struct {
	PacketsUp     atomic.Int64 // reduced results delivered to the tenant's streams
	PacketsDown   atomic.Int64 // multicasts sent on the tenant's streams
	StreamsOpened atomic.Int64 // streams created in the tenant's sessions
	StreamsClosed atomic.Int64 // streams torn down in the tenant's sessions
}

// Snapshot renders the counters as a name -> value map.
func (tc *TenantCounters) Snapshot() map[string]int64 {
	return map[string]int64{
		"packets_up":     tc.PacketsUp.Load(),
		"packets_down":   tc.PacketsDown.Load(),
		"streams_opened": tc.StreamsOpened.Load(),
		"streams_closed": tc.StreamsClosed.Load(),
	}
}

// OpenSession admits a tenant session: it registers the namespace, sizes
// the tenant's credit budget, and floods the announcement downstream so
// every node knows the namespace is live. The namespace must be unused.
func (nw *Network) OpenSession(info SessionInfo) error {
	if info.NS == 0 || info.NS > MaxNamespace {
		return fmt.Errorf("core: session namespace %d out of range [1, %d]", info.NS, MaxNamespace)
	}
	if info.Tenant == "" {
		info.Tenant = fmt.Sprintf("ns%d", info.NS)
	}
	var bud *transport.Budget
	if nw.flowOn() {
		if info.Budget <= 0 || info.Budget > nw.cfg.LinkWindow {
			info.Budget = nw.cfg.LinkWindow
		}
		bud = transport.NewBudget(info.Budget)
	} else {
		info.Budget = 0
	}
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return ErrShutdown
	}
	if _, dup := nw.sessions[info.NS]; dup {
		nw.mu.Unlock()
		return fmt.Errorf("core: session namespace %d is already open", info.NS)
	}
	if nw.sessions == nil {
		nw.sessions = map[uint32]*sessionState{}
	}
	if nw.tenantStats == nil {
		nw.tenantStats = map[string]*TenantCounters{}
	}
	tc := nw.tenantStats[info.Tenant]
	if tc == nil {
		tc = &TenantCounters{}
		nw.tenantStats[info.Tenant] = tc
	}
	nw.sessions[info.NS] = &sessionState{info: info, budget: bud, counters: tc}
	nw.mu.Unlock()
	nw.metrics.SessionsOpened.Add(1)

	// Announce to every child subtree, like Shutdown: sessions are not
	// routed by membership (their streams are), so the flood is total. A
	// dead child is already gone; recovery re-plays stream announcements,
	// and the session op carries no state a node cannot live without.
	p := openSessionPacket(info)
	for _, l := range nw.fe.childLinks() {
		if l == nil {
			continue
		}
		_ = l.Send(p)
	}
	return nil
}

// CloseSession tears down a tenant session and every stream opened in its
// namespace, without quiescing any other tenant's pipelines: the front-end
// drops its stream state locally, aborts the tenant's credit budget (waking
// any sender blocked on it), and floods one opCloseSession packet that
// drains the namespace's synchronizers at every node behind previously
// dispatched work. Late in-flight data for the dead streams takes the
// existing pass-through paths with credits retired — the same transient
// semantics as Stream.Close.
func (nw *Network) CloseSession(ns uint32) error {
	nw.mu.Lock()
	sess := nw.sessions[ns]
	if sess == nil {
		nw.mu.Unlock()
		return fmt.Errorf("core: session namespace %d is not open", ns)
	}
	delete(nw.sessions, ns)
	var victims []*Stream
	for id, st := range nw.streams {
		if NamespaceOf(id) == ns {
			victims = append(victims, st)
		}
	}
	flood := !nw.shutdown
	nw.mu.Unlock()

	// Unblock budget-bound senders first: a Multicast parked on the
	// tenant's own sub-window must never outlive the session.
	if sess.budget != nil {
		sess.budget.Abort()
	}
	for _, st := range victims {
		st.bulkClose()
	}
	nw.metrics.SessionsClosed.Add(1)
	if flood {
		p := closeSessionPacket(ns)
		for _, l := range nw.fe.childLinks() {
			if l == nil {
				continue
			}
			_ = l.Send(p)
		}
	}
	return nil
}

// Sessions lists the currently open sessions.
func (nw *Network) Sessions() []SessionInfo {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]SessionInfo, 0, len(nw.sessions))
	for _, s := range nw.sessions {
		out = append(out, s.info)
	}
	return out
}

// TenantSnapshot renders every tenant's counters (including tenants whose
// sessions have closed) as tenant -> name -> value.
func (nw *Network) TenantSnapshot() map[string]map[string]int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make(map[string]map[string]int64, len(nw.tenantStats))
	for tenant, tc := range nw.tenantStats {
		out[tenant] = tc.Snapshot()
	}
	return out
}
