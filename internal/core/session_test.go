package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/topology"
)

func TestNamespaceOf(t *testing.T) {
	cases := []struct{ ns, seq uint32 }{
		{0, 1}, {1, 1}, {7, 12345}, {MaxNamespace, maxSeq},
	}
	for _, c := range cases {
		id := c.ns<<nsShift | c.seq
		if got := NamespaceOf(id); got != c.ns {
			t.Errorf("NamespaceOf(%#x) = %d, want %d", id, got, c.ns)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	tree := mustTree(t, "kary:2^1")
	nw := echoValue(t, tree, ChanTransport)
	defer nw.Shutdown()

	if err := nw.OpenSession(SessionInfo{NS: 0}); err == nil {
		t.Error("namespace 0 must be rejected (reserved for the legacy API)")
	}
	if err := nw.OpenSession(SessionInfo{NS: MaxNamespace + 1}); err == nil {
		t.Error("out-of-range namespace must be rejected")
	}
	if err := nw.OpenSession(SessionInfo{NS: 3, Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := nw.OpenSession(SessionInfo{NS: 3, Tenant: "b"}); err == nil {
		t.Error("duplicate namespace must be rejected")
	}
	if err := nw.CloseSession(9); err == nil {
		t.Error("closing an unopened namespace must fail")
	}
	if _, err := nw.NewStreamNS(9, StreamSpec{}); err == nil ||
		!strings.Contains(err.Error(), "no open session") {
		t.Errorf("stream in unopened namespace: err = %v", err)
	}
	if _, err := nw.NewStreamNS(MaxNamespace+1, StreamSpec{}); err == nil {
		t.Error("stream in out-of-range namespace must fail")
	}
	st, err := nw.NewStreamNS(3, StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if NamespaceOf(st.ID()) != 3 {
		t.Errorf("stream id %#x not in namespace 3", st.ID())
	}
	if err := nw.CloseSession(3); err != nil {
		t.Fatal(err)
	}
	if err := nw.CloseSession(3); err == nil {
		t.Error("double close must fail")
	}
}

// TestSessionsConcurrentTenants runs two tenant sessions side by side over
// one overlay: both compute correct reductions, closing one leaves the
// other fully live, and per-tenant counters attribute the traffic.
func TestSessionsConcurrentTenants(t *testing.T) {
	for _, kind := range []TransportKind{ChanTransport, TCPTransport} {
		name := "chan"
		if kind == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			tree := mustTree(t, "kary:3^2")
			nw := echoValue(t, tree, kind)
			defer nw.Shutdown()

			if err := nw.OpenSession(SessionInfo{NS: 1, Tenant: "alice", Priority: 1}); err != nil {
				t.Fatal(err)
			}
			if err := nw.OpenSession(SessionInfo{NS: 2, Tenant: "bob"}); err != nil {
				t.Fatal(err)
			}
			if n := len(nw.Sessions()); n != 2 {
				t.Fatalf("open sessions = %d, want 2", n)
			}

			var want float64
			for _, l := range tree.Leaves() {
				want += float64(l)
			}
			spec := StreamSpec{Transformation: "sum", Synchronization: "waitforall"}
			query := func(ns uint32) {
				t.Helper()
				st, err := nw.NewStreamNS(ns, spec)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Multicast(tagQuery, ""); err != nil {
					t.Fatal(err)
				}
				p, err := st.RecvTimeout(10 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if v, _ := p.Float(0); v != want {
					t.Errorf("ns %d sum = %g, want %g", ns, v, want)
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(2)
				go func() { defer wg.Done(); query(1) }()
				go func() { defer wg.Done(); query(2) }()
			}
			wg.Wait()

			// Tear bob down; alice keeps answering over the shared tree.
			if err := nw.CloseSession(2); err != nil {
				t.Fatal(err)
			}
			query(1)
			if err := nw.CloseSession(1); err != nil {
				t.Fatal(err)
			}

			m := nw.Metrics()
			if m.SessionsOpened.Load() != 2 || m.SessionsClosed.Load() != 2 {
				t.Errorf("sessions opened/closed = %d/%d, want 2/2",
					m.SessionsOpened.Load(), m.SessionsClosed.Load())
			}
			ts := nw.TenantSnapshot()
			for _, tenant := range []string{"alice", "bob"} {
				tc := ts[tenant]
				if tc == nil {
					t.Fatalf("no counters for tenant %q: %v", tenant, ts)
				}
				if tc["streams_opened"] < 3 || tc["packets_down"] < 3 || tc["packets_up"] < 3 {
					t.Errorf("tenant %q counters off: %v", tenant, tc)
				}
				if tc["streams_closed"] != tc["streams_opened"] {
					t.Errorf("tenant %q leaked streams: %v", tenant, tc)
				}
			}
		})
	}
}

// TestSessionStreamsSurviveOtherTeardown exercises the non-quiescing close
// at internal nodes: a stream of tenant A created before tenant B's close
// still reduces correctly afterwards, and B's stream ids are gone.
func TestSessionStreamsSurviveOtherTeardown(t *testing.T) {
	tree := mustTree(t, "kary:2^3")
	nw := echoValue(t, tree, ChanTransport)
	defer nw.Shutdown()

	for ns := uint32(1); ns <= 2; ns++ {
		if err := nw.OpenSession(SessionInfo{NS: ns}); err != nil {
			t.Fatal(err)
		}
	}
	spec := StreamSpec{Transformation: "sum", Synchronization: "waitforall"}
	stA, err := nw.NewStreamNS(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := nw.NewStreamNS(2, spec)
	if err != nil {
		t.Fatal(err)
	}
	// B has traffic in flight when its session dies.
	if err := stB.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	if err := nw.CloseSession(2); err != nil {
		t.Fatal(err)
	}
	if nw.Stream(stB.ID()) != nil {
		t.Error("bulk-closed stream still registered")
	}
	if _, err := stB.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Error("recv on bulk-closed stream should fail")
	}

	var want float64
	for _, l := range tree.Leaves() {
		want += float64(l)
	}
	for i := 0; i < 3; i++ {
		if err := stA.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := stA.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("post-teardown sum = %g, want %g", v, want)
		}
	}
}

// TestSessionBudgetClampAndLiveness checks the credit sub-budget: it clamps
// to the link window, throttles a tenant whose subtree stopped consuming,
// and aborting it at CloseSession releases a blocked sender immediately.
func TestSessionBudgetClampAndLiveness(t *testing.T) {
	tree, err := topology.ParseSpec("kary:4^1")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	nw, err := NewNetwork(Config{
		Topology:   tree,
		LinkWindow: 8,
		OnBackEnd: func(be *BackEnd) error {
			<-release // park: nothing retires, credits stay out
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	defer close(release)

	if err := nw.OpenSession(SessionInfo{NS: 1, Tenant: "t", Budget: 99}); err != nil {
		t.Fatal(err)
	}
	if got := nw.Sessions()[0].Budget; got != 8 {
		t.Fatalf("budget clamped to %d, want the link window 8", got)
	}
	if err := nw.CloseSession(1); err != nil {
		t.Fatal(err)
	}

	// Budget 1 with fan-out 4: a multicast needs one credit per child link,
	// so with no retirements the sender parks on its own sub-budget after
	// the first link — the shared window (8) stays almost untouched.
	if err := nw.OpenSession(SessionInfo{NS: 2, Tenant: "t2", Budget: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStreamNS(2, StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = st.Multicast(tagQuery, "")
	}()
	select {
	case <-done:
		t.Fatal("multicast should block on the exhausted tenant budget")
	case <-time.After(50 * time.Millisecond):
	}
	// Closing the session aborts the budget: the parked sender proceeds.
	if err := nw.CloseSession(2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CloseSession left the sender parked on a dead budget")
	}
}

// TestSessionControlWireRoundTrip drives the session control ops through
// the real wire codec: encode → Decode → parse must reproduce the session
// announcement exactly, and truncated or type-mangled payloads must be
// rejected by the parsers rather than misread.
func TestSessionControlWireRoundTrip(t *testing.T) {
	info := SessionInfo{NS: 4095, Tenant: "tenant a/π", Priority: 3, Budget: 17}
	p, err := packet.Decode(openSessionPacket(info).Encode())
	if err != nil {
		t.Fatalf("decoding opOpenSession wire bytes: %v", err)
	}
	if op, err := ctrlOp(p); err != nil || op != opOpenSession {
		t.Fatalf("ctrlOp = %d, %v; want opOpenSession", op, err)
	}
	got, err := parseOpenSession(p)
	if err != nil {
		t.Fatalf("parseOpenSession: %v", err)
	}
	if got != info {
		t.Errorf("opOpenSession round trip: got %+v, want %+v", got, info)
	}

	cp, err := packet.Decode(closeSessionPacket(9).Encode())
	if err != nil {
		t.Fatalf("decoding opCloseSession wire bytes: %v", err)
	}
	if op, err := ctrlOp(cp); err != nil || op != opCloseSession {
		t.Fatalf("ctrlOp = %d, %v; want opCloseSession", op, err)
	}
	if ns, err := parseCloseSession(cp); err != nil || ns != 9 {
		t.Errorf("parseCloseSession = %d, %v; want 9", ns, err)
	}

	// Truncated open (missing budget) and a string where the namespace
	// belongs: both must fail cleanly.
	short := packet.MustNew(packet.TagControl, 0, 0, "%d %d %s %d",
		opOpenSession, int64(1), "t", int64(0))
	if _, err := parseOpenSession(short); err == nil {
		t.Error("parseOpenSession accepted a truncated payload")
	}
	mangled := packet.MustNew(packet.TagControl, 0, 0, "%d %s",
		opCloseSession, "not-a-namespace")
	if _, err := parseCloseSession(mangled); err == nil {
		t.Error("parseCloseSession accepted a string namespace")
	}
}
