package core

import (
	"fmt"
	"time"

	"repro/internal/topology"
	"repro/internal/transport"
)

// AttachBackEnd implements the paper's dynamic topology model: "back-end
// processes may join after the internal tree has been instantiated." It
// creates a new back-end as a child of the given communication process on
// a running network and starts its handler.
//
// The new back-end participates in streams created *after* it attaches
// (existing streams' membership was fixed at creation, as in MRNet).
// Restrictions: chan transport only, and the parent must be an internal
// communication process (attachments to the front-end or to a leaf are
// rejected).
func (nw *Network) AttachBackEnd(parent Rank) (Rank, error) {
	if nw.cfg.Transport != ChanTransport {
		return topology.NoRank, fmt.Errorf("core: AttachBackEnd requires the chan transport")
	}

	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return topology.NoRank, ErrShutdown
	}
	old := nw.tree
	pn := old.Node(parent)
	if pn == nil || !nw.view.valid(parent) {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: no such parent %d", parent)
	}
	if pn.IsRoot() || nw.view.backend[parent] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: parent %d must be an internal communication process", parent)
	}
	if nw.view.dead[parent] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: parent %d has failed", parent)
	}
	// Build the successor topology as a fresh immutable tree; running
	// nodes read the network's tree pointer, never mutate it.
	parents := make([]Rank, old.Len()+1)
	for r := 0; r < old.Len(); r++ {
		parents[r] = old.Parent(Rank(r))
	}
	parents[old.Len()] = parent
	newTree, err := topology.FromParents(parents)
	if err != nil {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: attaching back-end: %w", err)
	}
	newRank, slot := nw.view.addLeaf(parent)
	nw.tree = newTree
	n := nw.byRank[parent]
	nw.mu.Unlock()

	parentEnd, childEnd := transport.NewPair(nw.cfg.ChanBuf)

	// Hand the new link to the parent's event loop; the send completes
	// only once the loop has installed the child, so a stream created
	// after this call observes the new topology end to end. The parent
	// may have crashed (killed but not yet recovered) — fail rather than
	// block forever, and mark the stillborn leaf dead so stream
	// membership never includes it.
	stillborn := func(err error) (Rank, error) {
		nw.mu.Lock()
		nw.view.dead[newRank] = true
		nw.mu.Unlock()
		return topology.NoRank, err
	}
	select {
	case n.attachCh <- attachMsg{link: parentEnd, slot: slot}:
	case <-n.killCh:
		return stillborn(fmt.Errorf("core: parent %d has crashed", parent))
	case <-nw.dying:
		return stillborn(ErrShutdown)
	case <-time.After(5 * time.Second):
		return stillborn(fmt.Errorf("core: parent %d did not accept the attachment", parent))
	}

	be := newBackEnd(nw, newRank, &transport.Endpoint{Rank: newRank, Parent: childEnd})
	nw.mu.Lock()
	nw.bes[newRank] = be
	nw.mu.Unlock()
	nw.wg.Add(1)
	go func() {
		defer nw.wg.Done()
		be.run()
	}()
	if nw.cfg.HeartbeatPeriod > 0 {
		go nw.heartbeatLoop(newRank, be.parentLink, be.killCh)
	}
	return newRank, nil
}

// treeNow returns the topology snapshot from network creation (plus
// attachments). Recovery does not rewrite this tree — the live shape in
// original numbering is tracked by the view; see Adopt.
func (nw *Network) treeNow() *topology.Tree {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.tree
}
