package core

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/transport"
)

// AttachBackEnd implements the paper's dynamic topology model: "back-end
// processes may join after the internal tree has been instantiated." It
// creates a new back-end as a child of the given communication process on
// a running network and starts its handler.
//
// The new back-end participates in streams created *after* it attaches
// (existing streams' membership was fixed at creation, as in MRNet).
// Restrictions: chan transport only, and the parent must be an internal
// communication process (attachments to the front-end or to a leaf are
// rejected).
func (nw *Network) AttachBackEnd(parent Rank) (Rank, error) {
	if nw.cfg.Transport != ChanTransport {
		return topology.NoRank, fmt.Errorf("core: AttachBackEnd requires the chan transport")
	}

	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return topology.NoRank, ErrShutdown
	}
	old := nw.tree
	pn := old.Node(parent)
	if pn == nil {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: no such parent %d", parent)
	}
	if pn.IsRoot() || pn.IsLeaf() {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: parent %d must be an internal communication process", parent)
	}
	// Build the successor topology as a fresh immutable tree; running
	// nodes read the network's tree pointer, never mutate it.
	parents := make([]Rank, old.Len()+1)
	for r := 0; r < old.Len(); r++ {
		parents[r] = old.Parent(Rank(r))
	}
	parents[old.Len()] = parent
	newTree, err := topology.FromParents(parents)
	if err != nil {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: attaching back-end: %w", err)
	}
	newRank := Rank(old.Len())
	nw.tree = newTree
	nw.mu.Unlock()

	parentEnd, childEnd := transport.NewPair(nw.cfg.ChanBuf)

	// Hand the new link to the parent's event loop; the send completes
	// only once the loop has installed the child, so a stream created
	// after this call observes the new topology end to end.
	n := nw.nodes[parent-1]
	n.attachCh <- parentEnd

	be := &BackEnd{
		nw:    nw,
		rank:  newRank,
		ep:    &transport.Endpoint{Rank: newRank, Parent: childEnd},
		inbox: make(chan *packet.Packet, 64),
	}
	nw.wg.Add(1)
	go func() {
		defer nw.wg.Done()
		be.run()
	}()
	return newRank, nil
}

// treeNow returns the current topology snapshot. Trees are immutable;
// AttachBackEnd replaces the pointer.
func (nw *Network) treeNow() *topology.Tree {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.tree
}
