package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/topology"
	"repro/internal/transport"
)

// ErrBadAttachParent reports an AttachBackEnd target that cannot accept a
// new child: a back-end (leaves have no routing loop), or the front-end
// of a tree that has internal communication processes (attach under one
// of those instead). The front-end itself is a valid parent only on flat
// (depth-1) topologies, where it is the sole routing process.
var ErrBadAttachParent = errors.New("core: attach parent cannot accept children")

// AttachBackEnd implements the paper's dynamic topology model: "back-end
// processes may join after the internal tree has been instantiated." It
// creates a new back-end as a child of the given communication process on
// a running network and starts its handler.
//
// The new back-end participates in streams created *after* it attaches
// (existing streams' membership was fixed at creation, as in MRNet).
// The parent must be an internal communication process — or the
// front-end itself on a flat (depth-1) topology, which has no internal
// processes. Attachments to back-ends, and to the front-end of a deeper
// tree, fail with ErrBadAttachParent. Works on any fabric: the new link
// is minted by the network's Rewirer (the parent side listens, the
// newcomer redials).
func (nw *Network) AttachBackEnd(parent Rank) (Rank, error) {
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return topology.NoRank, ErrShutdown
	}
	old := nw.tree
	pn := old.Node(parent)
	if pn == nil || !nw.view.valid(parent) {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: no such parent %d", parent)
	}
	if nw.view.backend[parent] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: %d is a back-end", ErrBadAttachParent, parent)
	}
	if pn.IsRoot() && len(old.InternalNodes()) > 0 {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: %d is the front-end of a non-flat tree", ErrBadAttachParent, parent)
	}
	if nw.view.dead[parent] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: parent %d has failed", parent)
	}
	// Build the successor topology as a fresh immutable tree; running
	// nodes read the network's tree pointer, never mutate it.
	parents := make([]Rank, old.Len()+1)
	for r := 0; r < old.Len(); r++ {
		parents[r] = old.Parent(Rank(r))
	}
	parents[old.Len()] = parent
	newTree, err := topology.FromParents(parents)
	if err != nil {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("core: attaching back-end: %w", err)
	}
	newRank, slot := nw.view.addLeaf(parent)
	nw.tree = newTree
	n := nw.byRank[parent] // nil when the parent is the front-end
	nw.mu.Unlock()

	// Mint the link through the fabric's rewiring protocol. Both halves
	// run here — the network process owns the parent's rendezvous and the
	// newcomer's redial alike — but the split keeps the code path the one
	// a distributed joiner would use.
	stillborn := func(err error) (Rank, error) {
		nw.mu.Lock()
		nw.view.dead[newRank] = true
		nw.mu.Unlock()
		return topology.NoRank, err
	}
	off, err := nw.rewirer.Offer()
	if err != nil {
		return stillborn(fmt.Errorf("core: attaching back-end: %w", err))
	}
	childEnd, err := nw.rewirer.Redial(off.Addr())
	if err != nil {
		_ = off.Close()
		return stillborn(fmt.Errorf("core: attaching back-end: %w", err))
	}
	parentEnd, err := off.Accept()
	if err != nil {
		transport.DropLink(childEnd)
		return stillborn(fmt.Errorf("core: attaching back-end: %w", err))
	}
	if nw.flowOn() {
		// Both ends of the new edge get credit accounting from birth (the
		// child end is wrapped by newBackEnd below).
		parentEnd = transport.NewFlowLink(parentEnd, nw.cfg.LinkWindow)
	}
	nw.metrics.RewiredLinks.Add(1)

	// Hand the new link to the parent's event loop; the send completes
	// only once the loop is servicing attachments, so a stream created
	// after this call observes the new topology end to end. The parent
	// may have crashed (killed but not yet recovered) — fail rather than
	// block forever, and mark the stillborn leaf dead so stream
	// membership never includes it.
	abort := func(err error) (Rank, error) {
		transport.DropLink(parentEnd)
		transport.DropLink(childEnd)
		return stillborn(err)
	}
	msg := attachMsg{link: parentEnd, slot: slot}
	if n != nil {
		select {
		case n.attachCh <- msg:
		case <-n.killCh:
			return abort(fmt.Errorf("core: parent %d has crashed", parent))
		case <-nw.dying:
			return abort(ErrShutdown)
		case <-time.After(5 * time.Second):
			return abort(fmt.Errorf("core: parent %d did not accept the attachment", parent))
		}
	} else {
		select {
		case nw.fe.attachCh <- msg:
		case <-nw.dying:
			return abort(ErrShutdown)
		case <-time.After(5 * time.Second):
			return abort(fmt.Errorf("core: front-end did not accept the attachment"))
		}
	}

	be := newBackEnd(nw, newRank, &transport.Endpoint{Rank: newRank, Parent: childEnd})
	nw.mu.Lock()
	nw.bes[newRank] = be
	nw.mu.Unlock()
	nw.wg.Add(1)
	go func() {
		defer nw.wg.Done()
		be.run()
	}()
	if nw.cfg.HeartbeatPeriod > 0 {
		go nw.heartbeatLoop(newRank, be.parentLink, be.killCh)
	}
	return newRank, nil
}

// ErrNoEligibleParent reports that PlaceBackEnd found no live internal
// process (or, on a flat tree, front-end) with a free child slot under the
// requested fan-out cap.
var ErrNoEligibleParent = errors.New("core: no eligible parent for placement")

// Placement parameterizes load-aware back-end placement. The zero value
// means "no load information, no fan-out cap" and degrades to first-fit.
type Placement struct {
	// Scores maps internal ranks to heat scores (higher = hotter), as
	// produced by the elastic controller. Ranks absent from the map score
	// zero (coldest). Nil means no load information.
	Scores map[Rank]float64
	// ScoresAt is when Scores was computed. Zero means unknown.
	ScoresAt time.Time
	// Staleness bounds how old Scores may be before placement falls back
	// to first-fit. Zero means scores never go stale.
	Staleness time.Duration
	// MaxFanOut caps live children per parent. Zero or negative means
	// uncapped.
	MaxFanOut int
}

// fresh reports whether the heat scores are usable for placement.
func (pl Placement) fresh() bool {
	if pl.Scores == nil {
		return false
	}
	if pl.Staleness <= 0 || pl.ScoresAt.IsZero() {
		return pl.Scores != nil
	}
	return time.Since(pl.ScoresAt) <= pl.Staleness
}

// PlaceBackEnd attaches a new back-end under the least-loaded eligible
// parent: the live internal process with the lowest heat score whose live
// child count is under the fan-out cap (ties break toward the lower rank).
// With no usable scores — nil, or older than pl.Staleness — it falls back
// to first-fit (lowest-rank eligible parent). On a flat tree the front-end
// is the only eligible parent. Returns ErrNoEligibleParent when every
// candidate is at the cap.
func (nw *Network) PlaceBackEnd(pl Placement) (Rank, error) {
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return topology.NoRank, ErrShutdown
	}
	// Candidates in rank order: live internal processes, or the front-end
	// alone on a flat tree (mirrors AttachBackEnd's validity rules).
	var cands []Rank
	for r := 1; r < len(nw.view.parent); r++ {
		if !nw.view.dead[r] && !nw.view.backend[r] {
			cands = append(cands, Rank(r))
		}
	}
	if len(cands) == 0 {
		cands = append(cands, 0)
	}
	if pl.MaxFanOut > 0 {
		kept := cands[:0]
		for _, r := range cands {
			if nw.view.liveChildCount(r) < pl.MaxFanOut {
				kept = append(kept, r)
			}
		}
		cands = kept
	}
	nw.mu.Unlock()
	if len(cands) == 0 {
		return topology.NoRank, ErrNoEligibleParent
	}

	best := cands[0]
	if pl.fresh() {
		for _, r := range cands[1:] {
			if pl.Scores[r] < pl.Scores[best] {
				best = r
			}
		}
		nw.metrics.PlacementsLoadAware.Add(1)
	} else {
		nw.metrics.PlacementsFirstFit.Add(1)
	}
	return nw.AttachBackEnd(best)
}

// treeNow returns the topology snapshot from network creation (plus
// attachments). Recovery does not rewrite this tree — the live shape in
// original numbering is tracked by the view; see Adopt.
func (nw *Network) treeNow() *topology.Tree {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.tree
}
