package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// inMsg is one unit of work for a node's event loop: a frame of packets
// arriving on the parent link (child == -1) or on the child link with the
// given slot. A nil slice signals that the link reached EOF.
type inMsg struct {
	child int
	ps    []*packet.Packet
}

// attachMsg delivers a dynamically created child link together with the
// slot index the live view assigned to it, so the event loop installs it at
// the same index the routing tables use.
type attachMsg struct {
	link transport.Link
	slot int
}

// node is a communication process (or the shell around a back-end, which
// has its own loop in backend.go). Its run loop is the control-plane
// ROUTER of the stream-sharded data plane (see shard.go): it owns links,
// reader goroutines, the streams table, control packets, and recovery
// commands, and dispatches data-packet runs to per-stream pipeline shards.
type node struct {
	nw   *Network
	rank Rank
	ep   *transport.Endpoint
	leaf bool
	be   *BackEnd

	streams      map[uint32]*streamState
	shuttingDown bool
	liveChildren int

	// shards runs this node's filter pipelines; owned by the router, which
	// is the only dispatcher.
	shards *shardPool
	// readStop is closed when the router exits, releasing any readLink
	// goroutine still blocked handing a frame to the abandoned inbox.
	readStop chan struct{}
	// egKick wakes the router's timer loop when a shard's enqueue gives an
	// egress queue a new age deadline the router has not seen.
	egKick chan struct{}
	// inbox is the router's ingress channel; its backlog is the pressure
	// signal that decides inline execution vs shard dispatch.
	inbox chan inMsg
	// ctrlLane is the second ingress lane: readers divert order-free
	// control (heartbeat relays) here, so liveness traffic flows even while
	// the data inbox is saturated — it can never be head-of-line blocked
	// behind data frames. Credit grants never reach either lane: the
	// transport absorbs them at the receive edge.
	ctrlLane chan *packet.Packet

	// Egress queues, one per link, shared by the router and the shards
	// (each queue serializes internally). parentOut retains its buffer
	// across a dead parent link on recoverable networks so the packets
	// survive until reparenting. The childOut slice itself is mutated only
	// with the shards quiesced (adoption, attach).
	parentOut *egressQueue
	childOut  []*egressQueue

	// orphaned is set when the parent link dies without a shutdown
	// announcement on a recoverable network; the node then keeps serving
	// its subtree while it waits for a grandparent adoption (cmdReparent).
	orphaned bool
	// parentGen counts reparents and parentEOFSeen counts parent-link EOFs,
	// so a stale EOF from a replaced link is not mistaken for the death of
	// the current parent.
	parentGen     int
	parentEOFSeen int

	// attachCh delivers links for dynamically attached back-ends
	// (AttachBackEnd); the event loop installs them as new child slots.
	attachCh chan attachMsg
	// cmdCh delivers recovery commands (state snapshot, adoption,
	// reparenting) into the event loop.
	cmdCh chan nodeCmd
	// killCh is closed by Kill to crash the node: the event loop exits
	// immediately, without draining.
	killCh   chan struct{}
	killOnce sync.Once

	// parentMu guards ep.Parent for readers outside the event loop (the
	// heartbeat goroutine); epMu guards ep.Children structure for Kill.
	parentMu sync.RWMutex
	epMu     sync.Mutex

	// Exactly-once state (Config.ExactlyOnce; all nil/unused otherwise).
	// ackTrack maps each inbound child link to its in-order retirement
	// tracker (router-owned; see inOrder). ackr turns parent
	// acknowledgements into child credit grants off the reader goroutines.
	// ckpts caches descendants' filter-state checkpoints (router-owned,
	// rank -> stream -> blob) for adoption-time composition. reroute
	// stashes a fenced dead child's never-sent queued packets for
	// re-routing after the adoption repairs the stream table.
	ackTrack map[*transport.FlowLink]*inOrder
	ackr     *acker
	ckpts    map[Rank]map[uint32][]byte
	reroute  []*packet.Packet

	// Elastic-topology load sampling (Config.LoadReportPeriod). upCount is
	// the cumulative upstream data packets this router has dispatched (one
	// atomic add per run, beside the global counter); outRef publishes the
	// parent egress queue to the load-report goroutine, which samples its
	// depth and stall count — the pointer is written once by run before any
	// traffic flows and never reassigned (reparenting swaps the queue's
	// link, not the queue).
	upCount atomic.Int64
	outRef  atomic.Pointer[egressQueue]
}

// run executes the communication-process router loop: route downstream
// multicasts toward member back-ends, relay control, and dispatch data to
// the per-stream pipeline shards, which synchronize, transform, and egress
// concurrently.
func (n *node) run() {
	if n.leaf {
		n.be.run()
		return
	}
	n.streams = map[uint32]*streamState{}
	inbox := make(chan inMsg, 4*(len(n.ep.Children)+1))
	n.inbox = inbox
	n.ctrlLane = make(chan *packet.Packet, ctrlLaneDepth)
	n.readStop = make(chan struct{})
	n.egKick = make(chan struct{}, 1)
	n.shards = newShardPool(n.nw.shardCount(), n, &n.nw.metrics)
	n.shards.noInline = n.nw.flowOn()
	defer func() {
		// Whatever path the router exits by — graceful finish, crash, an
		// abandoned subtree — the readers and workers must not outlive it.
		close(n.readStop)
		n.shards.abort()
	}()

	// Egress queues wrap every link; with batching and flow control both
	// disabled they forward directly, so the un-batched hot path is
	// unchanged.
	pol := n.nw.cfg.Batch
	kick := kickFunc(n.egKick)
	n.parentOut = newEgressQueue(n.ep.Parent, pol, &n.nw.metrics, n.nw.recoverable(), kick)
	n.parentOut.bindStops(n.killCh, n.nw.dying)
	n.outRef.Store(n.parentOut)
	if n.nw.xonce() {
		n.ackTrack = map[*transport.FlowLink]*inOrder{}
		n.ackr = newAcker(&n.nw.metrics)
		defer n.ackr.halt()
		// Parent acknowledgements pop the replay ring and release the
		// inbound runs those packets carried — the cascade hop.
		n.parentOut.enableReplay(n.ackr.completed)
	}
	n.childOut = make([]*egressQueue, len(n.ep.Children))
	for i, c := range n.ep.Children {
		n.childOut[i] = newEgressQueue(c, pol, &n.nw.metrics, false, kick)
		n.childOut[i].bindStops(n.killCh, n.nw.dying)
	}

	// Reader goroutines: one per link, feeding the event loop.
	go readLink(n.ep.Parent, -1, inbox, n.ctrlLane, n.readStop)
	for i, c := range n.ep.Children {
		go readLink(c, i, inbox, n.ctrlLane, n.readStop)
	}
	n.liveChildren = len(n.ep.Children)

	// fast counts consecutive fast-path iterations; the periodic forced
	// slow-path pass bounds how long a busy inbox can defer time-based
	// work (egress age flushes, recovery commands). Synchronizer windows
	// are the shards' concern now.
	fast := 0
	for {
		// Control lane first: order-free control must flow however deep the
		// data backlog is.
		select {
		case p := <-n.ctrlLane:
			n.handleOrderFree(p)
			continue
		default:
		}
		// Fast path: while messages are ready, handle them without the
		// deadline scan and timer allocation of the full select.
		if fast < 1024 {
			select {
			case m := <-inbox:
				fast++
				if done := n.handle(m); done {
					return
				}
				continue
			case <-n.killCh:
				return // crashed: no drain, links already dropped by Kill
			default:
			}
		}
		fast = 0
		var timer *time.Timer
		var timerC <-chan time.Time
		if d := n.earliestDeadline(); !d.IsZero() {
			wait := time.Until(d)
			if wait <= 0 {
				n.pollEgress()
				continue
			}
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		// An orphan additionally watches for network teardown: nobody can
		// route a shutdown announcement to it until it is adopted.
		var dyingC <-chan struct{}
		if n.orphaned {
			dyingC = n.nw.dying
		}
		select {
		case m := <-inbox:
			if timer != nil {
				timer.Stop()
			}
			if done := n.handle(m); done {
				return
			}
		case p := <-n.ctrlLane:
			if timer != nil {
				timer.Stop()
			}
			n.handleOrderFree(p)
		case <-n.egKick:
			// A shard gave an egress queue a deadline the scan above did
			// not see: fall through and recompute.
			if timer != nil {
				timer.Stop()
			}
		case a := <-n.attachCh:
			if timer != nil {
				timer.Stop()
			}
			n.addChild(a, inbox)
		case c := <-n.cmdCh:
			if timer != nil {
				timer.Stop()
			}
			n.handleCmd(c, inbox)
		case <-n.killCh:
			if timer != nil {
				timer.Stop()
			}
			return // crashed: no drain, links already dropped by Kill
		case <-dyingC:
			if timer != nil {
				timer.Stop()
			}
			n.finish()
			return
		case <-timerC:
			n.pollEgress()
		}
	}
}

// kill crashes the node: its links are severed abruptly (peers observe
// unexpected EOF, in-flight packets are lost) and the event loop exits.
func (n *node) kill() {
	n.killOnce.Do(func() { close(n.killCh) })
	n.parentMu.RLock()
	parent := n.ep.Parent
	n.parentMu.RUnlock()
	transport.DropLink(parent)
	n.epMu.Lock()
	children := append([]transport.Link(nil), n.ep.Children...)
	n.epMu.Unlock()
	for _, c := range children {
		transport.DropLink(c)
	}
}

// parentLink returns the current parent link; safe outside the event loop.
func (n *node) parentLink() transport.Link {
	n.parentMu.RLock()
	defer n.parentMu.RUnlock()
	return n.ep.Parent
}

// installChild places a link at the given child slot, growing the slice
// with nil placeholders if slots were assigned out of order. The slot's
// egress queue follows the link: a replacement link gets a fresh queue and
// a fenced-off slot (nil link) drops whatever was still queued to the dead
// child. The displaced link's credit state is aborted so nothing keeps
// waiting on a window the dead peer can never refill. Callers must hold
// the shards quiesced: the childOut slice is read lock-free by the
// pipeline workers.
func (n *node) installChild(slot int, l transport.Link) {
	n.epMu.Lock()
	for len(n.ep.Children) <= slot {
		n.ep.Children = append(n.ep.Children, nil)
	}
	if old := n.ep.Children[slot]; old != nil && old != l {
		if fl := flowOf(old); fl != nil {
			fl.Abort()
		}
	}
	n.ep.Children[slot] = l
	n.epMu.Unlock()
	for len(n.childOut) <= slot {
		n.childOut = append(n.childOut, nil)
	}
	if l == nil {
		if n.nw.xonce() {
			// Exactly-once: the fenced queue's packets never reached the
			// wire; stash them for re-routing once the adoption has
			// repaired the stream table (handleCmd), instead of dropping.
			n.reroute = append(n.reroute, n.childOut[slot].extract()...)
		} else {
			n.childOut[slot].clear()
		}
		n.childOut[slot] = nil
		return
	}
	n.childOut[slot] = newEgressQueue(l, n.nw.cfg.Batch, &n.nw.metrics, false, kickFunc(n.egKick))
	n.childOut[slot].bindStops(n.killCh, n.nw.dying)
}

// addChild installs a dynamically attached back-end's link as a new child
// slot. Existing streams do not include the newcomer (their membership was
// fixed at creation); streams created afterwards see it via the updated
// topology snapshot.
func (n *node) addChild(a attachMsg, inbox chan inMsg) {
	// installChild grows the childOut slice the shards traverse while
	// fanning multicasts out; attach is rare, so park the data plane.
	n.quiesceShards(func() {
		n.installChild(a.slot, a.link)
		for _, ss := range n.streams {
			ss.growSlots(a.slot + 1)
		}
	})
	n.liveChildren++
	if n.shuttingDown {
		// The newcomer raced a shutdown: pass the announcement on so it
		// terminates like everyone else.
		_ = a.link.Send(packet.MustNew(packet.TagControl, 0, n.rank, ctrlShutdownFormat, int64(opShutdown)))
	}
	go readLink(a.link, a.slot, inbox, n.ctrlLane, n.readStop)
}

// ctrlLaneDepth buffers the order-free control lane. It only fills when
// the router itself is wedged for a long stretch; beacons are periodic, so
// dropping the overflow is strictly better than blocking the reader.
const ctrlLaneDepth = 256

// orderFreeControl reports whether p is control traffic with no data-plane
// ordering semantics (heartbeat beacons and load reports). Such packets
// ride the ingress control lane, bypassing the data inbox entirely.
func orderFreeControl(p *packet.Packet) bool {
	if p.Tag != packet.TagControl {
		return false
	}
	op, err := ctrlOp(p)
	return err == nil && (op == opHeartbeat || op == opLoadReport)
}

// splitOrderFree diverts order-free control packets in ps to the control
// lane (dropping them if it is full — they are periodic and lossy-safe)
// and returns the remaining packets in order. The common all-data frame
// costs one scan and no allocation. When a split is needed the kept
// packets go into a FRESH slice: ps came off the wire via RecvBatch, and
// on the in-process fabric its backing array is still the sender's
// SendBatch slice, which an exactly-once sender re-reads after the send to
// build its replay ring — compacting in place (ps[:0]) would corrupt the
// ring under the sender's feet (the PR 7 absorb/dropDups race class).
func splitOrderFree(ps []*packet.Packet, ctrl chan<- *packet.Packet) []*packet.Packet {
	split := false
	for _, p := range ps {
		if p.Tag == packet.TagControl && orderFreeControl(p) {
			split = true
			break
		}
	}
	if !split {
		return ps
	}
	kept := make([]*packet.Packet, 0, len(ps)-1)
	for _, p := range ps {
		if orderFreeControl(p) {
			select {
			case ctrl <- p:
			default:
			}
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// readLink pumps frames from a link into the inbox, sending a nil-slice
// sentinel at EOF. A nil link (the root's parent) sends nothing. Reading
// whole frames means one inbox message — and one event-loop wakeup — per
// link flush instead of per packet. Order-free control is diverted to the
// ctrl lane before the (possibly blocking) inbox delivery, which is the
// receive half of the two-lane ingress: a saturated data path cannot
// head-of-line-block liveness traffic. stop covers the owner exiting
// without draining the inbox (kill, abandoned subtree): a reader must
// never stay blocked on a channel nobody reads.
func readLink(l transport.Link, slot int, inbox chan<- inMsg, ctrl chan<- *packet.Packet, stop <-chan struct{}) {
	if l == nil {
		return
	}
	for {
		ps, err := transport.RecvBatch(l)
		if err != nil {
			select {
			case inbox <- inMsg{child: slot, ps: nil}:
			case <-stop:
			}
			return
		}
		if ctrl != nil {
			if ps = splitOrderFree(ps, ctrl); len(ps) == 0 {
				continue
			}
		}
		// Fast path: a buffered non-blocking send costs one channel
		// operation; the two-way select only runs when the inbox is full
		// (backpressure) — where blocking, and therefore watching stop,
		// is the point.
		select {
		case inbox <- inMsg{child: slot, ps: ps}:
			continue
		default:
		}
		select {
		case inbox <- inMsg{child: slot, ps: ps}:
		case <-stop:
			return
		}
	}
}

// quiesceShards parks the data plane for fn with a guarantee the barrier
// always forms: pipeline workers may be blocked on a flow-control window
// (a dead peer's, or simply a saturated one), and a parked router cannot
// deliver the grants or EOFs that would free them — so every owned
// queue's slot waiters are released first (each blocked worker overflows
// its one in-hand packet, finishes its item, and parks), and the hard
// bound is re-armed once the shards resume. The transient excursion is at
// most one packet per worker per quiesce.
func (n *node) quiesceShards(fn func()) {
	n.parentOut.releaseWaiters()
	for _, q := range n.childOut {
		q.releaseWaiters()
	}
	n.shards.quiesce(fn)
	n.parentOut.rearmWaiters()
	for _, q := range n.childOut {
		q.rearmWaiters()
	}
}

// handleOrderFree processes one control-lane packet on the router:
// heartbeat beacons and load reports relay toward the front-end with
// flush-through (their latency compounds per level, and they carry no
// ordering semantics, so jumping ahead of shard-pending or credit-stalled
// data is safe). An orphan drops the relay — the dead parent link would
// have dropped it anyway.
func (n *node) handleOrderFree(p *packet.Packet) {
	if op, err := ctrlOp(p); err == nil && (op == opHeartbeat || op == opLoadReport) && !n.orphaned {
		_ = n.parentOut.sendNow(p)
	}
}

// nextRun returns j such that ps[i:j] is a maximal run of data packets on
// ps[i]'s stream: control packets and stream changes end a run, so
// feeding runs to the synchronizer whole preserves exact per-link FIFO
// semantics. Both the node and the front-end ingress split frames with
// this single rule; a run is also the unit of shard dispatch.
func nextRun(ps []*packet.Packet, i int) int {
	j := i + 1
	for j < len(ps) && ps[j].Tag != packet.TagControl && ps[j].StreamID == ps[i].StreamID {
		j++
	}
	return j
}

// handle processes one inbox message, returning true when the node should
// exit.
func (n *node) handle(m inMsg) bool {
	if m.child == -1 {
		return n.handleFromParent(m.ps)
	}
	return n.handleFromChild(m.child, m.ps)
}

func (n *node) handleFromParent(ps []*packet.Packet) bool {
	if ps == nil {
		n.parentEOFSeen++
		if n.parentEOFSeen <= n.parentGen {
			return false // EOF of a link already replaced by reparenting
		}
		if n.nw.recoverable() && !n.shuttingDown {
			// Parent crashed: hold the subtree together and wait for the
			// grandparent to adopt us (the zero-cost recovery model). Any
			// worker waiting on the dead parent's window must be released
			// first, or it never reaches the quiesce barrier the coming
			// reparent needs.
			n.parentOut.releaseWaiters()
			n.orphaned = true
			return false
		}
		// Parent vanished without shutdown: abandon the subtree.
		n.closeAll()
		return true
	}
	src := flowOf(n.ep.Parent)
	for _, p := range ps {
		if p.Tag == packet.TagControl {
			if done := n.handleControl(p); done {
				return true
			}
			continue
		}
		// Downstream data: hand it to the stream's pipeline shard, which
		// applies the stream's downstream filter (if any) at this level and
		// multicasts toward member back-ends. Same stream -> same shard, so
		// per-stream downstream order is preserved.
		n.nw.metrics.PacketsDown.Add(1)
		if ss, ok := n.streams[p.StreamID]; ok {
			n.shards.down(ss, p, n.backlogged(), src)
			continue
		}
		// Unknown stream: flood (control may still be propagating on
		// another path in reconfiguration scenarios; flooding is always
		// safe). Routed through the id's shard so the router stays off the
		// (window-bounded) egress path.
		n.shards.downRaw(p.StreamID, p, src)
	}
	return false
}

// flowOf extracts a link's credit accounting, nil when flow control is off.
func flowOf(l transport.Link) *transport.FlowLink {
	fl, _ := l.(*transport.FlowLink)
	return fl
}

// sendDownstream fans a packet out to the stream's participating children
// through their egress queues. Safe from shard workers: routing comes from
// the stream's snapshot and the childOut slice only changes under quiesce.
// Called only from pipeline workers, so blocking on a child's window is
// the intended backpressure (it stalls retirement, which stalls the
// upstream sender).
func (n *node) sendDownstream(ss *streamState, p *packet.Packet) {
	down := ss.routeSnapshot()
	for i, q := range n.childOut {
		if q == nil || i >= len(down) || !down[i] {
			continue
		}
		_ = q.sendCtx(p, ss.prio, true)
	}
}

// sendDownstreamNow fans a control packet out to the stream's
// participating children, flushing each queue so control never waits out a
// batching window (it still keeps its FIFO position behind queued data).
func (n *node) sendDownstreamNow(ss *streamState, p *packet.Packet) {
	down := ss.routeSnapshot()
	for i, q := range n.childOut {
		if q == nil || i >= len(down) || !down[i] {
			continue
		}
		_ = q.sendNow(p)
	}
}

func (n *node) handleControl(p *packet.Packet) bool {
	op, err := ctrlOp(p)
	if err != nil {
		return false
	}
	switch op {
	case opNewStream:
		id, tform, sync, downTform, prio, members, err := parseNewStream(p)
		if err != nil {
			return false
		}
		if _, exists := n.streams[id]; exists {
			// Recovery re-announces streams to adopted subtrees; a node
			// that already carries the stream must keep its filter state.
			return false
		}
		ss, err := newStreamState(n.nw, n.rank, n.nw.registry, id, tform, sync, downTform, prio, members)
		if err != nil {
			// Unknown filter at this node: degrade to pass-through so data
			// still flows; the front-end surfaced the same error to the
			// caller when it validated the stream spec.
			return false
		}
		n.streams[id] = ss
		n.shards.register(ss)
		n.sendDownstreamNow(ss, p)
	case opCloseStream:
		id, err := parseCloseStream(p)
		if err != nil {
			return false
		}
		if ss, ok := n.streams[id]; ok {
			// The stream's shard drains the synchronizer and forwards the
			// close downstream AFTER every packet dispatched before the
			// close — the mailbox keeps the control's FIFO position. The
			// router forgets the stream now, so later arrivals pass
			// through unfiltered (routed through the same shard to keep
			// them behind the drain).
			delete(n.streams, id)
			n.shards.closeStream(ss, p)
		}
	case opOpenSession:
		// Sessions carry no per-node state today — stream announcements
		// establish everything a node needs — so the open is a pure
		// namespace reservation relayed to every child subtree.
		for _, q := range n.childOut {
			if q != nil {
				_ = q.sendNow(p)
			}
		}
	case opCloseSession:
		ns, err := parseCloseSession(p)
		if err != nil {
			return false
		}
		// Tear down every stream of the namespace without quiescing: each
		// victim's synchronizer drains on its own shard's up lane behind
		// previously dispatched work, other tenants' pipelines never stop,
		// and the single packet relays onward to every child in one hop.
		for id, ss := range n.streams {
			if NamespaceOf(id) != ns {
				continue
			}
			delete(n.streams, id)
			n.shards.closeStreamUp(ss)
		}
		for _, q := range n.childOut {
			if q != nil {
				_ = q.sendNow(p)
			}
		}
	case opShutdown:
		n.shuttingDown = true
		// Park the data plane before forwarding: every downstream packet
		// accepted before the announcement is through its pipeline and in
		// an egress queue, so the announcement keeps its exact per-link
		// FIFO position, just as the serial loop preserved it.
		n.quiesceShards(func() {})
		for _, q := range n.childOut {
			if q != nil {
				_ = q.sendNow(p)
			}
		}
		if n.liveChildren == 0 {
			n.finish()
			return true
		}
	}
	return false
}

func (n *node) handleFromChild(child int, ps []*packet.Packet) bool {
	if ps == nil {
		n.liveChildren--
		// The child's link is dead: release any worker waiting on its
		// window (nothing can refill it; the slot stays as-is until the
		// child's own recovery fences or replaces it).
		if child < len(n.childOut) {
			n.childOut[child].releaseWaiters()
		}
		if n.shuttingDown && n.liveChildren == 0 {
			n.finish()
			return true
		}
		return false
	}
	// Walk the frame in arrival order, dispatching maximal same-stream runs
	// of data packets to the stream's pipeline shard in one item. Control
	// packets and stream changes break runs, and a stream's runs land in
	// one shard's FIFO mailbox, so per-link, per-stream semantics are
	// exactly those of packet-at-a-time processing.
	var src *transport.FlowLink
	if child < len(n.ep.Children) {
		src = flowOf(n.ep.Children[child])
	}
	for i := 0; i < len(ps); {
		p := ps[i]
		if p.Tag == packet.TagControl {
			// Upstream order-free control is normally diverted by the
			// reader; anything that still lands here relays toward the
			// front-end with flush-through as before. An orphan drops the
			// relay (the dead parent link would have dropped it anyway) so
			// stale beacons cannot displace retained data packets from the
			// egress buffer.
			if orderFreeControl(p) {
				n.handleOrderFree(p)
			} else if op, err := ctrlOp(p); err == nil && op == opCheckpoint {
				n.cacheCheckpoint(p)
			} else if !n.orphaned {
				_ = n.parentOut.sendNow(p)
			}
			i++
			continue
		}
		j := nextRun(ps, i)
		run := ps[i:j]
		i = j
		n.nw.metrics.PacketsUp.Add(int64(len(run)))
		n.upCount.Add(int64(len(run)))
		tr, start := n.assignArrival(src, len(run))
		ss, ok := n.streams[p.StreamID]
		if !ok {
			// Stream unknown here (e.g. closed): pass through unfiltered,
			// via the shard the id hashes to so late data stays behind a
			// just-dispatched close drain.
			n.shards.upRaw(p.StreamID, run, src, tr, start)
			continue
		}
		n.shards.up(ss, child, run, n.backlogged(), src, tr, start)
	}
	return false
}

// assignArrival allocates in-order arrival indices for a run from src
// (exactly-once mode; nil tracker otherwise). Router-only: assignment
// order must be arrival order.
func (n *node) assignArrival(src *transport.FlowLink, nPkts int) (*inOrder, uint64) {
	if src == nil || n.ackTrack == nil {
		return nil, 0
	}
	t := n.ackTrack[src]
	if t == nil {
		t = &inOrder{}
		n.ackTrack[src] = t
	}
	return t, t.assign(nPkts)
}

// cacheCheckpoint records a descendant's filter-state checkpoint for
// adoption-time composition, then relays it one level further while its
// hop budget lasts — so the state an adopter needs is already at the
// grandparent (and great-grandparent) when the parent dies.
func (n *node) cacheCheckpoint(p *packet.Packet) {
	origin, id, hops, blob, err := parseCheckpoint(p)
	if err != nil {
		return
	}
	m := n.ckpts[origin]
	if m == nil {
		if n.ckpts == nil {
			n.ckpts = map[Rank]map[uint32][]byte{}
		}
		m = map[uint32][]byte{}
		n.ckpts[origin] = m
	}
	m[id] = blob
	if hops > 1 && !n.orphaned {
		_ = n.parentOut.sendNow(ckptPacket(origin, id, hops-1, blob))
	}
}

// backlogged reports whether dispatching to shard workers can pay: more
// than one live stream (otherwise there is nothing to parallelize) and
// frames already waiting in the inbox (the router is the bottleneck).
// When false, the router runs pipelines inline — the exact serial-loop
// fast path, with no mailbox hop and no cross-goroutine wakeup.
func (n *node) backlogged() bool {
	return len(n.streams) > 1 && len(n.inbox) > 0
}

// shardUp runs the upstream pipeline for one run: synchronize, transform,
// egress. Called from the stream's up-lane worker (or the router's inline
// fast path); takes the stream's pipeline lock itself. In exactly-once
// mode replay duplicates are dropped first (retirement still counts them:
// the peer spent credits on the copies too), and the run's deferred
// retirement rides the last forwarded output — consuming it means the run
// is released only when the parent acknowledges those outputs.
func (n *node) shardUp(ss *streamState, child int, run []*packet.Packet, ret *pendRetire) bool {
	ss.pipeMu.Lock()
	defer ss.pipeMu.Unlock()
	if n.nw.xonce() {
		run = ss.dropDups(run, &n.nw.metrics)
	}
	return n.flushBatchesAck(ss, ss.addBatch(child, run), true, ret)
}

// shardUpRaw forwards a pass-through run (stream not carried here); the
// deferred retirement rides the last packet.
func (n *node) shardUpRaw(run []*packet.Packet, ret *pendRetire) bool {
	for i, q := range run {
		if ret != nil && i == len(run)-1 {
			_ = n.parentOut.sendAck(q, 0, true, ret)
		} else {
			_ = n.parentOut.send(q)
		}
	}
	return ret != nil && len(run) > 0 && n.parentOut.xonce
}

// shardDownRaw floods an unknown-stream downstream packet to every child
// (reconfiguration window; flooding is always safe). Runs on the shard
// worker so a window-bounded child queue blocks the pipeline, never the
// router.
func (n *node) shardDownRaw(p *packet.Packet) {
	for _, q := range n.childOut {
		if q != nil {
			_ = q.send(p)
		}
	}
}

// shardDown runs the downstream pipeline for one packet: down-transform
// under the pipeline lock, then multicast to participating children with
// the lock released — the fan-out may block on a child's flow-control
// window, and a blocked fan-out must not pin the stream's upstream lane.
func (n *node) shardDown(ss *streamState, p *packet.Packet) {
	outs := []*packet.Packet{p}
	if ss.downTform != nil {
		ss.pipeMu.Lock()
		transformed, err := ss.downTform.Transform(outs)
		ss.pipeMu.Unlock()
		if err != nil {
			n.nw.metrics.FilterErrors.Add(1)
			return
		}
		outs = transformed
	}
	for _, q := range outs {
		n.sendDownstream(ss, q.WithStream(ss.id))
	}
}

// shardCloseUp is the up half of a stream teardown: release anything the
// synchronizer holds (so time-window policies do not lose data).
func (n *node) shardCloseUp(ss *streamState) {
	ss.pipeMu.Lock()
	defer ss.pipeMu.Unlock()
	n.flushBatchesCtx(ss, ss.drain(), true)
}

// flushBatchesAck is flushBatchesCtx with the run's deferred retirement
// attached to the last forwarded output, reporting whether it was attached
// (false when the batches produced no output — synchronizer holding, every
// packet a duplicate — in which case the caller retires immediately; for
// synchronizer-holding stateful filters that slack is what the checkpoint
// cadence covers, see DESIGN.md §10). Fresh transform outputs are stamped
// with this node's origin sequence; forwarded packets keep their origin
// stamp, which is what lets the front-end recognize a replayed copy of a
// packet a killed intermediary had already forwarded.
func (n *node) flushBatchesAck(ss *streamState, batches [][]*packet.Packet, block bool, ret *pendRetire) bool {
	var outs []*packet.Packet
	for _, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		n.nw.metrics.Batches.Add(1)
		out, err := ss.tform.Transform(batch)
		if err != nil {
			n.nw.metrics.FilterErrors.Add(1)
			continue
		}
		outs = append(outs, out...)
	}
	xonce := n.nw.xonce()
	for i, q := range outs {
		p := q.WithStreamSrc(ss.id, n.rank)
		if xonce && p.Seq == 0 {
			ss.seqCtr++
			p = p.WithSeq(packet.MakeSeq(n.rank, ss.seqCtr))
		}
		if ret != nil && i == len(outs)-1 {
			_ = n.parentOut.sendAck(p, ss.prio, block, ret)
		} else {
			_ = n.parentOut.sendCtx(p, ss.prio, block)
		}
	}
	return ret != nil && len(outs) > 0 && n.parentOut.xonce
}

// shardCloseDown forwards the close downstream behind the stream's prior
// downstream data (its down-lane FIFO position).
func (n *node) shardCloseDown(ss *streamState, p *packet.Packet) {
	n.sendDownstreamNow(ss, p)
}

// shardPoll releases a stream's time-triggered batches.
func (n *node) shardPoll(ss *streamState, now time.Time) {
	ss.pipeMu.Lock()
	defer ss.pipeMu.Unlock()
	n.flushBatchesCtx(ss, ss.poll(now), true)
}

// flushBatches transforms released batches and forwards the results
// upstream from ROUTER context (recovery replay, final drains): it may
// transiently overflow the parent window rather than block the control
// plane. Worker context goes through flushBatchesCtx(…, true).
func (n *node) flushBatches(ss *streamState, batches [][]*packet.Packet) {
	n.flushBatchesCtx(ss, batches, false)
}

// flushBatchesCtx transforms released batches and forwards the results
// upstream. block selects between the pipeline workers' hard window bound
// and the router's overflow mode.
func (n *node) flushBatchesCtx(ss *streamState, batches [][]*packet.Packet, block bool) {
	n.flushBatchesAck(ss, batches, block, nil)
}

// pollEgress releases egress age flushes that have come due. Synchronizer
// windows are polled by the shards that own them.
func (n *node) pollEgress() {
	now := time.Now()
	n.parentOut.pollAge(now)
	for _, q := range n.childOut {
		q.pollAge(now)
	}
}

func (n *node) earliestDeadline() time.Time {
	var d time.Time
	min := func(dd time.Time) {
		if !dd.IsZero() && (d.IsZero() || dd.Before(d)) {
			d = dd
		}
	}
	min(n.parentOut.deadline())
	for _, q := range n.childOut {
		min(q.deadline())
	}
	return d
}

// finish retires the pipeline shards (completing every dispatched item),
// drains every stream upward, flushes every egress queue, and closes the
// node's links. Called once all children have closed during shutdown, so
// the released batches are the final data of the run; the egress drain
// guarantees no packet is stranded in a queue when the links close.
func (n *node) finish() {
	n.shards.drainStop()
	for _, ss := range n.streams {
		n.flushBatches(ss, ss.drain())
	}
	_ = n.parentOut.drain()
	for _, q := range n.childOut {
		_ = q.drain()
	}
	n.closeAll()
}

func (n *node) closeAll() {
	for _, l := range n.ep.Children {
		if l != nil {
			_ = l.Close()
		}
	}
	if n.ep.Parent != nil {
		_ = n.ep.Parent.Close()
	}
}
