package core

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// inMsg is one unit of work for a node's event loop: a frame of packets
// arriving on the parent link (child == -1) or on the child link with the
// given slot. A nil slice signals that the link reached EOF.
type inMsg struct {
	child int
	ps    []*packet.Packet
}

// attachMsg delivers a dynamically created child link together with the
// slot index the live view assigned to it, so the event loop installs it at
// the same index the routing tables use.
type attachMsg struct {
	link transport.Link
	slot int
}

// node is a communication process (or the shell around a back-end, which
// has its own loop in backend.go).
type node struct {
	nw   *Network
	rank Rank
	ep   *transport.Endpoint
	leaf bool
	be   *BackEnd

	streams      map[uint32]*streamState
	shuttingDown bool
	liveChildren int

	// Egress queues, one per link, owned by the event loop. parentOut
	// retains its buffer across a dead parent link on recoverable
	// networks so the packets survive until reparenting.
	parentOut *egressQueue
	childOut  []*egressQueue

	// orphaned is set when the parent link dies without a shutdown
	// announcement on a recoverable network; the node then keeps serving
	// its subtree while it waits for a grandparent adoption (cmdReparent).
	orphaned bool
	// parentGen counts reparents and parentEOFSeen counts parent-link EOFs,
	// so a stale EOF from a replaced link is not mistaken for the death of
	// the current parent.
	parentGen     int
	parentEOFSeen int

	// attachCh delivers links for dynamically attached back-ends
	// (AttachBackEnd); the event loop installs them as new child slots.
	attachCh chan attachMsg
	// cmdCh delivers recovery commands (state snapshot, adoption,
	// reparenting) into the event loop.
	cmdCh chan nodeCmd
	// killCh is closed by Kill to crash the node: the event loop exits
	// immediately, without draining.
	killCh   chan struct{}
	killOnce sync.Once

	// parentMu guards ep.Parent for readers outside the event loop (the
	// heartbeat goroutine); epMu guards ep.Children structure for Kill.
	parentMu sync.RWMutex
	epMu     sync.Mutex
}

// run executes the communication-process event loop: route downstream
// multicasts toward member back-ends, synchronize and transform upstream
// packets, and forward filtered results toward the front-end.
func (n *node) run() {
	if n.leaf {
		n.be.run()
		return
	}
	n.streams = map[uint32]*streamState{}
	inbox := make(chan inMsg, 4*(len(n.ep.Children)+1))

	// Egress queues wrap every link; with batching disabled they forward
	// directly, so the un-batched hot path is unchanged.
	pol := n.nw.cfg.Batch
	n.parentOut = newEgressQueue(n.ep.Parent, pol, &n.nw.metrics, n.nw.recoverable())
	n.childOut = make([]*egressQueue, len(n.ep.Children))
	for i, c := range n.ep.Children {
		n.childOut[i] = newEgressQueue(c, pol, &n.nw.metrics, false)
	}

	// Reader goroutines: one per link, feeding the event loop.
	go readLink(n.ep.Parent, -1, inbox)
	for i, c := range n.ep.Children {
		go readLink(c, i, inbox)
	}
	n.liveChildren = len(n.ep.Children)

	// fast counts consecutive fast-path iterations; the periodic forced
	// slow-path pass bounds how long a busy inbox can defer time-based
	// work (egress age flushes, synchronizer windows, recovery commands).
	fast := 0
	for {
		// Fast path: while messages are ready, handle them without the
		// deadline scan and timer allocation of the full select.
		if fast < 1024 {
			select {
			case m := <-inbox:
				fast++
				if done := n.handle(m); done {
					return
				}
				continue
			case <-n.killCh:
				return // crashed: no drain, links already dropped by Kill
			default:
			}
		}
		fast = 0
		var timer *time.Timer
		var timerC <-chan time.Time
		if d := n.earliestDeadline(); !d.IsZero() {
			wait := time.Until(d)
			if wait <= 0 {
				n.poll()
				continue
			}
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		// An orphan additionally watches for network teardown: nobody can
		// route a shutdown announcement to it until it is adopted.
		var dyingC <-chan struct{}
		if n.orphaned {
			dyingC = n.nw.dying
		}
		select {
		case m := <-inbox:
			if timer != nil {
				timer.Stop()
			}
			if done := n.handle(m); done {
				return
			}
		case a := <-n.attachCh:
			if timer != nil {
				timer.Stop()
			}
			n.addChild(a, inbox)
		case c := <-n.cmdCh:
			if timer != nil {
				timer.Stop()
			}
			n.handleCmd(c, inbox)
		case <-n.killCh:
			if timer != nil {
				timer.Stop()
			}
			return // crashed: no drain, links already dropped by Kill
		case <-dyingC:
			if timer != nil {
				timer.Stop()
			}
			n.finish()
			return
		case <-timerC:
			n.poll()
		}
	}
}

// kill crashes the node: its links are severed abruptly (peers observe
// unexpected EOF, in-flight packets are lost) and the event loop exits.
func (n *node) kill() {
	n.killOnce.Do(func() { close(n.killCh) })
	n.parentMu.RLock()
	parent := n.ep.Parent
	n.parentMu.RUnlock()
	transport.DropLink(parent)
	n.epMu.Lock()
	children := append([]transport.Link(nil), n.ep.Children...)
	n.epMu.Unlock()
	for _, c := range children {
		transport.DropLink(c)
	}
}

// parentLink returns the current parent link; safe outside the event loop.
func (n *node) parentLink() transport.Link {
	n.parentMu.RLock()
	defer n.parentMu.RUnlock()
	return n.ep.Parent
}

// installChild places a link at the given child slot, growing the slice
// with nil placeholders if slots were assigned out of order. The slot's
// egress queue follows the link: a replacement link gets a fresh queue and
// a fenced-off slot (nil link) drops whatever was still queued to the dead
// child.
func (n *node) installChild(slot int, l transport.Link) {
	n.epMu.Lock()
	for len(n.ep.Children) <= slot {
		n.ep.Children = append(n.ep.Children, nil)
	}
	n.ep.Children[slot] = l
	n.epMu.Unlock()
	for len(n.childOut) <= slot {
		n.childOut = append(n.childOut, nil)
	}
	if l == nil {
		n.childOut[slot].clear()
		n.childOut[slot] = nil
		return
	}
	n.childOut[slot] = newEgressQueue(l, n.nw.cfg.Batch, &n.nw.metrics, false)
}

// addChild installs a dynamically attached back-end's link as a new child
// slot. Existing streams do not include the newcomer (their membership was
// fixed at creation); streams created afterwards see it via the updated
// topology snapshot.
func (n *node) addChild(a attachMsg, inbox chan inMsg) {
	n.installChild(a.slot, a.link)
	n.liveChildren++
	for _, ss := range n.streams {
		ss.growSlots(a.slot + 1)
	}
	if n.shuttingDown {
		// The newcomer raced a shutdown: pass the announcement on so it
		// terminates like everyone else.
		_ = a.link.Send(packet.MustNew(packet.TagControl, 0, n.rank, ctrlShutdownFormat, int64(opShutdown)))
	}
	go readLink(a.link, a.slot, inbox)
}

// readLink pumps frames from a link into the inbox, sending a nil-slice
// sentinel at EOF. A nil link (the root's parent) sends nothing. Reading
// whole frames means one inbox message — and one event-loop wakeup — per
// link flush instead of per packet.
func readLink(l transport.Link, slot int, inbox chan<- inMsg) {
	if l == nil {
		return
	}
	for {
		ps, err := transport.RecvBatch(l)
		if err != nil {
			inbox <- inMsg{child: slot, ps: nil}
			return
		}
		inbox <- inMsg{child: slot, ps: ps}
	}
}

// nextRun returns j such that ps[i:j] is a maximal run of data packets on
// ps[i]'s stream: control packets and stream changes end a run, so
// feeding runs to the synchronizer whole preserves exact per-link FIFO
// semantics. Both the node and the front-end ingress split frames with
// this single rule.
func nextRun(ps []*packet.Packet, i int) int {
	j := i + 1
	for j < len(ps) && ps[j].Tag != packet.TagControl && ps[j].StreamID == ps[i].StreamID {
		j++
	}
	return j
}

// handle processes one inbox message, returning true when the node should
// exit.
func (n *node) handle(m inMsg) bool {
	if m.child == -1 {
		return n.handleFromParent(m.ps)
	}
	return n.handleFromChild(m.child, m.ps)
}

func (n *node) handleFromParent(ps []*packet.Packet) bool {
	if ps == nil {
		n.parentEOFSeen++
		if n.parentEOFSeen <= n.parentGen {
			return false // EOF of a link already replaced by reparenting
		}
		if n.nw.recoverable() && !n.shuttingDown {
			// Parent crashed: hold the subtree together and wait for the
			// grandparent to adopt us (the zero-cost recovery model).
			n.orphaned = true
			return false
		}
		// Parent vanished without shutdown: abandon the subtree.
		n.closeAll()
		return true
	}
	for _, p := range ps {
		if p.Tag == packet.TagControl {
			if done := n.handleControl(p); done {
				return true
			}
			continue
		}
		// Downstream data: multicast toward member back-ends, applying the
		// stream's downstream filter (if any) at this level first.
		n.nw.metrics.PacketsDown.Add(1)
		if ss, ok := n.streams[p.StreamID]; ok {
			outs := []*packet.Packet{p}
			if ss.downTform != nil {
				transformed, err := ss.downTform.Transform([]*packet.Packet{p})
				if err != nil {
					n.nw.metrics.FilterErrors.Add(1)
					continue
				}
				outs = transformed
			}
			for _, q := range outs {
				q = q.WithStream(ss.id)
				n.sendDownstream(ss, q)
			}
			continue
		}
		// Unknown stream: flood (control may still be propagating on
		// another path in reconfiguration scenarios; flooding is always
		// safe).
		for _, q := range n.childOut {
			if q != nil {
				_ = q.send(p)
			}
		}
	}
	return false
}

// sendDownstream fans a packet out to the stream's participating children
// through their egress queues.
func (n *node) sendDownstream(ss *streamState, p *packet.Packet) {
	for i, q := range n.childOut {
		if q == nil || i >= len(ss.downChildren) || !ss.downChildren[i] {
			continue
		}
		_ = q.send(p)
	}
}

// sendDownstreamNow fans a control packet out to the stream's
// participating children, flushing each queue so control never waits out a
// batching window (it still keeps its FIFO position behind queued data).
func (n *node) sendDownstreamNow(ss *streamState, p *packet.Packet) {
	for i, q := range n.childOut {
		if q == nil || i >= len(ss.downChildren) || !ss.downChildren[i] {
			continue
		}
		_ = q.sendNow(p)
	}
}

func (n *node) handleControl(p *packet.Packet) bool {
	op, err := ctrlOp(p)
	if err != nil {
		return false
	}
	switch op {
	case opNewStream:
		id, tform, sync, downTform, members, err := parseNewStream(p)
		if err != nil {
			return false
		}
		if _, exists := n.streams[id]; exists {
			// Recovery re-announces streams to adopted subtrees; a node
			// that already carries the stream must keep its filter state.
			return false
		}
		ss, err := newStreamState(n.nw, n.rank, n.nw.registry, id, tform, sync, downTform, members)
		if err != nil {
			// Unknown filter at this node: degrade to pass-through so data
			// still flows; the front-end surfaced the same error to the
			// caller when it validated the stream spec.
			return false
		}
		n.streams[id] = ss
		n.sendDownstreamNow(ss, p)
	case opCloseStream:
		id, err := parseCloseStream(p)
		if err != nil {
			return false
		}
		if ss, ok := n.streams[id]; ok {
			// Release anything the synchronizer holds before forgetting
			// the stream, so time-window policies do not lose data.
			n.flushBatches(ss, ss.drain())
			delete(n.streams, id)
			n.sendDownstreamNow(ss, p)
		}
	case opShutdown:
		n.shuttingDown = true
		for _, q := range n.childOut {
			if q != nil {
				_ = q.sendNow(p)
			}
		}
		if n.liveChildren == 0 {
			n.finish()
			return true
		}
	}
	return false
}

func (n *node) handleFromChild(child int, ps []*packet.Packet) bool {
	if ps == nil {
		n.liveChildren--
		if n.shuttingDown && n.liveChildren == 0 {
			n.finish()
			return true
		}
		return false
	}
	// Walk the frame in arrival order, feeding maximal same-stream runs of
	// data packets to the synchronizer in one call. Control packets and
	// stream changes break runs, so per-link FIFO semantics are exactly
	// those of packet-at-a-time processing.
	for i := 0; i < len(ps); {
		p := ps[i]
		if p.Tag == packet.TagControl {
			// Upstream control (heartbeats today) relays toward the
			// front-end with flush-through: a beacon must never wait out a
			// batching window, or detection latency would compound per
			// level. An orphan drops the relay (the dead parent link
			// would have dropped it anyway) so stale beacons cannot
			// displace retained data packets from the egress buffer.
			if !n.orphaned {
				_ = n.parentOut.sendNow(p)
			}
			i++
			continue
		}
		j := nextRun(ps, i)
		run := ps[i:j]
		i = j
		n.nw.metrics.PacketsUp.Add(int64(len(run)))
		ss, ok := n.streams[p.StreamID]
		if !ok {
			// Stream unknown here (e.g. closed): pass through unfiltered.
			for _, q := range run {
				_ = n.parentOut.send(q)
			}
			continue
		}
		n.flushBatches(ss, ss.addBatch(child, run))
	}
	return false
}

// flushBatches transforms released batches and forwards the results upstream.
func (n *node) flushBatches(ss *streamState, batches [][]*packet.Packet) {
	for _, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		n.nw.metrics.Batches.Add(1)
		out, err := ss.tform.Transform(batch)
		if err != nil {
			n.nw.metrics.FilterErrors.Add(1)
			continue
		}
		for _, q := range out {
			_ = n.parentOut.send(q.WithStreamSrc(ss.id, n.rank))
		}
	}
}

// poll releases everything the passage of time owes: synchronizer windows
// and egress age flushes.
func (n *node) poll() {
	now := time.Now()
	for _, ss := range n.streams {
		n.flushBatches(ss, ss.poll(now))
	}
	n.parentOut.pollAge(now)
	for _, q := range n.childOut {
		q.pollAge(now)
	}
}

func (n *node) earliestDeadline() time.Time {
	var d time.Time
	min := func(dd time.Time) {
		if !dd.IsZero() && (d.IsZero() || dd.Before(d)) {
			d = dd
		}
	}
	for _, ss := range n.streams {
		min(ss.deadline())
	}
	min(n.parentOut.deadline())
	for _, q := range n.childOut {
		min(q.deadline())
	}
	return d
}

// finish drains every stream upward, flushes every egress queue, and
// closes the node's links. Called once all children have closed during
// shutdown, so the released batches are the final data of the run; the
// egress drain guarantees no packet is stranded in a queue when the links
// close.
func (n *node) finish() {
	for _, ss := range n.streams {
		n.flushBatches(ss, ss.drain())
	}
	n.parentOut.drain()
	for _, q := range n.childOut {
		q.drain()
	}
	n.closeAll()
}

func (n *node) closeAll() {
	for _, l := range n.ep.Children {
		if l != nil {
			_ = l.Close()
		}
	}
	if n.ep.Parent != nil {
		_ = n.ep.Parent.Close()
	}
}
