package core

import (
	"repro/internal/packet"
	"repro/internal/transport"
)

// egressSched is the priority-aware egress scheduler used by
// flow-controlled queues. It replaces the plain FIFO buffer with a
// structure that preserves exactly the invariants the overlay needs —
// per-stream FIFO, and order-sensitive control as barriers — while freeing
// everything else for scheduling:
//
//	control lane  order-free control (heartbeat relays) flushes ahead of
//	              everything, so liveness traffic is never pinned behind
//	              credit-stalled data;
//	priority      among data streams sharing the link, higher
//	              StreamSpec.Priority flushes first;
//	round-robin   streams of equal priority alternate packet-for-packet,
//	              so one hot stream cannot starve its siblings.
//
// Order-sensitive control (stream setup/teardown, shutdown) seals the
// current EPOCH: everything enqueued before it flushes first, the barrier
// itself next, then the following epoch — the same FIFO position the flat
// buffer gave it, with scheduling scoped to within an epoch. A stream's
// packets split across epochs still drain in epoch order, so per-stream
// FIFO holds unconditionally.
//
// All methods are called with the owning egressQueue's mu held.
type egressSched struct {
	// retained holds the unsent remainder of a failed flush, already in
	// final wire order; it re-flushes ahead of everything scheduled after
	// it (the packets were logically on the wire when the link died).
	retained []*packet.Packet
	// ctrl is the order-free control lane.
	ctrl []*packet.Packet
	// epochs is the barrier-ordered sequence; the last may be open
	// (barrier == nil) and accepts new data.
	epochs []*schedEpoch
	// count is the total queued packets (data + control + barriers).
	count int
	// data counts the queued data packets alone — the occupancy the link
	// window bounds (control consumes no slots), and what the high-water
	// gauge reports in flow-controlled mode.
	data int
	// freeEpochs and freeStreams recycle drained scheduler scaffolding:
	// steady-state traffic opens and drains an epoch per flush cycle, and
	// without the freelists each cycle would allocate an epoch struct, a
	// stream map, and a stream struct per active stream.
	freeEpochs  []*schedEpoch
	freeStreams []*schedStream
}

// Freelist bounds: epochs recycle at flush cadence so a handful suffices;
// streams scale with concurrent stream count per link.
const (
	maxFreeEpochs  = 8
	maxFreeStreams = 256
)

type schedEpoch struct {
	barrier *packet.Packet
	streams map[uint32]*schedStream
	order   []*schedStream
	rr      int // rotation cursor for equal-priority fairness
	n       int // data packets remaining in the epoch
}

type schedStream struct {
	id   uint32
	prio int
	ps   []*packet.Packet
	off  int
}

func newEgressSched() *egressSched { return &egressSched{} }

// retireAndGrant records that the receiving pipeline finished n inbound
// data packets from fl and, once the link's grant threshold is crossed,
// returns the whole accumulation to the peer as one compact grant —
// sent directly on the link, never through an egress queue, because
// grants are order-free and must not wait behind (possibly stalled)
// data. This is the single implementation of the credit-return protocol,
// shared by shard workers, the front-end router, and BackEnd.Recv.
func retireAndGrant(m *Metrics, fl *transport.FlowLink, n int) {
	if fl == nil || n == 0 {
		return
	}
	if g := fl.Retire(n); g > 0 {
		sendGrant(m, fl, g)
	}
}

// sendGrant builds and sends one credit grant directly on the link, holding
// encoded-body custody across the send so the grant's wire bytes come from
// (and immediately return to) the packet arena — grants are the hottest
// control packets, one per quarter window of data, and would otherwise
// allocate a fresh body each.
func sendGrant(m *Metrics, fl *transport.FlowLink, g int) {
	m.CreditGrants.Add(1)
	p := fl.GrantPacket(g)
	p.RetainEncoded(1)
	_ = fl.Send(p)
	p.ReleaseEncoded()
}

// flushGrant returns a below-threshold retirement accumulation to the
// peer. Receivers call it at their idle points — shard mailbox drained,
// back-end inbox empty — where Retire's quarter-window batching stops
// being a liveness mechanism: nothing further will cross the threshold,
// and a sender throttled by a tenant sub-budget smaller than
// threshold × fan-out is waiting for credits its packets already earned.
// Under load the idle points are never reached and the 4:1 batching is
// untouched.
func flushGrant(m *Metrics, fl *transport.FlowLink) {
	if fl == nil {
		return
	}
	if g := fl.FlushRetired(); g > 0 {
		sendGrant(m, fl, g)
	}
}

// add enqueues p. ctrl marks a sendNow control packet: order-free ops go
// to the control lane, order-sensitive ops seal the open epoch as a
// barrier. Data lands in the open epoch's per-stream FIFO at prio.
func (s *egressSched) add(p *packet.Packet, prio int, ctrl bool) {
	s.count++
	if !ctrl {
		s.data++
	}
	if ctrl && p.Tag == packet.TagControl {
		if op, err := ctrlOp(p); err == nil && op == opHeartbeat {
			s.ctrl = append(s.ctrl, p)
			return
		}
		// Order-sensitive control: seal the open epoch (creating an empty
		// one if nothing is queued — the barrier still orders against
		// whatever comes after).
		e := s.open()
		e.barrier = p
		return
	}
	e := s.open()
	st := e.streams[p.StreamID]
	if st == nil {
		if n := len(s.freeStreams); n > 0 {
			st = s.freeStreams[n-1]
			s.freeStreams[n-1] = nil
			s.freeStreams = s.freeStreams[:n-1]
			st.id, st.prio = p.StreamID, prio
		} else {
			st = &schedStream{id: p.StreamID, prio: prio}
		}
		e.streams[st.id] = st
		e.order = append(e.order, st)
	}
	st.ps = append(st.ps, p)
	e.n++
}

// open returns the tail epoch, creating (or recycling) one if none is open.
func (s *egressSched) open() *schedEpoch {
	if n := len(s.epochs); n > 0 && s.epochs[n-1].barrier == nil {
		return s.epochs[n-1]
	}
	var e *schedEpoch
	if n := len(s.freeEpochs); n > 0 {
		e = s.freeEpochs[n-1]
		s.freeEpochs[n-1] = nil
		s.freeEpochs = s.freeEpochs[:n-1]
	} else {
		e = &schedEpoch{streams: map[uint32]*schedStream{}}
	}
	s.epochs = append(s.epochs, e)
	return e
}

// recycle returns a popped epoch's scaffolding to the freelists, clearing
// every packet reference first so recycled structs never pin memory.
func (s *egressSched) recycle(e *schedEpoch) {
	for i, st := range e.order {
		for j := st.off; j < len(st.ps); j++ {
			st.ps[j] = nil
		}
		st.ps, st.off = st.ps[:0], 0
		if len(s.freeStreams) < maxFreeStreams {
			s.freeStreams = append(s.freeStreams, st)
		}
		e.order[i] = nil
	}
	clear(e.streams)
	e.order = e.order[:0]
	e.rr, e.n, e.barrier = 0, 0, nil
	if len(s.freeEpochs) < maxFreeEpochs {
		s.freeEpochs = append(s.freeEpochs, e)
	}
}

// restore puts the unsent remainder of a failed flush back at the head of
// the schedule, in its already-decided wire order.
func (s *egressSched) restore(ps []*packet.Packet) {
	if len(ps) == 0 {
		return
	}
	s.retained = append(append([]*packet.Packet(nil), ps...), s.retained...)
	s.count += len(ps)
	for _, p := range ps {
		if p.Tag != packet.TagControl {
			s.data++
		}
	}
}

// pick returns the epoch's next data packet source: the first non-empty
// stream of maximal priority in rotation order from the cursor, so equal
// priorities round-robin and higher priorities always win.
func (e *schedEpoch) pick() *schedStream {
	n := len(e.order)
	best, bestPrio := -1, 0
	for i := 0; i < n; i++ {
		idx := (e.rr + i) % n
		st := e.order[idx]
		if st.off >= len(st.ps) {
			continue
		}
		if best == -1 || st.prio > bestPrio {
			best, bestPrio = idx, st.prio
		}
	}
	if best == -1 {
		return nil
	}
	e.rr = best + 1
	return e.order[best]
}

// take selects the next wire batch: retained remainder first, then the
// control lane, then epoch by epoch — streams by priority, round-robin
// within a priority, the epoch's barrier last. With fl non-nil and bypass
// false, one send credit is acquired per data packet; when the peer's
// window runs dry selection stops and stalled reports it (everything not
// selected stays queued exactly where it was). The batch is appended to
// dst (pass the flusher's reusable take buffer, or nil); drained epochs
// and streams return to the scheduler's freelists. Returns the batch, its
// encoded byte total, and how many data packets it carries (their
// occupancy slots are released by the flusher once the wire accepts them).
//
//tbon:allow creditpair credits acquired here transfer to the returned batch: the flusher either sends it or restores it and refunds unsent data credits (failedFlush)
func (s *egressSched) take(fl *transport.FlowLink, bypass bool, dst []*packet.Packet) (ps []*packet.Packet, total, nData int, stalled bool) {
	ps = dst
	needCredit := func() bool { return fl != nil && !bypass }
	// Order-free control first — even ahead of the retained remainder: a
	// credit-stalled retained head must never pin a heartbeat relay.
	for i, p := range s.ctrl {
		ps = append(ps, p)
		total += p.EncodedSize() + 4
		s.count--
		s.ctrl[i] = nil
	}
	s.ctrl = s.ctrl[:0]
	for len(s.retained) > 0 {
		p := s.retained[0]
		if p.Tag != packet.TagControl {
			if needCredit() && !fl.TryAcquire() {
				return ps, total, nData, true
			}
			nData++
			s.data--
		}
		s.retained[0] = nil
		s.retained = s.retained[1:]
		s.count--
		ps = append(ps, p)
		total += p.EncodedSize() + 4
	}
	if len(s.retained) == 0 {
		s.retained = nil
	}
	for len(s.epochs) > 0 {
		e := s.epochs[0]
		for e.n > 0 {
			st := e.pick()
			if st == nil {
				break // defensive: n out of sync cannot wedge the flusher
			}
			if needCredit() && !fl.TryAcquire() {
				return ps, total, nData, true
			}
			p := st.ps[st.off]
			st.ps[st.off] = nil
			st.off++
			if st.off == len(st.ps) {
				st.ps, st.off = st.ps[:0], 0
			}
			e.n--
			s.count--
			s.data--
			nData++
			ps = append(ps, p)
			total += p.EncodedSize() + 4
		}
		if e.barrier != nil {
			ps = append(ps, e.barrier)
			total += e.barrier.EncodedSize() + 4
			e.barrier = nil
			s.count--
		}
		s.epochs[0] = nil
		s.epochs = s.epochs[1:]
		s.recycle(e)
	}
	if len(s.epochs) == 0 {
		s.epochs = nil
	}
	return ps, total, nData, false
}
