//go:build !lossy

package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestOverlappingFailureCreditsOutstanding: an internal node is killed
// mid-stream with credits outstanding on every surrounding link. With
// exactly-once recovery the sender replay rings re-deliver the in-flight
// windows across the adoption, so the scenario's historical "bounded
// loss" allowance is gone: zero burst-A payloads may be lost, and (as
// ever) nothing may be duplicated. Build with -tags lossy for the
// ablation that keeps the old at-most-once bound.
func TestOverlappingFailureCreditsOutstanding(t *testing.T) {
	kinds := []TransportKind{ChanTransport}
	if !testing.Short() {
		kinds = append(kinds, TCPTransport)
	}
	for _, kind := range kinds {
		name := "chan"
		if kind == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			lostA, _ := overlappingFailureCreditsOutstanding(t, kind, true)
			if lostA != 0 {
				t.Errorf("lost %d burst-A payloads, want 0: exactly-once replay must cover the spent windows", lostA)
			}
		})
	}
}

// TestReplayRingBoundedUnderSlowConsumerAndKills extends
// TestSlowConsumerBoundedMemory's property to the replay plane: with
// exactly-once recovery enabled, replay memory per link is priced at
// exactly the credit window, and the bound must hold in the worst case
// for a ring — a consumer draining ~100× slower than the producers
// inject (windows pinned full, every egress queue backed up against its
// bound) while internal nodes are repeatedly killed and re-adopted
// mid-stream. ReplayRingHighWater is the max occupancy any ring in the
// overlay ever reached; it may never exceed LinkWindow, regardless of
// stalls, reparent replays, drains, or kill timing. Delivery must still
// be exact: every payload arrives exactly once.
func TestReplayRingBoundedUnderSlowConsumerAndKills(t *testing.T) {
	kinds := []TransportKind{ChanTransport}
	if !testing.Short() {
		kinds = append(kinds, TCPTransport)
	}
	const window = 8
	perBE := 60
	if testing.Short() {
		perBE = 30
	}
	for _, kind := range kinds {
		name := "chan"
		if kind == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			tree := mustTree(t, "kary:4^2")
			var stID uint32
			start := make(chan struct{})
			nw, err := NewNetwork(Config{
				Topology:    tree,
				Transport:   kind,
				Recoverable: true,
				ExactlyOnce: true,
				// Small frame buffers: the backlog the slow consumer creates
				// must sit in egress queues and replay rings, which is
				// exactly the memory the window prices.
				ChanBuf:    8,
				LinkWindow: window,
				Batch:      BatchPolicy{MaxBatch: 4, MaxDelay: time.Millisecond},
				OnBackEnd: func(be *BackEnd) error {
					<-start
					for i := 0; i < perBE; i++ {
						if err := be.Send(stID, tagQuery, "%d", int64(be.Rank())*1000+int64(i)); err != nil {
							return nil
						}
					}
					_ = be.Flush()
					for {
						if _, err := be.Recv(); err != nil {
							return nil
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			// A tiny delivery buffer plus a sleeping reader makes the
			// front-end the ~100×-slow consumer: deliver() blocks when the
			// buffer is full, backpressuring the shard workers and keeping
			// the credit windows below pinned at their bound.
			st, err := nw.NewStream(StreamSpec{Synchronization: "nullsync", RecvBuffer: 16})
			if err != nil {
				t.Fatal(err)
			}
			stID = st.ID()
			close(start)

			victims := tree.InternalNodes()[:3]
			want := len(tree.Leaves()) * perBE
			got := map[int64]int{}
			var delivered atomic.Int64
			// Repeated kills run beside the reader (adoption quiesces the
			// overlay, and the quiesce needs the slow consumer to keep
			// draining): crash another internal node at every quarter of the
			// run, always mid-traffic with the windows toward the slow
			// front-end spent.
			killErr := make(chan error, 1)
			go func() {
				for i, v := range victims {
					for delivered.Load() < int64((i+1)*want/4) {
						time.Sleep(time.Millisecond)
					}
					if err := nw.Kill(v); err != nil {
						killErr <- err
						return
					}
					if _, err := nw.Adopt(v, nil); err != nil {
						killErr <- err
						return
					}
				}
				killErr <- nil
			}()

			deadline := time.Now().Add(120 * time.Second)
			for have := 0; have < want; have++ {
				p, err := st.RecvTimeout(time.Until(deadline))
				if err != nil {
					t.Fatalf("with %d of %d delivered: %v", have, want, err)
				}
				if v, err := p.Int(0); err == nil {
					got[v]++
				}
				delivered.Store(int64(have + 1))
				time.Sleep(300 * time.Microsecond) // the slow consumer
			}
			if err := <-killErr; err != nil {
				t.Fatal(err)
			}

			m := nw.Metrics()
			hw := m.ReplayRingHighWater.Load()
			if hw > int64(window) {
				t.Errorf("replay ring high water %d exceeds the credit window %d", hw, window)
			}
			for _, leaf := range tree.Leaves() {
				for i := 0; i < perBE; i++ {
					v := int64(leaf)*1000 + int64(i)
					if got[v] != 1 {
						t.Errorf("payload %d delivered %d times, want exactly once", v, got[v])
					}
				}
			}
			if err := nw.Shutdown(); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: ringHW=%d (window %d) kills=%d stalls=%d replayed=%d dups-dropped=%d",
				name, hw, window, len(victims),
				m.CreditStalls.Load(), m.PacketsReplayed.Load(), m.DupsDropped.Load())
		})
	}
}
