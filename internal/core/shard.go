package core

import (
	"sync"
	"time"

	"repro/internal/packet"
)

// The stream-sharded data plane splits each routing process (the front-end
// and every internal communication process) into a thin control-plane
// router and a pool of per-stream pipeline shards:
//
//   - The ROUTER (node.run / feState.run) keeps exclusive ownership of the
//     links and their reader goroutines, the streams table, control-packet
//     handling, attach/recovery commands, and per-link FIFO ingress order.
//     It never runs filters on data packets.
//
//   - Each SHARD owns the filter pipeline — synchronizer → transformation →
//     egress — for a fixed subset of streams (streams hash to shards by
//     stream id), consuming work from a bounded FIFO mailbox fed by the
//     router. A stream's packets are always dispatched to the same shard in
//     arrival order, so per-stream FIFO is preserved while distinct streams
//     filter concurrently on distinct cores.
//
// This is what makes a stream's filter state single-writer: exactly one
// shard goroutine touches a streamState's synchronizer and transformation —
// except inside quiesce, which parks every shard at a barrier so the router
// (recovery snapshots, adoptions, shutdown) can touch everything alone.
//
// Egress queues are shard-safe (their own mutex); FIFO within a queue is
// enqueue order, which keeps control packets behind data the router
// already accepted and per-stream data in order (single shard per stream).

// shardItem kinds.
const (
	itemUp       = iota // upstream data run through the stream's pipeline
	itemUpRaw           // upstream pass-through (stream unknown/closing at this node)
	itemDown            // downstream packet through the stream's down-transform
	itemClose           // drain the stream and forward its close downstream
	itemRegister        // track a new stream for time-based polling
	itemForget          // drop the stream from the shard's poll set (front-end close)
	itemPause           // park at the quiesce barrier until released
	itemStop            // graceful worker exit (drainStop)
)

// shardItem is one unit of mailbox work.
type shardItem struct {
	kind  int
	ss    *streamState
	id    uint32 // stream id for itemUpRaw/itemForget (ss may be nil)
	child int
	ps    []*packet.Packet
	p     *packet.Packet
	pause *shardPause
}

// shardPause is the two-phase quiesce rendezvous: the worker signals
// arrival, then blocks until the router releases the barrier.
type shardPause struct {
	arrived *sync.WaitGroup
	release chan struct{}
}

// shardOps is the per-stream pipeline work a shard executes on behalf of
// its owner; implemented by node (internal processes) and feState (root).
// Calls arrive from exactly one shard goroutine per stream.
type shardOps interface {
	shardUp(ss *streamState, child int, run []*packet.Packet)
	shardUpRaw(run []*packet.Packet)
	shardDown(ss *streamState, p *packet.Packet)
	shardClose(ss *streamState, p *packet.Packet)
	shardPoll(ss *streamState, now time.Time)
}

// shardMailbox bounds each shard's pending work items (an item is a whole
// same-stream run, not a packet). A full mailbox blocks the router — the
// same backpressure a slow serial event loop used to exert on its links.
const shardMailbox = 256

// shardPool runs the pipeline workers for one routing process.
type shardPool struct {
	ops    shardOps
	m      *Metrics
	shards []*shard
	// stop aborts every worker (crash path); drainStop uses per-shard
	// sentinels instead so queued work completes first.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type shard struct {
	pool *shardPool
	in   chan shardItem
	// kick wakes the worker to rescan stream deadlines after the router's
	// inline fast path gave a synchronizer a timer the worker has not
	// seen (the analogue of the egress queues' kick toward the router).
	kick chan struct{}
	// streams tracks the shard's live streams for time-based polling:
	// registered at stream creation, learned from dispatched work, and
	// trimmed by close/forget. Touched only by the worker goroutine.
	streams map[uint32]*streamState
}

// newShardPool starts n pipeline workers for ops. n < 1 is treated as 1;
// n == 1 serializes every stream through a single worker (the pre-sharding
// pipeline order, kept available as the ablation baseline).
func newShardPool(n int, ops shardOps, m *Metrics) *shardPool {
	if n < 1 {
		n = 1
	}
	sp := &shardPool{ops: ops, m: m, stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		sh := &shard{
			pool:    sp,
			in:      make(chan shardItem, shardMailbox),
			kick:    make(chan struct{}, 1),
			streams: map[uint32]*streamState{},
		}
		sp.shards = append(sp.shards, sh)
		sp.wg.Add(1)
		go sh.run()
	}
	return sp
}

// shardFor maps a stream id to its shard. The mapping is pure, so a
// stream's shard is stable for the life of the process — the property that
// makes per-stream FIFO hold without any cross-shard coordination.
func (sp *shardPool) shardFor(id uint32) *shard {
	if len(sp.shards) == 1 {
		return sp.shards[0]
	}
	h := id * 2654435761 // Fibonacci hash: stream ids are sequential
	return sp.shards[h%uint32(len(sp.shards))]
}

// dispatch enqueues an item, giving up only if the pool is aborted (a
// crashed owner whose workers are gone must not wedge the producer).
// Pipeline work counts toward ShardDispatches — the inline-vs-dispatched
// split — while bookkeeping items (register/forget/pause/stop) do not.
func (sp *shardPool) dispatch(sh *shard, it shardItem) {
	switch it.kind {
	case itemUp, itemUpRaw, itemDown, itemClose:
		sp.m.ShardDispatches.Add(1)
	}
	select {
	case sh.in <- it:
	case <-sp.stop:
	}
}

// tryInline is the router's serial-loop fast path: when nothing is
// dispatched for the stream (pending == 0, and the router is the sole
// dispatcher, so nothing can appear concurrently) and the caller reports
// no backlog worth parallelizing, the pipeline runs on the router's own
// goroutine — zero mailbox hops and zero cross-goroutine wakeups, exactly
// the pre-sharding cost. fn runs under the stream's pipeline lock; if it
// leaves the synchronizer with a timer, the stream's shard is kicked to
// pick the deadline up (the worker owns all time-based polling).
func (sp *shardPool) tryInline(ss *streamState, backlogged bool, fn func()) bool {
	if backlogged || ss.pending.Load() != 0 {
		return false
	}
	ss.pipeMu.Lock()
	fn()
	d := ss.deadline()
	ss.pipeMu.Unlock()
	sp.m.ShardInline.Add(1)
	if !d.IsZero() {
		sh := sp.shardFor(ss.id)
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// up routes an upstream run: inline when the stream is idle and the
// router unpressured, else through the stream's shard mailbox.
func (sp *shardPool) up(ss *streamState, child int, run []*packet.Packet, backlogged bool) {
	if sp.tryInline(ss, backlogged, func() { sp.ops.shardUp(ss, child, run) }) {
		return
	}
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemUp, ss: ss, child: child, ps: run})
}

// upRaw routes a pass-through run by stream id alone: the id hashes to the
// same shard that carried the stream while it existed, so data arriving
// behind a close keeps its order relative to the close's drain (always
// dispatched — the close it chases rides the same mailbox).
func (sp *shardPool) upRaw(id uint32, run []*packet.Packet) {
	sp.dispatch(sp.shardFor(id), shardItem{kind: itemUpRaw, id: id, ps: run})
}

// down routes a downstream packet, inline under the same policy as up.
func (sp *shardPool) down(ss *streamState, p *packet.Packet, backlogged bool) {
	if sp.tryInline(ss, backlogged, func() { sp.ops.shardDown(ss, p) }) {
		return
	}
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemDown, ss: ss, p: p})
}

// closeStream always dispatches: the worker must also retire the stream
// from its poll set, and closes are rare. FIFO holds — inline work
// completed synchronously before this enqueue, dispatched work precedes
// it in the mailbox.
func (sp *shardPool) closeStream(ss *streamState, p *packet.Packet) {
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemClose, ss: ss, p: p})
}

// register tracks a just-created stream for time-based polling, so a
// synchronizer window armed by an inline run fires even if no item ever
// reaches the worker.
func (sp *shardPool) register(ss *streamState) {
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemRegister, ss: ss})
}

func (sp *shardPool) forget(id uint32) {
	sp.dispatch(sp.shardFor(id), shardItem{kind: itemForget, id: id})
}

// quiesce parks every shard at a barrier — all work dispatched before the
// call fully processed, no polling — runs fn with the data plane stopped,
// then releases the shards. While fn runs the router's single goroutine is
// the only one touching filter state, which is what lets recovery snapshot
// and rebuild synchronizers, and shutdown propagation keep its exact FIFO
// position behind in-flight data.
func (sp *shardPool) quiesce(fn func()) {
	var arrived sync.WaitGroup
	release := make(chan struct{})
	pause := &shardPause{arrived: &arrived, release: release}
	for _, sh := range sp.shards {
		arrived.Add(1)
		select {
		case sh.in <- shardItem{kind: itemPause, pause: pause}:
		case <-sp.stop:
			arrived.Done() // aborted pool: nothing to park
		}
	}
	arrived.Wait()
	fn()
	close(release)
}

// drainStop retires the workers gracefully: every item already dispatched
// is processed, then each worker exits. Only the owning router may call it
// (it must be the sole remaining dispatcher). The pool is marked stopped
// afterwards so stragglers (a user-goroutine forget racing shutdown)
// cannot block on a mailbox nobody reads.
func (sp *shardPool) drainStop() {
	for _, sh := range sp.shards {
		select {
		case sh.in <- shardItem{kind: itemStop}:
		case <-sp.stop:
		}
	}
	sp.wg.Wait()
	sp.stopOnce.Do(func() { close(sp.stop) })
}

// abort stops the pool without draining (crash/kill paths) and waits for
// the workers to exit; in-flight egress sends fail fast because the
// owner's links are already severed. Idempotent, and a no-op after
// drainStop.
func (sp *shardPool) abort() {
	sp.stopOnce.Do(func() { close(sp.stop) })
	sp.wg.Wait()
}

// run is the shard worker loop: drain ready mailbox items, then wait for
// more work or the earliest synchronizer deadline among this shard's
// streams. The fast-iteration cap bounds how long a busy mailbox can defer
// time-based releases, mirroring the router's loop discipline.
func (sh *shard) run() {
	defer sh.pool.wg.Done()
	fast := 0
	for {
		if fast < 1024 {
			select {
			case it := <-sh.in:
				fast++
				if done := sh.handle(it); done {
					return
				}
				continue
			case <-sh.pool.stop:
				return
			default:
			}
		}
		fast = 0
		var timer *time.Timer
		var timerC <-chan time.Time
		if d := sh.earliestDeadline(); !d.IsZero() {
			wait := time.Until(d)
			if wait <= 0 {
				sh.poll()
				continue
			}
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case it := <-sh.in:
			if timer != nil {
				timer.Stop()
			}
			if done := sh.handle(it); done {
				return
			}
		case <-sh.kick:
			// An inline run armed a synchronizer timer: fall through and
			// rescan deadlines.
			if timer != nil {
				timer.Stop()
			}
		case <-sh.pool.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-timerC:
			sh.poll()
		}
	}
}

// handle executes one mailbox item, returning true when the worker should
// exit. Stream-scoped work takes the stream's pipeline lock (mutual
// exclusion with the router's inline fast path) and releases its pending
// count once done.
func (sh *shard) handle(it shardItem) bool {
	switch it.kind {
	case itemUp:
		sh.track(it.ss)
		it.ss.pipeMu.Lock()
		sh.pool.ops.shardUp(it.ss, it.child, it.ps)
		it.ss.pipeMu.Unlock()
		it.ss.pending.Add(-1)
	case itemUpRaw:
		sh.pool.ops.shardUpRaw(it.ps)
	case itemDown:
		sh.track(it.ss)
		it.ss.pipeMu.Lock()
		sh.pool.ops.shardDown(it.ss, it.p)
		it.ss.pipeMu.Unlock()
		it.ss.pending.Add(-1)
	case itemClose:
		delete(sh.streams, it.ss.id)
		it.ss.pipeMu.Lock()
		sh.pool.ops.shardClose(it.ss, it.p)
		it.ss.pipeMu.Unlock()
		it.ss.pending.Add(-1)
	case itemRegister:
		sh.track(it.ss)
	case itemForget:
		delete(sh.streams, it.id)
	case itemPause:
		it.pause.arrived.Done()
		select {
		case <-it.pause.release:
		case <-sh.pool.stop:
		}
	case itemStop:
		return true
	}
	return false
}

// track adds the stream to the shard's poll set — unless it has been
// closed, so a data item dispatched just before a front-end close cannot
// resurrect a stream its forget item already removed (the dead state
// would otherwise be polled forever).
func (sh *shard) track(ss *streamState) {
	if !ss.closed.Load() {
		sh.streams[ss.id] = ss
	}
}

func (sh *shard) poll() {
	now := time.Now()
	for _, ss := range sh.streams {
		ss.pipeMu.Lock()
		sh.pool.ops.shardPoll(ss, now)
		ss.pipeMu.Unlock()
	}
}

func (sh *shard) earliestDeadline() time.Time {
	var d time.Time
	for _, ss := range sh.streams {
		ss.pipeMu.Lock()
		dd := ss.deadline()
		ss.pipeMu.Unlock()
		if !dd.IsZero() && (d.IsZero() || dd.Before(d)) {
			d = dd
		}
	}
	return d
}
