package core

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// The stream-sharded data plane splits each routing process (the front-end
// and every internal communication process) into a thin control-plane
// router and a pool of per-stream pipeline shards:
//
//   - The ROUTER (node.run / feState.run) keeps exclusive ownership of the
//     links and their reader goroutines, the streams table, control-packet
//     handling, attach/recovery commands, and per-link FIFO ingress order.
//     It never runs filters on data packets.
//
//   - Each SHARD owns the filter pipeline — synchronizer → transformation →
//     egress — for a fixed subset of streams (streams hash to shards by
//     stream id), consuming work from an unbounded FIFO mailbox fed by the
//     router. A stream's packets are always dispatched to the same shard in
//     arrival order, so per-stream FIFO is preserved while distinct streams
//     filter concurrently on distinct cores.
//
// The mailbox being unbounded is what keeps the router a pure control
// plane: dispatch never blocks, so control traffic (recovery commands,
// attach, heartbeat relays, credit grants) can never be head-of-line
// blocked behind a slow pipeline. Mailbox occupancy is still bounded —
// by the flow-control protocol rather than a channel capacity: with
// Config.LinkWindow set, each inbound link can have at most one window of
// un-retired packets in the mailboxes, because the shard worker grants
// credits back only as it finishes items (see retire below). With flow
// control off, the mailbox absorbs whatever the links deliver — the
// pre-credit memory model, kept as the ablation baseline.
//
// This is what makes a stream's filter state single-writer: exactly one
// shard goroutine touches a streamState's synchronizer and transformation —
// except inside quiesce, which parks every shard at a barrier so the router
// (recovery snapshots, adoptions, shutdown) can touch everything alone.
//
// Egress queues are shard-safe (their own mutex); FIFO within a queue is
// enqueue order, which keeps control packets behind data the router
// already accepted and per-stream data in order (single shard per stream).

// shardItem kinds. Each shard runs TWO lanes — upstream and downstream —
// with independent workers, because the directions have no mutual
// ordering requirement and sharing one FIFO would couple them into a
// deadlock under flow control: a down-worker blocked on a slow consumer's
// window must never pin the upstream retirements that very consumer's
// sends are waiting for (the request-reply cycle).
const (
	itemUp        = iota // upstream data run through the stream's pipeline
	itemUpRaw            // upstream pass-through (stream unknown/closing at this node)
	itemDown             // downstream packet through the stream's down-transform
	itemDownRaw          // downstream flood (stream unknown at this node)
	itemCloseUp          // drain the stream's synchronizer (up half of a close)
	itemCloseDown        // forward the close downstream behind prior down data
	itemRegister         // track a new stream for time-based polling
	itemForget           // drop the stream from the shard's poll set (front-end close)
	itemPause            // park at the quiesce barrier until released
	itemStop             // graceful worker exit (drainStop)
)

// shardItem is one unit of mailbox work.
type shardItem struct {
	kind  int
	ss    *streamState
	id    uint32 // stream id for itemUpRaw/itemForget (ss may be nil)
	child int
	ps    []*packet.Packet
	p     *packet.Packet
	pause *shardPause
	// src is the flow-controlled link the work arrived on (nil with flow
	// control off): the worker retires the packets against it once the
	// pipeline has actually finished them, which is what hands the peer
	// its credits back.
	src *transport.FlowLink
	// tr/start are the run's in-order retirement tracker and first arrival
	// index (exactly-once mode, upstream lane only): retirement toward src
	// releases only the contiguous arrival prefix, so the cumulative count
	// in grants stays a true prefix acknowledgement of src's replay ring.
	tr    *inOrder
	start uint64
}

// ret builds the run's deferred-retirement record for the pipeline ops,
// or nil when there is nothing to retire against.
func (it *shardItem) ret() *pendRetire {
	if it.src == nil {
		return nil
	}
	return &pendRetire{src: it.src, tr: it.tr, start: it.start, n: len(it.ps)}
}

// shardPause is the two-phase quiesce rendezvous: the worker signals
// arrival, then blocks until the router releases the barrier.
type shardPause struct {
	arrived *sync.WaitGroup
	release chan struct{}
}

// shardOps is the per-stream pipeline work a shard executes on behalf of
// its owner; implemented by node (internal processes) and feState (root).
// Calls arrive from exactly one up-lane goroutine and one down-lane
// goroutine per stream; each implementation takes the stream's pipeMu
// around its filter-state access itself (never across a blocking egress
// fan-out), which is what lets the two lanes share a stream safely.
// The up-lane ops take the run's deferred-retirement record (nil without
// flow control) and report whether they CONSUMED it — attached it to an
// egress packet whose downstream acknowledgement will complete it
// (exactly-once mode). An unconsumed record is retired by the shard
// immediately after the call, the pre-exactly-once behavior.
type shardOps interface {
	shardUp(ss *streamState, child int, run []*packet.Packet, ret *pendRetire) bool
	shardUpRaw(run []*packet.Packet, ret *pendRetire) bool
	shardDown(ss *streamState, p *packet.Packet)
	shardDownRaw(p *packet.Packet)
	shardCloseUp(ss *streamState)
	shardCloseDown(ss *streamState, p *packet.Packet)
	shardPoll(ss *streamState, now time.Time)
}

// shardPool runs the pipeline workers for one routing process.
type shardPool struct {
	ops    shardOps
	m      *Metrics
	shards []*shard
	// noInline disables the router's inline fast path. Flow-controlled
	// networks set it: pipeline execution can block on a link window, and
	// the router must never block — workers absorb the waiting instead.
	noInline bool
	// stop aborts every worker (crash path); drainStop uses per-shard
	// sentinels instead so queued work completes first.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// lane is one unbounded FIFO mailbox. notify (capacity 1) wakes the
// lane's worker after a push; spurious wakeups are cheap and lost ones
// impossible (push always leaves either a token or a visible item).
type lane struct {
	mu     sync.Mutex
	q      []shardItem
	notify chan struct{}
	// qHW is the lane's high-water mark, mirrored into the global gauge
	// only on new records.
	qHW int
}

type shard struct {
	pool *shardPool
	// up carries upstream pipeline work (plus stream bookkeeping); down
	// carries downstream fan-out work. Independent workers drain them, so
	// a down fan-out blocked on a slow consumer's window cannot pin the
	// upstream retirements that consumer's own sends wait for.
	up, down lane
	// kick wakes the up worker to rescan stream deadlines after the
	// router's inline fast path gave a synchronizer a timer the worker has
	// not seen (the analogue of the egress queues' kick toward the router).
	kick chan struct{}
	// streams tracks the shard's live streams for time-based polling:
	// registered at stream creation, learned from dispatched work, and
	// trimmed by close/forget. Touched only by the up-lane goroutine.
	streams map[uint32]*streamState
	// upPend / downPend track the links each lane retired against since its
	// last idle flush; when a lane's mailbox drains, the below-threshold
	// retirement accumulations on these links are granted back (see
	// flushGrant). Each set is touched only by its own lane goroutine.
	upPend, downPend map[*transport.FlowLink]struct{}
}

// newShardPool starts n pipeline workers for ops. n < 1 is treated as 1;
// n == 1 serializes every stream through a single worker (the pre-sharding
// pipeline order, kept available as the ablation baseline).
func newShardPool(n int, ops shardOps, m *Metrics) *shardPool {
	if n < 1 {
		n = 1
	}
	sp := &shardPool{ops: ops, m: m, stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		sh := &shard{
			pool:     sp,
			kick:     make(chan struct{}, 1),
			streams:  map[uint32]*streamState{},
			upPend:   map[*transport.FlowLink]struct{}{},
			downPend: map[*transport.FlowLink]struct{}{},
		}
		sh.up.notify = make(chan struct{}, 1)
		sh.down.notify = make(chan struct{}, 1)
		sp.shards = append(sp.shards, sh)
		sp.wg.Add(2)
		go sh.runUp()
		go sh.runDown()
	}
	return sp
}

// shardFor maps a stream id to its shard. The mapping is pure, so a
// stream's shard is stable for the life of the process — the property that
// makes per-stream FIFO hold without any cross-shard coordination.
func (sp *shardPool) shardFor(id uint32) *shard {
	if len(sp.shards) == 1 {
		return sp.shards[0]
	}
	h := id * 2654435761 // Fibonacci hash: stream ids are sequential
	return sp.shards[h%uint32(len(sp.shards))]
}

// push appends an item to the lane and wakes its worker. Never blocks:
// the lane is unbounded (see the package comment for why its occupancy
// is still bounded under flow control).
func (ln *lane) push(m *Metrics, it shardItem) {
	ln.mu.Lock()
	ln.q = append(ln.q, it)
	n := len(ln.q)
	grew := n > ln.qHW
	if grew {
		ln.qHW = n
	}
	ln.mu.Unlock()
	if grew {
		noteShardDepth(m, n)
	}
	select {
	case ln.notify <- struct{}{}:
	default:
	}
}

// pop removes the lane head.
func (ln *lane) pop() (shardItem, bool) {
	ln.mu.Lock()
	if len(ln.q) == 0 {
		ln.mu.Unlock()
		return shardItem{}, false
	}
	it := ln.q[0]
	ln.q[0] = shardItem{}
	ln.q = ln.q[1:]
	if len(ln.q) == 0 {
		ln.q = nil // release the drained backing array
	}
	ln.mu.Unlock()
	return it, true
}

// noteShardDepth maintains the global mailbox high-water gauge.
func noteShardDepth(m *Metrics, d int) {
	for {
		cur := m.ShardQueueHighWater.Load()
		if int64(d) <= cur || m.ShardQueueHighWater.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// laneFor routes an item kind to its lane.
func (sh *shard) laneFor(kind int) *lane {
	switch kind {
	case itemDown, itemDownRaw, itemCloseDown:
		return &sh.down
	}
	return &sh.up
}

// dispatch enqueues an item on its direction's lane. Pipeline work counts
// toward ShardDispatches — the inline-vs-dispatched split — while
// bookkeeping items (register/forget/pause/stop) do not.
func (sp *shardPool) dispatch(sh *shard, it shardItem) {
	switch it.kind {
	case itemUp, itemUpRaw, itemDown, itemDownRaw, itemCloseUp, itemCloseDown:
		sp.m.ShardDispatches.Add(1)
	}
	sh.laneFor(it.kind).push(sp.m, it)
}

// tryInline is the router's serial-loop fast path: when nothing is
// dispatched for the stream (pending == 0, and the router is the sole
// dispatcher, so nothing can appear concurrently) and the caller reports
// no backlog worth parallelizing, the pipeline runs on the router's own
// goroutine — zero mailbox hops and zero cross-goroutine wakeups, exactly
// the pre-sharding cost. fn takes the stream's pipeline lock itself (the
// shardOps contract); if it leaves the synchronizer with a timer, the
// stream's shard is kicked to pick the deadline up (the up worker owns
// all time-based polling). Flow-controlled pools never inline: the
// pipeline may block on a link window, and the router must stay
// unblockable.
func (sp *shardPool) tryInline(ss *streamState, backlogged bool, fn func()) bool {
	if sp.noInline || backlogged || ss.pending.Load() != 0 {
		return false
	}
	fn()
	ss.pipeMu.Lock()
	d := ss.deadline()
	ss.pipeMu.Unlock()
	sp.m.ShardInline.Add(1)
	if !d.IsZero() {
		sh := sp.shardFor(ss.id)
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// up routes an upstream run: inline when the stream is idle and the
// router unpressured, else through the stream's shard mailbox.
func (sp *shardPool) up(ss *streamState, child int, run []*packet.Packet, backlogged bool, src *transport.FlowLink, tr *inOrder, start uint64) {
	if src == nil && sp.tryInline(ss, backlogged, func() { sp.ops.shardUp(ss, child, run, nil) }) {
		return
	}
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemUp, ss: ss, child: child, ps: run, src: src, tr: tr, start: start})
}

// upRaw routes a pass-through run by stream id alone: the id hashes to the
// same shard that carried the stream while it existed, so data arriving
// behind a close keeps its order relative to the close's drain (always
// dispatched — the close it chases rides the same mailbox).
func (sp *shardPool) upRaw(id uint32, run []*packet.Packet, src *transport.FlowLink, tr *inOrder, start uint64) {
	sp.dispatch(sp.shardFor(id), shardItem{kind: itemUpRaw, id: id, ps: run, src: src, tr: tr, start: start})
}

// down routes a downstream packet, inline under the same policy as up.
func (sp *shardPool) down(ss *streamState, p *packet.Packet, backlogged bool, src *transport.FlowLink) {
	if src == nil && sp.tryInline(ss, backlogged, func() { sp.ops.shardDown(ss, p) }) {
		return
	}
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemDown, ss: ss, p: p, src: src})
}

// downRaw routes an unknown-stream downstream flood through the id's
// shard, keeping the router off the (possibly window-bounded) egress path.
func (sp *shardPool) downRaw(id uint32, p *packet.Packet, src *transport.FlowLink) {
	sp.dispatch(sp.shardFor(id), shardItem{kind: itemDownRaw, id: id, p: p, src: src})
}

// closeStream always dispatches: the up worker must also retire the
// stream from its poll set, and closes are rare. The close splits across
// the lanes — the synchronizer drain rides the up lane (behind every
// prior upstream run) and the downstream forward rides the down lane
// (behind every prior downstream packet); the halves carry no mutual
// ordering requirement.
func (sp *shardPool) closeStream(ss *streamState, p *packet.Packet) {
	ss.pending.Add(2)
	sh := sp.shardFor(ss.id)
	sp.dispatch(sh, shardItem{kind: itemCloseUp, ss: ss})
	sp.dispatch(sh, shardItem{kind: itemCloseDown, ss: ss, p: p})
}

// closeStreamUp dispatches only the up half of a stream teardown, used by
// session bulk close: the synchronizer still drains behind every upstream
// run dispatched before it (same mailbox FIFO as closeStream), but no
// per-stream close is forwarded downstream — the single flooded
// opCloseSession packet that triggered this already carries the teardown
// to every child.
func (sp *shardPool) closeStreamUp(ss *streamState) {
	ss.pending.Add(1)
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemCloseUp, ss: ss})
}

// register tracks a just-created stream for time-based polling, so a
// synchronizer window armed by an inline run fires even if no item ever
// reaches the worker.
func (sp *shardPool) register(ss *streamState) {
	sp.dispatch(sp.shardFor(ss.id), shardItem{kind: itemRegister, ss: ss})
}

func (sp *shardPool) forget(id uint32) {
	sp.dispatch(sp.shardFor(id), shardItem{kind: itemForget, id: id})
}

// quiesce parks every shard at a barrier — all work dispatched before the
// call fully processed, no polling — runs fn with the data plane stopped,
// then releases the shards. While fn runs the router's single goroutine is
// the only one touching filter state, which is what lets recovery snapshot
// and rebuild synchronizers, and shutdown propagation keep its exact FIFO
// position behind in-flight data.
func (sp *shardPool) quiesce(fn func()) {
	select {
	case <-sp.stop:
		fn() // aborted pool: the workers are gone, nothing to park
		return
	default:
	}
	var arrived sync.WaitGroup
	release := make(chan struct{})
	pause := &shardPause{arrived: &arrived, release: release}
	for _, sh := range sp.shards {
		arrived.Add(2)
		sh.up.push(sp.m, shardItem{kind: itemPause, pause: pause})
		sh.down.push(sp.m, shardItem{kind: itemPause, pause: pause})
	}
	arrived.Wait()
	fn()
	close(release)
}

// drainStop retires the workers gracefully: every item already dispatched
// is processed, then each worker exits. Only the owning router may call it
// (it must be the sole remaining dispatcher). The pool is marked stopped
// afterwards so stragglers (a user-goroutine forget racing shutdown)
// cannot wedge on state nobody owns.
func (sp *shardPool) drainStop() {
	for _, sh := range sp.shards {
		sh.up.push(sp.m, shardItem{kind: itemStop})
		sh.down.push(sp.m, shardItem{kind: itemStop})
	}
	sp.wg.Wait()
	sp.stopOnce.Do(func() { close(sp.stop) })
}

// abort stops the pool without draining (crash/kill paths) and waits for
// the workers to exit; in-flight egress sends fail fast because the
// owner's links are already severed. Idempotent, and a no-op after
// drainStop.
func (sp *shardPool) abort() {
	sp.stopOnce.Do(func() { close(sp.stop) })
	sp.wg.Wait()
}

// runUp is the up-lane worker loop: drain ready items, then wait for more
// work or the earliest synchronizer deadline among this shard's streams
// (all time-based polling lives on the up lane — synchronizer windows are
// upstream state). The fast-iteration cap bounds how long a busy mailbox
// can defer time-based releases, mirroring the router's loop discipline.
func (sh *shard) runUp() {
	defer sh.pool.wg.Done()
	fast := 0
	for {
		if fast < 1024 {
			if it, ok := sh.up.pop(); ok {
				fast++
				if done := sh.handleUp(it); done {
					return
				}
				continue
			}
			// Mailbox drained: nothing further will push the lane's
			// retirement accumulations over the grant threshold, so return
			// them to the peers now (budget-limited senders may be waiting).
			sh.flushPend(sh.upPend)
			select {
			case <-sh.pool.stop:
				return
			default:
			}
		}
		fast = 0
		var timer *time.Timer
		var timerC <-chan time.Time
		if d := sh.earliestDeadline(); !d.IsZero() {
			wait := time.Until(d)
			if wait <= 0 {
				sh.poll()
				continue
			}
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-sh.up.notify:
			// New mailbox items: loop back and pop them.
			if timer != nil {
				timer.Stop()
			}
		case <-sh.kick:
			// An inline run armed a synchronizer timer: fall through and
			// rescan deadlines.
			if timer != nil {
				timer.Stop()
			}
		case <-sh.pool.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-timerC:
			sh.poll()
		}
	}
}

// runDown is the down-lane worker loop: pure FIFO over downstream
// fan-outs, no timers (downstream filters hold no windowed state).
func (sh *shard) runDown() {
	defer sh.pool.wg.Done()
	for {
		if it, ok := sh.down.pop(); ok {
			if done := sh.handleDown(it); done {
				return
			}
			continue
		}
		// Mailbox drained: grant back the lane's below-threshold
		// retirements before sleeping (see runUp).
		sh.flushPend(sh.downPend)
		select {
		case <-sh.down.notify:
		case <-sh.pool.stop:
			return
		}
	}
}

// retire hands the peer its credits back for n finished inbound packets
// (see retireAndGrant), remembering the link in the lane's pending set so
// an idle flush can return whatever accumulation stays below threshold.
func (sh *shard) retire(pend map[*transport.FlowLink]struct{}, fl *transport.FlowLink, n int) {
	if fl == nil || n == 0 {
		return
	}
	retireAndGrant(sh.pool.m, fl, n)
	pend[fl] = struct{}{}
}

// retireOrdered retires an up-lane run whose deferred-retirement record
// the ops did not consume (no exactly-once, or the run produced no
// downstream output): with a tracker, only the newly contiguous arrival
// prefix is released.
func (sh *shard) retireOrdered(pend map[*transport.FlowLink]struct{}, it shardItem) {
	if it.src == nil {
		return
	}
	n := len(it.ps)
	if it.tr != nil {
		n = it.tr.complete(it.start, n)
	}
	sh.retire(pend, it.src, n)
}

// flushPend grants back the below-threshold retirements accumulated on
// every link the lane touched since its last idle point.
func (sh *shard) flushPend(pend map[*transport.FlowLink]struct{}) {
	for fl := range pend {
		flushGrant(sh.pool.m, fl)
		delete(pend, fl)
	}
}

// handleUp executes one up-lane item, returning true when the worker
// should exit. The ops take the stream's pipeline lock internally; the
// item releases its pending count once done, and flow-controlled items
// then retire against their source link — the packets are finished only
// now, which is what makes the grant a statement about pipeline progress
// rather than queue occupancy.
func (sh *shard) handleUp(it shardItem) bool {
	switch it.kind {
	case itemUp:
		sh.track(it.ss)
		consumed := sh.pool.ops.shardUp(it.ss, it.child, it.ps, it.ret())
		it.ss.pending.Add(-1)
		if !consumed {
			sh.retireOrdered(sh.upPend, it)
		}
	case itemUpRaw:
		if !sh.pool.ops.shardUpRaw(it.ps, it.ret()) {
			sh.retireOrdered(sh.upPend, it)
		}
	case itemCloseUp:
		delete(sh.streams, it.ss.id)
		sh.pool.ops.shardCloseUp(it.ss)
		it.ss.pending.Add(-1)
	case itemRegister:
		sh.track(it.ss)
	case itemForget:
		delete(sh.streams, it.id)
	case itemPause:
		it.pause.arrived.Done()
		select {
		case <-it.pause.release:
		case <-sh.pool.stop:
		}
	case itemStop:
		return true
	}
	return false
}

// handleDown executes one down-lane item.
func (sh *shard) handleDown(it shardItem) bool {
	switch it.kind {
	case itemDown:
		sh.pool.ops.shardDown(it.ss, it.p)
		it.ss.pending.Add(-1)
		sh.retire(sh.downPend, it.src, 1)
	case itemDownRaw:
		sh.pool.ops.shardDownRaw(it.p)
		sh.retire(sh.downPend, it.src, 1)
	case itemCloseDown:
		sh.pool.ops.shardCloseDown(it.ss, it.p)
		it.ss.pending.Add(-1)
	case itemPause:
		it.pause.arrived.Done()
		select {
		case <-it.pause.release:
		case <-sh.pool.stop:
		}
	case itemStop:
		return true
	}
	return false
}

// track adds the stream to the shard's poll set — unless it has been
// closed, so a data item dispatched just before a front-end close cannot
// resurrect a stream its forget item already removed (the dead state
// would otherwise be polled forever).
func (sh *shard) track(ss *streamState) {
	if !ss.closed.Load() {
		sh.streams[ss.id] = ss
	}
}

func (sh *shard) poll() {
	now := time.Now()
	for _, ss := range sh.streams {
		sh.pool.ops.shardPoll(ss, now)
	}
}

func (sh *shard) earliestDeadline() time.Time {
	var d time.Time
	for _, ss := range sh.streams {
		ss.pipeMu.Lock()
		dd := ss.deadline()
		ss.pipeMu.Unlock()
		if !dd.IsZero() && (d.IsZero() || dd.Before(d)) {
			d = dd
		}
	}
	return d
}
