package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

// TestPerStreamFIFOUnder64ConcurrentStreams pins the sharded data plane's
// core invariant: with many streams filtering concurrently across a small
// shard pool, every stream individually still delivers in strict request
// order. kary:8^2 gives two routing levels (root + 8 internal processes),
// so runs cross two shard dispatches plus batched frames on every path.
func TestPerStreamFIFOUnder64ConcurrentStreams(t *testing.T) {
	const (
		streams = 64
		rounds  = 20
	)
	nw, err := NewNetwork(Config{
		Topology: mustTree(t, "kary:8^2"),
		Shards:   4,
		Batch:    BatchPolicy{MaxBatch: 16, MaxDelay: time.Millisecond},
		OnBackEnd: func(be *BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				v, _ := p.Int(0)
				if err := be.Send(p.StreamID, p.Tag, "%d", v); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		st, err := nw.NewStream(StreamSpec{
			Transformation:  "max",
			Synchronization: "waitforall",
			RecvBuffer:      rounds + 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int, st *Stream) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Multicast(tagQuery, "%d", int64(r)); err != nil {
					errs <- fmt.Errorf("stream %d round %d multicast: %w", s, r, err)
					return
				}
			}
			for r := 0; r < rounds; r++ {
				p, err := st.RecvTimeout(60 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("stream %d round %d recv: %w", s, r, err)
					return
				}
				if v, _ := p.Int(0); v != int64(r) {
					errs <- fmt.Errorf("stream %d delivered %d at round %d: per-stream FIFO violated", s, v, r)
					return
				}
			}
		}(s, st)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	dispatched := nw.Metrics().ShardDispatches.Load()
	inline := nw.Metrics().ShardInline.Load()
	t.Logf("pipeline runs: %d dispatched, %d inline", dispatched, inline)
	if dispatched == 0 {
		t.Error("ShardDispatches = 0; 64 backlogged streams never spilled to the shard workers")
	}
}

// TestSingleStreamRunsInline pins the adaptive inline fast path: with one
// live stream there is nothing to parallelize, so the routers must run
// the pipeline on their own goroutines (the serial-loop cost) rather than
// paying mailbox hops.
func TestSingleStreamRunsInline(t *testing.T) {
	nw := echoValue(t, mustTree(t, "kary:4^2"), ChanTransport)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := st.RecvTimeout(30 * time.Second); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	m := nw.Metrics()
	if m.ShardInline.Load() == 0 {
		t.Error("ShardInline = 0: single-stream traffic never took the inline fast path")
	}
}

// TestSoakShardingEquivalence is the sharding acceptance soak: the same
// multi-stream workload (concurrent sum reductions plus a suppressing
// eqclass stream) run serially (Shards: 1, the pre-sharding pipeline
// order) and sharded (Shards: 4) must produce eqclass-identical results —
// identical per-round reduction sequences and identical equivalence-class
// sets — on both link fabrics.
func TestSoakShardingEquivalence(t *testing.T) {
	batch := BatchPolicy{MaxBatch: 32, MaxDelay: 2 * time.Millisecond, Adaptive: true}
	fabrics := []struct {
		name  string
		kind  TransportKind
		shape string
	}{
		{"chan", ChanTransport, "kary:8^2"},
		{"tcp", TCPTransport, "kary:4^2"},
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			leaves := len(mustTree(t, f.shape).Leaves())
			const sumStreams = 4
			pkts := 5000
			if testing.Short() {
				pkts = 1500
			}
			rounds := (pkts + sumStreams*leaves - 1) / (sumStreams * leaves)
			if rounds < 2 {
				rounds = 2
			}
			serial := runSoak(t, f.shape, sumStreams, rounds,
				Config{Transport: f.kind, Batch: batch, Shards: 1})
			sharded := runSoak(t, f.shape, sumStreams, rounds,
				Config{Transport: f.kind, Batch: batch, Shards: 4})
			if t.Failed() {
				return
			}
			compareSoaks(t, serial, sharded, sumStreams)
		})
	}
}

// TestMulticastEncodesOnceTCP pins the encode-once multicast path: a packet
// fanned out to k TCP child links is serialized exactly once (the links
// share the packet's cached wire bytes), so the encode count for N
// multicasts to 8 back-ends stays O(N), not O(8N).
func TestMulticastEncodesOnceTCP(t *testing.T) {
	const (
		fanout = 8
		rounds = 50
	)
	nw, err := NewNetwork(Config{
		Topology:  mustTree(t, fmt.Sprintf("flat:%d", fanout)),
		Transport: TCPTransport,
		OnBackEnd: func(be *BackEnd) error {
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStream(StreamSpec{})
	if err != nil {
		t.Fatal(err)
	}
	before := packet.WireEncodes()
	for r := 0; r < rounds; r++ {
		if err := st.Multicast(tagQuery, "%d", int64(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for every back-end to consume everything so all sends happened.
	deadline := time.Now().Add(30 * time.Second)
	for nw.Metrics().PacketsDown.Load() < int64(rounds*fanout) {
		if time.Now().After(deadline) {
			t.Fatalf("back-ends consumed %d of %d packets", nw.Metrics().PacketsDown.Load(), rounds*fanout)
		}
		time.Sleep(time.Millisecond)
	}
	delta := packet.WireEncodes() - before
	if err := nw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if delta < rounds {
		t.Fatalf("encode count %d below packet count %d; counter broken", delta, rounds)
	}
	// Serial re-encoding would cost ~rounds*fanout; encode-once costs
	// ~rounds plus a handful of control packets.
	if max := int64(rounds + 10); delta > max {
		t.Errorf("%d multicasts to %d children cost %d encodes, want <= %d (encode-once)",
			rounds, fanout, delta, max)
	}
}

// TestNoGoroutineLeakAfterShutdown verifies every goroutine the engine
// spawns — link readers, shard workers, heartbeat loops, back-end handlers
// — terminates on all router exit paths: graceful shutdown, a killed
// process (no drain), and recovery rewiring, on both fabrics.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	fabrics := []struct {
		name string
		kind TransportKind
	}{
		{"chan", ChanTransport},
		{"tcp", TCPTransport},
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			before := settledGoroutines(t, runtime.NumGoroutine())
			nw, err := NewNetwork(Config{
				Topology:        mustTree(t, "kary:3^2"),
				Transport:       f.kind,
				Recoverable:     true,
				HeartbeatPeriod: 5 * time.Millisecond,
				Shards:          4, // multi-worker data plane regardless of core count
				Batch:           BatchPolicy{MaxBatch: 16, MaxDelay: time.Millisecond},
				OnBackEnd: func(be *BackEnd) error {
					for {
						p, err := be.Recv()
						if err != nil {
							return nil
						}
						// Orphaned sends fail until adoption; ignore.
						_ = be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank()))
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
			if err != nil {
				t.Fatal(err)
			}
			round := func() {
				if err := st.Multicast(tagQuery, "%d", int64(1)); err != nil {
					t.Fatal(err)
				}
				if _, err := st.RecvTimeout(30 * time.Second); err != nil {
					t.Fatal(err)
				}
			}
			round()
			// Kill an internal node mid-run (readers + shard workers of the
			// victim must die without a drain), recover, keep flowing.
			victim := nw.Tree().InternalNodes()[0]
			if err := nw.Kill(victim); err != nil {
				t.Fatal(err)
			}
			if _, err := nw.Adopt(victim, nil); err != nil {
				t.Fatal(err)
			}
			round()
			if err := nw.Shutdown(); err != nil {
				t.Fatal(err)
			}
			after := settledGoroutines(t, before+2)
			if after > before+2 {
				t.Errorf("goroutines: %d before, %d after shutdown — readers or workers leaked", before, after)
			}
		})
	}
}

// settledGoroutines polls until the goroutine count stops above target or
// stabilizes, giving exiting goroutines (prior tests' teardowns included)
// time to unwind before we baseline or assert.
func settledGoroutines(t *testing.T, target int) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= target {
			return n
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	return n
}
