package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// drainLink collects n packets from l, failing the test on EOF/timeout.
func drainLink(t *testing.T, l transport.Link, n int) []*packet.Packet {
	t.Helper()
	out := make([]*packet.Packet, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(out) < n {
			ps, err := transport.RecvBatch(l)
			if err != nil {
				return
			}
			out = append(out, ps...)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("drained only %d of %d packets", len(out), n)
	}
	if len(out) != n {
		t.Fatalf("drained %d packets, want %d", len(out), n)
	}
	return out
}

// TestAdaptiveWindowUnchangedOnFailedFlush is the regression test for the
// flush/adapt ordering bug: a dead-link retry loop (retained buffer,
// recoverable owner) used to mutate the adaptive window on every failed
// flush — size-cause retries inflated it, age-cause retries collapsed it
// to 1 — even though nothing was sent.
func TestAdaptiveWindowUnchangedOnFailedFlush(t *testing.T) {
	a, b := transport.NewPair(4)
	pol := BatchPolicy{MaxBatch: 8, MaxDelay: time.Millisecond, Adaptive: true}.normalized()
	var m Metrics
	q := newEgressQueue(a, pol, &m, true, nil)
	if q.window != 2 {
		t.Fatalf("adaptive start window = %d, want 2", q.window)
	}
	transport.DropLink(b) // the parent "crashes"

	// Fill the window: the size flush fails, retains, and must not grow
	// the window.
	for i := 0; i < 2; i++ {
		_ = q.send(packet.MustNew(tagQuery, 1, 5, "%d", int64(i)))
	}
	if q.window != 2 {
		t.Errorf("window after failed size flush = %d, want 2", q.window)
	}
	// Age-flush retries against the dead link must not shrink it either.
	for i := 0; i < 5; i++ {
		q.oldest = time.Now().Add(-time.Second) // force the deadline past
		q.pollAge(time.Now())
	}
	if q.window != 2 {
		t.Errorf("window after failed age retries = %d, want 2", q.window)
	}
	if len(q.buf) != 2 {
		t.Fatalf("retained %d packets, want 2", len(q.buf))
	}

	// Reparent onto a live link: the drain re-flushes the retained data,
	// and subsequent successful size flushes adapt again.
	na, nb := transport.NewPair(4)
	q.setLink(na)
	got := drainLink(t, nb, 2)
	for i, p := range got {
		if v, _ := p.Int(0); v != int64(i) {
			t.Errorf("packet %d carries %d; retained order lost", i, v)
		}
	}
	for i := 0; i < 2; i++ {
		_ = q.send(packet.MustNew(tagQuery, 1, 5, "%d", int64(i)))
	}
	drainLink(t, nb, 2)
	if q.window != 4 {
		t.Errorf("window after successful size flush = %d, want 4", q.window)
	}
}

// TestControlKeepsFIFOAcrossFrameSplit pins the frame-splitting FIFO
// invariant: a sendNow control packet queued behind more data than one
// wire frame may carry keeps its position across the multi-frame split —
// it flushes immediately but never overtakes the data queued before it.
// maxEgressFrameBytes is shrunk so the split happens without queueing
// 256 MiB.
func TestControlKeepsFIFOAcrossFrameSplit(t *testing.T) {
	old := maxEgressFrameBytes
	maxEgressFrameBytes = 4096
	defer func() { maxEgressFrameBytes = old }()

	a, b := transport.NewPair(64)
	pol := BatchPolicy{MaxBatch: 1 << 16, MaxDelay: time.Hour}.normalized()
	var m Metrics
	q := newEgressQueue(a, pol, &m, false, nil)

	payload := strings.Repeat("x", 512)
	const data = 7 // ~3.6 KiB encoded: just under the shrunk frame bound
	for i := 0; i < data; i++ {
		if err := q.send(packet.MustNew(tagQuery, 1, 5, "%d %s", int64(i), payload)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FramesSent.Load(); got != 0 {
		t.Fatalf("data flushed early (%d frames); the test needs it queued", got)
	}
	ctrl := packet.MustNew(packet.TagControl, 0, 5, "%d %s", int64(99), payload)
	if err := q.sendNow(ctrl); err != nil {
		t.Fatal(err)
	}
	if got := m.FramesSent.Load(); got < 2 {
		t.Fatalf("control flush sent %d frames, want a >=2-frame split", got)
	}

	got := drainLink(t, b, data+1)
	for i := 0; i < data; i++ {
		if got[i].Tag == packet.TagControl {
			t.Fatalf("control packet overtook data at position %d", i)
		}
		if v, _ := got[i].Int(0); v != int64(i) {
			t.Errorf("data packet %d carries %d; FIFO order lost across the split", i, v)
		}
	}
	if got[data].Tag != packet.TagControl {
		t.Fatalf("last packet tag = %d, want control", got[data].Tag)
	}
}

// TestRetainedReflushSplitsKeepFIFO: a retained buffer that grew past the
// frame bound across a dead-link window (with a control packet retained
// mid-queue) re-flushes after reparenting as multiple frames in exact
// accept order.
func TestRetainedReflushSplitsKeepFIFO(t *testing.T) {
	old := maxEgressFrameBytes
	maxEgressFrameBytes = 4096
	defer func() { maxEgressFrameBytes = old }()

	a, b := transport.NewPair(64)
	pol := BatchPolicy{MaxBatch: 1 << 16, MaxDelay: time.Hour}.normalized()
	var m Metrics
	q := newEgressQueue(a, pol, &m, true, nil)
	transport.DropLink(b)

	payload := strings.Repeat("y", 512)
	const data = 20 // several frame bounds worth, accumulated while dead
	for i := 0; i < data; i++ {
		_ = q.send(packet.MustNew(tagQuery, 1, 5, "%d %s", int64(i), payload))
		if i == 12 { // a control packet lands mid-queue while the link is dead
			_ = q.sendNow(packet.MustNew(packet.TagControl, 0, 5, "%d", int64(7)))
		}
	}
	if len(q.buf) != data+1 {
		t.Fatalf("retained %d packets, want %d", len(q.buf), data+1)
	}

	na, nb := transport.NewPair(64)
	q.setLink(na)
	got := drainLink(t, nb, data+1)
	want := 0
	for i, p := range got {
		if p.Tag == packet.TagControl {
			if i != 13 {
				t.Errorf("control packet at position %d, want 13", i)
			}
			continue
		}
		if v, _ := p.Int(0); v != int64(want) {
			t.Errorf("position %d carries %d, want %d", i, v, want)
		}
		want++
	}
	if m.FramesSent.Load() < 3 {
		t.Errorf("re-flush sent %d frames, want a >=3-frame split", m.FramesSent.Load())
	}
}

// TestAgeFlusherRapidStartStop exercises the back-end age flusher's
// stop/drain path: rapid start/stop cycles with enqueues racing the stop
// must neither deadlock, double-fire, nor leave a timer pending after
// return (run under -race in CI).
func TestAgeFlusherRapidStartStop(t *testing.T) {
	nw, err := NewNetwork(Config{
		Topology:    mustTree(t, "flat:2"),
		Recoverable: true,
		Batch:       BatchPolicy{MaxBatch: 8, MaxDelay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()
	nw.mu.Lock()
	be := nw.bes[1]
	nw.mu.Unlock()
	if be == nil || be.eg == nil {
		t.Fatal("no batched back-end at rank 1")
	}

	for i := 0; i < 300; i++ {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			be.ageFlusher(stop)
			close(done)
		}()
		_ = be.eg.send(packet.MustNew(tagQuery, 1, 1, "%d", int64(i)))
		select {
		case be.egKick <- struct{}{}:
		default:
		}
		close(stop)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("age flusher failed to stop")
		}
	}
	// Whatever the raced stops left queued still drains by the age bound
	// once the real flusher (started by be.run) is the only one standing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := be.eg.pending()
		if n == 0 {
			break
		}
		select {
		case be.egKick <- struct{}{}:
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d packets still queued; age flusher dead", n)
		}
		time.Sleep(time.Millisecond)
	}
}
