package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/transport"
)

// This file implements live, load-driven topology mutation — the elastic
// half of the overlay (DESIGN.md §13). Internal processes periodically
// sample their own pressure (opLoadReport control packets, relayed
// order-free to the front-end like heartbeats); internal/elastic turns the
// samples into per-subtree heat scores and drives two mutations over the
// PR 3 rewiring protocol:
//
//   - SplitNode spawns a sibling for a saturated process and migrates half
//     its children onto it, doubling the routing and uplink capacity of
//     the hot subtree. Each child moves by the same reparent handshake
//     recovery uses (Offer / redial / accept), so with ExactlyOnce the
//     migration is lossless: the child's replay ring re-flushes on the new
//     link and receivers drop the duplicates.
//
//   - MergeNode removes a cold process by checkpointing its filter state
//     and folding its children into its parent via the standard adoption —
//     a controlled failure, by design reusing the proven recovery path.

// ErrNotMutable reports a SplitNode/MergeNode target the live engine
// cannot mutate.
var ErrNotMutable = errors.New("core: topology not mutable here")

// LoadSample is one internal process's most recent load report as observed
// at the front-end. UpPackets and Stalls are cumulative counters — readers
// rate-normalize by delta between samples, so reports lost on a congested
// path skew nothing.
type LoadSample struct {
	// Origin is the reporting process.
	Origin Rank
	// UpPackets is the cumulative count of upstream data packets the
	// process has routed.
	UpPackets int64
	// Queued is the parent-egress queue depth at sample time.
	Queued int64
	// Stalls is the cumulative count of credit stalls on the parent
	// egress (zero when flow control is off).
	Stalls int64
	// At is when the report reached the front-end.
	At time.Time
}

// loadReportLoop periodically emits n's pressure sample on its current
// parent link. Like heartbeats, reports are lossy-safe and order-free;
// send failures (a dead parent, pre-adoption) are retried next tick.
func (nw *Network) loadReportLoop(n *node) {
	t := time.NewTicker(nw.cfg.LoadReportPeriod)
	defer t.Stop()
	for {
		select {
		case <-nw.dying:
			return
		case <-n.killCh:
			return
		case <-t.C:
			q := n.outRef.Load()
			var queued, stalls int64
			if q != nil {
				queued = int64(q.pending())
				stalls = q.stalls()
			}
			if l := n.parentLink(); l != nil {
				if err := l.Send(loadReportPacket(n.rank, n.upCount.Load(), queued, stalls)); err == nil {
					nw.metrics.LoadReportsSent.Add(1)
				}
			}
		}
	}
}

// noteLoadReport records a load report observed at the front-end.
func (nw *Network) noteLoadReport(p *packet.Packet) {
	origin, up, queued, stalls, err := parseLoadReport(p)
	if err != nil {
		return
	}
	nw.metrics.LoadReportsSeen.Add(1)
	nw.loadMu.Lock()
	if nw.loadRep == nil {
		nw.loadRep = map[Rank]LoadSample{}
	}
	nw.loadRep[origin] = LoadSample{
		Origin: origin, UpPackets: up, Queued: queued, Stalls: stalls, At: time.Now(),
	}
	nw.loadMu.Unlock()
}

// LoadReports snapshots the latest load sample per internal rank. Ranks
// that have never reported are absent; a dead rank's last sample lingers
// until overwritten (consumers should check liveness via LiveInternal).
func (nw *Network) LoadReports() map[Rank]LoadSample {
	nw.loadMu.Lock()
	defer nw.loadMu.Unlock()
	out := make(map[Rank]LoadSample, len(nw.loadRep))
	for r, s := range nw.loadRep {
		out[r] = s
	}
	return out
}

// LiveParent returns r's current parent in the live shape (original
// numbering, reflecting adoptions and mutations), or topology.NoRank when
// r is the root, unknown, or dead.
func (nw *Network) LiveParent(r Rank) Rank {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if r == 0 || !nw.view.valid(r) || nw.view.dead[r] {
		return topology.NoRank
	}
	return nw.view.parent[r]
}

// LiveChildren returns r's live children in slot order.
func (nw *Network) LiveChildren(r Rank) []Rank {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if !nw.view.valid(r) || nw.view.dead[r] {
		return nil
	}
	var out []Rank
	for _, c := range nw.view.children[r] {
		if c != topology.NoRank && !nw.view.dead[c] {
			out = append(out, c)
		}
	}
	return out
}

// LiveInternal returns the live internal (non-root, non-back-end) ranks in
// ascending order, including split siblings spawned at runtime.
func (nw *Network) LiveInternal() []Rank {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var out []Rank
	for r := 1; r < len(nw.view.parent); r++ {
		if !nw.view.dead[r] && !nw.view.backend[r] {
			out = append(out, Rank(r))
		}
	}
	return out
}

// SplitNode splits a saturated internal process: a fresh sibling process
// is spawned under the same parent and the later half of hot's live
// children are migrated onto it, so the hot subtree gets a second router
// and a second parent-link credit window. Migration reuses the recovery
// reparent protocol per child; on an ExactlyOnce network it is lossless
// (replay rings re-deliver, receivers deduplicate). Returns the sibling's
// rank.
//
// Serialized against recoveries by the same lock Adopt holds, so a
// mutation never interleaves with an adoption's rewiring. Requires
// Config.Recoverable (children migrate via the orphan-reparent machinery).
func (nw *Network) SplitNode(hot Rank) (Rank, error) {
	if !nw.cfg.Recoverable {
		return topology.NoRank, fmt.Errorf("%w: SplitNode needs Config.Recoverable (children migrate via the reparent protocol)", ErrNotMutable)
	}
	nw.recMu.Lock()
	defer nw.recMu.Unlock()

	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return topology.NoRank, ErrShutdown
	}
	if hot == 0 {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: the front-end cannot split", ErrNotMutable)
	}
	if !nw.view.valid(hot) {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: no such rank %d", ErrNotMutable, hot)
	}
	if nw.view.dead[hot] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: rank %d has failed", ErrNotMutable, hot)
	}
	if nw.view.backend[hot] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: rank %d is a back-end", ErrNotMutable, hot)
	}
	parent := nw.view.parent[hot]
	if parent != 0 && nw.view.dead[parent] {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: parent %d of %d has failed; recover it first", ErrNotMutable, parent, hot)
	}
	var liveSlots []int
	var liveKids []Rank
	for i, c := range nw.view.children[hot] {
		if c != topology.NoRank && !nw.view.dead[c] {
			liveSlots = append(liveSlots, i)
			liveKids = append(liveKids, c)
		}
	}
	if len(liveKids) < 2 {
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: rank %d has %d live children, need at least 2", ErrNotMutable, hot, len(liveKids))
	}
	hotNode := nw.byRank[hot]
	gNode := nw.byRank[parent] // nil when the parent is the front-end
	// A killed-but-undetected process is a recovery problem, not a split
	// target (the view marks it dead only once adopted).
	select {
	case <-hotNode.killCh:
		nw.mu.Unlock()
		return topology.NoRank, fmt.Errorf("%w: rank %d has failed", ErrNotMutable, hot)
	default:
	}
	q, qSlot := nw.view.addInternal(parent)
	nw.mu.Unlock()

	stillborn := func(err error) (Rank, error) {
		nw.mu.Lock()
		nw.view.dead[q] = true
		nw.mu.Unlock()
		return topology.NoRank, err
	}

	// Mint the sibling's parent link through the fabric's rewiring
	// protocol (both halves run here, like AttachBackEnd).
	off, err := nw.rewirer.Offer()
	if err != nil {
		return stillborn(fmt.Errorf("core: splitting %d: %w", hot, err))
	}
	childEnd, err := nw.rewirer.Redial(off.Addr())
	if err != nil {
		_ = off.Close()
		return stillborn(fmt.Errorf("core: splitting %d: %w", hot, err))
	}
	parentEnd, err := off.Accept()
	if err != nil {
		transport.DropLink(childEnd)
		return stillborn(fmt.Errorf("core: splitting %d: %w", hot, err))
	}
	if nw.flowOn() {
		parentEnd = transport.NewFlowLink(parentEnd, nw.cfg.LinkWindow)
		childEnd = transport.NewFlowLink(childEnd, nw.cfg.LinkWindow)
	}
	nw.metrics.RewiredLinks.Add(1)

	// Spawn the sibling process exactly as NewNetwork spawns internal
	// nodes, reader-first so the pre-announcements below cannot wedge on a
	// full link buffer.
	n := &node{
		nw:       nw,
		rank:     q,
		ep:       &transport.Endpoint{Rank: q, Parent: childEnd},
		attachCh: make(chan attachMsg),
		cmdCh:    make(chan nodeCmd),
		killCh:   make(chan struct{}),
	}
	nw.mu.Lock()
	nw.byRank[q] = n
	nw.nodes = append(nw.nodes, n)
	nw.mu.Unlock()
	nw.wg.Add(1)
	go func() {
		defer nw.wg.Done()
		n.run()
	}()
	if nw.cfg.HeartbeatPeriod > 0 {
		go nw.heartbeatLoop(q, n.parentLink, n.killCh)
	}
	if nw.cfg.LoadReportPeriod > 0 {
		go nw.loadReportLoop(n)
	}

	// Pre-announce every live stream on the sibling's link before the
	// parent learns of it: the announcements are the first packets Q ever
	// receives, so its stream table exists before any data can arrive.
	// (Data racing ahead would still be safe — unknown streams pass
	// through or flood — this just shortens the pass-through window.)
	for _, ss := range nw.fe.snapshotStates() {
		_ = parentEnd.Send(ss.announcePacket())
	}

	// Hand the parent its side of the link (a routine attach: the slot is
	// non-participating until the route refresh at the end).
	abort := func(err error) (Rank, error) {
		n.kill()
		transport.DropLink(parentEnd)
		return stillborn(err)
	}
	msg := attachMsg{link: parentEnd, slot: qSlot}
	if gNode != nil {
		select {
		case gNode.attachCh <- msg:
		case <-gNode.killCh:
			return abort(fmt.Errorf("core: splitting %d: parent %d has crashed", hot, parent))
		case <-nw.dying:
			return abort(ErrShutdown)
		case <-time.After(5 * time.Second):
			return abort(fmt.Errorf("core: splitting %d: parent %d did not accept the sibling", hot, parent))
		}
	} else {
		select {
		case nw.fe.attachCh <- msg:
		case <-nw.dying:
			return abort(ErrShutdown)
		case <-time.After(5 * time.Second):
			return abort(fmt.Errorf("core: splitting %d: front-end did not accept the sibling", hot))
		}
	}

	// Migrate the later half of hot's live children onto the sibling, one
	// recovery-style reparent each: offer, child redials from inside its
	// own loop, bounded accept. A child that fails the handshake (it died,
	// or its redial never landed) simply stays where it is — the split
	// degrades, never wedges.
	count := len(liveKids) / 2
	sel := liveKids[len(liveKids)-count:]
	selSlots := liveSlots[len(liveSlots)-count:]
	var movedKids []Rank
	var movedSlots []int // vacated at hot
	var newLinks []transport.Link
	for i, c := range sel {
		nw.mu.Lock()
		cNode := nw.byRank[c]
		cBE := nw.bes[c]
		nw.mu.Unlock()
		o, err := nw.rewirer.Offer()
		if err != nil {
			continue
		}
		handed := false
		if cNode != nil {
			rc := &cmdReparent{rw: nw.rewirer, addr: o.Addr(), reply: make(chan error, 1)}
			if err := nw.sendNodeCmd(cNode, rc); err == nil {
				if rerr := <-rc.reply; rerr == nil {
					handed = true
				}
			}
		} else if cBE != nil && !cBE.killed() {
			old := cBE.parentLink()
			select {
			case cBE.reparentCh <- reparentReq{rw: nw.rewirer, addr: o.Addr()}:
				// Sever the old link so the back-end's Recv EOFs and it
				// picks up the buffered rendezvous (the same nudge a
				// false-positive recovery gives a live back-end).
				transport.DropLink(old)
				handed = true
			case <-cBE.killCh:
			case <-nw.dying:
			}
		}
		if !handed {
			_ = o.Close()
			continue
		}
		l, err := acceptReplacement(o)
		if err != nil {
			continue
		}
		if nw.flowOn() {
			l = transport.NewFlowLink(l, nw.cfg.LinkWindow)
		}
		nw.metrics.RewiredLinks.Add(1)
		movedKids = append(movedKids, c)
		movedSlots = append(movedSlots, selSlots[i])
		newLinks = append(newLinks, l)
	}
	if len(movedKids) == 0 {
		return abort(fmt.Errorf("core: split of %d migrated no children", hot))
	}

	// Commit the new shape and snapshot the three affected slot layouts.
	nw.mu.Lock()
	newSlots := make([]int, 0, len(movedKids))
	for _, c := range movedKids {
		nw.view.children[q] = append(nw.view.children[q], c)
		newSlots = append(newSlots, len(nw.view.children[q])-1)
		nw.view.parent[c] = q
	}
	nw.view.vacate(hot, movedSlots)
	infoQ := nw.view.slotInfoLocked(q)
	infoHot := nw.view.slotInfoLocked(hot)
	infoG := nw.view.slotInfoLocked(parent)
	parents := append([]Rank(nil), nw.view.parent...)
	nw.mu.Unlock()

	// Install the migrated links at the sibling: child slots, readers,
	// routing rebuild, stream re-announcement into the moved subtrees
	// (children that already carry a stream ignore the replay).
	adoptQ := &cmdAdopt{deadSlot: -1, slots: newSlots, links: newLinks, slotInfo: infoQ, reply: make(chan error, 1)}
	if err := nw.sendNodeCmd(n, adoptQ); err != nil {
		return topology.NoRank, fmt.Errorf("core: splitting %d: sibling %d: %w", hot, q, err)
	}
	<-adoptQ.reply

	// Fence the vacated slots at the donor and rebuild its routing. If hot
	// died mid-split its own recovery rebuilds everything anyway.
	adoptHot := &cmdAdopt{deadSlot: -1, vacated: movedSlots, slotInfo: infoHot, reply: make(chan error, 1)}
	if err := nw.sendNodeCmd(hotNode, adoptHot); err == nil {
		<-adoptHot.reply
	}

	// Refresh the parent's routing so the sibling's slot starts
	// participating in member streams (synchronizer slots remap; rounds
	// gated only on stale routing release).
	adoptG := &cmdAdopt{deadSlot: -1, slotInfo: infoG, reply: make(chan error, 1)}
	if gNode != nil {
		if err := nw.sendNodeCmd(gNode, adoptG); err == nil {
			<-adoptG.reply
		}
	} else {
		select {
		case nw.fe.cmdCh <- adoptG:
			<-adoptG.reply
		case <-nw.dying:
			return topology.NoRank, ErrShutdown
		case <-time.After(5 * time.Second):
			return topology.NoRank, fmt.Errorf("core: splitting %d: front-end did not refresh routes", hot)
		}
	}

	// Publish the successor topology snapshot (original numbering; dead
	// ranks keep their last parent, exactly like recovery leaves them).
	if t, terr := topology.FromParents(parents); terr == nil {
		nw.mu.Lock()
		nw.tree = t
		nw.mu.Unlock()
	}

	nw.metrics.NodesSplit.Add(1)
	nw.metrics.TopologyMutations.Add(1)
	return q, nil
}

// MergeNode removes a cold internal process from the aggregation path,
// shortening its subtree by one level: its composable filter state is
// checkpointed toward its potential adopters, the process is terminated,
// and the standard adoption folds its children into its parent. A merge is
// a controlled failure on purpose — it reuses the proven recovery path end
// to end, so on an ExactlyOnce network it is lossless. The elective kill
// is counted in NodesFailed like any crash. compose may be nil to skip
// filter-state reconstruction (the checkpoint still covers stateful
// mergeable filters via the adopter's cache).
func (nw *Network) MergeNode(cold Rank, compose StateComposer) (*Adoption, error) {
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return nil, ErrShutdown
	}
	if cold == 0 || !nw.view.valid(cold) {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: no such internal rank %d", ErrNotMutable, cold)
	}
	if nw.view.dead[cold] {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: rank %d has already failed", ErrNotMutable, cold)
	}
	if nw.view.backend[cold] {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: rank %d is a back-end", ErrNotMutable, cold)
	}
	parent := nw.view.parent[cold]
	if parent != 0 && nw.view.dead[parent] {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: parent %d of %d has failed; recover it first", ErrNotMutable, parent, cold)
	}
	coldNode := nw.byRank[cold]
	nw.mu.Unlock()

	// Checkpoint the victim's filter state toward its adopters before the
	// kill, so the adoption can fold in what was in flight above its
	// children. Best-effort: composition from the children's own
	// snapshots remains the primary source.
	if coldNode != nil {
		c := &cmdCheckpoint{reply: make(chan int, 1)}
		if err := nw.sendNodeCmd(coldNode, c); err == nil {
			<-c.reply
		}
	}
	if err := nw.Kill(cold); err != nil {
		return nil, err
	}
	ad, err := nw.Adopt(cold, compose)
	if err != nil {
		return nil, err
	}
	nw.metrics.NodesMerged.Add(1)
	nw.metrics.TopologyMutations.Add(1)
	return ad, nil
}
