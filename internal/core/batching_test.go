package core

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/eqclass"
	"repro/internal/filter"
)

// TestShutdownFlushesEgress is the packet-stranded-in-queue regression
// test: with a flush window far larger than the traffic and an age bound
// longer than the test, the only thing that can deliver the packets is the
// shutdown drain. Every accepted packet must reach the front-end.
func TestShutdownFlushesEgress(t *testing.T) {
	tree := mustTree(t, "kary:2^2")
	const perBE = 3
	nw, err := NewNetwork(Config{
		Topology: tree,
		Batch:    BatchPolicy{MaxBatch: 1024, MaxDelay: time.Hour},
		OnBackEnd: func(be *BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			for i := 0; i < perBE; i++ {
				if err := be.Send(p.StreamID, p.Tag, "%d", int64(be.Rank())*100+int64(i)); err != nil {
					return err
				}
			}
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStream(StreamSpec{Synchronization: "nullsync"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	// Give the back-ends a moment to enqueue, then shut down with the
	// packets still sitting in egress queues.
	time.Sleep(200 * time.Millisecond)
	if err := nw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	got := map[int64]int{}
	for {
		p, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Int(0)
		if err != nil {
			t.Fatal(err)
		}
		got[v]++
	}
	leaves := tree.Leaves()
	if want := len(leaves) * perBE; len(got) != want {
		t.Errorf("front-end received %d distinct packets, want %d (stranded in egress?)", len(got), want)
	}
	for _, leaf := range leaves {
		for i := 0; i < perBE; i++ {
			v := int64(leaf)*100 + int64(i)
			if got[v] != 1 {
				t.Errorf("payload %d delivered %d times, want exactly once", v, got[v])
			}
		}
	}
}

// TestKillWithPendingEgressNoLossNoDup is the batching × recovery chaos
// test: a mid-level communication process is killed while its subtree's
// back-ends hold accepted-but-unflushed packets in their egress queues.
// Grandparent adoption must re-parent the orphans with those queues
// intact: after recovery and shutdown every accepted packet arrives at the
// front-end exactly once — none lost with the dead link, none duplicated
// by the re-flush.
func TestKillWithPendingEgressNoLossNoDup(t *testing.T) {
	tree := mustTree(t, "kary:4^2")
	const perBE = 5
	var stID uint32
	ready := make(chan struct{})
	var enqueued sync.WaitGroup
	enqueued.Add(len(tree.Leaves()))
	nw, err := NewNetwork(Config{
		Topology:    tree,
		Recoverable: true,
		// Window and age bound are both unreachable before the kill: all
		// pre-kill traffic is pending egress when the crash hits.
		Batch: BatchPolicy{MaxBatch: 1024, MaxDelay: time.Hour},
		OnBackEnd: func(be *BackEnd) error {
			<-ready
			for i := 0; i < perBE; i++ {
				if err := be.Send(stID, tagQuery, "%d", int64(be.Rank())*100+int64(i)); err != nil {
					enqueued.Done()
					return err
				}
			}
			enqueued.Done()
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStream(StreamSpec{Synchronization: "nullsync"})
	if err != nil {
		t.Fatal(err)
	}
	stID = st.ID()
	close(ready)
	enqueued.Wait() // every payload now sits in a back-end egress queue

	victim := tree.InternalNodes()[0]
	victimLeaves := len(tree.Children(victim))
	if err := nw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Adopt(victim, nil); err != nil {
		t.Fatal(err)
	}
	// The adoption's reparent re-flushes the orphans' retained queues: the
	// victim subtree's payloads must arrive now, before any shutdown drain.
	got := map[int64]int{}
	for i := 0; i < victimLeaves*perBE; i++ {
		p, err := st.RecvTimeout(30 * time.Second)
		if err != nil {
			t.Fatalf("after %d of %d re-flushed packets: %v", i, victimLeaves*perBE, err)
		}
		v, err := p.Int(0)
		if err != nil {
			t.Fatal(err)
		}
		got[v]++
	}
	if err := nw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for {
		p, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Int(0)
		if err != nil {
			t.Fatal(err)
		}
		got[v]++
	}
	for _, leaf := range tree.Leaves() {
		for i := 0; i < perBE; i++ {
			v := int64(leaf)*100 + int64(i)
			if got[v] != 1 {
				t.Errorf("payload %d delivered %d times, want exactly once (leaf %d)", v, got[v], leaf)
			}
		}
	}
}

// soakClassSet is the equivalence-class report a given back-end sends in
// the soak: a pair shared by every rank with the same residue (heavy
// duplication for the suppressing filter to elide) plus a unique pair.
func soakClassSet(r Rank) *eqclass.Set {
	set := eqclass.NewSet()
	set.Add(fmt.Sprintf("os-%d", r%4), int64(r%4))
	set.Add(fmt.Sprintf("cpu-%d", r), int64(r))
	return set
}

// soakResult captures one soak run's observable output: the ordered
// per-round sums of each reduction stream and the equivalence-class set
// accumulated at the front-end.
type soakResult struct {
	sums    map[int][]float64
	classes map[string]map[int64]bool
}

// runSoak streams rounds of data over several concurrent streams — sum
// reductions plus an eqclass stream — across the given overlay shape and
// returns everything the front-end observed. cfg supplies the engine
// parameters under comparison (batching policy, shard count, transport);
// its Topology, Registry, and OnBackEnd are set here.
func runSoak(t *testing.T, shape string, sumStreams, rounds int, cfg Config) soakResult {
	t.Helper()
	tree := mustTree(t, shape)
	reg := filter.NewRegistry()
	eqclass.Register(reg)
	cfg.Topology = tree
	cfg.Registry = reg
	cfg.OnBackEnd = func(be *BackEnd) error {
		for {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			if p.Tag == tagQuery {
				// Reduction stream: one response per round, a value
				// derived from rank and round.
				r, err := p.Int(0)
				if err != nil {
					return err
				}
				v := float64(be.Rank())*1e-3 + float64(r)
				if err := be.Send(p.StreamID, p.Tag, "%f", v); err != nil {
					return err
				}
				continue
			}
			// Eqclass stream: one pair shared across many ranks (the
			// suppression case — the tree forwards it once per level,
			// not once per daemon) and one unique pair per rank.
			set := soakClassSet(be.Rank())
			rp, err := set.ToPacket(p.Tag, p.StreamID, be.Rank())
			if err != nil {
				return err
			}
			if err := be.SendPacket(rp); err != nil {
				return err
			}
		}
	}
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()

	res := soakResult{sums: map[int][]float64{}, classes: map[string]map[int64]bool{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < sumStreams; s++ {
		st, err := nw.NewStream(StreamSpec{
			Transformation:  "sum",
			Synchronization: "waitforall",
			RecvBuffer:      rounds + 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int, st *Stream) {
			defer wg.Done()
			sums := make([]float64, 0, rounds)
			for r := 0; r < rounds; r++ {
				if err := st.Multicast(tagQuery, "%d", int64(r)); err != nil {
					t.Errorf("stream %d round %d multicast: %v", s, r, err)
					return
				}
			}
			for r := 0; r < rounds; r++ {
				p, err := st.RecvTimeout(60 * time.Second)
				if err != nil {
					t.Errorf("stream %d round %d recv: %v", s, r, err)
					return
				}
				v, err := p.Float(0)
				if err != nil {
					t.Errorf("stream %d round %d: %v", s, r, err)
					return
				}
				sums = append(sums, v)
			}
			mu.Lock()
			res.sums[s] = sums
			mu.Unlock()
		}(s, st)
	}

	// The eqclass stream runs concurrently with the reductions.
	eqSt, err := nw.NewStream(StreamSpec{
		Transformation:  eqclass.FilterName,
		Synchronization: "nullsync",
		RecvBuffer:      4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The suppressing filter delivers every distinct (class, member) pair
	// exactly once in total, in as many packets as timing dictates.
	want := 0
	{
		expected := eqclass.NewSet()
		for _, leaf := range tree.Leaves() {
			expected.Merge(soakClassSet(leaf))
		}
		want = expected.Len()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := eqSt.Multicast(tagQuery+1, ""); err != nil {
			t.Errorf("eqclass multicast: %v", err)
			return
		}
		seen := 0
		for seen < want {
			p, err := eqSt.RecvTimeout(60 * time.Second)
			if err != nil {
				t.Errorf("eqclass recv after %d of %d pairs: %v", seen, want, err)
				return
			}
			set, err := eqclass.FromPacket(p)
			if err != nil {
				t.Errorf("eqclass decode: %v", err)
				return
			}
			mu.Lock()
			for _, k := range set.Keys() {
				for _, m := range set.Members(k) {
					if res.classes[k] == nil {
						res.classes[k] = map[int64]bool{}
					}
					if res.classes[k][m] {
						t.Errorf("eqclass pair (%s,%d) delivered twice", k, m)
					}
					res.classes[k][m] = true
					seen++
				}
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	return res
}

// TestSoakBatchingEquivalence is the scale/soak test: a kary:16^2 overlay
// (and kary:8^3 when not -short) streams ~10k packets across concurrent
// reduction streams plus a suppressing eqclass stream, with batching off
// and with batching on. The two runs must produce eqclass-identical
// results: identical per-round reduction sequences and identical
// equivalence-class sets.
func TestSoakBatchingEquivalence(t *testing.T) {
	shapes := []string{"kary:16^2"}
	if !testing.Short() {
		shapes = append(shapes, "kary:8^3")
	}
	for _, shape := range shapes {
		t.Run(shape, func(t *testing.T) {
			leaves := len(mustTree(t, shape).Leaves())
			const sumStreams = 4
			rounds := (10000 + sumStreams*leaves - 1) / (sumStreams * leaves)
			if rounds < 2 {
				rounds = 2
			}
			t.Logf("%s: %d leaves × %d streams × %d rounds = %d packets (+%d eqclass)",
				shape, leaves, sumStreams, rounds, leaves*sumStreams*rounds, leaves)
			off := runSoak(t, shape, sumStreams, rounds, Config{})
			on := runSoak(t, shape, sumStreams, rounds, Config{Batch: BatchPolicy{
				MaxBatch: 32, MaxDelay: 2 * time.Millisecond, Adaptive: true,
			}})
			if t.Failed() {
				return
			}
			compareSoaks(t, off, on, sumStreams)
		})
	}
}

// compareSoaks asserts two soak runs are eqclass-identical: identical
// per-round reduction sequences per stream and identical equivalence-class
// sets. "off" names the baseline run, "on" the run under test.
func compareSoaks(t *testing.T, off, on soakResult, sumStreams int) {
	t.Helper()
	for s := 0; s < sumStreams; s++ {
		offS, onS := off.sums[s], on.sums[s]
		if len(offS) != len(onS) {
			t.Fatalf("stream %d: %d deliveries off vs %d on", s, len(offS), len(onS))
		}
		for r := range offS {
			if offS[r] != onS[r] {
				t.Errorf("stream %d round %d: sum %v off vs %v on", s, r, offS[r], onS[r])
			}
		}
	}
	if len(off.classes) != len(on.classes) {
		t.Fatalf("eqclass: %d classes off vs %d on", len(off.classes), len(on.classes))
	}
	for k, offMembers := range off.classes {
		onMembers := on.classes[k]
		if len(offMembers) != len(onMembers) {
			t.Errorf("class %s: %d members off vs %d on", k, len(offMembers), len(onMembers))
			continue
		}
		for m := range offMembers {
			if !onMembers[m] {
				t.Errorf("class %s member %d present off, missing on", k, m)
			}
		}
	}
}

// TestBatchingMetrics: an enabled policy actually batches — frames carry
// multiple packets on average and the flush-cause counters move.
func TestBatchingMetrics(t *testing.T) {
	tree := mustTree(t, "kary:4^2")
	const rounds = 200
	nw, err := NewNetwork(Config{
		Topology: tree,
		Batch:    BatchPolicy{MaxBatch: 16, MaxDelay: 2 * time.Millisecond},
		OnBackEnd: func(be *BackEnd) error {
			p, err := be.Recv()
			if err != nil {
				return nil
			}
			for i := 0; i < rounds; i++ {
				if err := be.Send(p.StreamID, p.Tag, "%d", int64(i)); err != nil {
					return err
				}
			}
			for {
				if _, err := be.Recv(); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall", RecvBuffer: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := st.RecvTimeout(30 * time.Second); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if err := nw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	queued, frames := m.PacketsQueued.Load(), m.FramesSent.Load()
	if queued == 0 || frames == 0 {
		t.Fatalf("no batching observed: queued=%d frames=%d", queued, frames)
	}
	if avg := float64(queued) / float64(frames); avg < 2 {
		t.Errorf("average frame size %.2f, want >= 2 under sustained load", avg)
	}
	if m.FlushSize.Load() == 0 {
		t.Error("FlushSize never incremented under sustained load")
	}
	if m.EgressHighWater.Load() < 2 {
		t.Errorf("EgressHighWater = %d, want >= 2", m.EgressHighWater.Load())
	}
}
