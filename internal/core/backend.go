package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// BackEnd is the handle application code uses at a leaf of the overlay.
// Its methods are safe to call from the handler goroutine; Recv returns
// io.EOF once the network shuts down, at which point the handler should
// return.
// beDelivery is one downstream packet together with the link it arrived
// on: retirement at Recv must credit the link that actually carried the
// packet — after a reparent, inbox residue from the dead parent must not
// grant the replacement parent a window it never spent.
type beDelivery struct {
	p   *packet.Packet
	src *transport.FlowLink
}

type BackEnd struct {
	nw    *Network
	rank  Rank
	ep    *transport.Endpoint
	inbox chan beDelivery

	// parentMu guards ep.Parent, which recovery replaces when the
	// back-end's parent process fails and a grandparent adopts it.
	parentMu sync.RWMutex
	// reparentCh delivers the rendezvous of the replacement parent link;
	// the back-end redials it itself (the orphan half of the fabric's
	// rewiring protocol).
	reparentCh chan reparentReq
	// killCh is closed by Kill to crash the back-end.
	killCh   chan struct{}
	killOnce sync.Once

	// eg is the upstream egress queue, shared between the handler goroutine
	// (Send) and the link loop (age flushes, reparent, drain); the queue
	// serializes internally. It is nil when batching is disabled. egKick
	// wakes the age flusher when the queue transitions empty -> non-empty,
	// so an idle back-end costs no timer traffic at all.
	eg     *egressQueue
	egKick chan struct{}

	// seqCtr stamps this back-end's outbound packets with an origin
	// sequence in exactly-once mode — the identity the whole tree's
	// duplicate detection keys on.
	seqCtr atomic.Uint64
}

func newBackEnd(nw *Network, rank Rank, ep *transport.Endpoint) *BackEnd {
	// With flow control on, the parent link carries credit accounting;
	// AttachBackEnd hands a raw link, so wrap here if needed.
	if nw.flowOn() && ep.Parent != nil && flowOf(ep.Parent) == nil {
		ep.Parent = transport.NewFlowLink(ep.Parent, nw.cfg.LinkWindow)
	}
	be := &BackEnd{
		nw:         nw,
		rank:       rank,
		ep:         ep,
		inbox:      make(chan beDelivery, 64),
		reparentCh: make(chan reparentReq, 1),
		killCh:     make(chan struct{}),
	}
	// The egress queue exists whenever batching OR flow control asks for
	// it: flow control needs the bounded queue and credit-aware flush even
	// un-batched.
	if nw.cfg.Batch.enabled() || nw.flowOn() {
		be.egKick = make(chan struct{}, 1)
		be.eg = newEgressQueue(ep.Parent, nw.cfg.Batch, &nw.metrics, nw.recoverable(), kickFunc(be.egKick))
		be.eg.bindStops(be.killCh, nw.dying)
		if nw.xonce() {
			// Leaves originate the upstream flow: their rings replay at
			// reparent like every sender's, but acknowledgements carry no
			// deferred retirements (nil sink) — popping just frees memory.
			be.eg.enableReplay(nil)
		}
	}
	return be
}

// Rank returns the back-end's overlay rank.
func (be *BackEnd) Rank() Rank { return be.rank }

func (be *BackEnd) parentLink() transport.Link {
	be.parentMu.RLock()
	defer be.parentMu.RUnlock()
	return be.ep.Parent
}

func (be *BackEnd) setParent(l transport.Link) {
	be.parentMu.Lock()
	be.ep.Parent = l
	be.parentMu.Unlock()
}

// kill crashes the back-end: its parent link is severed abruptly and the
// link loop exits without waiting for a shutdown announcement.
func (be *BackEnd) kill() {
	be.killOnce.Do(func() { close(be.killCh) })
	transport.DropLink(be.parentLink())
}

func (be *BackEnd) killed() bool {
	select {
	case <-be.killCh:
		return true
	default:
		return false
	}
}

// Recv blocks for the next downstream packet addressed to this back-end
// (multicast data on any stream it belongs to). It returns io.EOF when the
// network is shutting down. On a flow-controlled network, Recv is the
// retirement point of downstream traffic: the handler actually consuming
// a packet is what hands the parent its send credit back — a handler that
// stops reading throttles the whole path back to the front-end producer,
// with one window of packets in flight.
func (be *BackEnd) Recv() (*packet.Packet, error) {
	d, ok := <-be.inbox
	if !ok {
		return nil, io.EOF
	}
	retireAndGrant(&be.nw.metrics, d.src, 1)
	if len(be.inbox) == 0 {
		// The handler has consumed everything delivered so far: grant the
		// below-threshold remainder back rather than sitting on it (see
		// flushGrant — a budget-limited producer may need these credits).
		flushGrant(&be.nw.metrics, d.src)
	}
	return d.p, nil
}

// Send emits an upstream packet on the given stream. The packet enters the
// filter pipeline at the back-end's parent and is reduced on its way to the
// front-end. The values are retained by the packet (see packet.New): a
// caller expanding a long-lived []any with ... must not mutate it after.
func (be *BackEnd) Send(streamID uint32, tag int32, format string, values ...any) error {
	p, err := packet.New(tag, streamID, be.rank, format, values...)
	if err != nil {
		return err
	}
	return be.SendPacket(p)
}

// SendPacket emits a pre-built packet upstream, re-stamping its stream and
// source identity is NOT performed: the caller controls the header. With
// batching enabled the packet may be queued rather than sent immediately;
// a nil return means it was accepted and will be flushed by the size or
// age policy (or retained across a parent failure on recoverable
// networks), not necessarily that it is on the wire.
func (be *BackEnd) SendPacket(p *packet.Packet) error {
	if be.nw.xonce() && p.Seq == 0 && p.Tag != packet.TagControl {
		p = p.WithSeq(packet.MakeSeq(be.rank, be.seqCtr.Add(1)))
	}
	if be.eg == nil {
		if err := be.parentLink().Send(p); err != nil {
			return fmt.Errorf("core: back-end %d send: %w", be.rank, err)
		}
		return nil
	}
	err := be.eg.send(p)
	retained := err != nil && be.eg.retain && !be.killed() && !be.nw.tearingDown()
	if err != nil && !retained {
		return fmt.Errorf("core: back-end %d send: %w", be.rank, err)
	}
	// A flush that failed into a crashed parent but retained the batch is
	// a success from the handler's perspective: the packets are queued
	// for re-flush once recovery re-parents this back-end. An error
	// during network teardown is surfaced — no adoption is coming.
	return nil
}

// Flush forces the back-end's egress queue onto the wire, for handlers
// that need bounded latency tighter than the age policy provides.
func (be *BackEnd) Flush() error {
	if be.eg == nil {
		return nil
	}
	return be.eg.drain()
}

// ageFlusher enforces the egress age bound: woken by the first enqueue,
// it sleeps out the queue's deadline, flushes what is due, and goes back
// to sleep once the queue empties.
//
// Timer discipline: the timer is created lazily on the first arm, and
// every arm is immediately followed by the select that either drains its
// channel or returns — so outside that window the timer is always idle,
// and the deferred stop-and-drain guarantees nothing fires (or leaks a
// pending tick) after the flusher returns, however rapid the start/stop
// cycle.
func (be *BackEnd) ageFlusher(stop <-chan struct{}) {
	var timer *time.Timer
	defer func() {
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}()
	for {
		select {
		case <-stop:
			return
		case <-be.killCh:
			return
		case <-be.egKick:
		}
		for {
			d := be.eg.deadline()
			if d.IsZero() {
				break // queue drained; wait for the next kick
			}
			if wait := time.Until(d); wait > 0 {
				if timer == nil {
					timer = time.NewTimer(wait)
				} else {
					timer.Reset(wait)
				}
				select {
				case <-stop:
					return
				case <-be.killCh:
					return
				case <-timer.C:
				}
			}
			be.eg.pollAge(time.Now())
		}
	}
}

// run is the back-end's link loop: it launches the application handler,
// delivers downstream data to it, and tears down at shutdown.
func (be *BackEnd) run() {
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		if h := be.nw.cfg.OnBackEnd; h != nil {
			if err := h(be); err != nil {
				be.nw.recordBackEndErr(fmt.Errorf("back-end %d: %w", be.rank, err))
			}
		}
	}()
	if be.eg != nil {
		// Age flusher: the handler goroutine has no event loop, so this
		// goroutine enforces the MaxDelay bound on queued packets. It
		// sleeps until kicked by the first enqueue, then re-arms only
		// while packets remain queued — an idle back-end costs nothing.
		flushStop := make(chan struct{})
		defer close(flushStop)
		go be.ageFlusher(flushStop)
	}

loop:
	for {
		p, err := be.parentLink().Recv()
		if err != nil {
			// On a recoverable network an unexpected EOF means the parent
			// crashed: survive as an orphan until a grandparent adopts us
			// (or the network tears down). Release the handler if it is
			// blocked on the dead parent's window: its sends overflow into
			// the retained buffer until reparenting.
			be.eg.releaseWaiters()
			if be.nw.recoverable() && !be.killed() {
				select {
				case req := <-be.reparentCh:
					l, err := req.rw.Redial(req.addr)
					if err != nil {
						// The adoption abandoned the offer (or the fabric
						// failed): stay orphaned and await the next one.
						continue
					}
					if be.nw.flowOn() {
						// A replacement link starts a fresh credit window on
						// both sides: retained sends re-enter it without
						// double-spending.
						l = transport.NewFlowLink(l, be.nw.cfg.LinkWindow)
					}
					old := be.parentLink()
					be.setParent(l)
					transport.DropLink(old)
					if be.eg != nil {
						// Repoint the egress queue and re-flush anything
						// retained across the dead parent: accepted
						// packets survive the failure.
						be.eg.setLink(l) //tbon:allow mutationquiesce back-ends have no shard pool; this goroutine is the sole egress user
					}
					continue
				case <-be.nw.dying:
				case <-be.killCh:
				}
			}
			break
		}
		if p.Tag == packet.TagControl {
			op, err := ctrlOp(p)
			if err != nil {
				continue
			}
			if op == opShutdown {
				break
			}
			// Stream management is the communication tree's concern; a
			// back-end only needs the data packets themselves.
			continue
		}
		be.nw.metrics.PacketsDown.Add(1)
		select {
		case be.inbox <- beDelivery{p: p, src: flowOf(be.parentLink())}:
		case <-be.killCh:
			break loop
		}
	}
	close(be.inbox)
	<-handlerDone
	// The handler has returned: flush whatever its last sends left queued
	// before the link closes, so no packet is stranded at shutdown.
	if be.eg != nil && !be.killed() {
		_ = be.eg.drain()
	}
	_ = be.parentLink().Close()
}
