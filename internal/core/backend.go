package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/packet"
	"repro/internal/transport"
)

// BackEnd is the handle application code uses at a leaf of the overlay.
// Its methods are safe to call from the handler goroutine; Recv returns
// io.EOF once the network shuts down, at which point the handler should
// return.
type BackEnd struct {
	nw    *Network
	rank  Rank
	ep    *transport.Endpoint
	inbox chan *packet.Packet

	// parentMu guards ep.Parent, which recovery replaces when the
	// back-end's parent process fails and a grandparent adopts it.
	parentMu sync.RWMutex
	// reparentCh delivers the replacement parent link.
	reparentCh chan transport.Link
	// killCh is closed by Kill to crash the back-end.
	killCh   chan struct{}
	killOnce sync.Once
}

func newBackEnd(nw *Network, rank Rank, ep *transport.Endpoint) *BackEnd {
	return &BackEnd{
		nw:         nw,
		rank:       rank,
		ep:         ep,
		inbox:      make(chan *packet.Packet, 64),
		reparentCh: make(chan transport.Link, 1),
		killCh:     make(chan struct{}),
	}
}

// Rank returns the back-end's overlay rank.
func (be *BackEnd) Rank() Rank { return be.rank }

func (be *BackEnd) parentLink() transport.Link {
	be.parentMu.RLock()
	defer be.parentMu.RUnlock()
	return be.ep.Parent
}

func (be *BackEnd) setParent(l transport.Link) {
	be.parentMu.Lock()
	be.ep.Parent = l
	be.parentMu.Unlock()
}

// kill crashes the back-end: its parent link is severed abruptly and the
// link loop exits without waiting for a shutdown announcement.
func (be *BackEnd) kill() {
	be.killOnce.Do(func() { close(be.killCh) })
	transport.DropLink(be.parentLink())
}

func (be *BackEnd) killed() bool {
	select {
	case <-be.killCh:
		return true
	default:
		return false
	}
}

// Recv blocks for the next downstream packet addressed to this back-end
// (multicast data on any stream it belongs to). It returns io.EOF when the
// network is shutting down.
func (be *BackEnd) Recv() (*packet.Packet, error) {
	p, ok := <-be.inbox
	if !ok {
		return nil, io.EOF
	}
	return p, nil
}

// Send emits an upstream packet on the given stream. The packet enters the
// filter pipeline at the back-end's parent and is reduced on its way to the
// front-end.
func (be *BackEnd) Send(streamID uint32, tag int32, format string, values ...any) error {
	p, err := packet.New(tag, streamID, be.rank, format, values...)
	if err != nil {
		return err
	}
	return be.SendPacket(p)
}

// SendPacket emits a pre-built packet upstream, re-stamping its stream and
// source identity is NOT performed: the caller controls the header.
func (be *BackEnd) SendPacket(p *packet.Packet) error {
	if err := be.parentLink().Send(p); err != nil {
		return fmt.Errorf("core: back-end %d send: %w", be.rank, err)
	}
	return nil
}

// run is the back-end's link loop: it launches the application handler,
// delivers downstream data to it, and tears down at shutdown.
func (be *BackEnd) run() {
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		if h := be.nw.cfg.OnBackEnd; h != nil {
			if err := h(be); err != nil {
				be.nw.recordBackEndErr(fmt.Errorf("back-end %d: %w", be.rank, err))
			}
		}
	}()

loop:
	for {
		p, err := be.parentLink().Recv()
		if err != nil {
			// On a recoverable network an unexpected EOF means the parent
			// crashed: survive as an orphan until a grandparent adopts us
			// (or the network tears down).
			if be.nw.recoverable() && !be.killed() {
				select {
				case l := <-be.reparentCh:
					old := be.parentLink()
					be.setParent(l)
					transport.DropLink(old)
					continue
				case <-be.nw.dying:
				case <-be.killCh:
				}
			}
			break
		}
		if p.Tag == packet.TagControl {
			op, err := ctrlOp(p)
			if err != nil {
				continue
			}
			if op == opShutdown {
				break
			}
			// Stream management is the communication tree's concern; a
			// back-end only needs the data packets themselves.
			continue
		}
		be.nw.metrics.PacketsDown.Add(1)
		select {
		case be.inbox <- p:
		case <-be.killCh:
			break loop
		}
	}
	close(be.inbox)
	<-handlerDone
	_ = be.parentLink().Close()
}
