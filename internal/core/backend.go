package core

import (
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/transport"
)

// BackEnd is the handle application code uses at a leaf of the overlay.
// Its methods are safe to call from the handler goroutine; Recv returns
// io.EOF once the network shuts down, at which point the handler should
// return.
type BackEnd struct {
	nw    *Network
	rank  Rank
	ep    *transport.Endpoint
	inbox chan *packet.Packet
}

// Rank returns the back-end's overlay rank.
func (be *BackEnd) Rank() Rank { return be.rank }

// Recv blocks for the next downstream packet addressed to this back-end
// (multicast data on any stream it belongs to). It returns io.EOF when the
// network is shutting down.
func (be *BackEnd) Recv() (*packet.Packet, error) {
	p, ok := <-be.inbox
	if !ok {
		return nil, io.EOF
	}
	return p, nil
}

// Send emits an upstream packet on the given stream. The packet enters the
// filter pipeline at the back-end's parent and is reduced on its way to the
// front-end.
func (be *BackEnd) Send(streamID uint32, tag int32, format string, values ...any) error {
	p, err := packet.New(tag, streamID, be.rank, format, values...)
	if err != nil {
		return err
	}
	return be.SendPacket(p)
}

// SendPacket emits a pre-built packet upstream, re-stamping its stream and
// source identity is NOT performed: the caller controls the header.
func (be *BackEnd) SendPacket(p *packet.Packet) error {
	if err := be.ep.Parent.Send(p); err != nil {
		return fmt.Errorf("core: back-end %d send: %w", be.rank, err)
	}
	return nil
}

// run is the back-end's link loop: it launches the application handler,
// delivers downstream data to it, and tears down at shutdown.
func (be *BackEnd) run() {
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		if h := be.nw.cfg.OnBackEnd; h != nil {
			if err := h(be); err != nil {
				be.nw.recordBackEndErr(fmt.Errorf("back-end %d: %w", be.rank, err))
			}
		}
	}()

	for {
		p, err := be.ep.Parent.Recv()
		if err != nil {
			break
		}
		if p.Tag == packet.TagControl {
			op, err := ctrlOp(p)
			if err != nil {
				continue
			}
			if op == opShutdown {
				break
			}
			// Stream management is the communication tree's concern; a
			// back-end only needs the data packets themselves.
			continue
		}
		be.nw.metrics.PacketsDown.Add(1)
		be.inbox <- p
	}
	close(be.inbox)
	<-handlerDone
	_ = be.ep.Parent.Close()
}
