package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/transport"
)

// This file implements the live half of the paper's companion reliability
// model (Arnold & Miller, "Zero-cost reliability for tree-based overlay
// networks") on a running Network:
//
//   - fault injection: Kill crashes any non-root process, severing its
//     links abruptly so neighbors observe the failure exactly as they
//     would a real crash;
//   - failure detection feed: every non-root process emits periodic
//     heartbeat control packets that relay to the front-end, where
//     internal/recovery's detector watches for silence;
//   - live reconfiguration: Adopt applies the grandparent-adoption rule in
//     place — orphans are re-linked under the failed node's parent, stream
//     routing and synchronizer child counts are rebuilt, streams are
//     re-announced into adopted subtrees, and the lost node's composable
//     filter state is reconstructed from the orphans' snapshots.

// StateComposer rebuilds a failed node's per-stream filter state from its
// surviving children's snapshots (internal/recovery supplies
// reliability.ComposeStates here). children is ordered like the adoption's
// orphan list; entries are empty for children without state. A nil result
// with nil error means "nothing to restore" (e.g. a stateless filter).
type StateComposer func(streamID uint32, transformation string, children [][]byte) ([]byte, error)

// Adoption reports what a live recovery did.
type Adoption struct {
	// Failed is the crashed process (original numbering, like all ranks
	// on a live network).
	Failed Rank
	// NewParent is the adopter: the failed process's parent.
	NewParent Rank
	// Orphans are the failed process's surviving children, now re-linked
	// under NewParent.
	Orphans []Rank
	// StreamsComposed counts streams whose lost filter state was
	// reconstructed by composition.
	StreamsComposed int
	// Rewire is the time spent reconfiguring the running overlay.
	Rewire time.Duration
}

// ErrNotRecoverable reports an Adopt call the live engine cannot honor.
var ErrNotRecoverable = errors.New("core: failure not recoverable")

// nodeCmd is a recovery command delivered into a node's event loop.
type nodeCmd interface{ isNodeCmd() }

// cmdSnapshot asks a node for its per-stream composable filter state.
type cmdSnapshot struct {
	reply chan map[uint32][]byte
}

// cmdAdopt installs orphan links as new child slots and rebuilds stream
// routing/synchronizers from a fresh slot snapshot.
type cmdAdopt struct {
	deadSlot int // the failed child's slot, fenced off (-1 none)
	// vacated lists further child slots to fence off: a split migrated
	// those children to the new sibling, so the donor must stop routing to
	// them (SplitNode). Unlike deadSlot the children are alive — just
	// elsewhere — which is why the fence rides the same adoption machinery
	// that handles a dead child's slot.
	vacated  []int
	slots    []int            // child slot index per new link
	links    []transport.Link // parent-side ends, index-aligned with slots
	slotInfo []slotInfo       // full refreshed slot snapshot for the adopter
	composed map[uint32][]byte
	reply    chan error
}

// reparentReq hands an orphaned back-end the rendezvous of its
// replacement parent link (the back-end analogue of cmdReparent).
type reparentReq struct {
	rw   transport.Rewirer
	addr string
}

// cmdReparent hands an orphaned node the rendezvous of its replacement
// parent link; the orphan redials it from inside its own event loop (the
// fabric-agnostic half of the rewiring protocol: the adopter listens, the
// orphan redials).
type cmdReparent struct {
	rw    transport.Rewirer
	addr  string
	reply chan error
}

// cmdCheckpoint asks a node to checkpoint its per-stream composable filter
// state upstream (opCheckpoint control packets, cached ckptHops levels up
// at its potential adopters). Replies with the number of streams
// checkpointed.
type cmdCheckpoint struct {
	reply chan int
}

// cmdFetchCkpt reads the node's cached checkpoint blobs for one (failed)
// descendant rank, for adoption-time composition.
type cmdFetchCkpt struct {
	rank  Rank
	reply chan map[uint32][]byte
}

func (*cmdSnapshot) isNodeCmd()   {}
func (*cmdAdopt) isNodeCmd()      {}
func (*cmdReparent) isNodeCmd()   {}
func (*cmdCheckpoint) isNodeCmd() {}
func (*cmdFetchCkpt) isNodeCmd()  {}

// handleCmd executes a recovery command inside the node's event loop.
// Commands that read or rebuild filter state park the pipeline shards
// first (quiesce): the snapshot must be a consistent cut, and the adoption
// rebuilds synchronizers the workers otherwise own single-writer.
func (n *node) handleCmd(c nodeCmd, inbox chan inMsg) {
	switch cmd := c.(type) {
	case *cmdSnapshot:
		m := map[uint32][]byte{}
		n.quiesceShards(func() {
			for id, ss := range n.streams {
				if st, ok := ss.tform.(filter.StatefulTransformation); ok {
					if blob, err := st.State(); err == nil && len(blob) > 0 {
						m[id] = blob
					}
				}
			}
		})
		cmd.reply <- m
	case *cmdAdopt:
		states := make([]*streamState, 0, len(n.streams))
		for _, ss := range n.streams {
			states = append(states, ss)
		}
		// The dead child's EOF may still be queued behind data: release any
		// worker waiting on its window NOW, or it never reaches the quiesce
		// barrier below. Vacated (split-migrated) slots get the same
		// treatment — their links are about to be fenced too.
		if cmd.deadSlot >= 0 && cmd.deadSlot < len(n.childOut) {
			n.childOut[cmd.deadSlot].releaseWaiters()
		}
		for _, s := range cmd.vacated {
			if s >= 0 && s < len(n.childOut) {
				n.childOut[s].releaseWaiters()
			}
		}
		n.quiesceShards(func() {
			applyAdoption(cmd, n.ep, n.nw.registry, n.installChild, states, n.flushBatches, inbox, n.ctrlLane, n.readStop)
			n.redispatchStash(cmd.slots)
		})
		n.liveChildren += len(cmd.links)
		if n.shuttingDown {
			down := packet.MustNew(packet.TagControl, 0, n.rank, ctrlShutdownFormat, int64(opShutdown))
			for _, l := range cmd.links {
				_ = l.Send(down)
			}
		}
		cmd.reply <- nil
	case *cmdReparent:
		link, err := cmd.rw.Redial(cmd.addr)
		if err != nil {
			// Redial failed: stay orphaned and await another adoption.
			cmd.reply <- err
			return
		}
		if n.nw.flowOn() {
			// Fresh link, fresh credit window on both sides: the retained
			// egress buffer re-enters the bounded window from zero without
			// double-spending credits.
			link = transport.NewFlowLink(link, n.nw.cfg.LinkWindow)
		}
		// The old parent is dead or being replaced, but its EOF may not
		// have been processed yet: release any worker waiting on its
		// window before quiescing, or the barrier never forms.
		n.parentOut.releaseWaiters()
		// Park the shards for the link swap: workers send on parentOut
		// concurrently, and the un-batched fast path reads the queue's
		// link lock-free — safe only because every link mutation happens
		// with the data plane stopped.
		n.quiesceShards(func() {
			n.parentMu.Lock()
			old := n.ep.Parent
			n.ep.Parent = link
			n.parentMu.Unlock()
			transport.DropLink(old) // usually already dead; fences false positives
			n.parentGen++
			n.orphaned = false
			// Repoint the upstream egress queue, re-flushing any packets it
			// retained while the old parent was dead: accepted-but-unflushed
			// data survives the failure instead of being lost with the link.
			n.parentOut.setLink(link)
		})
		go readLink(link, -1, inbox, n.ctrlLane, n.readStop)
		cmd.reply <- nil
	case *cmdCheckpoint:
		// Snapshot under quiesce (a consistent cut of every stream's filter
		// state), send outside it: sendNow keeps control FIFO behind queued
		// data without waiting out a batching window.
		blobs := map[uint32][]byte{}
		n.quiesceShards(func() {
			for id, ss := range n.streams {
				if st, ok := ss.tform.(filter.StatefulTransformation); ok {
					if blob, err := st.State(); err == nil && len(blob) > 0 {
						blobs[id] = blob
					}
				}
			}
		})
		if !n.orphaned {
			for id, blob := range blobs {
				_ = n.parentOut.sendNow(ckptPacket(n.rank, id, ckptHops, blob))
			}
		}
		if len(blobs) > 0 {
			n.nw.metrics.CheckpointsTaken.Add(int64(len(blobs)))
		}
		cmd.reply <- len(blobs)
	case *cmdFetchCkpt:
		out := make(map[uint32][]byte, len(n.ckpts[cmd.rank]))
		for id, b := range n.ckpts[cmd.rank] {
			out[id] = b
		}
		cmd.reply <- out
	}
}

// redispatchStash re-routes a fenced dead child's never-sent queued
// packets through the repaired stream table: they were destined for the
// dead child's subtree, whose members are now reachable through the newly
// adopted slots. Runs under quiesce right after applyAdoption; sends are
// router-context (non-blocking) so recovery never wedges on a full window.
func (n *node) redispatchStash(slots []int) {
	if len(n.reroute) == 0 {
		return
	}
	stash := n.reroute
	n.reroute = nil
	for _, p := range stash {
		ss := n.streams[p.StreamID]
		if ss == nil {
			continue
		}
		down := ss.routeSnapshot()
		for _, slot := range slots {
			if slot < len(down) && down[slot] && slot < len(n.childOut) && n.childOut[slot] != nil {
				_ = n.childOut[slot].sendCtx(p, ss.prio, false)
			}
		}
	}
}

// applyAdoption runs the adoption sequence shared by internal nodes and
// the front-end: fence the declared-dead child off (even a false positive
// — alive but silent — must not keep feeding this node), install the new
// child links, start their readers, and repair every stream. The readers
// start before stream repair so both link directions drain while
// announcements are sent — their packets are only processed after the
// command completes, once routing is rebuilt. Callers run this with their
// pipeline shards quiesced (it mutates child slots and synchronizer state
// the shards otherwise own) and keep their own bookkeeping (live-child
// counts, shutdown racing) around it.
func applyAdoption(c *cmdAdopt, ep *transport.Endpoint, reg *filter.Registry,
	install func(slot int, l transport.Link), states []*streamState,
	flush func(*streamState, [][]*packet.Packet), inbox chan inMsg,
	ctrl chan *packet.Packet, readStop <-chan struct{}) {
	if c.deadSlot >= 0 && c.deadSlot < len(ep.Children) {
		transport.DropLink(ep.Children[c.deadSlot])
		install(c.deadSlot, nil)
	}
	for _, s := range c.vacated {
		if s >= 0 && s < len(ep.Children) {
			transport.DropLink(ep.Children[s])
			install(s, nil)
		}
	}
	for i, l := range c.links {
		install(c.slots[i], l)
	}
	for i, l := range c.links {
		go readLink(l, c.slots[i], inbox, ctrl, readStop)
	}
	repairStreams(reg, states, c, flush)
}

// repairStreams applies an adoption to every stream at the adopter:
// rebuild slot routing and synchronization, re-announce the stream into
// the adopted subtrees, and restore the lost level's composable filter
// state — by replay through the normal pipeline when the filter supports
// it (also regenerating information lost in flight), else by a silent
// state absorb.
func repairStreams(reg *filter.Registry, states []*streamState, c *cmdAdopt,
	flush func(*streamState, [][]*packet.Packet)) {
	for _, ss := range states {
		// Rounds that were only gated on the dead slot complete now —
		// flush them first, they are the oldest data.
		if released := ss.rebuildSlots(c.slotInfo); len(released) > 0 {
			flush(ss, released)
		}
		announceStream(ss, c.slots, c.links)
		if batch := replayComposed(ss, c.composed); batch != nil {
			flush(ss, [][]*packet.Packet{batch})
		} else {
			absorbComposed(reg, ss, c.composed)
		}
	}
}

// announceStream re-establishes a stream in newly adopted subtrees: the
// opNewStream control message is replayed on each new child link whose
// subtree carries members. Nodes that already know the stream ignore the
// replay, so this only repairs state lost with the failed node.
func announceStream(ss *streamState, slots []int, links []transport.Link) {
	down := ss.routeSnapshot()
	for i, slot := range slots {
		if slot < len(down) && down[slot] {
			_ = links[i].Send(ss.announcePacket())
		}
	}
}

// stateMerger matches reliability.Merger structurally, avoiding a core →
// reliability dependency: stateful filters that can absorb a sibling
// instance's state implement it (e.g. the eqclass filter).
type stateMerger interface {
	MergeState(other filter.StatefulTransformation) error
}

// stateReplayer is implemented by stateful filters that can turn a state
// snapshot back into data packets. During adoption the composed lost state
// is replayed through the adopter's normal filter pipeline, which both
// absorbs it and re-forwards upstream any information that was in flight
// with the failed node when it crashed — the strongest form of the
// zero-cost repair.
type stateReplayer interface {
	ReplayState(state []byte) ([]*packet.Packet, error)
}

// replayComposed converts ss's composed lost state into a batch to feed
// through the adopter's pipeline, or nil when the filter cannot replay
// (callers then fall back to a silent absorb via absorbComposed).
func replayComposed(ss *streamState, composed map[uint32][]byte) []*packet.Packet {
	blob := composed[ss.id]
	if len(blob) == 0 {
		return nil
	}
	r, ok := ss.tform.(stateReplayer)
	if !ok {
		return nil
	}
	pkts, err := r.ReplayState(blob)
	if err != nil || len(pkts) == 0 {
		return nil
	}
	for i, p := range pkts {
		pkts[i] = p.WithStream(ss.id)
	}
	return pkts
}

// absorbComposed merges a reconstructed (composed) filter state for ss into
// the adopter's own filter instance, so suppression/accumulation semantics
// survive the failed level's disappearance.
func absorbComposed(reg *filter.Registry, ss *streamState, composed map[uint32][]byte) {
	blob := composed[ss.id]
	if len(blob) == 0 {
		return
	}
	m, ok := ss.tform.(stateMerger)
	if !ok {
		return
	}
	nt, err := reg.NewTransformation(ss.tformName)
	if err != nil {
		return
	}
	scratch, ok := nt.(filter.StatefulTransformation)
	if !ok {
		return
	}
	if err := scratch.SetState(blob); err != nil {
		return
	}
	_ = m.MergeState(scratch)
}

// recoverable reports whether orphaned subtrees should survive a parent
// crash and await adoption (rather than abandoning ship).
func (nw *Network) recoverable() bool { return nw.cfg.Recoverable }

// tearingDown reports whether network teardown has begun.
func (nw *Network) tearingDown() bool {
	select {
	case <-nw.dying:
		return true
	default:
		return false
	}
}

// Recoverable reports whether the network was configured for live recovery.
func (nw *Network) Recoverable() bool { return nw.cfg.Recoverable }

// Transport returns the network's link substrate kind.
func (nw *Network) Transport() TransportKind { return nw.cfg.Transport }

// HeartbeatPeriod returns the configured failure-detection beacon period
// (zero when heartbeats are disabled).
func (nw *Network) HeartbeatPeriod() time.Duration { return nw.cfg.HeartbeatPeriod }

// Registry returns the filter registry the overlay instantiates from.
func (nw *Network) Registry() *filter.Registry { return nw.registry }

// cacheCheckpoint records a descendant's filter-state checkpoint observed
// at the front-end — the adopter when one of the root's own children dies.
func (nw *Network) cacheCheckpoint(p *packet.Packet) {
	origin, id, _, blob, err := parseCheckpoint(p)
	if err != nil {
		return
	}
	nw.ckptMu.Lock()
	if nw.ckpts == nil {
		nw.ckpts = map[Rank]map[uint32][]byte{}
	}
	m := nw.ckpts[origin]
	if m == nil {
		m = map[uint32][]byte{}
		nw.ckpts[origin] = m
	}
	m[id] = blob
	nw.ckptMu.Unlock()
}

// CheckpointNow asks every internal node to checkpoint its per-stream
// composable filter state toward its potential adopters, returning the
// number of (node, stream) checkpoints taken. internal/recovery drives
// this periodically (Config.CheckpointPeriod); tests call it directly.
func (nw *Network) CheckpointNow() int {
	nw.mu.Lock()
	nodes := make([]*node, 0, len(nw.byRank))
	for _, n := range nw.byRank {
		nodes = append(nodes, n)
	}
	nw.mu.Unlock()
	total := 0
	for _, n := range nodes {
		c := &cmdCheckpoint{reply: make(chan int, 1)}
		if err := nw.sendNodeCmd(n, c); err == nil {
			total += <-c.reply
		}
	}
	return total
}

// noteHeartbeat records a liveness beacon observed at the front-end.
func (nw *Network) noteHeartbeat(origin Rank) {
	nw.metrics.HeartbeatsSeen.Add(1)
	nw.hbMu.Lock()
	nw.lastHB[origin] = time.Now()
	nw.hbMu.Unlock()
}

// Heartbeats snapshots the last time each rank's beacon reached the
// front-end. Ranks that have never been heard from are absent.
func (nw *Network) Heartbeats() map[Rank]time.Time {
	nw.hbMu.Lock()
	defer nw.hbMu.Unlock()
	out := make(map[Rank]time.Time, len(nw.lastHB))
	for r, t := range nw.lastHB {
		out[r] = t
	}
	return out
}

// heartbeatLoop periodically emits this rank's liveness beacon on its
// current parent link. It stops at network teardown or when the rank is
// killed; send failures (a dead parent, pre-adoption) are retried on the
// next tick.
func (nw *Network) heartbeatLoop(origin Rank, link func() transport.Link, stop <-chan struct{}) {
	t := time.NewTicker(nw.cfg.HeartbeatPeriod)
	defer t.Stop()
	for {
		select {
		case <-nw.dying:
			return
		case <-stop:
			return
		case <-t.C:
			if l := link(); l != nil {
				if err := l.Send(heartbeatPacket(origin)); err == nil {
					nw.metrics.HeartbeatsSent.Add(1)
				}
			}
		}
	}
}

// Kill injects a crash fault: the process at rank is terminated without
// warning and all its links are severed abruptly (in-flight packets lost),
// on both the chan and TCP fabrics. The overlay is left running with a
// hole; pair with Adopt (or internal/recovery's manager) to repair it.
func (nw *Network) Kill(r Rank) error {
	if r == 0 {
		return fmt.Errorf("%w: the front-end cannot be killed", ErrNotRecoverable)
	}
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return ErrShutdown
	}
	n := nw.byRank[r]
	be := nw.bes[r]
	nw.mu.Unlock()
	if n == nil && be == nil {
		return fmt.Errorf("core: no such rank %d", r)
	}
	nw.metrics.NodesFailed.Add(1)
	if be != nil {
		be.kill()
	} else {
		n.kill()
	}
	return nil
}

// sendNodeCmd delivers a command to a node's event loop, failing rather
// than deadlocking if the node is dead or the network is tearing down.
func (nw *Network) sendNodeCmd(n *node, c nodeCmd) error {
	select {
	case n.cmdCh <- c:
		return nil
	case <-n.killCh:
		return fmt.Errorf("core: rank %d is dead", n.rank)
	case <-nw.dying:
		return ErrShutdown
	case <-time.After(5 * time.Second):
		return fmt.Errorf("core: rank %d did not accept command", n.rank)
	}
}

// replacementAcceptTimeout bounds how long an adoption waits for an
// orphan's redial to land on its offer. An orphan that dies between the
// reparent handoff and its redial (an overlapping failure) must not wedge
// the recovery: its offer is abandoned and its slot stays empty until its
// own recovery, like any other dead child.
const replacementAcceptTimeout = 2 * time.Second

// acceptReplacement waits, bounded, for the orphan's redial to land on the
// offer and returns the adopter-side end of the replacement link.
func acceptReplacement(o transport.Offer) (transport.Link, error) {
	type res struct {
		l   transport.Link
		err error
	}
	ch := make(chan res, 1)
	go func() {
		l, err := o.Accept()
		ch <- res{l, err}
	}()
	timer := time.NewTimer(replacementAcceptTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.l, r.err
	case <-timer.C:
		_ = o.Close()
		r := <-ch // Accept fails (or delivers a raced redial) once closed
		if r.err != nil {
			return nil, fmt.Errorf("core: orphan never redialed: %w", r.err)
		}
		return r.l, nil
	}
}

// Adopt applies the zero-cost recovery rule to the running overlay after
// the process at failed has crashed: its parent adopts the orphans, every
// affected stream's routing and synchronization is rebuilt, streams are
// re-announced into the adopted subtrees, and — via compose — the lost
// node's composable filter state is reconstructed from the orphans'
// snapshots and absorbed by the adopter. compose may be nil to skip state
// reconstruction. Works on any fabric: replacement links are minted by
// the network's Rewirer (the adopter listens, each orphan redials).
func (nw *Network) Adopt(failed Rank, compose StateComposer) (*Adoption, error) {
	nw.recMu.Lock()
	defer nw.recMu.Unlock()
	start := time.Now()

	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return nil, ErrShutdown
	}
	if failed == 0 {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: the front-end is a single point of control", ErrNotRecoverable)
	}
	if !nw.view.valid(failed) {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: no such rank %d", ErrNotRecoverable, failed)
	}
	if nw.view.dead[failed] {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: rank %d already recovered", ErrNotRecoverable, failed)
	}
	parent := nw.view.parent[failed]
	if nw.view.dead[parent] {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: parent %d of %d has also failed; recover it first", ErrNotRecoverable, parent, failed)
	}
	deadSlot := nw.view.slotOf(parent, failed)
	origFailedChildren := append([]Rank(nil), nw.view.children[failed]...)
	orphans, slots := nw.view.adopt(failed, parent)
	info := nw.view.slotInfoLocked(parent)
	orphanNodes := make([]*node, len(orphans))
	orphanBEs := make([]*BackEnd, len(orphans))
	for i, o := range orphans {
		orphanNodes[i] = nw.byRank[o]
		orphanBEs[i] = nw.bes[o]
	}
	adopterNode := nw.byRank[parent] // nil when the front-end adopts
	nw.mu.Unlock()

	// 1. Snapshot the orphans' composable filter state (internal orphans
	// only; back-ends carry no filter state).
	snaps := make([]map[uint32][]byte, len(orphans))
	for i, on := range orphanNodes {
		if on == nil {
			continue
		}
		c := &cmdSnapshot{reply: make(chan map[uint32][]byte, 1)}
		if err := nw.sendNodeCmd(on, c); err == nil {
			snaps[i] = <-c.reply
		}
	}

	// 1b. The adopter may hold the failed node's own last checkpoint
	// (opCheckpoint travels ckptHops levels up): fold it in as one more
	// composition input. Safe for mergeable, monotone filter states —
	// re-absorbing an older self is idempotent there — and it recovers
	// information that was already above the orphans, in flight with the
	// failed node, when it crashed.
	var ckpt map[uint32][]byte
	if adopterNode != nil {
		c := &cmdFetchCkpt{rank: failed, reply: make(chan map[uint32][]byte, 1)}
		if err := nw.sendNodeCmd(adopterNode, c); err == nil {
			ckpt = <-c.reply
		}
	} else {
		nw.ckptMu.Lock()
		if m := nw.ckpts[failed]; len(m) > 0 {
			ckpt = make(map[uint32][]byte, len(m))
			for id, b := range m {
				ckpt[id] = b
			}
		}
		nw.ckptMu.Unlock()
	}

	// 2. Reconstruct the failed node's state per stream by composition.
	composed := map[uint32][]byte{}
	if compose != nil {
		ids := map[uint32]bool{}
		for _, s := range snaps {
			for id := range s {
				ids[id] = true
			}
		}
		for id := range ckpt {
			ids[id] = true
		}
		for id := range ids {
			fss := nw.fe.state(id)
			if fss == nil {
				continue
			}
			blobs := make([][]byte, len(orphans), len(orphans)+1)
			for i, s := range snaps {
				blobs[i] = s[id]
			}
			if b := ckpt[id]; len(b) > 0 {
				blobs = append(blobs, b)
			}
			blob, err := compose(id, fss.tformName, blobs)
			if err != nil {
				nw.metrics.FilterErrors.Add(1)
				continue
			}
			if len(blob) > 0 {
				composed[id] = blob
			}
		}
	}

	// 3. Mint one replacement-link rendezvous per orphan and re-parent the
	// orphans first: each orphan redials its offer from inside its own
	// event loop, so its reader goroutine is live before the adopter sends
	// stream re-announcements (those sends could otherwise block on a full
	// link buffer with nobody draining it). Orphan data sent before the
	// adopter accepts its end just queues in the link — the chan buffer
	// in-process, the listen backlog's socket buffers on TCP.
	rw := nw.rewirer
	offers := make([]transport.Offer, len(orphans))
	links := make([]transport.Link, len(orphans)) // adopter-side ends
	reparented := make([]bool, len(orphans))
	// rollback undoes the view mutation, abandons open offers, and severs
	// the accepted links if the adopter cannot complete the installation
	// (e.g. it was killed while this recovery ran), so a later retry
	// starts from a consistent state and already-reparented orphans fall
	// back to waiting. The orphan slots are vacated, not removed: a
	// concurrent attach may have appended further slots whose indices
	// must not shift.
	rollback := func() {
		for i := range orphans {
			if offers[i] != nil {
				_ = offers[i].Close()
			}
			transport.DropLink(links[i])
		}
		nw.mu.Lock()
		nw.view.dead[failed] = false
		nw.view.children[failed] = origFailedChildren
		nw.view.vacate(parent, slots)
		for _, o := range orphans {
			nw.view.parent[o] = failed
		}
		nw.mu.Unlock()
	}
	for i := range orphans {
		o, err := rw.Offer()
		if err != nil {
			continue // orphan stays orphaned; a later recovery retries
		}
		offers[i] = o
		if on := orphanNodes[i]; on != nil {
			c := &cmdReparent{rw: rw, addr: o.Addr(), reply: make(chan error, 1)}
			if err := nw.sendNodeCmd(on, c); err == nil {
				if rerr := <-c.reply; rerr == nil {
					reparented[i] = true
				}
			}
			continue
		}
		if ob := orphanBEs[i]; ob != nil && !ob.killed() {
			old := ob.parentLink()
			select {
			case ob.reparentCh <- reparentReq{rw: rw, addr: o.Addr()}:
				// Sever the old link even if the declared-dead parent is
				// actually alive (a false-positive detection): the
				// back-end's Recv then EOFs and it picks up the buffered
				// rendezvous. For a real crash this is a no-op.
				transport.DropLink(old)
				reparented[i] = true
			case <-ob.killCh:
			case <-nw.dying:
			}
		}
	}
	// Accept the adopter-side end of every replacement link, concurrently
	// so the bounded waits overlap. Bounded: an orphan that died after the
	// handoff (an overlapping failure) never redials, and must not wedge
	// this adoption — after replacementAcceptTimeout (once, not per
	// orphan) its offer is abandoned and it is treated like any other
	// unreparented orphan.
	var acceptWG sync.WaitGroup
	for i := range orphans {
		if !reparented[i] {
			if offers[i] != nil {
				_ = offers[i].Close()
				offers[i] = nil
			}
			continue
		}
		acceptWG.Add(1)
		go func(i int) {
			defer acceptWG.Done()
			l, err := acceptReplacement(offers[i])
			if err != nil {
				reparented[i] = false
				return
			}
			if nw.flowOn() {
				// The adopter-side end of a replacement link gets fresh
				// credit accounting, mirroring the orphan's fresh window.
				l = transport.NewFlowLink(l, nw.cfg.LinkWindow)
			}
			links[i] = l
			nw.metrics.RewiredLinks.Add(1)
		}(i)
	}
	acceptWG.Wait()
	for i := range offers {
		offers[i] = nil // accepts consumed (or closed) every open offer
	}

	// 4. Install the adopter-side ends at the adopter: new child slots,
	// stream routing/synchronizer rebuild, re-announce, state repair. An
	// orphan that could not be reparented (itself dead — a cascading
	// failure) gets no link: its slot stays empty until its own recovery,
	// exactly like any other dead child awaiting adoption, instead of
	// wiring a reader-less link that would wedge the adopter.
	liveSlots := make([]int, 0, len(orphans))
	liveLinks := make([]transport.Link, 0, len(orphans))
	for i := range orphans {
		if reparented[i] {
			liveSlots = append(liveSlots, slots[i])
			liveLinks = append(liveLinks, links[i])
		}
	}
	adopt := &cmdAdopt{
		deadSlot: deadSlot,
		slots:    liveSlots,
		links:    liveLinks,
		slotInfo: info,
		composed: composed,
		reply:    make(chan error, 1),
	}
	if adopterNode != nil {
		if err := nw.sendNodeCmd(adopterNode, adopt); err != nil {
			rollback()
			return nil, err
		}
		<-adopt.reply
	} else {
		// The front-end loop exits once every child link is gone (an
		// unrecoverable state for the root's own children), so do not
		// wait forever on it.
		select {
		case nw.fe.cmdCh <- adopt:
			<-adopt.reply
		case <-nw.dying:
			rollback()
			return nil, ErrShutdown
		case <-time.After(5 * time.Second):
			rollback()
			return nil, fmt.Errorf("core: front-end did not accept the adoption")
		}
	}

	rewire := time.Since(start)
	nw.metrics.RecoveriesCompleted.Add(1)
	nw.metrics.OrphansAdopted.Add(int64(len(orphans)))
	nw.metrics.RecoveryNanos.Add(rewire.Nanoseconds())
	return &Adoption{
		Failed:          failed,
		NewParent:       parent,
		Orphans:         orphans,
		StreamsComposed: len(composed),
		Rewire:          rewire,
	}, nil
}
