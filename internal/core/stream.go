package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/packet"
)

// StreamSpec describes a new virtual channel over a subset of back-ends.
type StreamSpec struct {
	// Endpoints lists the member back-end ranks. Empty means every
	// back-end in the topology. Streams over subsets let a tool select
	// different portions of the topology for different communication
	// needs; streams may overlap freely.
	Endpoints []Rank
	// Transformation names the upstream reduction filter (registry name).
	// Empty selects the identity filter.
	Transformation string
	// Synchronization names the batching policy: "waitforall", "timeout",
	// or "nullsync". Empty selects "nullsync".
	Synchronization string
	// DownTransformation optionally names a filter applied to each
	// downstream packet at every communication process on its way to the
	// members — the paper's proposed bidirectional filtering. Empty means
	// packets fan out unchanged.
	DownTransformation string
	// RecvBuffer sets the front-end delivery buffer (packets); 0 = 1024.
	RecvBuffer int
	// Priority is the stream's egress scheduling priority on
	// flow-controlled networks (Config.LinkWindow > 0): on every link,
	// queued data from higher-priority streams flushes first, and streams
	// of equal priority round-robin so no stream starves. 0 is the
	// default class; negative values yield to it. Ignored when flow
	// control is off (egress is then plain FIFO).
	Priority int
}

// Stream is a virtual channel between the front-end and a set of member
// back-ends, with per-node filters reducing upstream traffic.
type Stream struct {
	nw        *Network
	id        uint32
	members   []Rank
	tform     string
	sync      string
	recvCh    chan *packet.Packet
	closed    chan struct{}
	closeOnce sync.Once
}

// ErrTimeout is returned by RecvTimeout when no packet arrives in time.
var ErrTimeout = errors.New("core: receive timed out")

// Stream-id namespaces: the 32-bit stream id is split into a 12-bit session
// namespace and a 20-bit per-namespace sequence (id = ns<<20 | seq), so a
// tenant session owns a contiguous, collision-free id range and a single
// control packet can address every stream of a tenant at once (CloseSession).
// Namespace 0 is the legacy single-tenant space used by NewStream.
const (
	nsShift = 20
	// MaxNamespace is the largest session namespace id.
	MaxNamespace = 1<<(32-nsShift) - 1
	// maxSeq is the largest per-namespace stream sequence number.
	maxSeq = 1<<nsShift - 1
)

// NamespaceOf returns the session namespace a stream id belongs to.
func NamespaceOf(id uint32) uint32 { return id >> nsShift }

// NewStream establishes a stream in the legacy namespace (0); see
// NewStreamNS.
func (nw *Network) NewStream(spec StreamSpec) (*Stream, error) {
	return nw.NewStreamNS(0, spec)
}

// NewStreamNS establishes a stream in the given session namespace: filter
// and routing state is instantiated at the front-end and announced
// downstream so every communication process on the members' paths sets up
// its own filters before any data flows. A non-zero namespace must have an
// open session (OpenSession); the stream then draws send credits from the
// session's budget and its traffic is charged to the tenant's counters.
func (nw *Network) NewStreamNS(ns uint32, spec StreamSpec) (*Stream, error) {
	if ns > MaxNamespace {
		return nil, fmt.Errorf("core: namespace %d out of range [0, %d]", ns, MaxNamespace)
	}
	nw.mu.Lock()
	if nw.shutdown {
		nw.mu.Unlock()
		return nil, ErrShutdown
	}
	var sess *sessionState
	if ns != 0 {
		if sess = nw.sessions[ns]; sess == nil {
			nw.mu.Unlock()
			return nil, fmt.Errorf("core: namespace %d has no open session", ns)
		}
	}
	seq := nw.nextSeq[ns]
	if seq == 0 {
		seq = 1 // id 0 is never a valid stream
	}
	if seq > maxSeq {
		nw.mu.Unlock()
		return nil, fmt.Errorf("core: namespace %d exhausted its %d stream ids", ns, maxSeq)
	}
	nw.nextSeq[ns] = seq + 1
	id := ns<<nsShift | seq
	nw.mu.Unlock()

	if spec.Synchronization == "" {
		spec.Synchronization = "nullsync"
	}
	// Membership is validated against the live overlay: dead back-ends (a
	// recovered failure) cannot join new streams.
	nw.mu.Lock()
	members := spec.Endpoints
	if len(members) == 0 {
		members = nw.view.aliveLeaves()
	} else {
		for _, m := range members {
			if !nw.view.valid(m) {
				nw.mu.Unlock()
				return nil, fmt.Errorf("core: stream endpoint %d does not exist", m)
			}
			if !nw.view.backend[m] {
				nw.mu.Unlock()
				return nil, fmt.Errorf("core: stream endpoint %d is not a back-end", m)
			}
			if nw.view.dead[m] {
				nw.mu.Unlock()
				return nil, fmt.Errorf("core: stream endpoint %d has failed", m)
			}
		}
	}
	nw.mu.Unlock()

	// Instantiate the front-end's own filter level; this also validates
	// both filter names before anything is announced downstream. Serialize
	// with live recovery (recMu): otherwise a stream could snapshot the
	// pre-adoption slot layout yet register after the adoption repaired
	// every known stream, leaving it permanently mis-routed.
	nw.recMu.Lock()
	ss, err := newStreamState(nw, 0, nw.registry, id,
		spec.Transformation, spec.Synchronization, spec.DownTransformation, spec.Priority, members)
	if err != nil {
		nw.recMu.Unlock()
		return nil, err
	}
	if sess != nil {
		// Front-end sends on this stream draw from the tenant's credit
		// budget, and its traffic lands on the tenant's counters. Both are
		// immutable for the session's lifetime, so lock-free reads are safe.
		ss.budget = sess.budget
		ss.tc = sess.counters
		sess.counters.StreamsOpened.Add(1)
	}

	buf := spec.RecvBuffer
	if buf <= 0 {
		buf = 1024
	}
	st := &Stream{
		nw:      nw,
		id:      id,
		members: append([]Rank(nil), members...),
		tform:   spec.Transformation,
		sync:    spec.Synchronization,
		recvCh:  make(chan *packet.Packet, buf),
		closed:  make(chan struct{}),
	}
	nw.mu.Lock()
	nw.streams[id] = st
	nw.mu.Unlock()
	nw.fe.setState(id, ss)
	// Track the stream on its pipeline shard from birth, so a timer armed
	// by an inline run always has a poller.
	nw.fe.shards.register(ss)
	nw.recMu.Unlock()

	// Announce downstream along member paths only.
	ctrl := newStreamPacket(id, spec.Transformation, spec.Synchronization,
		spec.DownTransformation, spec.Priority, members)
	if err := nw.fe.sendToStream(ss, ctrl); err != nil {
		return nil, fmt.Errorf("core: announcing stream %d: %w", id, err)
	}
	return st, nil
}

// Stream returns the open stream with the given id, or nil.
func (nw *Network) Stream(id uint32) *Stream {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.streams[id]
}

// ID returns the stream identifier carried by its packets.
func (s *Stream) ID() uint32 { return s.id }

// Members returns the member back-end ranks (shared slice; do not modify).
func (s *Stream) Members() []Rank { return s.members }

// Multicast sends a packet downstream to every member back-end. The packet
// fans out along the tree, so the front-end performs only fan-out(root)
// sends regardless of member count. The values are retained by the packet
// (see packet.New): a caller expanding a long-lived []any with ... must
// not mutate it after.
func (s *Stream) Multicast(tag int32, format string, values ...any) error {
	p, err := packet.New(tag, s.id, 0, format, values...)
	if err != nil {
		return err
	}
	return s.MulticastPacket(p)
}

// MulticastPacket sends a pre-built packet downstream to all members.
func (s *Stream) MulticastPacket(p *packet.Packet) error {
	select {
	case <-s.closed:
		return ErrShutdown
	default:
	}
	ss := s.nw.fe.state(s.id)
	if ss == nil {
		return ErrShutdown
	}
	p = p.WithStream(s.id)
	s.nw.metrics.PacketsDown.Add(1)
	if ss.tc != nil {
		ss.tc.PacketsDown.Add(1)
	}
	if err := s.nw.fe.sendToStream(ss, p); err != nil {
		return fmt.Errorf("core: multicast on stream %d: %w", s.id, err)
	}
	return nil
}

// deliver hands a fully reduced packet to the stream's receiver, dropping
// it if the stream has been closed.
func (s *Stream) deliver(p *packet.Packet) {
	select {
	case s.recvCh <- p:
	case <-s.closed:
	}
}

// Recv blocks for the next fully reduced packet arriving at the front-end
// on this stream. It returns io.EOF once the stream is closed and drained.
func (s *Stream) Recv() (*packet.Packet, error) {
	select {
	case p := <-s.recvCh:
		return p, nil
	default:
	}
	select {
	case p := <-s.recvCh:
		return p, nil
	case <-s.closed:
		select {
		case p := <-s.recvCh:
			return p, nil
		default:
			return nil, io.EOF
		}
	}
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
func (s *Stream) RecvTimeout(d time.Duration) (*packet.Packet, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case p := <-s.recvCh:
		return p, nil
	case <-s.closed:
		select {
		case p := <-s.recvCh:
			return p, nil
		default:
			return nil, io.EOF
		}
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// Close tears the stream down: communication processes drain their
// synchronizers, forget the stream, and propagate the close toward the
// members. Packets already in flight above a draining node are delivered
// unfiltered and dropped at the front-end.
func (s *Stream) Close() error {
	var sendErr error
	s.closeOnce.Do(func() {
		ss := s.nw.fe.state(s.id)
		if ss != nil {
			sendErr = s.nw.fe.sendToStream(ss, closeStreamPacket(s.id))
		}
		s.teardownFE(ss)
	})
	return sendErr
}

// bulkClose tears down the stream's front-end state without per-stream
// control traffic: CloseSession floods one opCloseSession packet that
// closes every stream of the namespace at every node, so announcing each
// close individually would only duplicate work on the wire.
func (s *Stream) bulkClose() {
	s.closeOnce.Do(func() { s.teardownFE(s.nw.fe.state(s.id)) })
}

// teardownFE is the front-end half of a stream close, shared by Close and
// bulkClose (both run under closeOnce).
func (s *Stream) teardownFE(ss *streamState) {
	s.nw.fe.dropState(s.id)
	// Trim the stream from its pipeline shard's poll set; data still in
	// flight for it is dropped by the router (no state) from here on,
	// and the closed mark keeps an already-dispatched item from
	// re-registering the dead state behind the forget.
	if ss != nil {
		ss.closed.Store(true)
		if ss.tc != nil {
			ss.tc.StreamsClosed.Add(1)
		}
	}
	s.nw.fe.shards.forget(s.id)
	s.nw.mu.Lock()
	delete(s.nw.streams, s.id)
	s.nw.mu.Unlock()
	close(s.closed)
}

// closeRecv marks the stream closed without control traffic; used at
// network shutdown.
func (s *Stream) closeRecv() {
	s.closeOnce.Do(func() { close(s.closed) })
}
