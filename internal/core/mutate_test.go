package core

import (
	"errors"
	"testing"
	"time"
)

// splitEcho builds a Recoverable chan-fabric network with load reports on,
// whose back-ends answer every multicast with their rank.
func splitEcho(t *testing.T, spec string, lr time.Duration) *Network {
	t.Helper()
	tree := mustTree(t, spec)
	nw, err := NewNetwork(Config{
		Topology:         tree,
		Recoverable:      true,
		LoadReportPeriod: lr,
		OnBackEnd: func(be *BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				_ = be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank()))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestSplitNodeRedistributesChildren is the core split check: a saturated
// internal process gains a sibling, half its children migrate, and both a
// pre-split stream and a fresh one keep producing full-membership answers.
func TestSplitNodeRedistributesChildren(t *testing.T) {
	nw := splitEcho(t, "kary:4^2", 0) // internals 1..4; leaves 5..20
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, l := range nw.Tree().Leaves() {
		want += float64(l)
	}
	round := func(s *Stream) {
		t.Helper()
		if err := s.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := s.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("sum = %g, want %g", v, want)
		}
	}
	round(st)

	q, err := nw.SplitNode(1) // children 5,6,7,8
	if err != nil {
		t.Fatal(err)
	}
	if q != 21 {
		t.Errorf("sibling rank = %d, want 21", q)
	}
	if got := nw.LiveParent(q); got != 0 {
		t.Errorf("LiveParent(%d) = %d, want 0", q, got)
	}
	if kids := nw.LiveChildren(1); len(kids) != 2 || kids[0] != 5 || kids[1] != 6 {
		t.Errorf("donor children = %v, want [5 6]", kids)
	}
	if kids := nw.LiveChildren(q); len(kids) != 2 || kids[0] != 7 || kids[1] != 8 {
		t.Errorf("sibling children = %v, want [7 8]", kids)
	}
	for _, c := range []Rank{7, 8} {
		if got := nw.LiveParent(c); got != q {
			t.Errorf("LiveParent(%d) = %d, want %d", c, got, q)
		}
	}
	live := nw.LiveInternal()
	if len(live) != 5 || live[4] != q {
		t.Errorf("LiveInternal = %v, want [1 2 3 4 %d]", live, q)
	}

	// The pre-split stream still reaches every leaf through the new shape.
	for i := 0; i < 3; i++ {
		round(st)
	}
	// So does a stream created after the split.
	st2, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	round(st2)

	m := nw.Metrics()
	if m.NodesSplit.Load() != 1 || m.TopologyMutations.Load() != 1 {
		t.Errorf("mutation metrics = split %d, total %d; want 1, 1",
			m.NodesSplit.Load(), m.TopologyMutations.Load())
	}
	if m.NodesFailed.Load() != 0 {
		t.Errorf("split counted %d failures; want 0", m.NodesFailed.Load())
	}
}

// TestSplitNodeRepeatedly: a donor can split more than once, and a split
// sibling can itself split — capacity scales 1 -> 2 -> 3 routers.
func TestSplitNodeRepeatedly(t *testing.T) {
	nw := splitEcho(t, "kary:4^2", 0)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "count", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := nw.SplitNode(1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := nw.SplitNode(q1) // the sibling (2 children) splits again
	if err != nil {
		t.Fatal(err)
	}
	if nw.LiveParent(q2) != 0 {
		t.Errorf("LiveParent(%d) = %d, want 0", q2, nw.LiveParent(q2))
	}
	if n := len(nw.LiveChildren(1)) + len(nw.LiveChildren(q1)) + len(nw.LiveChildren(q2)); n != 4 {
		t.Errorf("children across donor+siblings = %d, want 4", n)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Int(0); v != 16 {
		t.Errorf("count = %d, want 16", v)
	}
	if got := nw.Metrics().NodesSplit.Load(); got != 2 {
		t.Errorf("NodesSplit = %d, want 2", got)
	}
}

// TestSplitNodeValidation covers the unsplittable cases.
func TestSplitNodeValidation(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0)
	defer nw.Shutdown()
	if _, err := nw.SplitNode(0); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split front-end: %v, want ErrNotMutable", err)
	}
	if _, err := nw.SplitNode(3); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split back-end: %v, want ErrNotMutable", err)
	}
	if _, err := nw.SplitNode(99); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split missing rank: %v, want ErrNotMutable", err)
	}
	// Too few live children: kill one of rank 1's two leaves.
	if err := nw.Kill(3); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Adopt(3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.SplitNode(1); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split with one live child: %v, want ErrNotMutable", err)
	}
	// Dead rank.
	if err := nw.Kill(2); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.SplitNode(2); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split dead rank: %v, want ErrNotMutable", err)
	}

	// Non-recoverable networks cannot migrate children.
	tree := mustTree(t, "kary:2^2")
	nw2 := echoValue(t, tree, ChanTransport)
	defer nw2.Shutdown()
	if _, err := nw2.SplitNode(1); !errors.Is(err, ErrNotMutable) {
		t.Errorf("split on non-recoverable network: %v, want ErrNotMutable", err)
	}
}

// TestMergeNodeShortensPath: a cold internal process is removed, its
// children fold into its parent, and streams keep answering in full.
func TestMergeNodeShortensPath(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := nw.MergeNode(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ad.NewParent != 0 || len(ad.Orphans) != 2 {
		t.Errorf("merge adoption = parent %d, orphans %v", ad.NewParent, ad.Orphans)
	}
	for _, c := range []Rank{5, 6} {
		if got := nw.LiveParent(c); got != 0 {
			t.Errorf("LiveParent(%d) = %d, want 0", c, got)
		}
	}
	if live := nw.LiveInternal(); len(live) != 1 || live[0] != 1 {
		t.Errorf("LiveInternal = %v, want [1]", live)
	}
	for i := 0; i < 3; i++ {
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != 18 {
			t.Errorf("post-merge sum = %g, want 18", v)
		}
	}
	m := nw.Metrics()
	if m.NodesMerged.Load() != 1 || m.TopologyMutations.Load() != 1 {
		t.Errorf("mutation metrics = merged %d, total %d; want 1, 1",
			m.NodesMerged.Load(), m.TopologyMutations.Load())
	}
	// Merging the last internal process is refused — the aggregation path
	// must keep at least the front-end... the sole survivor CAN merge
	// (flattening to depth 1); policy lives in the controller. But merging
	// a dead or unknown rank is refused here.
	if _, err := nw.MergeNode(2, nil); !errors.Is(err, ErrNotMutable) {
		t.Errorf("double merge: %v, want ErrNotMutable", err)
	}
	if _, err := nw.MergeNode(5, nil); !errors.Is(err, ErrNotMutable) {
		t.Errorf("merge back-end: %v, want ErrNotMutable", err)
	}
}

// TestSplitThenKillDonorConverges: the mutation-vs-failure interleaving —
// kill the donor right after a split; recovery must still fold its
// remaining children into the parent and every leaf stays reachable.
func TestSplitThenKillDonorConverges(t *testing.T) {
	nw := splitEcho(t, "kary:4^2", 0)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, l := range nw.Tree().Leaves() {
		want += float64(l)
	}
	if _, err := nw.SplitNode(1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Adopt(1, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := p.Float(0); v != want {
			t.Errorf("round %d: sum = %g, want %g", i, v, want)
		}
	}
}

// TestLoadReportsReachFrontEnd: internal processes' pressure samples relay
// up to the front-end and rate counters advance under traffic.
func TestLoadReportsReachFrontEnd(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 5*time.Millisecond)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := st.RecvTimeout(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := nw.LoadReports()
		if s1, ok1 := rep[1]; ok1 {
			if s2, ok2 := rep[2]; ok2 && s1.UpPackets > 0 && s2.UpPackets > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("load reports incomplete: %v", nw.LoadReports())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := nw.Metrics()
	if m.LoadReportsSent.Load() == 0 || m.LoadReportsSeen.Load() == 0 {
		t.Error("load report metrics not counted")
	}
}
