package core

import (
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

// routeSnapshot returns the stream's participating-children flags, safe for
// readers outside the owning event loop.
func (ss *streamState) routeSnapshot() []bool {
	ss.routeMu.RLock()
	defer ss.routeMu.RUnlock()
	return ss.downChildren
}

// slotInfo describes one child-link slot of a node for stream routing: the
// child's rank, whether it is dead, and the live back-ends in its subtree.
// Snapshots are taken from the network's liveView under Network.mu.
type slotInfo struct {
	child  Rank
	dead   bool
	leaves []Rank
}

// slotInfoAt snapshots the slot layout of rank's children from the live
// view. The result aligns index-for-index with the node's ep.Children.
func (nw *Network) slotInfoAt(rank Rank) []slotInfo {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.view.slotInfoLocked(rank)
}

func (v *liveView) slotInfoLocked(rank Rank) []slotInfo {
	children := v.children[rank]
	out := make([]slotInfo, len(children))
	for i, c := range children {
		if c == topology.NoRank { // vacated slot (rolled-back adoption)
			out[i] = slotInfo{child: c, dead: true}
			continue
		}
		out[i] = slotInfo{child: c, dead: v.dead[c], leaves: v.subtreeLeaves(c)}
	}
	return out
}

// streamState is the per-node, per-stream routing and filtering state
// established by an opNewStream control message.
type streamState struct {
	id    uint32
	tform filter.Transformation
	sync  filter.Synchronizer
	// downTform, if non-nil, transforms each downstream packet at this
	// node before it fans out toward the members — the bidirectional
	// filtering extension the paper proposes as future work.
	downTform filter.Transformation

	// The full stream spec is retained so recovery can re-announce the
	// stream to adopted subtrees (repairing control messages lost with the
	// failed node).
	tformName, syncName, downName string
	memberList                    []Rank
	members                       map[Rank]bool

	// routeMu guards the routing slices below: at the front-end they are
	// read by user-goroutine multicasts while the receive loop may rebuild
	// them during a recovery adoption. (At internal nodes all access is
	// from the single event loop.)
	routeMu sync.RWMutex
	// downChildren holds, for each of the node's child link slots, whether
	// the stream has members in that child's subtree (multicast routing).
	downChildren []bool
	// upSlot maps a child link slot to its dense index among participating
	// children (the synchronizer's child-slot space), or -1.
	upSlot []int
	// numUp is the count of participating children.
	numUp int
}

// newStreamState instantiates filters and routing for a stream at the node
// with the given rank. members must be back-end ranks.
func newStreamState(nw *Network, rank Rank, reg *filter.Registry,
	id uint32, tformName, syncName, downTformName string, members []Rank) (*streamState, error) {

	tf, err := reg.NewTransformation(tformName)
	if err != nil {
		return nil, err
	}
	sy, err := reg.NewSynchronizer(syncName)
	if err != nil {
		return nil, err
	}
	var dtf filter.Transformation
	if downTformName != "" {
		dtf, err = reg.NewTransformation(downTformName)
		if err != nil {
			return nil, err
		}
	}
	memberSet := make(map[Rank]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	ss := &streamState{
		id:         id,
		tform:      tf,
		sync:       sy,
		downTform:  dtf,
		tformName:  tformName,
		syncName:   syncName,
		downName:   downTformName,
		memberList: append([]Rank(nil), members...),
		members:    memberSet,
	}
	ss.rebuildSlots(nw.slotInfoAt(rank))
	return ss, nil
}

// rebuildSlots recomputes routing (downChildren, upSlot, numUp) from a
// fresh slot snapshot and rewires the synchronizer accordingly. It is
// called once at stream creation and again whenever recovery changes the
// node's child set; packets already queued per surviving slot are preserved
// when the synchronizer supports remapping, and batches completed by the
// removal of a dead slot are returned for the caller to flush.
func (ss *streamState) rebuildSlots(slots []slotInfo) [][]*packet.Packet {
	oldUpSlot := ss.upSlot
	down := make([]bool, len(slots))
	up := make([]int, len(slots))
	remap := make([]int, ss.numUp)
	for i := range remap {
		remap[i] = -1
	}
	dense := 0
	for i, sl := range slots {
		up[i] = -1
		if sl.dead {
			continue
		}
		for _, leaf := range sl.leaves {
			if ss.members[leaf] {
				down[i] = true
				break
			}
		}
		if !down[i] {
			continue
		}
		up[i] = dense
		if i < len(oldUpSlot) && oldUpSlot[i] >= 0 && oldUpSlot[i] < len(remap) {
			remap[oldUpSlot[i]] = dense
		}
		dense++
	}
	first := oldUpSlot == nil
	ss.routeMu.Lock()
	ss.downChildren = down
	ss.upSlot = up
	ss.numUp = dense
	ss.routeMu.Unlock()
	var released [][]*packet.Packet
	if r, ok := ss.sync.(filter.SlotRemapper); ok && !first {
		released = r.RemapSlots(remap, dense)
	} else if ca, ok := ss.sync.(filter.ChildAware); ok {
		ca.SetNumChildren(dense)
	}
	if ca, ok := ss.tform.(filter.ChildAware); ok {
		ca.SetNumChildren(dense)
	}
	return released
}

// growSlots widens the routing slices to cover child slots up to n-1,
// marking new slots as non-participating (dynamic attach: existing
// streams' membership was fixed at creation).
func (ss *streamState) growSlots(n int) {
	ss.routeMu.Lock()
	for len(ss.downChildren) < n {
		ss.downChildren = append(ss.downChildren, false)
		ss.upSlot = append(ss.upSlot, -1)
	}
	ss.routeMu.Unlock()
}

// announcePacket rebuilds the opNewStream control message for this stream,
// used to (re-)establish it in adopted subtrees during recovery.
func (ss *streamState) announcePacket() *packet.Packet {
	return newStreamPacket(ss.id, ss.tformName, ss.syncName, ss.downName, ss.memberList)
}

// add feeds an upstream packet arriving on child link slot childIdx through
// the synchronizer, returning released batches.
func (ss *streamState) add(childIdx int, p *packet.Packet) [][]*packet.Packet {
	slot := -1
	if childIdx >= 0 && childIdx < len(ss.upSlot) {
		slot = ss.upSlot[childIdx]
	}
	return ss.sync.Add(slot, p)
}

// addBatch feeds a same-stream run of packets from child link slot
// childIdx through the synchronizer in one call.
func (ss *streamState) addBatch(childIdx int, ps []*packet.Packet) [][]*packet.Packet {
	slot := -1
	if childIdx >= 0 && childIdx < len(ss.upSlot) {
		slot = ss.upSlot[childIdx]
	}
	return filter.AddBatch(ss.sync, slot, ps)
}

// poll releases time-triggered batches.
func (ss *streamState) poll(now time.Time) [][]*packet.Packet {
	return ss.sync.Poll(now)
}

// drain force-releases everything the synchronizer holds.
func (ss *streamState) drain() [][]*packet.Packet {
	if d, ok := ss.sync.(filter.Drainer); ok {
		return d.Drain()
	}
	return nil
}

// deadline reports the synchronizer's next timer need.
func (ss *streamState) deadline() time.Time { return ss.sync.Deadline() }
