package core

import (
	"time"

	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
)

// streamState is the per-node, per-stream routing and filtering state
// established by an opNewStream control message.
type streamState struct {
	id    uint32
	tform filter.Transformation
	sync  filter.Synchronizer
	// downTform, if non-nil, transforms each downstream packet at this
	// node before it fans out toward the members — the bidirectional
	// filtering extension the paper proposes as future work.
	downTform filter.Transformation

	// downChildren holds, for each of the node's child link slots, whether
	// the stream has members in that child's subtree (multicast routing).
	downChildren []bool
	// upSlot maps a child link slot to its dense index among participating
	// children (the synchronizer's child-slot space), or -1.
	upSlot []int
	// numUp is the count of participating children.
	numUp int
}

// newStreamState instantiates filters and routing for a stream at the node
// with the given rank. members must be back-end ranks.
func newStreamState(tree *topology.Tree, rank Rank, reg *filter.Registry,
	id uint32, tformName, syncName, downTformName string, members []Rank) (*streamState, error) {

	tf, err := reg.NewTransformation(tformName)
	if err != nil {
		return nil, err
	}
	sy, err := reg.NewSynchronizer(syncName)
	if err != nil {
		return nil, err
	}
	var dtf filter.Transformation
	if downTformName != "" {
		dtf, err = reg.NewTransformation(downTformName)
		if err != nil {
			return nil, err
		}
	}
	memberSet := make(map[Rank]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	children := tree.Children(rank)
	ss := &streamState{
		id:           id,
		tform:        tf,
		sync:         sy,
		downTform:    dtf,
		downChildren: make([]bool, len(children)),
		upSlot:       make([]int, len(children)),
	}
	for i, c := range children {
		ss.upSlot[i] = -1
		for _, leaf := range tree.SubtreeLeaves(c) {
			if memberSet[leaf] {
				ss.downChildren[i] = true
				break
			}
		}
		if ss.downChildren[i] {
			ss.upSlot[i] = ss.numUp
			ss.numUp++
		}
	}
	// Both synchronizers (WaitForAll) and transformations (e.g. the
	// time-alignment filter) may need to know how many children feed them.
	if ca, ok := sy.(filter.ChildAware); ok {
		ca.SetNumChildren(ss.numUp)
	}
	if ca, ok := tf.(filter.ChildAware); ok {
		ca.SetNumChildren(ss.numUp)
	}
	return ss, nil
}

// add feeds an upstream packet arriving on child link slot childIdx through
// the synchronizer, returning released batches.
func (ss *streamState) add(childIdx int, p *packet.Packet) [][]*packet.Packet {
	slot := -1
	if childIdx >= 0 && childIdx < len(ss.upSlot) {
		slot = ss.upSlot[childIdx]
	}
	return ss.sync.Add(slot, p)
}

// poll releases time-triggered batches.
func (ss *streamState) poll(now time.Time) [][]*packet.Packet {
	return ss.sync.Poll(now)
}

// drain force-releases everything the synchronizer holds.
func (ss *streamState) drain() [][]*packet.Packet {
	if d, ok := ss.sync.(filter.Drainer); ok {
		return d.Drain()
	}
	return nil
}

// deadline reports the synchronizer's next timer need.
func (ss *streamState) deadline() time.Time { return ss.sync.Deadline() }
