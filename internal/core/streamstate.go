package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/transport"
)

// streamRoutes is one immutable routing snapshot: which child slots the
// stream multicasts to, each slot's dense synchronizer index, and the
// participating-children count. Swapped atomically as a whole so the hot
// dispatch paths read routing with a single atomic load, no lock.
type streamRoutes struct {
	// down holds, for each of the node's child link slots, whether the
	// stream has members in that child's subtree (multicast routing).
	down []bool
	// up maps a child link slot to its dense index among participating
	// children (the synchronizer's child-slot space), or -1.
	up []int
	// numUp is the count of participating children.
	numUp int
}

// routeSnapshot returns the stream's participating-children flags, safe
// for any goroutine.
func (ss *streamState) routeSnapshot() []bool {
	return ss.routes.Load().down
}

// slotInfo describes one child-link slot of a node for stream routing: the
// child's rank, whether it is dead, and the live back-ends in its subtree.
// Snapshots are taken from the network's liveView under Network.mu.
type slotInfo struct {
	child  Rank
	dead   bool
	leaves []Rank
}

// slotInfoAt snapshots the slot layout of rank's children from the live
// view. The result aligns index-for-index with the node's ep.Children.
func (nw *Network) slotInfoAt(rank Rank) []slotInfo {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.view.slotInfoLocked(rank)
}

func (v *liveView) slotInfoLocked(rank Rank) []slotInfo {
	children := v.children[rank]
	out := make([]slotInfo, len(children))
	for i, c := range children {
		if c == topology.NoRank { // vacated slot (rolled-back adoption)
			out[i] = slotInfo{child: c, dead: true}
			continue
		}
		out[i] = slotInfo{child: c, dead: v.dead[c], leaves: v.subtreeLeaves(c)}
	}
	return out
}

// streamState is the per-node, per-stream routing and filtering state
// established by an opNewStream control message.
type streamState struct {
	id    uint32
	tform filter.Transformation
	sync  filter.Synchronizer
	// downTform, if non-nil, transforms each downstream packet at this
	// node before it fans out toward the members — the bidirectional
	// filtering extension the paper proposes as future work.
	downTform filter.Transformation

	// The full stream spec is retained so recovery can re-announce the
	// stream to adopted subtrees (repairing control messages lost with the
	// failed node).
	tformName, syncName, downName string
	memberList                    []Rank
	members                       map[Rank]bool
	// prio is the stream's egress scheduling priority (StreamSpec.Priority,
	// carried by the announcement so every level schedules consistently).
	prio int

	// budget and tc are set only at the front-end (rank 0) for streams
	// opened inside a tenant session: budget is the tenant's credit
	// sub-window (front-end sends acquire through it) and tc the tenant's
	// traffic counters. Both immutable for the stream's lifetime; nil for
	// legacy namespace-0 streams and at every other rank.
	budget *transport.Budget
	tc     *TenantCounters

	// pipeMu serializes pipeline execution — synchronizer, transformation,
	// egress, drain, poll — between the router's inline fast path and the
	// stream's shard worker. It is uncontended in steady state: the router
	// only runs inline while nothing is dispatched (pending == 0), and the
	// worker only runs what was dispatched; the lock exists for the
	// handoff edges (a timer poll racing an inline run). The filters
	// themselves still need no locks of their own.
	pipeMu sync.Mutex
	// pending counts dispatched-but-unfinished shard work items for this
	// stream. The router may execute a run inline (no mailbox hop, the
	// serial-loop fast path) only when it reads zero: the router is the
	// sole dispatcher, so zero means nothing is queued or executing and
	// per-stream FIFO is preserved.
	pending atomic.Int32
	// closed is set by Stream.Close before the forget item is enqueued,
	// so a data item the router dispatched just before the close cannot
	// re-register the dead stream in its shard's poll set.
	closed atomic.Bool

	// Exactly-once per-stream state, guarded by pipeMu like the filters:
	// dedup holds one duplicate-detection window per packet origin, and
	// seqCtr stamps this node's fresh transform outputs on the stream.
	dedup  map[Rank]*seqWin
	seqCtr uint64

	// routes is the current immutable routing snapshot, read lock-free by
	// user-goroutine multicasts and pipeline shards; writers (stream
	// creation, recovery adoption under quiesce, dynamic attach on the
	// router) swap in a fresh snapshot. The filters themselves (sync,
	// tform, downTform) take no lock: they are single-writer — driven
	// only by the stream's shard worker or the router's inline fast path
	// (mutually excluded by pipeMu + pending), or by the router alone
	// while the shards are quiesced.
	routes atomic.Pointer[streamRoutes]
}

// newStreamState instantiates filters and routing for a stream at the node
// with the given rank. members must be back-end ranks.
func newStreamState(nw *Network, rank Rank, reg *filter.Registry,
	id uint32, tformName, syncName, downTformName string, prio int, members []Rank) (*streamState, error) {

	tf, err := reg.NewTransformation(tformName)
	if err != nil {
		return nil, err
	}
	sy, err := reg.NewSynchronizer(syncName)
	if err != nil {
		return nil, err
	}
	var dtf filter.Transformation
	if downTformName != "" {
		dtf, err = reg.NewTransformation(downTformName)
		if err != nil {
			return nil, err
		}
	}
	memberSet := make(map[Rank]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	ss := &streamState{
		id:         id,
		tform:      tf,
		sync:       sy,
		downTform:  dtf,
		tformName:  tformName,
		syncName:   syncName,
		downName:   downTformName,
		memberList: append([]Rank(nil), members...),
		members:    memberSet,
		prio:       prio,
	}
	ss.rebuildSlots(nw.slotInfoAt(rank)) //tbon:allow mutationquiesce constructor: the stream is not yet published to any shard
	return ss, nil
}

// rebuildSlots recomputes the routing snapshot from a fresh slot
// snapshot and rewires the synchronizer accordingly. It is
// called once at stream creation and again whenever recovery changes the
// node's child set; packets already queued per surviving slot are preserved
// when the synchronizer supports remapping, and batches completed by the
// removal of a dead slot are returned for the caller to flush.
func (ss *streamState) rebuildSlots(slots []slotInfo) [][]*packet.Packet {
	var oldUpSlot []int
	oldNumUp := 0
	first := ss.routes.Load() == nil
	if !first {
		old := ss.routes.Load()
		oldUpSlot, oldNumUp = old.up, old.numUp
	}
	down := make([]bool, len(slots))
	up := make([]int, len(slots))
	remap := make([]int, oldNumUp)
	for i := range remap {
		remap[i] = -1
	}
	dense := 0
	for i, sl := range slots {
		up[i] = -1
		if sl.dead {
			continue
		}
		for _, leaf := range sl.leaves {
			if ss.members[leaf] {
				down[i] = true
				break
			}
		}
		if !down[i] {
			continue
		}
		up[i] = dense
		if i < len(oldUpSlot) && oldUpSlot[i] >= 0 && oldUpSlot[i] < len(remap) {
			remap[oldUpSlot[i]] = dense
		}
		dense++
	}
	ss.routes.Store(&streamRoutes{down: down, up: up, numUp: dense})
	var released [][]*packet.Packet
	if r, ok := ss.sync.(filter.SlotRemapper); ok && !first {
		released = r.RemapSlots(remap, dense)
	} else if ca, ok := ss.sync.(filter.ChildAware); ok {
		ca.SetNumChildren(dense)
	}
	if ca, ok := ss.tform.(filter.ChildAware); ok {
		ca.SetNumChildren(dense)
	}
	return released
}

// growSlots widens the routing slices to cover child slots up to n-1,
// marking new slots as non-participating (dynamic attach: existing
// streams' membership was fixed at creation).
func (ss *streamState) growSlots(n int) {
	old := ss.routes.Load()
	if len(old.down) >= n {
		return
	}
	down := make([]bool, n)
	up := make([]int, n)
	copy(down, old.down)
	copy(up, old.up)
	for i := len(old.up); i < n; i++ {
		up[i] = -1
	}
	ss.routes.Store(&streamRoutes{down: down, up: up, numUp: old.numUp})
}

// announcePacket rebuilds the opNewStream control message for this stream,
// used to (re-)establish it in adopted subtrees during recovery.
func (ss *streamState) announcePacket() *packet.Packet {
	return newStreamPacket(ss.id, ss.tformName, ss.syncName, ss.downName, ss.prio, ss.memberList)
}

// syncSlot maps a child link slot to the synchronizer's dense slot space
// via the lock-free routing snapshot (growSlots may swap it concurrently).
func (ss *streamState) syncSlot(childIdx int) int {
	r := ss.routes.Load()
	if childIdx >= 0 && childIdx < len(r.up) {
		return r.up[childIdx]
	}
	return -1
}

// add feeds an upstream packet arriving on child link slot childIdx through
// the synchronizer, returning released batches.
func (ss *streamState) add(childIdx int, p *packet.Packet) [][]*packet.Packet {
	return ss.sync.Add(ss.syncSlot(childIdx), p)
}

// addBatch feeds a same-stream run of packets from child link slot
// childIdx through the synchronizer in one call.
func (ss *streamState) addBatch(childIdx int, ps []*packet.Packet) [][]*packet.Packet {
	return filter.AddBatch(ss.sync, ss.syncSlot(childIdx), ps)
}

// poll releases time-triggered batches.
func (ss *streamState) poll(now time.Time) [][]*packet.Packet {
	return ss.sync.Poll(now)
}

// drain force-releases everything the synchronizer holds.
func (ss *streamState) drain() [][]*packet.Packet {
	if d, ok := ss.sync.(filter.Drainer); ok {
		return d.Drain()
	}
	return nil
}

// deadline reports the synchronizer's next timer need.
func (ss *streamState) deadline() time.Time { return ss.sync.Deadline() }

// dropDups filters replay duplicates out of an inbound run by origin
// sequence (exactly-once mode; callers hold pipeMu). The filtered slice is
// freshly allocated, never a compaction of run: on the in-process fabric
// run shares its backing array with the slice the sender passed to
// SendBatch, which the sender still reads after the send to append the
// sent prefix to its replay ring. When nothing is dropped, run is returned
// as-is so the common case stays zero-copy. The caller's retirement keeps
// counting the original run length either way: the peer spent credits and
// ring slots on the duplicate copies too.
func (ss *streamState) dropDups(run []*packet.Packet, m *Metrics) []*packet.Packet {
	kept := run
	alloc := false
	for i, p := range run {
		if p.Seq != 0 && ss.seenSeq(p) {
			m.DupsDropped.Add(1)
			if !alloc {
				kept = append(make([]*packet.Packet, 0, len(run)-1), run[:i]...)
				alloc = true
			}
			continue
		}
		if alloc {
			kept = append(kept, p)
		}
	}
	return kept
}

// seenSeq records p's origin sequence in the stream's dedup window and
// reports whether it was already delivered here. Callers hold pipeMu.
func (ss *streamState) seenSeq(p *packet.Packet) bool {
	o := packet.SeqOrigin(p.Seq)
	w := ss.dedup[o]
	if w == nil {
		if ss.dedup == nil {
			ss.dedup = map[Rank]*seqWin{}
		}
		w = &seqWin{}
		ss.dedup[o] = w
	}
	return w.seen(packet.SeqCounter(p.Seq))
}
