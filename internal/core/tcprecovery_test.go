package core

import (
	"errors"
	"testing"
	"time"
)

// Live topology mutation on the TCP fabric: the same recovery semantics
// the chan fabric enjoys, over real sockets (the adopter listens, the
// orphan redials), plus overlapping-failure convergence on both fabrics.

// bothFabrics runs f under a subtest per link substrate.
func bothFabrics(t *testing.T, f func(t *testing.T, kind TransportKind)) {
	for _, kind := range []TransportKind{ChanTransport, TCPTransport} {
		name := "chan"
		if kind == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) { f(t, kind) })
	}
}

// sumRound multicasts one query and asserts the full reduction.
func sumRound(t *testing.T, st *Stream, want float64) {
	t.Helper()
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Float(0); v != want {
		t.Errorf("sum = %g, want %g", v, want)
	}
}

// TestKillThenAdoptKeepsStreamWorkingTCP mirrors the core chan-fabric
// recovery check on real TCP links: a communication process crashes
// between rounds, the grandparent adopts its orphans over brand-new TCP
// connections, and the SAME stream keeps producing the full-membership
// answer.
func TestKillThenAdoptKeepsStreamWorkingTCP(t *testing.T) {
	nw := recoverableEchoOn(t, "kary:2^2", 0, TCPTransport) // 0; 1,2; leaves 3..6
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	sumRound(t, st, 18) // 3+4+5+6 while healthy

	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	ad, err := nw.Adopt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ad.NewParent != 0 || len(ad.Orphans) != 2 {
		t.Errorf("adoption = parent %d, orphans %v", ad.NewParent, ad.Orphans)
	}
	for i := 0; i < 3; i++ {
		sumRound(t, st, 18)
	}
	if nw.Metrics().RewiredLinks.Load() != 2 {
		t.Errorf("RewiredLinks = %d, want 2", nw.Metrics().RewiredLinks.Load())
	}
}

// TestKillDeepChainRecoveryTCP exercises adoption at an internal
// grandparent (not the front-end) on a 3-level tree over TCP, including
// the orphaned-node redial path (the orphans are communication
// processes, not back-ends).
func TestKillDeepChainRecoveryTCP(t *testing.T) {
	nw := recoverableEchoOn(t, "kary:2^3", 0, TCPTransport) // internals 1,2 then 3..6; leaves 7..14
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, l := range nw.Tree().Leaves() {
		want += float64(l)
	}
	if err := nw.Kill(3); err != nil { // child of 1, parent of leaves 7,8
		t.Fatal(err)
	}
	ad, err := nw.Adopt(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ad.NewParent != 1 {
		t.Errorf("NewParent = %d, want 1", ad.NewParent)
	}
	for i := 0; i < 3; i++ {
		sumRound(t, st, want)
	}
}

// adoptUntilDone retries Adopt until the rank is recovered, tolerating
// transient ordering errors ("recover the parent first") by recovering
// the blocking ancestor — the convergence loop a caller without the
// manager's shallowest-first detector needs under overlapping failures.
func adoptUntilDone(t *testing.T, nw *Network, failed Rank) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := nw.Adopt(failed, nil)
		if err == nil {
			return
		}
		if errors.Is(err, ErrNotRecoverable) {
			// Already recovered by an earlier pass, or blocked on an
			// unrecovered ancestor; the caller recovers ancestors first.
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never recovered: %v", failed, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOverlappingFailureAdopterDiesMidAdoption: the adopting parent is
// killed while its child's adoption is in flight. The adoption either
// completes (then the adopter's own death is recovered next) or rolls
// back cleanly (then shallowest-first recovery redoes it); either way no
// back-end is lost, on both fabrics.
func TestOverlappingFailureAdopterDiesMidAdoption(t *testing.T) {
	bothFabrics(t, func(t *testing.T, kind TransportKind) {
		nw := recoverableEchoOn(t, "kary:2^3", 0, kind) // 0; 1,2; 3..6; leaves 7..14
		defer nw.Shutdown()
		st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for _, l := range nw.Tree().Leaves() {
			want += float64(l)
		}
		sumRound(t, st, want)

		if err := nw.Kill(3); err != nil { // child of 1
			t.Fatal(err)
		}
		adoptDone := make(chan error, 1)
		go func() {
			_, err := nw.Adopt(3, nil)
			adoptDone <- err
		}()
		// Kill the adopter while the adoption may be mid-handshake.
		if err := nw.Kill(1); err != nil {
			t.Fatal(err)
		}
		firstErr := <-adoptDone

		// Converge: the shallower failure first, then (if the first
		// adoption rolled back) the original victim again.
		adoptUntilDone(t, nw, 1)
		if firstErr != nil {
			adoptUntilDone(t, nw, 3)
		}
		for i := 0; i < 3; i++ {
			sumRound(t, st, want)
		}
	})
}

// TestOverlappingFailureOrphanDiesMidAdoption: one of the orphans being
// re-parented is killed while the adoption is in flight. The adoption
// must not wedge on the dead orphan's never-arriving redial; the orphan
// is fenced and its own (leaf) recovery removes it from synchronization.
func TestOverlappingFailureOrphanDiesMidAdoption(t *testing.T) {
	bothFabrics(t, func(t *testing.T, kind TransportKind) {
		nw := recoverableEchoOn(t, "kary:2^2", 0, kind) // 0; 1,2; leaves 3..6
		defer nw.Shutdown()
		st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
		if err != nil {
			t.Fatal(err)
		}
		sumRound(t, st, 18)

		if err := nw.Kill(1); err != nil { // orphans 3,4
			t.Fatal(err)
		}
		adoptDone := make(chan error, 1)
		go func() {
			_, err := nw.Adopt(1, nil)
			adoptDone <- err
		}()
		if err := nw.Kill(3); err != nil { // orphan dies mid-adoption
			t.Fatal(err)
		}
		if err := <-adoptDone; err != nil {
			t.Fatalf("adoption wedged on the dead orphan: %v", err)
		}
		// The dead orphan is a leaf failure now; recover it so waitforall
		// stops gating on its slot.
		adoptUntilDone(t, nw, 3)
		for i := 0; i < 3; i++ {
			sumRound(t, st, 15) // 4+5+6
		}
	})
}

// TestFalsePositiveAdoptFencesAliveNodeTCP: recovering an alive-but-
// silent node over TCP must fence it off — the RST on its severed links
// must not take the replacement links down with it.
func TestFalsePositiveAdoptFencesAliveNodeTCP(t *testing.T) {
	nw := recoverableEchoOn(t, "kary:2^2", 0, TCPTransport)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	sumRound(t, st, 18)
	// No Kill: rank 1 is healthy, yet declared failed.
	ad, err := nw.Adopt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Orphans) != 2 {
		t.Fatalf("orphans = %v", ad.Orphans)
	}
	for i := 0; i < 3; i++ {
		sumRound(t, st, 18)
	}
}
