package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAttachBackEnd exercises the paper's dynamic topology model: a
// back-end joins a running network, and a stream created afterwards
// includes it in the reduction.
func TestAttachBackEnd(t *testing.T) {
	tree := mustTree(t, "kary:2^2") // leaves 3..6
	var mu sync.Mutex
	values := map[Rank]float64{}
	nw, err := NewNetwork(Config{
		Topology: tree,
		OnBackEnd: func(be *BackEnd) error {
			for {
				p, err := be.Recv()
				if err != nil {
					return nil
				}
				mu.Lock()
				values[be.Rank()] = float64(be.Rank())
				mu.Unlock()
				if err := be.Send(p.StreamID, p.Tag, "%f", float64(be.Rank())); err != nil {
					return nil
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Shutdown()

	// Attach two new back-ends under comm node 1.
	r1, err := nw.AttachBackEnd(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nw.AttachBackEnd(1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 7 || r2 != 8 {
		t.Fatalf("attached ranks %d, %d; want 7, 8", r1, r2)
	}
	if got := len(nw.Tree().Leaves()); got != 6 {
		t.Fatalf("tree now has %d leaves, want 6", got)
	}

	// A count over all leaves must include the newcomers.
	st, err := nw.NewStream(StreamSpec{Transformation: "count", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Int(0); v != 6 {
		t.Errorf("count = %d, want 6 (4 original + 2 attached)", v)
	}

	// A sum over just the newcomers works too (subset stream).
	st2, err := nw.NewStream(StreamSpec{
		Endpoints:       []Rank{r1, r2},
		Transformation:  "sum",
		Synchronization: "waitforall",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err = st2.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Float(0); v != 15 { // 7 + 8
		t.Errorf("newcomer sum = %g, want 15", v)
	}
}

func TestAttachBackEndValidation(t *testing.T) {
	tree := mustTree(t, "kary:2^2")
	nw := echoValue(t, tree, ChanTransport)
	defer nw.Shutdown()
	// The front-end of a non-flat tree and back-ends cannot accept
	// children; both rejections carry the documented typed error.
	if _, err := nw.AttachBackEnd(0); !errors.Is(err, ErrBadAttachParent) {
		t.Errorf("attach to front-end of deep tree: err = %v, want ErrBadAttachParent", err)
	}
	if _, err := nw.AttachBackEnd(3); !errors.Is(err, ErrBadAttachParent) {
		t.Errorf("attach to back-end: err = %v, want ErrBadAttachParent", err)
	}
	if _, err := nw.AttachBackEnd(99); err == nil {
		t.Error("attach to missing rank: want error")
	}
}

// TestAttachBackEndTCP: dynamic attach works on the TCP fabric — the new
// link is minted via listen+redial and the newcomer joins new streams.
func TestAttachBackEndTCP(t *testing.T) {
	tcp := echoValue(t, mustTree(t, "kary:2^2"), TCPTransport)
	defer tcp.Shutdown()
	r, err := tcp.AttachBackEnd(1)
	if err != nil {
		t.Fatalf("attach on TCP transport: %v", err)
	}
	if r != 7 {
		t.Fatalf("attached rank %d, want 7", r)
	}
	st, err := tcp.NewStream(StreamSpec{Transformation: "count", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Multicast(tagQuery, ""); err != nil {
		t.Fatal(err)
	}
	p, err := st.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Int(0); v != 5 {
		t.Errorf("count = %d, want 5 (4 original + 1 attached over TCP)", v)
	}
	if tcp.Metrics().RewiredLinks.Load() == 0 {
		t.Error("RewiredLinks not counted")
	}
}

// TestAttachBackEndFlatTree: on a flat (depth-1) topology the front-end
// is the only routing process, so it accepts attachments directly —
// previously rejected outright, which made flat trees permanently static.
func TestAttachBackEndFlatTree(t *testing.T) {
	for _, tr := range []TransportKind{ChanTransport, TCPTransport} {
		name := "chan"
		if tr == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			nw := echoValue(t, mustTree(t, "flat:3"), tr)
			defer nw.Shutdown()

			// Existing streams must keep excluding the newcomer.
			pre, err := nw.NewStream(StreamSpec{Transformation: "count", Synchronization: "waitforall"})
			if err != nil {
				t.Fatal(err)
			}
			r, err := nw.AttachBackEnd(0)
			if err != nil {
				t.Fatal(err)
			}
			if r != 4 {
				t.Fatalf("attached rank %d, want 4", r)
			}
			for round := 0; round < 2; round++ {
				if err := pre.Multicast(tagQuery, ""); err != nil {
					t.Fatal(err)
				}
				p, err := pre.RecvTimeout(10 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if v, _ := p.Int(0); v != 3 {
					t.Errorf("old stream count = %d, want 3 (newcomer excluded)", v)
				}
			}

			// A stream created afterwards includes it.
			post, err := nw.NewStream(StreamSpec{Transformation: "sum", Synchronization: "waitforall"})
			if err != nil {
				t.Fatal(err)
			}
			if err := post.Multicast(tagQuery, ""); err != nil {
				t.Fatal(err)
			}
			p, err := post.RecvTimeout(10 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := p.Float(0); v != 10 { // ranks 1+2+3+4
				t.Errorf("new stream sum = %g, want 10", v)
			}
		})
	}
}

func TestAttachedBackEndSurvivesExistingStreams(t *testing.T) {
	// Streams created before the attach keep working and exclude the
	// newcomer; the newcomer's spontaneous sends on an old stream pass
	// through unfiltered at nodes that do not know it (slot -1 delivers
	// immediately under WaitForAll).
	tree := mustTree(t, "kary:2^2")
	nw := echoValue(t, tree, ChanTransport)
	defer nw.Shutdown()
	st, err := nw.NewStream(StreamSpec{Transformation: "count", Synchronization: "waitforall"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AttachBackEnd(2); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := st.Multicast(tagQuery, ""); err != nil {
			t.Fatal(err)
		}
		p, err := st.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if v, _ := p.Int(0); v != 4 {
			t.Errorf("round %d: old stream count = %d, want 4 (newcomer excluded)", round, v)
		}
	}
}

func TestAttachAfterShutdown(t *testing.T) {
	tree := mustTree(t, "kary:2^2")
	nw := echoValue(t, tree, ChanTransport)
	nw.Shutdown()
	if _, err := nw.AttachBackEnd(1); err == nil {
		t.Error("attach after shutdown: want error")
	}
}
