//go:build lossy

package core

import "testing"

// TestOverlappingFailureCreditsOutstanding (lossy ablation): the
// historical at-most-once behavior of the same scenario, kept behind
// -tags lossy. Without sender replay, in-flight data at the crashed node
// is lost — but the loss must stay within the spent credit windows (plus
// wire buffers) on the affected links; anything beyond that means
// retained buffers were dropped rather than re-flushed.
func TestOverlappingFailureCreditsOutstanding(t *testing.T) {
	kinds := []TransportKind{ChanTransport}
	if !testing.Short() {
		kinds = append(kinds, TCPTransport)
	}
	for _, kind := range kinds {
		name := "chan"
		if kind == TCPTransport {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			lostA, maxLost := overlappingFailureCreditsOutstanding(t, kind, false)
			if lostA > maxLost {
				t.Errorf("lost %d burst-A payloads, want <= ~%d (in-flight bound)", lostA, maxLost)
			}
		})
	}
}
