package core

import (
	"errors"
	"testing"
	"time"
)

// TestPlaceBackEndLeastLoaded: with fresh heat scores the new back-end
// lands under the coldest internal process, not the first-fit one.
func TestPlaceBackEndLeastLoaded(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0) // internals 1,2
	defer nw.Shutdown()
	pl := Placement{
		Scores:   map[Rank]float64{1: 5.0, 2: 1.0},
		ScoresAt: time.Now(),
	}
	r, err := nw.PlaceBackEnd(pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 2 {
		t.Errorf("placed under %d, want 2 (coldest)", got)
	}
	if nw.Metrics().PlacementsLoadAware.Load() != 1 {
		t.Error("load-aware placement not counted")
	}
	// A rank absent from the scores counts as coldest of all.
	pl.Scores = map[Rank]float64{2: 0.5}
	r2, err := nw.PlaceBackEnd(pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r2); got != 1 {
		t.Errorf("placed under %d, want 1 (unscored = coldest)", got)
	}
}

// TestPlaceBackEndFanOutCap: a parent at the cap is skipped even when it
// is the coldest, and a fully capped tree yields ErrNoEligibleParent.
func TestPlaceBackEndFanOutCap(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0) // internals 1,2 with 2 leaves each
	defer nw.Shutdown()
	pl := Placement{
		Scores:    map[Rank]float64{1: 0.1, 2: 9.0},
		ScoresAt:  time.Now(),
		MaxFanOut: 3,
	}
	r, err := nw.PlaceBackEnd(pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 1 {
		t.Errorf("placed under %d, want 1", got)
	}
	// Rank 1 is now at the cap; the hot rank 2 is the only candidate left.
	r2, err := nw.PlaceBackEnd(pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r2); got != 2 {
		t.Errorf("placed under %d, want 2 (1 is at cap)", got)
	}
	// Both at the cap: typed failure.
	if _, err := nw.PlaceBackEnd(pl); !errors.Is(err, ErrNoEligibleParent) {
		t.Errorf("full tree: %v, want ErrNoEligibleParent", err)
	}
}

// TestPlaceBackEndStaleScoresFirstFit: scores older than the staleness
// bound degrade to first-fit (lowest eligible rank) instead of trusting a
// snapshot of a load pattern that may have inverted since.
func TestPlaceBackEndStaleScoresFirstFit(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0)
	defer nw.Shutdown()
	pl := Placement{
		Scores:    map[Rank]float64{1: 9.0, 2: 0.1}, // would pick 2 if fresh
		ScoresAt:  time.Now().Add(-time.Minute),
		Staleness: time.Second,
	}
	r, err := nw.PlaceBackEnd(pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 1 {
		t.Errorf("placed under %d, want 1 (first-fit on stale scores)", got)
	}
	if nw.Metrics().PlacementsFirstFit.Load() != 1 {
		t.Error("first-fit placement not counted")
	}
	// Nil scores degrade the same way.
	r2, err := nw.PlaceBackEnd(Placement{})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r2); got != 1 {
		t.Errorf("placed under %d, want 1 (first-fit with no scores)", got)
	}
	if nw.Metrics().PlacementsFirstFit.Load() != 2 {
		t.Error("second first-fit placement not counted")
	}
}

// TestPlaceBackEndFlatTree: with no internal processes the front-end is
// the only eligible parent, matching AttachBackEnd's flat-tree rule.
func TestPlaceBackEndFlatTree(t *testing.T) {
	tree := mustTree(t, "flat:2")
	nw := echoValue(t, tree, ChanTransport)
	defer nw.Shutdown()
	r, err := nw.PlaceBackEnd(Placement{})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 0 {
		t.Errorf("placed under %d, want 0 (front-end on flat tree)", got)
	}
	if _, err := nw.PlaceBackEnd(Placement{MaxFanOut: 3}); !errors.Is(err, ErrNoEligibleParent) {
		t.Errorf("capped flat tree: %v, want ErrNoEligibleParent", err)
	}
}

// TestPlaceBackEndSkipsDeadParents: dead internal processes are never
// placement candidates.
func TestPlaceBackEndSkipsDeadParents(t *testing.T) {
	nw := splitEcho(t, "kary:2^2", 0)
	defer nw.Shutdown()
	if err := nw.Kill(1); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Adopt(1, nil); err != nil {
		t.Fatal(err)
	}
	r, err := nw.PlaceBackEnd(Placement{
		Scores:   map[Rank]float64{1: 0.0, 2: 9.0}, // dead rank 1 "coldest"
		ScoresAt: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.LiveParent(r); got != 2 {
		t.Errorf("placed under %d, want 2 (rank 1 is dead)", got)
	}
}
