package core

import (
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// BatchPolicy governs per-link egress batching: outbound packets queue in
// a per-link egress buffer and are flushed as one multi-packet frame when
// the buffer reaches the flush window (size), when the oldest queued
// packet has waited MaxDelay (age), when a control packet must not be
// delayed (control), or when the owner drains at shutdown/reparent
// (drain). Batching amortizes per-message link costs — a channel transfer
// or a TCP write+flush — over the whole frame, which is what keeps
// per-packet overhead from dominating tree throughput.
type BatchPolicy struct {
	// MaxBatch is the flush window in packets; a value <= 1 disables
	// batching and every Send goes straight to the link.
	MaxBatch int
	// MaxDelay bounds how long a packet may sit in an egress queue before
	// an age flush. Non-positive values get DefaultBatchDelay when
	// batching is enabled, so a queued packet can never strand.
	MaxDelay time.Duration
	// Adaptive enables the congestion-adaptive window: the effective flush
	// window doubles (up to MaxBatch) every time traffic fills it before
	// the age deadline, and halves after an age flush, so light traffic
	// keeps near-per-packet latency while heavy traffic converges to
	// full-window batching — an adaptive backpressure window.
	Adaptive bool
}

// DefaultBatchDelay is the age bound applied when a policy enables
// batching without choosing one.
const DefaultBatchDelay = 2 * time.Millisecond

// DefaultBatchPolicy is a good general-purpose batching configuration.
func DefaultBatchPolicy() BatchPolicy {
	return BatchPolicy{MaxBatch: 32, MaxDelay: DefaultBatchDelay}
}

// enabled reports whether the policy actually batches.
func (p BatchPolicy) enabled() bool { return p.MaxBatch > 1 }

// normalized fills defaults so an enabled policy always has an age bound.
func (p BatchPolicy) normalized() BatchPolicy {
	if p.enabled() && p.MaxDelay <= 0 {
		p.MaxDelay = DefaultBatchDelay
	}
	return p
}

// maxEgressFrameBytes bounds the encoded bytes batched into one wire
// frame. It is a variable (always packet.MaxWireSize in production) only
// so tests can shrink it to exercise the multi-frame split without
// queueing 256 MiB.
var maxEgressFrameBytes = packet.MaxWireSize

// maxRetained bounds an egress queue retained across a dead parent link
// (an orphan waiting for adoption): beyond it the oldest packets are
// dropped, mirroring the bounded kernel-buffer loss a real crashed link
// would impose.
const maxRetained = 4096

// flush causes, for the metrics counters.
const (
	flushSize = iota
	flushAge
	flushControl
	flushDrain
)

// egressQueue batches outbound packets for one link. It is safe for
// concurrent use: the stream-sharded data plane has several pipeline
// workers plus the owning router feeding the same link, so every operation
// serializes on the queue's own mutex. FIFO order within the queue is the
// lock-acquisition order, which is what preserves per-stream FIFO (each
// stream has exactly one worker) and keeps control packets behind data the
// router already accepted.
type egressQueue struct {
	link transport.Link
	pol  BatchPolicy
	m    *Metrics
	// retain keeps the buffer on a failed flush so the packets survive a
	// dead parent link until recovery re-parents the owner (recoverable
	// networks); without it a failed flush drops the buffer, the
	// pre-batching loss behavior.
	retain bool
	// kick, if non-nil, is called (without mu) whenever the buffer
	// transitions empty -> non-empty: the queue now has an age deadline
	// that the owner's timer loop needs to learn about, since the enqueue
	// may have come from a shard worker the owner cannot observe.
	kick func()

	mu     sync.Mutex
	buf    []*packet.Packet
	bytes  int // Σ encoded payload bytes queued, for the frame byte bound
	oldest time.Time
	window int // adaptive effective flush window
	// localHW mirrors the deepest depth this queue has reported to the
	// global high-water gauge, so the hot path pays an atomic only when
	// it sets a new per-queue record.
	localHW int
}

// kickFunc returns a non-blocking notifier for ch — the egress queues'
// empty -> non-empty wakeup toward their owner's timer loop.
func kickFunc(ch chan struct{}) func() {
	return func() {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// newEgressQueue wraps a link with the given (already normalized) policy.
func newEgressQueue(l transport.Link, pol BatchPolicy, m *Metrics, retain bool, kick func()) *egressQueue {
	q := &egressQueue{link: l, pol: pol, m: m, retain: retain, kick: kick, window: pol.MaxBatch}
	if pol.Adaptive {
		q.window = 2
		if q.window > pol.MaxBatch {
			q.window = pol.MaxBatch
		}
	}
	return q
}

// send enqueues p, flushing once the effective window fills or the batch
// would outgrow the wire's frame byte bound. With batching disabled it
// forwards directly to the link.
func (q *egressQueue) send(p *packet.Packet) error {
	if !q.pol.enabled() {
		// Lock-free link read: q.link changes only before the queue is
		// shared or while the owner's shards are quiesced (setLink during
		// reparent), so no sender can observe the swap mid-flight.
		return q.link.Send(p)
	}
	q.mu.Lock()
	wasEmpty := len(q.buf) == 0
	err := q.sendLocked(p)
	kick := q.kick != nil && wasEmpty && len(q.buf) > 0
	q.mu.Unlock()
	if kick {
		q.kick()
	}
	return err
}

func (q *egressQueue) sendLocked(p *packet.Packet) error {
	sz := p.EncodedSize()
	if len(q.buf) > 0 && q.bytes+sz > maxEgressFrameBytes {
		// Individually legal packets must never combine into a frame the
		// receiver would reject (bytes tracks per-packet framing overhead
		// too, keeping the body within packet.MaxFrameBody): flush what
		// is queued, then batch on.
		_ = q.flushLocked(flushSize)
	}
	if len(q.buf) == 0 {
		q.oldest = time.Now()
	}
	q.buf = append(q.buf, p)
	q.bytes += sz + 4
	q.m.PacketsQueued.Add(1)
	if len(q.buf) > q.localHW {
		q.localHW = len(q.buf)
		q.noteDepth(q.localHW)
	}
	if len(q.buf) >= q.window {
		return q.flushLocked(flushSize)
	}
	return nil
}

// sendNow enqueues p and flushes immediately. Control packets use it: they
// keep their FIFO position behind already queued data but never wait out a
// batching window.
func (q *egressQueue) sendNow(p *packet.Packet) error {
	if !q.pol.enabled() {
		return q.link.Send(p)
	}
	q.mu.Lock()
	wasEmpty := len(q.buf) == 0
	q.buf = append(q.buf, p)
	q.bytes += p.EncodedSize() + 4
	q.m.PacketsQueued.Add(1)
	err := q.flushLocked(flushControl)
	kick := q.kick != nil && wasEmpty && len(q.buf) > 0
	q.mu.Unlock()
	if kick {
		q.kick()
	}
	return err
}

// flushLocked sends the buffered batch, split into as many frames as the
// wire's byte bound demands (one in the common case). On failure the unsent
// remainder is retained (recoverable owners) or dropped, and the error is
// returned. Callers hold mu.
func (q *egressQueue) flushLocked(cause int) error {
	if len(q.buf) == 0 {
		return nil
	}
	buf, total := q.buf, q.bytes
	q.buf = nil
	q.bytes = 0
	unsent, frames, err := q.sendFrames(buf, total)
	if err == nil {
		// Adapt the window only when the flush actually went out: a
		// dead-link retry loop (retained buffer, recoverable owner) must
		// not collapse or inflate the adaptive window while nothing moves.
		q.adapt(cause)
	} else {
		if q.retain {
			// The link died under us: keep the unsent remainder (bounded)
			// so a reparent can re-flush it to the new parent.
			if n := len(unsent) - maxRetained; n > 0 {
				q.m.EgressDrops.Add(int64(n))
				unsent = unsent[n:]
			}
			q.buf = append(unsent, q.buf...)
			for _, r := range q.buf {
				q.bytes += r.EncodedSize() + 4
			}
			// Restart the age clock so retries back off by MaxDelay
			// instead of hot-looping on an already-expired deadline.
			q.oldest = time.Now()
		} else {
			q.m.EgressDrops.Add(int64(len(unsent)))
		}
	}
	if frames > 0 {
		q.m.FramesSent.Add(frames)
		switch cause {
		case flushSize:
			q.m.FlushSize.Add(1)
		case flushAge:
			q.m.FlushAge.Add(1)
		case flushControl:
			q.m.FlushControl.Add(1)
		case flushDrain:
			q.m.FlushDrain.Add(1)
		}
	}
	return err
}

// sendFrames moves buf onto the link, splitting it whenever the combined
// encoding would exceed the wire's frame byte bound — a retained buffer
// re-flushed after reparenting, or control flushed behind large queued
// data, can outgrow what a single frame may carry. The common case (total
// within bound, maintained by send) is a single SendBatch. On error the
// not-yet-sent packets are returned; already-sent frames are delivered, so
// nothing is duplicated on retry.
func (q *egressQueue) sendFrames(buf []*packet.Packet, total int) (unsent []*packet.Packet, frames int64, err error) {
	if total <= maxEgressFrameBytes+4 {
		if err := transport.SendBatch(q.link, buf); err != nil {
			return buf, 0, err
		}
		return nil, 1, nil
	}
	start, bytes := 0, 0
	for i, p := range buf {
		sz := p.EncodedSize() + 4
		if i > start && bytes+sz > maxEgressFrameBytes+4 {
			if err := transport.SendBatch(q.link, buf[start:i]); err != nil {
				return buf[start:], frames, err
			}
			frames++
			start, bytes = i, 0
		}
		bytes += sz
	}
	if err := transport.SendBatch(q.link, buf[start:]); err != nil {
		return buf[start:], frames, err
	}
	return nil, frames + 1, nil
}

// adapt moves the effective window toward the observed traffic level.
func (q *egressQueue) adapt(cause int) {
	if !q.pol.Adaptive {
		return
	}
	switch cause {
	case flushSize:
		if q.window < q.pol.MaxBatch {
			q.window *= 2
			if q.window > q.pol.MaxBatch {
				q.window = q.pol.MaxBatch
			}
		}
	case flushAge:
		if q.window > 1 {
			q.window /= 2
		}
	}
}

// deadline returns when the oldest queued packet must be age-flushed, or
// the zero time when the queue is empty.
func (q *egressQueue) deadline() time.Time {
	if q == nil {
		return time.Time{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return time.Time{}
	}
	return q.oldest.Add(q.pol.MaxDelay)
}

// pollAge flushes the queue if its age deadline has passed.
func (q *egressQueue) pollAge(now time.Time) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 || now.Before(q.oldest.Add(q.pol.MaxDelay)) {
		return
	}
	_ = q.flushLocked(flushAge)
}

// drain force-flushes everything queued (shutdown, reparent, Flush).
func (q *egressQueue) drain() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.flushLocked(flushDrain)
}

// setLink repoints the queue at a replacement link (recovery reparenting)
// and re-flushes anything retained across the old link's death. If the
// re-flush fails again the buffer stays retained, so the owner is kicked
// to re-arm its age timer for the retry.
func (q *egressQueue) setLink(l transport.Link) {
	q.mu.Lock()
	q.link = l
	if len(q.buf) > 0 {
		q.oldest = time.Now()
		_ = q.flushLocked(flushDrain)
	}
	kick := q.kick != nil && len(q.buf) > 0
	q.mu.Unlock()
	if kick {
		q.kick()
	}
}

// clear drops everything queued (a fenced-off dead child slot).
func (q *egressQueue) clear() {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) > 0 {
		q.m.EgressDrops.Add(int64(len(q.buf)))
		q.buf = nil
		q.bytes = 0
	}
}

// pending reports how many packets are queued (tests, backpressure probes).
func (q *egressQueue) pending() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// noteDepth maintains the high-water depth gauge.
func (q *egressQueue) noteDepth(d int) {
	for {
		cur := q.m.EgressHighWater.Load()
		if int64(d) <= cur || q.m.EgressHighWater.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
