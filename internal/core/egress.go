package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// BatchPolicy governs per-link egress batching: outbound packets queue in
// a per-link egress buffer and are flushed as one multi-packet frame when
// the buffer reaches the flush window (size), when the oldest queued
// packet has waited MaxDelay (age), when a control packet must not be
// delayed (control), or when the owner drains at shutdown/reparent
// (drain). Batching amortizes per-message link costs — a channel transfer
// or a TCP write+flush — over the whole frame, which is what keeps
// per-packet overhead from dominating tree throughput.
type BatchPolicy struct {
	// MaxBatch is the flush window in packets; a value <= 1 disables
	// batching and every Send goes straight to the link.
	MaxBatch int
	// MaxDelay bounds how long a packet may sit in an egress queue before
	// an age flush. Non-positive values get DefaultBatchDelay when
	// batching is enabled, so a queued packet can never strand.
	MaxDelay time.Duration
	// Adaptive enables the congestion-adaptive window: the effective flush
	// window doubles (up to MaxBatch) every time traffic fills it before
	// the age deadline, and halves after an age flush, so light traffic
	// keeps near-per-packet latency while heavy traffic converges to
	// full-window batching — an adaptive backpressure window.
	Adaptive bool
}

// DefaultBatchDelay is the age bound applied when a policy enables
// batching without choosing one.
const DefaultBatchDelay = 2 * time.Millisecond

// DefaultBatchPolicy is a good general-purpose batching configuration.
func DefaultBatchPolicy() BatchPolicy {
	return BatchPolicy{MaxBatch: 32, MaxDelay: DefaultBatchDelay}
}

// enabled reports whether the policy actually batches.
func (p BatchPolicy) enabled() bool { return p.MaxBatch > 1 }

// normalized fills defaults so an enabled policy always has an age bound.
func (p BatchPolicy) normalized() BatchPolicy {
	if p.enabled() && p.MaxDelay <= 0 {
		p.MaxDelay = DefaultBatchDelay
	}
	return p
}

// maxEgressFrameBytes bounds the encoded bytes batched into one wire
// frame. It is a variable (always packet.MaxWireSize in production) only
// so tests can shrink it to exercise the multi-frame split without
// queueing 256 MiB.
var maxEgressFrameBytes = packet.MaxWireSize

// maxRetained bounds an egress queue retained across a dead parent link
// (an orphan waiting for adoption): beyond it the oldest packets are
// dropped, mirroring the bounded kernel-buffer loss a real crashed link
// would impose. With flow control on the queue is already hard-bounded at
// the link window, which is always tighter.
const maxRetained = 4096

// maxFlushRounds bounds how many take-and-send rounds one flush performs
// before handing the wire back: producers that keep the queue hot trigger
// their own size flushes, so the combiner never needs to spin forever.
const maxFlushRounds = 8

// flush causes, for the metrics counters. flushResume is a credit-aware
// re-flush after reparenting (counted with the drains, but — unlike a
// drain — it respects the peer's window and never skews the adaptive
// window).
const (
	flushSize = iota
	flushAge
	flushControl
	flushDrain
	flushResume
)

// egressQueue batches outbound packets for one link. It is safe for
// concurrent use: the stream-sharded data plane has several pipeline
// workers plus the owning router feeding the same link, so every operation
// serializes on the queue's own mutex. FIFO order within the queue is the
// lock-acquisition order, which is what preserves per-stream FIFO (each
// stream has exactly one worker) and keeps control packets behind data the
// router already accepted.
//
// Locking is split in two so producers never wait on the wire:
//
//   - mu guards the queued packets (buf, or the flow-control scheduler)
//     and is held only for O(1) bookkeeping — never across a link Send.
//
//   - flushMu is the wire ownership: exactly one flusher at a time takes
//     batches out (under mu) and sends them (outside mu). Triggered
//     flushes use TryLock, so a producer or the router that finds a flush
//     already in progress simply moves on — the active flusher loops and
//     drains what they appended. Only the explicit drain (shutdown,
//     reparent, Flush) blocks for the wire.
//
// With flow control enabled (the link is a transport.FlowLink) the queue
// is additionally hard-bounded: data occupancy is capped at the link
// window by a slot semaphore (senders block, abortable by the owner's
// stop channels), flushes acquire one wire credit per data packet and
// stop — stalled — when the peer's window is exhausted, and the scheduler
// (flowegress.go) orders what a flush sends: order-free control first,
// then streams by priority, round-robin within a priority, with
// order-sensitive control packets acting as barriers that nothing
// enqueued after them may overtake.
type egressQueue struct {
	pol    BatchPolicy
	m      *Metrics
	retain bool
	// kick, if non-nil, is called (without mu) whenever the buffer
	// transitions empty -> non-empty or a credit stall clears: the queue
	// then has an age deadline the owner's timer loop needs to learn
	// about, since the enqueue may have come from a shard worker the owner
	// cannot observe.
	kick func()

	// fc marks a flow-controlled queue. Immutable after construction (a
	// replacement link is always the same kind as the one it replaces), so
	// the hot send path may read it lock-free while setLink swaps the flow
	// pointer under mu.
	fc bool
	// slots is the hard data-occupancy bound in flow-control mode: a
	// counting semaphore of link-window capacity. Senders on pipeline or
	// handler goroutines block here when the queue is full; the router
	// never does (it sends with block=false and may transiently overflow
	// during recovery replay — see sendCtx).
	slots chan struct{}
	// stopA/stopB abort a blocked slot acquisition (owner killed, network
	// dying); an aborted sender overflows rather than losing the packet.
	stopA, stopB <-chan struct{}
	// released (guarded by mu; closed by releaseWaiters, re-armed by
	// setLink) aborts blocked slot acquisitions when the link dies: a
	// worker waiting on a dead peer's window would otherwise never reach
	// the quiesce barrier recovery needs to install the replacement link —
	// a deadlock. Released senders overflow into the (retained, bounded)
	// buffer, the pre-flow-control orphan behavior.
	released chan struct{}

	// flushMu is the wire ownership (see above). Held across link sends.
	flushMu sync.Mutex
	// takeBuf is the flusher's reusable batch buffer (owned by flushMu).
	// It is recycled across flushes only when the link copies batches
	// before SendBatch returns (copies); on retaining links — the
	// in-process transport, where the slice itself is the channel
	// transfer — a fresh buffer is taken per flush.
	takeBuf []*packet.Packet
	// copies caches transport.BatchCopies(link); read under flushMu,
	// written at construction and by setLink (which holds both locks).
	copies bool

	mu   sync.Mutex
	link transport.Link
	// flow is the link's credit accounting when flow control is on (the
	// same object as link); nil otherwise.
	flow    *transport.FlowLink
	buf     []*packet.Packet // plain FIFO (flow control off)
	sched   *egressSched     // priority scheduler (flow control on)
	bytes   int              // Σ encoded payload bytes queued (buf mode)
	oldest  time.Time
	window  int // adaptive effective flush window
	stalled bool
	// localHW mirrors the deepest depth this queue has reported to the
	// global high-water gauge, so the hot path pays an atomic only when
	// it sets a new per-queue record.
	localHW int

	// Exactly-once replay state (enableReplay). xonce is set once, before
	// the queue is shared, so hot paths read it lock-free; everything else
	// is guarded by mu. Flushed data packets are appended to ring and stay
	// there until the peer's cumulative grant acknowledgement covers them;
	// setLink re-flushes the un-popped suffix to the replacement link ahead
	// of everything else. The ring is bounded by the link window: a sender
	// can never have more unacknowledged packets in flight than credits.
	xonce bool
	// ackSink receives the deferred inbound retirements attached to
	// acknowledged packets (the per-node acker); nil at the back-end, where
	// acknowledgements only free ring memory.
	ackSink func([]*pendRetire)
	// ring is the preallocated circular replay buffer, sized to the link
	// window (the credit protocol bounds unacknowledged flushed data at
	// W); its slot structs are the recycled egress slots — a flushed
	// packet's custody moves from the schedule into a ring slot, and the
	// slot is reused once the cumulative ack retires it.
	ring *replayRing
	// ringAcked counts ring entries popped since the current link was
	// installed — the peer's cumulative count minus this is what a grant
	// newly acknowledges.
	ringAcked uint64
	// replaying marks ring packets queued for re-flush by setLink but not
	// yet re-sent: they must be neither re-appended to the ring when their
	// flush completes nor double-queued by a second setLink.
	replaying map[*packet.Packet]struct{}
	// meta carries each enqueued packet's deferred retirement until the
	// flush that sends it moves it into the ring.
	meta   map[*packet.Packet]*pendRetire
	ringHW int

	// stallCt counts this queue's credit stalls cumulatively (the global
	// CreditStalls counter aggregates across queues); it feeds the per-node
	// load reports, so it is atomic — the sampler reads it off-goroutine.
	stallCt atomic.Int64
}

// kickFunc returns a non-blocking notifier for ch — the egress queues'
// empty -> non-empty wakeup toward their owner's timer loop.
func kickFunc(ch chan struct{}) func() {
	return func() {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// newEgressQueue wraps a link with the given (already normalized) policy.
// A *transport.FlowLink switches the queue into flow-controlled mode:
// hard-bounded occupancy, credit-aware flushes, priority scheduling.
func newEgressQueue(l transport.Link, pol BatchPolicy, m *Metrics, retain bool, kick func()) *egressQueue {
	q := &egressQueue{link: l, pol: pol, m: m, retain: retain, kick: kick, window: pol.MaxBatch}
	q.copies = transport.BatchCopies(l)
	if pol.Adaptive {
		q.window = 2
		if q.window > pol.MaxBatch {
			q.window = pol.MaxBatch
		}
	}
	q.adoptFlow(l)
	return q
}

// adoptFlow switches the queue's credit state to l's (callers hold mu, or
// own the queue exclusively at construction/reparent time).
func (q *egressQueue) adoptFlow(l transport.Link) {
	fl, _ := l.(*transport.FlowLink)
	q.flow = fl
	if fl == nil {
		return
	}
	if !q.fc {
		// First (construction-time) adoption: fc is immutable afterwards —
		// a replacement link is always the same kind — so the hot send
		// path may read it lock-free.
		q.fc = true
	}
	if q.sched == nil {
		q.sched = newEgressSched()
	}
	if q.slots == nil {
		q.slots = make(chan struct{}, fl.Window())
	}
	// (Re-)arm the hard bound: a fresh link means the window is enforceable
	// again after a releaseWaiters interlude.
	q.released = make(chan struct{})
	if !q.pol.enabled() {
		q.window = 1 // flow control without batching: flush per packet
	}
	// A grant from the peer may be the only thing that can restart a
	// stalled queue: resume immediately on refill.
	fl.SetRefillHook(q.unstall)
	if q.xonce {
		fl.SetAckHook(q.onAck)
	}
}

// enableReplay switches the queue into exactly-once mode: flushed data
// packets are held in the replay ring until the peer's cumulative grant
// acknowledgement covers them, setLink re-flushes the ring to replacement
// links, and sink (may be nil) receives the deferred inbound retirements
// attached to acknowledged packets. Must be called before the queue is
// shared with other goroutines.
func (q *egressQueue) enableReplay(sink func([]*pendRetire)) {
	q.xonce = true
	q.ackSink = sink
	capacity := transport.DefaultChanBuffer
	if q.flow != nil {
		capacity = q.flow.Window()
	}
	q.ring = newReplayRing(capacity)
	if q.flow != nil {
		q.flow.SetAckHook(q.onAck)
	}
}

// sendAck enqueues a data packet like sendCtx, registering ack to be
// completed when the peer acknowledges this packet. The last output of an
// inbound run carries the run's deferred retirement — acknowledgements are
// cumulative and flush order is FIFO, so covering the last packet covers
// the run.
func (q *egressQueue) sendAck(p *packet.Packet, prio int, block bool, ack *pendRetire) error {
	if ack == nil || !q.xonce {
		return q.sendCtx(p, prio, block)
	}
	q.mu.Lock()
	displaced := q.meta[p]
	if q.meta == nil {
		q.meta = map[*packet.Packet]*pendRetire{}
	}
	q.meta[p] = ack
	sink := q.ackSink
	q.mu.Unlock()
	if displaced != nil && displaced != ack && sink != nil {
		// The same packet pointer enqueued again before its first flush
		// (an in-process transport can hand a forwarded pointer back):
		// complete the displaced retirement rather than leak it.
		sink([]*pendRetire{displaced})
	}
	return q.sendCtx(p, prio, block)
}

// noteSent appends just-flushed data packets to the replay ring, in flush
// order — including the sent prefix of a flush whose link died mid-way:
// those packets are at risk exactly like any other unacknowledged flush.
// Packets completing a setLink re-flush are already in the ring and are
// only cleared from the replaying set.
func (q *egressQueue) noteSent(sent []*packet.Packet) {
	if len(sent) == 0 {
		return
	}
	q.mu.Lock()
	for _, p := range sent {
		if p.Tag == packet.TagControl {
			continue
		}
		if _, pending := q.replaying[p]; pending {
			delete(q.replaying, p)
			continue
		}
		var ack *pendRetire
		if a, ok := q.meta[p]; ok {
			ack = a
			delete(q.meta, p)
		}
		// Custody transfer: the encoded-body hold taken at enqueue now
		// belongs to the ring slot and is released when the cumulative
		// ack pops it (onAck) — the "replay ring has let go" half of the
		// release condition.
		q.ring.push(ringEntry{p: p, ack: ack})
	}
	if n := q.ring.len(); n > q.ringHW {
		q.ringHW = n
		for {
			cur := q.m.ReplayRingHighWater.Load()
			if int64(n) <= cur || q.m.ReplayRingHighWater.CompareAndSwap(cur, int64(n)) {
				break
			}
		}
	}
	q.mu.Unlock()
}

// onAck runs on the link's reader goroutine when a grant arrives: the
// peer's cumulative retirement count acknowledges a prefix of this queue's
// flush order. Pop the covered ring entries and hand their deferred
// retirements to the acker — never the wire from here (a reader blocked in
// a send stops draining its own link). A grant can outrun noteSent on an
// in-process transport; the pop clamps to the ring and the next cumulative
// count covers the shortfall.
func (q *egressQueue) onAck(n int, cum uint64) {
	var acks []*pendRetire
	q.mu.Lock()
	target := q.ringAcked + uint64(n)
	if cum > 0 {
		target = cum
	}
	if target < q.ringAcked {
		target = q.ringAcked
	}
	pop := int(target - q.ringAcked)
	if q.ring == nil {
		pop = 0
	} else if pop > q.ring.len() {
		pop = q.ring.len()
	}
	for i := 0; i < pop; i++ {
		e := q.ring.popFront()
		if e.ack != nil {
			acks = append(acks, e.ack)
		}
		if _, pending := q.replaying[e.p]; pending {
			// Acknowledged while queued for re-flush: the copy still
			// scheduled will be re-appended by its noteSent and retired as
			// a duplicate by the peer — the count algebra stays consistent
			// either way, and the encoded-body hold transfers to that
			// future ring slot (releasing here could recycle bytes the
			// re-flush is about to put on the wire).
			delete(q.replaying, e.p)
		} else {
			e.p.ReleaseEncoded()
		}
	}
	q.ringAcked += uint64(pop)
	sink := q.ackSink
	q.mu.Unlock()
	if len(acks) > 0 && sink != nil {
		sink(acks)
	}
}

// bindStops sets the channels that abort a blocked slot acquisition.
func (q *egressQueue) bindStops(a, b <-chan struct{}) {
	q.stopA, q.stopB = a, b
}

// acquireSlot takes one data-occupancy slot, blocking (abortably) when the
// queue is at the link window and block is true. Callers that may not
// block — the router during recovery replay and final drains — overflow
// instead, transiently exceeding the bound rather than deadlocking; the
// release side is tolerant of the resulting imbalance.
func (q *egressQueue) acquireSlot(block bool) {
	if q.slots == nil {
		return
	}
	select {
	case q.slots <- struct{}{}:
		return
	default:
	}
	if !block {
		return
	}
	q.mu.Lock()
	rel := q.released
	q.mu.Unlock()
	select {
	case q.slots <- struct{}{}:
	case <-q.stopA:
	case <-q.stopB:
	case <-rel:
	}
}

// rearmWaiters restores the hard bound after a releaseWaiters interlude
// (the owner finished quiescing, or a replacement link arrived): future
// blocked acquisitions wait again.
func (q *egressQueue) rearmWaiters() {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.slots != nil && q.released != nil {
		select {
		case <-q.released:
			q.released = make(chan struct{})
		default:
		}
	}
	q.mu.Unlock()
}

// releaseWaiters aborts every blocked slot acquisition and re-enables
// flush retries: called when the queue's link is known dead (parent or
// child EOF) and before every quiesce, so pipeline workers can finish
// their in-flight items — and reach the quiesce barrier — instead of
// waiting on a window nobody may ever refill. Overflowing sends land in
// the (bounded on the failure path) retained buffer; rearmWaiters or
// setLink restores the bound.
func (q *egressQueue) releaseWaiters() {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.released != nil {
		select {
		case <-q.released:
		default:
			close(q.released)
		}
	}
	// A credit stall against a dead peer must not suppress the age retry:
	// the retrying flush observes the dead link and retains (bounded) or
	// drops, releasing slots either way.
	q.stalled = false
	if q.queuedLocked() > 0 && q.oldest.IsZero() {
		q.oldest = time.Now()
	}
	kick := q.kick != nil && q.queuedLocked() > 0
	q.mu.Unlock()
	if kick {
		q.kick()
	}
}

// releaseSlots returns n data-occupancy slots; overflow sends may leave
// fewer held than released, so draining stops at empty.
func (q *egressQueue) releaseSlots(n int) {
	if q.slots == nil {
		return
	}
	for i := 0; i < n; i++ {
		select {
		case <-q.slots:
		default:
			return
		}
	}
}

// send enqueues a data packet at default priority, blocking if the
// flow-control window is exhausted. Flushes once the effective window
// fills. With batching and flow control both disabled it forwards directly
// to the link.
func (q *egressQueue) send(p *packet.Packet) error {
	return q.sendCtx(p, 0, true)
}

// sendCtx enqueues a data packet with a stream priority. block chooses
// between the hard bound (pipeline workers, back-end handlers: wait for a
// slot) and router-context overflow (recovery replay, drains: never block
// the control plane, accept a transient excursion past the window).
func (q *egressQueue) sendCtx(p *packet.Packet, prio int, block bool) error {
	if !q.fc {
		if !q.pol.enabled() {
			return q.sendDirect(p)
		}
		return q.enqueue(p, prio, false)
	}
	q.acquireSlot(block)
	return q.enqueue(p, prio, false)
}

// sendDirect forwards p straight to the link (batching and flow control
// both off), holding encoded-body custody across the send so a TCP write
// serializes into an arena buffer that recycles as soon as the wire has
// the bytes. Lock-free link read: q.link changes only before the queue is
// shared or while the owner's shards are quiesced (setLink during
// reparent), so no sender can observe the swap mid-flight.
func (q *egressQueue) sendDirect(p *packet.Packet) error {
	if p.Tag == packet.TagControl {
		return q.link.Send(p)
	}
	p.RetainEncoded(1)
	err := q.link.Send(p)
	p.ReleaseEncoded()
	return err
}

// sendNow enqueues p and flushes immediately. Control packets use it:
// order-sensitive control (stream setup/teardown, shutdown) keeps its FIFO
// position behind already queued data but never waits out a batching
// window; order-free control (heartbeats) additionally jumps to the
// scheduler's control lane when flow control is on, so it can never be
// delayed behind credit-stalled data.
func (q *egressQueue) sendNow(p *packet.Packet) error {
	if !q.fc && !q.pol.enabled() {
		return q.sendDirect(p)
	}
	return q.enqueue(p, 0, true)
}

// enqueue appends p (ctrl marks a sendNow control packet), updates the
// bookkeeping, and triggers whatever flush is due. Producers never wait on
// the wire: a triggered flush that finds another flusher active is
// absorbed by that flusher's drain loop.
func (q *egressQueue) enqueue(p *packet.Packet, prio int, ctrl bool) error {
	if p.Tag != packet.TagControl {
		// Custody: the queue holds the data packet's encoded body from
		// here until the flush that ships it lets go — or, exactly-once,
		// until the replay ring does (DESIGN.md §12). While at least one
		// queue holds it, the encode body is arena-backed and every
		// reader of its bytes is covered by a hold.
		p.RetainEncoded(1)
	}
	q.mu.Lock()
	wasEmpty := q.queuedLocked() == 0
	if q.sched != nil {
		q.sched.add(p, prio, ctrl)
	} else if ctrl {
		q.buf = append(q.buf, p)
		q.bytes += p.EncodedSize() + 4
	} else {
		q.bufAddLocked(p)
	}
	if wasEmpty {
		q.oldest = time.Now()
	}
	q.m.PacketsQueued.Add(1)
	// The high-water gauge tracks what the link window bounds: data
	// occupancy in flow-controlled mode, everything queued otherwise.
	hw := q.queuedLocked()
	if q.sched != nil {
		hw = q.sched.data
	}
	if hw > q.localHW {
		q.localHW = hw
		q.noteDepth(hw)
	}
	due := ctrl || q.queuedLocked() >= q.window
	kick := q.kick != nil && wasEmpty && q.queuedLocked() > 0
	q.mu.Unlock()
	if kick {
		q.kick()
	}
	if !due {
		return nil
	}
	cause := flushSize
	if ctrl {
		cause = flushControl
	}
	return q.flush(cause)
}

// bufAddLocked appends a data packet to the plain FIFO, splitting off a
// pre-flush when the batch would outgrow the wire's frame byte bound.
// Individually legal packets must never combine into a frame the receiver
// would reject; the split flush blocks for the wire here (pre-flow-control
// behavior for oversize batches, which are rare). A failed split flush is
// deliberately absorbed: the flusher retained or dropped the buffer, and
// p queues behind whatever remains — later flushes surface the error.
func (q *egressQueue) bufAddLocked(p *packet.Packet) {
	sz := p.EncodedSize()
	if len(q.buf) > 0 && q.bytes+sz > maxEgressFrameBytes {
		q.mu.Unlock()
		_ = q.drainCause(flushSize)
		q.mu.Lock()
	}
	if len(q.buf) == 0 {
		q.oldest = time.Now()
	}
	q.buf = append(q.buf, p)
	q.bytes += sz + 4
}

// queuedLocked reports how many packets are queued. Callers hold mu.
func (q *egressQueue) queuedLocked() int {
	if q.sched != nil {
		return q.sched.count
	}
	return len(q.buf)
}

// flush runs the take-and-send loop if no other flusher owns the wire;
// otherwise the active flusher's loop will drain what triggered us.
func (q *egressQueue) flush(cause int) error {
	if !q.flushMu.TryLock() {
		return nil
	}
	defer q.flushMu.Unlock()
	return q.flushLoop(cause)
}

// drainCause blocks for wire ownership and drains with the given cause.
func (q *egressQueue) drainCause(cause int) error {
	q.flushMu.Lock()
	defer q.flushMu.Unlock()
	return q.flushLoop(cause)
}

// flushLoop repeatedly takes a batch (under mu) and sends it (outside mu)
// until the queue is empty, the peer's credit window is exhausted, the
// round bound is hit, or the wire fails. Callers hold flushMu.
func (q *egressQueue) flushLoop(cause int) error {
	// Drains normally bypass the credit window (shutdown must move even
	// against a stalled peer), but a replaying queue cannot: every
	// credit-bypassing send would grow the replay ring past the window
	// bound W, and the exactly-once guarantee prices replay memory at
	// exactly links × W. Past-window packets stay queued; the grant that
	// retires in-flight data re-triggers the flush.
	bypass := cause == flushDrain && !q.xonce
	for round := 0; round < maxFlushRounds; round++ {
		q.mu.Lock()
		var batch []*packet.Packet
		var total, nData int
		var stalled bool
		if q.sched != nil {
			batch, total, nData, stalled = q.sched.take(q.flow, bypass, q.takeBuf[:0])
			// The take buffer is recycled across flushes only on links
			// that copy batches; a retaining link owns the slice once
			// sendFrames hands it over (the batchalias contract).
			if q.copies {
				q.takeBuf = batch[:0]
			} else {
				q.takeBuf = nil
			}
		} else {
			batch, total = q.buf, q.bytes
			q.buf, q.bytes = nil, 0
		}
		if len(batch) == 0 {
			if stalled && q.sched.count > 0 {
				if q.grantLandedLocked() {
					q.mu.Unlock()
					continue
				}
				q.noteStallLocked()
			} else if q.queuedLocked() == 0 {
				q.oldest = time.Time{}
			}
			q.mu.Unlock()
			return nil
		}
		q.mu.Unlock()

		unsent, frames, err := q.sendFrames(batch, total)
		sent := batch[: len(batch)-len(unsent) : len(batch)]
		if q.xonce {
			// Ring-append the sent prefix even when the flush failed: those
			// frames reached the wire before the link died, and losing them
			// from the ring would make them unrecoverable. Custody of the
			// sent packets moves into the ring.
			q.noteSent(sent)
		} else {
			// Sent packets left the queue for good: release the custody
			// holds taken at enqueue, returning arena-backed encode
			// bodies once every sharing queue has flushed.
			releaseEncoded(sent)
		}
		if frames > 0 {
			q.m.FramesSent.Add(frames)
			switch cause {
			case flushSize:
				q.m.FlushSize.Add(1)
			case flushAge:
				q.m.FlushAge.Add(1)
			case flushControl:
				q.m.FlushControl.Add(1)
			case flushDrain, flushResume:
				q.m.FlushDrain.Add(1)
			}
		}
		if err != nil {
			q.failedFlush(batch, unsent, nData, bypass)
			return err
		}
		q.releaseSlots(nData)
		q.mu.Lock()
		if round == 0 {
			// Adapt the window only when the flush actually went out: a
			// dead-link retry loop (retained buffer, recoverable owner) must
			// not collapse or inflate the adaptive window while nothing moves.
			q.adapt(cause)
		}
		if stalled && q.sched.count > 0 {
			if q.grantLandedLocked() {
				q.mu.Unlock()
				continue
			}
			q.noteStallLocked()
			q.mu.Unlock()
			return nil
		}
		empty := q.queuedLocked() == 0
		if empty {
			q.oldest = time.Time{}
		}
		q.mu.Unlock()
		if empty {
			return nil
		}
	}
	return nil
}

// releaseEncoded drops the enqueue-time custody hold of every data packet
// in ps, recycling arena-backed encode bodies once the last holding queue
// lets go. Control packets are never tracked (they are encoded at most once
// per link and their bodies are not pooled).
func releaseEncoded(ps []*packet.Packet) {
	for _, p := range ps {
		if p.Tag != packet.TagControl {
			p.ReleaseEncoded()
		}
	}
}

// noteStallLocked marks the queue credit-stalled: its age deadline is
// suppressed (only a grant can make progress) and the stall is counted.
// Callers hold mu.
func (q *egressQueue) noteStallLocked() {
	if !q.stalled {
		q.stalled = true
		q.stallCt.Add(1)
		q.m.CreditStalls.Add(1)
	}
}

// stalls reports the queue's cumulative credit-stall count; safe for any
// goroutine (load-report sampling).
func (q *egressQueue) stalls() int64 {
	if q == nil {
		return 0
	}
	return q.stallCt.Load()
}

// grantLandedLocked probes for a grant that arrived between take()'s
// failed credit acquisition and now: the refill's unstall either ran
// before the stall flag existed (a lost wakeup, which this probe closes —
// the flusher just goes another round) or is blocked on mu and will
// observe the flag once set. Callers hold mu.
func (q *egressQueue) grantLandedLocked() bool {
	if q.flow == nil || !q.flow.TryAcquire() {
		return false
	}
	q.flow.Refund(1)
	return true
}

// unstall clears a credit stall after an inbound grant refilled the send
// window: the queue's age deadline is re-armed as already due and the
// owner is kicked — its timer loop sees the expired deadline immediately
// and flushes. The hook runs on the link's READER goroutine, which must
// never itself touch the wire: a reader blocked in a send stops draining
// its own link, and two peers doing that symmetrically would deadlock.
func (q *egressQueue) unstall() {
	q.mu.Lock()
	was := q.stalled
	if was {
		q.stalled = false
		q.oldest = time.Now().Add(-q.pol.MaxDelay)
	}
	q.mu.Unlock()
	if was && q.kick != nil {
		q.kick()
	}
}

// failedFlush restores or drops the unsent remainder of a failed
// flush and refunds any wire credits it had acquired.
func (q *egressQueue) failedFlush(batch, unsent []*packet.Packet, nData int, bypass bool) {
	// Credits were acquired for every data packet taken; refund the unsent
	// ones (unless the drain bypassed accounting entirely).
	unsentData := 0
	for _, p := range unsent {
		if p.Tag != packet.TagControl {
			unsentData++
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.flow != nil && !bypass {
		// Refund, not Refill: no hook may run under mu, and there is
		// nothing to wake — the credits were never the peer's to grant.
		q.flow.Refund(unsentData)
	}
	q.releaseSlots(nData - unsentData) // sent data left the queue for good
	if q.retain {
		// The link died under us: keep the unsent remainder (bounded) so a
		// reparent can re-flush it to the new parent.
		if n := len(unsent) - maxRetained; n > 0 {
			q.m.EgressDrops.Add(int64(n))
			releaseEncoded(unsent[:n])
			unsent = unsent[n:]
		}
		if q.sched != nil {
			q.sched.restore(unsent)
		} else {
			q.buf = append(unsent, q.buf...)
			q.bytes = 0
			for _, r := range q.buf {
				q.bytes += r.EncodedSize() + 4
			}
		}
		// Restart the age clock so retries back off by MaxDelay instead of
		// hot-looping on an already-expired deadline.
		q.oldest = time.Now()
	} else {
		q.m.EgressDrops.Add(int64(len(unsent)))
		releaseEncoded(unsent)
		q.releaseSlots(unsentData)
	}
}

// sendFrames moves buf onto the link, splitting it whenever the combined
// encoding would exceed the wire's frame byte bound — a retained buffer
// re-flushed after reparenting, or control flushed behind large queued
// data, can outgrow what a single frame may carry. The common case (total
// within bound, maintained by send) is a single SendBatch. On error the
// not-yet-sent packets are returned; already-sent frames are delivered, so
// nothing is duplicated on retry. Callers hold flushMu (which is what
// makes reading q.link here safe: setLink swaps it only under flushMu).
func (q *egressQueue) sendFrames(buf []*packet.Packet, total int) (unsent []*packet.Packet, frames int64, err error) {
	link := q.link
	if total <= maxEgressFrameBytes+4 {
		if err := transport.SendBatch(link, buf); err != nil {
			return buf, 0, err
		}
		return nil, 1, nil
	}
	start, bytes := 0, 0
	for i, p := range buf {
		sz := p.EncodedSize() + 4
		if i > start && bytes+sz > maxEgressFrameBytes+4 {
			if err := transport.SendBatch(link, buf[start:i]); err != nil {
				return buf[start:], frames, err
			}
			frames++
			start, bytes = i, 0
		}
		bytes += sz
	}
	if err := transport.SendBatch(link, buf[start:]); err != nil {
		return buf[start:], frames, err
	}
	return nil, frames + 1, nil
}

// adapt moves the effective window toward the observed traffic level.
func (q *egressQueue) adapt(cause int) {
	if !q.pol.Adaptive {
		return
	}
	switch cause {
	case flushSize:
		if q.window < q.pol.MaxBatch {
			q.window *= 2
			if q.window > q.pol.MaxBatch {
				q.window = q.pol.MaxBatch
			}
		}
	case flushAge:
		if q.window > 1 {
			q.window /= 2
		}
	}
}

// deadline returns when the oldest queued packet must be age-flushed, or
// the zero time when the queue is empty — or credit-stalled, in which case
// only an inbound grant (whose refill hook re-arms the deadline) can make
// progress and a timer would just spin.
func (q *egressQueue) deadline() time.Time {
	if q == nil {
		return time.Time{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queuedLocked() == 0 || q.stalled || q.oldest.IsZero() {
		return time.Time{}
	}
	return q.oldest.Add(q.pol.MaxDelay)
}

// pollAge flushes the queue if its age deadline has passed.
func (q *egressQueue) pollAge(now time.Time) {
	if q == nil {
		return
	}
	q.mu.Lock()
	due := q.queuedLocked() > 0 && !q.stalled && !q.oldest.IsZero() && !now.Before(q.oldest.Add(q.pol.MaxDelay))
	q.mu.Unlock()
	if due {
		_ = q.flush(flushAge)
	}
}

// drain force-flushes everything queued (shutdown, reparent, Flush),
// bypassing the credit window: the endpoints are quiescing and losslessness
// outranks the bound.
func (q *egressQueue) drain() error {
	if q == nil {
		return nil
	}
	return q.drainCause(flushDrain)
}

// setLink repoints the queue at a replacement link (recovery reparenting)
// and re-flushes anything retained across the old link's death — within
// the NEW link's credit window, which starts full: retained packets
// re-enter the bounded window without double-spending credits, and
// whatever exceeds it stays queued until the new peer grants. If the
// re-flush fails again the buffer stays retained, and the owner is kicked
// to re-arm its age timer for the retry.
func (q *egressQueue) setLink(l transport.Link) {
	q.flushMu.Lock()
	q.mu.Lock()
	if old := q.flow; old != nil {
		old.SetRefillHook(nil)
		old.SetAckHook(nil)
	}
	q.link = l
	q.adoptFlow(l)
	q.stalled = false
	if q.xonce {
		// The new peer's cumulative count starts at zero and will count the
		// replayed packets first: re-flush the un-popped ring suffix ahead
		// of everything, in ring order, so its prefix correspondence holds
		// on the replacement link too. Entries already queued for re-flush
		// by an earlier setLink are still at the schedule head; skip them.
		q.ringAcked = 0
		var replay []*packet.Packet
		for i := 0; i < q.ring.len(); i++ {
			e := q.ring.at(i)
			if _, pending := q.replaying[e.p]; pending {
				continue
			}
			if q.replaying == nil {
				q.replaying = map[*packet.Packet]struct{}{}
			}
			q.replaying[e.p] = struct{}{}
			replay = append(replay, e.p)
		}
		if len(replay) > 0 {
			q.sched.restore(replay)
			// Their occupancy slots were released when they first flushed;
			// best-effort reacquisition keeps the semaphore near the true
			// queue depth (overflow past the window is tolerated here, as
			// in every recovery path).
			for range replay {
				select {
				case q.slots <- struct{}{}:
				default:
				}
			}
			q.m.PacketsReplayed.Add(int64(len(replay)))
		}
	}
	queued := q.queuedLocked()
	if queued > 0 {
		q.oldest = time.Now()
	}
	q.mu.Unlock()
	if queued > 0 {
		_ = q.flushLoop(flushResume)
	}
	q.mu.Lock()
	kick := q.kick != nil && q.queuedLocked() > 0
	q.mu.Unlock()
	q.flushMu.Unlock()
	if kick {
		q.kick()
	}
}

// clear drops everything queued (a fenced-off dead child slot).
func (q *egressQueue) clear() {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	dropped := q.queuedLocked()
	if dropped == 0 {
		return
	}
	q.m.EgressDrops.Add(int64(dropped))
	if q.sched != nil {
		// Drain through take so the scheduler's freelists keep their
		// recycled epochs and streams, and release the dropped packets'
		// custody holds.
		ps, _, _, _ := q.sched.take(nil, true, nil)
		releaseEncoded(ps)
	} else {
		releaseEncoded(q.buf)
		q.buf, q.bytes = nil, 0
	}
	q.releaseSlots(dropped)
	q.stalled = false
	q.oldest = time.Time{}
}

// extract removes and returns every queued data packet, in wire order —
// the exactly-once replacement for clear on a fenced dead child slot:
// nothing queued there ever reached the wire, so the router re-routes the
// packets through the repaired stream table instead of dropping them.
// Control packets addressed to the dead child are dropped as before.
func (q *egressQueue) extract() []*packet.Packet {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	total := q.queuedLocked()
	if total == 0 {
		return nil
	}
	var out []*packet.Packet
	if q.sched != nil {
		ps, _, _, _ := q.sched.take(nil, true, nil)
		for _, p := range ps {
			if p.Tag != packet.TagControl {
				out = append(out, p)
			}
		}
		// The router re-enqueues the extracted packets through the repaired
		// routes, re-taking custody there; this queue's holds end here.
		releaseEncoded(ps)
	} else {
		for _, p := range q.buf {
			if p.Tag != packet.TagControl {
				out = append(out, p)
			}
		}
		releaseEncoded(q.buf)
		q.buf, q.bytes = nil, 0
	}
	if d := total - len(out); d > 0 {
		q.m.EgressDrops.Add(int64(d))
	}
	q.releaseSlots(total)
	q.stalled = false
	q.oldest = time.Time{}
	return out
}

// pending reports how many packets are queued (tests, backpressure probes).
func (q *egressQueue) pending() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queuedLocked()
}

// noteDepth maintains the high-water depth gauge.
func (q *egressQueue) noteDepth(d int) {
	for {
		cur := q.m.EgressHighWater.Load()
		if int64(d) <= cur || q.m.EgressHighWater.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
