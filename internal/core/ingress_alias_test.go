package core

import (
	"testing"

	"repro/internal/packet"
)

// TestSplitOrderFreeDoesNotMutateInput pins the receive-path aliasing
// contract on the ingress splitter (the same contract PR 7 established for
// FlowLink.absorb and streamState.dropDups): the batch handed to
// splitOrderFree came out of RecvBatch, so on the in-process fabric its
// backing array is still the sender's SendBatch slice — which an
// exactly-once sender re-reads after the send to build its replay ring. A
// regressed in-place compaction (kept := ps[:0]) passes every functional
// check but silently overwrites the sender's packets; this test catches it
// by asserting the input survives verbatim and the output is not aliased.
func TestSplitOrderFreeDoesNotMutateInput(t *testing.T) {
	mkData := func(v int) *packet.Packet {
		p, err := packet.New(packet.TagFirstApplication, 1, 0, "%d", v)
		if err != nil {
			t.Fatalf("packet.New: %v", err)
		}
		return p
	}
	hb := heartbeatPacket(3)
	ps := []*packet.Packet{mkData(10), hb, mkData(20), mkData(30)}
	orig := append([]*packet.Packet(nil), ps...)

	ctrl := make(chan *packet.Packet, 4)
	kept := splitOrderFree(ps, ctrl)

	if len(kept) != 3 || kept[0] != orig[0] || kept[1] != orig[2] || kept[2] != orig[3] {
		t.Fatalf("kept = %v, want the three data packets in order", kept)
	}
	select {
	case got := <-ctrl:
		if got != hb {
			t.Fatalf("ctrl lane got %v, want the heartbeat", got)
		}
	default:
		t.Fatal("heartbeat was not diverted to the ctrl lane")
	}
	// The sender's view of the batch must be untouched...
	for i, p := range ps {
		if p != orig[i] {
			t.Fatalf("input slice mutated at %d: got %v, want %v — receive path compacted a shared backing array", i, p, orig[i])
		}
	}
	// ...which requires the kept slice to live in its own backing array.
	if &kept[0] == &ps[0] {
		t.Fatal("kept aliases the input's backing array; a split must allocate")
	}

	// The all-data fast path stays zero-copy: identity, no allocation.
	data := []*packet.Packet{mkData(1), mkData(2)}
	if got := splitOrderFree(data, ctrl); &got[0] != &data[0] || len(got) != 2 {
		t.Fatal("all-data frame should be returned as-is without copying")
	}
}
